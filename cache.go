package fetch

import (
	"crypto/sha256"
	"fmt"

	"fetch/internal/core"
	"fetch/internal/resultcache"
)

// CacheConfig parameterizes NewCache.
type CacheConfig struct {
	// MaxEntries bounds the in-memory level; non-positive selects the
	// package default (1024 entries).
	MaxEntries int
	// Dir enables a persistent on-disk level when non-empty. Entries
	// survive process restarts; writes are atomic and corrupted or
	// truncated entries are detected, discarded, and recomputed rather
	// than returned.
	Dir string
}

// CacheStats is a snapshot of a Cache's operation counters. Hits and
// Misses partition lookups; MemHits and DiskHits partition Hits by
// serving level. CorruptDrops counts discarded on-disk entries that
// failed integrity verification.
type CacheStats struct {
	Hits         int64
	Misses       int64
	MemHits      int64
	DiskHits     int64
	Puts         int64
	Evictions    int64
	CorruptDrops int64
	DiskErrors   int64
	// Entries is the current in-memory entry count.
	Entries int
}

// Cache is a content-addressed store of analysis results, shared
// safely by any number of concurrent analyses. Entries are keyed by
// the SHA-256 of the binary's bytes, the effective strategy, and the
// result schema version: re-analyzing a byte-identical binary with the
// same options returns the stored result without decoding a single
// instruction, while any change to the binary, the options, or the
// schema misses cleanly. Attach one to an analysis with WithCache or
// BatchOptions.Cache.
type Cache struct {
	rc *resultcache.Cache
}

// NewCache builds a result cache. The zero CacheConfig is valid:
// memory-only with the default capacity.
func NewCache(cfg CacheConfig) (*Cache, error) {
	rc, err := resultcache.New(resultcache.Config{
		MaxEntries: cfg.MaxEntries,
		Dir:        cfg.Dir,
	})
	if err != nil {
		return nil, fmt.Errorf("fetch: %w", err)
	}
	return &Cache{rc: rc}, nil
}

// Stats returns a snapshot of the cache's counters.
func (c *Cache) Stats() CacheStats {
	st := c.rc.Stats()
	return CacheStats{
		Hits:         st.Hits,
		Misses:       st.Misses,
		MemHits:      st.MemHits,
		DiskHits:     st.DiskHits,
		Puts:         st.Puts,
		Evictions:    st.Evictions,
		CorruptDrops: st.CorruptDrops,
		DiskErrors:   st.DiskErrors,
		Entries:      st.Entries,
	}
}

// HashBinary returns the SHA-256 content hash that addresses a
// binary's cache entries — the same hash /v1/result/{sha256} of the
// fetchd service expects.
func HashBinary(data []byte) [sha256.Size]byte {
	return resultcache.HashBytes(data)
}

// Get returns the cached Result for a binary's content hash under the
// given options, without needing the binary itself. This is the
// by-hash lookup path of the fetchd service; Analyze with WithCache
// populates the entries it serves. The Result is freshly decoded and
// owned by the caller.
func (c *Cache) Get(sum [sha256.Size]byte, opts ...Option) (*Result, bool) {
	o := buildOptions(opts)
	blob, ok := c.rc.Get(cacheKey(sum, o.Strategy))
	if !ok {
		return nil, false
	}
	res, err := DecodeResult(blob)
	if err != nil {
		// An undecodable entry (e.g. written by a newer build within
		// the same schema version) is a miss, not an error.
		return nil, false
	}
	return res, true
}

// Analyze is Analyze-with-WithCache plus hit observability: it runs
// the pipeline against the cache and additionally reports whether the
// result was served from a stored entry. Servers use it to count
// cache hits per request without a second lookup; the result is
// indistinguishable from plain Analyze either way. The receiver is
// the cache used — a WithCache among opts is overridden.
func (c *Cache) Analyze(data []byte, opts ...Option) (res *Result, cached bool, err error) {
	o := buildOptions(opts)
	o.Cache = c
	return analyzeCached(data, o)
}

// lookup returns the decoded entry for a key, if present and valid.
func (c *Cache) lookup(k resultcache.Key) (*Result, bool) {
	blob, ok := c.rc.Get(k)
	if !ok {
		return nil, false
	}
	res, err := DecodeResult(blob)
	if err != nil {
		return nil, false
	}
	return res, true
}

// store serializes and saves an analysis result under a key. Encoding
// failures drop the entry silently: caching must never turn a
// successful analysis into a failure.
func (c *Cache) store(k resultcache.Key, res *Result) {
	blob, err := EncodeResult(res)
	if err != nil {
		return
	}
	c.rc.Put(k, blob)
}

// strategyVariant renders a Strategy as the stable cache-key signature
// ("recT.xrefT.tailT"), using only the filename-safe characters
// resultcache.Key documents for Variant. Two option lists that resolve
// to the same strategy share cache entries; any future option that
// changes analysis output must extend this signature.
func strategyVariant(s core.Strategy) string {
	b := func(v bool) byte {
		if v {
			return 'T'
		}
		return 'F'
	}
	return fmt.Sprintf("rec%c.xref%c.tail%c", b(s.Recursive), b(s.Xref), b(s.TailCall))
}

// cacheKey assembles the full content-addressed key for one analysis.
func cacheKey(sum [sha256.Size]byte, s core.Strategy) resultcache.Key {
	return resultcache.Key{
		SHA256:  sum,
		Variant: strategyVariant(s),
		Schema:  ResultSchemaVersion,
	}
}
