package fetch

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"sync/atomic"

	"fetch/internal/core"
	"fetch/internal/ehframe"
	"fetch/internal/elfx"
	"fetch/internal/resultcache"
)

// CacheConfig parameterizes NewCache.
type CacheConfig struct {
	// MaxEntries bounds the in-memory level; non-positive selects the
	// package default (1024 entries).
	MaxEntries int
	// Dir enables a persistent on-disk level when non-empty. Entries
	// survive process restarts; writes are atomic and corrupted or
	// truncated entries are detected, discarded, and recomputed rather
	// than returned.
	Dir string
	// MaxDiskBytes bounds the on-disk level's total size in bytes.
	// When a write pushes the directory past the budget, entries are
	// evicted oldest-first until it holds again. Zero or negative
	// means unbounded.
	MaxDiskBytes int64
	// DisableDelta turns off function-granular delta re-analysis: on a
	// whole-binary miss the cache then always runs the cold pipeline,
	// and stores no per-function entries or traces. The zero value
	// (delta enabled) is the right choice for every workload that
	// re-analyzes recompiled versions of the same binaries.
	DisableDelta bool
}

// CacheStats is a snapshot of a Cache's operation counters. Hits and
// Misses partition lookups; MemHits and DiskHits partition Hits by
// serving level. CorruptDrops counts discarded on-disk entries that
// failed integrity verification. The raw store counters (Hits, Misses,
// MemHits, DiskHits, Puts) cover ALL entry families — whole-binary
// results, delta manifests, and per-function ranges; the delta tier
// counters below attribute the non-result traffic, so result-tier
// traffic is computable as Hits−ManifestHits−FnTierHits,
// Misses−ManifestMisses−FnTierMisses, and Puts−DeltaPuts.
//
// The delta tier counters describe function-granular re-analysis:
// ManifestHits/ManifestMisses count residue-keyed trace lookups on
// whole-binary misses, FnTierHits/FnTierMisses count per-function
// range-entry fetches, DeltaPuts counts manifest and range entries
// written after recorded cold runs, DeltaHits counts misses served by
// verified delta replay, and DeltaFallbacks counts delta attempts that
// fell back to the cold pipeline (a correctness-preserving refusal,
// never an error).
type CacheStats struct {
	Hits         int64
	Misses       int64
	MemHits      int64
	DiskHits     int64
	Puts         int64
	Evictions    int64
	CorruptDrops int64
	DiskErrors   int64
	// Entries is the current in-memory entry count.
	Entries int

	// DiskEvictions counts on-disk entries removed by the byte-budget
	// sweep; DiskBytes is the current on-disk usage.
	DiskEvictions int64
	DiskBytes     int64

	// Function-granular delta tier counters.
	ManifestHits   int64
	ManifestMisses int64
	FnTierHits     int64
	FnTierMisses   int64
	DeltaPuts      int64
	DeltaHits      int64
	DeltaFallbacks int64
}

// Cache is a content-addressed store of analysis results, shared
// safely by any number of concurrent analyses. Entries are keyed by
// the SHA-256 of the binary's bytes, the effective strategy, and the
// result schema version: re-analyzing a byte-identical binary with the
// same options returns the stored result without decoding a single
// instruction, while any change to the binary, the options, or the
// schema misses cleanly. Attach one to an analysis with WithCache or
// BatchOptions.Cache.
type Cache struct {
	rc    *resultcache.Cache
	delta bool

	manifestHits   atomic.Int64
	manifestMisses atomic.Int64
	fnHits         atomic.Int64
	fnMisses       atomic.Int64
	deltaPuts      atomic.Int64
	deltaHits      atomic.Int64
	deltaFallbacks atomic.Int64
}

// NewCache builds a result cache. The zero CacheConfig is valid:
// memory-only with the default capacity, delta re-analysis enabled.
func NewCache(cfg CacheConfig) (*Cache, error) {
	rc, err := resultcache.New(resultcache.Config{
		MaxEntries: cfg.MaxEntries,
		Dir:        cfg.Dir,
		MaxBytes:   cfg.MaxDiskBytes,
	})
	if err != nil {
		return nil, fmt.Errorf("fetch: %w", err)
	}
	return &Cache{rc: rc, delta: !cfg.DisableDelta}, nil
}

// Stats returns a snapshot of the cache's counters.
func (c *Cache) Stats() CacheStats {
	st := c.rc.Stats()
	return CacheStats{
		Hits:         st.Hits,
		Misses:       st.Misses,
		MemHits:      st.MemHits,
		DiskHits:     st.DiskHits,
		Puts:         st.Puts,
		Evictions:    st.Evictions,
		CorruptDrops: st.CorruptDrops,
		DiskErrors:   st.DiskErrors,
		Entries:      st.Entries,

		DiskEvictions: st.DiskEvictions,
		DiskBytes:     st.DiskBytes,

		ManifestHits:   c.manifestHits.Load(),
		ManifestMisses: c.manifestMisses.Load(),
		FnTierHits:     c.fnHits.Load(),
		FnTierMisses:   c.fnMisses.Load(),
		DeltaPuts:      c.deltaPuts.Load(),
		DeltaHits:      c.deltaHits.Load(),
		DeltaFallbacks: c.deltaFallbacks.Load(),
	}
}

// HashBinary returns the SHA-256 content hash that addresses a
// binary's cache entries — the same hash /v1/result/{sha256} of the
// fetchd service expects.
func HashBinary(data []byte) [sha256.Size]byte {
	return resultcache.HashBytes(data)
}

// Get returns the cached Result for a binary's content hash under the
// given options, without needing the binary itself. This is the
// by-hash lookup path of the fetchd service; Analyze with WithCache
// populates the entries it serves. The Result is freshly decoded and
// owned by the caller.
func (c *Cache) Get(sum [sha256.Size]byte, opts ...Option) (*Result, bool) {
	o := buildOptions(opts)
	blob, ok := c.rc.Get(cacheKey(sum, o.Strategy))
	if !ok {
		return nil, false
	}
	res, err := DecodeResult(blob)
	if err != nil {
		// An undecodable entry (e.g. written by a newer build within
		// the same schema version) is a miss, not an error.
		return nil, false
	}
	return res, true
}

// Analyze is Analyze-with-WithCache plus hit observability: it runs
// the pipeline against the cache and additionally reports whether the
// result was served from a stored entry. Servers use it to count
// cache hits per request without a second lookup; the result is
// indistinguishable from plain Analyze either way. The receiver is
// the cache used — a WithCache among opts is overridden.
func (c *Cache) Analyze(data []byte, opts ...Option) (res *Result, cached bool, err error) {
	o := buildOptions(opts)
	o.Cache = c
	return analyzeCached(data, o)
}

// AnalyzeFile is Analyze for a binary on disk, through the file-backed
// image path: the cache key is a streaming hash and a miss analyzes an
// mmap-backed image instead of buffering the file. Servers use it to
// analyze spooled uploads without holding binary bytes on the heap.
func (c *Cache) AnalyzeFile(path string, opts ...Option) (res *Result, cached bool, err error) {
	o := buildOptions(opts)
	o.Cache = c
	return analyzeFilePath(path, o)
}

// lookup returns the decoded entry for a key, if present and valid.
func (c *Cache) lookup(k resultcache.Key) (*Result, bool) {
	blob, ok := c.rc.Get(k)
	if !ok {
		return nil, false
	}
	res, err := DecodeResult(blob)
	if err != nil {
		return nil, false
	}
	return res, true
}

// store serializes and saves an analysis result under a key. Encoding
// failures drop the entry silently: caching must never turn a
// successful analysis into a failure.
func (c *Cache) store(k resultcache.Key, res *Result) {
	blob, err := EncodeResult(res)
	if err != nil {
		return
	}
	c.rc.Put(k, blob)
}

// strategyVariant renders a Strategy as the stable cache-key signature
// ("recT.xrefT.tailT"), using only the filename-safe characters
// resultcache.Key documents for Variant. Two option lists that resolve
// to the same strategy share cache entries; any future option that
// changes analysis output must extend this signature.
func strategyVariant(s core.Strategy) string {
	b := func(v bool) byte {
		if v {
			return 'T'
		}
		return 'F'
	}
	return fmt.Sprintf("rec%c.xref%c.tail%c", b(s.Recursive), b(s.Xref), b(s.TailCall))
}

// cacheKey assembles the full content-addressed key for one analysis.
func cacheKey(sum [sha256.Size]byte, s core.Strategy) resultcache.Key {
	return resultcache.Key{
		SHA256:  sum,
		Variant: strategyVariant(s),
		Schema:  ResultSchemaVersion,
	}
}

// --- function-granular delta tier ---
//
// Two extra entry families live beside the whole-binary results:
//
//   manifest ("mf.<variant>", keyed by residue hash): the gob-encoded
//   core.Trace of a recorded analysis — the roster of FDE-delimited
//   range hashes plus everything ReplayDelta verifies against.
//
//   function range ("fn", keyed by resultcache.HashRange): the range's
//   address (8 bytes little-endian) followed by its bytes. The key IS
//   the SHA-256 of the payload, so the store's integrity check binds
//   the payload to the key; entries are shared by every binary (and
//   every strategy) containing that exact range at that address.

// manifestKey addresses a trace by residue hash and strategy.
func manifestKey(sum [sha256.Size]byte, s core.Strategy) resultcache.Key {
	return resultcache.Key{
		SHA256:  sum,
		Variant: "mf." + strategyVariant(s),
		Schema:  ResultSchemaVersion,
	}
}

// fnKey addresses one function range by its content hash.
func fnKey(sum [sha256.Size]byte) resultcache.Key {
	return resultcache.Key{SHA256: sum, Variant: "fn", Schema: ResultSchemaVersion}
}

// storeTrace persists a recorded analysis's delta tier: the manifest
// under the residue key and each roster range under its content hash.
// Failures drop entries silently — the delta tier is an accelerator,
// never a correctness dependency.
func (c *Cache) storeTrace(tr *core.Trace, img *elfx.Image, s core.Strategy) {
	if tr == nil || !c.delta {
		return
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(tr); err != nil {
		return
	}
	c.rc.Put(manifestKey(tr.ResidueHash, s), buf.Bytes())
	c.deltaPuts.Add(1)
	for i := range tr.Roster {
		ri := &tr.Roster[i]
		body := core.RangeBytes(img, ri.Start, ri.End)
		if body == nil {
			continue
		}
		payload := make([]byte, 8+len(body))
		binary.LittleEndian.PutUint64(payload, ri.Start)
		copy(payload[8:], body)
		c.rc.Put(fnKey(ri.Hash), payload)
		c.deltaPuts.Add(1)
	}
}

// loadTrace fetches and decodes the manifest for a residue hash.
func (c *Cache) loadTrace(sum [sha256.Size]byte, s core.Strategy) (*core.Trace, bool) {
	blob, ok := c.rc.Get(manifestKey(sum, s))
	if !ok {
		c.manifestMisses.Add(1)
		return nil, false
	}
	var tr core.Trace
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&tr); err != nil {
		c.manifestMisses.Add(1)
		return nil, false
	}
	c.manifestHits.Add(1)
	return &tr, true
}

// fnRangeBytes fetches one recorded range's bytes from the function
// tier and verifies payload↔key binding (the store checks payload
// integrity on disk, but memory-level entries and the key binding are
// this layer's responsibility). Returns nil on any doubt.
func (c *Cache) fnRangeBytes(start uint64, sum [sha256.Size]byte) []byte {
	payload, ok := c.rc.Get(fnKey(sum))
	if !ok || len(payload) < 8 ||
		resultcache.HashBytes(payload) != sum ||
		binary.LittleEndian.Uint64(payload) != start {
		c.fnMisses.Add(1)
		return nil
	}
	c.fnHits.Add(1)
	return payload[8:]
}

// tryDelta attempts to serve a whole-binary miss by delta re-analysis:
// find a recorded trace with the same residue, verify the changed
// ranges are analysis-equivalent, and serve the recorded result. The
// bool reports success; on failure the DeltaOutcome carries the
// fallback reason (zero value when the attempt never got to
// verification).
func (c *Cache) tryDelta(img *elfx.Image, sec *ehframe.Section, o Options) (*Result, core.DeltaOutcome, bool) {
	var zero core.DeltaOutcome
	if !c.delta || img == nil || sec == nil {
		return nil, zero, false
	}
	sum, ok := core.DeltaKey(img, sec)
	if !ok {
		return nil, zero, false
	}
	tr, ok := c.loadTrace(sum, o.Strategy)
	if !ok {
		return nil, zero, false
	}
	outcome := core.ReplayDelta(core.DeltaInput{
		Img:      img,
		Sec:      sec,
		Trace:    tr,
		Strategy: o.Strategy,
		OldRangeBytes: func(i int) []byte {
			return c.fnRangeBytes(tr.Roster[i].Start, tr.Roster[i].Hash)
		},
	})
	if !outcome.OK {
		c.deltaFallbacks.Add(1)
		return nil, outcome, false
	}
	res, ok := c.lookup(cacheKey(tr.BinSHA, o.Strategy))
	if !ok {
		// The recorded result itself was evicted; nothing to serve.
		c.deltaFallbacks.Add(1)
		outcome.OK = false
		outcome.Reason = "recorded result evicted"
		return nil, outcome, false
	}
	c.deltaHits.Add(1)
	return res, outcome, true
}
