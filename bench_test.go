// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation, per-tool throughput benchmarks (Table V's
// substance), and ablation benches for the design choices DESIGN.md
// calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Each evaluation bench reports the headline counts of its experiment
// as custom metrics so regressions in *results* (not just speed) are
// visible in benchmark diffs.
package fetch

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"fetch/internal/baseline"
	"fetch/internal/core"
	"fetch/internal/disasm"
	"fetch/internal/ehframe"
	"fetch/internal/elfx"
	"fetch/internal/eval"
	"fetch/internal/groundtruth"
	"fetch/internal/metrics"
	"fetch/internal/stackan"
	"fetch/internal/synth"
	"fetch/internal/tailcall"
	"fetch/internal/xref"
)

// benchCorpus is built once and shared by all evaluation benches.
var (
	benchOnce   sync.Once
	benchCorp   *eval.Corpus
	benchSingle *elfx.Image
	benchTruth  *groundtruth.Truth
)

func corpusForBench(b *testing.B) *eval.Corpus {
	b.Helper()
	benchOnce.Do(func() {
		// Jobs pinned to 1: these per-driver benches measure sequential
		// cost, comparable across machines and to pre-pool baselines.
		// BenchmarkAnalyzeBatch/BenchmarkCorpusParallel carry the
		// parallel legs.
		c, err := eval.BuildSelfBuiltJobs(0.01, 31000, 1)
		if err != nil {
			panic(err)
		}
		if len(c.Bins) > 40 {
			c.Bins = c.Bins[:40]
		}
		benchCorp = c
		cfg := synth.DefaultConfig("bench-single", 31999, synth.O2, synth.GCC, synth.LangC)
		cfg.NumFuncs = 200
		img, truth, err := synth.Generate(cfg)
		if err != nil {
			panic(err)
		}
		benchSingle = img.Strip()
		benchTruth = truth
	})
	return benchCorp
}

// --- Tables ---

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := eval.TableIJobs(int64(40000+i), 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AvgRatio, "fde%")
	}
}

func BenchmarkTableII(b *testing.B) {
	c := corpusForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.TableII(c)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Overall, "fde%")
	}
}

func BenchmarkTableIII(b *testing.B) {
	c := corpusForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.TableIII(c)
		if err != nil {
			b.Fatal(err)
		}
		var fetchFP, fetchFN int
		for _, opt := range res.Opts {
			cell := res.Cells[opt][baseline.ToolFETCH]
			fetchFP += cell.FP
			fetchFN += cell.FN
		}
		b.ReportMetric(float64(fetchFP), "fetch-fp")
		b.ReportMetric(float64(fetchFN), "fetch-fn")
	}
}

func BenchmarkTableIV(b *testing.B) {
	c := corpusForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.TableIV(c)
		if err != nil {
			b.Fatal(err)
		}
		cell := res.Cells[synth.O2][stackan.DyninstStyle]
		b.ReportMetric(cell[0].Precision, "dyninst-pre")
	}
}

func BenchmarkTableV(b *testing.B) {
	c := corpusForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.TableV(c, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figures ---

func benchFigure(b *testing.B, run func(*eval.Corpus) (*eval.FigureResult, error)) {
	b.Helper()
	c := corpusForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := run(c)
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(float64(last.FullCoverage), "full-cov")
		b.ReportMetric(float64(last.FullAccuracy), "full-acc")
	}
}

func BenchmarkFigure5a(b *testing.B) { benchFigure(b, eval.Figure5a) }
func BenchmarkFigure5b(b *testing.B) { benchFigure(b, eval.Figure5b) }
func BenchmarkFigure5c(b *testing.B) { benchFigure(b, eval.Figure5c) }

// --- Section experiments ---

func BenchmarkSectionIVB(b *testing.B) {
	c := corpusForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.SectionIVB(c)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.CoverageRatio, "coverage%")
	}
}

func BenchmarkSectionIVE(b *testing.B) {
	c := corpusForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.SectionIVE(c)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.NewStarts), "found")
		b.ReportMetric(float64(res.NewFPs), "fp")
	}
}

func BenchmarkSectionVA(b *testing.B) {
	c := corpusForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.SectionVA(c)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.TotalFPs), "fde-fp")
		b.ReportMetric(float64(res.ROPGadgets), "gadgets")
	}
}

func BenchmarkSectionVC(b *testing.B) {
	c := corpusForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.SectionVC(c)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.FPsBefore), "fp-before")
		b.ReportMetric(float64(res.FPsAfter), "fp-after")
	}
}

// --- Per-tool single-binary throughput (Table V's substance) ---

func benchTool(b *testing.B, tool baseline.Tool) {
	b.Helper()
	corpusForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.Run(tool, benchSingle); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkToolFETCHPerBinary(b *testing.B)   { benchTool(b, baseline.ToolFETCH) }
func BenchmarkToolGhidraPerBinary(b *testing.B)  { benchTool(b, baseline.ToolGhidra) }
func BenchmarkToolAngrPerBinary(b *testing.B)    { benchTool(b, baseline.ToolAngr) }
func BenchmarkToolDyninstPerBinary(b *testing.B) { benchTool(b, baseline.ToolDyninst) }
func BenchmarkToolBAPPerBinary(b *testing.B)     { benchTool(b, baseline.ToolBAP) }
func BenchmarkToolRadare2PerBinary(b *testing.B) { benchTool(b, baseline.ToolRadare2) }
func BenchmarkToolNucleusPerBinary(b *testing.B) { benchTool(b, baseline.ToolNucleus) }
func BenchmarkToolIDAPerBinary(b *testing.B)     { benchTool(b, baseline.ToolIDA) }
func BenchmarkToolNinjaPerBinary(b *testing.B)   { benchTool(b, baseline.ToolNinja) }

// --- Component benchmarks ---

func BenchmarkRecursiveDisassembly(b *testing.B) {
	corpusForBench(b)
	eh, _ := benchSingle.Section(".eh_frame")
	sec, err := ehframe.Decode(eh.Data, eh.Addr)
	if err != nil {
		b.Fatal(err)
	}
	seeds := sec.FunctionStarts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		disasm.Recursive(benchSingle, seeds, disasm.Options{
			ResolveJumpTables: true, NonReturning: true,
		})
	}
}

// sessionBenchSeeds splits the bench binary's FDE starts into an
// initial bulk plus the small late batches an xref-style fixed point
// adds, so the two benchmarks below replay the same iterative growth
// with and without incremental state.
func sessionBenchSeeds(b *testing.B) (initial []uint64, batches [][]uint64) {
	b.Helper()
	corpusForBench(b)
	eh, _ := benchSingle.Section(".eh_frame")
	sec, err := ehframe.Decode(eh.Data, eh.Addr)
	if err != nil {
		b.Fatal(err)
	}
	seeds := sec.FunctionStarts()
	if len(seeds) < 24 {
		b.Fatalf("bench binary has only %d seeds", len(seeds))
	}
	cut := len(seeds) - 12
	initial = seeds[:cut]
	for k := cut; k < len(seeds); k += 3 {
		end := k + 3
		if end > len(seeds) {
			end = len(seeds)
		}
		batches = append(batches, seeds[k:end])
	}
	return initial, batches
}

// BenchmarkScratchResweep is the pre-session baseline: every seed
// batch pays a full from-scratch recursive disassembly over the
// cumulative list — the O(binary)-per-iteration cost the Session
// removes.
func BenchmarkScratchResweep(b *testing.B) {
	initial, batches := sessionBenchSeeds(b)
	opts := disasm.Options{ResolveJumpTables: true, NonReturning: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cum := append([]uint64(nil), initial...)
		disasm.Recursive(benchSingle, cum, opts)
		for _, batch := range batches {
			cum = append(cum, batch...)
			disasm.Recursive(benchSingle, cum, opts)
		}
	}
}

// BenchmarkSessionExtend performs the identical growth through one
// Session, reusing every already-decoded instruction; results are
// byte-identical to the scratch variant (see the equivalence suite).
func BenchmarkSessionExtend(b *testing.B) {
	initial, batches := sessionBenchSeeds(b)
	opts := disasm.Options{ResolveJumpTables: true, NonReturning: true}
	b.ResetTimer()
	var st disasm.Stats
	for i := 0; i < b.N; i++ {
		sess := disasm.NewSession(benchSingle, opts)
		sess.Extend(initial)
		for _, batch := range batches {
			sess.Extend(batch)
		}
		st = sess.Stats()
	}
	if total := st.InstsDecoded + st.InstsReused; total > 0 {
		b.ReportMetric(100*float64(st.InstsReused)/float64(total), "reused%")
	}
}

func BenchmarkEhFrameDecode(b *testing.B) {
	corpusForBench(b)
	eh, _ := benchSingle.Section(".eh_frame")
	b.SetBytes(int64(len(eh.Data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ehframe.Decode(eh.Data, eh.Addr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLinearSweep(b *testing.B) {
	corpusForBench(b)
	text, _ := benchSingle.Section(".text")
	b.SetBytes(int64(len(text.Data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		disasm.LinearSweep(benchSingle, text.Addr, text.End())
	}
}

// --- Ablations (DESIGN.md) ---

// fetchWithTailcall runs the FETCH front half then Algorithm 1 with
// custom inputs, returning the FP/FN score.
func fetchWithTailcall(b *testing.B, mutate func(*tailcall.Input)) metrics.Eval {
	b.Helper()
	rep, err := core.Analyze(benchSingle, core.Strategy{Recursive: true, Xref: true})
	if err != nil {
		b.Fatal(err)
	}
	in := tailcall.Input{
		Img:   benchSingle,
		Sec:   rep.Sec,
		Res:   rep.Res,
		Funcs: rep.Funcs,
		DataRefCount: func(a uint64) int {
			return xref.DataRefCount(benchSingle, a)
		},
	}
	if mutate != nil {
		mutate(&in)
	}
	out := tailcall.Run(in)
	return metrics.Evaluate(out.Funcs, benchTruth)
}

// BenchmarkAblationStackSource compares Algorithm 1 fed by CFI heights
// (the paper's choice) against static stack analysis (Table IV's
// argument for why not).
func BenchmarkAblationStackSource(b *testing.B) {
	corpusForBench(b)
	b.Run("cfi", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := fetchWithTailcall(b, nil)
			b.ReportMetric(float64(e.FP), "fp")
			b.ReportMetric(float64(e.FN), "fn")
		}
	})
	b.Run("static", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := fetchWithTailcall(b, func(in *tailcall.Input) { in.UseStaticHeights = true })
			b.ReportMetric(float64(e.FP), "fp")
			b.ReportMetric(float64(e.FN), "fn")
		}
	})
}

// BenchmarkAblationRefCriterion toggles the "target referenced
// elsewhere" requirement of tail-call detection.
func BenchmarkAblationRefCriterion(b *testing.B) {
	corpusForBench(b)
	b.Run("with-ref-criterion", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := fetchWithTailcall(b, nil)
			b.ReportMetric(float64(e.FP), "fp")
		}
	})
	b.Run("without", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := fetchWithTailcall(b, func(in *tailcall.Input) { in.DisableRefCriterion = true })
			b.ReportMetric(float64(e.FP), "fp")
		}
	})
}

// BenchmarkAblationXrefRules disables each §IV-E validation rule in
// turn, measuring the false positives each rule prevents.
func BenchmarkAblationXrefRules(b *testing.B) {
	corpusForBench(b)
	names := []string{"no-strict-walk", "no-mid-inst", "no-range-check", "no-callconv"}
	run := func(b *testing.B, disable int) {
		rep, err := core.Analyze(benchSingle, core.Strategy{Recursive: true})
		if err != nil {
			b.Fatal(err)
		}
		var ranges []disasm.FuncRange
		for _, f := range rep.Sec.FDEs {
			ranges = append(ranges, disasm.FuncRange{Start: f.PCBegin, End: f.End()})
		}
		opts := xref.Options{KnownRanges: ranges}
		if disable >= 0 {
			opts.DisableRule[disable] = true
		}
		newly := xref.Detect(benchSingle, rep.Res, rep.Funcs, opts)
		fp := 0
		for _, a := range newly {
			if !benchTruth.IsStart(a) {
				fp++
			}
		}
		b.ReportMetric(float64(fp), "fp")
		b.ReportMetric(float64(len(newly)), "found")
	}
	b.Run("all-rules", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, -1)
		}
	})
	for d, name := range names {
		d := d
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				run(b, d)
			}
		})
	}
}

// BenchmarkAblationAlignmentFunctions measures the ANGR alignment
// observation of §IV-C: preserving alignment-padded entries versus
// splitting them.
func BenchmarkAblationAlignmentFunctions(b *testing.B) {
	c := corpusForBench(b)
	score := func(b *testing.B, split bool) {
		var agg metrics.Aggregate
		for _, bin := range c.Bins {
			d, err := baseline.FDE(bin.Img.Strip())
			if err != nil {
				b.Fatal(err)
			}
			d = baseline.Rec(bin.Img.Strip(), d)
			if split {
				d = baseline.Align(bin.Img.Strip(), d)
			}
			agg.Add(metrics.Evaluate(d.Funcs, bin.Truth))
		}
		b.ReportMetric(float64(agg.FP), "fp")
		b.ReportMetric(float64(agg.FN), "fn")
	}
	b.Run("preserved", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			score(b, false)
		}
	})
	b.Run("split", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			score(b, true)
		}
	})
}

// --- Batch engine ---

// batchBenchInputs builds a fixed set of in-memory sample binaries for
// the batch benchmarks.
func batchBenchInputs(b *testing.B, n int) []Input {
	b.Helper()
	inputs := make([]Input, n)
	for i := range inputs {
		raw, _, err := GenerateSample(SampleConfig{Seed: int64(52000 + i), NumFuncs: 80, Stripped: true})
		if err != nil {
			b.Fatal(err)
		}
		inputs[i] = Input{Name: fmt.Sprintf("bench-%d", i), Data: raw}
	}
	return inputs
}

// BenchmarkAnalyzeBatch measures the worker-pool batch API at one
// worker versus one per CPU over the same inputs. The jobs=1 /
// jobs=NumCPU ratio is the headline parallel speedup; results are
// identical by construction (see TestAnalyzeBatchDeterminism).
func BenchmarkAnalyzeBatch(b *testing.B) {
	inputs := batchBenchInputs(b, 16)
	for _, jobs := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results := AnalyzeBatch(inputs, BatchOptions{Jobs: jobs})
				for _, br := range results {
					if br.Err != nil {
						b.Fatal(br.Err)
					}
				}
			}
			b.ReportMetric(float64(len(inputs))*float64(b.N)/b.Elapsed().Seconds(), "binaries/s")
		})
	}
}

// BenchmarkCorpusParallel measures parallel corpus generation, the
// front half of every evaluation run.
func BenchmarkCorpusParallel(b *testing.B) {
	for _, jobs := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c, err := eval.BuildSelfBuiltJobs(0.01, 31000, jobs)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(len(c.Bins)), "bins")
			}
		})
	}
}

// BenchmarkFETCHEndToEnd is the headline single-binary number
// (Table V's FETCH row, ~3.3 s on the paper's corpus-sized binaries).
func BenchmarkFETCHEndToEnd(b *testing.B) {
	corpusForBench(b)
	raw, err := elfx.WriteELF(benchSingle)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Intra-binary sharding ---

// shardBenchBinary builds the large synthetic corpus shape the sharded
// pipeline is judged on: one big binary (the service's worst case —
// batch parallelism cannot help a single upload).
var (
	shardBenchOnce sync.Once
	shardBenchRaw  []byte
)

func shardBenchBinary(b *testing.B) []byte {
	b.Helper()
	shardBenchOnce.Do(func() {
		cfg := synth.DefaultConfig("bench-sharded", 91000, synth.O2, synth.GCC, synth.LangC)
		cfg.NumFuncs = 1200
		cfg.IndirectOnlyRate = 0.02
		img, _, err := synth.Generate(cfg)
		if err != nil {
			panic(err)
		}
		raw, err := elfx.WriteELF(img.Strip())
		if err != nil {
			panic(err)
		}
		shardBenchRaw = raw
	})
	return shardBenchRaw
}

// BenchmarkShardedAnalyze measures the full pipeline on the large
// shape at several intra-binary worker counts. jobs=1 is the exact
// sequential path; jobs=4 is the headline configuration (≥1.5× on
// multicore hardware — the shard walks, non-return inference, and
// candidate validation are the parallel portion; the deterministic
// merge is the serial residue, reported by stats.merge_wall_ns). On a
// single-CPU host the sharded legs measure pure overhead instead of
// speedup; shard_fallbacks and the per-shard counters in -v output
// break the difference down. Every leg also re-checks that output is
// byte-identical to sequential, so a broken sharded path fails the CI
// bench smoke rather than silently benchmarking garbage.
func BenchmarkShardedAnalyze(b *testing.B) {
	raw := shardBenchBinary(b)
	ref, err := Analyze(raw, WithJobs(1))
	if err != nil {
		b.Fatal(err)
	}
	refBlob, err := EncodeResult(StripSchedule(ref))
	if err != nil {
		b.Fatal(err)
	}
	for _, jobs := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			b.SetBytes(int64(len(raw)))
			var fallbacks int
			for i := 0; i < b.N; i++ {
				res, err := Analyze(raw, WithJobs(jobs))
				if err != nil {
					b.Fatal(err)
				}
				fallbacks = res.Stats.ShardFallbacks
				if i == 0 {
					blob, err := EncodeResult(StripSchedule(res))
					if err != nil {
						b.Fatal(err)
					}
					if string(blob) != string(refBlob) {
						b.Fatalf("jobs=%d output differs from sequential", jobs)
					}
				}
			}
			b.ReportMetric(float64(fallbacks), "fallbacks")
			b.ReportMetric(float64(len(ref.FunctionStarts)), "funcs")
		})
	}
}

// --- Result cache ---

// cacheBenchBinary is the serialized bench binary cache benches share.
func cacheBenchBinary(b *testing.B) []byte {
	b.Helper()
	corpusForBench(b)
	raw, err := elfx.WriteELF(benchSingle)
	if err != nil {
		b.Fatal(err)
	}
	return raw
}

// BenchmarkCacheCold is the baseline the cache is judged against: a
// full pipeline run per iteration, no cache attached.
func BenchmarkCacheCold(b *testing.B) {
	raw := cacheBenchBinary(b)
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheHit measures the steady-state serving cost of a warm
// result cache: content hash + LRU lookup + codec decode, no
// disassembly at all. The ratio to BenchmarkCacheCold is the headline
// speedup repeated traffic gets from the cache (≥10× required).
func BenchmarkCacheHit(b *testing.B) {
	raw := cacheBenchBinary(b)
	cache, err := NewCache(CacheConfig{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := Analyze(raw, WithCache(cache)); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(raw, WithCache(cache)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := cache.Stats()
	if st.Hits < int64(b.N) {
		b.Fatalf("bench did not hit the cache: %+v", st)
	}
}

// BenchmarkCacheHitDisk serves every iteration from a cold memory LRU
// backed by a warm disk level — the restart-recovery path.
func BenchmarkCacheHitDisk(b *testing.B) {
	raw := cacheBenchBinary(b)
	dir := b.TempDir()
	warm, err := NewCache(CacheConfig{Dir: dir})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := Analyze(raw, WithCache(warm)); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cold, err := NewCache(CacheConfig{Dir: dir})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := Analyze(raw, WithCache(cold)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeltaReanalysis measures the function-granular delta tier
// on the recompilation workload it exists for: a ~2000-function binary
// whose next build perturbs 1% of its functions in place. Serving the
// new build by delta replay against the previous build's recorded
// trace must beat a cold analysis by ≥10×, and the served result must
// be codec-byte-identical to the cold one — both asserted inline, so
// the bench doubles as a regression gate.
func BenchmarkDeltaReanalysis(b *testing.B) {
	cfg := synth.DefaultConfig("bench-delta", 32717, synth.O2, synth.GCC, synth.LangC)
	cfg.NumFuncs = 2000
	baseImg, _, err := synth.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	baseRaw, err := elfx.WriteELF(baseImg.Strip())
	if err != nil {
		b.Fatal(err)
	}
	next := cfg
	next.PerturbK = cfg.NumFuncs / 100
	next.PerturbSeed = 0xBE7C
	nextImg, _, err := synth.Generate(next)
	if err != nil {
		b.Fatal(err)
	}
	nextRaw, err := elfx.WriteELF(nextImg.Strip())
	if err != nil {
		b.Fatal(err)
	}

	// Cold reference: both the baseline time and the equality witness.
	coldRes, err := Analyze(nextRaw)
	if err != nil {
		b.Fatal(err)
	}
	coldEnc, err := EncodeResult(StripSchedule(coldRes))
	if err != nil {
		b.Fatal(err)
	}
	const coldRuns = 3
	t0 := time.Now()
	for i := 0; i < coldRuns; i++ {
		if _, err := Analyze(nextRaw); err != nil {
			b.Fatal(err)
		}
	}
	coldNs := float64(time.Since(t0).Nanoseconds()) / coldRuns

	b.SetBytes(int64(len(nextRaw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Each iteration replays against a fresh warm cache: serving
		// from the whole-binary tier (a plain hit on the second call)
		// would measure the wrong path.
		b.StopTimer()
		// The function tier stores one entry per FDE range: the memory
		// LRU must be sized for the binary or the base build's trace is
		// evicted before the next build arrives.
		cache, err := NewCache(CacheConfig{MaxEntries: 3 * cfg.NumFuncs})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Analyze(baseRaw, WithCache(cache)); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err := Analyze(nextRaw, WithCache(cache))
		b.StopTimer()
		if err != nil {
			b.Fatal(err)
		}
		if !res.Stats.DeltaPath {
			b.Fatalf("next build was not delta-served (reason %q)", res.Stats.DeltaFallbackReason)
		}
		enc, err := EncodeResult(StripSchedule(res))
		if err != nil {
			b.Fatal(err)
		}
		if !bytes.Equal(enc, coldEnc) {
			b.Fatal("delta-served result is not byte-identical to cold analysis")
		}
		b.StartTimer()
	}
	b.StopTimer()
	deltaNs := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	speedup := coldNs / deltaNs
	b.ReportMetric(speedup, "×vs-cold")
	if speedup < 10 {
		b.Fatalf("delta re-analysis only %.1f× faster than cold (need ≥10×)", speedup)
	}
}

// BenchmarkAnalyzeBatchDuplicates measures batch dedup: 16 slots
// holding one distinct binary cost one analysis, not 16.
func BenchmarkAnalyzeBatchDuplicates(b *testing.B) {
	raw := cacheBenchBinary(b)
	inputs := make([]Input, 16)
	for i := range inputs {
		inputs[i] = Input{Name: fmt.Sprintf("dup-%d", i), Data: raw}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, br := range AnalyzeBatch(inputs, BatchOptions{Jobs: runtime.NumCPU()}) {
			if br.Err != nil {
				b.Fatal(br.Err)
			}
		}
	}
	b.ReportMetric(float64(len(inputs))*float64(b.N)/b.Elapsed().Seconds(), "binaries/s")
}
