package fetch

import (
	"fmt"
	"time"
)

// SummaryLine is one name/value pair of a rendered Result summary.
// Names are the canonical field names of the serialized JSON schema
// (docs/API.md): "function_starts", "stats.insts_decoded",
// "stats.passes.<name>.wall_ns", and so on. Derived convenience lines
// that have no schema field use the reserved "derived." prefix. The
// CLI prints SummaryLines verbatim, so CLI output, the JSON codec, and
// the documentation share one vocabulary by construction (the codec
// test cross-checks every non-derived name against an encoded result).
type SummaryLine struct {
	// Name is the schema path of the summarized field, or a
	// "derived."-prefixed label for values computed from schema fields.
	Name string
	// Value is the rendered value. Durations carry the schema unit
	// (integer nanoseconds) first, with a human-readable rendering in
	// parentheses.
	Value string
}

// Summarize renders a Result as the labeled lines cmd/fetch prints:
// the headline detection counts, and — when verbose — the incremental-
// session statistics and per-pass wall times. It is the single
// formatting path between the analysis types and human-readable
// output; anything it reports uses the JSON schema's field names and
// units.
func Summarize(res *Result, verbose bool) []SummaryLine {
	lines := []SummaryLine{
		{"function_starts", fmt.Sprintf("%d", len(res.FunctionStarts))},
		{"fde_starts", fmt.Sprintf("%d", len(res.FDEStarts))},
		{"new_from_pointers", fmt.Sprintf("%d", len(res.NewFromPointers))},
		{"new_from_tail_calls", fmt.Sprintf("%d", len(res.NewFromTailCalls))},
		{"merged_parts", fmt.Sprintf("%d", len(res.MergedParts))},
		{"removed_bogus_fdes", fmt.Sprintf("%d", len(res.RemovedBogusFDEs))},
		{"skipped_incomplete_cfi", fmt.Sprintf("%d", res.SkippedIncompleteCFI)},
	}
	if !verbose {
		return lines
	}
	st := res.Stats
	lines = append(lines,
		SummaryLine{"stats.insts_decoded", fmt.Sprintf("%d", st.InstsDecoded)},
		SummaryLine{"stats.insts_reused", fmt.Sprintf("%d", st.InstsReused)},
		SummaryLine{"derived.reused_pct", fmt.Sprintf("%.1f%%", reusedPct(st))},
		SummaryLine{"stats.cold_starts", fmt.Sprintf("%d", st.ColdStarts)},
		SummaryLine{"stats.extends", fmt.Sprintf("%d", st.Extends)},
		SummaryLine{"stats.retracts", fmt.Sprintf("%d", st.Retracts)},
		SummaryLine{"stats.forks", fmt.Sprintf("%d", st.Forks)},
		SummaryLine{"stats.probes", fmt.Sprintf("%d", st.Probes)},
		SummaryLine{"stats.xref_iterations", fmt.Sprintf("%d", st.XrefIterations)},
		SummaryLine{"stats.xref_converged", fmt.Sprintf("%v", st.XrefConverged)},
		SummaryLine{"stats.truncated", fmt.Sprintf("%v", st.Truncated)},
		SummaryLine{"stats.jobs", fmt.Sprintf("%d", st.Jobs)},
		SummaryLine{"stats.peak_image_bytes", fmt.Sprintf("%d", st.PeakImageBytes)},
		SummaryLine{"stats.peak_aux_bytes", fmt.Sprintf("%d", st.PeakAuxBytes)},
	)
	if st.Jobs > 1 {
		lines = append(lines,
			SummaryLine{"stats.sharded_passes", fmt.Sprintf("%d", st.ShardedPasses)},
			SummaryLine{"stats.shard_fallbacks", fmt.Sprintf("%d", st.ShardFallbacks)},
			SummaryLine{"stats.merge_wall_ns", fmt.Sprintf("%d (%v)",
				int64(st.MergeWall), st.MergeWall.Round(time.Microsecond))},
			SummaryLine{"derived.shards", fmt.Sprintf("%d", len(st.Shards))},
		)
		for i, sh := range st.Shards {
			lines = append(lines, SummaryLine{
				Name: fmt.Sprintf("derived.shard_%d", i),
				Value: fmt.Sprintf("seeds=%d decoded=%d reused=%d wall=%v",
					sh.Seeds, sh.InstsDecoded, sh.InstsReused, sh.Wall.Round(time.Microsecond)),
			})
		}
	}
	for _, ps := range st.Passes {
		lines = append(lines, SummaryLine{
			Name: fmt.Sprintf("stats.passes.%s.wall_ns", ps.Name),
			Value: fmt.Sprintf("%d (%v)", int64(ps.Wall),
				ps.Wall.Round(time.Microsecond)),
		})
	}
	return lines
}

// reusedPct is the decode-cache hit rate of an analysis, in percent.
func reusedPct(st Stats) float64 {
	total := st.InstsDecoded + st.InstsReused
	if total == 0 {
		return 0
	}
	return 100 * float64(st.InstsReused) / float64(total)
}
