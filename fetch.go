// Package fetch detects function starts in System-V x86-64 ELF binaries
// from their exception-handling information, implementing the FETCH
// system from "Towards Optimal Use of Exception Handling Information
// for Function Detection" (DSN 2021).
//
// The pipeline extracts FDE PC Begin values from .eh_frame, runs safe
// recursive disassembly (bounded jump tables, skipped indirect calls,
// no tail-call guessing, fixed-point non-returning analysis including
// the error/error_at_line first-argument slice), validates conservative
// function-pointer candidates, and fixes the errors FDEs themselves
// introduce — merging per-part FDEs of non-contiguous functions via
// tail-call reasoning on CFI-recorded stack heights, and removing
// hand-written FDEs that violate the calling convention.
//
// Basic use:
//
//	res, err := fetch.AnalyzeFile("/bin/something")
//	if err != nil { ... }
//	for _, start := range res.FunctionStarts { ... }
//
// Whole corpora are analyzed with AnalyzeBatch, which fans the items
// out over a bounded worker pool while keeping results in input order
// and capturing errors per item:
//
//	results := fetch.AnalyzeBatch(inputs, fetch.BatchOptions{Jobs: runtime.NumCPU()})
//	for _, r := range results {
//		if r.Err != nil { ... continue }
//		for _, start := range r.Result.FunctionStarts { ... }
//	}
//
// Batch results are byte-identical to analyzing each input
// sequentially: parallelism changes wall-clock time, never output.
package fetch

import (
	"context"
	"fmt"
	"os"
	"time"

	"fetch/internal/core"
	"fetch/internal/elfx"
	"fetch/internal/pool"
	"fetch/internal/synth"
)

// Result reports the detected function starts and the pipeline's
// corrections.
type Result struct {
	// FunctionStarts is the final detected set, in address order.
	FunctionStarts []uint64
	// FDEStarts are the raw PC Begin values extracted from .eh_frame.
	FDEStarts []uint64
	// NewFromPointers are starts accepted by §IV-E pointer validation.
	NewFromPointers []uint64
	// NewFromTailCalls are targets added by tail-call detection.
	NewFromTailCalls []uint64
	// MergedParts maps each non-contiguous-part FDE start that was
	// merged away to the function start owning it.
	MergedParts map[uint64]uint64
	// RemovedBogusFDEs are FDE starts removed by the §V-B
	// calling-convention sweep (hand-written CFI errors).
	RemovedBogusFDEs []uint64
	// SkippedIncompleteCFI counts functions Algorithm 1 skipped
	// because their CFI carries no complete rsp-relative heights.
	SkippedIncompleteCFI int
	// Stats reports per-pass wall times and the incremental-analysis
	// counters of the pipeline's shared disassembly session.
	Stats Stats
}

// PassStat is one pipeline pass's wall-clock cost. Wall times are the
// only non-deterministic part of a Result.
type PassStat struct {
	// Name is the pass label: "fde", "recursive", "xref", "tailcall".
	Name string
	// Wall is the pass's elapsed time.
	Wall time.Duration
}

// Stats makes the pipeline's incremental behavior observable: after
// the initial recursive sweep, pointer-detection rounds re-analyze via
// session Extend, §V-B CFI-error recovery via Retract, and candidate
// validation via fork Probes — never a cold resweep (ColdStarts stays
// 1). All fields except the pass wall times are deterministic.
type Stats struct {
	// Passes lists the executed pipeline passes in order.
	Passes []PassStat
	// InstsDecoded and InstsReused count instruction-decode cache
	// misses and hits across the whole analysis, including candidate
	// validation probes.
	InstsDecoded int64
	InstsReused  int64
	// ColdStarts counts disassembly sessions started with an empty
	// decode cache; the incremental pipeline reports exactly 1.
	ColdStarts int
	// Extends, Retracts, Forks, and Probes count the session
	// operations the pipeline performed.
	Extends  int
	Retracts int
	Forks    int
	Probes   int
	// XrefIterations counts pointer-detection rounds run;
	// XrefConverged reports whether every round sequence reached its
	// fixed point rather than hitting the iteration cap (truncation
	// used to be silent).
	XrefIterations int
	XrefConverged  bool
}

// Option adjusts the analysis strategy.
type Option func(*core.Strategy)

// FDEOnly restricts the analysis to raw FDE extraction (the paper's
// "FDE" baseline row).
func FDEOnly() Option {
	return func(s *core.Strategy) { *s = core.Strategy{} }
}

// WithoutXref disables function-pointer detection.
func WithoutXref() Option {
	return func(s *core.Strategy) { s.Xref = false }
}

// WithoutTailCall disables Algorithm 1 (no FDE-error fixing).
func WithoutTailCall() Option {
	return func(s *core.Strategy) { s.TailCall = false }
}

// Analyze runs the FETCH pipeline on an ELF binary given as bytes.
func Analyze(elfData []byte, opts ...Option) (*Result, error) {
	img, err := elfx.LoadELF(elfData)
	if err != nil {
		return nil, err
	}
	return analyzeImage(img, opts...)
}

// AnalyzeFile runs the FETCH pipeline on an ELF binary on disk.
func AnalyzeFile(path string, opts ...Option) (*Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fetch: %w", err)
	}
	return Analyze(data, opts...)
}

func analyzeImage(img *elfx.Image, opts ...Option) (*Result, error) {
	strat := core.FETCH
	for _, o := range opts {
		o(&strat)
	}
	rep, err := core.Analyze(img.Strip(), strat)
	if err != nil {
		return nil, err
	}
	st := Stats{
		InstsDecoded:   rep.Stats.Disasm.InstsDecoded,
		InstsReused:    rep.Stats.Disasm.InstsReused,
		ColdStarts:     rep.Stats.Disasm.ColdStarts,
		Extends:        rep.Stats.Disasm.Extends,
		Retracts:       rep.Stats.Disasm.Retracts,
		Forks:          rep.Stats.Disasm.Forks,
		Probes:         rep.Stats.Disasm.Probes,
		XrefIterations: rep.Stats.XrefIterations,
		XrefConverged:  rep.Stats.XrefConverged,
	}
	for _, ps := range rep.Stats.Passes {
		st.Passes = append(st.Passes, PassStat{Name: ps.Name, Wall: ps.Wall})
	}
	return &Result{
		FunctionStarts:       rep.SortedFuncs(),
		FDEStarts:            rep.FDEStarts,
		NewFromPointers:      rep.XrefNew,
		NewFromTailCalls:     rep.TailNew,
		MergedParts:          rep.Merged,
		RemovedBogusFDEs:     rep.CFIErrRemoved,
		SkippedIncompleteCFI: rep.SkippedIncomplete,
		Stats:                st,
	}, nil
}

// Input is one binary of a batch. Data takes precedence when set;
// otherwise the binary is read from Path.
type Input struct {
	// Name labels the item in its BatchResult. Defaults to Path.
	Name string
	// Path is the on-disk binary, read when Data is nil.
	Path string
	// Data is the raw ELF image, if already in memory.
	Data []byte
}

// BatchOptions tunes AnalyzeBatch.
type BatchOptions struct {
	// Jobs bounds worker concurrency; non-positive means one worker
	// per available CPU. Jobs=1 reproduces the sequential path
	// exactly (it also does so for any other value — see AnalyzeBatch).
	Jobs int
	// Context cancels outstanding work; nil means context.Background.
	// After cancellation, unstarted items report the context error as
	// their per-item Err.
	Context context.Context
	// Options apply to every item of the batch.
	Options []Option
}

// BatchResult is one input's outcome.
type BatchResult struct {
	// Name echoes Input.Name (or Input.Path when Name was empty).
	Name string
	// Result is nil when Err is set.
	Result *Result
	// Err is this item's failure; other items are unaffected.
	Err error
}

// AnalyzeBatch runs the FETCH pipeline over a set of binaries using a
// bounded worker pool. Results come back in input order and are
// identical to calling Analyze/AnalyzeFile on each input sequentially;
// per-item failures (unreadable file, corrupt ELF) are captured in the
// item's BatchResult without affecting the rest of the batch.
func AnalyzeBatch(inputs []Input, opts BatchOptions) []BatchResult {
	rs := pool.Map(opts.Context, opts.Jobs, inputs,
		func(_ context.Context, _ int, in Input) (*Result, error) {
			if in.Data == nil {
				return AnalyzeFile(in.Path, opts.Options...)
			}
			return Analyze(in.Data, opts.Options...)
		})
	out := make([]BatchResult, len(inputs))
	for i, r := range rs {
		name := inputs[i].Name
		if name == "" {
			name = inputs[i].Path
		}
		out[i] = BatchResult{Name: name, Result: r.Value, Err: r.Err}
	}
	return out
}

// SampleConfig parameterizes GenerateSample.
type SampleConfig struct {
	Seed     int64
	NumFuncs int    // default 120
	Opt      string // "O2" (default), "O3", "Os", "Ofast"
	Compiler string // "gcc" (default) or "clang"
	Lang     string // "c" (default) or "c++"
	Stripped bool
}

// SampleTruth is the ground truth of a generated sample binary.
type SampleTruth struct {
	// FunctionStarts are the true starts.
	FunctionStarts []uint64
	// PartStarts are non-contiguous part addresses: FDE-carrying
	// locations that are NOT function starts (false-positive bait).
	PartStarts []uint64
	// Names maps addresses to source-level names.
	Names map[uint64]string
}

// GenerateSample synthesizes a small x64 ELF executable with known
// ground truth — real machine code, .eh_frame, jump tables, tail
// calls, and non-contiguous functions. Useful for demos, tests, and
// fuzzing harnesses.
func GenerateSample(cfg SampleConfig) ([]byte, *SampleTruth, error) {
	sc := synth.DefaultConfig("sample", cfg.Seed, parseOpt(cfg.Opt),
		parseCompiler(cfg.Compiler), parseLang(cfg.Lang))
	if cfg.NumFuncs > 0 {
		sc.NumFuncs = cfg.NumFuncs
	}
	img, truth, err := synth.Generate(sc)
	if err != nil {
		return nil, nil, err
	}
	if cfg.Stripped {
		img = img.Strip()
	}
	raw, err := elfx.WriteELF(img)
	if err != nil {
		return nil, nil, err
	}
	st := &SampleTruth{Names: make(map[uint64]string)}
	st.FunctionStarts = truth.SortedStarts()
	for _, fn := range truth.Funcs {
		st.Names[fn.Addr] = fn.Name
	}
	for _, p := range truth.Parts {
		st.PartStarts = append(st.PartStarts, p.Addr)
		st.Names[p.Addr] = p.Name
	}
	return raw, st, nil
}

func parseOpt(s string) synth.Opt {
	switch s {
	case "O3":
		return synth.O3
	case "Os":
		return synth.Os
	case "Ofast":
		return synth.Ofast
	}
	return synth.O2
}

func parseCompiler(s string) synth.Compiler {
	if s == "clang" {
		return synth.Clang
	}
	return synth.GCC
}

func parseLang(s string) synth.Lang {
	if s == "c++" || s == "cpp" {
		return synth.LangCPP
	}
	return synth.LangC
}
