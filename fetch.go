// Package fetch detects function starts in System-V x86-64 ELF binaries
// from their exception-handling information, implementing the FETCH
// system from "Towards Optimal Use of Exception Handling Information
// for Function Detection" (DSN 2021).
//
// The pipeline extracts FDE PC Begin values from .eh_frame, runs safe
// recursive disassembly (bounded jump tables, skipped indirect calls,
// no tail-call guessing, fixed-point non-returning analysis including
// the error/error_at_line first-argument slice), validates conservative
// function-pointer candidates, and fixes the errors FDEs themselves
// introduce — merging per-part FDEs of non-contiguous functions via
// tail-call reasoning on CFI-recorded stack heights, and removing
// hand-written FDEs that violate the calling convention.
//
// Basic use:
//
//	res, err := fetch.AnalyzeFile("/bin/something")
//	if err != nil { ... }
//	for _, start := range res.FunctionStarts { ... }
//
// Whole corpora are analyzed with AnalyzeBatch, which fans the items
// out over a bounded worker pool while keeping results in input order
// and capturing errors per item:
//
//	results := fetch.AnalyzeBatch(inputs, fetch.BatchOptions{Jobs: runtime.NumCPU()})
//	for _, r := range results {
//		if r.Err != nil { ... continue }
//		for _, start := range r.Result.FunctionStarts { ... }
//	}
//
// Batch results are byte-identical to analyzing each input
// sequentially: parallelism changes wall-clock time, never output.
package fetch

import (
	"context"
	"fmt"
	"time"

	"fetch/internal/core"
	"fetch/internal/ehframe"
	"fetch/internal/elfx"
	"fetch/internal/pool"
	"fetch/internal/resultcache"
	"fetch/internal/synth"
)

// Result reports the detected function starts and the pipeline's
// corrections.
type Result struct {
	// FunctionStarts is the final detected set, in address order.
	FunctionStarts []uint64
	// FDEStarts are the raw PC Begin values extracted from .eh_frame.
	FDEStarts []uint64
	// NewFromPointers are starts accepted by §IV-E pointer validation.
	NewFromPointers []uint64
	// NewFromTailCalls are targets added by tail-call detection.
	NewFromTailCalls []uint64
	// MergedParts maps each non-contiguous-part FDE start that was
	// merged away to the function start owning it.
	MergedParts map[uint64]uint64
	// RemovedBogusFDEs are FDE starts removed by the §V-B
	// calling-convention sweep (hand-written CFI errors).
	RemovedBogusFDEs []uint64
	// SkippedIncompleteCFI counts functions Algorithm 1 skipped
	// because their CFI carries no complete rsp-relative heights.
	SkippedIncompleteCFI int
	// Stats reports per-pass wall times and the incremental-analysis
	// counters of the pipeline's shared disassembly session.
	Stats Stats
}

// PassStat is one pipeline pass's wall-clock cost. Wall times are the
// only non-deterministic part of a Result.
type PassStat struct {
	// Name is the pass label: "fde", "recursive", "xref", "tailcall".
	Name string
	// Wall is the pass's elapsed time.
	Wall time.Duration
}

// Stats makes the pipeline's incremental behavior observable: after
// the initial recursive sweep, pointer-detection rounds re-analyze via
// session Extend, §V-B CFI-error recovery via Retract, and candidate
// validation via fork Probes — never a cold resweep (ColdStarts stays
// 1). All fields except the pass wall times are deterministic.
type Stats struct {
	// Passes lists the executed pipeline passes in order.
	Passes []PassStat
	// InstsDecoded and InstsReused count instruction-decode cache
	// misses and hits across the whole analysis, including candidate
	// validation probes.
	InstsDecoded int64
	InstsReused  int64
	// ColdStarts counts disassembly sessions started with an empty
	// decode cache; the incremental pipeline reports exactly 1.
	ColdStarts int
	// Extends, Retracts, Forks, and Probes count the session
	// operations the pipeline performed.
	Extends  int
	Retracts int
	Forks    int
	Probes   int
	// XrefIterations counts pointer-detection rounds run;
	// XrefConverged reports whether every round sequence reached its
	// fixed point rather than hitting the iteration safety bound.
	XrefIterations int
	XrefConverged  bool
	// Truncated reports that pointer detection hit its iteration
	// safety bound before converging. The historical hard cap of 3
	// rounds truncated silently; the pipeline now iterates to
	// convergence and records the pathological bound-hit here.
	Truncated bool

	// Jobs echoes the effective intra-binary parallelism (1 when
	// sequential). ShardedPasses counts disassembly passes executed as
	// sharded union walks, ShardFallbacks those whose exactness guards
	// forced the sequential replay, MergeWall the total shard-merge
	// time, and Shards the per-shard-slot work. All of these — like
	// the decode counters and wall times — describe the execution, not
	// the analysis result: jobs=N output is byte-identical to jobs=1
	// (see StripSchedule).
	Jobs           int
	ShardedPasses  int
	ShardFallbacks int
	MergeWall      time.Duration
	Shards         []ShardStat

	// DeltaPath reports that the result was served by function-granular
	// delta re-analysis: the binary missed the whole-binary cache, but a
	// recorded trace with the same layout residue proved that only
	// analysis-equivalent function ranges changed, so the recorded
	// result was served without re-running the pipeline.
	// DeltaDirtyRanges and DeltaTotalRanges describe the verified reuse:
	// how many roster ranges changed out of how many. On a cold run,
	// DeltaFallbackReason records why a delta attempt gave up ("" when
	// no attempt was made or the attempt succeeded). All four describe
	// how the result was obtained, never what it is — a delta-served
	// result is byte-identical to the cold recomputation after
	// StripSchedule, which zeroes them.
	DeltaPath           bool
	DeltaDirtyRanges    int
	DeltaTotalRanges    int
	DeltaFallbackReason string

	// PeakImageBytes is the section content the analysis held on the
	// Go heap: the whole binary for buffered images (Analyze), only
	// materialized copies for file-backed ones (AnalyzeFile serves
	// executable sections zero-copy from an mmap). PeakAuxBytes is the
	// high-water accounted estimate of analysis data structures
	// (owner-index chunks, decode cache, data-pointer index) at
	// documented per-entry costs. Both describe how the analysis ran,
	// never what it found — buffered and file-backed runs differ here
	// and nowhere else, so StripSchedule zeroes them.
	PeakImageBytes int64
	PeakAuxBytes   int64
}

// ShardStat is one shard slot's accumulated work across an analysis.
type ShardStat struct {
	// Seeds counts seed addresses assigned to the slot.
	Seeds int
	// InstsDecoded and InstsReused are the slot's decode-cache misses
	// and hits.
	InstsDecoded int64
	InstsReused  int64
	// Wall is the slot's total walk time.
	Wall time.Duration
}

// StripSchedule returns a copy of the result with every
// scheduling-dependent field zeroed: wall times, decode/probe/fork
// traffic counters, and the shard trace. What remains — the detected
// starts, the corrections, and the deterministic pipeline counters
// (extends, retracts, xref iterations, convergence, truncation) — is
// identical for every Jobs value and every scheduler interleaving; the
// differential checkers compare codec encodings of stripped results
// byte for byte.
func StripSchedule(r *Result) *Result {
	cp := *r
	cp.Stats.Passes = append([]PassStat(nil), r.Stats.Passes...)
	for i := range cp.Stats.Passes {
		cp.Stats.Passes[i].Wall = 0
	}
	cp.Stats.InstsDecoded = 0
	cp.Stats.InstsReused = 0
	cp.Stats.Forks = 0
	cp.Stats.Probes = 0
	cp.Stats.Jobs = 0
	cp.Stats.ShardedPasses = 0
	cp.Stats.ShardFallbacks = 0
	cp.Stats.MergeWall = 0
	cp.Stats.Shards = nil
	cp.Stats.DeltaPath = false
	cp.Stats.DeltaDirtyRanges = 0
	cp.Stats.DeltaTotalRanges = 0
	cp.Stats.DeltaFallbackReason = ""
	cp.Stats.PeakImageBytes = 0
	cp.Stats.PeakAuxBytes = 0
	return &cp
}

// Options is the resolved per-analysis configuration: the pipeline
// strategy plus the optional result cache. Callers never construct it
// directly — they pass Option values to Analyze/AnalyzeFile — but the
// resolved form is what an Option edits.
type Options struct {
	// Strategy selects the pipeline stages; defaults to full FETCH.
	Strategy core.Strategy
	// Cache, when non-nil, short-circuits analysis of byte-identical
	// binaries: a hit returns the stored result without decoding, a
	// miss stores the fresh result for the next caller.
	Cache *Cache
	// Jobs > 1 shards the analysis inside the binary: disassembly
	// passes, non-return inference, pointer-candidate validation, and
	// Algorithm 1's precomputations run on a worker pool of that size.
	// Output is byte-identical for every value (only wall times and
	// the scheduling-trace counters in Stats change), which is why the
	// result cache keys on (binary, strategy) and ignores it. Values
	// ≤ 1 run fully sequentially.
	Jobs int
}

// Option adjusts one analysis (strategy selection, caching).
type Option func(*Options)

// buildOptions resolves an option list against the defaults.
func buildOptions(opts []Option) Options {
	o := Options{Strategy: core.FETCH}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// FDEOnly restricts the analysis to raw FDE extraction (the paper's
// "FDE" baseline row).
func FDEOnly() Option {
	return func(o *Options) { o.Strategy = core.Strategy{} }
}

// WithoutXref disables function-pointer detection.
func WithoutXref() Option {
	return func(o *Options) { o.Strategy.Xref = false }
}

// WithoutTailCall disables Algorithm 1 (no FDE-error fixing).
func WithoutTailCall() Option {
	return func(o *Options) { o.Strategy.TailCall = false }
}

// WithCache attaches a result cache to the analysis: a binary whose
// bytes, strategy, and schema version match a stored entry is served
// from the cache instead of being re-analyzed.
func WithCache(c *Cache) Option {
	return func(o *Options) { o.Cache = c }
}

// WithJobs sets the intra-binary shard parallelism (Options.Jobs).
func WithJobs(n int) Option {
	return func(o *Options) { o.Jobs = n }
}

// Analyze runs the FETCH pipeline on an ELF binary given as bytes.
func Analyze(elfData []byte, opts ...Option) (*Result, error) {
	return analyzeData(elfData, buildOptions(opts))
}

// AnalyzeFile runs the FETCH pipeline on an ELF binary on disk through
// the file-backed image path: the binary is never materialized whole —
// the cache key is a streaming hash, executable sections are read as
// zero-copy windows of an mmap (pread copies where mapping is
// unavailable), and non-executable sections the analysis never touches
// are never read at all. The result is codec-byte-identical to
// Analyze over the same bytes after StripSchedule (only the
// peak-memory accounting differs).
func AnalyzeFile(path string, opts ...Option) (*Result, error) {
	res, _, err := analyzeFilePath(path, buildOptions(opts))
	return res, err
}

// analyzeData is the shared analysis entry point under resolved
// options.
func analyzeData(data []byte, o Options) (*Result, error) {
	res, _, err := analyzeCached(data, o)
	return res, err
}

// analyzeCached is the single lookup → delta → cold analysis → store
// sequence behind Analyze, AnalyzeBatch, and Cache.Analyze: consult
// the cache (when one is attached), on a whole-binary miss try
// function-granular delta re-analysis against a recorded trace, and
// only then run the cold pipeline — recording a fresh trace so the
// next recompilation of this binary can take the delta path. A cached
// or delta-served result is byte-for-byte the codec round trip of the
// result the cold path produced — the oracle's CachedEqualsRecomputed
// and DeltaEqualsCold checkers hold this equal (modulo the scheduling
// trace, see StripSchedule) to a recomputation across every
// adversarial profile. The cache key deliberately excludes Jobs:
// sharded and sequential runs produce the same analysis, so either
// may serve the other's entry (whose Stats then describe the run that
// produced it).
func analyzeCached(data []byte, o Options) (*Result, bool, error) {
	if o.Cache == nil {
		res, err := analyzeCold(data, o)
		return res, false, err
	}
	key := cacheKey(resultcache.HashBytes(data), o.Strategy)
	if res, ok := o.Cache.lookup(key); ok {
		return res, true, nil
	}
	img, err := elfx.LoadELF(data)
	if err != nil {
		return nil, false, err
	}
	return analyzeImageCached(key, img, o)
}

// analyzeFilePath is analyzeCached for on-disk binaries: the cache key
// comes from a streaming hash (the file is never read whole), a miss
// loads the image file-backed, and the backing is closed once the
// pipeline finishes.
func analyzeFilePath(path string, o Options) (*Result, bool, error) {
	if o.Cache == nil {
		img, err := elfx.LoadELFFile(path)
		if err != nil {
			return nil, false, err
		}
		defer img.Close()
		res, err := analyzeImageCold(img, o)
		return res, false, err
	}
	sum, err := resultcache.HashFile(path)
	if err != nil {
		return nil, false, fmt.Errorf("fetch: %w", err)
	}
	key := cacheKey(sum, o.Strategy)
	if res, ok := o.Cache.lookup(key); ok {
		return res, true, nil
	}
	img, err := elfx.LoadELFFile(path)
	if err != nil {
		return nil, false, err
	}
	defer img.Close()
	return analyzeImageCached(key, img, o)
}

// analyzeImageCached is the shared post-lookup tail of the cached
// paths: try delta replay, then run cold (recording a trace when the
// delta tier is enabled) and store.
func analyzeImageCached(key resultcache.Key, img *elfx.Image, o Options) (*Result, bool, error) {
	simg := img.Strip()

	var sec *ehframe.Section
	if eh, ok := simg.Section(".eh_frame"); ok {
		sec, _ = ehframe.Decode(eh.Bytes(), eh.Addr)
	}
	res, outcome, served := o.Cache.tryDelta(simg, sec, o)
	if served {
		// Store the canonical (delta-stat-free) result under the new
		// binary's key first, so the next identical request is a plain
		// hit; only the returned copy carries the delta markers.
		o.Cache.store(key, res)
		res.Stats.DeltaPath = true
		res.Stats.DeltaDirtyRanges = outcome.DirtyRanges
		res.Stats.DeltaTotalRanges = outcome.TotalRanges
		return res, true, nil
	}

	if !o.Cache.delta {
		res, err := analyzeImageCold(img, o)
		if err != nil {
			return nil, false, err
		}
		o.Cache.store(key, res)
		return res, false, nil
	}

	// Cold run with recording, so a future recompilation of this binary
	// can be served by delta replay.
	rep, tr, err := core.AnalyzeRecorded(simg, core.Config{Strategy: o.Strategy, Jobs: o.Jobs})
	if err != nil {
		return nil, false, err
	}
	cres := reportToResult(rep)
	o.Cache.store(key, cres)
	if tr != nil {
		tr.BinSHA = key.SHA256
	}
	o.Cache.storeTrace(tr, simg, o.Strategy)
	// The fallback reason rides only on the returned copy, after the
	// canonical blob is stored.
	cres.Stats.DeltaFallbackReason = outcome.Reason
	return cres, false, nil
}

// analyzeCold runs the full pipeline with no cache involvement.
func analyzeCold(data []byte, o Options) (*Result, error) {
	img, err := elfx.LoadELF(data)
	if err != nil {
		return nil, err
	}
	return analyzeImageCold(img, o)
}

// analyzeImageCold runs the pipeline over an already-loaded image.
func analyzeImageCold(img *elfx.Image, o Options) (*Result, error) {
	rep, err := core.AnalyzeConfig(img.Strip(), core.Config{Strategy: o.Strategy, Jobs: o.Jobs})
	if err != nil {
		return nil, err
	}
	return reportToResult(rep), nil
}

// reportToResult converts a pipeline report to the public Result.
func reportToResult(rep *core.Report) *Result {
	st := Stats{
		InstsDecoded:   rep.Stats.Disasm.InstsDecoded,
		InstsReused:    rep.Stats.Disasm.InstsReused,
		ColdStarts:     rep.Stats.Disasm.ColdStarts,
		Extends:        rep.Stats.Disasm.Extends,
		Retracts:       rep.Stats.Disasm.Retracts,
		Forks:          rep.Stats.Disasm.Forks,
		Probes:         rep.Stats.Disasm.Probes,
		XrefIterations: rep.Stats.XrefIterations,
		XrefConverged:  rep.Stats.XrefConverged,
		Truncated:      rep.Stats.Truncated,
		Jobs:           rep.Stats.Jobs,
		ShardedPasses:  rep.Stats.Disasm.ShardedPasses,
		ShardFallbacks: rep.Stats.Disasm.ShardFallbacks,
		MergeWall:      rep.Stats.Disasm.MergeWall,
		PeakImageBytes: rep.Stats.PeakImageBytes,
		PeakAuxBytes:   rep.Stats.PeakAuxBytes,
	}
	for _, sh := range rep.Stats.Disasm.Shards {
		st.Shards = append(st.Shards, ShardStat{
			Seeds:        sh.Seeds,
			InstsDecoded: sh.InstsDecoded,
			InstsReused:  sh.InstsReused,
			Wall:         sh.Wall,
		})
	}
	for _, ps := range rep.Stats.Passes {
		st.Passes = append(st.Passes, PassStat{Name: ps.Name, Wall: ps.Wall})
	}
	return &Result{
		FunctionStarts:       rep.SortedFuncs(),
		FDEStarts:            rep.FDEStarts,
		NewFromPointers:      rep.XrefNew,
		NewFromTailCalls:     rep.TailNew,
		MergedParts:          rep.Merged,
		RemovedBogusFDEs:     rep.CFIErrRemoved,
		SkippedIncompleteCFI: rep.SkippedIncomplete,
		Stats:                st,
	}
}

// Input is one binary of a batch. Data takes precedence when set;
// otherwise the binary is read from Path.
type Input struct {
	// Name labels the item in its BatchResult. Defaults to Path.
	Name string
	// Path is the on-disk binary, read when Data is nil.
	Path string
	// Data is the raw ELF image, if already in memory.
	Data []byte
}

// BatchOptions tunes AnalyzeBatch.
type BatchOptions struct {
	// Jobs bounds worker concurrency across binaries; non-positive
	// means one worker per available CPU. Jobs=1 reproduces the
	// sequential path exactly (it also does so for any other value —
	// see AnalyzeBatch).
	Jobs int
	// IntraJobs sets each item's intra-binary shard parallelism
	// (Options.Jobs), equivalent to appending WithJobs(IntraJobs) to
	// Options (an explicit WithJobs there wins). A batch saturating
	// its workers with Jobs rarely profits from IntraJobs > 1; a batch
	// of one large binary is the case it exists for.
	IntraJobs int
	// Context cancels outstanding work; nil means context.Background.
	// After cancellation, unstarted items report the context error as
	// their per-item Err.
	Context context.Context
	// Options apply to every item of the batch.
	Options []Option
	// Cache is the batch-level result cache, equivalent to appending
	// WithCache(Cache) to Options (an explicit WithCache there wins).
	// Batches already dedup identical inputs internally even without a
	// cache; attaching one additionally carries results across batches
	// and processes.
	Cache *Cache
}

// BatchResult is one input's outcome.
type BatchResult struct {
	// Name echoes Input.Name (or Input.Path when Name was empty).
	Name string
	// Result is nil when Err is set.
	Result *Result
	// Err is this item's failure; other items are unaffected.
	Err error
}

// AnalyzeBatch runs the FETCH pipeline over a set of binaries using a
// bounded worker pool. Results come back in input order and are
// identical to calling Analyze/AnalyzeFile on each input sequentially;
// per-item failures (unreadable file, corrupt ELF) are captured in the
// item's BatchResult without affecting the rest of the batch.
//
// Duplicate inputs — the same Path, or byte-identical Data — are
// analyzed once: the batch dedups before the pool and fans the shared
// outcome back out to every duplicate's slot, so a corpus with
// repeated binaries pays one analysis per distinct binary. Duplicates
// therefore share one *Result; treat batch results as read-only.
func AnalyzeBatch(inputs []Input, opts BatchOptions) []BatchResult {
	o := buildOptions(opts.Options)
	if o.Cache == nil {
		o.Cache = opts.Cache
	}
	if o.Jobs == 0 {
		o.Jobs = opts.IntraJobs
	}

	// Dedup before the pool: map every input to its group key and keep
	// the distinct groups in first-appearance order, so the pool sees
	// each distinct binary exactly once and scheduling stays
	// deterministic.
	groupOf := make([]int, len(inputs))
	var uniq []Input
	seen := make(map[string]int)
	for i, in := range inputs {
		k := inputKey(in)
		g, ok := seen[k]
		if !ok {
			g = len(uniq)
			seen[k] = g
			uniq = append(uniq, in)
		}
		groupOf[i] = g
	}

	rs := pool.Map(opts.Context, opts.Jobs, uniq,
		func(_ context.Context, _ int, in Input) (*Result, error) {
			// Path items go through the file-backed path: a corpus
			// batch never materializes whole binaries.
			if in.Data == nil {
				res, _, err := analyzeFilePath(in.Path, o)
				return res, err
			}
			return analyzeData(in.Data, o)
		})

	out := make([]BatchResult, len(inputs))
	for i := range inputs {
		name := inputs[i].Name
		if name == "" {
			name = inputs[i].Path
		}
		r := rs[groupOf[i]]
		out[i] = BatchResult{Name: name, Result: r.Value, Err: r.Err}
	}
	return out
}

// inputKey groups batch inputs that are guaranteed to produce the same
// outcome: byte-identical in-memory data, or the same on-disk path.
func inputKey(in Input) string {
	if in.Data != nil {
		sum := resultcache.HashBytes(in.Data)
		return "data:" + string(sum[:])
	}
	return "path:" + in.Path
}

// SampleConfig parameterizes GenerateSample.
type SampleConfig struct {
	Seed     int64
	NumFuncs int    // default 120
	Opt      string // "O2" (default), "O3", "Os", "Ofast"
	Compiler string // "gcc" (default) or "clang"
	Lang     string // "c" (default) or "c++"
	Arch     string // "x64" (default) or "a64"
	Stripped bool
}

// SampleTruth is the ground truth of a generated sample binary.
type SampleTruth struct {
	// FunctionStarts are the true starts.
	FunctionStarts []uint64
	// PartStarts are non-contiguous part addresses: FDE-carrying
	// locations that are NOT function starts (false-positive bait).
	PartStarts []uint64
	// Names maps addresses to source-level names.
	Names map[uint64]string
}

// GenerateSample synthesizes a small ELF executable with known
// ground truth — real machine code, .eh_frame, jump tables, tail
// calls, and non-contiguous functions — on the requested ISA
// (x86-64 by default, aarch64 with Arch "a64"). Useful for demos,
// tests, and fuzzing harnesses.
func GenerateSample(cfg SampleConfig) ([]byte, *SampleTruth, error) {
	sc := synth.DefaultConfig("sample", cfg.Seed, parseOpt(cfg.Opt),
		parseCompiler(cfg.Compiler), parseLang(cfg.Lang))
	sc.Arch = cfg.Arch
	if cfg.NumFuncs > 0 {
		sc.NumFuncs = cfg.NumFuncs
	}
	img, truth, err := synth.Generate(sc)
	if err != nil {
		return nil, nil, err
	}
	if cfg.Stripped {
		img = img.Strip()
	}
	raw, err := elfx.WriteELF(img)
	if err != nil {
		return nil, nil, err
	}
	st := &SampleTruth{Names: make(map[uint64]string)}
	st.FunctionStarts = truth.SortedStarts()
	for _, fn := range truth.Funcs {
		st.Names[fn.Addr] = fn.Name
	}
	for _, p := range truth.Parts {
		st.PartStarts = append(st.PartStarts, p.Addr)
		st.Names[p.Addr] = p.Name
	}
	return raw, st, nil
}

func parseOpt(s string) synth.Opt {
	switch s {
	case "O3":
		return synth.O3
	case "Os":
		return synth.Os
	case "Ofast":
		return synth.Ofast
	}
	return synth.O2
}

func parseCompiler(s string) synth.Compiler {
	if s == "clang" {
		return synth.Clang
	}
	return synth.GCC
}

func parseLang(s string) synth.Lang {
	if s == "c++" || s == "cpp" {
		return synth.LangCPP
	}
	return synth.LangC
}
