package service

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"time"
)

// requestIDHeader carries the request ID in both directions: an
// inbound value (from a proxy or retrying client) is adopted after
// sanitizing, and the chosen ID is always echoed on the response so
// clients can quote it when reporting a problem.
const requestIDHeader = "X-Request-Id"

// statusWriter records the status code and body size a handler wrote,
// for the access log and the labeled request counter.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

// WriteHeader records the status before delegating.
func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

// Write counts body bytes, defaulting the status to 200 like net/http.
func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// requestID returns the inbound X-Request-Id if it is a sane token, or
// a fresh random one. IDs are capped and restricted to hex-ish tokens
// so a hostile header can't inject log fields or unbounded cardinality.
func (s *Server) requestID(r *http.Request) string {
	if id := r.Header.Get(requestIDHeader); id != "" && len(id) <= 64 && isToken(id) {
		return id
	}
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Monotone fallback: still unique within the process.
		return fmt.Sprintf("seq-%d", s.reqSeq.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// isToken reports whether every byte is a safe ID character.
func isToken(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// routeLabel maps a request path onto the fixed route-pattern
// vocabulary used as the metrics label, collapsing path parameters so
// label cardinality stays bounded no matter what clients request.
func routeLabel(path string) string {
	switch {
	case path == "/v1/analyze":
		return "/v1/analyze"
	case strings.HasPrefix(path, "/v1/result/"):
		return "/v1/result/{sha256}"
	case path == "/v1/jobs":
		return "/v1/jobs"
	case strings.HasPrefix(path, "/v1/jobs/"):
		return "/v1/jobs/{id}"
	case path == "/v1/healthz":
		return "/v1/healthz"
	case path == "/v1/stats":
		return "/v1/stats"
	case path == "/metrics":
		return "/metrics"
	default:
		return "other"
	}
}

// withMiddleware wraps the route mux with the request-ID, access-log,
// and request-counter layers. The layers observe every response —
// including admission rejections — which is what makes the 429/503
// rates visible on /metrics without each handler reporting itself.
func (s *Server) withMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := s.requestID(r)
		w.Header().Set(requestIDHeader, id)
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		s.httpReqs.inc(fmt.Sprintf("path=%q,code=\"%d\"", routeLabel(r.URL.Path), sw.status))
		if s.logger != nil {
			s.logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.String("request_id", id),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", sw.status),
				slog.Int64("bytes_in", r.ContentLength),
				slog.Int64("bytes_out", sw.bytes),
				slog.Duration("duration", time.Since(start)),
				slog.String("remote", r.RemoteAddr),
			)
		}
	})
}
