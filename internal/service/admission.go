package service

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// Admission outcomes. The handlers map these onto HTTP statuses:
// errQueueFull → 429 + Retry-After, errQueueCancelled → 503 (counted
// as queue_cancelled, not a server error), errQueueTimeout → 503.
var (
	errQueueFull      = errors.New("service: admission queue full")
	errQueueCancelled = errors.New("service: client cancelled while queued")
	errQueueTimeout   = errors.New("service: queue deadline exceeded")
)

// admission is the two-stage gate in front of every analysis: a slot
// channel bounding concurrent work (MaxInFlight) and a counted queue
// bounding how many requests may wait for a slot (MaxQueued). A
// request beyond both bounds is rejected immediately — it never
// blocks — so overload surfaces as fast 429s instead of a pile of
// hung connections, the same discipline production intake agents use.
type admission struct {
	slots      chan struct{}
	queued     atomic.Int64
	peakQueued atomic.Int64
	maxQueued  int64
	timeout    time.Duration
}

func newAdmission(maxInFlight, maxQueued int, timeout time.Duration) *admission {
	return &admission{
		slots:     make(chan struct{}, maxInFlight),
		maxQueued: int64(maxQueued),
		timeout:   timeout,
	}
}

// acquire admits the caller to a slot, waiting in the queue if none is
// free. It returns the time spent queued and one of the admission
// errors above; on nil error the caller owns a slot and must release().
// The wait is bounded by the request context AND the queue deadline,
// whichever fires first.
func (a *admission) acquire(ctx context.Context) (time.Duration, error) {
	// Fast path: a free slot admits without touching the queue.
	select {
	case a.slots <- struct{}{}:
		return 0, nil
	default:
	}
	if !a.reserve() {
		return 0, errQueueFull
	}
	defer a.queued.Add(-1)

	start := time.Now()
	timer := time.NewTimer(a.timeout)
	defer timer.Stop()
	select {
	case a.slots <- struct{}{}:
		return time.Since(start), nil
	case <-ctx.Done():
		return time.Since(start), errQueueCancelled
	case <-timer.C:
		return time.Since(start), errQueueTimeout
	}
}

// tryAcquire takes a slot only if one is free right now.
func (a *admission) tryAcquire() bool {
	select {
	case a.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// reserve claims a queue position without blocking; false means the
// queue is at capacity. The caller must eventually queued.Add(-1).
func (a *admission) reserve() bool {
	for {
		n := a.queued.Load()
		if n >= a.maxQueued {
			return false
		}
		if a.queued.CompareAndSwap(n, n+1) {
			for {
				peak := a.peakQueued.Load()
				if n+1 <= peak || a.peakQueued.CompareAndSwap(peak, n+1) {
					return true
				}
			}
		}
	}
}

// release frees the slot taken by a successful acquire/tryAcquire.
func (a *admission) release() { <-a.slots }
