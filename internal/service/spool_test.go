package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"fetch"
)

// newSpoolServer builds a Server whose spool directory is private to
// the test, so leftover spool files are directly observable.
func newSpoolServer(t *testing.T, cfg Config) (*Server, *httptest.Server, string) {
	t.Helper()
	spool := t.TempDir()
	cache, err := fetch.NewCache(fetch.CacheConfig{MaxEntries: 64})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Cache = cache
	cfg.SpoolDir = spool
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(svc.Close)
	return svc, ts, spool
}

// waitSpoolEmpty polls until the spool directory has no files left
// (handlers remove them in deferred cleanup, which may run just after
// the response reaches the client).
func waitSpoolEmpty(t *testing.T, spool string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		ents, err := os.ReadDir(spool)
		if err != nil {
			t.Fatalf("reading spool dir: %v", err)
		}
		if len(ents) == 0 {
			return
		}
		if time.Now().After(deadline) {
			names := make([]string, len(ents))
			for i, e := range ents {
				names[i] = e.Name()
			}
			t.Fatalf("spool files leaked: %v", names)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSpoolCleanupAcrossOutcomes drives every upload outcome — success,
// analysis failure, oversize, empty body — and asserts the spool
// directory ends empty each time: no outcome may leak a temp file.
func TestSpoolCleanupAcrossOutcomes(t *testing.T) {
	_, ts, spool := newSpoolServer(t, Config{MaxInFlight: 2, MaxUploadBytes: 1 << 20})

	// Success: a valid binary analyzes and the spool file goes away.
	code, ar := postBinary(t, ts, "/v1/analyze", sampleELF(t, 31))
	if code != http.StatusOK {
		t.Fatalf("analyze: status %d", code)
	}
	if len(ar.Result) == 0 {
		t.Fatal("no result payload")
	}
	waitSpoolEmpty(t, spool)

	// Analysis failure: garbage spools fine, fails analysis 422, and
	// still cleans up.
	code, _ = postBinary(t, ts, "/v1/analyze", bytes.Repeat([]byte{0xAB}, 4096))
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("garbage analyze: status %d, want 422", code)
	}
	waitSpoolEmpty(t, spool)

	// Oversize: the cap surfaces as 413 (never a misclassified read
	// error) and the partial spool is removed.
	code, _ = postBinary(t, ts, "/v1/analyze", make([]byte, 1<<20+1))
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize analyze: status %d, want 413", code)
	}
	waitSpoolEmpty(t, spool)

	// Empty body stays 400.
	code, _ = postBinary(t, ts, "/v1/analyze", nil)
	if code != http.StatusBadRequest {
		t.Fatalf("empty analyze: status %d, want 400", code)
	}
	waitSpoolEmpty(t, spool)
}

// TestSpoolCleanupOnClientAbort aborts an upload mid-body: the server
// must classify it as a client error (400 territory, though the client
// never reads it) and remove the partial spool file.
func TestSpoolCleanupOnClientAbort(t *testing.T) {
	svc, ts, spool := newSpoolServer(t, Config{MaxInFlight: 2, MaxUploadBytes: 64 << 20})

	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/analyze", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.ContentLength = 32 << 20 // promise far more than we deliver
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		errCh <- err
	}()
	if _, err := pw.Write(make([]byte, 1<<20)); err != nil {
		t.Fatalf("writing first chunk: %v", err)
	}
	pw.CloseWithError(io.ErrClosedPipe) // abort mid-upload
	<-errCh

	waitSpoolEmpty(t, spool)
	// The abort was counted as an analyze error, not silently dropped.
	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats().Analyze.Errors == 0 {
		if time.Now().After(deadline) {
			t.Fatal("aborted upload was not counted as an error")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestJobSpoolCleanup runs an upload through the async path and
// asserts the job's spool file is removed once the job completes.
func TestJobSpoolCleanup(t *testing.T) {
	_, ts, spool := newSpoolServer(t, Config{MaxInFlight: 2})

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/octet-stream",
		bytes.NewReader(sampleELF(t, 32)))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job submit: status %d (%s)", resp.StatusCode, raw)
	}
	var jr jobResponse
	if err := json.Unmarshal(raw, &jr); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		var poll jobResponse
		if code := getJSON(t, ts.URL+"/v1/jobs/"+jr.JobID, &poll); code != http.StatusOK {
			t.Fatalf("job poll: status %d", code)
		}
		if poll.State == JobDone {
			break
		}
		if poll.State == JobFailed {
			t.Fatalf("job failed: %s", poll.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s", poll.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	waitSpoolEmpty(t, spool)
}

// zeroReader serves n zero bytes without any backing allocation — the
// "multi-hundred-MB upload" generator.
type zeroReader struct{ n int64 }

func (z *zeroReader) Read(p []byte) (int, error) {
	if z.n <= 0 {
		return 0, io.EOF
	}
	if int64(len(p)) > z.n {
		p = p[:z.n]
	}
	for i := range p {
		p[i] = 0
	}
	z.n -= int64(len(p))
	return len(p), nil
}

// TestHugeUploadStreamsToDisk streams a simulated multi-hundred-MB
// upload and asserts the server's heap never grows by anything near
// the body size: the body goes to the spool file, the (failing) parse
// reads only what it needs, and the spool file is removed. This is the
// regression test for the buffered-upload era, where accepting this
// request meant holding all of it in memory.
func TestHugeUploadStreamsToDisk(t *testing.T) {
	bodySize := int64(256 << 20)
	if testing.Short() {
		bodySize = 96 << 20
	}
	_, ts, spool := newSpoolServer(t, Config{MaxInFlight: 1, MaxUploadBytes: bodySize + 1})

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	var peakHeap atomic.Uint64
	samplerStop := make(chan struct{})
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		var ms runtime.MemStats
		for {
			select {
			case <-samplerStop:
				return
			case <-time.After(2 * time.Millisecond):
				runtime.ReadMemStats(&ms)
				for {
					old := peakHeap.Load()
					if ms.HeapAlloc <= old || peakHeap.CompareAndSwap(old, ms.HeapAlloc) {
						break
					}
				}
			}
		}
	}()

	resp, err := http.Post(ts.URL+"/v1/analyze", "application/octet-stream",
		&zeroReader{n: bodySize})
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	close(samplerStop)
	<-samplerDone

	// All zeros is not an ELF: the upload itself must succeed (i.e. not
	// 4xx from the transport) and fail only in analysis.
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("huge upload: status %d, want 422", resp.StatusCode)
	}
	waitSpoolEmpty(t, spool)

	// The heap budget: far below the body size. 32 MiB of headroom
	// covers the copy buffers, the HTTP stack, and allocator slack.
	budget := before.HeapAlloc + 32<<20
	if peak := peakHeap.Load(); peak > budget {
		t.Fatalf("peak heap %d MiB while streaming a %d MiB body (budget %d MiB): upload is buffering",
			peak>>20, bodySize>>20, budget>>20)
	}
}

// TestSpoolDirResolved pins the default: an unset SpoolDir resolves to
// the system temp directory, a set one is used as given.
func TestSpoolDirResolved(t *testing.T) {
	cache, err := fetch.NewCache(fetch.CacheConfig{MaxEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(Config{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if svc.SpoolDir() != os.TempDir() {
		t.Fatalf("default spool dir %q, want %q", svc.SpoolDir(), os.TempDir())
	}
	dir := filepath.Join(t.TempDir(), "spool")
	if err := os.Mkdir(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	svc2, err := New(Config{Cache: cache, SpoolDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if svc2.SpoolDir() != dir {
		t.Fatalf("spool dir %q, want %q", svc2.SpoolDir(), dir)
	}
}
