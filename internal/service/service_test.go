package service

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"fetch"
)

// sampleELF generates a deterministic in-memory sample binary.
func sampleELF(t testing.TB, seed int64) []byte {
	t.Helper()
	raw, _, err := fetch.GenerateSample(fetch.SampleConfig{Seed: seed, NumFuncs: 40, Stripped: true})
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// newTestServer builds a Server plus its httptest front end.
func newTestServer(t *testing.T, maxInFlight int) (*Server, *httptest.Server) {
	t.Helper()
	cache, err := fetch.NewCache(fetch.CacheConfig{MaxEntries: 64})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(Config{Cache: cache, MaxInFlight: maxInFlight})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(svc.Close)
	return svc, ts
}

// postBinary uploads raw ELF bytes to /v1/analyze.
func postBinary(t *testing.T, ts *httptest.Server, path string, body []byte) (int, analyzeResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ar analyzeResponse
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &ar); err != nil {
			t.Fatalf("bad analyze response %s: %v", raw, err)
		}
	}
	return resp.StatusCode, ar
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("bad JSON from %s: %v\n%s", url, err, raw)
		}
	}
	return resp.StatusCode
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, 2)
	var st map[string]string
	if code := getJSON(t, ts.URL+"/v1/healthz", &st); code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
	if st["status"] != "ok" {
		t.Fatalf("healthz: %v", st)
	}
}

func TestAnalyzeUploadThenCachedPaths(t *testing.T) {
	svc, ts := newTestServer(t, 2)
	bin := sampleELF(t, 71)
	sum := fetch.HashBinary(bin)
	hexSum := hex.EncodeToString(sum[:])

	// First upload: a cold analysis.
	code, ar := postBinary(t, ts, "/v1/analyze", bin)
	if code != http.StatusOK {
		t.Fatalf("analyze: status %d", code)
	}
	if ar.Cached {
		t.Fatal("first analysis reported cached")
	}
	if ar.SHA256 != hexSum {
		t.Fatalf("sha256 %s, want %s", ar.SHA256, hexSum)
	}
	res, err := fetch.DecodeResult(ar.Result)
	if err != nil {
		t.Fatalf("embedded result does not decode: %v", err)
	}
	if len(res.FunctionStarts) == 0 {
		t.Fatal("no function starts in served result")
	}

	// Second upload of the same bytes: served from cache, identical
	// result payload.
	code, ar2 := postBinary(t, ts, "/v1/analyze", bin)
	if code != http.StatusOK || !ar2.Cached {
		t.Fatalf("re-analyze: status %d cached %v", code, ar2.Cached)
	}
	if !bytes.Equal(ar.Result, ar2.Result) {
		t.Fatal("cached result payload differs from cold payload")
	}

	// By-hash POST form.
	body, _ := json.Marshal(map[string]string{"sha256": hexSum})
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("by-hash analyze: status %d", resp.StatusCode)
	}

	// GET /v1/result/{sha256}.
	var got analyzeResponse
	if code := getJSON(t, ts.URL+"/v1/result/"+hexSum, &got); code != http.StatusOK {
		t.Fatalf("result: status %d", code)
	}
	if !bytes.Equal(got.Result, ar.Result) {
		t.Fatal("GET result payload differs from analyze payload")
	}

	st := svc.Stats()
	if st.Analyze.Requests != 2 || st.Analyze.CacheHits != 1 || st.Analyze.CacheMisses != 1 {
		t.Fatalf("analyze counters: %+v", st.Analyze)
	}
	if st.Result.Requests != 1 || st.Result.Hits != 1 {
		t.Fatalf("result counters: %+v", st.Result)
	}
	if st.Analyze.ByHash != 1 || st.Analyze.ByHashHits != 1 {
		t.Fatalf("by-hash counters: %+v", st.Analyze)
	}
}

func TestResultMissAndBadHash(t *testing.T) {
	_, ts := newTestServer(t, 2)
	unknown := strings.Repeat("ab", 32)
	if code := getJSON(t, ts.URL+"/v1/result/"+unknown, nil); code != http.StatusNotFound {
		t.Fatalf("unknown hash: status %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/v1/result/nothex", nil); code != http.StatusBadRequest {
		t.Fatalf("bad hash: status %d, want 400", code)
	}
	body, _ := json.Marshal(map[string]string{"sha256": unknown})
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("by-hash miss: status %d, want 404", resp.StatusCode)
	}
}

func TestStrategyParamsKeySeparateEntries(t *testing.T) {
	_, ts := newTestServer(t, 2)
	bin := sampleELF(t, 72)
	sum := fetch.HashBinary(bin)
	hexSum := hex.EncodeToString(sum[:])

	code, full := postBinary(t, ts, "/v1/analyze", bin)
	if code != http.StatusOK {
		t.Fatalf("analyze: status %d", code)
	}
	code, fde := postBinary(t, ts, "/v1/analyze?fde_only=1", bin)
	if code != http.StatusOK || fde.Cached {
		t.Fatalf("fde-only analyze: status %d cached %v (want distinct cold entry)", code, fde.Cached)
	}
	fullRes, err := fetch.DecodeResult(full.Result)
	if err != nil {
		t.Fatal(err)
	}
	fdeRes, err := fetch.DecodeResult(fde.Result)
	if err != nil {
		t.Fatal(err)
	}
	if len(fdeRes.Stats.Passes) != 1 || fdeRes.Stats.Passes[0].Name != "fde" {
		t.Fatalf("fde-only ran passes %v, want just fde", fdeRes.Stats.Passes)
	}
	if len(fullRes.Stats.Passes) < 3 {
		t.Fatalf("full FETCH ran only %v", fullRes.Stats.Passes)
	}
	// The variant is part of the key on reads too.
	var got analyzeResponse
	if code := getJSON(t, ts.URL+"/v1/result/"+hexSum+"?fde_only=1", &got); code != http.StatusOK {
		t.Fatalf("fde-only result: status %d", code)
	}
	if !bytes.Equal(got.Result, fde.Result) {
		t.Fatal("fde-only result does not round-trip through its own cache entry")
	}
}

func TestAnalyzeRejectsEmptyAndHugeBodies(t *testing.T) {
	cache, err := fetch.NewCache(fetch.CacheConfig{})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(Config{Cache: cache, MaxInFlight: 1, MaxUploadBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	code, _ := postBinary(t, ts, "/v1/analyze", nil)
	if code != http.StatusBadRequest {
		t.Fatalf("empty body: status %d, want 400", code)
	}
	code, _ = postBinary(t, ts, "/v1/analyze", bytes.Repeat([]byte{0x90}, 4096))
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("huge body: status %d, want 413", code)
	}
	code, _ = postBinary(t, ts, "/v1/analyze", []byte("not an elf"))
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("garbage body: status %d, want 422", code)
	}
	if st := svc.Stats(); st.Analyze.Errors != 3 {
		t.Fatalf("error counter: %+v", st.Analyze)
	}
}

func TestMethodDiscipline(t *testing.T) {
	_, ts := newTestServer(t, 1)
	resp, err := http.Get(ts.URL + "/v1/analyze")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET analyze: status %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/result/"+strings.Repeat("00", 32), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST result: status %d", resp.StatusCode)
	}
	// healthz, stats, metrics, and the jobs endpoints are
	// method-disciplined too (healthz/stats historically accepted
	// anything).
	for _, tc := range []struct{ method, path string }{
		{http.MethodPost, "/v1/healthz"},
		{http.MethodDelete, "/v1/stats"},
		{http.MethodPost, "/metrics"},
		{http.MethodGet, "/v1/jobs"},
		{http.MethodPost, "/v1/jobs/someid"},
	} {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader("x"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("%s %s: status %d, want 405", tc.method, tc.path, resp.StatusCode)
		}
	}
}

// TestBoundedInFlight drives many concurrent distinct uploads through
// a MaxInFlight=1 server and asserts the high-water mark of concurrent
// analyses never exceeded the bound.
func TestBoundedInFlight(t *testing.T) {
	svc, ts := newTestServer(t, 1)
	const n = 6
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			bin := sampleELF(t, int64(100+i))
			resp, err := http.Post(ts.URL+"/v1/analyze", "application/octet-stream", bytes.NewReader(bin))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	st := svc.Stats()
	if st.PeakInFlight > 1 {
		t.Fatalf("peak in-flight %d exceeded bound 1", st.PeakInFlight)
	}
	if st.Analyze.Requests != n || st.Analyze.CacheMisses != n {
		t.Fatalf("counters after distinct uploads: %+v", st.Analyze)
	}
	if st.InFlight != 0 {
		t.Fatalf("in-flight gauge stuck at %d", st.InFlight)
	}
}

// TestQueuedRequestHonorsClientCancel fills the only analysis slot
// directly, then drives a request whose context is cancelled while it
// waits in the admission queue (how an HTTP/2 reset, a fronting
// proxy's deadline, or http.TimeoutHandler surfaces a client abort):
// it must come back 503 without ever acquiring the slot, and must be
// counted as a queue cancellation — NOT a server error.
func TestQueuedRequestHonorsClientCancel(t *testing.T) {
	svc, _ := newTestServer(t, 1)
	svc.adm.slots <- struct{}{} // occupy the only slot
	defer func() { <-svc.adm.slots }()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/analyze",
		bytes.NewReader(sampleELF(t, 140))).WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		svc.Handler().ServeHTTP(rec, req)
		close(done)
	}()
	// Wait until the request is actually queued, then abandon it.
	deadline := time.Now().Add(2 * time.Second)
	for svc.Stats().Queued == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if svc.Stats().Queued != 1 {
		t.Fatal("request never reached the admission queue")
	}
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("handler did not return after context cancel")
	}
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("cancelled-while-queued status %d, want 503", rec.Code)
	}
	st := svc.Stats()
	if st.InFlight != 0 {
		t.Fatalf("in-flight gauge %d after cancelled request", st.InFlight)
	}
	if st.Queued != 0 {
		t.Fatalf("queued gauge %d after cancelled request", st.Queued)
	}
	if st.Analyze.QueueCancelled != 1 {
		t.Fatalf("queue_cancelled %d, want 1", st.Analyze.QueueCancelled)
	}
	if st.Analyze.Errors != 0 {
		t.Fatalf("a queued client abort was counted as a server error: %+v", st.Analyze)
	}
}

// TestNoGoroutineLeaks runs a realistic request mix, closes the
// server, and checks the goroutine count settles back near the
// baseline: the service itself must not leave anything running.
func TestNoGoroutineLeaks(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		svc, ts := newTestServer(t, 2)
		bin := sampleELF(t, 150)
		for i := 0; i < 3; i++ {
			postBinary(t, ts, "/v1/analyze", bin)
		}
		getJSON(t, ts.URL+"/v1/stats", &StatsResponse{})
		_ = svc
		ts.Close()
	}()
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before, %d after shutdown", before, runtime.NumGoroutine())
}

// TestStatsEndpointShape decodes /v1/stats into the typed response and
// sanity-checks invariants the docs promise.
func TestStatsEndpointShape(t *testing.T) {
	_, ts := newTestServer(t, 3)
	bin := sampleELF(t, 160)
	postBinary(t, ts, "/v1/analyze", bin)
	postBinary(t, ts, "/v1/analyze", bin)

	var st StatsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if st.MaxInFlight != 3 {
		t.Fatalf("max_in_flight %d", st.MaxInFlight)
	}
	if st.UptimeNS <= 0 {
		t.Fatal("uptime not positive")
	}
	if st.Analyze.Requests != 2 || st.Analyze.CacheHits != 1 {
		t.Fatalf("analyze counters: %+v", st.Analyze)
	}
	// Raw store counters include delta-tier traffic (the recorded cold
	// run writes a manifest plus the function ranges); subtract it to
	// recover the result-tier traffic the two requests generated.
	if st.Cache.Puts-st.Cache.DeltaPuts != 1 ||
		st.Cache.Hits-st.Cache.ManifestHits-st.Cache.FnTierHits != 1 {
		t.Fatalf("cache counters: %+v", st.Cache)
	}
	if st.Analyze.AnalyzeNS <= 0 {
		t.Fatal("analyze latency counter not positive")
	}
}
