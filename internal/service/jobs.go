package service

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"fetch"
)

// Job lifecycle states reported by GET /v1/jobs/{id}.
const (
	// JobQueued means the job holds an admission-queue position and is
	// waiting for an analysis slot.
	JobQueued = "queued"
	// JobRunning means the job owns a slot and its analysis is running.
	JobRunning = "running"
	// JobDone means the analysis finished; the result is served by
	// content hash from the shared cache.
	JobDone = "done"
	// JobFailed means the analysis errored or shutdown aborted the job;
	// the response carries the error string.
	JobFailed = "failed"
)

// job is one async analysis tracked by the store. The fields after
// state are written exactly once, before the state transition that
// exposes them, and the store mutex orders both.
type job struct {
	id      string
	state   string
	created time.Time
	expires time.Time // zero until terminal, then created+TTL from completion
	sum     [32]byte
	hexSum  string
	// spoolPath is the temp file the upload was streamed to; the job
	// worker analyzes it file-backed and removes it when done.
	spoolPath string
	opts      []fetch.Option
	cached    bool
	errMsg    string
}

// jobStore is the TTL-bounded in-memory registry behind /v1/jobs.
// Terminal jobs are evicted lazily — every submit and lookup sweeps
// expired entries — so the store needs no reaper goroutine and its
// size is bounded by max live jobs + terminal jobs younger than TTL.
type jobStore struct {
	mu      sync.Mutex
	jobs    map[string]*job
	ttl     time.Duration
	max     int
	closed  bool
	closeCh chan struct{}
	wg      sync.WaitGroup
}

func newJobStore(max int, ttl time.Duration) *jobStore {
	return &jobStore{
		jobs:    make(map[string]*job),
		ttl:     ttl,
		max:     max,
		closeCh: make(chan struct{}),
	}
}

// sweepLocked drops terminal jobs past their TTL. Callers hold mu.
func (js *jobStore) sweepLocked(now time.Time) {
	for id, j := range js.jobs {
		if !j.expires.IsZero() && now.After(j.expires) {
			delete(js.jobs, id)
		}
	}
}

// add registers a new queued job, enforcing the store bound.
func (js *jobStore) add(j *job) error {
	js.mu.Lock()
	defer js.mu.Unlock()
	if js.closed {
		return errors.New("server shutting down")
	}
	js.sweepLocked(time.Now())
	if len(js.jobs) >= js.max {
		return errQueueFull
	}
	js.jobs[j.id] = j
	return nil
}

// get looks a job up, sweeping expired entries first.
func (js *jobStore) get(id string) (*job, bool) {
	js.mu.Lock()
	defer js.mu.Unlock()
	js.sweepLocked(time.Now())
	j, ok := js.jobs[id]
	return j, ok
}

// snapshot copies a job's visible fields under the store lock.
func (js *jobStore) snapshot(j *job) job {
	js.mu.Lock()
	defer js.mu.Unlock()
	return *j
}

// setRunning transitions a queued job to running.
func (js *jobStore) setRunning(j *job) {
	js.mu.Lock()
	j.state = JobRunning
	js.mu.Unlock()
}

// finish transitions a job to its terminal state and arms the TTL.
func (js *jobStore) finish(j *job, state, errMsg string, cached bool) {
	js.mu.Lock()
	j.state = state
	j.errMsg = errMsg
	j.cached = cached
	j.expires = time.Now().Add(js.ttl)
	js.mu.Unlock()
}

// close rejects further submissions and wakes queued workers.
func (js *jobStore) close() {
	js.mu.Lock()
	if !js.closed {
		js.closed = true
		close(js.closeCh)
	}
	js.mu.Unlock()
}

// newJobID returns a 16-hex-char random job identifier.
func (s *Server) newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "job-" + hex.EncodeToString([]byte{byte(s.reqSeq.Add(1))})
	}
	return hex.EncodeToString(b[:])
}

// jobResponse is the envelope of both POST /v1/jobs and
// GET /v1/jobs/{id}. Result and SHA256 appear once the job is done;
// Error once it failed.
type jobResponse struct {
	JobID  string          `json:"job_id"`
	State  string          `json:"state"`
	SHA256 string          `json:"sha256,omitempty"`
	Cached bool            `json:"cached,omitempty"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// handleJobSubmit serves POST /v1/jobs: accept an upload, reserve an
// admission position, and return 202 with a job ID immediately — the
// analysis runs in the background so large uploads don't pin an HTTP
// connection for the analysis's duration. Body-size and error
// semantics match POST /v1/analyze (413 oversize, 400 bad read), and
// like the synchronous path the upload streams to a spool file rather
// than the heap. Admission bounds are shared with the synchronous
// path: a submit beyond MaxInFlight+MaxQueued is rejected 429 rather
// than queued invisibly, so the queue bound caps concurrent spool
// files too.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		jsonError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}

	// Reserve capacity BEFORE spooling the upload, exactly like the
	// synchronous path: a free slot admits directly, otherwise the job
	// takes a queue position (or is bounced 429 like any other request
	// past the bound), so MaxInFlight+MaxQueued caps concurrent job
	// spool files too.
	admitted := s.adm.tryAcquire()
	if !admitted && !s.adm.reserve() {
		s.queueRejected.Add(1)
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		jsonError(w, http.StatusTooManyRequests,
			"admission queue full (%d in flight, %d queued); retry later",
			s.inFlight.Load(), s.adm.queued.Load())
		return
	}
	unreserve := func() {
		if admitted {
			s.adm.release()
		} else {
			s.adm.queued.Add(-1)
		}
	}

	path, sum, ok := s.spoolUpload(w, r)
	if !ok {
		unreserve()
		return
	}

	j := &job{
		id:        s.newJobID(),
		state:     JobQueued,
		created:   time.Now(),
		sum:       sum,
		spoolPath: path,
		opts:      optionsFromQuery(r),
	}
	j.hexSum = hex.EncodeToString(j.sum[:])
	if err := s.jobs.add(j); err != nil {
		unreserve()
		os.Remove(path)
		if errors.Is(err, errQueueFull) {
			s.queueRejected.Add(1)
			w.Header().Set("Retry-After", s.retryAfterSeconds())
			jsonError(w, http.StatusTooManyRequests, "job store full; retry later")
			return
		}
		jsonError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}

	s.jobsSubmitted.Add(1)
	s.jobsActive.Add(1)
	s.jobs.wg.Add(1)
	go s.runJob(j, admitted)

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(jobResponse{JobID: j.id, State: JobQueued, SHA256: j.hexSum})
}

// runJob is the background worker of one job: wait for an analysis
// slot (unless the submit already owned one), run the file-backed
// analysis of the spooled upload under the same in-flight accounting
// as synchronous requests, and park the result in the shared cache
// where GET /v1/jobs/{id} serves it from. The spool file is removed on
// every exit path, including shutdown-before-run.
func (s *Server) runJob(j *job, admitted bool) {
	defer s.jobs.wg.Done()
	defer s.jobsActive.Add(-1)
	defer os.Remove(j.spoolPath)
	if !admitted {
		waitStart := time.Now()
		select {
		case s.adm.slots <- struct{}{}:
			s.adm.queued.Add(-1)
			s.queueWait.observe(time.Since(waitStart))
		case <-s.jobs.closeCh:
			s.adm.queued.Add(-1)
			s.jobsFailed.Add(1)
			s.jobs.finish(j, JobFailed, "server shut down before the job ran", false)
			return
		}
	}
	defer s.adm.release()

	s.jobs.setRunning(j)
	s.enterFlight()
	defer s.exitFlight()

	opts := j.opts
	if s.intraJobs > 1 {
		opts = append(opts[:len(opts):len(opts)], fetch.WithJobs(s.intraJobs))
	}
	t0 := time.Now()
	_, cached, err := s.cache.AnalyzeFile(j.spoolPath, opts...)
	s.analyzeDur.observe(time.Since(t0))
	if err != nil {
		s.jobsFailed.Add(1)
		s.jobs.finish(j, JobFailed, err.Error(), false)
		return
	}
	s.jobsCompleted.Add(1)
	s.jobs.finish(j, JobDone, "", cached)
}

// handleJobGet serves GET /v1/jobs/{id}: the poll half of the async
// API. Unknown and TTL-expired IDs are 404; a done job's result is
// fetched from the cache by the content hash recorded at submit, so
// the bytes are exactly what the synchronous endpoint would serve.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		jsonError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	j, ok := s.jobs.get(id)
	if !ok {
		jsonError(w, http.StatusNotFound, "no job %q (unknown or expired)", id)
		return
	}
	snap := s.jobs.snapshot(j)
	resp := jobResponse{JobID: snap.id, State: snap.state, SHA256: snap.hexSum}
	switch snap.state {
	case JobFailed:
		resp.Error = snap.errMsg
	case JobDone:
		resp.Cached = snap.cached
		res, ok := s.cache.Get(snap.sum, snap.opts...)
		if !ok {
			// The TTL outlived the cache entry (eviction); the job is
			// still done, the caller just has to re-analyze for bytes.
			resp.Error = "result evicted from cache; re-submit to recompute"
			break
		}
		blob, err := fetch.EncodeResult(res)
		if err != nil {
			jsonError(w, http.StatusInternalServerError, "encoding result: %v", err)
			return
		}
		resp.Result = blob
	}
	writeJSON(w, resp)
}
