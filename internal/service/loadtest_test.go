package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fetch"
)

// TestLoadMixedTraffic is the load-test harness of the admission
// rework: thousands of concurrent mixed requests — cache hits, cold
// misses, oversize uploads, mid-flight client cancellations, async
// jobs — hammer a small server under the race detector. It asserts
// the production invariants the admission gate exists for:
//
//   - the in-flight bound and the queue bound held (peaks ≤ configured)
//   - every queue rejection was an immediate 429 carrying Retry-After
//   - oversize uploads were 413, never misclassified
//   - the server's terminal counters exactly account for every request
//     it admitted (no double counts, no losses)
//   - the gauges settle to zero, no goroutine leaks, heap stays bounded
//
// CI runs it with -short (reduced request count); a full run is
// `go test -race -run TestLoadMixedTraffic ./internal/service`.
func TestLoadMixedTraffic(t *testing.T) {
	total := 2000
	if testing.Short() {
		total = 400
	}
	const (
		maxInFlight = 4
		maxQueued   = 8
		maxUpload   = 64 << 10
		workers     = 32
	)

	goroutinesBefore := runtime.NumGoroutine()

	cache, err := fetch.NewCache(fetch.CacheConfig{MaxEntries: 64})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(Config{
		Cache:          cache,
		MaxInFlight:    maxInFlight,
		MaxQueued:      maxQueued,
		QueueTimeout:   5 * time.Second,
		MaxUploadBytes: maxUpload,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	client := &http.Client{}

	// The workload: one hot binary (cache hits), a handful of cold
	// ones, an oversize blob, and garbage that fails analysis.
	hot := sampleELF(t, 500)
	cold := make([][]byte, 6)
	for i := range cold {
		cold[i] = sampleELF(t, int64(510+i))
	}
	oversize := make([]byte, maxUpload+1)

	// Track peak heap while the storm runs (coarse 5ms sampling).
	// Uploads stream to spool files and analyses run file-backed, so
	// heap is bounded by per-analysis working state alone — the peak
	// must stay far below total × upload size.
	var peakHeap atomic.Uint64
	samplerStop := make(chan struct{})
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		var ms runtime.MemStats
		for {
			select {
			case <-samplerStop:
				return
			case <-time.After(5 * time.Millisecond):
				runtime.ReadMemStats(&ms)
				for {
					old := peakHeap.Load()
					if ms.HeapAlloc <= old || peakHeap.CompareAndSwap(old, ms.HeapAlloc) {
						break
					}
				}
			}
		}
	}()

	var (
		mu       sync.Mutex
		byStatus = map[int]int{}
		jobIDs   []string

		sync429       atomic.Int64
		clientErrors  atomic.Int64
		missingRetry  atomic.Int64
		wrongOversize atomic.Int64
	)
	record := func(status int) {
		mu.Lock()
		byStatus[status]++
		mu.Unlock()
	}

	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := 0; i < total; i++ {
		i := i
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			rng := rand.New(rand.NewSource(int64(i)))
			switch i % 10 {
			case 7: // oversize upload → 413
				resp, err := client.Post(ts.URL+"/v1/analyze", "application/octet-stream",
					bytes.NewReader(oversize))
				if err != nil {
					clientErrors.Add(1)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				record(resp.StatusCode)
				if resp.StatusCode != http.StatusRequestEntityTooLarge &&
					resp.StatusCode != http.StatusTooManyRequests &&
					resp.StatusCode != http.StatusServiceUnavailable {
					wrongOversize.Add(1)
				}
			case 8: // client cancels mid-flight
				ctx, cancel := context.WithCancel(context.Background())
				req, _ := http.NewRequestWithContext(ctx, http.MethodPost,
					ts.URL+"/v1/analyze", bytes.NewReader(hot))
				done := make(chan struct{})
				go func() {
					defer close(done)
					resp, err := client.Do(req)
					if err != nil {
						clientErrors.Add(1)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					record(resp.StatusCode)
				}()
				time.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
				cancel()
				<-done
			case 9: // async job for the hot binary
				resp, err := client.Post(ts.URL+"/v1/jobs", "application/octet-stream",
					bytes.NewReader(hot))
				if err != nil {
					clientErrors.Add(1)
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				record(resp.StatusCode)
				switch resp.StatusCode {
				case http.StatusAccepted:
					var jr jobResponse
					if err := json.Unmarshal(raw, &jr); err == nil && jr.JobID != "" {
						mu.Lock()
						jobIDs = append(jobIDs, jr.JobID)
						mu.Unlock()
					}
				case http.StatusTooManyRequests:
					if resp.Header.Get("Retry-After") == "" {
						missingRetry.Add(1)
					}
				}
			default: // upload: mostly the hot binary, some cold ones
				bin := hot
				if i%10 == 6 {
					bin = cold[i%len(cold)]
				}
				resp, err := client.Post(ts.URL+"/v1/analyze", "application/octet-stream",
					bytes.NewReader(bin))
				if err != nil {
					clientErrors.Add(1)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				record(resp.StatusCode)
				if resp.StatusCode == http.StatusTooManyRequests {
					sync429.Add(1)
					if resp.Header.Get("Retry-After") == "" {
						missingRetry.Add(1)
					}
				}
			}
		}()
	}
	wg.Wait()

	// Drain the async jobs that were accepted.
	deadline := time.Now().Add(60 * time.Second)
	for _, id := range jobIDs {
		for {
			resp, err := client.Get(ts.URL + "/v1/jobs/" + id)
			if err != nil {
				t.Fatal(err)
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("job %s poll: status %d", id, resp.StatusCode)
			}
			var jr jobResponse
			if err := json.Unmarshal(raw, &jr); err != nil {
				t.Fatal(err)
			}
			if jr.State == JobDone {
				break
			}
			if jr.State == JobFailed {
				t.Fatalf("job %s failed: %s", id, jr.Error)
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck in state %s", id, jr.State)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	close(samplerStop)
	<-samplerDone

	st := svc.Stats()
	t.Logf("statuses: %v; client-side errors: %d; stats: in-flight peak %d/%d, queued peak %d/%d, analyze %+v, jobs %+v, heap peak %d MiB",
		byStatus, clientErrors.Load(), st.PeakInFlight, maxInFlight, st.PeakQueued, maxQueued,
		st.Analyze, st.Jobs, peakHeap.Load()>>20)

	// The bounds held.
	if st.PeakInFlight > maxInFlight {
		t.Errorf("peak in-flight %d exceeded bound %d", st.PeakInFlight, maxInFlight)
	}
	if st.PeakQueued > maxQueued {
		t.Errorf("peak queued %d exceeded bound %d", st.PeakQueued, maxQueued)
	}
	// Queue rejections were immediate 429s with Retry-After.
	if missingRetry.Load() != 0 {
		t.Errorf("%d 429 responses lacked Retry-After", missingRetry.Load())
	}
	if wrongOversize.Load() != 0 {
		t.Errorf("%d oversize uploads got a status other than 413/429/503", wrongOversize.Load())
	}
	// Terminal accounting: every admitted analyze request ended in
	// exactly one of the terminal counters. Rejections are counted
	// server-side (svc.analyzeRejected, the sync-analyze share of
	// queue_rejected): a client that aborts before reading its 429 —
	// the cancel and oversize classes can — must not poke a hole in
	// the identity.
	terminal := st.Analyze.CacheHits + st.Analyze.CacheMisses + st.Analyze.Errors +
		st.Analyze.QueueCancelled + st.Analyze.QueueTimeouts + svc.analyzeRejected.Load()
	if st.Analyze.Requests != terminal {
		t.Errorf("request accounting leak: %d requests, %d terminal outcomes (%+v)",
			st.Analyze.Requests, terminal, st.Analyze)
	}
	if got := svc.analyzeRejected.Load(); got < sync429.Load() {
		t.Errorf("server sync rejections %d < client-observed sync 429s %d", got, sync429.Load())
	}
	if st.Analyze.QueueRejected < svc.analyzeRejected.Load() {
		t.Errorf("queue_rejected %d < its sync-analyze share %d",
			st.Analyze.QueueRejected, svc.analyzeRejected.Load())
	}
	// Gauges settled.
	if st.InFlight != 0 || st.Queued != 0 || st.Jobs.Active != 0 {
		t.Errorf("gauges not settled: in-flight %d, queued %d, jobs active %d",
			st.InFlight, st.Queued, st.Jobs.Active)
	}
	// Heap stayed bounded: far below total × upload size (which is
	// what an unbounded server would have buffered). The bound was
	// 512 MiB in the buffered-upload era; spooled uploads plus
	// file-backed analyses cut the per-request footprint enough to
	// halve it.
	if peak := peakHeap.Load(); peak > 256<<20 {
		t.Errorf("peak heap %d MiB; spooled uploads should keep memory bounded", peak>>20)
	}

	// Shutdown: no goroutines may survive the server.
	ts.Close()
	svc.Close()
	client.CloseIdleConnections()
	settleBy := time.Now().Add(10 * time.Second)
	for time.Now().Before(settleBy) {
		if runtime.NumGoroutine() <= goroutinesBefore+2 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("goroutine leak: %d before, %d after shutdown",
		goroutinesBefore, runtime.NumGoroutine())
}

// BenchmarkAnalyzeHitThroughput measures served cache hits per second
// through the full middleware + admission stack — the hot path the
// service exists for.
func BenchmarkAnalyzeHitThroughput(b *testing.B) {
	cache, err := fetch.NewCache(fetch.CacheConfig{MaxEntries: 64})
	if err != nil {
		b.Fatal(err)
	}
	svc, err := New(Config{Cache: cache, MaxInFlight: runtime.GOMAXPROCS(0)})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	bin, _, err := fetch.GenerateSample(fetch.SampleConfig{Seed: 42, NumFuncs: 40, Stripped: true})
	if err != nil {
		b.Fatal(err)
	}
	h := svc.Handler()
	// Warm the cache.
	warm := httptest.NewRequest(http.MethodPost, "/v1/analyze", bytes.NewReader(bin))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, warm)
	if rec.Code != http.StatusOK {
		b.Fatalf("warm analyze: %d %s", rec.Code, rec.Body.String())
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			req := httptest.NewRequest(http.MethodPost, "/v1/analyze", bytes.NewReader(bin))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK && rec.Code != http.StatusTooManyRequests {
				b.Fatalf("status %d", rec.Code)
			}
		}
	})
}
