package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fetch"
)

// submitJob posts a binary to /v1/jobs and decodes the envelope.
func submitJob(t *testing.T, ts *httptest.Server, path string, body []byte) (int, jobResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var jr jobResponse
	if resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(raw, &jr); err != nil {
			t.Fatalf("bad job response %s: %v", raw, err)
		}
	}
	return resp.StatusCode, jr
}

// pollJob polls GET /v1/jobs/{id} until the job is terminal or the
// deadline passes, returning the final envelope.
func pollJob(t *testing.T, ts *httptest.Server, id string, deadline time.Duration) jobResponse {
	t.Helper()
	stop := time.Now().Add(deadline)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll %s: status %d: %s", id, resp.StatusCode, raw)
		}
		var jr jobResponse
		if err := json.Unmarshal(raw, &jr); err != nil {
			t.Fatalf("bad poll response %s: %v", raw, err)
		}
		if jr.State == JobDone || jr.State == JobFailed {
			return jr
		}
		if time.Now().After(stop) {
			t.Fatalf("job %s still %s after %v", id, jr.State, deadline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJobLifecycleMatchesSync is the async acceptance criterion:
// submit → poll → done, and the job's result bytes are codec-identical
// to what the synchronous endpoint serves for the same binary.
func TestJobLifecycleMatchesSync(t *testing.T) {
	svc, ts := newTestServer(t, 2)
	bin := sampleELF(t, 300)

	code, jr := submitJob(t, ts, "/v1/jobs", bin)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d, want 202", code)
	}
	if jr.JobID == "" || (jr.State != JobQueued) {
		t.Fatalf("submit envelope: %+v", jr)
	}
	final := pollJob(t, ts, jr.JobID, 30*time.Second)
	if final.State != JobDone {
		t.Fatalf("job finished %s (%s), want done", final.State, final.Error)
	}
	if final.Cached {
		t.Fatal("first analysis of the binary reported cached")
	}
	if len(final.Result) == 0 {
		t.Fatal("done job carries no result")
	}

	// The synchronous path must serve byte-identical result JSON.
	code, ar := postBinary(t, ts, "/v1/analyze", bin)
	if code != http.StatusOK || !ar.Cached {
		t.Fatalf("sync analyze after job: status %d cached %v", code, ar.Cached)
	}
	if !bytes.Equal(ar.Result, final.Result) {
		t.Fatal("async result differs from synchronous result bytes")
	}
	if ar.SHA256 != final.SHA256 {
		t.Fatalf("hash mismatch: job %s, sync %s", final.SHA256, ar.SHA256)
	}

	// A second submission of the same bytes completes as a cache hit.
	_, jr2 := submitJob(t, ts, "/v1/jobs", bin)
	final2 := pollJob(t, ts, jr2.JobID, 30*time.Second)
	if final2.State != JobDone || !final2.Cached {
		t.Fatalf("re-submitted job: state %s cached %v", final2.State, final2.Cached)
	}

	st := svc.Stats()
	if st.Jobs.Submitted != 2 || st.Jobs.Completed != 2 || st.Jobs.Failed != 0 {
		t.Fatalf("job counters: %+v", st.Jobs)
	}
	if st.Jobs.Active != 0 {
		t.Fatalf("jobs active %d after completion", st.Jobs.Active)
	}
}

// TestJobStrategyVariant keys async jobs on the same strategy query
// parameters as the synchronous endpoints.
func TestJobStrategyVariant(t *testing.T) {
	_, ts := newTestServer(t, 2)
	bin := sampleELF(t, 301)
	_, jr := submitJob(t, ts, "/v1/jobs?fde_only=1", bin)
	final := pollJob(t, ts, jr.JobID, 30*time.Second)
	if final.State != JobDone {
		t.Fatalf("job: %s (%s)", final.State, final.Error)
	}
	code, sync := postBinary(t, ts, "/v1/analyze?fde_only=1", bin)
	if code != http.StatusOK || !sync.Cached {
		t.Fatalf("sync fde_only after job: status %d cached %v (job should have warmed this entry)", code, sync.Cached)
	}
	if !bytes.Equal(sync.Result, final.Result) {
		t.Fatal("fde_only job result differs from sync result")
	}
}

// TestJobFailure parks the analysis error on the job instead of
// dropping it: garbage bytes yield state=failed plus the error string.
func TestJobFailure(t *testing.T) {
	svc, ts := newTestServer(t, 2)
	_, jr := submitJob(t, ts, "/v1/jobs", []byte("definitely not an ELF"))
	final := pollJob(t, ts, jr.JobID, 30*time.Second)
	if final.State != JobFailed || final.Error == "" {
		t.Fatalf("garbage job: %+v", final)
	}
	if st := svc.Stats(); st.Jobs.Failed != 1 {
		t.Fatalf("jobs failed counter: %+v", st.Jobs)
	}
}

// TestJobUnknownAndExpired covers the 404 paths: never-submitted IDs
// and jobs whose TTL elapsed.
func TestJobUnknownAndExpired(t *testing.T) {
	cache := newTestCache(t)
	svc, err := New(Config{Cache: cache, MaxInFlight: 2, JobTTL: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/v1/jobs/deadbeef00000000")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", resp.StatusCode)
	}

	_, jr := submitJob(t, ts, "/v1/jobs", sampleELF(t, 302))
	pollJob(t, ts, jr.JobID, 30*time.Second)
	time.Sleep(80 * time.Millisecond) // let the TTL lapse
	resp, err = http.Get(ts.URL + "/v1/jobs/" + jr.JobID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("expired job: status %d, want 404", resp.StatusCode)
	}
}

// TestJobSubmitRespectsAdmission shares the admission bounds with the
// synchronous path: with the slot held and queueing disabled, a job
// submit is 429; with a queue, it parks as queued until the slot
// frees.
func TestJobSubmitRespectsAdmission(t *testing.T) {
	cache := newTestCache(t)
	svc, err := New(Config{Cache: cache, MaxInFlight: 1, MaxQueued: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)

	free := occupySlots(svc)
	code, _ := submitJob(t, ts, "/v1/jobs", sampleELF(t, 303))
	if code != http.StatusTooManyRequests {
		t.Fatalf("job submit with no capacity: status %d, want 429", code)
	}
	if st := svc.Stats(); st.Analyze.QueueRejected != 1 {
		t.Fatalf("queue_rejected %d, want 1", st.Analyze.QueueRejected)
	}
	free()

	// With a queue position available the submit is accepted and the
	// job waits; freeing the slot lets it finish.
	svc2, err := New(Config{Cache: newTestCache(t), MaxInFlight: 1, MaxQueued: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc2.Close)
	ts2 := httptest.NewServer(svc2.Handler())
	t.Cleanup(ts2.Close)
	free2 := occupySlots(svc2)
	code, jr := submitJob(t, ts2, "/v1/jobs", sampleELF(t, 304))
	if code != http.StatusAccepted {
		t.Fatalf("queued job submit: status %d, want 202", code)
	}
	if got := svc2.Stats().Queued; got != 1 {
		t.Fatalf("queued gauge %d after async submit, want 1", got)
	}
	free2()
	final := pollJob(t, ts2, jr.JobID, 30*time.Second)
	if final.State != JobDone {
		t.Fatalf("queued job: %s (%s)", final.State, final.Error)
	}
}

// TestCloseAbortsQueuedJobs pins the shutdown contract: Close fails
// jobs still waiting for a slot (instead of leaking their workers)
// and rejects new submissions.
func TestCloseAbortsQueuedJobs(t *testing.T) {
	cache := newTestCache(t)
	svc, err := New(Config{Cache: cache, MaxInFlight: 1, MaxQueued: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)

	free := occupySlots(svc)
	defer free()
	code, jr := submitJob(t, ts, "/v1/jobs", sampleELF(t, 305))
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	svc.Close() // waits for the worker, which must fail the job

	resp, err := http.Get(ts.URL + "/v1/jobs/" + jr.JobID)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var final jobResponse
	if err := json.Unmarshal(raw, &final); err != nil {
		t.Fatal(err)
	}
	if final.State != JobFailed || !strings.Contains(final.Error, "shut down") {
		t.Fatalf("job after Close: %+v", final)
	}

	code, _ = submitJob(t, ts, "/v1/jobs", sampleELF(t, 306))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("submit after Close: status %d, want 503", code)
	}
}

// newTestCache builds a small memory-only cache.
func newTestCache(t *testing.T) *fetch.Cache {
	t.Helper()
	cache, err := fetch.NewCache(fetch.CacheConfig{MaxEntries: 64})
	if err != nil {
		t.Fatal(err)
	}
	return cache
}
