package service

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"fetch"
)

// newAdmissionServer builds a Server with explicit admission knobs and
// no HTTP front end — these tests drive the handler directly so status
// codes and counters can be asserted without transport noise.
func newAdmissionServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Cache == nil {
		cache, err := fetch.NewCache(fetch.CacheConfig{MaxEntries: 64})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Cache = cache
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc
}

// TestResolvedConfigDefaults pins what New resolves zero Config fields
// to — the values the fetchd startup log must print instead of the
// raw flags.
func TestResolvedConfigDefaults(t *testing.T) {
	svc := newAdmissionServer(t, Config{})
	if got, want := svc.MaxInFlight(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("MaxInFlight() = %d, want %d (one per CPU)", got, want)
	}
	if got, want := svc.MaxQueued(), DefaultMaxQueuedPerSlot*svc.MaxInFlight(); got != want {
		t.Fatalf("MaxQueued() = %d, want %d", got, want)
	}
	if got := svc.QueueTimeout(); got != DefaultQueueTimeout {
		t.Fatalf("QueueTimeout() = %v, want %v", got, DefaultQueueTimeout)
	}
	if got := svc.MaxUploadBytes(); got != int64(DefaultMaxUploadBytes) {
		t.Fatalf("MaxUploadBytes() = %d, want %d", got, DefaultMaxUploadBytes)
	}
	if got := svc.IntraJobs(); got != 0 {
		t.Fatalf("IntraJobs() = %d, want 0", got)
	}
}

// TestOversizeUploadIs413 is the regression test for the 413 bugfix:
// only a body that actually exceeds the limit — detected via
// *http.MaxBytesError — may be 413.
func TestOversizeUploadIs413(t *testing.T) {
	svc := newAdmissionServer(t, Config{MaxInFlight: 1, MaxUploadBytes: 1024})
	req := httptest.NewRequest(http.MethodPost, "/v1/analyze",
		bytes.NewReader(make([]byte, 4096)))
	rec := httptest.NewRecorder()
	svc.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize upload: status %d, want 413", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "1024-byte upload limit") {
		t.Fatalf("413 body does not name the limit: %s", rec.Body.String())
	}
	if st := svc.Stats(); st.Analyze.Errors != 1 {
		t.Fatalf("errors %d, want 1", st.Analyze.Errors)
	}
}

// failingBody errors partway through the body — what the server sees
// when a client disconnects mid-upload.
type failingBody struct {
	data io.Reader
	err  error
}

// Read serves the prefix then fails with the wrapped error.
func (f *failingBody) Read(p []byte) (int, error) {
	n, err := f.data.Read(p)
	if err == io.EOF {
		return n, f.err
	}
	return n, err
}

// TestClientAbortMidUploadIs400 is the regression test for the other
// half of the bugfix: a transport/client read failure that is NOT a
// MaxBytesError must be 400, never 413 (the old code reported every
// read error as "body too large").
func TestClientAbortMidUploadIs400(t *testing.T) {
	svc := newAdmissionServer(t, Config{MaxInFlight: 1, MaxUploadBytes: 1 << 20})
	body := &failingBody{
		data: bytes.NewReader(make([]byte, 100)),
		err:  errors.New("connection reset by peer"),
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/analyze", body)
	rec := httptest.NewRecorder()
	svc.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("mid-upload abort: status %d, want 400", rec.Code)
	}
	if strings.Contains(rec.Body.String(), "upload limit") {
		t.Fatalf("client abort mislabeled as oversize: %s", rec.Body.String())
	}
	if st := svc.Stats(); st.Analyze.Errors != 1 {
		t.Fatalf("errors %d, want 1", st.Analyze.Errors)
	}
}

// occupySlots takes every analysis slot directly; the returned func
// frees them.
func occupySlots(svc *Server) func() {
	n := cap(svc.adm.slots)
	for i := 0; i < n; i++ {
		svc.adm.slots <- struct{}{}
	}
	return func() {
		for i := 0; i < n; i++ {
			<-svc.adm.slots
		}
	}
}

// TestQueueFullImmediate429 saturates MaxInFlight and MaxQueued and
// asserts the next request is rejected 429 with a Retry-After hint
// WITHOUT blocking — the admission contract that keeps overload from
// piling up hung connections.
func TestQueueFullImmediate429(t *testing.T) {
	svc := newAdmissionServer(t, Config{MaxInFlight: 1, MaxQueued: 1, QueueTimeout: 30 * time.Second})
	free := occupySlots(svc)
	defer free()

	// Fill the single queue position with a request that will wait.
	queuedBin := sampleELF(t, 200)
	queuedDone := make(chan int, 1)
	go func() {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v1/analyze",
			bytes.NewReader(queuedBin))
		svc.Handler().ServeHTTP(rec, req)
		queuedDone <- rec.Code
	}()
	deadline := time.Now().Add(2 * time.Second)
	for svc.Stats().Queued == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if svc.Stats().Queued != 1 {
		t.Fatal("first request never queued")
	}

	// Queue full: the next arrival must bounce immediately.
	start := time.Now()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/analyze",
		bytes.NewReader(sampleELF(t, 201)))
	svc.Handler().ServeHTTP(rec, req)
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("429 took %v; admission rejection must not block", elapsed)
	}
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("queue-full status %d, want 429", rec.Code)
	}
	ra := rec.Header().Get("Retry-After")
	if ra == "" {
		t.Fatal("429 without Retry-After")
	}
	if sec, err := strconv.Atoi(ra); err != nil || sec < 1 {
		t.Fatalf("Retry-After %q is not a positive integer of seconds", ra)
	}
	if st := svc.Stats(); st.Analyze.QueueRejected != 1 {
		t.Fatalf("queue_rejected %d, want 1", st.Analyze.QueueRejected)
	}

	// Freeing the slot lets the queued request run to completion.
	free()
	select {
	case code := <-queuedDone:
		if code != http.StatusOK {
			t.Fatalf("queued request finished with status %d", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("queued request never completed after the slot freed")
	}
	// Re-occupy so the deferred free has slots to drain.
	svc.adm.slots <- struct{}{}
}

// TestQueueDeadlineExpiry503 holds the only slot past a short queue
// deadline and asserts the queued request gets 503 with its wait
// recorded in the queue-wait histogram.
func TestQueueDeadlineExpiry503(t *testing.T) {
	svc := newAdmissionServer(t, Config{MaxInFlight: 1, MaxQueued: 4, QueueTimeout: 50 * time.Millisecond})
	free := occupySlots(svc)
	defer free()

	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/analyze",
		bytes.NewReader(sampleELF(t, 202)))
	start := time.Now()
	svc.Handler().ServeHTTP(rec, req)
	elapsed := time.Since(start)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("queue-deadline status %d, want 503", rec.Code)
	}
	if elapsed < 50*time.Millisecond {
		t.Fatalf("503 after %v, before the 50ms deadline could have expired", elapsed)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("queue-deadline 503 without Retry-After")
	}
	st := svc.Stats()
	if st.Analyze.QueueTimeouts != 1 {
		t.Fatalf("queue_timeouts %d, want 1", st.Analyze.QueueTimeouts)
	}
	if st.Analyze.QueueWaitNS < int64(50*time.Millisecond) {
		t.Fatalf("queue wait %dns not recorded for the timed-out request", st.Analyze.QueueWaitNS)
	}
	if st.Analyze.Errors != 0 {
		t.Fatalf("queue timeout counted as analyze error: %+v", st.Analyze)
	}
}

// TestNegativeMaxQueuedDisablesQueueing pins the MaxQueued<0 contract:
// a busy server answers 429 immediately, nothing ever waits.
func TestNegativeMaxQueuedDisablesQueueing(t *testing.T) {
	svc := newAdmissionServer(t, Config{MaxInFlight: 1, MaxQueued: -1})
	if got := svc.MaxQueued(); got != 0 {
		t.Fatalf("MaxQueued() = %d, want 0 for disabled queueing", got)
	}
	free := occupySlots(svc)
	defer free()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/analyze",
		bytes.NewReader(sampleELF(t, 203)))
	svc.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want immediate 429", rec.Code)
	}
}

// TestByHashOversizeBodyIs413 pins the by-hash lookup bugfix: a JSON
// body past the 4096-byte bound is 413, not a silently-truncated
// "bad JSON" 400.
func TestByHashOversizeBodyIs413(t *testing.T) {
	svc := newAdmissionServer(t, Config{MaxInFlight: 1})
	huge := []byte(`{"sha256": "` + strings.Repeat("a", 8192) + `"}`)
	req := httptest.NewRequest(http.MethodPost, "/v1/analyze", bytes.NewReader(huge))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	svc.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize JSON lookup: status %d, want 413", rec.Code)
	}
	// A small malformed body remains a plain 400.
	req = httptest.NewRequest(http.MethodPost, "/v1/analyze", strings.NewReader("{nope"))
	req.Header.Set("Content-Type", "application/json")
	rec = httptest.NewRecorder()
	svc.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad JSON lookup: status %d, want 400", rec.Code)
	}
}
