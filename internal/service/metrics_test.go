package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// sampleRe matches one Prometheus text-exposition sample line:
// name, optional {labels}, value.
var sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(?:[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*",?)*\})? (NaN|[+-]?Inf|[-+]?[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?)$`)

// typeRe matches a # TYPE comment.
var typeRe = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)

// parseExposition validates the scrape body as Prometheus text format
// 0.0.4 and returns sample values keyed by "name{labels}" plus the
// declared type per family. Violations fail the test.
func parseExposition(t *testing.T, body string) (map[string]float64, map[string]string) {
	t.Helper()
	samples := map[string]float64{}
	types := map[string]string{}
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if strings.HasPrefix(line, "# TYPE ") {
				m := typeRe.FindStringSubmatch(line)
				if m == nil {
					t.Fatalf("malformed TYPE line: %q", line)
				}
				types[m[1]] = m[2]
			} else if !strings.HasPrefix(line, "# HELP ") {
				t.Fatalf("unexpected comment line: %q", line)
			}
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line: %q", line)
		}
		name := m[1]
		// Histogram series belong to the family name without suffix.
		family := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if f, ok := strings.CutSuffix(name, suf); ok && types[f] == "histogram" {
				family = f
				break
			}
		}
		if _, ok := types[family]; !ok {
			t.Fatalf("sample %q has no preceding # TYPE for %q", line, family)
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("bad sample value in %q: %v", line, err)
		}
		samples[m[1]+m[2]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples, types
}

// checkHistogram asserts the bucket series of a histogram family is
// cumulative, ends at +Inf, and agrees with _count.
func checkHistogram(t *testing.T, samples map[string]float64, family string) {
	t.Helper()
	var prev float64
	var infSeen bool
	var inf float64
	for _, b := range durationBuckets {
		key := fmt.Sprintf("%s_bucket{le=%q}", family, fmtFloat(b))
		v, ok := samples[key]
		if !ok {
			t.Fatalf("missing bucket %s", key)
		}
		if v < prev {
			t.Fatalf("%s buckets not cumulative: %v < %v", family, v, prev)
		}
		prev = v
	}
	if inf, infSeen = samples[family+`_bucket{le="+Inf"}`]; !infSeen {
		t.Fatalf("missing +Inf bucket for %s", family)
	}
	if inf < prev {
		t.Fatalf("%s +Inf bucket %v below last finite bucket %v", family, inf, prev)
	}
	if count := samples[family+"_count"]; count != inf {
		t.Fatalf("%s _count %v != +Inf bucket %v", family, count, inf)
	}
}

// TestMetricsExpositionValidAndConsistent drives mixed traffic, then
// scrapes /metrics and (a) validates the whole body as Prometheus
// text format, (b) checks the required queue/latency/in-flight/cache
// series exist, and (c) cross-checks the counter values against
// /v1/stats — both views read the same atomics and must agree.
func TestMetricsExpositionValidAndConsistent(t *testing.T) {
	svc, ts := newTestServer(t, 2)
	bin := sampleELF(t, 400)
	postBinary(t, ts, "/v1/analyze", bin)                          // miss
	postBinary(t, ts, "/v1/analyze", bin)                          // hit
	postBinary(t, ts, "/v1/analyze", nil)                          // 400 error
	getJSON(t, ts.URL+"/v1/result/"+strings.Repeat("ab", 32), nil) // 404

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content-type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples, types := parseExposition(t, string(raw))

	for name, typ := range map[string]string{
		"fetchd_analyze_requests_total":    "counter",
		"fetchd_analyze_cache_hits_total":  "counter",
		"fetchd_analyze_errors_total":      "counter",
		"fetchd_queue_rejected_total":      "counter",
		"fetchd_queue_cancelled_total":     "counter",
		"fetchd_in_flight":                 "gauge",
		"fetchd_in_flight_max":             "gauge",
		"fetchd_queued":                    "gauge",
		"fetchd_queue_wait_seconds":        "histogram",
		"fetchd_analyze_duration_seconds":  "histogram",
		"fetchd_cache_hits_total":          "counter",
		"fetchd_cache_entries":             "gauge",
		"fetchd_cache_disk_bytes":          "gauge",
		"fetchd_cache_manifest_hits_total": "counter",
		"fetchd_cache_fn_tier_hits_total":  "counter",
		"fetchd_cache_delta_hits_total":    "counter",
		"fetchd_jobs_submitted_total":      "counter",
		"fetchd_http_requests_total":       "counter",
	} {
		if got := types[name]; got != typ {
			t.Errorf("family %s: type %q, want %q", name, got, typ)
		}
	}
	checkHistogram(t, samples, "fetchd_queue_wait_seconds")
	checkHistogram(t, samples, "fetchd_analyze_duration_seconds")

	st := svc.Stats()
	for key, want := range map[string]int64{
		"fetchd_analyze_requests_total":      st.Analyze.Requests,
		"fetchd_analyze_cache_hits_total":    st.Analyze.CacheHits,
		"fetchd_analyze_cache_misses_total":  st.Analyze.CacheMisses,
		"fetchd_analyze_errors_total":        st.Analyze.Errors,
		"fetchd_in_flight_max":               int64(st.MaxInFlight),
		"fetchd_cache_hits_total":            st.Cache.Hits,
		"fetchd_cache_misses_total":          st.Cache.Misses,
		"fetchd_cache_manifest_hits_total":   st.Cache.ManifestHits,
		"fetchd_cache_fn_tier_hits_total":    st.Cache.FnTierHits,
		"fetchd_cache_delta_puts_total":      st.Cache.DeltaPuts,
		"fetchd_cache_delta_hits_total":      st.Cache.DeltaHits,
		"fetchd_cache_delta_fallbacks_total": st.Cache.DeltaFallbacks,
	} {
		if got := samples[key]; got != float64(want) {
			t.Errorf("%s = %v, /v1/stats says %d", key, got, want)
		}
	}
	// The labeled HTTP family saw the analyze 200s and the result 404.
	if v := samples[`fetchd_http_requests_total{path="/v1/analyze",code="200"}`]; v < 2 {
		t.Errorf("http_requests analyze 200 = %v, want >= 2", v)
	}
	if v := samples[`fetchd_http_requests_total{path="/v1/result/{sha256}",code="404"}`]; v != 1 {
		t.Errorf("http_requests result 404 = %v, want 1", v)
	}
}

// lockedBuffer is a goroutine-safe log sink (slog handlers may be
// driven from concurrent requests).
type lockedBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

// Write appends under the lock.
func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

// String snapshots the buffer under the lock.
func (l *lockedBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// TestAccessLogAndRequestID exercises the middleware: every response
// carries an X-Request-Id (inbound IDs are adopted), and the slog
// access log records one structured line per request with the fields
// the docs promise.
func TestAccessLogAndRequestID(t *testing.T) {
	var buf lockedBuffer
	cache := newTestCache(t)
	svc, err := New(Config{
		Cache:       cache,
		MaxInFlight: 2,
		Logger:      slog.New(slog.NewJSONHandler(&buf, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	h := svc.Handler()

	// A fresh ID is assigned when none is supplied.
	rec := newRecordedRequest(h, http.MethodGet, "/v1/healthz", "")
	id := rec.Header().Get("X-Request-Id")
	if len(id) != 16 {
		t.Fatalf("generated request id %q, want 16 hex chars", id)
	}

	// A sane inbound ID is adopted verbatim; a hostile one is replaced.
	rec = newRecordedRequest(h, http.MethodGet, "/v1/healthz", "client-supplied-42")
	if got := rec.Header().Get("X-Request-Id"); got != "client-supplied-42" {
		t.Fatalf("inbound id not adopted: %q", got)
	}
	rec = newRecordedRequest(h, http.MethodGet, "/v1/healthz", "bad\nid{}")
	if got := rec.Header().Get("X-Request-Id"); got == "bad\nid{}" {
		t.Fatal("hostile inbound id adopted")
	}

	// Each request produced one structured record with the log schema.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("access log lines: %d, want 3\n%s", len(lines), buf.String())
	}
	var entry map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &entry); err != nil {
		t.Fatalf("access log is not JSON: %v", err)
	}
	if entry["request_id"] != "client-supplied-42" {
		t.Fatalf("log request_id %v", entry["request_id"])
	}
	for _, field := range []string{"method", "path", "status", "duration", "remote"} {
		if _, ok := entry[field]; !ok {
			t.Fatalf("access log missing %q: %v", field, entry)
		}
	}
	if entry["path"] != "/v1/healthz" || entry["status"] != float64(200) {
		t.Fatalf("access log fields: %v", entry)
	}
}

// newRecordedRequest drives one request through the handler.
func newRecordedRequest(h http.Handler, method, path, reqID string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, path, nil)
	if reqID != "" {
		req.Header.Set("X-Request-Id", reqID)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}
