// Package service implements the fetchd HTTP analysis service: a
// long-running front end over the fetch pipeline that serves repeated
// traffic from the content-addressed result cache instead of paying a
// cold analysis per request.
//
// Endpoints (all under /v1, JSON responses; see docs/API.md for the
// full schema and curl examples):
//
//	POST /v1/analyze        analyze an uploaded ELF binary (request
//	                        body = raw bytes), or — with a JSON body
//	                        {"sha256": "<hex>"} — return the cached
//	                        result for an already-seen binary
//	GET  /v1/result/{sha256} cached result for a binary hash, or 404
//	GET  /v1/healthz        liveness probe
//	GET  /v1/stats          cache and request counters
//
// Analysis concurrency is bounded: at most Config.MaxInFlight
// analyses run at once, later requests queue until a slot frees or
// their client gives up (the wait honors the request context).
// Handlers spawn no goroutines, so shutting down the enclosing
// http.Server gracefully is all the cleanup there is.
package service

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"fetch"
)

// Config parameterizes New.
type Config struct {
	// Cache serves and stores analysis results. Required.
	Cache *fetch.Cache
	// MaxInFlight bounds concurrent analyses; non-positive means one
	// per available CPU.
	MaxInFlight int
	// MaxUploadBytes bounds the accepted binary size; non-positive
	// selects DefaultMaxUploadBytes.
	MaxUploadBytes int64
	// IntraJobs sets each analysis's intra-binary shard parallelism
	// (fetch.Options.Jobs). The in-flight semaphore still bounds the
	// number of concurrent analyses; IntraJobs multiplies the worker
	// goroutines each admitted analysis may use, so a deployment
	// typically lowers MaxInFlight when raising it. Results are
	// byte-identical for every value; values ≤ 1 analyze sequentially.
	IntraJobs int
}

// DefaultMaxUploadBytes is the upload size cap when Config leaves it
// unset (64 MiB — generously above any .eh_frame-carrying binary the
// evaluation uses).
const DefaultMaxUploadBytes = 64 << 20

// Server is the fetchd service state: the shared result cache, the
// in-flight bound, and the request counters /v1/stats reports.
type Server struct {
	cache     *fetch.Cache
	sem       chan struct{}
	maxUpload int64
	intraJobs int
	start     time.Time

	analyzeRequests atomic.Int64
	analyzeHits     atomic.Int64
	analyzeMisses   atomic.Int64
	analyzeErrors   atomic.Int64
	analyzeWaitNS   atomic.Int64
	analyzeNS       atomic.Int64
	byHashRequests  atomic.Int64
	byHashHits      atomic.Int64
	resultRequests  atomic.Int64
	resultHits      atomic.Int64
	inFlight        atomic.Int64
	peakInFlight    atomic.Int64
}

// New builds a Server over a result cache.
func New(cfg Config) (*Server, error) {
	if cfg.Cache == nil {
		return nil, errors.New("service: Config.Cache is required")
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxUploadBytes <= 0 {
		cfg.MaxUploadBytes = DefaultMaxUploadBytes
	}
	return &Server{
		cache:     cfg.Cache,
		sem:       make(chan struct{}, cfg.MaxInFlight),
		maxUpload: cfg.MaxUploadBytes,
		intraJobs: cfg.IntraJobs,
		start:     time.Now(),
	}, nil
}

// Handler returns the service's HTTP handler, ready for http.Server
// or httptest.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/analyze", s.handleAnalyze)
	mux.HandleFunc("/v1/result/", s.handleResult)
	mux.HandleFunc("/v1/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/stats", s.handleStats)
	return mux
}

// jsonError writes a JSON error body with the given status.
func jsonError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{
		"error": fmt.Sprintf(format, args...),
	})
}

// writeJSON writes v as a JSON 200 response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// optionsFromQuery maps the strategy query parameters shared by the
// analyze and result endpoints (?fde_only=1, ?no_xref=1,
// ?no_tailcall=1) onto analysis options. Absent parameters mean full
// FETCH — the same default as the library and CLI.
func optionsFromQuery(r *http.Request) []fetch.Option {
	var opts []fetch.Option
	q := r.URL.Query()
	boolish := func(name string) bool {
		v := q.Get(name)
		return v == "1" || v == "true"
	}
	if boolish("fde_only") {
		opts = append(opts, fetch.FDEOnly())
	}
	if boolish("no_xref") {
		opts = append(opts, fetch.WithoutXref())
	}
	if boolish("no_tailcall") {
		opts = append(opts, fetch.WithoutTailCall())
	}
	return opts
}

// analyzeResponse is the envelope of a successful analyze or result
// request: the binary's content address, whether the cache served it,
// and the serialized result (the docs/API.md schema, verbatim).
type analyzeResponse struct {
	SHA256 string          `json:"sha256"`
	Cached bool            `json:"cached"`
	Result json.RawMessage `json:"result"`
}

// respondResult encodes a result into the response envelope.
func respondResult(w http.ResponseWriter, sum string, cached bool, res *fetch.Result) {
	blob, err := fetch.EncodeResult(res)
	if err != nil {
		jsonError(w, http.StatusInternalServerError, "encoding result: %v", err)
		return
	}
	writeJSON(w, analyzeResponse{SHA256: sum, Cached: cached, Result: blob})
}

// handleAnalyze serves POST /v1/analyze. A JSON body is a by-hash
// lookup of an already-analyzed binary; any other body is the binary
// itself. Uploads admit at most MaxInFlight concurrent read+analyze
// sequences — the slot is taken before the body is buffered, so the
// bound caps memory as well as CPU — and the wait for a slot is
// bounded by the client's request context.
func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		jsonError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	opts := optionsFromQuery(r)
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
		s.analyzeByHash(w, r, opts)
		return
	}

	s.analyzeRequests.Add(1)

	// Acquire the in-flight slot BEFORE reading the body: the bound
	// then caps memory (MaxInFlight × MaxUploadBytes of buffered
	// uploads) as well as CPU, instead of letting every queued request
	// pin a full upload while waiting.
	waitStart := time.Now()
	select {
	case s.sem <- struct{}{}:
	case <-r.Context().Done():
		s.analyzeErrors.Add(1)
		jsonError(w, http.StatusServiceUnavailable, "cancelled while queued: %v", r.Context().Err())
		return
	}
	defer func() { <-s.sem }()
	s.analyzeWaitNS.Add(int64(time.Since(waitStart)))
	now := s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	for {
		// Track the high-water mark so /v1/stats (and the tests) can
		// observe that the in-flight bound held.
		peak := s.peakInFlight.Load()
		if now <= peak || s.peakInFlight.CompareAndSwap(peak, now) {
			break
		}
	}

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxUpload))
	if err != nil {
		s.analyzeErrors.Add(1)
		jsonError(w, http.StatusRequestEntityTooLarge,
			"body exceeds %d bytes (or read failed: %v)", s.maxUpload, err)
		return
	}
	if len(body) == 0 {
		s.analyzeErrors.Add(1)
		jsonError(w, http.StatusBadRequest, "empty body; POST the ELF bytes")
		return
	}

	t0 := time.Now()
	if s.intraJobs > 1 {
		opts = append(opts, fetch.WithJobs(s.intraJobs))
	}
	res, cached, err := s.cache.Analyze(body, opts...)
	s.analyzeNS.Add(int64(time.Since(t0)))

	if err != nil {
		s.analyzeErrors.Add(1)
		jsonError(w, http.StatusUnprocessableEntity, "analysis failed: %v", err)
		return
	}
	if cached {
		s.analyzeHits.Add(1)
	} else {
		s.analyzeMisses.Add(1)
	}
	sum := fetch.HashBinary(body)
	respondResult(w, hex.EncodeToString(sum[:]), cached, res)
}

// analyzeByHash serves the {"sha256": ...} form of POST /v1/analyze:
// return the cached result or tell the caller to upload the binary.
func (s *Server) analyzeByHash(w http.ResponseWriter, r *http.Request, opts []fetch.Option) {
	s.byHashRequests.Add(1)
	var req struct {
		SHA256 string `json:"sha256"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 4096)).Decode(&req); err != nil {
		jsonError(w, http.StatusBadRequest, "bad JSON body: %v", err)
		return
	}
	sum, err := parseSHA256(req.SHA256)
	if err != nil {
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}
	res, ok := s.cache.Get(sum, opts...)
	if !ok {
		jsonError(w, http.StatusNotFound,
			"result for %s not cached; POST the binary to /v1/analyze", req.SHA256)
		return
	}
	s.byHashHits.Add(1)
	respondResult(w, req.SHA256, true, res)
}

// handleResult serves GET /v1/result/{sha256}: a pure cache lookup
// that never triggers analysis.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		jsonError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	s.resultRequests.Add(1)
	hexSum := strings.TrimPrefix(r.URL.Path, "/v1/result/")
	sum, err := parseSHA256(hexSum)
	if err != nil {
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}
	res, ok := s.cache.Get(sum, optionsFromQuery(r)...)
	if !ok {
		jsonError(w, http.StatusNotFound,
			"result for %s not cached; POST the binary to /v1/analyze", hexSum)
		return
	}
	s.resultHits.Add(1)
	respondResult(w, hexSum, true, res)
}

// handleHealthz serves the liveness probe.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]string{"status": "ok"})
}

// StatsResponse is the /v1/stats payload: request-level counters for
// each endpoint plus the raw cache counters. All durations are integer
// nanoseconds, matching the result schema's unit convention.
type StatsResponse struct {
	UptimeNS int64 `json:"uptime_ns"`
	InFlight int64 `json:"in_flight"`
	// PeakInFlight is the high-water mark of concurrent analyses; it
	// never exceeds MaxInFlight.
	PeakInFlight int64 `json:"peak_in_flight"`
	MaxInFlight  int   `json:"max_in_flight"`

	Analyze struct {
		Requests    int64 `json:"requests"`
		CacheHits   int64 `json:"cache_hits"`
		CacheMisses int64 `json:"cache_misses"`
		Errors      int64 `json:"errors"`
		QueueWaitNS int64 `json:"queue_wait_ns_total"`
		AnalyzeNS   int64 `json:"analyze_ns_total"`
		ByHash      int64 `json:"by_hash_requests"`
		ByHashHits  int64 `json:"by_hash_hits"`
	} `json:"analyze"`

	Result struct {
		Requests int64 `json:"requests"`
		Hits     int64 `json:"hits"`
	} `json:"result"`

	Cache fetch.CacheStats `json:"cache"`
}

// Stats snapshots the server and cache counters.
func (s *Server) Stats() StatsResponse {
	var sr StatsResponse
	sr.UptimeNS = int64(time.Since(s.start))
	sr.InFlight = s.inFlight.Load()
	sr.PeakInFlight = s.peakInFlight.Load()
	sr.MaxInFlight = cap(s.sem)
	sr.Analyze.Requests = s.analyzeRequests.Load()
	sr.Analyze.CacheHits = s.analyzeHits.Load()
	sr.Analyze.CacheMisses = s.analyzeMisses.Load()
	sr.Analyze.Errors = s.analyzeErrors.Load()
	sr.Analyze.QueueWaitNS = s.analyzeWaitNS.Load()
	sr.Analyze.AnalyzeNS = s.analyzeNS.Load()
	sr.Analyze.ByHash = s.byHashRequests.Load()
	sr.Analyze.ByHashHits = s.byHashHits.Load()
	sr.Result.Requests = s.resultRequests.Load()
	sr.Result.Hits = s.resultHits.Load()
	sr.Cache = s.cache.Stats()
	return sr
}

// handleStats serves the counters snapshot.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Stats())
}

// parseSHA256 decodes a 64-character hex content hash.
func parseSHA256(s string) ([32]byte, error) {
	var sum [32]byte
	raw, err := hex.DecodeString(s)
	if err != nil || len(raw) != len(sum) {
		return sum, fmt.Errorf("service: %q is not a 64-char hex sha256", s)
	}
	copy(sum[:], raw)
	return sum, nil
}
