// Package service implements the fetchd HTTP analysis service: a
// long-running front end over the fetch pipeline that serves repeated
// traffic from the content-addressed result cache instead of paying a
// cold analysis per request.
//
// Endpoints (JSON responses unless noted; see docs/API.md for the
// full schema and curl examples):
//
//	POST /v1/analyze        analyze an uploaded ELF binary (request
//	                        body = raw bytes), or — with a JSON body
//	                        {"sha256": "<hex>"} — return the cached
//	                        result for an already-seen binary
//	POST /v1/jobs           async form of analyze: returns a job ID
//	                        immediately, the analysis runs detached
//	GET  /v1/jobs/{id}      poll a job (queued/running/done/failed)
//	GET  /v1/result/{sha256} cached result for a binary hash, or 404
//	GET  /v1/healthz        liveness probe
//	GET  /v1/stats          cache and request counters (JSON)
//	GET  /metrics           the same counters as Prometheus text
//	                        exposition (no dependencies)
//
// Admission control is explicit and two-staged: at most
// Config.MaxInFlight analyses run at once, at most Config.MaxQueued
// requests wait for a slot (each wait bounded by the request context
// and Config.QueueTimeout), and anything beyond both bounds is
// rejected immediately with 429 + Retry-After rather than left
// hanging. Synchronous handlers spawn no goroutines; async jobs run
// on per-job workers that Close waits for, so shutdown is
// http.Server.Shutdown followed by Server.Close.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"fetch"
)

// Config parameterizes New.
type Config struct {
	// Cache serves and stores analysis results. Required.
	Cache *fetch.Cache
	// MaxInFlight bounds concurrent analyses; non-positive means one
	// per available CPU.
	MaxInFlight int
	// MaxQueued bounds how many requests may wait for an analysis slot
	// before new arrivals are rejected 429. Zero selects
	// DefaultMaxQueuedPerSlot×MaxInFlight; negative disables queueing
	// entirely (a busy server answers 429 immediately).
	MaxQueued int
	// QueueTimeout caps how long an admitted-to-the-queue request may
	// wait for a slot before a 503; non-positive selects
	// DefaultQueueTimeout. The client context still cancels earlier
	// waits.
	QueueTimeout time.Duration
	// MaxUploadBytes bounds the accepted binary size; non-positive
	// selects DefaultMaxUploadBytes.
	MaxUploadBytes int64
	// SpoolDir is where uploads are streamed to before analysis.
	// Uploads never sit whole in memory: the body is copied straight to
	// a temp file under SpoolDir (hashed on the way through) and the
	// analysis runs file-backed against it. Empty selects os.TempDir().
	SpoolDir string
	// IntraJobs sets each analysis's intra-binary shard parallelism
	// (fetch.Options.Jobs). The in-flight bound still caps the number
	// of concurrent analyses; IntraJobs multiplies the worker
	// goroutines each admitted analysis may use, so a deployment
	// typically lowers MaxInFlight when raising it. Results are
	// byte-identical for every value; values ≤ 1 analyze sequentially.
	IntraJobs int
	// JobTTL is how long a finished async job remains pollable;
	// non-positive selects DefaultJobTTL.
	JobTTL time.Duration
	// MaxJobs bounds the job store (live + unexpired finished jobs);
	// non-positive selects DefaultMaxJobs.
	MaxJobs int
	// Logger, when non-nil, receives one structured access-log record
	// per request (request_id, method, path, status, sizes, duration).
	// Nil disables access logging; metrics are recorded either way.
	Logger *slog.Logger
}

// Defaults applied by New for Config fields left zero.
const (
	// DefaultMaxUploadBytes is the upload size cap when Config leaves
	// it unset (64 MiB — generously above any .eh_frame-carrying
	// binary the evaluation uses).
	DefaultMaxUploadBytes = 64 << 20
	// DefaultMaxQueuedPerSlot scales the default admission queue with
	// the in-flight bound: MaxQueued = 4×MaxInFlight.
	DefaultMaxQueuedPerSlot = 4
	// DefaultQueueTimeout bounds a queued request's wait for a slot.
	DefaultQueueTimeout = 10 * time.Second
	// DefaultJobTTL keeps finished async jobs pollable for 15 minutes.
	DefaultJobTTL = 15 * time.Minute
	// DefaultMaxJobs bounds the async job store.
	DefaultMaxJobs = 1024
	// maxHashBodyBytes bounds the {"sha256": ...} lookup body; larger
	// bodies are 413, not silently truncated into a JSON error.
	maxHashBodyBytes = 4096
)

// Server is the fetchd service state: the shared result cache, the
// admission gate, the async job store, and the counters /v1/stats and
// /metrics report.
type Server struct {
	cache     *fetch.Cache
	adm       *admission
	jobs      *jobStore
	maxUpload int64
	spoolDir  string
	intraJobs int
	logger    *slog.Logger
	start     time.Time

	analyzeRequests atomic.Int64
	analyzeHits     atomic.Int64
	analyzeMisses   atomic.Int64
	analyzeErrors   atomic.Int64
	// analyzeRejected counts the synchronous-analyze share of
	// queueRejected, so every analyzeRequests increment has exactly one
	// terminal counter (hit, miss, error, cancelled, timeout, or
	// rejected) — the accounting identity the load test asserts.
	analyzeRejected atomic.Int64
	queueRejected   atomic.Int64
	queueCancelled  atomic.Int64
	queueTimeouts   atomic.Int64
	byHashRequests  atomic.Int64
	byHashHits      atomic.Int64
	resultRequests  atomic.Int64
	resultHits      atomic.Int64
	jobsSubmitted   atomic.Int64
	jobsCompleted   atomic.Int64
	jobsFailed      atomic.Int64
	jobsActive      atomic.Int64
	inFlight        atomic.Int64
	peakInFlight    atomic.Int64
	reqSeq          atomic.Int64

	queueWait  *histogram
	analyzeDur *histogram
	httpReqs   *labeledCounter
}

// New builds a Server over a result cache, resolving every defaulted
// Config field (the accessors report the resolved values).
func New(cfg Config) (*Server, error) {
	if cfg.Cache == nil {
		return nil, errors.New("service: Config.Cache is required")
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	switch {
	case cfg.MaxQueued == 0:
		cfg.MaxQueued = DefaultMaxQueuedPerSlot * cfg.MaxInFlight
	case cfg.MaxQueued < 0:
		cfg.MaxQueued = 0
	}
	if cfg.QueueTimeout <= 0 {
		cfg.QueueTimeout = DefaultQueueTimeout
	}
	if cfg.MaxUploadBytes <= 0 {
		cfg.MaxUploadBytes = DefaultMaxUploadBytes
	}
	if cfg.SpoolDir == "" {
		cfg.SpoolDir = os.TempDir()
	}
	if cfg.JobTTL <= 0 {
		cfg.JobTTL = DefaultJobTTL
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = DefaultMaxJobs
	}
	return &Server{
		cache:      cfg.Cache,
		adm:        newAdmission(cfg.MaxInFlight, cfg.MaxQueued, cfg.QueueTimeout),
		jobs:       newJobStore(cfg.MaxJobs, cfg.JobTTL),
		maxUpload:  cfg.MaxUploadBytes,
		spoolDir:   cfg.SpoolDir,
		intraJobs:  cfg.IntraJobs,
		logger:     cfg.Logger,
		start:      time.Now(),
		queueWait:  newHistogram(durationBuckets),
		analyzeDur: newHistogram(durationBuckets),
		httpReqs:   newLabeledCounter(),
	}, nil
}

// Resolved-config accessors: the effective values after New applied
// defaults, so callers (and the fetchd startup log) can report what
// the server actually runs with rather than the raw flags.

// MaxInFlight returns the resolved concurrent-analysis bound.
func (s *Server) MaxInFlight() int { return cap(s.adm.slots) }

// MaxQueued returns the resolved admission-queue capacity.
func (s *Server) MaxQueued() int { return int(s.adm.maxQueued) }

// QueueTimeout returns the resolved queue deadline.
func (s *Server) QueueTimeout() time.Duration { return s.adm.timeout }

// MaxUploadBytes returns the resolved upload size cap.
func (s *Server) MaxUploadBytes() int64 { return s.maxUpload }

// SpoolDir returns the resolved upload spool directory.
func (s *Server) SpoolDir() string { return s.spoolDir }

// IntraJobs returns the configured per-analysis shard parallelism
// (≤ 1 means sequential).
func (s *Server) IntraJobs() int { return s.intraJobs }

// Close stops the async job subsystem: further submissions are
// rejected, queued jobs fail with a shutdown error, and Close returns
// once every job worker has exited. Call it after the enclosing
// http.Server has drained; synchronous handlers need no cleanup.
func (s *Server) Close() {
	s.jobs.close()
	s.jobs.wg.Wait()
}

// Handler returns the service's HTTP handler — the route mux wrapped
// in the request-ID / access-log / metrics middleware — ready for
// http.Server or httptest.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/analyze", s.handleAnalyze)
	mux.HandleFunc("/v1/result/", s.handleResult)
	mux.HandleFunc("/v1/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/jobs", s.handleJobSubmit)
	mux.HandleFunc("/v1/jobs/", s.handleJobGet)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return s.withMiddleware(mux)
}

// jsonError writes a JSON error body with the given status.
func jsonError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{
		"error": fmt.Sprintf(format, args...),
	})
}

// writeJSON writes v as a JSON 200 response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// optionsFromQuery maps the strategy query parameters shared by the
// analyze, jobs, and result endpoints (?fde_only=1, ?no_xref=1,
// ?no_tailcall=1) onto analysis options. Absent parameters mean full
// FETCH — the same default as the library and CLI.
func optionsFromQuery(r *http.Request) []fetch.Option {
	var opts []fetch.Option
	q := r.URL.Query()
	boolish := func(name string) bool {
		v := q.Get(name)
		return v == "1" || v == "true"
	}
	if boolish("fde_only") {
		opts = append(opts, fetch.FDEOnly())
	}
	if boolish("no_xref") {
		opts = append(opts, fetch.WithoutXref())
	}
	if boolish("no_tailcall") {
		opts = append(opts, fetch.WithoutTailCall())
	}
	return opts
}

// analyzeResponse is the envelope of a successful analyze or result
// request: the binary's content address, whether the cache served it,
// and the serialized result (the docs/API.md schema, verbatim).
type analyzeResponse struct {
	SHA256 string          `json:"sha256"`
	Cached bool            `json:"cached"`
	Result json.RawMessage `json:"result"`
}

// respondResult encodes a result into the response envelope.
func respondResult(w http.ResponseWriter, sum string, cached bool, res *fetch.Result) {
	blob, err := fetch.EncodeResult(res)
	if err != nil {
		jsonError(w, http.StatusInternalServerError, "encoding result: %v", err)
		return
	}
	writeJSON(w, analyzeResponse{SHA256: sum, Cached: cached, Result: blob})
}

// retryAfterSeconds estimates how long a 429'd client should back off:
// the queue depth ahead of it times the observed mean analysis time,
// divided across the slots, clamped to [1s, 60s].
func (s *Server) retryAfterSeconds() string {
	sec := 1
	if n := s.analyzeDur.count.Load(); n > 0 {
		avg := time.Duration(s.analyzeDur.sumNS.Load() / n)
		est := time.Duration(s.adm.queued.Load()+1) * avg / time.Duration(cap(s.adm.slots))
		sec = int(est/time.Second) + 1
		if sec > 60 {
			sec = 60
		}
	}
	return strconv.Itoa(sec)
}

// enterFlight increments the in-flight gauge and maintains its
// high-water mark (how /v1/stats and the tests observe that the bound
// held).
func (s *Server) enterFlight() {
	now := s.inFlight.Add(1)
	for {
		peak := s.peakInFlight.Load()
		if now <= peak || s.peakInFlight.CompareAndSwap(peak, now) {
			return
		}
	}
}

// exitFlight undoes enterFlight.
func (s *Server) exitFlight() { s.inFlight.Add(-1) }

// spoolUpload streams a bounded request body to a temp file under the
// spool directory, hashing it on the way through, so an upload's heap
// cost is one copy buffer rather than the binary. Error semantics stay
// admission-hardened: exceeding the upload cap is 413 (detected via
// *http.MaxBytesError, never inferred from "some read error"), any
// other read failure — a client that disconnected mid-upload, a broken
// transport — is 400, and an empty body is 400. On false the response
// has been written, the error counted, and the temp file removed; on
// true the caller owns the returned path and must os.Remove it.
func (s *Server) spoolUpload(w http.ResponseWriter, r *http.Request) (string, [32]byte, bool) {
	var sum [32]byte
	tmp, err := os.CreateTemp(s.spoolDir, "fetchd-upload-*")
	if err != nil {
		s.analyzeErrors.Add(1)
		jsonError(w, http.StatusInternalServerError, "spooling upload: %v", err)
		return "", sum, false
	}
	discard := func() {
		tmp.Close()
		os.Remove(tmp.Name())
	}
	h := sha256.New()
	n, err := io.Copy(tmp, io.TeeReader(http.MaxBytesReader(w, r.Body, s.maxUpload), h))
	if err != nil {
		discard()
		s.analyzeErrors.Add(1)
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			jsonError(w, http.StatusRequestEntityTooLarge,
				"body exceeds the %d-byte upload limit", mbe.Limit)
		} else {
			jsonError(w, http.StatusBadRequest, "reading request body: %v", err)
		}
		return "", sum, false
	}
	if n == 0 {
		discard()
		s.analyzeErrors.Add(1)
		jsonError(w, http.StatusBadRequest, "empty body; POST the ELF bytes")
		return "", sum, false
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		s.analyzeErrors.Add(1)
		jsonError(w, http.StatusInternalServerError, "spooling upload: %v", err)
		return "", sum, false
	}
	copy(sum[:], h.Sum(nil))
	return tmp.Name(), sum, true
}

// handleAnalyze serves POST /v1/analyze. A JSON body is a by-hash
// lookup of an already-analyzed binary; any other body is the binary
// itself. Uploads pass the admission gate BEFORE the body is spooled,
// so MaxInFlight+MaxQueued bounds concurrent spool files as well as
// CPU — and since the body streams to disk and the analysis runs
// file-backed, no request ever holds the whole binary on the heap; a
// request beyond both bounds gets an immediate 429 with Retry-After, a
// queued request is bounded by the client context and the queue
// deadline.
func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		jsonError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	opts := optionsFromQuery(r)
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
		s.analyzeByHash(w, r, opts)
		return
	}

	s.analyzeRequests.Add(1)

	wait, err := s.adm.acquire(r.Context())
	switch {
	case errors.Is(err, errQueueFull):
		s.queueRejected.Add(1)
		s.analyzeRejected.Add(1)
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		jsonError(w, http.StatusTooManyRequests,
			"admission queue full (%d in flight, %d queued); retry later",
			s.inFlight.Load(), s.adm.queued.Load())
		return
	case errors.Is(err, errQueueCancelled):
		// The client gave up; that is their failure, not ours — count
		// it apart from server errors so the error rate stays honest.
		s.queueCancelled.Add(1)
		s.queueWait.observe(wait)
		jsonError(w, http.StatusServiceUnavailable,
			"client cancelled while queued: %v", r.Context().Err())
		return
	case errors.Is(err, errQueueTimeout):
		s.queueTimeouts.Add(1)
		s.queueWait.observe(wait)
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		jsonError(w, http.StatusServiceUnavailable,
			"no analysis slot within the %s queue deadline", s.adm.timeout)
		return
	}
	defer s.adm.release()
	s.queueWait.observe(wait)
	s.enterFlight()
	defer s.exitFlight()

	path, sum, ok := s.spoolUpload(w, r)
	if !ok {
		return
	}
	defer os.Remove(path)

	t0 := time.Now()
	if s.intraJobs > 1 {
		opts = append(opts, fetch.WithJobs(s.intraJobs))
	}
	res, cached, err := s.cache.AnalyzeFile(path, opts...)
	s.analyzeDur.observe(time.Since(t0))

	if err != nil {
		s.analyzeErrors.Add(1)
		jsonError(w, http.StatusUnprocessableEntity, "analysis failed: %v", err)
		return
	}
	if cached {
		s.analyzeHits.Add(1)
	} else {
		s.analyzeMisses.Add(1)
	}
	respondResult(w, hex.EncodeToString(sum[:]), cached, res)
}

// analyzeByHash serves the {"sha256": ...} form of POST /v1/analyze:
// return the cached result or tell the caller to upload the binary.
// Bodies beyond maxHashBodyBytes are 413 — not silently truncated
// into a confusing JSON parse error.
func (s *Server) analyzeByHash(w http.ResponseWriter, r *http.Request, opts []fetch.Option) {
	s.byHashRequests.Add(1)
	raw, err := io.ReadAll(io.LimitReader(r.Body, maxHashBodyBytes+1))
	if err != nil {
		jsonError(w, http.StatusBadRequest, "reading request body: %v", err)
		return
	}
	if len(raw) > maxHashBodyBytes {
		jsonError(w, http.StatusRequestEntityTooLarge,
			"JSON lookup body exceeds %d bytes", maxHashBodyBytes)
		return
	}
	var req struct {
		SHA256 string `json:"sha256"`
	}
	if err := json.Unmarshal(raw, &req); err != nil {
		jsonError(w, http.StatusBadRequest, "bad JSON body: %v", err)
		return
	}
	sum, err := parseSHA256(req.SHA256)
	if err != nil {
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}
	res, ok := s.cache.Get(sum, opts...)
	if !ok {
		jsonError(w, http.StatusNotFound,
			"result for %s not cached; POST the binary to /v1/analyze", req.SHA256)
		return
	}
	s.byHashHits.Add(1)
	respondResult(w, req.SHA256, true, res)
}

// handleResult serves GET /v1/result/{sha256}: a pure cache lookup
// that never triggers analysis.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		jsonError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	s.resultRequests.Add(1)
	hexSum := strings.TrimPrefix(r.URL.Path, "/v1/result/")
	sum, err := parseSHA256(hexSum)
	if err != nil {
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}
	res, ok := s.cache.Get(sum, optionsFromQuery(r)...)
	if !ok {
		jsonError(w, http.StatusNotFound,
			"result for %s not cached; POST the binary to /v1/analyze", hexSum)
		return
	}
	s.resultHits.Add(1)
	respondResult(w, hexSum, true, res)
}

// handleHealthz serves the GET liveness probe.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		jsonError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, map[string]string{"status": "ok"})
}

// StatsResponse is the /v1/stats payload: request-level counters for
// each endpoint plus the raw cache counters. All durations are integer
// nanoseconds, matching the result schema's unit convention. Every
// number here is read from the same atomics /metrics exposes.
type StatsResponse struct {
	UptimeNS int64 `json:"uptime_ns"`
	InFlight int64 `json:"in_flight"`
	// PeakInFlight is the high-water mark of concurrent analyses; it
	// never exceeds MaxInFlight.
	PeakInFlight int64 `json:"peak_in_flight"`
	MaxInFlight  int   `json:"max_in_flight"`
	// Queued is the number of requests currently waiting for a slot;
	// PeakQueued its high-water mark; MaxQueued the admission bound
	// beyond which arrivals are rejected 429.
	Queued     int64 `json:"queued"`
	PeakQueued int64 `json:"peak_queued"`
	MaxQueued  int   `json:"max_queued"`

	Analyze struct {
		Requests    int64 `json:"requests"`
		CacheHits   int64 `json:"cache_hits"`
		CacheMisses int64 `json:"cache_misses"`
		Errors      int64 `json:"errors"`
		// QueueRejected counts immediate 429s (queue full);
		// QueueCancelled counts clients that gave up while queued
		// (distinct from Errors — they are client failures);
		// QueueTimeouts counts queue-deadline 503s.
		QueueRejected  int64 `json:"queue_rejected"`
		QueueCancelled int64 `json:"queue_cancelled"`
		QueueTimeouts  int64 `json:"queue_timeouts"`
		QueueWaitNS    int64 `json:"queue_wait_ns_total"`
		AnalyzeNS      int64 `json:"analyze_ns_total"`
		ByHash         int64 `json:"by_hash_requests"`
		ByHashHits     int64 `json:"by_hash_hits"`
	} `json:"analyze"`

	Result struct {
		Requests int64 `json:"requests"`
		Hits     int64 `json:"hits"`
	} `json:"result"`

	// Jobs are the async-API counters: Active is queued+running right
	// now, the totals are lifetime.
	Jobs struct {
		Submitted int64 `json:"submitted"`
		Completed int64 `json:"completed"`
		Failed    int64 `json:"failed"`
		Active    int64 `json:"active"`
	} `json:"jobs"`

	Cache fetch.CacheStats `json:"cache"`
}

// Stats snapshots the server and cache counters.
func (s *Server) Stats() StatsResponse {
	var sr StatsResponse
	sr.UptimeNS = int64(time.Since(s.start))
	sr.InFlight = s.inFlight.Load()
	sr.PeakInFlight = s.peakInFlight.Load()
	sr.MaxInFlight = cap(s.adm.slots)
	sr.Queued = s.adm.queued.Load()
	sr.PeakQueued = s.adm.peakQueued.Load()
	sr.MaxQueued = int(s.adm.maxQueued)
	sr.Analyze.Requests = s.analyzeRequests.Load()
	sr.Analyze.CacheHits = s.analyzeHits.Load()
	sr.Analyze.CacheMisses = s.analyzeMisses.Load()
	sr.Analyze.Errors = s.analyzeErrors.Load()
	sr.Analyze.QueueRejected = s.queueRejected.Load()
	sr.Analyze.QueueCancelled = s.queueCancelled.Load()
	sr.Analyze.QueueTimeouts = s.queueTimeouts.Load()
	sr.Analyze.QueueWaitNS = s.queueWait.sumNS.Load()
	sr.Analyze.AnalyzeNS = s.analyzeDur.sumNS.Load()
	sr.Analyze.ByHash = s.byHashRequests.Load()
	sr.Analyze.ByHashHits = s.byHashHits.Load()
	sr.Result.Requests = s.resultRequests.Load()
	sr.Result.Hits = s.resultHits.Load()
	sr.Jobs.Submitted = s.jobsSubmitted.Load()
	sr.Jobs.Completed = s.jobsCompleted.Load()
	sr.Jobs.Failed = s.jobsFailed.Load()
	sr.Jobs.Active = s.jobsActive.Load()
	sr.Cache = s.cache.Stats()
	return sr
}

// handleStats serves the GET counters snapshot.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		jsonError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, s.Stats())
}

// parseSHA256 decodes a 64-character hex content hash.
func parseSHA256(s string) ([32]byte, error) {
	var sum [32]byte
	raw, err := hex.DecodeString(s)
	if err != nil || len(raw) != len(sum) {
		return sum, fmt.Errorf("service: %q is not a 64-char hex sha256", s)
	}
	copy(sum[:], raw)
	return sum, nil
}
