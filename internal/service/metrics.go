package service

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// durationBuckets are the histogram upper bounds, in seconds, shared
// by the queue-wait and analysis-latency histograms. They span the
// microsecond cache hit through the multi-second cold analysis of a
// huge binary.
var durationBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10}

// histogram is a Prometheus-style cumulative histogram over atomics:
// observation never takes a lock, exposition reads a consistent-enough
// snapshot (counters are monotone, so a scrape racing an observation
// is at worst one sample stale — the Prometheus contract). The sum is
// kept in integer nanoseconds so /v1/stats can report the exact same
// total the _sum series exposes.
type histogram struct {
	bounds []float64 // upper bounds in seconds, ascending; +Inf implied
	counts []atomic.Int64
	sumNS  atomic.Int64
	count  atomic.Int64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// observe records one duration sample.
func (h *histogram) observe(d time.Duration) {
	s := d.Seconds()
	i := sort.SearchFloat64s(h.bounds, s)
	h.counts[i].Add(1)
	h.sumNS.Add(int64(d))
	h.count.Add(1)
}

// labeledCounter is a counter family keyed by a pre-rendered label
// string (e.g. `path="/v1/analyze",code="200"`). The map only grows —
// label sets are drawn from the fixed route table × status codes — so
// a plain mutex around a small map is plenty.
type labeledCounter struct {
	mu sync.Mutex
	m  map[string]*int64
}

func newLabeledCounter() *labeledCounter {
	return &labeledCounter{m: make(map[string]*int64)}
}

// inc bumps the counter for a label set.
func (c *labeledCounter) inc(labels string) {
	c.mu.Lock()
	p := c.m[labels]
	if p == nil {
		p = new(int64)
		c.m[labels] = p
	}
	*p++
	c.mu.Unlock()
}

// snapshot returns the family sorted by label string for deterministic
// exposition.
func (c *labeledCounter) snapshot() []struct {
	Labels string
	Value  int64
} {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]struct {
		Labels string
		Value  int64
	}, 0, len(c.m))
	for k, v := range c.m {
		out = append(out, struct {
			Labels string
			Value  int64
		}{k, *v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Labels < out[j].Labels })
	return out
}

// fmtFloat renders a float the way Prometheus text exposition expects
// (shortest representation, +Inf spelled exactly so).
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// emitHeader writes the # HELP / # TYPE preamble of one metric family.
func emitHeader(w io.Writer, name, typ, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// emitScalar writes a single unlabeled sample with its preamble.
func emitScalar(w io.Writer, name, typ, help string, v int64) {
	emitHeader(w, name, typ, help)
	fmt.Fprintf(w, "%s %d\n", name, v)
}

// emitHistogram writes the _bucket/_sum/_count series of a histogram.
func emitHistogram(w io.Writer, name, help string, h *histogram) {
	emitHeader(w, name, "histogram", help)
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, fmtFloat(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %s\n", name, fmtFloat(float64(h.sumNS.Load())/1e9))
	fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
}

// WriteMetrics renders the full Prometheus text exposition (format
// version 0.0.4) of the server's counters, gauges, and histograms.
// Every series is backed by the same atomics /v1/stats reads, so the
// two views can never disagree about a count.
func (s *Server) WriteMetrics(w io.Writer) {
	var b strings.Builder

	emitScalar(&b, "fetchd_uptime_seconds", "gauge",
		"Seconds since the server started.", int64(time.Since(s.start)/time.Second))

	// HTTP surface (middleware-fed, labeled by route pattern + status).
	emitHeader(&b, "fetchd_http_requests_total", "counter",
		"HTTP requests served, by route pattern and status code.")
	for _, kv := range s.httpReqs.snapshot() {
		fmt.Fprintf(&b, "fetchd_http_requests_total{%s} %d\n", kv.Labels, kv.Value)
	}

	// Analyze endpoint counters.
	emitScalar(&b, "fetchd_analyze_requests_total", "counter",
		"Upload-analysis requests accepted for processing.", s.analyzeRequests.Load())
	emitScalar(&b, "fetchd_analyze_cache_hits_total", "counter",
		"Analyze requests served from the result cache.", s.analyzeHits.Load())
	emitScalar(&b, "fetchd_analyze_cache_misses_total", "counter",
		"Analyze requests that ran a cold analysis.", s.analyzeMisses.Load())
	emitScalar(&b, "fetchd_analyze_errors_total", "counter",
		"Analyze requests that failed (bad body, oversize, unanalyzable).", s.analyzeErrors.Load())

	// Admission control.
	emitScalar(&b, "fetchd_queue_rejected_total", "counter",
		"Requests rejected 429 because the admission queue was full.", s.queueRejected.Load())
	emitScalar(&b, "fetchd_queue_cancelled_total", "counter",
		"Requests whose client gave up while queued (not server errors).", s.queueCancelled.Load())
	emitScalar(&b, "fetchd_queue_timeouts_total", "counter",
		"Requests that exceeded the queue deadline waiting for a slot.", s.queueTimeouts.Load())
	emitScalar(&b, "fetchd_queued", "gauge",
		"Requests currently waiting for an analysis slot.", s.adm.queued.Load())
	emitScalar(&b, "fetchd_queued_peak", "gauge",
		"High-water mark of queued requests.", s.adm.peakQueued.Load())
	emitScalar(&b, "fetchd_queued_max", "gauge",
		"Admission queue capacity (MaxQueued).", s.adm.maxQueued)
	emitScalar(&b, "fetchd_in_flight", "gauge",
		"Analyses running right now.", s.inFlight.Load())
	emitScalar(&b, "fetchd_in_flight_peak", "gauge",
		"High-water mark of concurrent analyses.", s.peakInFlight.Load())
	emitScalar(&b, "fetchd_in_flight_max", "gauge",
		"Concurrent-analysis bound (MaxInFlight).", int64(cap(s.adm.slots)))

	emitHistogram(&b, "fetchd_queue_wait_seconds",
		"Time admitted requests spent waiting for an analysis slot.", s.queueWait)
	emitHistogram(&b, "fetchd_analyze_duration_seconds",
		"Wall time of the analysis (or cache hit) behind each admitted request.", s.analyzeDur)

	// Async jobs.
	emitScalar(&b, "fetchd_jobs_submitted_total", "counter",
		"Async jobs accepted by POST /v1/jobs.", s.jobsSubmitted.Load())
	emitScalar(&b, "fetchd_jobs_completed_total", "counter",
		"Async jobs that finished successfully.", s.jobsCompleted.Load())
	emitScalar(&b, "fetchd_jobs_failed_total", "counter",
		"Async jobs whose analysis failed or was aborted by shutdown.", s.jobsFailed.Load())
	emitScalar(&b, "fetchd_jobs_active", "gauge",
		"Jobs currently queued or running.", s.jobsActive.Load())

	// Result cache.
	cs := s.cache.Stats()
	emitScalar(&b, "fetchd_cache_hits_total", "counter",
		"Result-cache hits (memory + disk).", cs.Hits)
	emitScalar(&b, "fetchd_cache_misses_total", "counter",
		"Result-cache misses.", cs.Misses)
	emitScalar(&b, "fetchd_cache_evictions_total", "counter",
		"Entries evicted from the in-memory LRU.", cs.Evictions)
	emitScalar(&b, "fetchd_cache_entries", "gauge",
		"Entries resident in the in-memory cache.", int64(cs.Entries))
	emitScalar(&b, "fetchd_cache_disk_evictions_total", "counter",
		"On-disk entries removed by the byte-budget sweep.", cs.DiskEvictions)
	emitScalar(&b, "fetchd_cache_disk_bytes", "gauge",
		"Current on-disk cache usage in bytes.", cs.DiskBytes)

	// Function-granular delta tier.
	emitScalar(&b, "fetchd_cache_manifest_hits_total", "counter",
		"Residue-keyed trace manifest hits on whole-binary misses.", cs.ManifestHits)
	emitScalar(&b, "fetchd_cache_manifest_misses_total", "counter",
		"Residue-keyed trace manifest misses.", cs.ManifestMisses)
	emitScalar(&b, "fetchd_cache_fn_tier_hits_total", "counter",
		"Per-function range-entry hits during delta replay.", cs.FnTierHits)
	emitScalar(&b, "fetchd_cache_fn_tier_misses_total", "counter",
		"Per-function range-entry misses (evicted or failed integrity).", cs.FnTierMisses)
	emitScalar(&b, "fetchd_cache_delta_puts_total", "counter",
		"Manifest and function-range entries written after recorded runs.", cs.DeltaPuts)
	emitScalar(&b, "fetchd_cache_delta_hits_total", "counter",
		"Whole-binary misses served by verified delta replay.", cs.DeltaHits)
	emitScalar(&b, "fetchd_cache_delta_fallbacks_total", "counter",
		"Delta attempts that fell back to the cold pipeline.", cs.DeltaFallbacks)

	io.WriteString(w, b.String())
}

// handleMetrics serves GET /metrics in Prometheus text exposition
// format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		jsonError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.WriteMetrics(w)
}
