package xref

import (
	"testing"

	"fetch/internal/disasm"
	"fetch/internal/ehframe"
	"fetch/internal/elfx"
	"fetch/internal/groundtruth"
	"fetch/internal/synth"
)

func setup(t *testing.T, mutate func(*synth.Config)) (*elfx.Image, *groundtruth.Truth, *disasm.Result, map[uint64]bool, Options) {
	t.Helper()
	cfg := synth.DefaultConfig("xref-test", 700, synth.O2, synth.GCC, synth.LangC)
	if mutate != nil {
		mutate(&cfg)
	}
	img, truth, err := synth.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	img = img.Strip()
	eh, _ := img.Section(".eh_frame")
	sec, err := ehframe.Decode(eh.Data, eh.Addr)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	seeds := sec.FunctionStarts()
	res := disasm.Recursive(img, seeds, disasm.Options{
		ResolveJumpTables: true, NonReturning: true,
	})
	funcs := map[uint64]bool{}
	for _, s := range seeds {
		funcs[s] = true
	}
	for f := range res.Funcs {
		funcs[f] = true
	}
	var ranges []disasm.FuncRange
	for _, f := range sec.FDEs {
		ranges = append(ranges, disasm.FuncRange{Start: f.PCBegin, End: f.End()})
	}
	return img, truth, res, funcs, Options{KnownRanges: ranges}
}

func TestCandidatesIncludeDataSlotsAndConstants(t *testing.T) {
	img, truth, res, _, _ := setup(t, func(c *synth.Config) {
		c.IndirectOnlyRate = 0.08
	})
	cands := map[uint64]bool{}
	for _, c := range Candidates(img, res) {
		cands[c] = true
	}
	found := 0
	for _, fn := range truth.Funcs {
		if fn.Reach == groundtruth.ReachIndirectOnly && cands[fn.Addr] {
			found++
		}
	}
	if found == 0 {
		t.Fatal("no indirect-only entry among candidates")
	}
	// Candidates are all executable addresses.
	for c := range cands {
		if !img.IsExec(c) {
			t.Fatalf("non-exec candidate %#x", c)
		}
	}
}

func TestDetectFindsIndirectOnlyWithoutFPs(t *testing.T) {
	img, truth, res, funcs, opts := setup(t, func(c *synth.Config) {
		c.IndirectOnlyRate = 0.08
	})
	newly := Detect(img, res, funcs, opts)
	if len(newly) == 0 {
		t.Fatal("nothing detected")
	}
	for _, a := range newly {
		if !truth.IsStart(a) {
			t.Errorf("false positive at %#x", a)
		}
	}
}

func TestDetectRejectsMidFunctionPointers(t *testing.T) {
	// The generator plants rodata values pointing into function
	// middles; none may be accepted.
	img, truth, res, funcs, opts := setup(t, nil)
	newly := Detect(img, res, funcs, opts)
	for _, a := range newly {
		for _, fn := range truth.Funcs {
			if a > fn.Addr && a < fn.Addr+fn.Size {
				t.Errorf("accepted mid-function pointer %#x (inside %s)", a, fn.Name)
			}
		}
	}
}

func TestDetectIdempotent(t *testing.T) {
	img, _, res, funcs, opts := setup(t, func(c *synth.Config) {
		c.IndirectOnlyRate = 0.08
	})
	first := Detect(img, res, funcs, opts)
	for _, a := range first {
		funcs[a] = true
	}
	second := Detect(img, res, funcs, opts)
	if len(second) != 0 {
		t.Fatalf("second run found %d more", len(second))
	}
}

func TestDataRefCount(t *testing.T) {
	img, truth, _, _, _ := setup(t, func(c *synth.Config) {
		c.IndirectOnlyRate = 0.08
	})
	counted := 0
	for _, fn := range truth.Funcs {
		if fn.Reach == groundtruth.ReachIndirectOnly && DataRefCount(img, fn.Addr) > 0 {
			counted++
		}
	}
	if counted == 0 {
		t.Fatal("no data references counted for indirect-only functions")
	}
	if DataRefCount(img, 0xdeadbeef) != 0 {
		t.Fatal("bogus address has data refs")
	}
}

func TestDisableCallConvRuleAdmitsMore(t *testing.T) {
	img, _, res, funcs, opts := setup(t, nil)
	strict := Detect(img, res, funcs, opts)
	loose := opts
	loose.DisableRule[3] = true
	relaxed := Detect(img, res, funcs, loose)
	if len(relaxed) < len(strict) {
		t.Fatalf("disabling a rule reduced acceptance: %d < %d", len(relaxed), len(strict))
	}
}
