// Package xref implements the soundness-driven function-pointer
// detection of §IV-E: collect a super-set of potential function
// pointers (every consecutive eight bytes of the data sections plus
// every constant operand in disassembled code), then validate each
// candidate by conservative recursive disassembly — rejecting on
// (i) invalid opcodes, (ii) decoding into the middle of previously
// disassembled instructions, (iii) control transfers into the middle of
// previously detected functions, and (iv) calling-convention
// violations. Accepted pointers become function starts and their
// disassembly refreshes the candidate pool.
package xref

import (
	"context"
	"encoding/binary"
	"sort"

	"fetch/internal/callconv"
	"fetch/internal/disasm"
	"fetch/internal/elfx"
	"fetch/internal/pool"
)

// Candidates returns the §IV-E pointer super-set: all data-section
// eight-byte windows whose value lands in executable code, plus all
// harvested constants.
func Candidates(img *elfx.Image, res *disasm.Result) []uint64 {
	return candidates(img, res, nil)
}

// candidates is Candidates with an optional precomputed data index;
// the output is identical either way (the sorted distinct union of
// executable data-window values and executable, non-table constants —
// with or without the index, the same set).
func candidates(img *elfx.Image, res *disasm.Result, ix *DataIndex) []uint64 {
	seen := map[uint64]bool{}
	var out []uint64
	add := func(v uint64) {
		if !seen[v] && img.IsExec(v) {
			seen[v] = true
			out = append(out, v)
		}
	}
	if ix != nil {
		for _, v := range ix.execVals {
			add(v)
		}
	} else {
		for _, sec := range img.DataSections() {
			body := sec.Bytes()
			for off := 0; off+8 <= len(body); off++ {
				add(binary.LittleEndian.Uint64(body[off:]))
			}
		}
	}
	for c := range res.Constants {
		if res.TableBases[c] {
			continue // a resolved jump-table base is known data
		}
		add(c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DataIndex is a precomputed restatement of the data sections'
// eight-byte windows, restricted to values landing in executable code:
// per-value occurrence counts (DataRefCount's hot query — reference
// evidence for code addresses) and the sorted distinct values (the
// data half of Candidates). Sharded runs build one per binary so
// reference-count queries stop rescanning every window. The
// restriction bounds the index by the executable address range rather
// than the data size (a distinct-window-count index would be O(data));
// the rare query for a non-executable address falls back to the direct
// scan, so answers are identical to DataRefCount for every address.
type DataIndex struct {
	img      *elfx.Image
	counts   map[uint64]int
	execVals []uint64
}

// NewDataIndex scans img's data sections with up to jobs workers.
func NewDataIndex(img *elfx.Image, jobs int) *DataIndex {
	type chunk struct {
		data   []byte
		lo, hi int
	}
	var chunks []chunk
	const chunkWindows = 1 << 16
	for _, sec := range img.DataSections() {
		body := sec.Bytes()
		n := len(body) - 7 // number of windows
		for lo := 0; lo < n; lo += chunkWindows {
			hi := lo + chunkWindows
			if hi > n {
				hi = n
			}
			chunks = append(chunks, chunk{data: body, lo: lo, hi: hi})
		}
	}
	outs := pool.Map(nil, jobs, chunks, func(_ context.Context, _ int, c chunk) (map[uint64]int, error) {
		l := make(map[uint64]int)
		for off := c.lo; off < c.hi; off++ {
			if v := binary.LittleEndian.Uint64(c.data[off:]); img.IsExec(v) {
				l[v]++
			}
		}
		return l, nil
	})
	ix := &DataIndex{img: img, counts: make(map[uint64]int)}
	for _, o := range outs {
		for v, n := range o.Value {
			if ix.counts[v] == 0 {
				ix.execVals = append(ix.execVals, v)
			}
			ix.counts[v] += n
		}
	}
	sort.Slice(ix.execVals, func(i, j int) bool { return ix.execVals[i] < ix.execVals[j] })
	return ix
}

// AccountedBytes estimates the index's memory at documented per-entry
// costs (a count-map slot plus a sorted-value word) for the analysis
// memory accounting; deterministic, not a heap measurement.
func (ix *DataIndex) AccountedBytes() int64 {
	return int64(len(ix.counts))*24 + int64(len(ix.execVals))*8
}

// Count returns how many data-section windows hold the value addr —
// the same answer as DataRefCount: constant-time for executable
// addresses (the only hot query), a direct scan otherwise.
func (ix *DataIndex) Count(addr uint64) int {
	if ix.img.IsExec(addr) {
		return ix.counts[addr]
	}
	return DataRefCount(ix.img, addr)
}

// DataRefCount counts how many data-section windows hold the value
// addr — the reference evidence Algorithm 1's RefTo uses beyond
// code-level refs.
func DataRefCount(img *elfx.Image, addr uint64) int {
	n := 0
	for _, sec := range img.DataSections() {
		body := sec.Bytes()
		for off := 0; off+8 <= len(body); off++ {
			if binary.LittleEndian.Uint64(body[off:]) == addr {
				n++
			}
		}
	}
	return n
}

// Options configure a detection run.
type Options struct {
	// KnownRanges are detected function extents (FDE ranges): rule
	// (iii) rejects candidates and transfers into their interiors.
	KnownRanges []disasm.FuncRange
	// MaxValidationInsts bounds each candidate's validation walk.
	MaxValidationInsts int
	// DisableRule turns individual §IV-E validation rules off for
	// ablation: [0] invalid opcodes / strict walk, [1] mid-instruction
	// landings, [2] transfers into function interiors, [3] calling
	// conventions.
	DisableRule [4]bool
	// Session, when set, supplies the incremental disassembly state:
	// candidate validation walks run on a fork of it, so every probe
	// reuses (and feeds) the binary's shared decode cache instead of
	// decoding from scratch. Results are byte-identical either way.
	Session *disasm.Session
	// Jobs > 1 validates each round's candidates concurrently (on
	// parallel session forks when Session is set). Validation is a
	// pure function of the committed disassembly, so precomputing
	// verdicts in parallel and replaying the sequential accept loop
	// over them yields the exact sequential result.
	Jobs int
	// Index, when set, answers the data-section half of candidate
	// collection from the precomputed DataIndex instead of rescanning
	// the sections each round. Output is identical either way.
	Index *DataIndex
	// Observer, when set, receives every candidate validation in the
	// exact order the sequential accept loop consults verdicts: the
	// candidate, the verdict, and the validation walk's result (nil
	// when the candidate was rejected before walking). The delta-
	// analysis recorder uses it to capture each verdict together with
	// the byte extent it depends on. Observers must not mutate v.
	Observer func(c uint64, ok bool, v *disasm.Result)
}

// Detect validates candidates against the current disassembly and
// returns the accepted new function starts, iterating as accepted
// pointers contribute new constants (§IV-E's pool refresh).
func Detect(img *elfx.Image, res *disasm.Result, funcs map[uint64]bool, opts Options) []uint64 {
	if opts.MaxValidationInsts == 0 {
		opts.MaxValidationInsts = 2000
	}
	// Speculative validation walks run on a copy-on-write fork: probe
	// decodes land in the shared cache, committed state stays intact.
	var probe *disasm.Session
	if opts.Session != nil {
		probe = opts.Session.Fork()
	}
	var accepted []uint64
	acceptedSet := map[uint64]bool{}
	pending := candidates(img, res, opts.Index)
	tried := map[uint64]bool{}
	// acceptedRanges protects the (approximate) extents of pointers
	// accepted earlier in this run: a later candidate into their
	// interior is a mid-function pointer (§IV-E pool refresh).
	var acceptedRanges []disasm.FuncRange
	insideAccepted := func(c uint64) bool {
		for _, r := range acceptedRanges {
			if c > r.Start && c < r.End {
				return true
			}
		}
		return false
	}

	for len(pending) > 0 {
		// Parallel mode precomputes every verdict the sequential loop
		// below could ask for. validate is pure in (img, res, c, opts)
		// — probe sessions change only decode-cache traffic — so the
		// replayed accept loop is byte-identical to computing verdicts
		// inline.
		var precomputed map[uint64]valOutcome
		if opts.Jobs > 1 {
			precomputed = validateAll(img, res, pending, funcs, tried, acceptedSet, opts)
		}

		var next []uint64
		for _, c := range pending {
			if tried[c] || funcs[c] || acceptedSet[c] {
				continue
			}
			tried[c] = true
			if insideAccepted(c) {
				continue
			}
			var newRes *disasm.Result
			var ok bool
			if precomputed != nil {
				v := precomputed[c]
				newRes, ok = v.res, v.ok
			} else {
				newRes, ok = validate(img, res, c, opts, probe)
			}
			if opts.Observer != nil {
				opts.Observer(c, ok, newRes)
			}
			if !ok {
				continue
			}
			acceptedSet[c] = true
			accepted = append(accepted, c)
			acceptedRanges = append(acceptedRanges, disasm.FuncRange{
				Start: c, End: contiguousEnd(newRes, c),
			})
			// Refresh the pool from the new disassembly's constants.
			for v := range newRes.Constants {
				if img.IsExec(v) && !tried[v] && !funcs[v] && !acceptedSet[v] {
					next = append(next, v)
				}
			}
		}
		// The refreshed pool is sorted before the next round: newRes
		// constants arrive in map order, and an address-ordered round
		// makes the iteration reproducible run to run.
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		pending = next
	}
	sort.Slice(accepted, func(i, j int) bool { return accepted[i] < accepted[j] })
	return accepted
}

// valOutcome is one precomputed candidate verdict.
type valOutcome struct {
	res *disasm.Result
	ok  bool
}

// validateAll precomputes verdicts for every candidate of a round that
// the sequential accept loop could validate (everything not already
// tried, known, or accepted at round start — a superset of what it
// will actually consult, since within-round skips are unknowable until
// replay). Candidates validate concurrently on parallel session forks,
// whose decode overlays are absorbed back in candidate order.
func validateAll(img *elfx.Image, res *disasm.Result, pending []uint64,
	funcs, tried, acceptedSet map[uint64]bool, opts Options) map[uint64]valOutcome {

	var todo []uint64
	in := map[uint64]bool{}
	for _, c := range pending {
		if tried[c] || funcs[c] || acceptedSet[c] || in[c] {
			continue
		}
		in[c] = true
		todo = append(todo, c)
	}
	type out struct {
		v    valOutcome
		fork *disasm.Session
	}
	outs := pool.Map(nil, opts.Jobs, todo, func(_ context.Context, _ int, c uint64) (out, error) {
		var fork *disasm.Session
		if opts.Session != nil {
			fork = opts.Session.ParallelFork()
		}
		r, ok := validate(img, res, c, opts, fork)
		return out{v: valOutcome{res: r, ok: ok}, fork: fork}, nil
	})
	verdicts := make(map[uint64]valOutcome, len(todo))
	for i, o := range outs {
		if o.Value.fork != nil {
			opts.Session.Absorb(o.Value.fork)
		}
		verdicts[todo[i]] = o.Value.v
	}
	return verdicts
}

// contiguousEnd returns the end of the contiguous instruction run the
// validation walk decoded from c — the approximate extent of the newly
// accepted function.
func contiguousEnd(v *disasm.Result, c uint64) uint64 {
	addrs := make([]uint64, 0, len(v.Insts))
	for a := range v.Insts {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	end := c
	for _, a := range addrs {
		if a < c {
			continue
		}
		if a != end {
			break
		}
		end = v.Insts[a].Next()
	}
	return end
}

// ContiguousEnd exposes contiguousEnd for the delta-analysis recorder:
// the approximate extent of a validated function, needed to replay the
// accept loop's interior-skip rule without re-walking.
func ContiguousEnd(v *disasm.Result, c uint64) uint64 {
	return contiguousEnd(v, c)
}

// ValidateCandidate applies the §IV-E rules to one candidate outside a
// Detect run — the delta path re-validates exactly the candidates
// whose recorded verdicts depend on changed bytes. res supplies the
// committed-coverage queries (a coverage-only result suffices); a
// non-nil sess provides cached decoding via a fork. The verdict is
// identical to the one Detect would compute against the same state.
func ValidateCandidate(img *elfx.Image, res *disasm.Result, c uint64, opts Options, sess *disasm.Session) (*disasm.Result, bool) {
	if opts.MaxValidationInsts == 0 {
		opts.MaxValidationInsts = 2000
	}
	var probe *disasm.Session
	if sess != nil {
		probe = sess.Fork()
	}
	return validate(img, res, c, opts, probe)
}

// validate applies rules (i)-(iv) to one candidate. A non-nil probe
// session runs the validation walk with cached decoding.
func validate(img *elfx.Image, res *disasm.Result, c uint64, opts Options, probe *disasm.Session) (*disasm.Result, bool) {
	// Rule (iii), seed form: the candidate itself must not point into
	// a previously detected function's interior.
	if !opts.DisableRule[2] {
		for _, r := range opts.KnownRanges {
			if c > r.Start && c < r.End {
				return nil, false
			}
		}
	}
	// Rule (ii), seed form: the candidate must not point into the
	// middle of an already-decoded instruction.
	if !opts.DisableRule[1] {
		if start, covered := res.InstStartAt(c); covered && start != c {
			return nil, false
		}
	}
	// Rules (i)-(iii), walk form: conservative recursive disassembly.
	ranges := opts.KnownRanges
	if opts.DisableRule[2] {
		ranges = nil
	}
	vopts := disasm.Options{
		ResolveJumpTables: true,
		Strict:            true,
		KnownRanges:       ranges,
		MaxInsts:          opts.MaxValidationInsts,
	}
	var v *disasm.Result
	if probe != nil {
		v = probe.Probe([]uint64{c}, vopts)
	} else {
		v = disasm.Recursive(img, []uint64{c}, vopts)
	}
	if !opts.DisableRule[0] && len(v.Errors) > 0 {
		return nil, false
	}
	// Rule (ii) against the pre-existing disassembly: any instruction
	// decoded by the validation walk that overlaps a previously
	// decoded instruction at a different phase is a misalignment.
	if !opts.DisableRule[1] {
		for addr := range v.Insts {
			if start, covered := res.InstStartAt(addr); covered && start != addr {
				return nil, false
			}
		}
	}
	// Rule (iv): calling convention at the candidate entry.
	if !opts.DisableRule[3] && !callconv.Validate(img, c) {
		return nil, false
	}
	return v, true
}
