// Package xref implements the soundness-driven function-pointer
// detection of §IV-E: collect a super-set of potential function
// pointers (every consecutive eight bytes of the data sections plus
// every constant operand in disassembled code), then validate each
// candidate by conservative recursive disassembly — rejecting on
// (i) invalid opcodes, (ii) decoding into the middle of previously
// disassembled instructions, (iii) control transfers into the middle of
// previously detected functions, and (iv) calling-convention
// violations. Accepted pointers become function starts and their
// disassembly refreshes the candidate pool.
package xref

import (
	"encoding/binary"
	"sort"

	"fetch/internal/callconv"
	"fetch/internal/disasm"
	"fetch/internal/elfx"
)

// Candidates returns the §IV-E pointer super-set: all data-section
// eight-byte windows whose value lands in executable code, plus all
// harvested constants.
func Candidates(img *elfx.Image, res *disasm.Result) []uint64 {
	seen := map[uint64]bool{}
	var out []uint64
	add := func(v uint64) {
		if !seen[v] && img.IsExec(v) {
			seen[v] = true
			out = append(out, v)
		}
	}
	for _, sec := range img.DataSections() {
		for off := 0; off+8 <= len(sec.Data); off++ {
			add(binary.LittleEndian.Uint64(sec.Data[off:]))
		}
	}
	for c := range res.Constants {
		if res.TableBases[c] {
			continue // a resolved jump-table base is known data
		}
		add(c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DataRefCount counts how many data-section windows hold the value
// addr — the reference evidence Algorithm 1's RefTo uses beyond
// code-level refs.
func DataRefCount(img *elfx.Image, addr uint64) int {
	n := 0
	for _, sec := range img.DataSections() {
		for off := 0; off+8 <= len(sec.Data); off++ {
			if binary.LittleEndian.Uint64(sec.Data[off:]) == addr {
				n++
			}
		}
	}
	return n
}

// Options configure a detection run.
type Options struct {
	// KnownRanges are detected function extents (FDE ranges): rule
	// (iii) rejects candidates and transfers into their interiors.
	KnownRanges []disasm.FuncRange
	// MaxValidationInsts bounds each candidate's validation walk.
	MaxValidationInsts int
	// DisableRule turns individual §IV-E validation rules off for
	// ablation: [0] invalid opcodes / strict walk, [1] mid-instruction
	// landings, [2] transfers into function interiors, [3] calling
	// conventions.
	DisableRule [4]bool
	// Session, when set, supplies the incremental disassembly state:
	// candidate validation walks run on a fork of it, so every probe
	// reuses (and feeds) the binary's shared decode cache instead of
	// decoding from scratch. Results are byte-identical either way.
	Session *disasm.Session
}

// Detect validates candidates against the current disassembly and
// returns the accepted new function starts, iterating as accepted
// pointers contribute new constants (§IV-E's pool refresh).
func Detect(img *elfx.Image, res *disasm.Result, funcs map[uint64]bool, opts Options) []uint64 {
	if opts.MaxValidationInsts == 0 {
		opts.MaxValidationInsts = 2000
	}
	// Speculative validation walks run on a copy-on-write fork: probe
	// decodes land in the shared cache, committed state stays intact.
	var probe *disasm.Session
	if opts.Session != nil {
		probe = opts.Session.Fork()
	}
	var accepted []uint64
	acceptedSet := map[uint64]bool{}
	pending := Candidates(img, res)
	tried := map[uint64]bool{}
	// acceptedRanges protects the (approximate) extents of pointers
	// accepted earlier in this run: a later candidate into their
	// interior is a mid-function pointer (§IV-E pool refresh).
	var acceptedRanges []disasm.FuncRange
	insideAccepted := func(c uint64) bool {
		for _, r := range acceptedRanges {
			if c > r.Start && c < r.End {
				return true
			}
		}
		return false
	}

	for len(pending) > 0 {
		var next []uint64
		for _, c := range pending {
			if tried[c] || funcs[c] || acceptedSet[c] {
				continue
			}
			tried[c] = true
			if insideAccepted(c) {
				continue
			}
			newRes, ok := validate(img, res, c, opts, probe)
			if !ok {
				continue
			}
			acceptedSet[c] = true
			accepted = append(accepted, c)
			acceptedRanges = append(acceptedRanges, disasm.FuncRange{
				Start: c, End: contiguousEnd(newRes, c),
			})
			// Refresh the pool from the new disassembly's constants.
			for v := range newRes.Constants {
				if img.IsExec(v) && !tried[v] && !funcs[v] && !acceptedSet[v] {
					next = append(next, v)
				}
			}
		}
		pending = next
	}
	sort.Slice(accepted, func(i, j int) bool { return accepted[i] < accepted[j] })
	return accepted
}

// contiguousEnd returns the end of the contiguous instruction run the
// validation walk decoded from c — the approximate extent of the newly
// accepted function.
func contiguousEnd(v *disasm.Result, c uint64) uint64 {
	addrs := make([]uint64, 0, len(v.Insts))
	for a := range v.Insts {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	end := c
	for _, a := range addrs {
		if a < c {
			continue
		}
		if a != end {
			break
		}
		end = v.Insts[a].Next()
	}
	return end
}

// validate applies rules (i)-(iv) to one candidate. A non-nil probe
// session runs the validation walk with cached decoding.
func validate(img *elfx.Image, res *disasm.Result, c uint64, opts Options, probe *disasm.Session) (*disasm.Result, bool) {
	// Rule (iii), seed form: the candidate itself must not point into
	// a previously detected function's interior.
	if !opts.DisableRule[2] {
		for _, r := range opts.KnownRanges {
			if c > r.Start && c < r.End {
				return nil, false
			}
		}
	}
	// Rule (ii), seed form: the candidate must not point into the
	// middle of an already-decoded instruction.
	if !opts.DisableRule[1] {
		if start, covered := res.InstStartAt(c); covered && start != c {
			return nil, false
		}
	}
	// Rules (i)-(iii), walk form: conservative recursive disassembly.
	ranges := opts.KnownRanges
	if opts.DisableRule[2] {
		ranges = nil
	}
	vopts := disasm.Options{
		ResolveJumpTables: true,
		Strict:            true,
		KnownRanges:       ranges,
		MaxInsts:          opts.MaxValidationInsts,
	}
	var v *disasm.Result
	if probe != nil {
		v = probe.Probe([]uint64{c}, vopts)
	} else {
		v = disasm.Recursive(img, []uint64{c}, vopts)
	}
	if !opts.DisableRule[0] && len(v.Errors) > 0 {
		return nil, false
	}
	// Rule (ii) against the pre-existing disassembly: any instruction
	// decoded by the validation walk that overlaps a previously
	// decoded instruction at a different phase is a misalignment.
	if !opts.DisableRule[1] {
		for addr := range v.Insts {
			if start, covered := res.InstStartAt(addr); covered && start != addr {
				return nil, false
			}
		}
	}
	// Rule (iv): calling convention at the candidate entry.
	if !opts.DisableRule[3] && !callconv.Validate(img, c) {
		return nil, false
	}
	return v, true
}
