// Package groundtruth records the compiler-side truth about a
// synthesized binary: the set of true function starts, how each
// function is reachable, and which addresses carry FDEs or symbols that
// are *not* true starts (non-contiguous parts, hand-written CFI
// errors). It plays the role of the compiler-interception framework the
// paper uses to generate ground truth for its self-built dataset.
package groundtruth

import "sort"

// Class describes what kind of function a true start belongs to.
type Class uint8

// Function classes.
const (
	ClassNormal Class = iota + 1
	// ClassAsm marks a hand-written assembly function without CFI
	// directives — it has a symbol but no FDE (§IV-B).
	ClassAsm
	// ClassClangTerminate marks __clang_call_terminate instances
	// statically linked by Clang, which also lack FDEs.
	ClassClangTerminate
)

// Reach describes the tightest way a function can be discovered.
type Reach uint8

// Reachability classes, ordered from easiest to hardest to detect.
const (
	// ReachEntry: the program entry point.
	ReachEntry Reach = iota + 1
	// ReachCall: target of at least one direct call.
	ReachCall
	// ReachTailOnly: referenced only by tail-call jumps.
	ReachTailOnly
	// ReachIndirectOnly: referenced only through function pointers.
	ReachIndirectOnly
	// ReachUnreachable: not referenced anywhere.
	ReachUnreachable
)

// Func is one true source-level function.
type Func struct {
	Name   string
	Addr   uint64
	Size   uint64
	Class  Class
	Reach  Reach
	HasFDE bool
	// NonRet marks functions that never return to their caller.
	NonRet bool
	// TailTargets lists addresses this function tail-calls.
	TailTargets []uint64
}

// Part is the non-beginning part of a non-contiguous function. Its
// address carries an FDE (and usually a symbol) but is not a true
// function start: any detector reporting it commits a false positive.
type Part struct {
	Name   string
	Addr   uint64
	Size   uint64
	Parent uint64 // address of the true start of the owning function
	// IncompleteCFI marks parts whose owning function has CFI without
	// rsp-based height info; Algorithm 1 must skip these, leaving the
	// false positive in place (§V-C residue).
	IncompleteCFI bool
}

// Truth is the full ground-truth record of one binary.
type Truth struct {
	Funcs []Func
	Parts []Part
	// CFIErrorAddrs lists FDE PC Begin values that are wrong by
	// construction (hand-written CFI, paper Figure 6b): addresses
	// that do not coincide with any true start or part.
	CFIErrorAddrs []uint64
	// OverlapFDEAddrs lists PC Begin values of extra bogus FDEs planted
	// mid-function, overlapping their host's own FDE range. Like
	// CFIErrorAddrs they coincide with no true start or part, but they
	// do sit on real instruction boundaries inside a true function.
	OverlapFDEAddrs []uint64

	starts map[uint64]*Func
	parts  map[uint64]*Part
}

// index builds the lookup maps (idempotent).
func (t *Truth) index() {
	if t.starts != nil {
		return
	}
	t.starts = make(map[uint64]*Func, len(t.Funcs))
	for k := range t.Funcs {
		t.starts[t.Funcs[k].Addr] = &t.Funcs[k]
	}
	t.parts = make(map[uint64]*Part, len(t.Parts))
	for k := range t.Parts {
		t.parts[t.Parts[k].Addr] = &t.Parts[k]
	}
}

// IsStart reports whether addr is a true function start.
func (t *Truth) IsStart(addr uint64) bool {
	t.index()
	_, ok := t.starts[addr]
	return ok
}

// FuncAt returns the function record at a true start address.
func (t *Truth) FuncAt(addr uint64) (*Func, bool) {
	t.index()
	f, ok := t.starts[addr]
	return f, ok
}

// PartAt returns the part record at addr, if addr is a non-contiguous
// function part.
func (t *Truth) PartAt(addr uint64) (*Part, bool) {
	t.index()
	p, ok := t.parts[addr]
	return p, ok
}

// StartSet returns a fresh set of all true start addresses.
func (t *Truth) StartSet() map[uint64]bool {
	out := make(map[uint64]bool, len(t.Funcs))
	for k := range t.Funcs {
		out[t.Funcs[k].Addr] = true
	}
	return out
}

// SortedStarts returns all true starts in address order.
func (t *Truth) SortedStarts() []uint64 {
	out := make([]uint64, 0, len(t.Funcs))
	for k := range t.Funcs {
		out = append(out, t.Funcs[k].Addr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumWithFDE counts true functions that carry an FDE.
func (t *Truth) NumWithFDE() int {
	n := 0
	for k := range t.Funcs {
		if t.Funcs[k].HasFDE {
			n++
		}
	}
	return n
}

// CountReach counts true functions with the given reachability.
func (t *Truth) CountReach(r Reach) int {
	n := 0
	for k := range t.Funcs {
		if t.Funcs[k].Reach == r {
			n++
		}
	}
	return n
}
