package groundtruth

import "testing"

func sample() *Truth {
	return &Truth{
		Funcs: []Func{
			{Name: "main", Addr: 0x100, Class: ClassNormal, Reach: ReachEntry, HasFDE: true},
			{Name: "f1", Addr: 0x200, Class: ClassNormal, Reach: ReachCall, HasFDE: true},
			{Name: "asm1", Addr: 0x300, Class: ClassAsm, Reach: ReachTailOnly},
			{Name: "term", Addr: 0x400, Class: ClassClangTerminate, Reach: ReachUnreachable},
		},
		Parts: []Part{
			{Name: "f1.cold", Addr: 0x500, Parent: 0x200, IncompleteCFI: true},
		},
		CFIErrorAddrs: []uint64{0x5FF},
	}
}

func TestLookups(t *testing.T) {
	tr := sample()
	if !tr.IsStart(0x100) || tr.IsStart(0x500) || tr.IsStart(0x101) {
		t.Fatal("IsStart misclassifies")
	}
	f, ok := tr.FuncAt(0x300)
	if !ok || f.Name != "asm1" || f.Class != ClassAsm {
		t.Fatalf("FuncAt = %+v, %v", f, ok)
	}
	p, ok := tr.PartAt(0x500)
	if !ok || p.Parent != 0x200 || !p.IncompleteCFI {
		t.Fatalf("PartAt = %+v, %v", p, ok)
	}
	if _, ok := tr.PartAt(0x200); ok {
		t.Fatal("PartAt hit a function start")
	}
}

func TestSetsAndCounts(t *testing.T) {
	tr := sample()
	set := tr.StartSet()
	if len(set) != 4 || !set[0x400] {
		t.Fatalf("StartSet = %v", set)
	}
	sorted := tr.SortedStarts()
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] >= sorted[i] {
			t.Fatal("SortedStarts not sorted")
		}
	}
	if tr.NumWithFDE() != 2 {
		t.Fatalf("NumWithFDE = %d", tr.NumWithFDE())
	}
	if tr.CountReach(ReachTailOnly) != 1 || tr.CountReach(ReachCall) != 1 {
		t.Fatal("CountReach wrong")
	}
}

func TestIndexIdempotent(t *testing.T) {
	tr := sample()
	_ = tr.IsStart(0x100)
	_ = tr.IsStart(0x100) // second call must reuse the index
	if !tr.IsStart(0x200) {
		t.Fatal("index broken after reuse")
	}
}
