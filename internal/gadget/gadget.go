// Package gadget implements a ROPgadget-style scanner for the §V-A
// security-impact experiment: counting valid ROP gadgets inside the
// code at FDE-introduced false function starts. A control-flow
// integrity policy that admits every detected "function start" as an
// indirect-branch target would leave those gadgets reachable.
package gadget

import (
	"fetch/internal/arch"
	"fetch/internal/elfx"
)

// maxGadgetLen bounds gadget length in instructions, matching
// ROPgadget's default depth.
const maxGadgetLen = 10

// maxScanInsts bounds the forward scan from a start address.
const maxScanInsts = 64

// CountAt counts ROP/JOP/COP gadgets reachable by straight-line decode
// from addr: each instruction position within maxGadgetLen of a
// subsequent ret, indirect jump, or indirect call begins one gadget.
func CountAt(img *elfx.Image, addr uint64) int {
	total := 0
	pending := 0 // instructions since the last terminal/reset
	a := addr
	for k := 0; k < maxScanInsts; k++ {
		w, ok := img.BytesToSectionEnd(a)
		if !ok {
			break
		}
		in, err := img.ISA().Decode(w, a)
		if err != nil {
			break
		}
		pending++
		switch in.Op {
		case arch.OpRet, arch.OpJmpInd, arch.OpCallInd:
			if pending > maxGadgetLen {
				pending = maxGadgetLen
			}
			total += pending
			pending = 0
			if in.Op == arch.OpRet {
				return total // past a ret lies another context
			}
		case arch.OpJmp, arch.OpUd2, arch.OpHlt, arch.OpInt3:
			return total
		}
		a = in.Next()
	}
	return total
}

// CountAll sums CountAt over a set of addresses.
func CountAll(img *elfx.Image, addrs []uint64) int {
	total := 0
	for _, a := range addrs {
		total += CountAt(img, a)
	}
	return total
}
