package gadget

import (
	"testing"

	"fetch/internal/elfx"
	"fetch/internal/synth"
	"fetch/internal/x64"
)

func imageOf(t *testing.T, build func(a *x64.Asm)) *elfx.Image {
	t.Helper()
	var a x64.Asm
	build(&a)
	code, _, err := a.Finish()
	if err != nil {
		t.Fatalf("asm: %v", err)
	}
	return &elfx.Image{Sections: []*elfx.Section{{
		Name: ".text", Addr: 0x1000, Data: code,
		Flags: elfx.FlagAlloc | elfx.FlagExec,
	}}}
}

func TestCountAtRetBlock(t *testing.T) {
	im := imageOf(t, func(a *x64.Asm) {
		a.PopReg(x64.RAX) // gadget material
		a.PopReg(x64.RDI)
		a.Ret()
	})
	// Three positions reach the ret: pop/pop/ret, pop/ret, ret.
	if n := CountAt(im, 0x1000); n != 3 {
		t.Fatalf("CountAt = %d, want 3", n)
	}
}

func TestCountAtDirectJmpIsNotAGadget(t *testing.T) {
	im := imageOf(t, func(a *x64.Asm) {
		a.PopReg(x64.RAX)
		a.JmpSym("elsewhere")
	})
	if n := CountAt(im, 0x1000); n != 0 {
		t.Fatalf("CountAt = %d, want 0 (direct jmp)", n)
	}
}

func TestCountAtIndirectJmp(t *testing.T) {
	im := imageOf(t, func(a *x64.Asm) {
		a.PopReg(x64.RAX)
		a.JmpReg(x64.RAX) // JOP gadget terminal
	})
	if n := CountAt(im, 0x1000); n != 2 {
		t.Fatalf("CountAt = %d, want 2", n)
	}
}

func TestCountAtLongBlockCapped(t *testing.T) {
	im := imageOf(t, func(a *x64.Asm) {
		for k := 0; k < 30; k++ {
			a.MovRegImm32(x64.RAX, int32(k))
		}
		a.Ret()
	})
	// Only positions within maxGadgetLen of the ret count.
	if n := CountAt(im, 0x1000); n != maxGadgetLen {
		t.Fatalf("CountAt = %d, want %d", n, maxGadgetLen)
	}
}

func TestCountAtUnmappedAndGarbage(t *testing.T) {
	im := imageOf(t, func(a *x64.Asm) { a.Ret() })
	if n := CountAt(im, 0x999999); n != 0 {
		t.Fatalf("unmapped CountAt = %d", n)
	}
}

func TestCountAllOnPartStarts(t *testing.T) {
	cfg := synth.DefaultConfig("gadget-test", 12, synth.O2, synth.GCC, synth.LangC)
	cfg.NonContigRate = 0.3
	img, truth, err := synth.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	var parts []uint64
	for _, p := range truth.Parts {
		parts = append(parts, p.Addr)
	}
	if len(parts) == 0 {
		t.Fatal("no parts")
	}
	// Parts that return (splitRet) carry gadget chains; the total must
	// be positive across a 30% split corpus.
	if n := CountAll(img, parts); n <= 0 {
		t.Fatalf("CountAll = %d, want > 0", n)
	}
}
