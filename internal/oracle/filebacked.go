package oracle

import (
	"bytes"
	"fmt"
	"os"

	"fetch"
	"fetch/internal/core"
)

// CheckFileBackedEqualsBuffered asserts the file-backed image path is
// semantically invisible: for every public strategy option set,
// analyzing a binary from a file on disk (mmap-backed, lazily
// materialized sections) must produce a result codec-byte-identical to
// analyzing the same bytes buffered in memory. StripSchedule removes
// the execution trace first — wall times and the peak-memory
// accounting are exactly the fields the two backings legitimately
// disagree on — and the comparison is on EncodeResult bytes, so any
// drift the codec can express is a violation.
func CheckFileBackedEqualsBuffered(shape string, elfBytes []byte) []Violation {
	tmp, err := os.CreateTemp("", "oracle-filebacked-*.elf")
	if err != nil {
		return []Violation{{shape, core.FETCH, "file-backed", "creating temp file: " + err.Error()}}
	}
	path := tmp.Name()
	defer os.Remove(path)
	if _, err := tmp.Write(elfBytes); err != nil {
		tmp.Close()
		return []Violation{{shape, core.FETCH, "file-backed", "writing temp file: " + err.Error()}}
	}
	if err := tmp.Close(); err != nil {
		return []Violation{{shape, core.FETCH, "file-backed", "closing temp file: " + err.Error()}}
	}

	var vs []Violation
	for _, variant := range cacheVariants {
		bad := func(format string, args ...any) {
			vs = append(vs, Violation{shape, core.FETCH, "file-backed",
				fmt.Sprintf("[%s] %s", variant.name, fmt.Sprintf(format, args...))})
		}
		buffered, err := fetch.Analyze(elfBytes, variant.opts...)
		if err != nil {
			bad("buffered analyze: %v", err)
			continue
		}
		fileBacked, err := fetch.AnalyzeFile(path, variant.opts...)
		if err != nil {
			bad("file-backed analyze: %v", err)
			continue
		}
		bufBytes, err := fetch.EncodeResult(fetch.StripSchedule(buffered))
		if err != nil {
			bad("encoding buffered result: %v", err)
			continue
		}
		fileBytes, err := fetch.EncodeResult(fetch.StripSchedule(fileBacked))
		if err != nil {
			bad("encoding file-backed result: %v", err)
			continue
		}
		if !bytes.Equal(bufBytes, fileBytes) {
			bad("file-backed result encoding differs from buffered")
		}
	}
	return vs
}
