package oracle

import (
	"bytes"
	"fmt"
	"reflect"
	"sort"

	"fetch"
	"fetch/internal/core"
	"fetch/internal/elfx"
)

// shardJobsMatrix is the intra-binary worker counts the sharding
// checker sweeps against the sequential reference: an even split, an
// odd split (seed partitions of unequal size), and an oversubscribed
// one (more shards than cores).
var shardJobsMatrix = []int{2, 3, 8}

// CheckShardedEqualsSequential asserts the tentpole contract of
// intra-binary sharding: for every strategy and every worker count,
// core.AnalyzeConfig produces a Report whose analysis content is
// byte-identical to the sequential run — function sets, every
// correction list, the full disassembly state (references compared as
// per-target multisets: the sharded merge emits a canonical sorted
// order), and the deterministic pipeline counters (xref iterations,
// convergence, truncation). At the public API level, the codec
// encodings of jobs=N and jobs=1 results must be byte-identical after
// StripSchedule removes the execution trace (wall times, decode
// traffic, shard counters).
func CheckShardedEqualsSequential(shape string, img *elfx.Image, raw []byte) []Violation {
	var vs []Violation
	for _, strat := range core.AllStrategies() {
		seq, err := core.AnalyzeConfig(img, core.Config{Strategy: strat, Jobs: 1})
		if err != nil {
			vs = append(vs, Violation{shape, strat, "sharded-equivalence", "jobs=1: " + err.Error()})
			continue
		}
		for _, jobs := range shardJobsMatrix {
			par, err := core.AnalyzeConfig(img, core.Config{Strategy: strat, Jobs: jobs})
			if err != nil {
				vs = append(vs, Violation{shape, strat, "sharded-equivalence",
					fmt.Sprintf("jobs=%d: %v", jobs, err)})
				continue
			}
			for _, d := range DiffReports(shape, strat, par, seq) {
				d.Invariant = "sharded-equivalence"
				d.Detail = fmt.Sprintf("jobs=%d vs jobs=1: %s", jobs, d.Detail)
				vs = append(vs, d)
			}
			vs = append(vs, diffShardExtras(shape, strat, jobs, par, seq)...)
		}
	}

	// Public-surface check: the serialized schema (the service's wire
	// format and the cache's stored form) must not differ either.
	seqRes, err := fetch.Analyze(raw, fetch.WithJobs(1))
	if err != nil {
		return append(vs, Violation{shape, core.FETCH, "sharded-codec", "jobs=1: " + err.Error()})
	}
	seqBlob, err := fetch.EncodeResult(fetch.StripSchedule(seqRes))
	if err != nil {
		return append(vs, Violation{shape, core.FETCH, "sharded-codec", "encode jobs=1: " + err.Error()})
	}
	for _, jobs := range shardJobsMatrix {
		parRes, err := fetch.Analyze(raw, fetch.WithJobs(jobs))
		if err != nil {
			vs = append(vs, Violation{shape, core.FETCH, "sharded-codec",
				fmt.Sprintf("jobs=%d: %v", jobs, err)})
			continue
		}
		parBlob, err := fetch.EncodeResult(fetch.StripSchedule(parRes))
		if err != nil {
			vs = append(vs, Violation{shape, core.FETCH, "sharded-codec",
				fmt.Sprintf("encode jobs=%d: %v", jobs, err)})
			continue
		}
		if !bytes.Equal(parBlob, seqBlob) {
			vs = append(vs, Violation{shape, core.FETCH, "sharded-codec",
				fmt.Sprintf("schema encoding differs between jobs=%d and jobs=1 after StripSchedule", jobs)})
		}
	}
	return vs
}

// diffShardExtras covers the deterministic fields DiffReports leaves
// to the session-equivalence contract: reference multisets, harvested
// constants, and the jobs-invariant stats.
func diffShardExtras(shape string, strat core.Strategy, jobs int, par, seq *core.Report) []Violation {
	var vs []Violation
	add := func(format string, args ...any) {
		vs = append(vs, Violation{shape, strat, "sharded-equivalence",
			fmt.Sprintf("jobs=%d vs jobs=1: %s", jobs, fmt.Sprintf(format, args...))})
	}
	if par.Res != nil && seq.Res != nil {
		if !reflect.DeepEqual(sortedRefs(par.Res.Refs), sortedRefs(seq.Res.Refs)) {
			add("reference multisets differ")
		}
		if !reflect.DeepEqual(par.Res.Constants, seq.Res.Constants) {
			add("harvested constants differ")
		}
		if !reflect.DeepEqual(par.Res.TableBases, seq.Res.TableBases) {
			add("jump-table bases differ")
		}
	}
	ps, ss := par.Stats, seq.Stats
	if ps.XrefIterations != ss.XrefIterations || ps.XrefConverged != ss.XrefConverged ||
		ps.Truncated != ss.Truncated {
		add("xref trajectory differs: iters %d/%d converged %v/%v truncated %v/%v",
			ps.XrefIterations, ss.XrefIterations, ps.XrefConverged, ss.XrefConverged,
			ps.Truncated, ss.Truncated)
	}
	// FixedPointPasses is deliberately absent: probe walks count into
	// it, and parallel candidate validation probes a superset of what
	// the sequential accept loop consults — scheduling-dependent, like
	// Probes and Forks.
	if ps.Disasm.ColdStarts != ss.Disasm.ColdStarts ||
		ps.Disasm.Extends != ss.Disasm.Extends ||
		ps.Disasm.Retracts != ss.Disasm.Retracts {
		add("jobs-invariant session counters differ: cold %d/%d extends %d/%d retracts %d/%d",
			ps.Disasm.ColdStarts, ss.Disasm.ColdStarts,
			ps.Disasm.Extends, ss.Disasm.Extends,
			ps.Disasm.Retracts, ss.Disasm.Retracts)
	}
	if len(ps.Passes) != len(ss.Passes) {
		add("pass lists differ: %d vs %d", len(ps.Passes), len(ss.Passes))
	}
	return vs
}

// sortedRefs renders a reference map with each per-target list sorted,
// so the sequential walk's discovery order and the sharded merge's
// canonical order compare as multisets.
func sortedRefs(refs map[uint64][]uint64) map[uint64][]uint64 {
	out := make(map[uint64][]uint64, len(refs))
	for t, l := range refs {
		c := append([]uint64(nil), l...)
		sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
		out[t] = c
	}
	return out
}

// CheckConvergence asserts the xref fixed point genuinely converged:
// every adversarial shape must reach a Detect round that accepts
// nothing within the safety bound. A truncated analysis (the failure
// mode the historical 3-round cap hid) is a violation on any shape the
// sweep generates.
func CheckConvergence(shape string, strat core.Strategy, rep *core.Report) []Violation {
	var vs []Violation
	if !rep.Stats.XrefConverged {
		vs = append(vs, Violation{shape, strat, "xref-convergence",
			fmt.Sprintf("pointer detection did not converge (%d iterations, truncated=%v)",
				rep.Stats.XrefIterations, rep.Stats.Truncated)})
	}
	if rep.Stats.Truncated != !rep.Stats.XrefConverged {
		vs = append(vs, Violation{shape, strat, "xref-convergence",
			fmt.Sprintf("Truncated=%v inconsistent with XrefConverged=%v",
				rep.Stats.Truncated, rep.Stats.XrefConverged)})
	}
	return vs
}
