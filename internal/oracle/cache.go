package oracle

import (
	"fmt"
	"reflect"

	"fetch"
	"fetch/internal/core"
)

// cacheVariants are the public option sets the cache checker sweeps —
// the four points of the paper's strategy ladder plus the Xref-less
// tail-call combination, expressed through the public API the way a
// service caller would.
var cacheVariants = []struct {
	name string
	opts []fetch.Option
}{
	{"fetch", nil},
	{"fde-only", []fetch.Option{fetch.FDEOnly()}},
	{"no-xref", []fetch.Option{fetch.WithoutXref()}},
	{"no-tailcall", []fetch.Option{fetch.WithoutTailCall()}},
	{"rec-only", []fetch.Option{fetch.WithoutXref(), fetch.WithoutTailCall()}},
}

// CheckCachedEqualsRecomputed asserts the result cache is semantically
// invisible: for every strategy option set, analyzing a binary cold
// through a cache, re-analyzing it warm (a pure cache hit), looking it
// up by content hash, and recomputing it with no cache at all must
// produce identical results (wall times, the one legitimately
// non-deterministic field family, are stripped). The counters must
// show the warm run really was served from the cache — a checker that
// silently recomputed everything would be vacuous.
func CheckCachedEqualsRecomputed(shape string, elfBytes []byte) []Violation {
	cache, err := fetch.NewCache(fetch.CacheConfig{})
	if err != nil {
		return []Violation{{shape, core.FETCH, "cache", "NewCache: " + err.Error()}}
	}
	var vs []Violation
	for _, variant := range cacheVariants {
		bad := func(format string, args ...any) {
			vs = append(vs, Violation{shape, core.FETCH, "cache",
				fmt.Sprintf("[%s] %s", variant.name, fmt.Sprintf(format, args...))})
		}
		withCache := append(append([]fetch.Option(nil), variant.opts...), fetch.WithCache(cache))
		cold, err := fetch.Analyze(elfBytes, withCache...)
		if err != nil {
			bad("cold analyze: %v", err)
			continue
		}
		warm, err := fetch.Analyze(elfBytes, withCache...)
		if err != nil {
			bad("warm analyze: %v", err)
			continue
		}
		recomputed, err := fetch.Analyze(elfBytes, variant.opts...)
		if err != nil {
			bad("uncached analyze: %v", err)
			continue
		}
		if !reflect.DeepEqual(fetch.StripSchedule(warm), fetch.StripSchedule(recomputed)) {
			bad("cached result differs from recomputed result")
		}
		if !reflect.DeepEqual(fetch.StripSchedule(warm), fetch.StripSchedule(cold)) {
			bad("cached result differs from the cold run that stored it")
		}
		byHash, ok := cache.Get(fetch.HashBinary(elfBytes), variant.opts...)
		if !ok {
			bad("by-hash lookup missed after analysis")
		} else if !reflect.DeepEqual(fetch.StripSchedule(byHash), fetch.StripSchedule(recomputed)) {
			bad("by-hash result differs from recomputed result")
		}
	}
	n := int64(len(cacheVariants))
	st := cache.Stats()
	// Per variant: one cold miss+store, one warm hit, one by-hash hit.
	// The raw store counters also carry the delta tier's traffic (each
	// cold miss probes for a manifest, each cold store writes one plus
	// the function ranges), so result-tier traffic is recovered by the
	// subtractions CacheStats documents.
	resMisses := st.Misses - st.ManifestMisses - st.FnTierMisses
	resHits := st.Hits - st.ManifestHits - st.FnTierHits
	resPuts := st.Puts - st.DeltaPuts
	if resMisses != n || resPuts != n || resHits != 2*n {
		vs = append(vs, Violation{shape, core.FETCH, "cache",
			fmt.Sprintf("counters show the cache was not actually exercised: %+v", st)})
	}
	return vs
}
