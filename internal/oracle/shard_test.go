package oracle

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"fetch"
	"fetch/internal/core"
	"fetch/internal/elfx"
	"fetch/internal/synth"
)

// TestShardMatrixDeterminism is the satellite determinism matrix: every
// adversarial profile × the full strategy matrix × jobs ∈ {1,2,4,8}
// must produce reports DeepEqual to the sequential run (references
// compared as multisets), with no goroutine leaked by the worker
// pools. Run under -race in CI, this is the widest net over the
// sharded walker, the claim table, the merge guards, and the parallel
// inference and validation stages.
func TestShardMatrixDeterminism(t *testing.T) {
	before := runtime.NumGoroutine()
	jobsMatrix := []int{1, 2, 4, 8}
	for _, prof := range synth.ProfileNames() {
		cfg, err := synth.AdversarialProfile(prof, 31000)
		if err != nil {
			t.Fatal(err)
		}
		img, _, err := synth.Generate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", prof, err)
		}
		stripped := img.Strip()
		for _, strat := range core.AllStrategies() {
			var ref *core.Report
			for _, jobs := range jobsMatrix {
				rep, err := core.AnalyzeConfig(stripped, core.Config{Strategy: strat, Jobs: jobs})
				if err != nil {
					t.Fatalf("%s jobs=%d: %v", prof, jobs, err)
				}
				if jobs == 1 {
					ref = rep
					continue
				}
				name := fmt.Sprintf("%s [rec=%v xref=%v tail=%v] jobs=%d",
					prof, strat.Recursive, strat.Xref, strat.TailCall, jobs)
				if vs := DiffReports(name, strat, rep, ref); len(vs) > 0 {
					for _, v := range vs {
						t.Error(v)
					}
				}
				if !reflect.DeepEqual(rep.Funcs, ref.Funcs) {
					t.Errorf("%s: function sets differ", name)
				}
				if rep.Res != nil && ref.Res != nil &&
					!reflect.DeepEqual(sortedRefs(rep.Res.Refs), sortedRefs(ref.Res.Refs)) {
					t.Errorf("%s: reference multisets differ", name)
				}
			}
		}
	}
	// The pools join before returning; give the runtime a moment to
	// retire worker goroutines, then require the count back near the
	// baseline.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after the matrix", before, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestShardedBatchIntraJobs covers the public batch surface: IntraJobs
// must not change any result, including under the codec encoding the
// cache and service persist.
func TestShardedBatchIntraJobs(t *testing.T) {
	cfg, err := synth.AdversarialProfile("jump-tables", 8700)
	if err != nil {
		t.Fatal(err)
	}
	img, _, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := elfx.WriteELF(img.Strip())
	if err != nil {
		t.Fatal(err)
	}
	inputs := []fetch.Input{{Name: "a", Data: raw}, {Name: "b", Data: raw}}
	seq := fetch.AnalyzeBatch(inputs, fetch.BatchOptions{Jobs: 1})
	par := fetch.AnalyzeBatch(inputs, fetch.BatchOptions{Jobs: 2, IntraJobs: 4})
	for i := range seq {
		if seq[i].Err != nil || par[i].Err != nil {
			t.Fatalf("item %d: errs %v / %v", i, seq[i].Err, par[i].Err)
		}
		a, err := fetch.EncodeResult(fetch.StripSchedule(seq[i].Result))
		if err != nil {
			t.Fatal(err)
		}
		b, err := fetch.EncodeResult(fetch.StripSchedule(par[i].Result))
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("item %d: IntraJobs changed the encoded result", i)
		}
	}
}
