package oracle

import (
	"fmt"

	"fetch"
	"fetch/internal/core"
	"fetch/internal/elfx"
	"fetch/internal/synth"
)

// deltaVariants pairs each public strategy option set with its resolved
// core.Strategy, so the checker can predict which version pairs must be
// delta-served and which must soundly fall back.
var deltaVariants = []struct {
	name  string
	strat core.Strategy
	opts  []fetch.Option
}{
	{"fetch", core.FETCH, nil},
	{"fde-only", core.Strategy{}, []fetch.Option{fetch.FDEOnly()}},
	{"no-xref", core.Strategy{Recursive: true, TailCall: true}, []fetch.Option{fetch.WithoutXref()}},
	{"no-tailcall", core.Strategy{Recursive: true, Xref: true}, []fetch.Option{fetch.WithoutTailCall()}},
	{"rec-only", core.Strategy{Recursive: true}, []fetch.Option{fetch.WithoutXref(), fetch.WithoutTailCall()}},
}

// deltaVersion is one "next build" of a base config.
type deltaVersion struct {
	name string
	// mutate edits the base config into the next build.
	mutate func(*synth.Config)
	// wantDelta: the version must be served by delta replay (the
	// perturbation is analysis-equivalent and layout-preserving).
	// wantFallback: the version must NOT be delta-served under a
	// recursive strategy (the change alters analysis facts or layout),
	// proving the verifier detects it. Versions with neither set may
	// land either way (e.g. layout shifts usually miss the manifest).
	wantDelta, wantFallback bool
}

// deltaVersions are the recompile shapes the checker sweeps: an
// analysis-equivalent in-place constant change (must be delta-served),
// a fact-changing call retarget (must fall back under any recursive
// strategy), and add/remove-function builds whose shifted layout must
// never be delta-served under a recursive strategy.
var deltaVersions = []deltaVersion{
	{name: "inplace", wantDelta: true, mutate: func(c *synth.Config) {
		c.PerturbK = 2
		c.PerturbSeed = 0xD17A
	}},
	{name: "retarget", wantFallback: true, mutate: func(c *synth.Config) {
		c.PerturbK = 1
		c.PerturbSeed = 0xD17B
		c.PerturbRetarget = true
	}},
	{name: "add-fn", wantFallback: true, mutate: func(c *synth.Config) {
		c.NumFuncs++
	}},
	{name: "remove-fn", wantFallback: true, mutate: func(c *synth.Config) {
		c.NumFuncs--
	}},
}

// CheckDeltaEqualsCold is the hard contract of the function-granular
// delta tier: for every strategy and every recompile shape, analyzing
// the next build through a cache that holds the previous build's
// recorded trace must produce a result codec-byte-identical (after
// StripSchedule) to a cold analysis of that build — whether the delta
// path served it or the verifier fell back. On top of equality it
// checks engagement: the analysis-equivalent in-place perturbation
// must actually be delta-served (a checker that always fell back would
// hold equality vacuously), and fact-changing or layout-shifting
// builds must never be delta-served under a recursive strategy.
func CheckDeltaEqualsCold(cfg synth.Config) []Violation {
	var vs []Violation
	baseRaw, ok := genVersion(cfg, nil, &vs)
	if !ok {
		return vs
	}
	for _, variant := range deltaVariants {
		cache, err := fetch.NewCache(fetch.CacheConfig{})
		if err != nil {
			vs = append(vs, Violation{cfg.Name, variant.strat, "delta", "NewCache: " + err.Error()})
			continue
		}
		bad := func(version, format string, args ...any) {
			vs = append(vs, Violation{cfg.Name, variant.strat, "delta",
				fmt.Sprintf("[%s/%s] %s", variant.name, version, fmt.Sprintf(format, args...))})
		}
		// Previous build: a recorded cold run populates the manifest
		// and function tiers. Shapes whose FDE geometry defeats roster
		// decomposition (overlapping FDEs) record nothing; for those the
		// delta tier is by design never engaged, so only the equality
		// and never-wrongly-served contracts apply.
		if _, _, err := cache.Analyze(baseRaw, variant.opts...); err != nil {
			bad("base", "analyze: %v", err)
			continue
		}
		decomposable := cache.Stats().DeltaPuts > 0
		for _, ver := range deltaVersions {
			vraw, ok := genVersion(cfg, ver.mutate, &vs)
			if !ok {
				continue
			}
			through, _, err := cache.Analyze(vraw, variant.opts...)
			if err != nil {
				bad(ver.name, "cached analyze: %v", err)
				continue
			}
			cold, err := fetch.Analyze(vraw, variant.opts...)
			if err != nil {
				bad(ver.name, "cold analyze: %v", err)
				continue
			}
			a, errA := fetch.EncodeResult(fetch.StripSchedule(through))
			b, errB := fetch.EncodeResult(fetch.StripSchedule(cold))
			if errA != nil || errB != nil {
				bad(ver.name, "encode: %v %v", errA, errB)
				continue
			}
			if string(a) != string(b) {
				bad(ver.name, "delta-path result differs from cold analysis (deltaPath=%v reason=%q)",
					through.Stats.DeltaPath, through.Stats.DeltaFallbackReason)
			}
			if ver.wantDelta && decomposable && !through.Stats.DeltaPath {
				bad(ver.name, "analysis-equivalent build was not delta-served (reason=%q)",
					through.Stats.DeltaFallbackReason)
			}
			if ver.wantFallback && variant.strat.Recursive && through.Stats.DeltaPath {
				bad(ver.name, "fact-changing build was delta-served (%d/%d dirty ranges)",
					through.Stats.DeltaDirtyRanges, through.Stats.DeltaTotalRanges)
			}
		}
	}
	return vs
}

// genVersion generates one build of the config (mutated when mutate is
// non-nil) and returns its stripped ELF bytes.
func genVersion(cfg synth.Config, mutate func(*synth.Config), vs *[]Violation) ([]byte, bool) {
	c := cfg
	if mutate != nil {
		mutate(&c)
	}
	img, _, err := synth.Generate(c)
	if err != nil {
		*vs = append(*vs, Violation{cfg.Name, core.FETCH, "delta", "generate: " + err.Error()})
		return nil, false
	}
	raw, err := elfx.WriteELF(img.Strip())
	if err != nil {
		*vs = append(*vs, Violation{cfg.Name, core.FETCH, "delta", "write: " + err.Error()})
		return nil, false
	}
	return raw, true
}
