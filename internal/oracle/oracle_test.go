package oracle

import (
	"testing"

	"fetch/internal/core"
	"fetch/internal/groundtruth"
	"fetch/internal/synth"
)

// TestSweepAdversarialProfiles is the acceptance gate of the
// differential-oracle subsystem: the full Strategy matrix crossed with
// every adversarial shape profile must produce zero invariant
// violations — session ≡ scratch, jobs=1 ≡ jobs=N, lattice
// monotonicity, report accounting, and metrics consistency all hold on
// PIE, split-text, ICF, zero-pad, CFI-stress, and every other layout
// the v2 generator can emit.
func TestSweepAdversarialProfiles(t *testing.T) {
	for _, cfg := range synth.AdversarialCorpus(77000) {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			t.Parallel()
			vs, err := CheckShape(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range vs {
				t.Error(v)
			}
		})
	}
}

// TestSweepAdversarialProfilesA64 runs the identical profile × strategy
// × invariant matrix over the aarch64 backend: every shape the
// generator can emit for x86-64 it also emits in aarch64 idiom, and
// every oracle — session ≡ scratch, jobs determinism, lattice
// monotonicity, delta ≡ cold, file-backed ≡ buffered — must hold
// unchanged on the second ISA.
func TestSweepAdversarialProfilesA64(t *testing.T) {
	for _, cfg := range synth.AdversarialCorpusArch(77100, "a64") {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			t.Parallel()
			vs, err := CheckShape(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range vs {
				t.Error(v)
			}
		})
	}
}

// TestSweepBenignMix keeps the benign corpus under the same oracle:
// both compilers and a second optimization level, via the Sweep
// aggregator.
func TestSweepBenignMix(t *testing.T) {
	var cfgs []synth.Config
	seed := int64(78000)
	for _, comp := range []synth.Compiler{synth.GCC, synth.Clang} {
		for _, opt := range []synth.Opt{synth.O2, synth.Os} {
			seed++
			cfg := synth.DefaultConfig("benign", seed, opt, comp, synth.LangC)
			cfg.NumFuncs = 48
			cfgs = append(cfgs, cfg)
		}
	}
	vs, err := Sweep(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vs {
		t.Error(v)
	}
}

// TestCheckersCatchInjectedFaults guards against vacuous checkers:
// deliberately corrupted inputs must produce violations.
func TestCheckersCatchInjectedFaults(t *testing.T) {
	cfg := synth.DefaultConfig("inject", 79000, synth.O2, synth.GCC, synth.LangC)
	cfg.NumFuncs = 32
	img, truth, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stripped := img.Strip()
	rep, err := core.Analyze(stripped, core.FETCH)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("report-diff", func(t *testing.T) {
		bad, err := core.Analyze(stripped, core.FETCH)
		if err != nil {
			t.Fatal(err)
		}
		bad.Funcs[0xDEAD0001] = true
		if vs := DiffReports("inject", core.FETCH, bad, rep); len(vs) == 0 {
			t.Error("DiffReports missed an extra start")
		}
	})
	t.Run("accounting", func(t *testing.T) {
		bad, err := core.Analyze(stripped, core.FETCH)
		if err != nil {
			t.Fatal(err)
		}
		// Drop an FDE start without recording a merge/removal.
		delete(bad.Funcs, bad.FDEStarts[0])
		if vs := CheckAccounting("inject", core.FETCH, bad); len(vs) == 0 {
			t.Error("CheckAccounting missed a dropped FDE start")
		}
	})
	t.Run("metrics", func(t *testing.T) {
		// A truth claiming a function where none exists must show up as
		// a missed correct-FDE start... while a fake merged true start
		// trips the merge invariant.
		bad, err := core.Analyze(stripped, core.FETCH)
		if err != nil {
			t.Fatal(err)
		}
		bad.Merged[truth.Funcs[0].Addr] = truth.Funcs[1].Addr
		if vs := CheckMetrics("inject", core.FETCH, bad, truth); len(vs) == 0 {
			t.Error("CheckMetrics missed a merged true start")
		}
		fake := &groundtruth.Truth{Funcs: append([]groundtruth.Func(nil), truth.Funcs...)}
		fake.Funcs = append(fake.Funcs, groundtruth.Func{
			Name: "ghost", Addr: 0xDEAD0002, HasFDE: true, Reach: groundtruth.ReachCall,
		})
		if vs := CheckMetrics("inject", core.FETCH, rep, fake); len(vs) == 0 {
			t.Error("CheckMetrics missed a ghost function")
		}
	})
	t.Run("lattice-self", func(t *testing.T) {
		// The real pipeline passes the lattice walk on this binary.
		if vs := CheckLattice("inject", stripped); len(vs) != 0 {
			for _, v := range vs {
				t.Error(v)
			}
		}
	})
}
