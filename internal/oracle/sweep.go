package oracle

import (
	"fmt"
	"reflect"

	"fetch"
	"fetch/internal/core"
	"fetch/internal/elfx"
	"fetch/internal/synth"
)

// CheckBatchDeterminism analyzes copies of one binary through the
// public batch API at different worker counts and diffs the results:
// parallelism must change wall-clock time only, never output. Wall
// times are the single legitimately non-deterministic field and are
// zeroed before comparison.
func CheckBatchDeterminism(shape string, elfBytes []byte, copies, jobs int) []Violation {
	inputs := make([]fetch.Input, copies)
	for i := range inputs {
		inputs[i] = fetch.Input{Name: fmt.Sprintf("%s#%d", shape, i), Data: elfBytes}
	}
	seq := fetch.AnalyzeBatch(inputs, fetch.BatchOptions{Jobs: 1})
	par := fetch.AnalyzeBatch(inputs, fetch.BatchOptions{Jobs: jobs})
	var vs []Violation
	for i := range seq {
		a, b := seq[i], par[i]
		if (a.Err != nil) != (b.Err != nil) {
			vs = append(vs, Violation{shape, core.FETCH, "jobs-determinism",
				fmt.Sprintf("item %d: err %v (jobs=1) vs %v (jobs=%d)", i, a.Err, b.Err, jobs)})
			continue
		}
		if a.Err != nil {
			continue
		}
		ra, rb := fetch.StripSchedule(a.Result), fetch.StripSchedule(b.Result)
		if !reflect.DeepEqual(ra, rb) {
			vs = append(vs, Violation{shape, core.FETCH, "jobs-determinism",
				fmt.Sprintf("item %d: results differ between jobs=1 and jobs=%d", i, jobs)})
		}
	}
	return vs
}

// CheckShape runs every checker against one synthesized shape: the
// full Strategy matrix of session-equivalence, accounting, and metrics
// checks, the lattice walk, and the batch-determinism diff.
func CheckShape(cfg synth.Config) ([]Violation, error) {
	img, truth, err := synth.Generate(cfg)
	if err != nil {
		return nil, fmt.Errorf("oracle: generating %s: %w", cfg.Name, err)
	}
	stripped := img.Strip()
	var vs []Violation
	for _, strat := range core.AllStrategies() {
		rep, err := core.Analyze(stripped, strat)
		if err != nil {
			vs = append(vs, Violation{cfg.Name, strat, "analyze", err.Error()})
			continue
		}
		ref, err := core.ScratchAnalyze(stripped, strat)
		if err != nil {
			vs = append(vs, Violation{cfg.Name, strat, "session-equivalence", "ScratchAnalyze: " + err.Error()})
			continue
		}
		vs = append(vs, DiffReports(cfg.Name, strat, rep, ref)...)
		vs = append(vs, CheckAccounting(cfg.Name, strat, rep)...)
		vs = append(vs, CheckMetrics(cfg.Name, strat, rep, truth)...)
		vs = append(vs, CheckConvergence(cfg.Name, strat, rep)...)
	}
	vs = append(vs, CheckLattice(cfg.Name, stripped)...)
	raw, err := elfx.WriteELF(stripped)
	if err != nil {
		return nil, fmt.Errorf("oracle: writing %s: %w", cfg.Name, err)
	}
	vs = append(vs, CheckShardedEqualsSequential(cfg.Name, stripped, raw)...)
	vs = append(vs, CheckBatchDeterminism(cfg.Name, raw, 4, 8)...)
	vs = append(vs, CheckCachedEqualsRecomputed(cfg.Name, raw)...)
	vs = append(vs, CheckDeltaEqualsCold(cfg)...)
	vs = append(vs, CheckFileBackedEqualsBuffered(cfg.Name, raw)...)
	return vs, nil
}

// Sweep runs CheckShape over a set of shapes and aggregates every
// violation. A nil/empty result means all invariants held everywhere.
func Sweep(cfgs []synth.Config) ([]Violation, error) {
	var vs []Violation
	for _, cfg := range cfgs {
		shapeVs, err := CheckShape(cfg)
		if err != nil {
			return vs, err
		}
		vs = append(vs, shapeVs...)
	}
	return vs, nil
}
