package oracle

import (
	"fmt"
	"reflect"
	"sort"

	"fetch/internal/core"
	"fetch/internal/elfx"
	"fetch/internal/groundtruth"
	"fetch/internal/metrics"
)

// Violation is one broken invariant, with enough context to reproduce:
// the shape (profile/config name), the strategy, and the invariant.
type Violation struct {
	Shape     string
	Strategy  core.Strategy
	Invariant string
	Detail    string
}

// String renders the violation as a one-line reproduction recipe:
// shape, strategy flags, invariant, detail.
func (v Violation) String() string {
	return fmt.Sprintf("%s [rec=%v xref=%v tail=%v] %s: %s",
		v.Shape, v.Strategy.Recursive, v.Strategy.Xref, v.Strategy.TailCall,
		v.Invariant, v.Detail)
}

// missing returns up to 8 elements of a that are absent from b, sorted.
func missing(a, b map[uint64]bool) []uint64 {
	var out []uint64
	for x := range a {
		if !b[x] {
			out = append(out, x)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	if len(out) > 8 {
		out = out[:8]
	}
	return out
}

// DiffReports compares every deterministic field of two Reports — the
// session ≡ scratch equivalence check, with the caller supplying both
// sides (CheckShape pairs core.Analyze against core.ScratchAnalyze).
func DiffReports(shape string, strat core.Strategy, got, want *core.Report) []Violation {
	var vs []Violation
	add := func(field, detail string) {
		vs = append(vs, Violation{shape, strat, "session-equivalence",
			fmt.Sprintf("%s: %s", field, detail)})
	}
	if !reflect.DeepEqual(got.Funcs, want.Funcs) {
		add("Funcs", fmt.Sprintf("%d vs %d starts; session-only %#x, scratch-only %#x",
			len(got.Funcs), len(want.Funcs),
			missing(got.Funcs, want.Funcs), missing(want.Funcs, got.Funcs)))
	}
	if !reflect.DeepEqual(got.FDEStarts, want.FDEStarts) {
		add("FDEStarts", fmt.Sprintf("%d vs %d", len(got.FDEStarts), len(want.FDEStarts)))
	}
	if !reflect.DeepEqual(got.XrefNew, want.XrefNew) {
		add("XrefNew", fmt.Sprintf("%#x vs %#x", got.XrefNew, want.XrefNew))
	}
	if !reflect.DeepEqual(got.TailNew, want.TailNew) {
		add("TailNew", fmt.Sprintf("%#x vs %#x", got.TailNew, want.TailNew))
	}
	if !reflect.DeepEqual(got.Merged, want.Merged) {
		add("Merged", fmt.Sprintf("%d vs %d entries", len(got.Merged), len(want.Merged)))
	}
	if !reflect.DeepEqual(got.CFIErrRemoved, want.CFIErrRemoved) {
		add("CFIErrRemoved", fmt.Sprintf("%#x vs %#x", got.CFIErrRemoved, want.CFIErrRemoved))
	}
	if got.SkippedIncomplete != want.SkippedIncomplete {
		add("SkippedIncomplete", fmt.Sprintf("%d vs %d", got.SkippedIncomplete, want.SkippedIncomplete))
	}
	if (got.Res == nil) != (want.Res == nil) {
		add("Res", "nil-ness differs")
	} else if got.Res != nil {
		if !reflect.DeepEqual(got.Res.Insts, want.Res.Insts) {
			add("Res.Insts", fmt.Sprintf("%d vs %d decoded", len(got.Res.Insts), len(want.Res.Insts)))
		}
		if !reflect.DeepEqual(got.Res.Funcs, want.Res.Funcs) {
			add("Res.Funcs", "disassembly start sets differ")
		}
		if !reflect.DeepEqual(got.Res.JTTargets, want.Res.JTTargets) {
			add("Res.JTTargets", "jump-table resolutions differ")
		}
		if !reflect.DeepEqual(got.Res.NonRet, want.Res.NonRet) {
			add("Res.NonRet", "non-return sets differ")
		}
		if !reflect.DeepEqual(got.Res.CondNonRet, want.Res.CondNonRet) {
			add("Res.CondNonRet", "conditional non-return sets differ")
		}
	}
	return vs
}

// CheckLattice asserts monotonicity along the paper's cumulative
// strategy ladder: each stage only adds detected starts, except the
// tail-call stage, whose removals must be exactly the starts it
// reports in Merged and CFIErrRemoved.
func CheckLattice(shape string, img *elfx.Image) []Violation {
	ladder := core.Lattice()
	reps := make([]*core.Report, len(ladder))
	for i, strat := range ladder {
		rep, err := core.Analyze(img, strat)
		if err != nil {
			return []Violation{{shape, strat, "lattice", "Analyze: " + err.Error()}}
		}
		reps[i] = rep
	}
	var vs []Violation
	names := []string{"FDE", "FDE+Rec", "FDE+Rec+Xref", "FETCH"}
	for i := 1; i < len(reps); i++ {
		prev, next := reps[i-1], reps[i]
		removedOK := map[uint64]bool{}
		if i == len(reps)-1 { // the tail-call step may remove, but only accountably
			for part := range next.Merged {
				removedOK[part] = true
			}
			for _, a := range next.CFIErrRemoved {
				removedOK[a] = true
			}
		}
		for a := range prev.Funcs {
			if !next.Funcs[a] && !removedOK[a] {
				vs = append(vs, Violation{shape, ladder[i], "lattice",
					fmt.Sprintf("start %#x present in %s but unaccountably absent in %s",
						a, names[i-1], names[i])})
			}
		}
		if !reflect.DeepEqual(prev.FDEStarts, next.FDEStarts) {
			vs = append(vs, Violation{shape, ladder[i], "lattice",
				fmt.Sprintf("FDEStarts differ between %s and %s", names[i-1], names[i])})
		}
	}
	return vs
}

// CheckAccounting asserts the internal consistency of one report.
func CheckAccounting(shape string, strat core.Strategy, rep *core.Report) []Violation {
	var vs []Violation
	add := func(format string, args ...any) {
		vs = append(vs, Violation{shape, strat, "accounting", fmt.Sprintf(format, args...)})
	}
	removed := map[uint64]bool{}
	for part := range rep.Merged {
		removed[part] = true
	}
	for _, a := range rep.CFIErrRemoved {
		removed[a] = true
	}
	// FDE floor: every FDE start survives unless explicitly removed.
	for _, a := range rep.FDEStarts {
		if !rep.Funcs[a] && !removed[a] {
			add("FDE start %#x dropped without being merged or removed", a)
		}
	}
	// Removed starts stay removed.
	for a := range removed {
		if rep.Funcs[a] {
			add("removed start %#x resurrected in Funcs", a)
		}
	}
	// Additions are accounted: still present, or removed later with a
	// record.
	for _, a := range append(append([]uint64(nil), rep.XrefNew...), rep.TailNew...) {
		if !rep.Funcs[a] && !removed[a] {
			add("added start %#x neither in Funcs nor accounted as removed", a)
		}
	}
	// FDEStarts are sorted and unique.
	for i := 1; i < len(rep.FDEStarts); i++ {
		if rep.FDEStarts[i-1] >= rep.FDEStarts[i] {
			add("FDEStarts not strictly increasing at index %d", i)
			break
		}
	}
	return vs
}

// CheckMetrics scores a report against the ground truth and asserts
// the consistency bounds that hold for every synthesized shape:
// the score balances, functions with correct FDEs are never false
// negatives (and never merged away), and — whenever recursive
// disassembly ran — neither the entry point nor any directly-called
// function is missed.
func CheckMetrics(shape string, strat core.Strategy, rep *core.Report, truth *groundtruth.Truth) []Violation {
	var vs []Violation
	add := func(format string, args ...any) {
		vs = append(vs, Violation{shape, strat, "metrics", fmt.Sprintf(format, args...)})
	}
	ev := metrics.Evaluate(rep.Funcs, truth)
	if ev.TP+ev.FN != len(truth.Funcs) {
		add("TP %d + FN %d != %d true functions", ev.TP, ev.FN, len(truth.Funcs))
	}
	if ev.TP+ev.FP != len(rep.Funcs) {
		add("TP %d + FP %d != %d detected starts", ev.TP, ev.FP, len(rep.Funcs))
	}
	for _, a := range ev.FPAddrs {
		if truth.IsStart(a) {
			add("FP %#x is actually a true start", a)
		}
	}
	// skewed marks true entries whose only FDE is the early hand-written
	// error: their FDE does not point at them. The skew is one garbage
	// instruction — one byte on x86-64, one word on aarch64 — so the
	// skewed entry is the true start just past the erroneous PC Begin.
	skewed := map[uint64]bool{}
	for _, a := range truth.CFIErrorAddrs {
		for d := uint64(1); d <= 8; d++ {
			if truth.IsStart(a + d) {
				skewed[a+d] = true
				break
			}
		}
	}
	merged := map[uint64]bool{}
	for part := range rep.Merged {
		merged[part] = true
	}
	removedErr := map[uint64]bool{}
	for _, a := range rep.CFIErrRemoved {
		removedErr[a] = true
	}
	for _, a := range ev.FNAddrs {
		fn, ok := truth.FuncAt(a)
		if !ok {
			add("FN %#x is not a true start", a)
			continue
		}
		if fn.HasFDE && !skewed[a] && !merged[a] {
			add("func %s at %#x has a correct FDE but was missed", fn.Name, a)
		}
		if strat.Recursive {
			switch fn.Reach {
			case groundtruth.ReachEntry, groundtruth.ReachCall:
				add("harmful FN under recursive strategy: %s at %#x (%v)", fn.Name, a, fn.Reach)
			}
		}
	}
	// True starts may be merged away only when they are tail-only
	// reachable: a tail-only FDE function has no reference besides the
	// single tail-call jump, so Algorithm 1 cannot tell it from a
	// non-contiguous part — the §V-C harmless-miss class. Merging a
	// start with any other reachability would be a real bug, as would
	// the convention sweep removing any true start.
	for _, fn := range truth.Funcs {
		if merged[fn.Addr] && fn.Reach != groundtruth.ReachTailOnly {
			add("true start %s at %#x (%v) merged away", fn.Name, fn.Addr, fn.Reach)
		}
		if removedErr[fn.Addr] {
			add("true start %s at %#x removed as a bogus FDE", fn.Name, fn.Addr)
		}
	}
	return vs
}
