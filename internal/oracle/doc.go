// Package oracle encodes the repository's cross-cutting correctness
// contracts as reusable differential checkers. Each checker takes an
// analysis artifact (a report, a binary, a batch) and returns the
// Violations it found; a correct system returns none, and every
// violation carries enough context — shape name, strategy, invariant,
// detail — to reproduce the failure in isolation.
//
// # The contracts
//
//   - session ≡ scratch (DiffReports): the incremental session
//     pipeline must be byte-identical to the from-scratch reference
//     (core.ScratchAnalyze) on every binary under every Strategy;
//   - jobs determinism (CheckBatchDeterminism): batch analysis output
//     is identical at any worker count — parallelism changes
//     wall-clock time, never results;
//   - cache transparency (CheckCachedEqualsRecomputed): a result
//     served from the content-addressed cache equals a recomputation,
//     whether reached cold, warm, or by content hash — wall times are
//     the single exempt field family;
//   - strategy-lattice monotonicity (CheckLattice): on the paper's
//     cumulative ladder FDE → +Rec → +Xref → +Tcall each stage only
//     adds starts, except the tail-call stage whose removals must be
//     fully accounted by Merged and CFIErrRemoved;
//   - report accounting (CheckAccounting): a single report's fields
//     must be internally consistent (FDE floor, removed starts never
//     resurrected, sorted unique FDE starts);
//   - metrics/ground-truth consistency (CheckMetrics): scores balance
//     against the truth, functions with correct FDEs are never lost,
//     and a true start may be merged away only when it is tail-only
//     reachable — the §V-C ambiguity Algorithm 1 cannot resolve.
//
// # The sweep
//
// The sweep driver (sweep.go) runs every checker over the full
// Strategy matrix × the adversarial shape matrix from synth's
// generator v2 (synth.AdversarialCorpus), turning "the invariants
// hold on today's corpus" into "the invariants hold on every layout
// we can synthesize". The oracle test suite is the subsystem's
// acceptance gate: zero violations across the whole product.
package oracle
