// Package pool provides a bounded worker pool with deterministic,
// input-ordered result collection.
//
// Every batch-shaped layer of the reproduction (corpus generation, the
// table/figure drivers, the public batch API) fans its per-item work
// out through Map. The contract that makes that safe for a paper
// reproduction: parallelism changes wall-clock time only, never
// results. Each item writes to its own pre-allocated slot, results
// come back in input order, errors are captured per item, and the
// first error reported by Values is the first in input order — not the
// first in completion order — so a parallel run is indistinguishable
// from a sequential one.
package pool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Result carries one item's outcome.
type Result[R any] struct {
	Value R
	Err   error
}

// Jobs normalizes a requested worker count: anything non-positive
// means one worker per available CPU.
func Jobs(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Map applies fn to every item using at most jobs concurrent workers
// and returns one Result per item, in input order.
//
// A nil ctx means context.Background. Once ctx is cancelled no new
// item is started: every unstarted item's Result carries ctx.Err(),
// while items already in flight run to completion. fn receives the
// item's index alongside the item so callers can correlate without
// closing over shared state.
func Map[T, R any](ctx context.Context, jobs int, items []T, fn func(ctx context.Context, i int, item T) (R, error)) []Result[R] {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]Result[R], len(items))
	if len(items) == 0 {
		return results
	}
	if jobs = Jobs(jobs); jobs > len(items) {
		jobs = len(items)
	}
	if jobs == 1 {
		for i := range items {
			if err := ctx.Err(); err != nil {
				results[i].Err = err
				continue
			}
			v, err := fn(ctx, i, items[i])
			results[i] = Result[R]{Value: v, Err: err}
		}
		return results
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(jobs)
	for w := 0; w < jobs; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				if err := ctx.Err(); err != nil {
					results[i].Err = err
					continue
				}
				v, err := fn(ctx, i, items[i])
				results[i] = Result[R]{Value: v, Err: err}
			}
		}()
	}
	wg.Wait()
	return results
}

// Values unwraps a Result slice into its values, returning the first
// error in input order (deterministic regardless of which item failed
// first in wall-clock time). The values slice is complete even on
// error; failed items hold their zero value.
func Values[R any](rs []Result[R]) ([]R, error) {
	vals := make([]R, len(rs))
	var first error
	for i, r := range rs {
		vals[i] = r.Value
		if r.Err != nil && first == nil {
			first = r.Err
		}
	}
	return vals, first
}
