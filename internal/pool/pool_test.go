package pool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrdering(t *testing.T) {
	for _, jobs := range []int{1, 2, 8, 100} {
		items := make([]int, 57)
		for i := range items {
			items[i] = i
		}
		rs := Map(nil, jobs, items, func(_ context.Context, i, item int) (int, error) {
			return item * 2, nil
		})
		if len(rs) != len(items) {
			t.Fatalf("jobs=%d: got %d results, want %d", jobs, len(rs), len(items))
		}
		for i, r := range rs {
			if r.Err != nil {
				t.Fatalf("jobs=%d item %d: %v", jobs, i, r.Err)
			}
			if r.Value != i*2 {
				t.Errorf("jobs=%d: results[%d] = %d, want %d (order broken)", jobs, i, r.Value, i*2)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	rs := Map(nil, 4, nil, func(_ context.Context, i int, item struct{}) (int, error) {
		t.Error("fn called on empty input")
		return 0, nil
	})
	if len(rs) != 0 {
		t.Errorf("got %d results for empty input", len(rs))
	}
}

func TestMapPerItemErrors(t *testing.T) {
	boom := errors.New("boom")
	items := []int{0, 1, 2, 3, 4}
	rs := Map(nil, 3, items, func(_ context.Context, i, item int) (int, error) {
		if item == 1 || item == 3 {
			return 0, fmt.Errorf("item %d: %w", item, boom)
		}
		return item + 10, nil
	})
	for i, r := range rs {
		wantErr := i == 1 || i == 3
		if (r.Err != nil) != wantErr {
			t.Errorf("item %d: err = %v, want error: %v", i, r.Err, wantErr)
		}
		if !wantErr && r.Value != i+10 {
			t.Errorf("item %d: value = %d, want %d", i, r.Value, i+10)
		}
		if wantErr && !errors.Is(r.Err, boom) {
			t.Errorf("item %d: error %v lost its cause", i, r.Err)
		}
	}
}

func TestMapCancellation(t *testing.T) {
	// A pre-cancelled context must mark every item with the context
	// error without invoking fn.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int32
	rs := Map(ctx, 4, make([]int, 20), func(context.Context, int, int) (int, error) {
		calls.Add(1)
		return 0, nil
	})
	if n := calls.Load(); n != 0 {
		t.Errorf("fn ran %d times after cancellation", n)
	}
	for i, r := range rs {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("item %d: err = %v, want context.Canceled", i, r.Err)
		}
	}
}

func TestMapMidRunCancellation(t *testing.T) {
	// Sequential path: cancelling at item 2 stops items 3+.
	ctx, cancel := context.WithCancel(context.Background())
	rs := Map(ctx, 1, make([]int, 10), func(_ context.Context, i, _ int) (int, error) {
		if i == 2 {
			cancel()
		}
		return i, nil
	})
	for i, r := range rs {
		if i <= 2 && (r.Err != nil || r.Value != i) {
			t.Errorf("item %d should have run: %+v", i, r)
		}
		if i > 2 && !errors.Is(r.Err, context.Canceled) {
			t.Errorf("item %d should be cancelled, got %+v", i, r)
		}
	}
}

// TestMapCancelMidBatchParallel pins the cancellation contract on the
// parallel path: items in flight at cancellation time run to
// completion with correct values, every unstarted item reports the
// context error, and no worker goroutine outlives Map.
func TestMapCancelMidBatchParallel(t *testing.T) {
	before := runtime.NumGoroutine()

	const jobs, n = 3, 12
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var started atomic.Int32
	gate := make(chan struct{})
	allIn := make(chan struct{})
	go func() {
		<-allIn // all workers hold one in-flight item
		cancel()
		close(gate)
	}()
	rs := Map(ctx, jobs, make([]int, n), func(_ context.Context, i, _ int) (int, error) {
		if started.Add(1) == jobs {
			close(allIn)
		}
		<-gate
		return i * 3, nil
	})

	var ok, cancelled int
	for i, r := range rs {
		switch {
		case r.Err == nil:
			ok++
			if r.Value != i*3 {
				t.Errorf("item %d completed with value %d, want %d", i, r.Value, i*3)
			}
		case errors.Is(r.Err, context.Canceled):
			cancelled++
			if r.Value != 0 {
				t.Errorf("cancelled item %d carries value %d", i, r.Value)
			}
		default:
			t.Errorf("item %d: unexpected error %v", i, r.Err)
		}
	}
	// Exactly the in-flight items completed: one per worker. Everything
	// else must carry the context error — the partial result is
	// deterministic in shape even though scheduling picked the items.
	if ok != jobs {
		t.Errorf("%d items completed, want exactly the %d in flight", ok, jobs)
	}
	if cancelled != n-jobs {
		t.Errorf("%d items cancelled, want %d", cancelled, n-jobs)
	}

	// No goroutine leak: Map joined its workers before returning.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Errorf("%d goroutines after Map, %d before — worker leak", g, before)
	}
}

func TestMapConcurrencyBound(t *testing.T) {
	var active, peak atomic.Int32
	jobs := 4
	rs := Map(nil, jobs, make([]int, 64), func(context.Context, int, int) (int, error) {
		cur := active.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		runtime.Gosched()
		active.Add(-1)
		return 0, nil
	})
	if p := peak.Load(); p > int32(jobs) {
		t.Errorf("observed %d concurrent workers, bound was %d", p, jobs)
	}
	for i, r := range rs {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
	}
}

func TestJobsNormalization(t *testing.T) {
	if got := Jobs(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Jobs(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Jobs(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Jobs(-3) = %d", got)
	}
	if got := Jobs(7); got != 7 {
		t.Errorf("Jobs(7) = %d", got)
	}
}

func TestValuesFirstErrorInInputOrder(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	rs := []Result[int]{
		{Value: 1},
		{Err: errB},
		{Value: 3},
		{Err: errA},
	}
	vals, err := Values(rs)
	if !errors.Is(err, errB) {
		t.Errorf("first error = %v, want input-order first %v", err, errB)
	}
	if len(vals) != 4 || vals[0] != 1 || vals[2] != 3 {
		t.Errorf("values incomplete: %v", vals)
	}
	if _, err := Values([]Result[int]{{Value: 9}}); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
}
