package eval

import (
	"testing"

	"fetch/internal/baseline"
	"fetch/internal/stackan"
	"fetch/internal/synth"
)

// smallCorpus builds a fast test corpus (every project at minimum
// program count would still be ~176 binaries; tests use a slice).
func smallCorpus(t *testing.T) *Corpus {
	t.Helper()
	c, err := BuildSelfBuilt(0.01, 7000)
	if err != nil {
		t.Fatalf("BuildSelfBuilt: %v", err)
	}
	// Keep a manageable subset spanning all opt levels.
	if len(c.Bins) > 48 {
		c.Bins = c.Bins[:48]
	}
	return c
}

func TestFigure5Shapes(t *testing.T) {
	c := smallCorpus(t)

	a, err := Figure5a(c)
	if err != nil {
		t.Fatalf("Figure5a: %v", err)
	}
	rows := map[string]StrategyRow{}
	for _, r := range a.Rows {
		rows[r.Name] = r
	}
	// CFR reduces coverage below plain Rec (the paper's key GHIDRA
	// finding); the unsafe tail-call heuristic wrecks accuracy.
	if rows["FDE+Rec+CFR"].FullCoverage > rows["FDE+Rec"].FullCoverage {
		t.Errorf("CFR should not improve coverage: %d > %d",
			rows["FDE+Rec+CFR"].FullCoverage, rows["FDE+Rec"].FullCoverage)
	}
	if rows["FDE+Rec+Tcall"].TotalFP <= rows["FDE+Rec"].TotalFP {
		t.Errorf("ghidra Tcall should add FPs: %d <= %d",
			rows["FDE+Rec+Tcall"].TotalFP, rows["FDE+Rec"].TotalFP)
	}
	if rows["FDE+Rec"].TotalFN >= rows["FDE"].TotalFN {
		t.Errorf("Rec should reduce FNs: %d >= %d",
			rows["FDE+Rec"].TotalFN, rows["FDE"].TotalFN)
	}

	b, err := Figure5b(c)
	if err != nil {
		t.Fatalf("Figure5b: %v", err)
	}
	rows = map[string]StrategyRow{}
	for _, r := range b.Rows {
		rows[r.Name] = r
	}
	// Scan must eliminate (nearly) all full-accuracy binaries.
	if rows["FDE+Rec+Scan"].FullAccuracy > rows["FDE+Rec"].FullAccuracy/4 {
		t.Errorf("Scan left %d full-accuracy binaries (Rec had %d)",
			rows["FDE+Rec+Scan"].FullAccuracy, rows["FDE+Rec"].FullAccuracy)
	}
	if rows["FDE+Rec+Fmerg"].FullCoverage > rows["FDE+Rec"].FullCoverage {
		t.Errorf("Fmerg should not improve coverage")
	}

	cRes, err := Figure5c(c)
	if err != nil {
		t.Fatalf("Figure5c: %v", err)
	}
	rows = map[string]StrategyRow{}
	for _, r := range cRes.Rows {
		rows[r.Name] = r
	}
	// The optimal pipeline: Xref adds no FPs, Tcall slashes them.
	if rows["FDE+Rec+Xref"].TotalFP > rows["FDE+Rec"].TotalFP {
		t.Errorf("Xref added FPs")
	}
	if rows["FDE+Rec+Xref+Tcall"].FullAccuracy <= rows["FDE+Rec+Xref"].FullAccuracy {
		t.Errorf("safe Tcall should raise full-accuracy count: %d <= %d",
			rows["FDE+Rec+Xref+Tcall"].FullAccuracy, rows["FDE+Rec+Xref"].FullAccuracy)
	}
	if got := rows["FDE+Rec+Xref+Tcall"].TotalFP; got*4 > rows["FDE"].TotalFP {
		t.Errorf("FETCH FP reduction too weak: %d of %d remain", got, rows["FDE"].TotalFP)
	}
}

func TestTableIIIOrdering(t *testing.T) {
	c := smallCorpus(t)
	res, err := TableIII(c)
	if err != nil {
		t.Fatalf("TableIII: %v", err)
	}
	sum := map[baseline.Tool]TableIIICell{}
	for _, opt := range res.Opts {
		for tool, cell := range res.Cells[opt] {
			s := sum[tool]
			s.FP += cell.FP
			s.FN += cell.FN
			sum[tool] = s
		}
	}
	// The headline shape: FETCH has the best coverage (lowest FN) and
	// the best accuracy (lowest FP) among all tools.
	fetch := sum[baseline.ToolFETCH]
	for _, tool := range baseline.AllTools {
		if tool == baseline.ToolFETCH {
			continue
		}
		if sum[tool].FN < fetch.FN {
			t.Errorf("%s FN %d < FETCH FN %d", tool, sum[tool].FN, fetch.FN)
		}
		if sum[tool].FP < fetch.FP {
			t.Errorf("%s FP %d < FETCH FP %d", tool, sum[tool].FP, fetch.FP)
		}
	}
	// Pattern-driven tools must show order-of-magnitude more errors.
	if sum[baseline.ToolBAP].FP < 10*fetch.FP+10 {
		t.Errorf("BAP FP %d not clearly worse than FETCH %d", sum[baseline.ToolBAP].FP, fetch.FP)
	}
	t.Logf("%s", res.Format())
}

func TestTableIVShapes(t *testing.T) {
	c := smallCorpus(t)
	res, err := TableIV(c)
	if err != nil {
		t.Fatalf("TableIV: %v", err)
	}
	for _, opt := range res.Opts {
		for _, style := range []stackan.Style{stackan.AngrStyle, stackan.DyninstStyle} {
			cells := res.Cells[opt][style]
			for scope := 0; scope < 2; scope++ {
				p, r := cells[scope].Precision, cells[scope].Recall
				if p > 100 || r > 100 || p < 50 || r < 50 {
					t.Errorf("%v %v scope %d: implausible pre=%.2f rec=%.2f", opt, style, scope, p, r)
				}
			}
			// The degraded analyses must be measurably imperfect.
			if cells[0].Precision == 100 && cells[0].Recall == 100 {
				t.Errorf("%v %v: suspiciously perfect", opt, style)
			}
		}
	}
	t.Logf("%s", res.Format())
}

func TestSectionDrivers(t *testing.T) {
	c := smallCorpus(t)
	ivb, err := SectionIVB(c)
	if err != nil {
		t.Fatal(err)
	}
	if ivb.CoverageRatio < 98 {
		t.Errorf("FDE coverage %.2f%% too low", ivb.CoverageRatio)
	}
	if ivb.MissedOther > 0 {
		t.Errorf("unexplained FDE misses: %d", ivb.MissedOther)
	}

	ive, err := SectionIVE(c)
	if err != nil {
		t.Fatal(err)
	}
	if ive.NewFPs > 0 {
		t.Errorf("xref introduced %d FPs", ive.NewFPs)
	}
	if ive.ResidualOther > 0 {
		t.Errorf("harmful residual misses: %d", ive.ResidualOther)
	}

	va, err := SectionVA(c)
	if err != nil {
		t.Fatal(err)
	}
	if va.NonContiguous+va.HandWritten != va.TotalFPs {
		t.Errorf("FP classification incomplete: %d + %d != %d",
			va.NonContiguous, va.HandWritten, va.TotalFPs)
	}
	if !va.SymbolFPsEqual {
		t.Error("symbols should carry the same part entries")
	}

	vc, err := SectionVC(c)
	if err != nil {
		t.Fatal(err)
	}
	if vc.FPsAfter > vc.FPsBefore {
		t.Errorf("Algorithm 1 increased FPs: %d -> %d", vc.FPsBefore, vc.FPsAfter)
	}
	if vc.FullAccAfter < vc.FullAccBefore {
		t.Errorf("Algorithm 1 reduced full-accuracy binaries")
	}
	if vc.FPsAfter != vc.ResidualIncomplete {
		t.Errorf("residual FPs %d != incomplete-CFI residue %d", vc.FPsAfter, vc.ResidualIncomplete)
	}
	t.Logf("\n%s\n%s\n%s\n%s", ivb.Format(), ive.Format(), va.Format(), vc.Format())
}

func TestTableIAndII(t *testing.T) {
	t1, err := TableI(9000)
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Rows) != 43 {
		t.Errorf("Table I rows = %d, want 43", len(t1.Rows))
	}
	if t1.AvgRatio < 99 {
		t.Errorf("wild FDE ratio %.2f%% too low", t1.AvgRatio)
	}

	c := smallCorpus(t)
	t2, err := TableII(c)
	if err != nil {
		t.Fatal(err)
	}
	if t2.Overall < 98 || t2.Overall > 100 {
		t.Errorf("overall FDE ratio %.2f%% out of range", t2.Overall)
	}
	t.Logf("\n%s\n%s", t1.Format(), t2.Format())
}

func TestCorpusConstruction(t *testing.T) {
	specs := synth.SelfBuiltCorpus(0.01, 1)
	if len(specs) < 22*8 {
		t.Errorf("scaled corpus too small: %d", len(specs))
	}
	perOpt := map[synth.Opt]int{}
	for _, s := range specs {
		perOpt[s.Config.Opt]++
	}
	for _, opt := range synth.AllOpts {
		if perOpt[opt] == 0 {
			t.Errorf("no binaries at %v", opt)
		}
	}
}
