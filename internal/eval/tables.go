package eval

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"fetch/internal/arch"
	"fetch/internal/baseline"
	"fetch/internal/disasm"
	"fetch/internal/ehframe"
	"fetch/internal/elfx"
	"fetch/internal/metrics"
	"fetch/internal/pool"
	"fetch/internal/stackan"
	"fetch/internal/synth"
)

// --- Table I ---

// TableIRow is one wild binary.
type TableIRow struct {
	Software   string
	Open       bool
	EHFrame    bool
	HasSymbols bool
	// FDERatio is the percentage of symbol-reported functions covered
	// by FDEs (only meaningful with symbols).
	FDERatio float64
}

// TableIResult reproduces Table I.
type TableIResult struct {
	Rows     []TableIRow
	AvgRatio float64
}

// Format renders the table.
func (t *TableIResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I: wild binaries (%d)\n", len(t.Rows))
	fmt.Fprintf(&b, "%-18s %-6s %-4s %-4s %8s\n", "software", "open", "EHF", "sym", "FDE%")
	for _, r := range t.Rows {
		ratio := "   -"
		if r.HasSymbols {
			ratio = fmt.Sprintf("%7.2f", r.FDERatio)
		}
		fmt.Fprintf(&b, "%-18s %-6v %-4v %-4v %8s\n", r.Software, r.Open, r.EHFrame, r.HasSymbols, ratio)
	}
	fmt.Fprintf(&b, "average FDE coverage of symbols: %.2f%%\n", t.AvgRatio)
	return b.String()
}

// TableI generates the wild corpus and measures FDE-vs-symbol
// coverage, using one worker per available CPU.
func TableI(seed int64) (*TableIResult, error) {
	return TableIJobs(seed, 0)
}

// tableIPart is one wild binary's row plus its average contribution.
type tableIPart struct {
	row     TableIRow
	counted bool
}

// TableIJobs is TableI with an explicit worker count (non-positive
// means one per available CPU). Output is identical at every count.
func TableIJobs(seed int64, jobs int) (*TableIResult, error) {
	parts, err := pool.Values(pool.Map(context.Background(), jobs, synth.WildCorpus(seed),
		func(_ context.Context, _ int, w synth.WildSpec) (tableIPart, error) {
			var p tableIPart
			img, _, err := synth.Generate(w.Config)
			if err != nil {
				return p, err
			}
			p.row = TableIRow{Software: w.Software, Open: w.Open, HasSymbols: w.HasSymbols}
			eh, ok := img.Section(".eh_frame")
			p.row.EHFrame = ok
			if ok && w.HasSymbols {
				sec, err := ehframe.Decode(eh.Bytes(), eh.Addr)
				if err != nil {
					return p, err
				}
				starts := map[uint64]bool{}
				for _, s := range sec.FunctionStarts() {
					starts[s] = true
				}
				syms := img.FuncSymbols()
				covered := 0
				for _, s := range syms {
					if starts[s.Addr] {
						covered++
					}
				}
				if len(syms) > 0 {
					p.row.FDERatio = 100 * float64(covered) / float64(len(syms))
					p.counted = true
				}
			}
			return p, nil
		}))
	if err != nil {
		return nil, err
	}
	out := &TableIResult{}
	var sum float64
	var n int
	for _, p := range parts {
		out.Rows = append(out.Rows, p.row)
		if p.counted {
			sum += p.row.FDERatio
			n++
		}
	}
	if n > 0 {
		out.AvgRatio = sum / float64(n)
	}
	return out, nil
}

// --- Table II ---

// TableIIRow is one project group.
type TableIIRow struct {
	Project  string
	Type     string
	Binaries int
	EHFrame  bool
	FDERatio float64 // FDE coverage of symbol-reported functions (%)
}

// TableIIResult reproduces Table II.
type TableIIResult struct {
	Rows     []TableIIRow
	Overall  float64
	Binaries int
}

// Format renders the table.
func (t *TableIIResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II: self-built corpus (%d binaries)\n", t.Binaries)
	fmt.Fprintf(&b, "%-16s %-10s %6s %-4s %8s\n", "project", "type", "bins", "EHF", "FDE%")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-16s %-10s %6d %-4v %8.2f\n", r.Project, r.Type, r.Binaries, r.EHFrame, r.FDERatio)
	}
	fmt.Fprintf(&b, "overall FDE coverage of symbols: %.2f%%\n", t.Overall)
	return b.String()
}

// tableIIPart is one binary's symbol-coverage contribution.
type tableIIPart struct {
	project, typ  string
	ehFrame       bool
	syms, covered int
}

// TableII measures per-project FDE coverage of symbols on a generated
// corpus.
func TableII(c *Corpus) (*TableIIResult, error) {
	parts, err := overBins(c.Jobs, c.Bins, func(bin *Binary) (tableIIPart, error) {
		p := tableIIPart{project: bin.Spec.Project, typ: bin.Spec.Type}
		eh, ok := bin.Img.Section(".eh_frame")
		if !ok {
			return p, nil
		}
		p.ehFrame = true
		sec, err := ehframe.Decode(eh.Bytes(), eh.Addr)
		if err != nil {
			return p, err
		}
		starts := map[uint64]bool{}
		for _, s := range sec.FunctionStarts() {
			starts[s] = true
		}
		for _, s := range bin.Img.FuncSymbols() {
			p.syms++
			if starts[s.Addr] {
				p.covered++
			}
		}
		return p, nil
	})
	if err != nil {
		return nil, err
	}
	type acc struct {
		row     TableIIRow
		syms    int
		covered int
	}
	byProject := map[string]*acc{}
	var order []string
	var totalSyms, totalCovered int
	for _, p := range parts {
		a := byProject[p.project]
		if a == nil {
			a = &acc{row: TableIIRow{Project: p.project, Type: p.typ, EHFrame: true}}
			byProject[p.project] = a
			order = append(order, p.project)
		}
		a.row.Binaries++
		if !p.ehFrame {
			a.row.EHFrame = false
			continue
		}
		a.syms += p.syms
		a.covered += p.covered
		totalSyms += p.syms
		totalCovered += p.covered
	}
	out := &TableIIResult{Binaries: len(c.Bins)}
	for _, p := range order {
		a := byProject[p]
		if a.syms > 0 {
			a.row.FDERatio = 100 * float64(a.covered) / float64(a.syms)
		}
		out.Rows = append(out.Rows, a.row)
	}
	if totalSyms > 0 {
		out.Overall = 100 * float64(totalCovered) / float64(totalSyms)
	}
	return out, nil
}

// --- Table III ---

// TableIIICell is one tool × optimization-level entry.
type TableIIICell struct {
	FP int
	FN int
}

// TableIIIResult reproduces the tool comparison.
type TableIIIResult struct {
	Opts  []synth.Opt
	Tools []baseline.Tool
	// Cells[opt][tool]
	Cells map[synth.Opt]map[baseline.Tool]TableIIICell
}

// Format renders the table.
func (t *TableIIIResult) Format() string {
	var b strings.Builder
	b.WriteString("Table III: FP/FN per tool and optimization level\n")
	fmt.Fprintf(&b, "%-6s", "OPT")
	for _, tool := range t.Tools {
		fmt.Fprintf(&b, " %14s", tool)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-6s", "")
	for range t.Tools {
		fmt.Fprintf(&b, " %6s %7s", "FP", "FN")
	}
	b.WriteString("\n")
	sumFP := map[baseline.Tool]int{}
	sumFN := map[baseline.Tool]int{}
	for _, opt := range t.Opts {
		fmt.Fprintf(&b, "%-6s", opt)
		for _, tool := range t.Tools {
			cell := t.Cells[opt][tool]
			fmt.Fprintf(&b, " %6d %7d", cell.FP, cell.FN)
			sumFP[tool] += cell.FP
			sumFN[tool] += cell.FN
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%-6s", "Total")
	for _, tool := range t.Tools {
		fmt.Fprintf(&b, " %6d %7d", sumFP[tool], sumFN[tool])
	}
	b.WriteString("\n")
	return b.String()
}

// TableIII runs every comparator over the corpus, split by
// optimization level. Each binary's tool runs happen on one worker;
// binaries fan out across the pool.
func TableIII(c *Corpus) (*TableIIIResult, error) {
	out := &TableIIIResult{
		Opts:  synth.AllOpts,
		Tools: baseline.AllTools,
		Cells: map[synth.Opt]map[baseline.Tool]TableIIICell{},
	}
	byOpt := c.ByOpt()
	for _, opt := range out.Opts {
		parts, err := overBins(c.Jobs, byOpt[opt], func(bin *Binary) (map[baseline.Tool]metrics.Eval, error) {
			evals := make(map[baseline.Tool]metrics.Eval, len(out.Tools))
			stripped := bin.Img.Strip()
			for _, tool := range out.Tools {
				funcs, err := baseline.Run(tool, stripped)
				if err != nil {
					return nil, fmt.Errorf("eval: %s on %s: %w", tool, bin.Spec.Config.Name, err)
				}
				evals[tool] = metrics.Evaluate(funcs, bin.Truth)
			}
			return evals, nil
		})
		if err != nil {
			return nil, err
		}
		out.Cells[opt] = map[baseline.Tool]TableIIICell{}
		for _, tool := range out.Tools {
			var agg metrics.Aggregate
			for _, evals := range parts {
				agg.Add(evals[tool])
			}
			out.Cells[opt][tool] = TableIIICell{FP: agg.FP, FN: agg.FN}
		}
	}
	return out, nil
}

// --- Table IV ---

// TableIVCell is precision/recall of one analysis in one scope.
type TableIVCell struct {
	Precision float64
	Recall    float64
}

// TableIVResult reproduces the stack-height comparison.
type TableIVResult struct {
	Opts []synth.Opt
	// Cells[opt][style][scope] with scope 0 = full, 1 = jump sites.
	Cells map[synth.Opt]map[stackan.Style][2]TableIVCell
}

// Format renders the table.
func (t *TableIVResult) Format() string {
	var b strings.Builder
	b.WriteString("Table IV: stack-height precision/recall vs CFI baseline\n")
	fmt.Fprintf(&b, "%-6s %28s %28s\n", "", "ANGR-style", "DYNINST-style")
	fmt.Fprintf(&b, "%-6s %13s %14s %13s %14s\n", "OPT", "Full", "Jump", "Full", "Jump")
	fmt.Fprintf(&b, "%-6s %6s %6s %6s %7s %6s %6s %6s %7s\n",
		"", "Pre", "Rec", "Pre", "Rec", "Pre", "Rec", "Pre", "Rec")
	for _, opt := range t.Opts {
		row := t.Cells[opt]
		a, d := row[stackan.AngrStyle], row[stackan.DyninstStyle]
		fmt.Fprintf(&b, "%-6s %6.2f %6.2f %6.2f %7.2f %6.2f %6.2f %6.2f %7.2f\n",
			opt,
			a[0].Precision, a[0].Recall, a[1].Precision, a[1].Recall,
			d[0].Precision, d[0].Recall, d[1].Precision, d[1].Recall)
	}
	return b.String()
}

// tableIVCounts tallies agreement between a degraded analysis and the
// CFI baseline.
type tableIVCounts struct {
	agree, reported, baseline int
}

// TableIV compares the degraded stack-height analyses against
// CFI-recorded heights over complete-CFI whole functions.
func TableIV(c *Corpus) (*TableIVResult, error) {
	out := &TableIVResult{
		Opts:  synth.AllOpts,
		Cells: map[synth.Opt]map[stackan.Style][2]TableIVCell{},
	}
	byOpt := c.ByOpt()
	for _, opt := range out.Opts {
		parts, err := overBins(c.Jobs, byOpt[opt], func(bin *Binary) (map[stackan.Style][2]tableIVCounts, error) {
			tally := map[stackan.Style][2]tableIVCounts{}
			eh, ok := bin.Img.Section(".eh_frame")
			if !ok {
				return tally, nil
			}
			sec, err := ehframe.Decode(eh.Bytes(), eh.Addr)
			if err != nil {
				return nil, err
			}
			// One session per binary: every per-FDE, per-style analysis
			// shares the decode cache for its jump-table probes.
			sess := disasm.NewSession(bin.Img, disasm.Options{})
			isa := bin.Img.ISA()
			for _, fde := range sec.FDEs {
				ht := fde.HeightsABI(isa.CFISPReg(), isa.CFIEntryOffset())
				if !ht.Complete {
					continue
				}
				if h0, ok := ht.HeightAt(fde.PCBegin); !ok || h0 != 0 {
					continue // cold parts: not whole functions
				}
				// The location universe is the full set of reachable
				// instructions (from the precise analysis), so an
				// analysis that never visits a region loses recall.
				universe := stackan.AnalyzeWithSession(sess, bin.Img, fde.PCBegin, fde.End(), stackan.Precise)
				for _, style := range []stackan.Style{stackan.AngrStyle, stackan.DyninstStyle} {
					res := stackan.AnalyzeWithSession(sess, bin.Img, fde.PCBegin, fde.End(), style)
					cur := tally[style]
					for addr := range universe {
						cfiH, ok := ht.HeightAt(addr)
						if !ok {
							continue
						}
						got, visited := res[addr]
						isJump := isJumpSite(bin.Img, addr)
						for scope := 0; scope < 2; scope++ {
							if scope == 1 && !isJump {
								continue
							}
							cur[scope].baseline++
							if visited && got.Known {
								cur[scope].reported++
								if got.H == cfiH {
									cur[scope].agree++
								}
							}
						}
					}
					tally[style] = cur
				}
			}
			return tally, nil
		})
		if err != nil {
			return nil, err
		}
		tally := map[stackan.Style][2]tableIVCounts{}
		for _, part := range parts {
			for style, cs := range part {
				cur := tally[style]
				for scope := 0; scope < 2; scope++ {
					cur[scope].agree += cs[scope].agree
					cur[scope].reported += cs[scope].reported
					cur[scope].baseline += cs[scope].baseline
				}
				tally[style] = cur
			}
		}
		out.Cells[opt] = map[stackan.Style][2]TableIVCell{}
		for style, cs := range tally {
			var cells [2]TableIVCell
			for scope := 0; scope < 2; scope++ {
				c := cs[scope]
				cell := TableIVCell{Precision: 100, Recall: 100}
				if c.reported > 0 {
					cell.Precision = 100 * float64(c.agree) / float64(c.reported)
				}
				if c.baseline > 0 {
					cell.Recall = 100 * float64(c.reported) / float64(c.baseline)
				}
				cells[scope] = cell
			}
			out.Cells[opt][style] = cells
		}
	}
	return out, nil
}

// isJumpSite reports whether a direct jump or conditional branch
// starts at addr.
func isJumpSite(img *elfx.Image, addr uint64) bool {
	w, ok := img.BytesToSectionEnd(addr)
	if !ok {
		return false
	}
	in, err := img.ISA().Decode(w, addr)
	if err != nil {
		return false
	}
	return (in.Op == arch.OpJmp || in.Op == arch.OpJcc) && in.HasTarget
}

// --- Table V ---

// TableVRow is one tool's mean per-binary analysis time.
type TableVRow struct {
	Tool baseline.Tool
	Mean time.Duration
}

// TableVResult reproduces the efficiency comparison.
type TableVResult struct {
	Rows []TableVRow
}

// Format renders the table.
func (t *TableVResult) Format() string {
	var b strings.Builder
	b.WriteString("Table V: mean analysis time per binary\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-14s %12s\n", r.Tool, r.Mean.Round(time.Microsecond))
	}
	return b.String()
}

// TableV times every tool over (a sample of) the corpus. It runs
// strictly sequentially regardless of Corpus.Jobs: the table measures
// per-binary latency, and concurrent runs would contend for cores and
// distort the means.
func TableV(c *Corpus, sample int) (*TableVResult, error) {
	bins := c.Bins
	if sample > 0 && sample < len(bins) {
		bins = bins[:sample]
	}
	out := &TableVResult{}
	for _, tool := range baseline.AllTools {
		start := time.Now()
		for _, bin := range bins {
			if _, err := baseline.Run(tool, bin.Img.Strip()); err != nil {
				return nil, err
			}
		}
		mean := time.Duration(int64(time.Since(start)) / int64(len(bins)))
		out.Rows = append(out.Rows, TableVRow{Tool: tool, Mean: mean})
	}
	sort.Slice(out.Rows, func(i, j int) bool { return out.Rows[i].Tool < out.Rows[j].Tool })
	return out, nil
}
