package eval

import (
	"fmt"
	"strings"

	"fetch/internal/core"
)

// SessionStatsResult aggregates the incremental-pipeline counters of a
// full-FETCH analysis over the corpus — the `evaluate -v` view of how
// much work the shared disassembly sessions reused.
type SessionStatsResult struct {
	// Bins is the number of binaries analyzed.
	Bins int
	// Decoded and Reused total the decode-cache misses and hits.
	Decoded int64
	Reused  int64
	// ColdStarts, Extends, Retracts, Forks, and Probes total the
	// session operations across the corpus.
	ColdStarts int
	Extends    int
	Retracts   int
	Forks      int
	Probes     int
	// XrefIterations totals pointer-detection rounds; Truncated counts
	// binaries whose pointer-detection fixed point hit the iteration
	// cap before converging.
	XrefIterations int
	Truncated      int
}

// SessionStats runs the full pipeline over every corpus binary and
// aggregates the per-binary Stats. The counters are deterministic, so
// parallel runs (Corpus.Jobs) report identical totals.
func SessionStats(c *Corpus) (*SessionStatsResult, error) {
	parts, err := overBins(c.Jobs, c.Bins, func(bin *Binary) (core.Stats, error) {
		rep, err := core.Analyze(bin.Img.Strip(), core.FETCH)
		if err != nil {
			return core.Stats{}, err
		}
		return rep.Stats, nil
	})
	if err != nil {
		return nil, err
	}
	out := &SessionStatsResult{Bins: len(parts)}
	for _, st := range parts {
		out.Decoded += st.Disasm.InstsDecoded
		out.Reused += st.Disasm.InstsReused
		out.ColdStarts += st.Disasm.ColdStarts
		out.Extends += st.Disasm.Extends
		out.Retracts += st.Disasm.Retracts
		out.Forks += st.Disasm.Forks
		out.Probes += st.Disasm.Probes
		out.XrefIterations += st.XrefIterations
		if !st.XrefConverged {
			out.Truncated++
		}
	}
	return out, nil
}

// Format renders the aggregate in the drivers' plain-text style.
func (r *SessionStatsResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "incremental session stats (full FETCH, %d binaries)\n", r.Bins)
	total := r.Decoded + r.Reused
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(r.Reused) / float64(total)
	}
	fmt.Fprintf(&b, "  insts decoded:   %d\n", r.Decoded)
	fmt.Fprintf(&b, "  insts reused:    %d (%.1f%% of lookups)\n", r.Reused, pct)
	fmt.Fprintf(&b, "  cold starts:     %d (one per binary = fully incremental)\n", r.ColdStarts)
	fmt.Fprintf(&b, "  extends:         %d\n", r.Extends)
	fmt.Fprintf(&b, "  retracts:        %d\n", r.Retracts)
	fmt.Fprintf(&b, "  forks/probes:    %d/%d\n", r.Forks, r.Probes)
	fmt.Fprintf(&b, "  xref iterations: %d (truncated on %d binaries)\n", r.XrefIterations, r.Truncated)
	return b.String()
}
