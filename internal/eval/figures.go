package eval

import (
	"fmt"
	"strings"

	"fetch/internal/baseline"
	"fetch/internal/elfx"
	"fetch/internal/metrics"
)

// StrategyRow is one bar pair of Figure 5.
type StrategyRow struct {
	Name         string
	FullCoverage int
	FullAccuracy int
	TotalFP      int
	TotalFN      int
}

// FigureResult is one Figure 5 subfigure.
type FigureResult struct {
	Title    string
	Binaries int
	Rows     []StrategyRow
}

// Format renders the figure as a text table.
func (f *FigureResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%d binaries)\n", f.Title, f.Binaries)
	fmt.Fprintf(&b, "%-18s %12s %12s %10s %10s\n", "strategy", "full-cov", "full-acc", "FP", "FN")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-18s %12d %12d %10d %10d\n",
			r.Name, r.FullCoverage, r.FullAccuracy, r.TotalFP, r.TotalFN)
	}
	return b.String()
}

// strategy is a named detection pipeline over one image.
type strategy struct {
	name string
	run  func(img *elfx.Image) (map[uint64]bool, error)
}

func runFigure(c *Corpus, title string, strats []strategy) (*FigureResult, error) {
	out := &FigureResult{Title: title, Binaries: len(c.Bins)}
	for _, st := range strats {
		st := st
		evals, err := overBins(c.Jobs, c.Bins, func(bin *Binary) (metrics.Eval, error) {
			funcs, err := st.run(bin.Img.Strip())
			if err != nil {
				return metrics.Eval{}, fmt.Errorf("eval: %s on %s: %w", st.name, bin.Spec.Config.Name, err)
			}
			return metrics.Evaluate(funcs, bin.Truth), nil
		})
		if err != nil {
			return nil, err
		}
		var agg metrics.Aggregate
		for _, e := range evals {
			agg.Add(e)
		}
		out.Rows = append(out.Rows, StrategyRow{
			Name:         st.name,
			FullCoverage: agg.FullCoverage,
			FullAccuracy: agg.FullAccuracy,
			TotalFP:      agg.FP,
			TotalFN:      agg.FN,
		})
	}
	return out, nil
}

// fdeOnly is the "FDE" row shared by all three subfigures.
func fdeOnly(img *elfx.Image) (map[uint64]bool, error) {
	d, err := baseline.FDE(img)
	if err != nil {
		return nil, err
	}
	return d.Funcs, nil
}

// Figure5a reproduces the GHIDRA strategy study: its recursive
// disassembly is coupled with the thunk heuristic, and the paper
// additionally measures control-flow repairing, prologue matching, and
// the unsafe tail-call heuristic.
func Figure5a(c *Corpus) (*FigureResult, error) {
	ghidraRec := func(img *elfx.Image) (*baseline.Detection, error) {
		d, err := baseline.FDE(img)
		if err != nil {
			return nil, err
		}
		d = baseline.Rec(img, d)
		return baseline.Thunk(img, d), nil
	}
	return runFigure(c, "Figure 5a: GHIDRA strategies", []strategy{
		{"FDE", fdeOnly},
		{"FDE+Rec+CFR", func(img *elfx.Image) (map[uint64]bool, error) {
			d, err := ghidraRec(img)
			if err != nil {
				return nil, err
			}
			return baseline.CFR(img, d).Funcs, nil
		}},
		{"FDE+Rec", func(img *elfx.Image) (map[uint64]bool, error) {
			d, err := ghidraRec(img)
			if err != nil {
				return nil, err
			}
			return d.Funcs, nil
		}},
		{"FDE+Rec+Fsig", func(img *elfx.Image) (map[uint64]bool, error) {
			d, err := ghidraRec(img)
			if err != nil {
				return nil, err
			}
			return baseline.FsigGhidra(img, d).Funcs, nil
		}},
		{"FDE+Rec+Tcall", func(img *elfx.Image) (map[uint64]bool, error) {
			d, err := ghidraRec(img)
			if err != nil {
				return nil, err
			}
			return baseline.TcallGhidra(img, d).Funcs, nil
		}},
	})
}

// Figure5b reproduces the ANGR strategy study: its recursion is
// coupled with alignment-function splitting, and the paper measures
// function merging, prologue matching, linear scanning, and its
// tail-call heuristic on top.
func Figure5b(c *Corpus) (*FigureResult, error) {
	angrRec := func(img *elfx.Image) (*baseline.Detection, error) {
		d, err := baseline.FDE(img)
		if err != nil {
			return nil, err
		}
		d = baseline.Rec(img, d)
		return baseline.Align(img, d), nil
	}
	return runFigure(c, "Figure 5b: ANGR strategies", []strategy{
		{"FDE", fdeOnly},
		{"FDE+Rec+Fmerg", func(img *elfx.Image) (map[uint64]bool, error) {
			d, err := angrRec(img)
			if err != nil {
				return nil, err
			}
			return baseline.Fmerg(img, d).Funcs, nil
		}},
		{"FDE+Rec", func(img *elfx.Image) (map[uint64]bool, error) {
			d, err := angrRec(img)
			if err != nil {
				return nil, err
			}
			return d.Funcs, nil
		}},
		{"FDE+Rec+Fsig", func(img *elfx.Image) (map[uint64]bool, error) {
			d, err := angrRec(img)
			if err != nil {
				return nil, err
			}
			return baseline.FsigAngr(img, d).Funcs, nil
		}},
		{"FDE+Rec+Scan", func(img *elfx.Image) (map[uint64]bool, error) {
			d, err := angrRec(img)
			if err != nil {
				return nil, err
			}
			return baseline.Scan(img, d).Funcs, nil
		}},
		{"FDE+Rec+Tcall", func(img *elfx.Image) (map[uint64]bool, error) {
			d, err := angrRec(img)
			if err != nil {
				return nil, err
			}
			return baseline.TcallAngr(img, d).Funcs, nil
		}},
	})
}

// Figure5c reproduces the optimal-strategy study: safe recursion, then
// conservative pointer detection, then Algorithm 1.
func Figure5c(c *Corpus) (*FigureResult, error) {
	rec := func(img *elfx.Image) (*baseline.Detection, error) {
		d, err := baseline.FDE(img)
		if err != nil {
			return nil, err
		}
		return baseline.Rec(img, d), nil
	}
	return runFigure(c, "Figure 5c: optimal strategies", []strategy{
		{"FDE", fdeOnly},
		{"FDE+Rec", func(img *elfx.Image) (map[uint64]bool, error) {
			d, err := rec(img)
			if err != nil {
				return nil, err
			}
			return d.Funcs, nil
		}},
		{"FDE+Rec+Xref", func(img *elfx.Image) (map[uint64]bool, error) {
			d, err := rec(img)
			if err != nil {
				return nil, err
			}
			return baseline.Xref(img, d).Funcs, nil
		}},
		{"FDE+Rec+Xref+Tcall", func(img *elfx.Image) (map[uint64]bool, error) {
			d, err := rec(img)
			if err != nil {
				return nil, err
			}
			d = baseline.Xref(img, d)
			return baseline.SafeTailCall(img, d).Funcs, nil
		}},
	})
}
