package eval

import (
	"bytes"
	"testing"

	"fetch/internal/elfx"
)

// determinismCorpora builds the same seeded corpus sequentially and
// with four workers, trimmed to a manageable subset spanning all opt
// levels (same trim as smallCorpus).
func determinismCorpora(t *testing.T) (seq, par *Corpus) {
	t.Helper()
	seq, err := BuildSelfBuiltJobs(0.01, 4242, 1)
	if err != nil {
		t.Fatalf("sequential build: %v", err)
	}
	par, err = BuildSelfBuiltJobs(0.01, 4242, 4)
	if err != nil {
		t.Fatalf("parallel build: %v", err)
	}
	if len(seq.Bins) != len(par.Bins) {
		t.Fatalf("corpus sizes differ: %d vs %d", len(seq.Bins), len(par.Bins))
	}
	if len(seq.Bins) > 32 {
		seq.Bins = seq.Bins[:32]
		par.Bins = par.Bins[:32]
	}
	return seq, par
}

// TestCorpusGenerationDeterminism proves parallel corpus generation
// yields binaries byte-identical to the sequential build, in the same
// order, with the same ground truth.
func TestCorpusGenerationDeterminism(t *testing.T) {
	seq, par := determinismCorpora(t)
	for i := range seq.Bins {
		s, p := seq.Bins[i], par.Bins[i]
		if s.Spec.Config.Name != p.Spec.Config.Name {
			t.Fatalf("bin %d: order differs: %s vs %s", i, s.Spec.Config.Name, p.Spec.Config.Name)
		}
		sStarts, pStarts := s.Truth.SortedStarts(), p.Truth.SortedStarts()
		if len(sStarts) != len(pStarts) {
			t.Fatalf("%s: truth sizes differ", s.Spec.Config.Name)
		}
		for j := range sStarts {
			if sStarts[j] != pStarts[j] {
				t.Fatalf("%s: truth starts differ at %d", s.Spec.Config.Name, j)
			}
		}
		sRaw, err := elfx.WriteELF(s.Img)
		if err != nil {
			t.Fatal(err)
		}
		pRaw, err := elfx.WriteELF(p.Img)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sRaw, pRaw) {
			t.Fatalf("%s: parallel generation changed the binary image", s.Spec.Config.Name)
		}
	}
}

// TestDriverDeterminism runs every table and figure driver (minus the
// wall-clock Table V) on the same corpus sequentially and with four
// workers and requires identical rendered output — parallelism must
// change wall-clock time, never results.
func TestDriverDeterminism(t *testing.T) {
	seq, par := determinismCorpora(t)
	if seq.Jobs != 1 || par.Jobs != 4 {
		t.Fatalf("corpus jobs not as configured: %d, %d", seq.Jobs, par.Jobs)
	}

	type formatter interface{ Format() string }
	drivers := []struct {
		name string
		run  func(*Corpus) (formatter, error)
	}{
		{"TableII", func(c *Corpus) (formatter, error) { return TableII(c) }},
		{"TableIII", func(c *Corpus) (formatter, error) { return TableIII(c) }},
		{"TableIV", func(c *Corpus) (formatter, error) { return TableIV(c) }},
		{"SectionIVB", func(c *Corpus) (formatter, error) { return SectionIVB(c) }},
		{"SectionIVE", func(c *Corpus) (formatter, error) { return SectionIVE(c) }},
		{"SectionVA", func(c *Corpus) (formatter, error) { return SectionVA(c) }},
		{"SectionVC", func(c *Corpus) (formatter, error) { return SectionVC(c) }},
		{"Figure5a", func(c *Corpus) (formatter, error) { return Figure5a(c) }},
		{"Figure5b", func(c *Corpus) (formatter, error) { return Figure5b(c) }},
		{"Figure5c", func(c *Corpus) (formatter, error) { return Figure5c(c) }},
	}
	for _, d := range drivers {
		d := d
		t.Run(d.name, func(t *testing.T) {
			sRes, err := d.run(seq)
			if err != nil {
				t.Fatalf("sequential: %v", err)
			}
			pRes, err := d.run(par)
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			sOut, pOut := sRes.Format(), pRes.Format()
			if sOut != pOut {
				t.Errorf("rendered output differs between jobs=1 and jobs=4:\n--- sequential ---\n%s\n--- parallel ---\n%s", sOut, pOut)
			}
		})
	}
}

// TestTableIDeterminism covers the wild-corpus table, which manages
// its own generation fan-out.
func TestTableIDeterminism(t *testing.T) {
	seq, err := TableIJobs(8123, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := TableIJobs(8123, 4)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Format() != par.Format() {
		t.Errorf("Table I differs between jobs=1 and jobs=4:\n%s\n%s", seq.Format(), par.Format())
	}
}
