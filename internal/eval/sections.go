package eval

import (
	"fmt"
	"strings"

	"fetch/internal/baseline"
	"fetch/internal/core"
	"fetch/internal/gadget"
	"fetch/internal/groundtruth"
	"fetch/internal/metrics"
)

// --- §IV-B: FDE coverage against ground truth ---

// SectionIVBResult quantifies raw FDE coverage.
type SectionIVBResult struct {
	TotalFuncs         int
	Covered            int
	CoverageRatio      float64
	BinariesWithMiss   int
	AvgMissPerAffected float64
	MissedAsm          int
	MissedClangTerm    int
	MissedOther        int
}

// Format renders the findings paragraph.
func (r *SectionIVBResult) Format() string {
	var b strings.Builder
	b.WriteString("§IV-B: FDE coverage vs ground truth\n")
	fmt.Fprintf(&b, "functions covered by FDEs: %d / %d (%.2f%%)\n", r.Covered, r.TotalFuncs, r.CoverageRatio)
	fmt.Fprintf(&b, "binaries with misses: %d (avg %.2f missed each)\n", r.BinariesWithMiss, r.AvgMissPerAffected)
	fmt.Fprintf(&b, "missed: %d assembly, %d __clang_call_terminate, %d other\n",
		r.MissedAsm, r.MissedClangTerm, r.MissedOther)
	return b.String()
}

// ivbPart is one binary's contribution to §IV-B.
type ivbPart struct {
	funcs, covered, misses int
	asm, clang, other      int
}

// SectionIVB measures FDE-only detection against ground truth.
func SectionIVB(c *Corpus) (*SectionIVBResult, error) {
	parts, err := overBins(c.Jobs, c.Bins, func(bin *Binary) (ivbPart, error) {
		var p ivbPart
		d, err := baseline.FDE(bin.Img)
		if err != nil {
			return p, err
		}
		e := metrics.Evaluate(d.Funcs, bin.Truth)
		p.funcs = len(bin.Truth.Funcs)
		p.covered = e.TP
		p.misses = e.FN
		for _, a := range e.FNAddrs {
			f, _ := bin.Truth.FuncAt(a)
			switch f.Class {
			case groundtruth.ClassAsm:
				p.asm++
			case groundtruth.ClassClangTerminate:
				p.clang++
			default:
				p.other++
			}
		}
		return p, nil
	})
	if err != nil {
		return nil, err
	}
	out := &SectionIVBResult{}
	missTotal := 0
	for _, p := range parts {
		out.TotalFuncs += p.funcs
		out.Covered += p.covered
		if p.misses > 0 {
			out.BinariesWithMiss++
			missTotal += p.misses
		}
		out.MissedAsm += p.asm
		out.MissedClangTerm += p.clang
		out.MissedOther += p.other
	}
	if out.TotalFuncs > 0 {
		out.CoverageRatio = 100 * float64(out.Covered) / float64(out.TotalFuncs)
	}
	if out.BinariesWithMiss > 0 {
		out.AvgMissPerAffected = float64(missTotal) / float64(out.BinariesWithMiss)
	}
	return out, nil
}

// --- §IV-E: function-pointer detection ---

// SectionIVEResult quantifies the xref stage.
type SectionIVEResult struct {
	NewStarts       int
	NewFPs          int
	AvgReported     float64
	ResidualTail    int
	ResidualUnreach int
	ResidualOther   int
}

// Format renders the findings paragraph.
func (r *SectionIVEResult) Format() string {
	var b strings.Builder
	b.WriteString("§IV-E: conservative function-pointer detection\n")
	fmt.Fprintf(&b, "new starts found: %d (false positives among them: %d)\n", r.NewStarts, r.NewFPs)
	fmt.Fprintf(&b, "average starts reported per binary: %.2f\n", r.AvgReported)
	fmt.Fprintf(&b, "residual misses: %d tail-call-only, %d unreachable, %d other\n",
		r.ResidualTail, r.ResidualUnreach, r.ResidualOther)
	return b.String()
}

// ivePart is one binary's contribution to §IV-E.
type ivePart struct {
	newStarts, newFPs                   int
	residTail, residUnreach, residOther int
}

// SectionIVE measures what pointer validation adds over FDE+Rec.
func SectionIVE(c *Corpus) (*SectionIVEResult, error) {
	parts, err := overBins(c.Jobs, c.Bins, func(bin *Binary) (ivePart, error) {
		var p ivePart
		img := bin.Img.Strip()
		full, err := core.Analyze(img, core.Strategy{Recursive: true, Xref: true})
		if err != nil {
			return p, err
		}
		p.newStarts = len(full.XrefNew)
		for _, a := range full.XrefNew {
			if !bin.Truth.IsStart(a) {
				p.newFPs++
			}
		}
		e := metrics.Evaluate(full.Funcs, bin.Truth)
		for _, a := range e.FNAddrs {
			f, _ := bin.Truth.FuncAt(a)
			switch f.Reach {
			case groundtruth.ReachTailOnly:
				p.residTail++
			case groundtruth.ReachUnreachable:
				p.residUnreach++
			default:
				p.residOther++
			}
		}
		return p, nil
	})
	if err != nil {
		return nil, err
	}
	out := &SectionIVEResult{}
	for _, p := range parts {
		out.NewStarts += p.newStarts
		out.NewFPs += p.newFPs
		out.AvgReported += float64(p.newStarts)
		out.ResidualTail += p.residTail
		out.ResidualUnreach += p.residUnreach
		out.ResidualOther += p.residOther
	}
	if len(c.Bins) > 0 {
		out.AvgReported /= float64(len(c.Bins))
	}
	return out, nil
}

// --- §V-A: errors introduced by FDEs ---

// SectionVAResult quantifies FDE-inherited false positives.
type SectionVAResult struct {
	TotalFPs       int
	AffectedBins   int
	NonContiguous  int
	HandWritten    int
	SymbolFPsEqual bool
	ROPGadgets     int
}

// Format renders the findings paragraph.
func (r *SectionVAResult) Format() string {
	var b strings.Builder
	b.WriteString("§V-A: false positives introduced by FDEs\n")
	fmt.Fprintf(&b, "FDE false positives: %d across %d binaries\n", r.TotalFPs, r.AffectedBins)
	fmt.Fprintf(&b, "  from non-contiguous functions: %d\n", r.NonContiguous)
	fmt.Fprintf(&b, "  from hand-written CFI: %d\n", r.HandWritten)
	fmt.Fprintf(&b, "symbols exhibit the same non-contiguous FPs: %v\n", r.SymbolFPsEqual)
	fmt.Fprintf(&b, "ROP gadgets at false starts: %d\n", r.ROPGadgets)
	return b.String()
}

// vaPart is one binary's contribution to §V-A.
type vaPart struct {
	fps, noncontig, handwritten, gadgets int
	symsDiffer                           bool
}

// SectionVA measures the FDE-only false positives, their origin, and
// their ROP-gadget payload.
func SectionVA(c *Corpus) (*SectionVAResult, error) {
	parts, err := overBins(c.Jobs, c.Bins, func(bin *Binary) (vaPart, error) {
		var p vaPart
		d, err := baseline.FDE(bin.Img)
		if err != nil {
			return p, err
		}
		e := metrics.Evaluate(d.Funcs, bin.Truth)
		p.fps = e.FP
		for _, a := range e.FPAddrs {
			if _, isPart := bin.Truth.PartAt(a); isPart {
				p.noncontig++
			} else {
				p.handwritten++
			}
		}
		p.gadgets = gadget.CountAll(bin.Img, e.FPAddrs)

		// Symbols carry the same per-part entries (§V-A's observation
		// that symbols share the problem).
		symStarts := map[uint64]bool{}
		for _, s := range bin.Img.FuncSymbols() {
			symStarts[s.Addr] = true
		}
		for _, part := range bin.Truth.Parts {
			if !symStarts[part.Addr] {
				p.symsDiffer = true
			}
		}
		return p, nil
	})
	if err != nil {
		return nil, err
	}
	out := &SectionVAResult{SymbolFPsEqual: true}
	for _, p := range parts {
		if p.fps > 0 {
			out.AffectedBins++
		}
		out.TotalFPs += p.fps
		out.NonContiguous += p.noncontig
		out.HandWritten += p.handwritten
		out.ROPGadgets += p.gadgets
		if p.symsDiffer {
			out.SymbolFPsEqual = false
		}
	}
	return out, nil
}

// --- §V-C: Algorithm 1 evaluation ---

// SectionVCResult quantifies the error fixing.
type SectionVCResult struct {
	FPsBefore          int
	FPsAfter           int
	FullAccBefore      int
	FullAccAfter       int
	FullCovBefore      int
	FullCovAfter       int
	NewFNs             int
	NewFNsHarmless     int
	ResidualIncomplete int
}

// Format renders the findings paragraph.
func (r *SectionVCResult) Format() string {
	var b strings.Builder
	b.WriteString("§V-C: Algorithm 1 evaluation\n")
	fmt.Fprintf(&b, "FDE false positives: %d -> %d (%.1f%% eliminated)\n",
		r.FPsBefore, r.FPsAfter, 100*(1-safeDiv(float64(r.FPsAfter), float64(r.FPsBefore))))
	fmt.Fprintf(&b, "full-accuracy binaries: %d -> %d\n", r.FullAccBefore, r.FullAccAfter)
	fmt.Fprintf(&b, "full-coverage binaries: %d -> %d\n", r.FullCovBefore, r.FullCovAfter)
	fmt.Fprintf(&b, "new false negatives: %d (harmless tail-merge: %d)\n", r.NewFNs, r.NewFNsHarmless)
	fmt.Fprintf(&b, "residual FPs from incomplete CFI: %d\n", r.ResidualIncomplete)
	return b.String()
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// vcPart is one binary's contribution to §V-C.
type vcPart struct {
	fpBefore, fpAfter              int
	fullAccBefore, fullAccAfter    bool
	fullCovBefore, fullCovAfter    bool
	newFNs, harmless, residIncompl int
}

// SectionVC measures Algorithm 1 on top of FDE+Rec+Xref.
func SectionVC(c *Corpus) (*SectionVCResult, error) {
	parts, err := overBins(c.Jobs, c.Bins, func(bin *Binary) (vcPart, error) {
		var p vcPart
		img := bin.Img.Strip()
		before, err := core.Analyze(img, core.Strategy{Recursive: true, Xref: true})
		if err != nil {
			return p, err
		}
		after, err := core.Analyze(img, core.FETCH)
		if err != nil {
			return p, err
		}
		eb := metrics.Evaluate(before.Funcs, bin.Truth)
		ea := metrics.Evaluate(after.Funcs, bin.Truth)
		p.fpBefore = eb.FP
		p.fpAfter = ea.FP
		p.fullAccBefore = eb.FullAccuracy()
		p.fullAccAfter = ea.FullAccuracy()
		p.fullCovBefore = eb.FullCoverage()
		p.fullCovAfter = ea.FullCoverage()
		p.newFNs = ea.FN - eb.FN
		for _, a := range ea.FNAddrs {
			if _, merged := after.Merged[a]; merged {
				p.harmless++
			}
		}
		for _, a := range ea.FPAddrs {
			if part, ok := bin.Truth.PartAt(a); ok && part.IncompleteCFI {
				p.residIncompl++
			}
		}
		return p, nil
	})
	if err != nil {
		return nil, err
	}
	out := &SectionVCResult{}
	for _, p := range parts {
		out.FPsBefore += p.fpBefore
		out.FPsAfter += p.fpAfter
		if p.fullAccBefore {
			out.FullAccBefore++
		}
		if p.fullAccAfter {
			out.FullAccAfter++
		}
		if p.fullCovBefore {
			out.FullCovBefore++
		}
		if p.fullCovAfter {
			out.FullCovAfter++
		}
		out.NewFNs += p.newFNs
		out.NewFNsHarmless += p.harmless
		out.ResidualIncomplete += p.residIncompl
	}
	return out, nil
}
