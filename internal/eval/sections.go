package eval

import (
	"fmt"
	"strings"

	"fetch/internal/baseline"
	"fetch/internal/core"
	"fetch/internal/gadget"
	"fetch/internal/groundtruth"
	"fetch/internal/metrics"
)

// --- §IV-B: FDE coverage against ground truth ---

// SectionIVBResult quantifies raw FDE coverage.
type SectionIVBResult struct {
	TotalFuncs         int
	Covered            int
	CoverageRatio      float64
	BinariesWithMiss   int
	AvgMissPerAffected float64
	MissedAsm          int
	MissedClangTerm    int
	MissedOther        int
}

// Format renders the findings paragraph.
func (r *SectionIVBResult) Format() string {
	var b strings.Builder
	b.WriteString("§IV-B: FDE coverage vs ground truth\n")
	fmt.Fprintf(&b, "functions covered by FDEs: %d / %d (%.2f%%)\n", r.Covered, r.TotalFuncs, r.CoverageRatio)
	fmt.Fprintf(&b, "binaries with misses: %d (avg %.2f missed each)\n", r.BinariesWithMiss, r.AvgMissPerAffected)
	fmt.Fprintf(&b, "missed: %d assembly, %d __clang_call_terminate, %d other\n",
		r.MissedAsm, r.MissedClangTerm, r.MissedOther)
	return b.String()
}

// SectionIVB measures FDE-only detection against ground truth.
func SectionIVB(c *Corpus) (*SectionIVBResult, error) {
	out := &SectionIVBResult{}
	missTotal := 0
	for _, bin := range c.Bins {
		d, err := baseline.FDE(bin.Img)
		if err != nil {
			return nil, err
		}
		e := metrics.Evaluate(d.Funcs, bin.Truth)
		out.TotalFuncs += len(bin.Truth.Funcs)
		out.Covered += e.TP
		if e.FN > 0 {
			out.BinariesWithMiss++
			missTotal += e.FN
		}
		for _, a := range e.FNAddrs {
			f, _ := bin.Truth.FuncAt(a)
			switch f.Class {
			case groundtruth.ClassAsm:
				out.MissedAsm++
			case groundtruth.ClassClangTerminate:
				out.MissedClangTerm++
			default:
				out.MissedOther++
			}
		}
	}
	if out.TotalFuncs > 0 {
		out.CoverageRatio = 100 * float64(out.Covered) / float64(out.TotalFuncs)
	}
	if out.BinariesWithMiss > 0 {
		out.AvgMissPerAffected = float64(missTotal) / float64(out.BinariesWithMiss)
	}
	return out, nil
}

// --- §IV-E: function-pointer detection ---

// SectionIVEResult quantifies the xref stage.
type SectionIVEResult struct {
	NewStarts       int
	NewFPs          int
	AvgReported     float64
	ResidualTail    int
	ResidualUnreach int
	ResidualOther   int
}

// Format renders the findings paragraph.
func (r *SectionIVEResult) Format() string {
	var b strings.Builder
	b.WriteString("§IV-E: conservative function-pointer detection\n")
	fmt.Fprintf(&b, "new starts found: %d (false positives among them: %d)\n", r.NewStarts, r.NewFPs)
	fmt.Fprintf(&b, "average starts reported per binary: %.2f\n", r.AvgReported)
	fmt.Fprintf(&b, "residual misses: %d tail-call-only, %d unreachable, %d other\n",
		r.ResidualTail, r.ResidualUnreach, r.ResidualOther)
	return b.String()
}

// SectionIVE measures what pointer validation adds over FDE+Rec.
func SectionIVE(c *Corpus) (*SectionIVEResult, error) {
	out := &SectionIVEResult{}
	for _, bin := range c.Bins {
		img := bin.Img.Strip()
		rec, err := core.Analyze(img, core.Strategy{Recursive: true})
		if err != nil {
			return nil, err
		}
		full, err := core.Analyze(img, core.Strategy{Recursive: true, Xref: true})
		if err != nil {
			return nil, err
		}
		out.NewStarts += len(full.XrefNew)
		out.AvgReported += float64(len(full.XrefNew))
		for _, a := range full.XrefNew {
			if !bin.Truth.IsStart(a) {
				out.NewFPs++
			}
		}
		_ = rec
		e := metrics.Evaluate(full.Funcs, bin.Truth)
		for _, a := range e.FNAddrs {
			f, _ := bin.Truth.FuncAt(a)
			switch f.Reach {
			case groundtruth.ReachTailOnly:
				out.ResidualTail++
			case groundtruth.ReachUnreachable:
				out.ResidualUnreach++
			default:
				out.ResidualOther++
			}
		}
	}
	if len(c.Bins) > 0 {
		out.AvgReported /= float64(len(c.Bins))
	}
	return out, nil
}

// --- §V-A: errors introduced by FDEs ---

// SectionVAResult quantifies FDE-inherited false positives.
type SectionVAResult struct {
	TotalFPs       int
	AffectedBins   int
	NonContiguous  int
	HandWritten    int
	SymbolFPsEqual bool
	ROPGadgets     int
}

// Format renders the findings paragraph.
func (r *SectionVAResult) Format() string {
	var b strings.Builder
	b.WriteString("§V-A: false positives introduced by FDEs\n")
	fmt.Fprintf(&b, "FDE false positives: %d across %d binaries\n", r.TotalFPs, r.AffectedBins)
	fmt.Fprintf(&b, "  from non-contiguous functions: %d\n", r.NonContiguous)
	fmt.Fprintf(&b, "  from hand-written CFI: %d\n", r.HandWritten)
	fmt.Fprintf(&b, "symbols exhibit the same non-contiguous FPs: %v\n", r.SymbolFPsEqual)
	fmt.Fprintf(&b, "ROP gadgets at false starts: %d\n", r.ROPGadgets)
	return b.String()
}

// SectionVA measures the FDE-only false positives, their origin, and
// their ROP-gadget payload.
func SectionVA(c *Corpus) (*SectionVAResult, error) {
	out := &SectionVAResult{SymbolFPsEqual: true}
	for _, bin := range c.Bins {
		d, err := baseline.FDE(bin.Img)
		if err != nil {
			return nil, err
		}
		e := metrics.Evaluate(d.Funcs, bin.Truth)
		if e.FP > 0 {
			out.AffectedBins++
		}
		out.TotalFPs += e.FP
		for _, a := range e.FPAddrs {
			if _, isPart := bin.Truth.PartAt(a); isPart {
				out.NonContiguous++
			} else {
				out.HandWritten++
			}
		}
		out.ROPGadgets += gadget.CountAll(bin.Img, e.FPAddrs)

		// Symbols carry the same per-part entries (§V-A's observation
		// that symbols share the problem).
		symStarts := map[uint64]bool{}
		for _, s := range bin.Img.FuncSymbols() {
			symStarts[s.Addr] = true
		}
		for _, p := range bin.Truth.Parts {
			if !symStarts[p.Addr] {
				out.SymbolFPsEqual = false
			}
		}
	}
	return out, nil
}

// --- §V-C: Algorithm 1 evaluation ---

// SectionVCResult quantifies the error fixing.
type SectionVCResult struct {
	FPsBefore          int
	FPsAfter           int
	FullAccBefore      int
	FullAccAfter       int
	FullCovBefore      int
	FullCovAfter       int
	NewFNs             int
	NewFNsHarmless     int
	ResidualIncomplete int
}

// Format renders the findings paragraph.
func (r *SectionVCResult) Format() string {
	var b strings.Builder
	b.WriteString("§V-C: Algorithm 1 evaluation\n")
	fmt.Fprintf(&b, "FDE false positives: %d -> %d (%.1f%% eliminated)\n",
		r.FPsBefore, r.FPsAfter, 100*(1-safeDiv(float64(r.FPsAfter), float64(r.FPsBefore))))
	fmt.Fprintf(&b, "full-accuracy binaries: %d -> %d\n", r.FullAccBefore, r.FullAccAfter)
	fmt.Fprintf(&b, "full-coverage binaries: %d -> %d\n", r.FullCovBefore, r.FullCovAfter)
	fmt.Fprintf(&b, "new false negatives: %d (harmless tail-merge: %d)\n", r.NewFNs, r.NewFNsHarmless)
	fmt.Fprintf(&b, "residual FPs from incomplete CFI: %d\n", r.ResidualIncomplete)
	return b.String()
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// SectionVC measures Algorithm 1 on top of FDE+Rec+Xref.
func SectionVC(c *Corpus) (*SectionVCResult, error) {
	out := &SectionVCResult{}
	for _, bin := range c.Bins {
		img := bin.Img.Strip()
		before, err := core.Analyze(img, core.Strategy{Recursive: true, Xref: true})
		if err != nil {
			return nil, err
		}
		after, err := core.Analyze(img, core.FETCH)
		if err != nil {
			return nil, err
		}
		eb := metrics.Evaluate(before.Funcs, bin.Truth)
		ea := metrics.Evaluate(after.Funcs, bin.Truth)
		out.FPsBefore += eb.FP
		out.FPsAfter += ea.FP
		if eb.FullAccuracy() {
			out.FullAccBefore++
		}
		if ea.FullAccuracy() {
			out.FullAccAfter++
		}
		if eb.FullCoverage() {
			out.FullCovBefore++
		}
		if ea.FullCoverage() {
			out.FullCovAfter++
		}
		out.NewFNs += ea.FN - eb.FN
		for _, a := range ea.FNAddrs {
			if _, merged := after.Merged[a]; merged {
				out.NewFNsHarmless++
			}
		}
		for _, a := range ea.FPAddrs {
			if p, ok := bin.Truth.PartAt(a); ok && p.IncompleteCFI {
				out.ResidualIncomplete++
			}
		}
	}
	return out, nil
}
