// Package eval reproduces every table and figure of the paper's
// evaluation on synthesized corpora: the dataset tables (I, II), the
// coverage study (§IV, Figure 5), the accuracy study (§V), the tool
// comparison (Table III), the stack-height comparison (Table IV), and
// the efficiency table (V). Each driver returns structured results
// plus a formatted text rendering, and is wired to both cmd/evaluate
// and the bench harness.
//
// Corpus generation and every per-binary driver loop fan out over a
// bounded worker pool (internal/pool) sized by Corpus.Jobs. Parallel
// runs render byte-identical output to sequential ones — results are
// collected in corpus order and folded sequentially — so the
// evaluation stays a faithful reproduction at any concurrency.
package eval

import (
	"context"
	"fmt"

	"fetch/internal/elfx"
	"fetch/internal/groundtruth"
	"fetch/internal/pool"
	"fetch/internal/synth"
)

// Binary is one generated corpus member.
type Binary struct {
	Spec  synth.BinarySpec
	Img   *elfx.Image
	Truth *groundtruth.Truth
}

// Corpus is a generated self-built corpus (Table II shape).
type Corpus struct {
	Bins []*Binary
	// Jobs bounds the per-binary concurrency of the driver loops;
	// non-positive means one worker per available CPU. Any value
	// yields output identical to Jobs = 1.
	Jobs int
}

// BuildSelfBuilt generates the self-built corpus at the given scale,
// using one generation worker per available CPU.
func BuildSelfBuilt(scale float64, seed int64) (*Corpus, error) {
	return BuildSelfBuiltJobs(scale, seed, 0)
}

// BuildSelfBuiltJobs is BuildSelfBuilt with an explicit worker count
// (non-positive means one per available CPU). Generation is seeded per
// binary, so the corpus is identical at every worker count. The
// returned corpus keeps jobs as its driver concurrency.
func BuildSelfBuiltJobs(scale float64, seed int64, jobs int) (*Corpus, error) {
	specs := synth.SelfBuiltCorpus(scale, seed)
	bins, err := pool.Values(pool.Map(context.Background(), jobs, specs,
		func(_ context.Context, _ int, sp synth.BinarySpec) (*Binary, error) {
			img, truth, err := synth.Generate(sp.Config)
			if err != nil {
				return nil, fmt.Errorf("eval: generating %s: %w", sp.Config.Name, err)
			}
			return &Binary{Spec: sp, Img: img, Truth: truth}, nil
		}))
	if err != nil {
		return nil, err
	}
	return &Corpus{Bins: bins, Jobs: jobs}, nil
}

// overBins computes fn for every binary with at most jobs workers and
// returns the per-binary values in input order, failing with the first
// error in input order. Drivers fold the returned slice sequentially,
// which keeps their rendered output independent of the worker count.
func overBins[R any](jobs int, bins []*Binary, fn func(*Binary) (R, error)) ([]R, error) {
	return pool.Values(pool.Map(context.Background(), jobs, bins,
		func(_ context.Context, _ int, b *Binary) (R, error) {
			return fn(b)
		}))
}

// ByOpt partitions the corpus by optimization level, in paper order.
func (c *Corpus) ByOpt() map[synth.Opt][]*Binary {
	out := make(map[synth.Opt][]*Binary, 4)
	for _, b := range c.Bins {
		out[b.Spec.Config.Opt] = append(out[b.Spec.Config.Opt], b)
	}
	return out
}

// TotalFuncs counts true functions across the corpus.
func (c *Corpus) TotalFuncs() int {
	n := 0
	for _, b := range c.Bins {
		n += len(b.Truth.Funcs)
	}
	return n
}
