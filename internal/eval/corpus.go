// Package eval reproduces every table and figure of the paper's
// evaluation on synthesized corpora: the dataset tables (I, II), the
// coverage study (§IV, Figure 5), the accuracy study (§V), the tool
// comparison (Table III), the stack-height comparison (Table IV), and
// the efficiency table (V). Each driver returns structured results
// plus a formatted text rendering, and is wired to both cmd/evaluate
// and the bench harness.
package eval

import (
	"fmt"

	"fetch/internal/elfx"
	"fetch/internal/groundtruth"
	"fetch/internal/synth"
)

// Binary is one generated corpus member.
type Binary struct {
	Spec  synth.BinarySpec
	Img   *elfx.Image
	Truth *groundtruth.Truth
}

// Corpus is a generated self-built corpus (Table II shape).
type Corpus struct {
	Bins []*Binary
}

// BuildSelfBuilt generates the self-built corpus at the given scale.
func BuildSelfBuilt(scale float64, seed int64) (*Corpus, error) {
	specs := synth.SelfBuiltCorpus(scale, seed)
	c := &Corpus{Bins: make([]*Binary, 0, len(specs))}
	for _, sp := range specs {
		img, truth, err := synth.Generate(sp.Config)
		if err != nil {
			return nil, fmt.Errorf("eval: generating %s: %w", sp.Config.Name, err)
		}
		c.Bins = append(c.Bins, &Binary{Spec: sp, Img: img, Truth: truth})
	}
	return c, nil
}

// ByOpt partitions the corpus by optimization level, in paper order.
func (c *Corpus) ByOpt() map[synth.Opt][]*Binary {
	out := make(map[synth.Opt][]*Binary, 4)
	for _, b := range c.Bins {
		out[b.Spec.Config.Opt] = append(out[b.Spec.Config.Opt], b)
	}
	return out
}

// TotalFuncs counts true functions across the corpus.
func (c *Corpus) TotalFuncs() int {
	n := 0
	for _, b := range c.Bins {
		n += len(b.Truth.Funcs)
	}
	return n
}
