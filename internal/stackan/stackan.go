// Package stackan provides the stack-height analyses compared in
// Table IV of the paper. The CFI-recorded heights (package ehframe) are
// the baseline; this package implements:
//
//   - Precise: a CFG-based dataflow analysis used by Algorithm 1's
//     ablation variant,
//   - AngrStyle and DyninstStyle: deliberately degraded analyses
//     reproducing the incompleteness and inaccuracy classes the paper
//     measures ("side effects of other errors and defects of
//     engineering", §V-B) — mis-modeled enter/leave and unresolved
//     jump tables.
package stackan

import (
	"fetch/internal/arch"
	"fetch/internal/disasm"
	"fetch/internal/elfx"
)

// Height is an analysis result at one instruction address: the stack
// height (bytes pushed since function entry) holding immediately
// before the instruction executes.
type Height struct {
	H     int64
	Known bool
}

// Style selects one of the analysis variants.
type Style uint8

// Analysis styles.
const (
	Precise Style = iota + 1
	AngrStyle
	DyninstStyle
)

// String names the style.
func (s Style) String() string {
	switch s {
	case Precise:
		return "precise"
	case AngrStyle:
		return "angr"
	case DyninstStyle:
		return "dyninst"
	}
	return "?"
}

// instLimit mirrors real tools' per-function engineering caps; beyond
// it the degraded analyses stop (recall loss).
const (
	angrInstLimit    = 96
	dyninstInstLimit = 48
	preciseInstLimit = 4096
)

// jtProbeOpts is the bounded jump-table resolution walk configuration.
var jtProbeOpts = disasm.Options{ResolveJumpTables: true, MaxInsts: 256}

// Analyze computes per-instruction heights for the function spanning
// [start, end).
func Analyze(img *elfx.Image, start, end uint64, style Style) map[uint64]Height {
	return AnalyzeWithSession(nil, img, start, end, style)
}

// AnalyzeWithSession is Analyze with an optional shared disassembly
// session: the jump-table resolution probe then reuses the binary's
// decode cache across functions and callers (tailcall's static-height
// ablation, the Table IV driver) instead of re-decoding from scratch.
// Results are byte-identical with or without a session.
func AnalyzeWithSession(sess *disasm.Session, img *elfx.Image, start, end uint64, style Style) map[uint64]Height {
	isa := img.ISA()
	out := make(map[uint64]Height)
	// The resolution walk depends only on the function start, so one
	// probe serves every indirect jump of the function.
	var jtRes *disasm.Result
	jumpTable := func() *disasm.Result {
		if jtRes == nil {
			if sess != nil {
				// Probe leaves committed state untouched, so no fork is
				// needed for this speculative walk.
				jtRes = sess.Probe([]uint64{start}, jtProbeOpts)
			} else {
				jtRes = disasm.Recursive(img, []uint64{start}, jtProbeOpts)
			}
		}
		return jtRes
	}
	limit := preciseInstLimit
	switch style {
	case AngrStyle:
		limit = angrInstLimit
	case DyninstStyle:
		limit = dyninstInstLimit
	}

	type state struct {
		addr uint64
		h    int64
		ok   bool
	}
	work := []state{{addr: start, h: 0, ok: true}}
	steps := 0
	// enteredFrame tracks a recognizable rbp-framing prologue so the
	// precise analysis can model leave.
	enteredFrame := false

	for len(work) > 0 {
		st := work[len(work)-1]
		work = work[:len(work)-1]
		for {
			if steps >= limit {
				return out
			}
			if st.addr < start || st.addr >= end {
				break
			}
			if prev, seen := out[st.addr]; seen {
				if prev.Known && st.ok && prev.H != st.h {
					// Join conflict. Precise and Dyninst mark the
					// location unknown; the angr variant keeps the
					// first value seen (its inaccuracy class).
					if style != AngrStyle {
						out[st.addr] = Height{Known: false}
					}
				}
				break
			}
			window, ok := img.BytesToSectionEnd(st.addr)
			if !ok {
				break
			}
			in, err := isa.Decode(window, st.addr)
			if err != nil {
				break
			}
			steps++
			out[st.addr] = Height{H: st.h, Known: st.ok}

			// Effect of the instruction on rsp (negative = stack grows).
			var delta int64
			known := true
			switch {
			case in.Op == arch.OpEnter:
				if style == DyninstStyle {
					// Dyninst-style mis-models enter as a bare push.
					delta = -8
				} else {
					delta, _ = isa.StackDelta(&in)
				}
				enteredFrame = true
			case in.Op == arch.OpLeave:
				switch style {
				case AngrStyle, DyninstStyle:
					// The degraded variants mis-model leave as a bare
					// pop, ignoring the rsp = rbp restore.
					delta = 8
				default:
					if enteredFrame && st.ok {
						// rsp = rbp; pop rbp: height returns to zero.
						delta = st.h
					} else {
						known = false
					}
				}
			case in.Op == arch.OpMov && len(in.Args) == 2 &&
				in.Args[0].Kind == arch.KindReg && in.Args[0].Reg == isa.FrameReg() &&
				in.Args[1].Kind == arch.KindReg && in.Args[1].Reg == isa.SPReg():
				enteredFrame = true
			default:
				delta, known = isa.StackDelta(&in)
			}
			// Height counts bytes pushed: it moves opposite to rsp.
			nextH := st.h - delta
			nextOK := st.ok && known

			switch in.Op {
			case arch.OpJcc:
				if in.Target >= start && in.Target < end {
					work = append(work, state{addr: in.Target, h: nextH, ok: nextOK})
				}
				st = state{addr: in.Next(), h: nextH, ok: nextOK}
				continue
			case arch.OpJmp:
				if in.Target >= start && in.Target < end {
					st = state{addr: in.Target, h: nextH, ok: nextOK}
					continue
				}
			case arch.OpJmpInd:
				resolve := true
				if style == AngrStyle {
					// The angr variant only resolves tables residing
					// in data sections; inline .text tables stay
					// opaque (its incompleteness class).
					if m, ok := in.IndirectMem(); ok && m.Disp > 0 {
						if s, ok2 := img.SectionAt(uint64(m.Disp)); !ok2 || s.Flags&elfx.FlagExec != 0 {
							resolve = false
						}
					} else {
						resolve = false
					}
				}
				if resolve {
					res := jumpTable()
					for _, t := range res.JTTargets[in.Addr] {
						if t >= start && t < end {
							work = append(work, state{addr: t, h: nextH, ok: nextOK})
						}
					}
				}
			case arch.OpRet, arch.OpUd2, arch.OpHlt, arch.OpInt3:
			default:
				st = state{addr: in.Next(), h: nextH, ok: nextOK}
				continue
			}
			break
		}
	}
	return out
}
