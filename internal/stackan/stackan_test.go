package stackan

import (
	"testing"

	"fetch/internal/ehframe"
	"fetch/internal/elfx"
	"fetch/internal/synth"
	"fetch/internal/x64"
)

// asmImage builds a one-function image from assembled code.
func asmImage(t *testing.T, build func(a *x64.Asm)) (*elfx.Image, uint64, uint64) {
	t.Helper()
	var a x64.Asm
	build(&a)
	code, _, err := a.Finish()
	if err != nil {
		t.Fatalf("asm: %v", err)
	}
	im := &elfx.Image{Sections: []*elfx.Section{{
		Name: ".text", Addr: 0x1000, Data: code,
		Flags: elfx.FlagAlloc | elfx.FlagExec,
	}}}
	return im, 0x1000, 0x1000 + uint64(len(code))
}

func TestPreciseSimpleFrame(t *testing.T) {
	im, start, end := asmImage(t, func(a *x64.Asm) {
		a.PushReg(x64.RBX)            // 0x1000, h=0 before
		a.SubRSP(0x10)                // 0x1001, h=8
		a.MovRegReg(x64.RAX, x64.RDI) // 0x1005, h=24
		a.AddRSP(0x10)                // h=24
		a.PopReg(x64.RBX)             // h=8
		a.Ret()                       // h=0
	})
	h := Analyze(im, start, end, Precise)
	want := map[uint64]int64{
		0x1000: 0, 0x1001: 8, 0x1005: 24,
	}
	for addr, wh := range want {
		got, ok := h[addr]
		if !ok || !got.Known {
			t.Errorf("no height at %#x", addr)
			continue
		}
		if got.H != wh {
			t.Errorf("height at %#x = %d, want %d", addr, got.H, wh)
		}
	}
}

func TestPreciseEnterLeave(t *testing.T) {
	im, start, end := asmImage(t, func(a *x64.Asm) {
		a.Enter(0x20)                 // h=0 before; 0x28 after
		a.MovRegReg(x64.RAX, x64.RDI) // h=0x28
		a.Leave()                     // h=0x28 before, 0 after
		a.Ret()                       // h=0
	})
	h := Analyze(im, start, end, Precise)
	var retAddr uint64 = end - 1
	got, ok := h[retAddr]
	if !ok || !got.Known || got.H != 0 {
		t.Fatalf("height at ret = %+v, want 0 known", got)
	}
	_ = ok
}

func TestDyninstMisModelsEnter(t *testing.T) {
	im, start, end := asmImage(t, func(a *x64.Asm) {
		a.Enter(0x20)
		a.MovRegReg(x64.RAX, x64.RDI)
		a.Leave()
		a.Ret()
	})
	hp := Analyze(im, start, end, Precise)
	hd := Analyze(im, start, end, DyninstStyle)
	// After the enter, the dyninst variant must be wrong by 0x20.
	movAddr := start + 4
	if hp[movAddr].H == hd[movAddr].H {
		t.Fatalf("dyninst enter mis-model ineffective: both %d", hp[movAddr].H)
	}
	if hd[movAddr].H != 8 {
		t.Fatalf("dyninst height after enter = %d, want 8 (bare push)", hd[movAddr].H)
	}
}

func TestAngrKeepsFirstOnConflict(t *testing.T) {
	// Two paths reach the same block with different heights: precise
	// marks the join unknown; angr keeps the first value.
	im, start, end := asmImage(t, func(a *x64.Asm) {
		a.CmpRegImm(x64.RDI, 0)
		a.Jcc(x64.CondE, "b")
		a.PushReg(x64.RBX) // path 1: +8
		a.Label("b")
		a.MovRegReg(x64.RAX, x64.RDI) // join with conflicting heights
		a.Ret()
	})
	hp := Analyze(im, start, end, Precise)
	ha := Analyze(im, start, end, AngrStyle)
	// Find the join (the mov).
	var joinAddr uint64
	for a := start; a < end; a++ {
		if h, ok := hp[a]; ok && !h.Known {
			joinAddr = a
			break
		}
	}
	if joinAddr == 0 {
		t.Fatal("no conflicted join found by precise analysis")
	}
	if got := ha[joinAddr]; !got.Known {
		t.Fatal("angr variant should keep first value at conflict")
	}
}

func TestAgainstCFIBaseline(t *testing.T) {
	// On synthesized binaries, the precise analysis must agree with
	// CFI heights at (nearly) every location of complete-CFI
	// functions, while the degraded variants must disagree somewhere.
	cfg := synth.DefaultConfig("stack-test", 77, synth.O2, synth.GCC, synth.LangC)
	im, _, err := synth.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	eh, _ := im.Section(".eh_frame")
	sec, err := ehframe.Decode(eh.Data, eh.Addr)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	var preciseChecked, preciseWrong, angrWrong, dyninstWrong int
	for _, fde := range sec.FDEs {
		ht := fde.Heights()
		if !ht.Complete {
			continue
		}
		// Non-contiguous cold parts legitimately start at a non-zero
		// height; static analyses measure relative to their own entry,
		// so only whole functions are comparable.
		if h0, ok := ht.HeightAt(fde.PCBegin); !ok || h0 != 0 {
			continue
		}
		hp := Analyze(im, fde.PCBegin, fde.End(), Precise)
		ha := Analyze(im, fde.PCBegin, fde.End(), AngrStyle)
		hd := Analyze(im, fde.PCBegin, fde.End(), DyninstStyle)
		for addr, got := range hp {
			cfiH, ok := ht.HeightAt(addr)
			if !ok || !got.Known {
				continue
			}
			preciseChecked++
			if got.H != cfiH {
				preciseWrong++
			}
			if g, ok2 := ha[addr]; ok2 && g.Known && g.H != cfiH {
				angrWrong++
			}
			if g, ok2 := hd[addr]; ok2 && g.Known && g.H != cfiH {
				dyninstWrong++
			}
		}
	}
	if preciseChecked < 500 {
		t.Fatalf("only %d locations checked", preciseChecked)
	}
	if preciseWrong != 0 {
		t.Errorf("precise analysis wrong at %d/%d locations", preciseWrong, preciseChecked)
	}
	if angrWrong == 0 {
		t.Error("angr variant never wrong — degradation ineffective")
	}
	if dyninstWrong == 0 {
		t.Error("dyninst variant never wrong — degradation ineffective")
	}
}
