package arch

// GateEffect is the memoized first-argument classification of one
// instruction — the §IV-C error/error_at_line backward-slice step,
// generalized over the ISA's first integer argument register (rdi on
// x64, x0 on aarch64).
type GateEffect uint8

// Gate effects, in the order the session's rdi tracking expects.
const (
	// GateKeep: the instruction leaves the tracked state alone (no
	// gate-register write, or a call — calls are gated separately).
	GateKeep GateEffect = iota
	GateSetUnknown
	GateSetZero
	GateSetNonZero
)

// IsGateTest reports whether in is the entry-block self-test of the
// gate register ("test rdi, rdi" / "tst x0, x0") that marks the
// error/error_at_line shape of §IV-C. The check is structural over the
// shared operand model, so it serves every backend.
func IsGateTest(in *Inst, gate Reg) bool {
	return in.Op == OpTest && len(in.Args) == 2 &&
		in.Args[0].Kind == KindReg && in.Args[0].Reg == gate &&
		in.Args[1].Kind == KindReg && in.Args[1].Reg == gate
}

// JumpTableCtx is the window a jump-table resolver gets into the walk
// that hit the indirect jump: the already-decoded instructions before
// it, the image's data bytes, and the result sinks for what the
// resolver proved. The disassembler implements it over its committed
// result; the resolver never sees session internals.
type JumpTableCtx interface {
	// InstEndingAt returns the decoded instruction that ends exactly at
	// addr, if the walk decoded one.
	InstEndingAt(addr uint64) (*Inst, bool)
	// ReadU64 and ReadU32 read little-endian words from the image.
	ReadU64(addr uint64) (uint64, error)
	ReadU32(addr uint64) (uint32, error)
	// IsExec reports whether addr lies in an executable section.
	IsExec(addr uint64) bool
	// RecordTableRead records a data interval the resolution consulted;
	// cached verdicts are only reusable while those bytes are unchanged.
	RecordTableRead(lo, hi uint64)
	// RecordTableBase records a proven table base address so pointer
	// detection does not treat it as a function-pointer candidate.
	// Resolvers call it exactly where the historical x64 analysis did
	// (PIC tables); the caller handles the remaining idioms itself.
	RecordTableBase(table uint64)
}

// ISA is the backend interface the analysis pipeline consumes: decode,
// the register facts behind the §IV-E calling-convention rule and the
// §IV-C gate slice, per-instruction dataflow, the bounded jump-table
// analysis, and the DWARF CFI constants of the ABI. Implementations
// are stateless values, safe for concurrent use.
type ISA interface {
	// Name is the short backend name ("x64", "a64").
	Name() string
	// Machine is the ELF e_machine value the backend decodes.
	Machine() uint16
	// MaxInstLen is the longest possible instruction encoding in bytes.
	MaxInstLen() int
	// InstAlign is the instruction alignment (1 for x86-64, 4 for
	// aarch64); linear sweeps resynchronize by this stride.
	InstAlign() int

	// Decode decodes the instruction at the start of b (addr is the
	// virtual address of b[0], used to resolve PC-relative targets).
	Decode(b []byte, addr uint64) (Inst, error)

	// SPReg, FrameReg, and GateReg identify the stack pointer, the
	// conventional frame pointer, and the first integer argument
	// register (the §IV-C gate).
	SPReg() Reg
	FrameReg() Reg
	GateReg() Reg
	// ArgRegs lists the integer argument registers in call order.
	ArgRegs() []Reg
	// IsArgReg reports whether r is an integer argument register.
	IsArgReg(r Reg) bool
	// RetAddrReg returns the link register carrying the return address
	// at function entry, when the ABI uses one (x30 on aarch64). ok is
	// false when the return address lives on the stack (x86-64); the
	// §IV-E validation treats a link register as initialized at entry.
	RetAddrReg() (r Reg, ok bool)
	// RegCount is the size of the numbered GPR file; validation loops
	// range over [0, RegCount).
	RegCount() int

	// Reads and Writes return the register sets the instruction reads
	// and writes under the backend's dataflow model (see the x64
	// package for the modeling choices mirrored from §IV-E).
	Reads(in *Inst) RegSet
	Writes(in *Inst) RegSet
	// StackDelta returns the change the instruction applies to the
	// stack pointer and whether it is statically known.
	StackDelta(in *Inst) (delta int64, known bool)
	// GateEffect classifies the instruction's effect on the tracked
	// first-argument state.
	GateEffect(in *Inst) GateEffect

	// ResolveJumpTable runs the backend's bounded jump-table idiom
	// analysis (§IV-C) for the indirect jump jmp, reading context and
	// recording findings through ctx. maxEntries caps the table size.
	// A nil/empty return means "unresolved" — the safe choice.
	ResolveJumpTable(ctx JumpTableCtx, jmp *Inst, maxEntries int64) []uint64

	// CFISPReg is the DWARF register number of the stack pointer in
	// this ABI's CFI (7 on x86-64, 31 on aarch64); CFIRAReg is the
	// return-address column (16 / 30). CFIEntryOffset is the CFA offset
	// from SP at function entry (8 on x86-64 — the pushed return
	// address — and 0 on aarch64), which is also the bias between a CFA
	// offset and the paper's §V-B "stack height".
	CFISPReg() uint64
	CFIRAReg() uint64
	CFIEntryOffset() int64
}

// registry maps ELF e_machine values to registered backends. Backends
// register from init functions; lookups start only after program init,
// so no locking is needed.
var (
	registry   = map[uint16]ISA{}
	defaultISA ISA
)

// Register adds a backend under its Machine value.
func Register(isa ISA) { registry[isa.Machine()] = isa }

// SetDefault sets the backend ForMachine(0) resolves to — the ISA of
// images that never declared a machine (hand-built test images).
func SetDefault(isa ISA) { defaultISA = isa }

// ForMachine returns the backend registered for an ELF e_machine
// value. Machine 0 resolves to the default backend (x86-64 in this
// codebase); unknown machines return nil — loaders reject them before
// any analysis runs.
func ForMachine(machine uint16) ISA {
	if machine == 0 {
		return defaultISA
	}
	return registry[machine]
}
