// Package arch defines the ISA-neutral instruction model and the ISA
// backend interface the analysis pipeline is written against.
//
// The paper's approach (eh_frame-anchored function detection) is
// ISA-generic: FDEs, CFI programs, and the strategy ladder say nothing
// x86-specific. What the analyses actually consume of an instruction
// set is narrow and enumerable — decode with exact lengths, semantic
// classification (control-flow kind, targets, terminators, padding),
// register read/write sets for the §IV-E calling-convention rule,
// stack-pointer deltas, pointer-sized constant materialization, the
// first-argument gate used by §IV-C conditional non-return inference,
// and the bounded jump-table idioms of §IV-C. This package captures
// exactly that surface: the Inst model every backend decodes into, and
// the ISA interface every backend implements.
//
// Backends register themselves by ELF e_machine value in an init
// function (see Register); elfx.Image.ISA dispatches on the loaded
// binary's machine. Package arch imports nothing from the rest of the
// module, so backends and analyses never cycle.
package arch

import "fmt"

// Op is the semantic class of a decoded instruction. Instructions the
// analyses do not need in detail decode to OpOther with a correct length.
//
// The classes are shared across backends: an aarch64 BL decodes to
// OpCall, RET to OpRet, BRK to OpInt3, and so on — the walkers switch
// on these classes and never on encodings. Classes with no counterpart
// on some ISA are simply never produced by that backend's decoder.
type Op uint8

// Semantic opcode classes. Enum starts at one so the zero value is
// distinguishable from a real class.
const (
	OpInvalid Op = iota
	OpAdd
	OpSub
	OpAdc
	OpSbb
	OpAnd
	OpOr
	OpXor
	OpCmp
	OpTest
	OpMov
	OpMovsxd
	OpMovzx
	OpMovsx
	OpLea
	OpPush
	OpPop
	OpXchg
	OpInc
	OpDec
	OpNeg
	OpNot
	OpMul
	OpImul
	OpDiv
	OpIdiv
	OpShl
	OpShr
	OpSar
	OpRol
	OpRor
	OpCall    // direct near call, rel32 / BL
	OpCallInd // indirect call through register or memory / BLR
	OpJmp     // direct unconditional jump / B
	OpJmpInd  // indirect jump through register or memory / BR
	OpJcc     // conditional jump / B.cond, CBZ, TBZ
	OpRet
	OpLeave
	OpEnter
	OpNop
	OpInt3
	OpInt
	OpUd2
	OpHlt
	OpSyscall
	OpCpuid
	OpEndbr64 // CET/BTI landing pads
	OpSetcc
	OpCmovcc
	OpCwd // cdq/cqo family
	OpBt
	OpBsf
	OpBsr
	OpPopcnt
	OpBswap
	OpXadd
	OpCmpxchg
	OpMovStr // string moves and friends
	OpFpu    // x87 escape range
	OpSse    // SIMD/FP ranges, treated opaquely
	OpOther
)

var opNames = map[Op]string{
	OpInvalid: "invalid", OpAdd: "add", OpSub: "sub", OpAdc: "adc",
	OpSbb: "sbb", OpAnd: "and", OpOr: "or", OpXor: "xor", OpCmp: "cmp",
	OpTest: "test", OpMov: "mov", OpMovsxd: "movsxd", OpMovzx: "movzx",
	OpMovsx: "movsx", OpLea: "lea", OpPush: "push", OpPop: "pop",
	OpXchg: "xchg", OpInc: "inc", OpDec: "dec", OpNeg: "neg", OpNot: "not",
	OpMul: "mul", OpImul: "imul", OpDiv: "div", OpIdiv: "idiv",
	OpShl: "shl", OpShr: "shr", OpSar: "sar", OpRol: "rol", OpRor: "ror",
	OpCall: "call", OpCallInd: "call*", OpJmp: "jmp", OpJmpInd: "jmp*",
	OpJcc: "jcc", OpRet: "ret", OpLeave: "leave", OpEnter: "enter",
	OpNop: "nop", OpInt3: "int3", OpInt: "int", OpUd2: "ud2", OpHlt: "hlt",
	OpSyscall: "syscall", OpCpuid: "cpuid", OpEndbr64: "endbr64",
	OpSetcc: "setcc", OpCmovcc: "cmovcc", OpCwd: "cwd", OpBt: "bt",
	OpBsf: "bsf", OpBsr: "bsr", OpPopcnt: "popcnt", OpBswap: "bswap",
	OpXadd: "xadd", OpCmpxchg: "cmpxchg", OpMovStr: "movs", OpFpu: "fpu",
	OpSse: "sse", OpOther: "other",
}

// String returns a short mnemonic for the class.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Cond is a semantic condition code. The numbering follows the x86
// nibble encoding; backends whose hardware encodes conditions
// differently (aarch64) translate to these values at decode time, so
// the generic jump-table bound matcher can test CondA/CondAE on any
// ISA.
type Cond uint8

// Condition codes in x86 hardware encoding order.
const (
	CondO  Cond = 0x0
	CondNO Cond = 0x1
	CondB  Cond = 0x2
	CondAE Cond = 0x3
	CondE  Cond = 0x4
	CondNE Cond = 0x5
	CondBE Cond = 0x6
	CondA  Cond = 0x7
	CondS  Cond = 0x8
	CondNS Cond = 0x9
	CondP  Cond = 0xA
	CondNP Cond = 0xB
	CondL  Cond = 0xC
	CondGE Cond = 0xD
	CondLE Cond = 0xE
	CondG  Cond = 0xF
)

var condNames = [...]string{
	"o", "no", "b", "ae", "e", "ne", "be", "a",
	"s", "ns", "p", "np", "l", "ge", "le", "g",
}

// String returns the condition suffix ("e", "ne", ...).
func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond(%d)", uint8(c))
}

// Reg identifies a general-purpose register by its ISA-local number.
// On x64 the numbering matches the hardware encoding (RAX=0..R15=15,
// RIP=16 as a pseudo-register); on aarch64 it is X0=0..X30=30 with
// SP=31. Register numbers are meaningful only relative to an ISA.
type Reg uint8

// RegNone marks an absent base or index register.
const RegNone Reg = 0xFF

// regSetCap bounds the registers a RegSet can hold; Add ignores
// numbers at or beyond it (RegNone in particular).
const regSetCap = 64

var regNames = [...]string{
	"rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
	"r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15", "rip",
}

// String returns a diagnostic name. Registers 0..16 use the AMD64
// spellings (the dominant backend); other numbers print as reg(N).
// Backends with different naming provide their own helpers for
// human-facing output.
func (r Reg) String() string {
	if r == RegNone {
		return "none"
	}
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("reg(%d)", uint8(r))
}

// RegSet is a bitmask over up to 64 general-purpose registers.
type RegSet uint64

// Add returns s with r added; numbers outside the set capacity
// (RegNone in particular) are ignored.
func (s RegSet) Add(r Reg) RegSet {
	if r >= regSetCap {
		return s
	}
	return s | 1<<r
}

// Has reports whether r is in the set.
func (s RegSet) Has(r Reg) bool {
	return r < regSetCap && s&(1<<r) != 0
}

// Union returns the union of both sets.
func (s RegSet) Union(t RegSet) RegSet { return s | t }

// String lists the members for debugging.
func (s RegSet) String() string {
	out := ""
	for r := Reg(0); r < regSetCap; r++ {
		if s.Has(r) {
			if out != "" {
				out += ","
			}
			out += r.String()
		}
	}
	return "{" + out + "}"
}

// OperandKind distinguishes the three operand shapes the decoders model.
type OperandKind uint8

// Operand kinds.
const (
	KindNone OperandKind = iota
	KindReg
	KindImm
	KindMem
)

// MemRef is a decoded memory operand: [Base + Index*Scale + Disp], or
// [PC + Disp] when RIPRel is set (x64 RIP-relative addressing; aarch64
// literal loads use the same form with the PC-page semantics resolved
// into Disp by the decoder).
type MemRef struct {
	Base   Reg
	Index  Reg
	Scale  uint8 // 1, 2, 4 or 8
	Disp   int64
	RIPRel bool
}

// Operand is a single decoded operand.
type Operand struct {
	Kind OperandKind
	Reg  Reg
	Imm  int64
	Mem  MemRef
}

// RegOp constructs a register operand.
func RegOp(r Reg) Operand { return Operand{Kind: KindReg, Reg: r} }

// ImmOp constructs an immediate operand.
func ImmOp(v int64) Operand { return Operand{Kind: KindImm, Imm: v} }

// MemOp constructs a memory operand.
func MemOp(m MemRef) Operand { return Operand{Kind: KindMem, Mem: m} }

// Inst is a decoded instruction in the shared model.
type Inst struct {
	Addr uint64 // virtual address of the first byte
	Len  int    // total encoded length in bytes

	Op   Op
	Cond Cond // valid for OpJcc, OpSetcc, OpCmovcc

	// Args holds decoded operands, destination first, for classified
	// instructions. Unclassified (OpOther/OpSse/OpFpu) instructions
	// carry no operands.
	Args []Operand

	// Target is the absolute destination of a direct call/jmp/jcc.
	HasTarget bool
	Target    uint64

	// OpSize is the operand size in bytes (1, 2, 4 or 8).
	OpSize uint8

	// Enc is the raw encoding word for fixed-width ISAs (aarch64), so a
	// backend's semantic methods can re-extract fields the generic
	// operand model does not carry. Variable-length backends leave it 0.
	Enc uint32

	// Classified reports whether semantic information (Args,
	// reads/writes, stack delta) is trustworthy for this instruction.
	Classified bool
}

// IsBranch reports whether the instruction transfers control anywhere
// other than the next instruction (excluding calls, which return).
func (i *Inst) IsBranch() bool {
	switch i.Op {
	case OpJmp, OpJmpInd, OpJcc, OpRet:
		return true
	}
	return false
}

// IsCall reports whether the instruction is a direct or indirect call.
func (i *Inst) IsCall() bool { return i.Op == OpCall || i.Op == OpCallInd }

// Terminates reports whether fall-through past this instruction is
// impossible: unconditional jumps, returns, and traps.
func (i *Inst) Terminates() bool {
	switch i.Op {
	case OpJmp, OpJmpInd, OpRet, OpUd2, OpHlt:
		return true
	}
	return false
}

// IsPadding reports whether the instruction is inter-function padding:
// any NOP form or a trap-padding instruction (int3, BRK).
func (i *Inst) IsPadding() bool { return i.Op == OpNop || i.Op == OpInt3 }

// Next returns the address of the following instruction.
func (i *Inst) Next() uint64 { return i.Addr + uint64(i.Len) }

// String renders a compact disassembly-ish form for diagnostics.
func (i *Inst) String() string {
	s := fmt.Sprintf("%#x: %s", i.Addr, i.Op)
	if i.Op == OpJcc {
		s = fmt.Sprintf("%#x: j%s", i.Addr, i.Cond)
	}
	if i.HasTarget {
		s += fmt.Sprintf(" %#x", i.Target)
	}
	for n, a := range i.Args {
		sep := " "
		if n > 0 {
			sep = ", "
		}
		switch a.Kind {
		case KindReg:
			s += sep + a.Reg.String()
		case KindImm:
			s += sep + fmt.Sprintf("%#x", a.Imm)
		case KindMem:
			m := a.Mem
			if m.RIPRel {
				s += sep + fmt.Sprintf("[rip%+#x]", m.Disp)
			} else {
				s += sep + fmt.Sprintf("[%s+%s*%d%+#x]", m.Base, m.Index, m.Scale, m.Disp)
			}
		}
	}
	return s
}

// Interval is a half-open byte range [Lo, Hi).
type Interval struct {
	Lo, Hi uint64
}

// Overlaps reports whether the interval intersects [lo, hi).
func (iv Interval) Overlaps(lo, hi uint64) bool {
	return iv.Lo < hi && lo < iv.Hi
}
