package arch

// ISA-generic dataflow facts: these inspect only the shared operand
// model (no register numbering), so they are methods on Inst rather
// than part of the ISA interface. Register-numbered facts —
// reads/writes, stack deltas, the gate effect — live behind arch.ISA.

// Constants returns the absolute-address constants this instruction
// materializes: immediates wide enough to be pointers and resolved
// PC-relative addresses. These feed the function-pointer super-set
// collection of §IV-E.
func (i *Inst) Constants() []uint64 {
	if !i.Classified {
		return nil
	}
	var out []uint64
	for _, a := range i.Args {
		switch a.Kind {
		case KindImm:
			if a.Imm > 0x1000 { // skip tiny values that cannot be text addresses
				out = append(out, uint64(a.Imm))
			}
		case KindMem:
			if a.Mem.RIPRel {
				out = append(out, uint64(int64(i.Addr)+int64(i.Len)+a.Mem.Disp))
			} else if a.Mem.Disp > 0x1000 {
				out = append(out, uint64(a.Mem.Disp))
			}
		}
	}
	return out
}

// IndirectMem returns the memory operand of an indirect jump or call and
// whether there is one (register-indirect forms return false).
func (i *Inst) IndirectMem() (MemRef, bool) {
	if (i.Op == OpJmpInd || i.Op == OpCallInd) && len(i.Args) == 1 &&
		i.Args[0].Kind == KindMem {
		return i.Args[0].Mem, true
	}
	return MemRef{}, false
}
