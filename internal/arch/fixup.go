package arch

// FixupKind describes how a linker must patch a fixup site. The kinds
// are the union of what the backends' assemblers emit; each backend
// produces only its own subset, and the synthetic linker's patch step
// dispatches on the kind, not on the ISA.
type FixupKind uint8

// Fixup kinds.
const (
	// FixRel32: *site = sym+addend - (chunkBase + End), i.e. a
	// PC-relative 32-bit displacement (x86-64 call/jmp rel32,
	// RIP-relative addressing).
	FixRel32 FixupKind = iota + 1
	// FixAbs32: *site = sym+addend as a zero-extended 32-bit absolute
	// address (jump-table bases in non-PIC code).
	FixAbs32
	// FixAbs64: *site = sym+addend as a full 64-bit absolute address
	// (data-section function pointers).
	FixAbs64

	// FixA64Branch26: aarch64 B/BL — imm26 word-offset from the
	// instruction address, patched into bits [25:0].
	FixA64Branch26
	// FixA64Cond19: aarch64 B.cond/CBZ/CBNZ/LDR-literal — imm19
	// word-offset from the instruction address, bits [23:5].
	FixA64Cond19
	// FixA64Page21: aarch64 ADRP — 4 KiB page delta from the
	// instruction's page, split across immlo [30:29] and immhi [23:5].
	FixA64Page21
	// FixA64Lo12: aarch64 ADD/LDR :lo12: — the low 12 bits of the
	// target address, bits [21:10].
	FixA64Lo12
	// FixA64Adr21: aarch64 ADR — the exact byte delta from the
	// instruction address (±1 MiB), split across immlo [30:29] and
	// immhi [23:5]. Unlike ADRP this materializes the target address
	// itself, so the §IV-E constant harvest sees it directly.
	FixA64Adr21
)

// Fixup is an unresolved reference to a symbol defined outside the
// assembled chunk. Offsets are relative to the chunk start; the x86-64
// kinds patch a little-endian 4- or 8-byte field at Off, the aarch64
// kinds patch bit fields of the 4-byte instruction word at Off.
type Fixup struct {
	Kind   FixupKind
	Off    int    // offset of the field (or instruction word) to patch
	End    int    // offset just past the instruction (for PC-relative)
	Sym    string // target symbol
	Addend int64
}
