// Conformance suite for arch.ISA backends: every registered backend
// must satisfy the same structural contract and decode its golden
// encodings into the shared semantic classes. A new backend plugs in
// by adding one goldenSet — the harness itself is ISA-neutral.
package arch_test

import (
	"testing"

	"fetch/internal/a64"
	"fetch/internal/arch"
	"fetch/internal/x64"
)

// goldenInst is one encoding with its expected classification.
type goldenInst struct {
	name    string
	enc     []byte
	op      arch.Op
	cond    arch.Cond // checked only for OpJcc
	gate    arch.GateEffect
	delta   int64 // expected stack delta when deltaOK
	deltaOK bool
}

// goldenSet is one backend's conformance vector: the canonical
// encodings of the shapes the pipeline keys on.
type goldenSet struct {
	isa arch.ISA

	prologue  []goldenInst // the frame-establishing entry shape, in order
	transfers []goldenInst // call/jmp/jcc/ret and indirect forms
	gates     []goldenInst // §IV-C gate definitions and the self-test
	padding   []goldenInst // inter-function padding words
}

func x64GoldenSet() goldenSet {
	return goldenSet{
		isa: x64.Arch,
		prologue: []goldenInst{
			{name: "endbr64", enc: []byte{0xF3, 0x0F, 0x1E, 0xFA}, op: arch.OpEndbr64, deltaOK: true},
			{name: "push rbp", enc: []byte{0x55}, op: arch.OpPush, delta: -8, deltaOK: true},
			{name: "mov rbp, rsp", enc: []byte{0x48, 0x89, 0xE5}, op: arch.OpMov, deltaOK: true},
			{name: "sub rsp, 0x20", enc: []byte{0x48, 0x83, 0xEC, 0x20}, op: arch.OpSub, delta: -0x20, deltaOK: true},
			{name: "pop rbp", enc: []byte{0x5D}, op: arch.OpPop, delta: 8, deltaOK: true},
		},
		transfers: []goldenInst{
			{name: "call rel32", enc: []byte{0xE8, 0, 0, 0, 0}, op: arch.OpCall, deltaOK: true},
			{name: "jmp rel32", enc: []byte{0xE9, 0, 0, 0, 0}, op: arch.OpJmp, deltaOK: true},
			{name: "ja rel32", enc: []byte{0x0F, 0x87, 0, 0, 0, 0}, op: arch.OpJcc, cond: arch.CondA, deltaOK: true},
			{name: "jae rel8", enc: []byte{0x73, 0}, op: arch.OpJcc, cond: arch.CondAE, deltaOK: true},
			{name: "jmp rax", enc: []byte{0xFF, 0xE0}, op: arch.OpJmpInd, deltaOK: true},
			{name: "call rax", enc: []byte{0xFF, 0xD0}, op: arch.OpCallInd, deltaOK: true},
			{name: "ret", enc: []byte{0xC3}, op: arch.OpRet, delta: 8, deltaOK: true},
			{name: "ud2", enc: []byte{0x0F, 0x0B}, op: arch.OpUd2, deltaOK: true},
		},
		gates: []goldenInst{
			{name: "xor edi, edi", enc: []byte{0x31, 0xFF}, op: arch.OpXor, gate: arch.GateSetZero, deltaOK: true},
			{name: "mov edi, 7", enc: []byte{0xBF, 7, 0, 0, 0}, op: arch.OpMov, gate: arch.GateSetNonZero, deltaOK: true},
			{name: "mov edi, 0", enc: []byte{0xBF, 0, 0, 0, 0}, op: arch.OpMov, gate: arch.GateSetZero, deltaOK: true},
			{name: "mov rdi, rax", enc: []byte{0x48, 0x89, 0xC7}, op: arch.OpMov, gate: arch.GateSetUnknown, deltaOK: true},
			{name: "test rdi, rdi", enc: []byte{0x48, 0x85, 0xFF}, op: arch.OpTest, gate: arch.GateKeep, deltaOK: true},
		},
		padding: []goldenInst{
			{name: "nop", enc: []byte{0x90}, op: arch.OpNop, deltaOK: true},
			{name: "nopw", enc: []byte{0x66, 0x90}, op: arch.OpNop, deltaOK: true},
			{name: "int3", enc: []byte{0xCC}, op: arch.OpInt3, deltaOK: true},
		},
	}
}

func a64GoldenSet() goldenSet {
	return goldenSet{
		isa: a64.Arch,
		prologue: []goldenInst{
			{name: "bti c", enc: []byte{0x5F, 0x24, 0x03, 0xD5}, op: arch.OpEndbr64, deltaOK: true},
			{name: "stp x29, x30, [sp, #-16]!", enc: []byte{0xFD, 0x7B, 0xBF, 0xA9}, op: arch.OpPush, delta: -16, deltaOK: true},
			{name: "mov x29, sp", enc: []byte{0xFD, 0x03, 0x00, 0x91}, op: arch.OpMov, deltaOK: true},
			{name: "sub sp, sp, #0x20", enc: []byte{0xFF, 0x83, 0x00, 0xD1}, op: arch.OpSub, delta: -0x20, deltaOK: true},
			{name: "ldp x29, x30, [sp], #16", enc: []byte{0xFD, 0x7B, 0xC1, 0xA8}, op: arch.OpPop, delta: 16, deltaOK: true},
		},
		transfers: []goldenInst{
			{name: "bl", enc: []byte{0x10, 0x00, 0x00, 0x94}, op: arch.OpCall, deltaOK: true},
			{name: "b", enc: []byte{0x10, 0x00, 0x00, 0x14}, op: arch.OpJmp, deltaOK: true},
			{name: "b.hi", enc: []byte{0x48, 0x00, 0x00, 0x54}, op: arch.OpJcc, cond: arch.CondA, deltaOK: true},
			{name: "b.hs", enc: []byte{0x42, 0x00, 0x00, 0x54}, op: arch.OpJcc, cond: arch.CondAE, deltaOK: true},
			{name: "br x2", enc: []byte{0x40, 0x00, 0x1F, 0xD6}, op: arch.OpJmpInd, deltaOK: true},
			{name: "blr x2", enc: []byte{0x40, 0x00, 0x3F, 0xD6}, op: arch.OpCallInd, deltaOK: true},
			{name: "ret", enc: []byte{0xC0, 0x03, 0x5F, 0xD6}, op: arch.OpRet, deltaOK: true},
			{name: "udf", enc: []byte{0x00, 0x00, 0x00, 0x00}, op: arch.OpUd2, deltaOK: true},
		},
		gates: []goldenInst{
			{name: "movz x0, #0", enc: []byte{0x00, 0x00, 0x80, 0xD2}, op: arch.OpMov, gate: arch.GateSetZero, deltaOK: true},
			{name: "movz x0, #7", enc: []byte{0xE0, 0x00, 0x80, 0xD2}, op: arch.OpMov, gate: arch.GateSetNonZero, deltaOK: true},
			{name: "movk x0, #1, lsl #16", enc: []byte{0x20, 0x00, 0xA0, 0xF2}, op: arch.OpOr, gate: arch.GateSetUnknown, deltaOK: true},
			{name: "mov x0, x1", enc: []byte{0xE0, 0x03, 0x01, 0xAA}, op: arch.OpMov, gate: arch.GateSetUnknown, deltaOK: true},
			{name: "tst x0, x0", enc: []byte{0x1F, 0x00, 0x00, 0xEA}, op: arch.OpTest, gate: arch.GateKeep, deltaOK: true},
		},
		padding: []goldenInst{
			{name: "nop", enc: []byte{0x1F, 0x20, 0x03, 0xD5}, op: arch.OpNop, deltaOK: true},
			{name: "brk #0", enc: []byte{0x00, 0x00, 0x20, 0xD4}, op: arch.OpInt3, deltaOK: true},
		},
	}
}

func goldenSets() []goldenSet { return []goldenSet{x64GoldenSet(), a64GoldenSet()} }

// TestConformanceStructure checks the structural contract every
// backend must satisfy: registry round-trip, sane geometry, and
// coherent register facts.
func TestConformanceStructure(t *testing.T) {
	for _, g := range goldenSets() {
		isa := g.isa
		t.Run(isa.Name(), func(t *testing.T) {
			if arch.ForMachine(isa.Machine()) == nil {
				t.Fatalf("backend %s not registered for machine %d", isa.Name(), isa.Machine())
			}
			if got := arch.ForMachine(isa.Machine()); got.Name() != isa.Name() {
				t.Errorf("registry resolves machine %d to %s", isa.Machine(), got.Name())
			}
			if isa.InstAlign() < 1 || isa.MaxInstLen() < isa.InstAlign() {
				t.Errorf("geometry: align=%d max=%d", isa.InstAlign(), isa.MaxInstLen())
			}
			if isa.RegCount() < 8 {
				t.Errorf("register file too small: %d", isa.RegCount())
			}
			if isa.SPReg() == isa.FrameReg() || isa.SPReg() == isa.GateReg() {
				t.Errorf("SP/frame/gate registers collide: %v/%v/%v",
					isa.SPReg(), isa.FrameReg(), isa.GateReg())
			}
			args := isa.ArgRegs()
			if len(args) == 0 {
				t.Fatal("no argument registers")
			}
			if args[0] != isa.GateReg() {
				t.Errorf("gate register %v is not the first argument register %v",
					isa.GateReg(), args[0])
			}
			for _, r := range args {
				if !isa.IsArgReg(r) {
					t.Errorf("ArgRegs lists %v but IsArgReg rejects it", r)
				}
			}
			if isa.IsArgReg(isa.SPReg()) || isa.IsArgReg(isa.FrameReg()) {
				t.Error("SP or frame register classified as argument register")
			}
			if isa.CFIRAReg() == isa.CFISPReg() {
				t.Error("CFI RA and SP columns collide")
			}
			if off := isa.CFIEntryOffset(); off < 0 || off > 16 {
				t.Errorf("implausible CFI entry offset %d", off)
			}
		})
	}
}

// TestConformanceGolden decodes each backend's golden encodings and
// checks class, condition translation, gate effects, and stack deltas
// against the shared expectations.
func TestConformanceGolden(t *testing.T) {
	for _, g := range goldenSets() {
		isa := g.isa
		groups := map[string][]goldenInst{
			"prologue":  g.prologue,
			"transfers": g.transfers,
			"gates":     g.gates,
			"padding":   g.padding,
		}
		for group, cases := range groups {
			for _, c := range cases {
				t.Run(isa.Name()+"/"+group+"/"+c.name, func(t *testing.T) {
					in, err := isa.Decode(c.enc, 0x401000)
					if err != nil {
						t.Fatalf("decode: %v", err)
					}
					if in.Len != len(c.enc) {
						t.Errorf("length %d, want %d", in.Len, len(c.enc))
					}
					if in.Op != c.op {
						t.Fatalf("op %v, want %v", in.Op, c.op)
					}
					if !in.Classified {
						t.Error("golden instruction unclassified")
					}
					if in.Op == arch.OpJcc && in.Cond != c.cond {
						t.Errorf("cond %v, want %v", in.Cond, c.cond)
					}
					if group == "gates" {
						if got := isa.GateEffect(&in); got != c.gate {
							t.Errorf("gate effect %v, want %v", got, c.gate)
						}
					}
					if group == "padding" && !in.IsPadding() {
						t.Error("padding instruction not IsPadding")
					}
					if c.deltaOK {
						d, known := isa.StackDelta(&in)
						if !known {
							t.Errorf("stack delta unknown")
						} else if c.delta != 0 && d != c.delta {
							t.Errorf("stack delta %d, want %d", d, c.delta)
						}
					}
				})
			}
		}
	}
}

// TestConformanceGateTest checks the §IV-C gate self-test shape is
// recognized by the shared structural matcher on every backend.
func TestConformanceGateTest(t *testing.T) {
	shapes := map[string][]byte{
		"x64": {0x48, 0x85, 0xFF},       // test rdi, rdi
		"a64": {0x1F, 0x00, 0x00, 0xEA}, // tst x0, x0
	}
	for _, g := range goldenSets() {
		isa := g.isa
		enc, ok := shapes[isa.Name()]
		if !ok {
			t.Fatalf("no gate-test shape for backend %s", isa.Name())
		}
		in, err := isa.Decode(enc, 0x1000)
		if err != nil {
			t.Fatalf("%s: %v", isa.Name(), err)
		}
		if !arch.IsGateTest(&in, isa.GateReg()) {
			t.Errorf("%s: gate self-test not recognized: %v", isa.Name(), &in)
		}
	}
}

// TestConformancePaddingDelta ensures padding never perturbs stack
// heights, and that decode length divides the alignment contract.
func TestConformancePaddingDelta(t *testing.T) {
	for _, g := range goldenSets() {
		isa := g.isa
		for _, c := range g.padding {
			in, err := isa.Decode(c.enc, 0)
			if err != nil {
				t.Fatalf("%s/%s: %v", isa.Name(), c.name, err)
			}
			if d, known := isa.StackDelta(&in); !known || d != 0 {
				t.Errorf("%s/%s: padding delta %d known=%v", isa.Name(), c.name, d, known)
			}
			if in.Len%isa.InstAlign() != 0 {
				t.Errorf("%s/%s: length %d violates alignment %d",
					isa.Name(), c.name, in.Len, isa.InstAlign())
			}
		}
	}
}
