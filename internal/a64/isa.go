package a64

import "fetch/internal/arch"

// ISA is the aarch64 backend of the arch.ISA interface. It is a
// stateless value; use the package-level Arch.
type ISA struct{}

// Arch is the shared aarch64 backend instance.
var Arch ISA

// EMachine is the ELF e_machine value of aarch64 (EM_AARCH64).
const EMachine = 183

func init() {
	arch.Register(Arch)
}

// Name returns "a64".
func (ISA) Name() string { return "a64" }

// Machine returns EM_AARCH64.
func (ISA) Machine() uint16 { return EMachine }

// MaxInstLen returns 4: A64 instructions are fixed-width.
func (ISA) MaxInstLen() int { return instLen }

// InstAlign returns 4: A64 instructions are word-aligned.
func (ISA) InstAlign() int { return instLen }

// Decode decodes the instruction at the start of b.
func (ISA) Decode(b []byte, addr uint64) (arch.Inst, error) { return Decode(b, addr) }

// SPReg returns SP.
func (ISA) SPReg() arch.Reg { return SP }

// FrameReg returns X29.
func (ISA) FrameReg() arch.Reg { return X29 }

// GateReg returns X0, the first AAPCS64 integer argument register
// (the §IV-C error/error_at_line gate).
func (ISA) GateReg() arch.Reg { return X0 }

// ArgRegs returns the AAPCS64 integer argument registers.
func (ISA) ArgRegs() []arch.Reg { return ArgumentRegs[:] }

// IsArgReg reports whether r is an AAPCS64 integer argument register.
func (ISA) IsArgReg(r arch.Reg) bool { return IsArgumentReg(r) }

// RetAddrReg returns (X30, true): the caller's BL leaves the return
// address in the link register, so x30 is initialized at every
// legitimate entry — a leaf's bare RET is not a convention violation.
func (ISA) RetAddrReg() (arch.Reg, bool) { return X30, true }

// RegCount returns 31: the validation loops range over X0..X30 (SP is
// handled separately as the always-live stack pointer).
func (ISA) RegCount() int { return 31 }

// Reads returns the instruction's register read set.
func (ISA) Reads(in *arch.Inst) arch.RegSet { return Reads(in) }

// Writes returns the instruction's register write set.
func (ISA) Writes(in *arch.Inst) arch.RegSet { return Writes(in) }

// StackDelta returns the instruction's SP delta.
func (ISA) StackDelta(in *arch.Inst) (int64, bool) { return StackDelta(in) }

// GateEffect classifies the instruction's effect on the tracked X0
// state (§IV-C): MOVZ/MOVN x0, #imm are the recognized definitions
// (the decoder resolves either to a mov-immediate with the computed
// value); any other x0 write — a MOVK insert in particular — degrades
// the state to unknown.
func (ISA) GateEffect(in *arch.Inst) arch.GateEffect {
	if w := Writes(in); in.IsCall() || !w.Has(X0) {
		return arch.GateKeep
	}
	if in.Op == arch.OpMov && len(in.Args) == 2 &&
		in.Args[0].Kind == arch.KindReg && in.Args[0].Reg == X0 &&
		in.Args[1].Kind == arch.KindImm {
		if in.Args[1].Imm == 0 {
			return arch.GateSetZero
		}
		return arch.GateSetNonZero
	}
	return arch.GateSetUnknown
}

// CFISPReg returns 31, the DWARF number of SP on aarch64.
func (ISA) CFISPReg() uint64 { return 31 }

// CFIRAReg returns 30, the DWARF return-address column (x30/LR).
func (ISA) CFIRAReg() uint64 { return 30 }

// CFIEntryOffset returns 0: at entry the CFA equals SP (nothing is
// pushed by the call), so §V-B stack heights carry no bias.
func (ISA) CFIEntryOffset() int64 { return 0 }

// ResolveJumpTable implements the bounded jump-table analysis (§IV-C)
// for the ADRP-anchored aarch64 idioms. Both end in a register BR, so
// the resolver — unlike x64's absolute idiom — always records the
// table base itself. Two shapes are recognized, both requiring the
// bounding compare on the index register:
//
// PIC (table-relative 4-byte entries):
//
//	cmp   idx, #N-1
//	b.hi  default
//	adrp  tbl, page(table)
//	add   tbl, tbl, #lo12(table)
//	ldrsw off, [tbl, idx, sxtw/lsl #2]
//	add   dst, tbl, off
//	br    dst
//
// absolute (8-byte entries):
//
//	cmp   idx, #N-1
//	b.hi  default
//	adrp  tbl, page(table)
//	add   tbl, tbl, #lo12(table)
//	ldr   dst, [tbl, idx, lsl #3]
//	br    dst
//
// Anything else is left unresolved (the safe choice).
func (ISA) ResolveJumpTable(ctx arch.JumpTableCtx, jmp *arch.Inst, maxEntries int64) []uint64 {
	if len(jmp.Args) != 1 || jmp.Args[0].Kind != arch.KindReg {
		return nil
	}
	dst := jmp.Args[0].Reg
	in, ok := ctx.InstEndingAt(jmp.Addr)
	if !ok {
		return nil
	}
	switch {
	case in.Op == arch.OpAdd && len(in.Args) == 3 &&
		in.Args[0].Kind == arch.KindReg && in.Args[0].Reg == dst &&
		in.Args[1].Kind == arch.KindReg && in.Args[2].Kind == arch.KindReg:
		// add dst, tbl, off — the PIC recombination.
		return resolvePICTable(ctx, in, in.Args[1].Reg, in.Args[2].Reg, maxEntries)
	case in.Op == arch.OpMov && len(in.Args) == 2 &&
		in.Args[0].Kind == arch.KindReg && in.Args[0].Reg == dst &&
		in.Args[1].Kind == arch.KindMem && in.Args[1].Mem.Scale == 8 &&
		ValidReg(in.Args[1].Mem.Base) && ValidReg(in.Args[1].Mem.Index):
		// ldr dst, [tbl, idx, lsl #3] — the absolute-entry load.
		return resolveAbsTable(ctx, in, in.Args[1].Mem.Base, in.Args[1].Mem.Index, maxEntries)
	}
	return nil
}

// ValidReg reports whether r is a real numbered register (not RegNone).
func ValidReg(r arch.Reg) bool { return r <= SP }

// resolveTableBase walks backwards from addr for the
// adrp+add-:lo12: pair that materializes tblReg, returning the table
// address and the address of the ADRP (where the bound scan resumes).
func resolveTableBase(ctx arch.JumpTableCtx, addr uint64, tblReg arch.Reg) (table uint64, resume uint64, ok bool) {
	var lo12 int64
	haveAdd := false
	for steps := 0; steps < 8; steps++ {
		in, found := ctx.InstEndingAt(addr)
		if !found {
			return 0, 0, false
		}
		switch {
		case !haveAdd:
			// add tbl, tbl, #lo12
			if in.Op == arch.OpAdd && len(in.Args) == 3 &&
				in.Args[0].Kind == arch.KindReg && in.Args[0].Reg == tblReg &&
				in.Args[1].Kind == arch.KindReg && in.Args[1].Reg == tblReg &&
				in.Args[2].Kind == arch.KindImm {
				lo12 = in.Args[2].Imm
				haveAdd = true
			} else {
				return 0, 0, false
			}
		default:
			// adrp tbl, page — the decoder resolves the page arithmetic
			// into a PC-relative displacement.
			if in.Op == arch.OpLea && len(in.Args) == 2 &&
				in.Args[0].Kind == arch.KindReg && in.Args[0].Reg == tblReg &&
				in.Args[1].Kind == arch.KindMem && in.Args[1].Mem.RIPRel {
				page := uint64(int64(in.Addr) + int64(in.Len) + in.Args[1].Mem.Disp)
				return page + uint64(lo12), in.Addr, true
			}
			return 0, 0, false
		}
		addr = in.Addr
	}
	return 0, 0, false
}

// resolvePICTable handles the table-relative idiom: recomb is the
// final `add dst, tbl, off`.
func resolvePICTable(ctx arch.JumpTableCtx, recomb *arch.Inst, tblReg, offReg arch.Reg, maxEntries int64) []uint64 {
	// ldrsw off, [tbl, idx, #2] immediately before the recombination.
	load, ok := ctx.InstEndingAt(recomb.Addr)
	if !ok || load.Op != arch.OpMovsxd || len(load.Args) != 2 ||
		load.Args[0].Kind != arch.KindReg || load.Args[0].Reg != offReg ||
		load.Args[1].Kind != arch.KindMem {
		return nil
	}
	mem := load.Args[1].Mem
	if mem.Base != tblReg || mem.Scale != 4 || !ValidReg(mem.Index) {
		return nil
	}
	table, resume, ok := resolveTableBase(ctx, load.Addr, tblReg)
	if !ok {
		return nil
	}
	bound, ok := findBound(ctx, resume, mem.Index)
	if !ok {
		return nil
	}
	n := bound
	if n > maxEntries {
		n = maxEntries
	}
	ctx.RecordTableRead(table, table+uint64(4*n))
	var out []uint64
	for k := int64(0); k < n; k++ {
		raw, err := ctx.ReadU32(table + uint64(4*k))
		if err != nil {
			return nil // table runs off its section: reject entirely
		}
		entry := uint64(int64(table) + int64(int32(raw)))
		if !ctx.IsExec(entry) {
			return nil // non-code entry: not a jump table we trust
		}
		out = append(out, entry)
	}
	if len(out) > 0 {
		ctx.RecordTableBase(table)
	}
	return out
}

// resolveAbsTable handles the absolute-entry idiom: load is the final
// `ldr dst, [tbl, idx, lsl #3]`.
func resolveAbsTable(ctx arch.JumpTableCtx, load *arch.Inst, tblReg, idxReg arch.Reg, maxEntries int64) []uint64 {
	table, resume, ok := resolveTableBase(ctx, load.Addr, tblReg)
	if !ok {
		return nil
	}
	bound, ok := findBound(ctx, resume, idxReg)
	if !ok {
		return nil
	}
	if bound > maxEntries {
		bound = maxEntries
	}
	ctx.RecordTableRead(table, table+uint64(8*bound))
	var out []uint64
	for k := int64(0); k < bound; k++ {
		entry, err := ctx.ReadU64(table + uint64(8*k))
		if err != nil {
			return nil
		}
		if !ctx.IsExec(entry) {
			return nil
		}
		out = append(out, entry)
	}
	if len(out) > 0 {
		ctx.RecordTableBase(table)
	}
	return out
}

// findBound scans decoded instructions immediately before addr for the
// bounding `cmp idx, #imm` guarded by an above-branch (b.hi/b.hs).
func findBound(ctx arch.JumpTableCtx, addr uint64, idx arch.Reg) (int64, bool) {
	var sawAbove bool
	for steps := 0; steps < 8; steps++ {
		in, ok := ctx.InstEndingAt(addr)
		if !ok {
			return 0, false
		}
		switch in.Op {
		case arch.OpJcc:
			if in.Cond == arch.CondA || in.Cond == arch.CondAE {
				sawAbove = true
			}
		case arch.OpCmp:
			if sawAbove && len(in.Args) == 2 &&
				in.Args[0].Kind == arch.KindReg && in.Args[0].Reg == idx &&
				in.Args[1].Kind == arch.KindImm && in.Args[1].Imm >= 0 {
				return in.Args[1].Imm + 1, true
			}
		case arch.OpMov, arch.OpMovsxd, arch.OpLea:
			// Index massaging between the compare and the table chain is
			// tolerated.
		default:
			return 0, false
		}
		addr = in.Addr
	}
	return 0, false
}
