package a64

import (
	"encoding/binary"
	"errors"

	"fetch/internal/arch"
)

// instLen is the fixed A64 instruction length.
const instLen = 4

// ErrTruncated reports fewer than four bytes at the decode address.
var ErrTruncated = errors.New("a64: truncated instruction")

// condMap translates the A64 condition nibble to the shared semantic
// condition codes (numbered in x86 encoding order), so generic
// matchers — the jump-table bound's unsigned-above test in particular —
// work unchanged: B.HI decodes as CondA, B.HS as CondAE.
var condMap = [14]arch.Cond{
	arch.CondE,  // 0  EQ
	arch.CondNE, // 1  NE
	arch.CondAE, // 2  CS/HS
	arch.CondB,  // 3  CC/LO
	arch.CondS,  // 4  MI
	arch.CondNS, // 5  PL
	arch.CondO,  // 6  VS
	arch.CondNO, // 7  VC
	arch.CondA,  // 8  HI
	arch.CondBE, // 9  LS
	arch.CondGE, // 10 GE
	arch.CondL,  // 11 LT
	arch.CondG,  // 12 GT
	arch.CondLE, // 13 LE
}

// dataReg maps a 5-bit register field in a data position (where
// encoding 31 means the zero register) to the shared model.
func dataReg(n uint32) arch.Reg {
	if n == 31 {
		return RegNone // XZR: no dataflow
	}
	return arch.Reg(n)
}

// baseReg maps a 5-bit register field in a base/stack position (where
// encoding 31 means SP).
func baseReg(n uint32) arch.Reg { return arch.Reg(n) }

// signExtend returns the low bits of v as a signed width-bit value.
func signExtend(v uint32, width uint) int64 {
	shift := 64 - width
	return int64(uint64(v)<<shift) >> shift
}

// Decode decodes the A64 instruction at the start of b. The only
// decode failure is a window shorter than four bytes: every well-formed
// word decodes, with unmodeled encodings classified as OpOther of
// length four, so sweeps and recursive walks advance uniformly.
// Alignment is the caller's concern; the decoder accepts any address.
func Decode(b []byte, addr uint64) (arch.Inst, error) {
	if len(b) < instLen {
		return arch.Inst{}, ErrTruncated
	}
	w := binary.LittleEndian.Uint32(b)
	in := arch.Inst{Addr: addr, Len: instLen, Enc: w, OpSize: 8, Classified: true}

	switch {
	// UDF: permanently undefined (the all-zero word in particular).
	case w&0xFFFF0000 == 0:
		in.Op = arch.OpUd2

	// B / BL: unconditional immediate branch and call.
	case (w>>26)&0x1F == 0x05:
		in.Op = arch.OpJmp
		if w>>31 == 1 {
			in.Op = arch.OpCall
		}
		in.HasTarget = true
		in.Target = addr + uint64(signExtend(w&0x03FFFFFF, 26)*4)

	// B.cond.
	case w>>24 == 0x54 && w&0x10 == 0:
		cond := w & 0xF
		in.HasTarget = true
		in.Target = addr + uint64(signExtend((w>>5)&0x7FFFF, 19)*4)
		if cond >= 14 {
			in.Op = arch.OpJmp // AL/NV: architecturally unconditional
		} else {
			in.Op = arch.OpJcc
			in.Cond = condMap[cond]
		}

	// CBZ / CBNZ.
	case (w>>25)&0x3F == 0x1A:
		in.Op = arch.OpJcc
		in.Cond = arch.CondE
		if w&(1<<24) != 0 {
			in.Cond = arch.CondNE
		}
		in.HasTarget = true
		in.Target = addr + uint64(signExtend((w>>5)&0x7FFFF, 19)*4)
		in.Args = []arch.Operand{arch.RegOp(dataReg(w & 0x1F))}
		if w>>31 == 0 {
			in.OpSize = 4
		}

	// TBZ / TBNZ.
	case (w>>25)&0x3F == 0x1B:
		in.Op = arch.OpJcc
		in.Cond = arch.CondE
		if w&(1<<24) != 0 {
			in.Cond = arch.CondNE
		}
		in.HasTarget = true
		in.Target = addr + uint64(signExtend((w>>5)&0x3FFF, 14)*4)
		bit := (w>>19)&0x1F | (w>>26)&0x20
		in.Args = []arch.Operand{arch.RegOp(dataReg(w & 0x1F)), arch.ImmOp(int64(bit))}

	// BR / BLR / RET.
	case w&0xFFFFFC1F == 0xD61F0000:
		in.Op = arch.OpJmpInd
		in.Args = []arch.Operand{arch.RegOp(dataReg((w >> 5) & 0x1F))}
	case w&0xFFFFFC1F == 0xD63F0000:
		in.Op = arch.OpCallInd
		in.Args = []arch.Operand{arch.RegOp(dataReg((w >> 5) & 0x1F))}
	case w&0xFFFFFC1F == 0xD65F0000:
		in.Op = arch.OpRet

	// BTI (branch target identification landing pad).
	case w&^uint32(0xC0) == 0xD503241F:
		in.Op = arch.OpEndbr64

	// NOP and the rest of the hint space.
	case w&0xFFFFF01F == 0xD503201F:
		in.Op = arch.OpNop

	// BRK / HLT / SVC.
	case (w>>21)&0x7FF == 0x6A1 && w&0x1F == 0:
		in.Op = arch.OpInt3
	case (w>>21)&0x7FF == 0x6A2 && w&0x1F == 0:
		in.Op = arch.OpHlt
	case w&0xFFE0001F == 0xD4000001:
		in.Op = arch.OpSyscall

	// ADR / ADRP: PC-relative address materialization. The page
	// arithmetic resolves into a PC-relative displacement so the
	// generic constant harvest (Addr+Len+Disp) lands on the computed
	// address exactly.
	case (w>>24)&0x1F == 0x10:
		in.Op = arch.OpLea
		imm := signExtend((w>>29)&0x3|((w>>5)&0x7FFFF)<<2, 21)
		var target uint64
		if w>>31 == 1 { // ADRP
			target = (addr &^ 0xFFF) + uint64(imm)<<12
		} else { // ADR
			target = addr + uint64(imm)
		}
		in.Args = []arch.Operand{
			arch.RegOp(dataReg(w & 0x1F)),
			arch.MemOp(arch.MemRef{Base: RegNone, Index: RegNone, RIPRel: true,
				Disp: int64(target) - int64(addr) - instLen}),
		}

	// ADD / SUB immediate (MOV to/from SP and CMP aliases included).
	case (w>>23)&0x3F == 0x22:
		sub := w&(1<<30) != 0
		setFlags := w&(1<<29) != 0
		imm := int64((w >> 10) & 0xFFF)
		if w&(1<<22) != 0 {
			imm <<= 12
		}
		rn, rd := (w>>5)&0x1F, w&0x1F
		if w>>31 == 0 {
			in.OpSize = 4
		}
		switch {
		case setFlags && rd == 31:
			// CMP (SUBS xzr) and CMN (ADDS xzr).
			in.Op = arch.OpCmp
			in.Args = []arch.Operand{arch.RegOp(baseReg(rn)), arch.ImmOp(imm)}
		case !sub && !setFlags && imm == 0 && rd != rn:
			// MOV rd, rn between a GPR and SP. A self-targeted add of
			// zero (a page-aligned :lo12: relocation site) stays OpAdd
			// so the jump-table base chain keeps its shape.
			in.Op = arch.OpMov
			in.Args = []arch.Operand{arch.RegOp(baseReg(rd)), arch.RegOp(baseReg(rn))}
		default:
			in.Op = arch.OpAdd
			if sub {
				in.Op = arch.OpSub
			}
			in.Args = []arch.Operand{arch.RegOp(baseReg(rd)), arch.RegOp(baseReg(rn)), arch.ImmOp(imm)}
		}

	// ADD / SUB shifted register (CMP alias included).
	case (w>>24)&0x1F == 0x0B && w&(1<<21) == 0:
		sub := w&(1<<30) != 0
		setFlags := w&(1<<29) != 0
		rm, rn, rd := (w>>16)&0x1F, (w>>5)&0x1F, w&0x1F
		if w>>31 == 0 {
			in.OpSize = 4
		}
		if setFlags && rd == 31 {
			in.Op = arch.OpCmp
			in.Args = []arch.Operand{arch.RegOp(dataReg(rn)), arch.RegOp(dataReg(rm))}
		} else {
			in.Op = arch.OpAdd
			if sub {
				in.Op = arch.OpSub
			}
			in.Args = []arch.Operand{arch.RegOp(dataReg(rd)), arch.RegOp(dataReg(rn)), arch.RegOp(dataReg(rm))}
		}

	// Logical shifted register (MOV-register and TST aliases included).
	case (w>>24)&0x1F == 0x0A:
		opc := (w >> 29) & 0x3
		rm, rn, rd := (w>>16)&0x1F, (w>>5)&0x1F, w&0x1F
		noShift := (w>>10)&0x3F == 0 && (w>>22)&0x3 == 0 && w&(1<<21) == 0
		if w>>31 == 0 {
			in.OpSize = 4
		}
		switch {
		case opc == 3 && rd == 31:
			// TST (ANDS xzr).
			in.Op = arch.OpTest
			in.Args = []arch.Operand{arch.RegOp(dataReg(rn)), arch.RegOp(dataReg(rm))}
		case opc == 1 && rn == 31 && noShift:
			// MOV rd, rm (ORR rd, xzr, rm).
			in.Op = arch.OpMov
			in.Args = []arch.Operand{arch.RegOp(dataReg(rd)), arch.RegOp(dataReg(rm))}
		default:
			switch opc {
			case 0, 3:
				in.Op = arch.OpAnd
			case 1:
				in.Op = arch.OpOr
			case 2:
				in.Op = arch.OpXor
			}
			in.Args = []arch.Operand{arch.RegOp(dataReg(rd)), arch.RegOp(dataReg(rn)), arch.RegOp(dataReg(rm))}
		}

	// MOVZ / MOVN / MOVK.
	case (w>>23)&0x3F == 0x25:
		opc := (w >> 29) & 0x3
		hw := (w >> 21) & 0x3
		imm := int64((w>>5)&0xFFFF) << (16 * hw)
		rd := dataReg(w & 0x1F)
		sf := w>>31 == 1
		if !sf {
			in.OpSize = 4
		}
		switch opc {
		case 2: // MOVZ
			in.Op = arch.OpMov
			in.Args = []arch.Operand{arch.RegOp(rd), arch.ImmOp(imm)}
		case 0: // MOVN
			v := ^imm
			if !sf {
				v &= 0xFFFFFFFF
			}
			in.Op = arch.OpMov
			in.Args = []arch.Operand{arch.RegOp(rd), arch.ImmOp(v)}
		case 3: // MOVK: inserts 16 bits, reads and writes rd
			in.Op = arch.OpOr
			in.Args = []arch.Operand{arch.RegOp(rd), arch.RegOp(rd), arch.ImmOp(imm)}
		default:
			in.Op = arch.OpOther
			in.Classified = false
		}

	// MADD / MSUB (MUL and MNEG aliases when ra is XZR). The
	// accumulator joins the read set; XZR resolves to RegNone, which
	// RegSet.Add ignores.
	case (w>>21)&0x3FF == 0x0D8:
		rm, ra, rn, rd := (w>>16)&0x1F, (w>>10)&0x1F, (w>>5)&0x1F, w&0x1F
		if w>>31 == 0 {
			in.OpSize = 4
		}
		in.Op = arch.OpImul
		in.Args = []arch.Operand{arch.RegOp(dataReg(rd)), arch.RegOp(dataReg(rn)),
			arch.RegOp(dataReg(rm)), arch.RegOp(dataReg(ra))}

	// SBFM / UBFM (the LSL/LSR/ASR/SXTW immediate-shift aliases):
	// modeled as a generic shift — writes rd, reads rn. BFM (opc 01)
	// inserts into rd and stays opaque.
	case (w>>23)&0x3F == 0x26 && (w>>29)&0x3 != 1:
		rn, rd := (w>>5)&0x1F, w&0x1F
		if w>>31 == 0 {
			in.OpSize = 4
		}
		in.Op = arch.OpShl
		if (w>>29)&0x3 == 0 {
			in.Op = arch.OpSar // SBFM: sign-extending forms
		}
		in.Args = []arch.Operand{arch.RegOp(dataReg(rd)), arch.RegOp(dataReg(rn)),
			arch.ImmOp(int64((w >> 16) & 0x3F))}

	// LDR / LDRSW literal.
	case (w>>27)&0x7 == 0x3 && (w>>24)&0x7 == 0x0 && (w>>30)&0x3 != 0x3 && w&(1<<26) == 0:
		off := signExtend((w>>5)&0x7FFFF, 19) * 4
		rt := dataReg(w & 0x1F)
		mem := arch.MemRef{Base: RegNone, Index: RegNone, RIPRel: true, Disp: off - instLen}
		switch (w >> 30) & 0x3 {
		case 1: // LDR Xt
			in.Op = arch.OpMov
			in.Args = []arch.Operand{arch.RegOp(rt), arch.MemOp(mem)}
		case 0: // LDR Wt
			in.Op = arch.OpMov
			in.OpSize = 4
			in.Args = []arch.Operand{arch.RegOp(rt), arch.MemOp(mem)}
		case 2: // LDRSW Xt
			in.Op = arch.OpMovsxd
			in.Args = []arch.Operand{arch.RegOp(rt), arch.MemOp(mem)}
		}

	// Load/store register offset: LDR/STR/LDRSW [Xn, Xm{, lsl #s}].
	case (w>>27)&0x7 == 0x7 && w&(1<<26) == 0 && (w>>24)&0x3 == 0 &&
		w&(1<<21) != 0 && (w>>10)&0x3 == 0x2:
		size := (w >> 30) & 0x3
		opc := (w >> 22) & 0x3
		scale := uint8(1)
		if w&(1<<12) != 0 { // shifted index
			scale = 1 << size
		}
		mem := arch.MemRef{Base: baseReg((w >> 5) & 0x1F), Index: dataReg((w >> 16) & 0x1F), Scale: scale}
		rt := dataReg(w & 0x1F)
		switch {
		case size == 3 && opc == 1: // LDR Xt
			in.Op = arch.OpMov
			in.Args = []arch.Operand{arch.RegOp(rt), arch.MemOp(mem)}
		case size == 2 && opc == 1: // LDR Wt
			in.Op = arch.OpMov
			in.OpSize = 4
			in.Args = []arch.Operand{arch.RegOp(rt), arch.MemOp(mem)}
		case size == 2 && opc == 2: // LDRSW Xt
			in.Op = arch.OpMovsxd
			in.Args = []arch.Operand{arch.RegOp(rt), arch.MemOp(mem)}
		case opc == 0: // STR
			in.Op = arch.OpMov
			if size == 2 {
				in.OpSize = 4
			}
			in.Args = []arch.Operand{arch.MemOp(mem), arch.RegOp(rt)}
		default:
			in.Op = arch.OpOther
			in.Classified = false
		}

	// Load/store pair.
	case (w>>27)&0x7 == 0x5 && w&(1<<26) == 0:
		mode := (w >> 23) & 0x7
		load := w&(1<<22) != 0
		rn := baseReg((w >> 5) & 0x1F)
		rt, rt2 := dataReg(w&0x1F), dataReg((w>>10)&0x1F)
		writeback := mode == 1 || mode == 3
		if writeback && rn == SP {
			// The frame save/restore shape: STP/LDP with SP writeback.
			// The stack delta is recomputed from Enc by StackDelta.
			if load {
				in.Op = arch.OpPop
			} else {
				in.Op = arch.OpPush
			}
			in.Args = []arch.Operand{arch.RegOp(rt), arch.RegOp(rt2)}
		} else {
			in.Op = arch.OpOther
			in.Classified = false
		}

	// Load/store immediate pre/post-index.
	case (w>>27)&0x7 == 0x7 && w&(1<<26) == 0 && (w>>24)&0x3 == 0 &&
		w&(1<<21) == 0 && (w>>10)&0x3 != 0 && (w>>10)&0x3 != 0x2:
		load := (w>>22)&0x3 != 0
		rn := baseReg((w >> 5) & 0x1F)
		rt := dataReg(w & 0x1F)
		if rn == SP {
			if load {
				in.Op = arch.OpPop
			} else {
				in.Op = arch.OpPush
			}
			in.Args = []arch.Operand{arch.RegOp(rt)}
		} else {
			in.Op = arch.OpOther
			in.Classified = false
		}

	// Load/store unsigned offset.
	case (w>>27)&0x7 == 0x7 && w&(1<<26) == 0 && (w>>24)&0x3 == 0x1:
		size := (w >> 30) & 0x3
		opc := (w >> 22) & 0x3
		disp := int64((w>>10)&0xFFF) << size
		mem := arch.MemRef{Base: baseReg((w >> 5) & 0x1F), Index: RegNone, Disp: disp}
		rt := dataReg(w & 0x1F)
		switch {
		case size == 3 && opc == 1: // LDR Xt
			in.Op = arch.OpMov
			in.Args = []arch.Operand{arch.RegOp(rt), arch.MemOp(mem)}
		case size == 2 && opc == 1: // LDR Wt
			in.Op = arch.OpMov
			in.OpSize = 4
			in.Args = []arch.Operand{arch.RegOp(rt), arch.MemOp(mem)}
		case size == 2 && opc == 2: // LDRSW
			in.Op = arch.OpMovsxd
			in.Args = []arch.Operand{arch.RegOp(rt), arch.MemOp(mem)}
		case opc == 0: // STR
			in.Op = arch.OpMov
			if size == 2 {
				in.OpSize = 4
			}
			in.Args = []arch.Operand{arch.MemOp(mem), arch.RegOp(rt)}
		default:
			in.Op = arch.OpOther
			in.Classified = false
		}

	default:
		in.Op = arch.OpOther
		in.Classified = false
	}
	return in, nil
}
