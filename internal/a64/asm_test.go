package a64

import (
	"testing"

	"fetch/internal/arch"
)

// decodeAll decodes an assembled chunk into its instruction sequence.
func decodeAll(t *testing.T, code []byte, base uint64) []arch.Inst {
	t.Helper()
	var out []arch.Inst
	for off := 0; off < len(code); off += instLen {
		in, err := Decode(code[off:], base+uint64(off))
		if err != nil {
			t.Fatalf("decode at +%#x: %v", off, err)
		}
		out = append(out, in)
	}
	return out
}

// TestAsmDecodeRoundTrip assembles the canonical prologue/body/epilogue
// shape and verifies the decoder classifies every word back into the
// semantic classes the analyses expect.
func TestAsmDecodeRoundTrip(t *testing.T) {
	var a Asm
	a.Bti()
	a.StpPre(X29, X30, -16)
	a.MovFPSP()
	a.SubSP(0x20)
	a.MovRegImm(X0, 0)
	a.MovRegImm(X1, 7)
	a.MovRegReg(X2, X1)
	a.AddRegReg(X2, X1)
	a.CmpRegImm(X2, 11)
	a.Bcond(arch.CondA, "out")
	a.TestRegReg(X0, X0)
	a.Label("out")
	a.AddSP(0x20)
	a.LdpPost(X29, X30, 16)
	a.Ret()
	code, fixups, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(fixups) != 0 {
		t.Fatalf("unexpected fixups: %v", fixups)
	}

	const base = 0x401000
	ins := decodeAll(t, code, base)
	wantOps := []arch.Op{
		arch.OpEndbr64, arch.OpPush, arch.OpMov, arch.OpSub,
		arch.OpMov, arch.OpMov, arch.OpMov, arch.OpAdd,
		arch.OpCmp, arch.OpJcc, arch.OpTest,
		arch.OpAdd, arch.OpPop, arch.OpRet,
	}
	if len(ins) != len(wantOps) {
		t.Fatalf("decoded %d instructions, want %d", len(ins), len(wantOps))
	}
	for k, in := range ins {
		if in.Op != wantOps[k] {
			t.Errorf("inst %d: op %v, want %v (%v)", k, in.Op, wantOps[k], &in)
		}
	}
	// The local b.hi must land on the add-sp.
	jcc := ins[9]
	if jcc.Cond != arch.CondA || jcc.Target != base+11*instLen {
		t.Errorf("b.hi target %#x cond %v", jcc.Target, jcc.Cond)
	}
	// Stack deltas over the whole body must balance.
	var h int64
	for k := range ins {
		d, known := StackDelta(&ins[k])
		if !known {
			t.Errorf("inst %d: unknown stack delta (%v)", k, &ins[k])
		}
		h += d
	}
	if h != 0 {
		t.Errorf("unbalanced stack: net delta %d", h)
	}
}

// TestAsmLocalBranches exercises backward references and CBZ/CBNZ.
func TestAsmLocalBranches(t *testing.T) {
	var a Asm
	a.Label("top")
	a.SubRegImm(X1, 1)
	a.Cbnz(X1, "top")
	a.Cbz(X0, "done")
	a.B("top")
	a.Label("done")
	a.Ret()
	code, _, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	ins := decodeAll(t, code, 0x1000)
	if ins[1].Op != arch.OpJcc || ins[1].Cond != arch.CondNE || ins[1].Target != 0x1000 {
		t.Errorf("cbnz: %v", &ins[1])
	}
	if ins[2].Op != arch.OpJcc || ins[2].Cond != arch.CondE || ins[2].Target != 0x1010 {
		t.Errorf("cbz: %v", &ins[2])
	}
	if ins[3].Op != arch.OpJmp || ins[3].Target != 0x1000 {
		t.Errorf("b: %v", &ins[3])
	}
}

// TestAsmFixups verifies external references carry the right kinds and
// that the emitted words decode to the expected classes before
// patching.
func TestAsmFixups(t *testing.T) {
	var a Asm
	a.BlSym("callee")
	a.BSym("tail")
	a.BcondSym(arch.CondNE, "other")
	a.AdrSym(X1, "table", 0)
	a.LdrIdx8(X2, X1, X3)
	a.Br(X2)
	code, fixups, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	wantKinds := []arch.FixupKind{FixBranch26, FixBranch26, FixCond19, FixPage21, FixLo12}
	if len(fixups) != len(wantKinds) {
		t.Fatalf("got %d fixups, want %d", len(fixups), len(wantKinds))
	}
	for k, f := range fixups {
		if f.Kind != wantKinds[k] {
			t.Errorf("fixup %d: kind %v, want %v", k, f.Kind, wantKinds[k])
		}
		if f.Off%instLen != 0 || f.End != f.Off+instLen {
			t.Errorf("fixup %d: misaligned site Off=%d End=%d", k, f.Off, f.End)
		}
	}
	ins := decodeAll(t, code, 0x1000)
	wantOps := []arch.Op{arch.OpCall, arch.OpJmp, arch.OpJcc, arch.OpLea, arch.OpAdd, arch.OpMov, arch.OpJmpInd}
	for k, in := range ins {
		if in.Op != wantOps[k] {
			t.Errorf("inst %d: op %v, want %v", k, in.Op, wantOps[k])
		}
	}
}

// TestAsmMovRegImmWide verifies multi-halfword immediates round-trip
// through movz+movk as a materialization the gate tracker degrades on.
func TestAsmMovRegImmWide(t *testing.T) {
	var a Asm
	a.MovRegImm(X5, 0x12345678)
	a.MovRegImm(X6, -2)
	code, _, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	ins := decodeAll(t, code, 0)
	// movz x5, #0x5678; movk x5, #0x1234, lsl #16; movn x6, #1
	if len(ins) != 3 {
		t.Fatalf("got %d instructions", len(ins))
	}
	if ins[0].Op != arch.OpMov || ins[0].Args[1].Imm != 0x5678 {
		t.Errorf("movz: %v", &ins[0])
	}
	if ins[1].Op != arch.OpOr { // movk
		t.Errorf("movk: %v", &ins[1])
	}
	if ins[2].Op != arch.OpMov || ins[2].Args[1].Imm != -2 {
		t.Errorf("movn: %v", &ins[2])
	}
}

// TestAsmPad verifies padding decodes as IsPadding words.
func TestAsmPad(t *testing.T) {
	var a Asm
	a.Pad(12)
	a.Brk()
	code, _, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range decodeAll(t, code, 0) {
		if !in.IsPadding() {
			t.Errorf("not padding: %v", &in)
		}
	}
	var bad Asm
	bad.Pad(3)
	if _, _, err := bad.Finish(); err == nil {
		t.Error("unaligned padding accepted")
	}
}
