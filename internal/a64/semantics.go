package a64

import "fetch/internal/arch"

// This file derives dataflow facts from classified A64 instructions:
// register read/write sets (for calling-convention validation) and
// stack pointer deltas (for stack-height analysis). The modeling
// choices mirror the x64 backend where the paper's rules are
// ISA-neutral: a register save in a store-pair prologue is not a use,
// and memory operands count their address registers as read.

// regsOfMem returns the registers a memory operand reads. PC-relative
// operands carry RegNone base/index, which RegSet.Add ignores.
func regsOfMem(m arch.MemRef) arch.RegSet {
	var s arch.RegSet
	s = s.Add(m.Base)
	s = s.Add(m.Index)
	return s
}

// Reads returns the set of general-purpose registers the instruction
// reads. For unclassified instructions it returns the empty set;
// callers that need soundness must check Classified.
func Reads(i *arch.Inst) arch.RegSet {
	var s arch.RegSet
	if !i.Classified {
		return s
	}
	addOp := func(o arch.Operand, includeReg bool) {
		switch o.Kind {
		case arch.KindReg:
			if includeReg {
				s = s.Add(o.Reg)
			}
		case arch.KindMem:
			s = s.Union(regsOfMem(o.Mem))
		}
	}
	switch i.Op {
	case arch.OpMov, arch.OpMovsxd:
		// Register or load form: dst written only, source read. Store
		// form (Args[0] is memory): address registers and source read.
		if len(i.Args) == 2 {
			addOp(i.Args[0], false)
			addOp(i.Args[1], true)
		}
	case arch.OpLea:
		// ADR/ADRP materialize from PC only.
	case arch.OpAdd, arch.OpSub, arch.OpAnd, arch.OpOr, arch.OpXor,
		arch.OpImul, arch.OpShl, arch.OpSar:
		// Three-operand form (plus MADD's accumulator): the destination
		// is not an input.
		for _, a := range i.Args[1:] {
			addOp(a, true)
		}
	case arch.OpCmp, arch.OpTest:
		for _, a := range i.Args {
			addOp(a, true)
		}
	case arch.OpJcc:
		// CBZ/CBNZ/TBZ/TBNZ test their register operand.
		for _, a := range i.Args {
			addOp(a, true)
		}
	case arch.OpPush:
		// Saving registers in the STP/STR prologue shape is not a use
		// under the §IV-E rule.
		s = s.Add(SP)
	case arch.OpPop:
		s = s.Add(SP)
	case arch.OpCallInd, arch.OpJmpInd:
		if len(i.Args) == 1 {
			addOp(i.Args[0], true)
		}
	case arch.OpRet:
		// The return address lives in the link register.
		s = s.Add(X30)
	}
	return s
}

// Writes returns the set of general-purpose registers the instruction
// writes. Flags are not modeled.
func Writes(i *arch.Inst) arch.RegSet {
	var s arch.RegSet
	if !i.Classified {
		return s
	}
	switch i.Op {
	case arch.OpMov, arch.OpMovsxd, arch.OpLea, arch.OpAdd, arch.OpSub,
		arch.OpAnd, arch.OpOr, arch.OpXor, arch.OpImul, arch.OpShl, arch.OpSar:
		if len(i.Args) > 0 && i.Args[0].Kind == arch.KindReg {
			s = s.Add(i.Args[0].Reg)
		}
	case arch.OpPush:
		s = s.Add(SP)
	case arch.OpPop:
		// LDP/LDR with writeback restores its targets and moves SP.
		for _, a := range i.Args {
			if a.Kind == arch.KindReg {
				s = s.Add(a.Reg)
			}
		}
		s = s.Add(SP)
	case arch.OpCall, arch.OpCallInd:
		// Calls clobber the AAPCS64 caller-saved file (x0–x18) and
		// write the link register. Modeling them as written makes later
		// reads legitimate — conservative in the right direction for
		// the §IV-E validation, matching the x64 backend's choice.
		for r := X0; r <= X18; r++ {
			s = s.Add(r)
		}
		s = s.Add(X30)
	case arch.OpSyscall:
		s = s.Add(X0)
	}
	return s
}

// StackDelta returns the change this instruction applies to SP, and
// whether the change is statically known. BL/RET are stack-neutral on
// aarch64 (the return address travels in x30, not on the stack).
func StackDelta(i *arch.Inst) (delta int64, known bool) {
	if !i.Classified {
		return 0, true // treat opaque instructions as stack-neutral
	}
	switch i.Op {
	case arch.OpPush, arch.OpPop:
		// Pre/post-indexed STP/LDP and STR/LDR on SP: the delta is the
		// signed writeback immediate, re-extracted from the encoding
		// word (the shared operand model does not carry it).
		return writebackDelta(i.Enc), true
	case arch.OpAdd, arch.OpSub:
		if len(i.Args) == 3 && i.Args[0].Kind == arch.KindReg && i.Args[0].Reg == SP {
			if i.Args[2].Kind == arch.KindImm {
				v := i.Args[2].Imm
				if i.Op == arch.OpSub {
					v = -v
				}
				return v, true
			}
			return 0, false
		}
	case arch.OpMov:
		if len(i.Args) > 0 && i.Args[0].Kind == arch.KindReg && i.Args[0].Reg == SP {
			return 0, false
		}
	case arch.OpCall, arch.OpCallInd, arch.OpRet:
		return 0, true
	}
	if Writes(i).Has(SP) {
		return 0, false
	}
	return 0, true
}

// writebackDelta extracts the signed SP adjustment from a pre/post
// indexed load/store word.
func writebackDelta(w uint32) int64 {
	if (w>>27)&0x7 == 0x5 {
		// Load/store pair: simm7 (bits [21:15]) scaled by register size.
		imm7 := signExtend((w>>15)&0x7F, 7)
		scale := int64(4)
		if w>>31 == 1 {
			scale = 8
		}
		return imm7 * scale
	}
	// Single register pre/post-index: simm9 (bits [20:12]), unscaled.
	return signExtend((w>>12)&0x1FF, 9)
}
