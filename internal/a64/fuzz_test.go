package a64

import "testing"

// FuzzDecode throws arbitrary bytes at the A64 decoder. The contract
// under fuzzing: never panic, succeed on every window of at least four
// bytes with length exactly four, and keep the semantic accessors
// total on whatever comes back.
//
// Reproduce a failure from its seed with
//
//	go test ./internal/a64 -run 'FuzzDecode/<seedname>'
//
// after dropping the crasher file into testdata/fuzz/FuzzDecode/.
func FuzzDecode(f *testing.F) {
	seeds := [][]byte{
		{0xFD, 0x7B, 0xBF, 0xA9}, // stp x29, x30, [sp, #-16]!
		{0xFD, 0x03, 0x00, 0x91}, // mov x29, sp
		{0xFF, 0x83, 0x00, 0xD1}, // sub sp, sp, #0x20
		{0x10, 0x00, 0x00, 0x94}, // bl +0x40
		{0x48, 0x00, 0x00, 0x54}, // b.hi +8
		{0x83, 0x00, 0x00, 0xB4}, // cbz x3, +16
		{0xC0, 0x03, 0x5F, 0xD6}, // ret
		{0x40, 0x00, 0x1F, 0xD6}, // br x2
		{0x01, 0x00, 0x00, 0xB0}, // adrp x1, +1 page
		{0x22, 0x78, 0x63, 0xF8}, // ldr x2, [x1, x3, lsl #3]
		{0x22, 0x78, 0xA3, 0xB8}, // ldrsw x2, [x1, x3, lsl #2]
		{0x1F, 0x00, 0x00, 0xEA}, // tst x0, x0
		{0x20, 0x00, 0xA0, 0xF2}, // movk x0, #1, lsl #16
		{0x1F, 0x20, 0x03, 0xD5}, // nop
		{0x5F, 0x24, 0x03, 0xD5}, // bti c
		{0x00, 0x00, 0x20, 0xD4}, // brk #0
		{0x00, 0x00, 0x00, 0x00}, // udf #0
		{0x20, 0x28, 0x62, 0x1E}, // fadd d0, d1, d2 (unmodeled)
		{0x05, 0x01, 0x00, 0x58}, // ldr x5, .+0x20 (literal)
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := Decode(data, 0x401000)
		if err != nil {
			if len(data) >= instLen {
				t.Fatalf("well-formed window rejected: %v", err)
			}
			return
		}
		if in.Len != instLen {
			t.Fatalf("decoded length %d, want %d", in.Len, instLen)
		}
		if in.Len > len(data) {
			t.Fatalf("decoded length %d exceeds window %d", in.Len, len(data))
		}
		// The semantic accessors must hold for any successful decode.
		_ = Reads(&in)
		_ = Writes(&in)
		_, _ = StackDelta(&in)
		_ = Arch.GateEffect(&in)
		_ = in.Constants()
		_, _ = in.IndirectMem()
		_ = in.Next()
		_ = in.String()
	})
}
