package a64

import (
	"encoding/binary"
	"fmt"

	"fetch/internal/arch"
)

// Fixup kinds this backend emits. The kinds live in arch (shared with
// the x86-64 assembler); the aarch64 assembler patches bit fields of
// instruction words rather than byte fields.
const (
	FixBranch26 = arch.FixA64Branch26
	FixCond19   = arch.FixA64Cond19
	FixPage21   = arch.FixA64Page21
	FixLo12     = arch.FixA64Lo12
	FixAdr21    = arch.FixA64Adr21
	FixAbs64    = arch.FixAbs64
)

// Fixup is an unresolved reference to a symbol defined outside the
// assembled chunk. Offsets are relative to the chunk start.
type Fixup = arch.Fixup

// a64Cond maps the shared condition codes back to A64 condition
// nibbles (the inverse of the decoder's translation).
var a64Cond = map[arch.Cond]uint32{
	arch.CondE:  0, // EQ
	arch.CondNE: 1, // NE
	arch.CondAE: 2, // HS
	arch.CondB:  3, // LO
	arch.CondS:  4, // MI
	arch.CondNS: 5, // PL
	arch.CondO:  6, // VS
	arch.CondNO: 7, // VC
	arch.CondA:  8, // HI
	arch.CondBE: 9, // LS
	arch.CondGE: 10,
	arch.CondL:  11,
	arch.CondG:  12,
	arch.CondLE: 13,
}

// Asm assembles a chunk of A64 machine code with local labels and
// external fixups. The zero value is ready to use. Every emission is
// one 4-byte little-endian word; chunk offsets are always
// word-aligned.
type Asm struct {
	buf    []byte
	labels map[string]int
	// pending local references, patched at Finish.
	localRefs []localRef
	fixups    []Fixup
	err       error
}

type localRef struct {
	off   int // offset of the instruction word to patch
	kind  arch.FixupKind
	label string
}

func (a *Asm) setErr(format string, args ...any) {
	if a.err == nil {
		a.err = fmt.Errorf(format, args...)
	}
}

// Len returns the current chunk length.
func (a *Asm) Len() int { return len(a.buf) }

// Label defines a local label at the current position.
func (a *Asm) Label(name string) {
	if a.labels == nil {
		a.labels = make(map[string]int)
	}
	if _, dup := a.labels[name]; dup {
		a.setErr("duplicate label %q", name)
		return
	}
	a.labels[name] = len(a.buf)
}

// LabelOff returns the chunk offset of a defined label.
func (a *Asm) LabelOff(name string) (int, bool) {
	off, ok := a.labels[name]
	return off, ok
}

// Finish resolves local references and returns the machine code and
// the remaining external fixups.
func (a *Asm) Finish() ([]byte, []Fixup, error) {
	for _, r := range a.localRefs {
		target, ok := a.labels[r.label]
		if !ok {
			a.setErr("undefined local label %q", r.label)
			break
		}
		rel := int64(target-r.off) / 4
		w := binary.LittleEndian.Uint32(a.buf[r.off:])
		switch r.kind {
		case FixBranch26:
			if rel < -(1<<25) || rel >= 1<<25 {
				a.setErr("label %q out of branch26 range (%d)", r.label, rel)
			}
			w |= uint32(rel) & 0x03FFFFFF
		case FixCond19:
			if rel < -(1<<18) || rel >= 1<<18 {
				a.setErr("label %q out of cond19 range (%d)", r.label, rel)
			}
			w |= (uint32(rel) & 0x7FFFF) << 5
		}
		binary.LittleEndian.PutUint32(a.buf[r.off:], w)
	}
	if a.err != nil {
		return nil, nil, a.err
	}
	return a.buf, a.fixups, nil
}

// word appends one instruction word.
func (a *Asm) word(w uint32) {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], w)
	a.buf = append(a.buf, tmp[:]...)
}

// AppendRaw appends raw bytes verbatim (data islands, deliberately
// malformed words).
func (a *Asm) AppendRaw(bs ...byte) { a.buf = append(a.buf, bs...) }

// --- Stack and frame ---

// StpPre emits stp rt, rt2, [sp, #imm]! (the frame-save prologue;
// imm must be a multiple of 8 in [-512, 504]).
func (a *Asm) StpPre(rt, rt2 arch.Reg, imm int32) {
	if imm%8 != 0 || imm < -512 || imm > 504 {
		a.setErr("stp writeback %d out of imm7 range", imm)
		return
	}
	a.word(0xA9800000 | (uint32(imm/8)&0x7F)<<15 | uint32(rt2)<<10 | uint32(SP)<<5 | uint32(rt))
}

// LdpPost emits ldp rt, rt2, [sp], #imm (the frame-restore epilogue).
func (a *Asm) LdpPost(rt, rt2 arch.Reg, imm int32) {
	if imm%8 != 0 || imm < -512 || imm > 504 {
		a.setErr("ldp writeback %d out of imm7 range", imm)
		return
	}
	a.word(0xA8C00000 | (uint32(imm/8)&0x7F)<<15 | uint32(rt2)<<10 | uint32(SP)<<5 | uint32(rt))
}

// StrPre emits str rt, [sp, #imm]! (single-register save; imm in
// [-256, 255]).
func (a *Asm) StrPre(rt arch.Reg, imm int32) {
	a.word(0xF8000C00 | (uint32(imm)&0x1FF)<<12 | uint32(SP)<<5 | uint32(rt))
}

// LdrPost emits ldr rt, [sp], #imm (single-register restore).
func (a *Asm) LdrPost(rt arch.Reg, imm int32) {
	a.word(0xF8400400 | (uint32(imm)&0x1FF)<<12 | uint32(SP)<<5 | uint32(rt))
}

// SubSP emits sub sp, sp, #imm.
func (a *Asm) SubSP(imm int32) { a.addImm(SP, SP, imm, true, false) }

// AddSP emits add sp, sp, #imm.
func (a *Asm) AddSP(imm int32) { a.addImm(SP, SP, imm, false, false) }

// MovFPSP emits mov x29, sp (the frame-pointer establishment).
func (a *Asm) MovFPSP() { a.addImm(X29, SP, 0, false, false) }

// Ret emits ret (x30).
func (a *Asm) Ret() { a.word(0xD65F0000 | uint32(X30)<<5) }

// --- Moves and arithmetic ---

// MovRegReg emits mov dst, src (orr dst, xzr, src).
func (a *Asm) MovRegReg(dst, src arch.Reg) {
	a.word(0xAA0003E0 | uint32(src)<<16 | uint32(dst))
}

// MovRegImm emits the shortest movz/movn(+movk) sequence putting v in
// dst.
func (a *Asm) MovRegImm(dst arch.Reg, v int64) {
	u := uint64(v)
	if v < 0 && ^u&0xFFFFFFFFFFFF0000 == 0 {
		// movn dst, #^imm16
		a.word(0x92800000 | uint32(^u&0xFFFF)<<5 | uint32(dst))
		return
	}
	// movz for the lowest 16 bits, movk for each higher non-zero half.
	a.word(0xD2800000 | uint32(u&0xFFFF)<<5 | uint32(dst))
	for hw := uint32(1); hw <= 3; hw++ {
		half := (u >> (16 * hw)) & 0xFFFF
		if half != 0 {
			a.word(0xF2800000 | hw<<21 | uint32(half)<<5 | uint32(dst))
		}
	}
}

// addImm emits add/sub dst, src, #imm (imm in [0, 4095], or a
// multiple of 4096 up to 1<<24).
func (a *Asm) addImm(dst, src arch.Reg, imm int32, sub, setFlags bool) {
	if imm < 0 {
		sub = !sub
		imm = -imm
	}
	base := uint32(0x91000000)
	if sub {
		base = 0xD1000000
	}
	if setFlags {
		base |= 1 << 29
	}
	switch {
	case imm < 1<<12:
		a.word(base | uint32(imm)<<10 | uint32(src)<<5 | uint32(dst))
	case imm%(1<<12) == 0 && imm < 1<<24:
		a.word(base | 1<<22 | uint32(imm>>12)<<10 | uint32(src)<<5 | uint32(dst))
	default:
		a.setErr("add/sub immediate %d not encodable", imm)
	}
}

// AddRegImm emits add dst, dst, #imm.
func (a *Asm) AddRegImm(dst arch.Reg, imm int32) { a.addImm(dst, dst, imm, false, false) }

// SubRegImm emits sub dst, dst, #imm.
func (a *Asm) SubRegImm(dst arch.Reg, imm int32) { a.addImm(dst, dst, imm, true, false) }

// AddRegRegImm emits add dst, src, #imm (the address-formation shape;
// with imm 0 and dst ≠ src the decoder reads it back as mov dst, src).
func (a *Asm) AddRegRegImm(dst, src arch.Reg, imm int32) { a.addImm(dst, src, imm, false, false) }

// AddRegReg emits add dst, dst, src.
func (a *Asm) AddRegReg(dst, src arch.Reg) {
	a.word(0x8B000000 | uint32(src)<<16 | uint32(dst)<<5 | uint32(dst))
}

// AddRegRegReg emits add dst, x, y.
func (a *Asm) AddRegRegReg(dst, x, y arch.Reg) {
	a.word(0x8B000000 | uint32(y)<<16 | uint32(x)<<5 | uint32(dst))
}

// SubRegReg emits sub dst, dst, src.
func (a *Asm) SubRegReg(dst, src arch.Reg) {
	a.word(0xCB000000 | uint32(src)<<16 | uint32(dst)<<5 | uint32(dst))
}

// CmpRegImm emits cmp r, #imm (subs xzr, r, #imm).
func (a *Asm) CmpRegImm(r arch.Reg, imm int32) {
	if imm < 0 || imm >= 1<<12 {
		a.setErr("cmp immediate %d not encodable", imm)
		return
	}
	a.word(0xF1000000 | uint32(imm)<<10 | uint32(r)<<5 | 31)
}

// CmpRegReg emits cmp x, y.
func (a *Asm) CmpRegReg(x, y arch.Reg) {
	a.word(0xEB000000 | uint32(y)<<16 | uint32(x)<<5 | 31)
}

// TestRegReg emits tst x, y (ands xzr, x, y).
func (a *Asm) TestRegReg(x, y arch.Reg) {
	a.word(0xEA000000 | uint32(y)<<16 | uint32(x)<<5 | 31)
}

// MulRegReg emits mul dst, dst, src.
func (a *Asm) MulRegReg(dst, src arch.Reg) {
	a.word(0x9B007C00 | uint32(src)<<16 | uint32(dst)<<5 | uint32(dst))
}

// LslRegImm emits lsl dst, dst, #sh (ubfm).
func (a *Asm) LslRegImm(dst arch.Reg, sh uint8) {
	immr := uint32(64-sh) & 0x3F
	imms := uint32(63 - sh)
	a.word(0xD3400000 | immr<<16 | imms<<10 | uint32(dst)<<5 | uint32(dst))
}

// LdrRegMem emits ldr dst, [base, #imm] (imm a multiple of 8 in
// [0, 32760]).
func (a *Asm) LdrRegMem(dst, base arch.Reg, imm int32) {
	if imm%8 != 0 || imm < 0 || imm/8 >= 1<<12 {
		a.setErr("ldr offset %d not encodable", imm)
		return
	}
	a.word(0xF9400000 | uint32(imm/8)<<10 | uint32(base)<<5 | uint32(dst))
}

// StrRegMem emits str src, [base, #imm].
func (a *Asm) StrRegMem(src, base arch.Reg, imm int32) {
	if imm%8 != 0 || imm < 0 || imm/8 >= 1<<12 {
		a.setErr("str offset %d not encodable", imm)
		return
	}
	a.word(0xF9000000 | uint32(imm/8)<<10 | uint32(base)<<5 | uint32(src))
}

// LdrIdx8 emits ldr dst, [base, index, lsl #3] (absolute jump-table
// entry load).
func (a *Asm) LdrIdx8(dst, base, index arch.Reg) {
	a.word(0xF8607800 | uint32(index)<<16 | uint32(base)<<5 | uint32(dst))
}

// LdrswIdx4 emits ldrsw dst, [base, index, lsl #2] (PIC jump-table
// entry load).
func (a *Asm) LdrswIdx4(dst, base, index arch.Reg) {
	a.word(0xB8A07800 | uint32(index)<<16 | uint32(base)<<5 | uint32(dst))
}

// --- PC-relative and externally-fixed-up forms ---

// AdrpSym emits adrp dst, page(sym+addend), patched at link time.
func (a *Asm) AdrpSym(dst arch.Reg, sym string, addend int64) {
	off := len(a.buf)
	a.word(0x90000000 | uint32(dst))
	a.fixups = append(a.fixups, Fixup{Kind: FixPage21, Off: off, End: off + 4, Sym: sym, Addend: addend})
}

// AddLo12Sym emits add dst, dst, #:lo12:(sym+addend).
func (a *Asm) AddLo12Sym(dst arch.Reg, sym string, addend int64) {
	off := len(a.buf)
	a.word(0x91000000 | uint32(dst)<<5 | uint32(dst))
	a.fixups = append(a.fixups, Fixup{Kind: FixLo12, Off: off, End: off + 4, Sym: sym, Addend: addend})
}

// AdrSym emits the adrp+add pair materializing sym+addend into dst
// (the canonical address-formation sequence).
func (a *Asm) AdrSym(dst arch.Reg, sym string, addend int64) {
	a.AdrpSym(dst, sym, addend)
	a.AddLo12Sym(dst, sym, addend)
}

// AdrNearSym emits a single adr dst, sym — exact-address formation for
// targets within ±1 MiB. Its immediate IS the target address after
// resolution, so the §IV-E constant harvest lands on the symbol
// directly (the shape function-pointer materialization uses).
func (a *Asm) AdrNearSym(dst arch.Reg, sym string) {
	off := len(a.buf)
	a.word(0x10000000 | uint32(dst))
	a.fixups = append(a.fixups, Fixup{Kind: FixAdr21, Off: off, End: off + 4, Sym: sym})
}

// LdrLitSym emits ldr dst, =sym — an LDR literal whose word offset is
// patched to the symbol at link time (the literal itself must be
// placed by the linker; Cond19 patches the imm19 field identically).
func (a *Asm) LdrLitSym(dst arch.Reg, sym string) {
	off := len(a.buf)
	a.word(0x58000000 | uint32(dst))
	a.fixups = append(a.fixups, Fixup{Kind: FixCond19, Off: off, End: off + 4, Sym: sym})
}

// BlSym emits bl sym.
func (a *Asm) BlSym(sym string) {
	off := len(a.buf)
	a.word(0x94000000)
	a.fixups = append(a.fixups, Fixup{Kind: FixBranch26, Off: off, End: off + 4, Sym: sym})
}

// BSym emits b sym (tail calls, part links).
func (a *Asm) BSym(sym string) {
	off := len(a.buf)
	a.word(0x14000000)
	a.fixups = append(a.fixups, Fixup{Kind: FixBranch26, Off: off, End: off + 4, Sym: sym})
}

// BcondSym emits b.cond sym to an external symbol.
func (a *Asm) BcondSym(c arch.Cond, sym string) {
	cc, ok := a64Cond[c]
	if !ok {
		a.setErr("condition %v has no a64 encoding", c)
		return
	}
	off := len(a.buf)
	a.word(0x54000000 | cc)
	a.fixups = append(a.fixups, Fixup{Kind: FixCond19, Off: off, End: off + 4, Sym: sym})
}

// Blr emits blr r.
func (a *Asm) Blr(r arch.Reg) { a.word(0xD63F0000 | uint32(r)<<5) }

// Br emits br r.
func (a *Asm) Br(r arch.Reg) { a.word(0xD61F0000 | uint32(r)<<5) }

// --- Local control flow ---

// B emits b to a local label.
func (a *Asm) B(label string) {
	a.localRefs = append(a.localRefs, localRef{off: len(a.buf), kind: FixBranch26, label: label})
	a.word(0x14000000)
}

// Bcond emits b.cond to a local label.
func (a *Asm) Bcond(c arch.Cond, label string) {
	cc, ok := a64Cond[c]
	if !ok {
		a.setErr("condition %v has no a64 encoding", c)
		return
	}
	a.localRefs = append(a.localRefs, localRef{off: len(a.buf), kind: FixCond19, label: label})
	a.word(0x54000000 | cc)
}

// Cbz emits cbz r, label.
func (a *Asm) Cbz(r arch.Reg, label string) {
	a.localRefs = append(a.localRefs, localRef{off: len(a.buf), kind: FixCond19, label: label})
	a.word(0xB4000000 | uint32(r))
}

// Cbnz emits cbnz r, label.
func (a *Asm) Cbnz(r arch.Reg, label string) {
	a.localRefs = append(a.localRefs, localRef{off: len(a.buf), kind: FixCond19, label: label})
	a.word(0xB5000000 | uint32(r))
}

// --- Misc ---

// Bti emits bti c (the BTI landing pad).
func (a *Asm) Bti() { a.word(0xD503245F) }

// Nop emits one nop word.
func (a *Asm) Nop() { a.word(0xD503201F) }

// Brk emits brk #0 (trap padding).
func (a *Asm) Brk() { a.word(0xD4200000) }

// Udf emits udf #0 (the permanently-undefined word).
func (a *Asm) Udf() { a.word(0x00000000) }

// Hlt emits hlt #0.
func (a *Asm) Hlt() { a.word(0xD4400000) }

// Svc emits svc #0.
func (a *Asm) Svc() { a.word(0xD4000001) }

// Pad emits n bytes of nop padding; n must be a multiple of 4.
func (a *Asm) Pad(n int) {
	if n%4 != 0 {
		a.setErr("a64 padding %d not word-aligned", n)
		return
	}
	for i := 0; i < n; i += 4 {
		a.Nop()
	}
}
