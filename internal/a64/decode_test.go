package a64

import (
	"encoding/binary"
	"testing"

	"fetch/internal/arch"
)

// word packs an instruction word little-endian.
func word(w uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], w)
	return b[:]
}

func decodeWord(t *testing.T, w uint32, addr uint64) arch.Inst {
	t.Helper()
	in, err := Decode(word(w), addr)
	if err != nil {
		t.Fatalf("Decode(%#08x): %v", w, err)
	}
	if in.Len != 4 || in.Enc != w {
		t.Fatalf("Decode(%#08x): Len=%d Enc=%#x", w, in.Len, in.Enc)
	}
	return in
}

func TestDecodeBranches(t *testing.T) {
	const base = 0x401000

	// bl +0x40
	in := decodeWord(t, 0x94000010, base)
	if in.Op != arch.OpCall || !in.HasTarget || in.Target != base+0x40 {
		t.Errorf("bl: %v", &in)
	}
	// b -4
	in = decodeWord(t, 0x17FFFFFF, base)
	if in.Op != arch.OpJmp || in.Target != base-4 {
		t.Errorf("b: %v", &in)
	}
	// b.hi +8 → CondA under the shared numbering
	in = decodeWord(t, 0x54000048, base)
	if in.Op != arch.OpJcc || in.Cond != arch.CondA || in.Target != base+8 {
		t.Errorf("b.hi: %v", &in)
	}
	// b.al is architecturally unconditional
	in = decodeWord(t, 0x5400004E, base)
	if in.Op != arch.OpJmp {
		t.Errorf("b.al: %v", &in)
	}
	// cbz x3, +16
	in = decodeWord(t, 0xB4000083, base)
	if in.Op != arch.OpJcc || in.Cond != arch.CondE || in.Target != base+16 ||
		len(in.Args) != 1 || in.Args[0].Reg != X3 {
		t.Errorf("cbz: %v", &in)
	}
	// cbnz x3, +16
	in = decodeWord(t, 0xB5000083, base)
	if in.Op != arch.OpJcc || in.Cond != arch.CondNE {
		t.Errorf("cbnz: %v", &in)
	}
	// br x2 / blr x2 / ret
	in = decodeWord(t, 0xD61F0040, base)
	if in.Op != arch.OpJmpInd || in.Args[0].Reg != X2 {
		t.Errorf("br: %v", &in)
	}
	in = decodeWord(t, 0xD63F0040, base)
	if in.Op != arch.OpCallInd {
		t.Errorf("blr: %v", &in)
	}
	in = decodeWord(t, 0xD65F03C0, base)
	if in.Op != arch.OpRet || !in.Terminates() {
		t.Errorf("ret: %v", &in)
	}
}

func TestDecodeAddressFormation(t *testing.T) {
	const base = 0x401004 // deliberately not page-aligned

	// adrp x1, next page: imm21 = 1 (immlo) → target (base&^0xFFF)+0x1000.
	in := decodeWord(t, 0xB0000001, base)
	if in.Op != arch.OpLea || len(in.Args) != 2 || in.Args[0].Reg != X1 {
		t.Fatalf("adrp: %v", &in)
	}
	want := (uint64(base) &^ 0xFFF) + 0x1000
	cs := in.Constants()
	if len(cs) != 1 || cs[0] != want {
		t.Errorf("adrp constants = %#x, want [%#x]", cs, want)
	}

	// adr x1, .+8
	in = decodeWord(t, 0x10000041, base)
	cs = in.Constants()
	if len(cs) != 1 || cs[0] != base+8 {
		t.Errorf("adr constants = %#x, want [%#x]", cs, base+8)
	}

	// ldr x5, .+0x20 (literal)
	in = decodeWord(t, 0x58000105, base)
	if in.Op != arch.OpMov || in.Args[1].Kind != arch.KindMem || !in.Args[1].Mem.RIPRel {
		t.Fatalf("ldr literal: %v", &in)
	}
	cs = in.Constants()
	if len(cs) != 1 || cs[0] != base+0x20 {
		t.Errorf("ldr literal constants = %#x, want [%#x]", cs, base+0x20)
	}

	// ldrsw x5, .+0x20
	in = decodeWord(t, 0x98000105, base)
	if in.Op != arch.OpMovsxd {
		t.Errorf("ldrsw literal: %v", &in)
	}
}

func TestDecodeArithmeticAliases(t *testing.T) {
	const base = 0x401000

	// cmp x4, #11 (subs xzr, x4, #11)
	in := decodeWord(t, 0xF1002C9F, base)
	if in.Op != arch.OpCmp || in.Args[0].Reg != X4 ||
		in.Args[1].Kind != arch.KindImm || in.Args[1].Imm != 11 {
		t.Errorf("cmp imm: %v", &in)
	}
	// mov x29, sp (add x29, sp, #0)
	in = decodeWord(t, 0x910003FD, base)
	if in.Op != arch.OpMov || in.Args[0].Reg != X29 || in.Args[1].Reg != SP {
		t.Errorf("mov fp, sp: %v", &in)
	}
	// sub sp, sp, #0x20
	in = decodeWord(t, 0xD10083FF, base)
	if in.Op != arch.OpSub || in.Args[0].Reg != SP || in.Args[2].Imm != 0x20 {
		t.Errorf("sub sp: %v", &in)
	}
	if d, known := StackDelta(&in); !known || d != -0x20 {
		t.Errorf("sub sp delta = %d,%v", d, known)
	}
	// tst x0, x0 (ands xzr, x0, x0) — the §IV-C gate test
	in = decodeWord(t, 0xEA00001F, base)
	if !arch.IsGateTest(&in, X0) {
		t.Errorf("tst x0, x0 not recognized as gate test: %v", &in)
	}
	// mov x1, x2 (orr x1, xzr, x2)
	in = decodeWord(t, 0xAA0203E1, base)
	if in.Op != arch.OpMov || in.Args[0].Reg != X1 || in.Args[1].Reg != X2 {
		t.Errorf("mov reg: %v", &in)
	}
	// add x3, x1, x2
	in = decodeWord(t, 0x8B020023, base)
	if in.Op != arch.OpAdd || in.Args[0].Reg != X3 || in.Args[1].Reg != X1 || in.Args[2].Reg != X2 {
		t.Errorf("add reg: %v", &in)
	}
}

func TestDecodeMovImmediates(t *testing.T) {
	const base = 0x401000

	// movz x0, #0 — the x0 zeroing idiom
	in := decodeWord(t, 0xD2800000, base)
	if in.Op != arch.OpMov || in.Args[0].Reg != X0 || in.Args[1].Imm != 0 {
		t.Fatalf("movz 0: %v", &in)
	}
	if Arch.GateEffect(&in) != arch.GateSetZero {
		t.Errorf("movz x0,#0 gate effect = %v", Arch.GateEffect(&in))
	}
	// movz x0, #7
	in = decodeWord(t, 0xD28000E0, base)
	if in.Args[1].Imm != 7 || Arch.GateEffect(&in) != arch.GateSetNonZero {
		t.Errorf("movz x0,#7: %v", &in)
	}
	// movz x0, #1, lsl #16
	in = decodeWord(t, 0xD2A00020, base)
	if in.Args[1].Imm != 1<<16 {
		t.Errorf("movz shifted imm = %#x", in.Args[1].Imm)
	}
	// movn x0, #0 → value ^0 = -1
	in = decodeWord(t, 0x92800000, base)
	if in.Op != arch.OpMov || in.Args[1].Imm != -1 {
		t.Errorf("movn: %v", &in)
	}
	// movk x0, #1, lsl #16: a partial insert must degrade the gate
	// state, not claim a definition.
	in = decodeWord(t, 0xF2A00020, base)
	if Arch.GateEffect(&in) != arch.GateSetUnknown {
		t.Errorf("movk gate effect = %v", Arch.GateEffect(&in))
	}
	if !Writes(&in).Has(X0) || !Reads(&in).Has(X0) {
		t.Errorf("movk reads=%v writes=%v", Reads(&in), Writes(&in))
	}
}

func TestDecodeStackShapes(t *testing.T) {
	const base = 0x401000

	// stp x29, x30, [sp, #-16]!
	in := decodeWord(t, 0xA9BF7BFD, base)
	if in.Op != arch.OpPush || in.Args[0].Reg != X29 || in.Args[1].Reg != X30 {
		t.Fatalf("stp pre: %v", &in)
	}
	if d, known := StackDelta(&in); !known || d != -16 {
		t.Errorf("stp delta = %d,%v", d, known)
	}
	if Reads(&in).Has(X29) || Reads(&in).Has(X30) {
		t.Errorf("stp save counted as a use: %v", Reads(&in))
	}
	// ldp x29, x30, [sp], #16
	in = decodeWord(t, 0xA8C17BFD, base)
	if in.Op != arch.OpPop {
		t.Fatalf("ldp post: %v", &in)
	}
	if d, known := StackDelta(&in); !known || d != 16 {
		t.Errorf("ldp delta = %d,%v", d, known)
	}
	w := Writes(&in)
	if !w.Has(X29) || !w.Has(X30) || !w.Has(SP) {
		t.Errorf("ldp writes = %v", w)
	}
	// str x30, [sp, #-16]!
	in = decodeWord(t, 0xF81F0FFE, base)
	if in.Op != arch.OpPush {
		t.Fatalf("str pre: %v", &in)
	}
	if d, known := StackDelta(&in); !known || d != -16 {
		t.Errorf("str pre delta = %d,%v", d, known)
	}
	// ldr x30, [sp], #16
	in = decodeWord(t, 0xF84107FE, base)
	if in.Op != arch.OpPop {
		t.Fatalf("ldr post: %v", &in)
	}
	if d, known := StackDelta(&in); !known || d != 16 {
		t.Errorf("ldr post delta = %d,%v", d, known)
	}
}

func TestDecodeLoadsStores(t *testing.T) {
	const base = 0x401000

	// ldr x0, [x1, #16]
	in := decodeWord(t, 0xF9400820, base)
	if in.Op != arch.OpMov || in.Args[0].Reg != X0 ||
		in.Args[1].Mem.Base != X1 || in.Args[1].Mem.Disp != 16 {
		t.Errorf("ldr imm: %v", &in)
	}
	// str x0, [x1, #16]: store form, memory destination first
	in = decodeWord(t, 0xF9000820, base)
	if in.Op != arch.OpMov || in.Args[0].Kind != arch.KindMem || in.Args[1].Reg != X0 {
		t.Errorf("str imm: %v", &in)
	}
	if !Reads(&in).Has(X0) || !Reads(&in).Has(X1) {
		t.Errorf("str reads = %v", Reads(&in))
	}
	// ldr x2, [x1, x3, lsl #3] — absolute jump-table load
	in = decodeWord(t, 0xF8637822, base)
	if in.Op != arch.OpMov || in.Args[1].Mem.Base != X1 ||
		in.Args[1].Mem.Index != X3 || in.Args[1].Mem.Scale != 8 {
		t.Errorf("ldr reg-offset: %v", &in)
	}
	// ldrsw x2, [x1, x3, lsl #2] — PIC jump-table load
	in = decodeWord(t, 0xB8A37822, base)
	if in.Op != arch.OpMovsxd || in.Args[1].Mem.Scale != 4 {
		t.Errorf("ldrsw reg-offset: %v", &in)
	}
}

func TestDecodePaddingAndTraps(t *testing.T) {
	in := decodeWord(t, 0xD503201F, 0)
	if in.Op != arch.OpNop || !in.IsPadding() {
		t.Errorf("nop: %v", &in)
	}
	in = decodeWord(t, 0xD503245F, 0) // bti c
	if in.Op != arch.OpEndbr64 {
		t.Errorf("bti: %v", &in)
	}
	in = decodeWord(t, 0xD4200000, 0) // brk #0
	if in.Op != arch.OpInt3 || !in.IsPadding() {
		t.Errorf("brk: %v", &in)
	}
	in = decodeWord(t, 0xD4400000, 0) // hlt #0
	if in.Op != arch.OpHlt {
		t.Errorf("hlt: %v", &in)
	}
	in = decodeWord(t, 0x00000000, 0) // udf #0
	if in.Op != arch.OpUd2 || !in.Terminates() {
		t.Errorf("udf: %v", &in)
	}
	in = decodeWord(t, 0xD4000001, 0) // svc #0
	if in.Op != arch.OpSyscall {
		t.Errorf("svc: %v", &in)
	}
}

func TestDecodeUnmodeledIsOpaque(t *testing.T) {
	// An FP instruction (fadd d0, d1, d2) must decode as an opaque
	// 4-byte OpOther, not an error: real aarch64 code is full of them.
	in := decodeWord(t, 0x1E622820, 0x1000)
	if in.Op != arch.OpOther || in.Classified {
		t.Errorf("fadd: %v (classified=%v)", &in, in.Classified)
	}
	if d, known := StackDelta(&in); !known || d != 0 {
		t.Errorf("opaque delta = %d,%v", d, known)
	}
	// Truncated windows are the only decode error.
	if _, err := Decode([]byte{0x1F, 0x20, 0x03}, 0); err == nil {
		t.Error("3-byte window decoded")
	}
}

func TestISASurface(t *testing.T) {
	if Arch.Name() != "a64" || Arch.Machine() != EMachine || EMachine != 183 {
		t.Errorf("identity: %s/%d", Arch.Name(), Arch.Machine())
	}
	if Arch.MaxInstLen() != 4 || Arch.InstAlign() != 4 {
		t.Errorf("geometry: %d/%d", Arch.MaxInstLen(), Arch.InstAlign())
	}
	if Arch.SPReg() != SP || Arch.FrameReg() != X29 || Arch.GateReg() != X0 {
		t.Errorf("registers: %v/%v/%v", Arch.SPReg(), Arch.FrameReg(), Arch.GateReg())
	}
	if Arch.CFISPReg() != 31 || Arch.CFIRAReg() != 30 || Arch.CFIEntryOffset() != 0 {
		t.Errorf("CFI: %d/%d/%d", Arch.CFISPReg(), Arch.CFIRAReg(), Arch.CFIEntryOffset())
	}
	if n := len(Arch.ArgRegs()); n != 8 {
		t.Errorf("arg regs: %d", n)
	}
	if !Arch.IsArgReg(X7) || Arch.IsArgReg(X8) {
		t.Error("arg reg boundary wrong")
	}
	if arch.ForMachine(EMachine) == nil {
		t.Error("a64 backend not registered")
	}
}

func TestCallConvSemantics(t *testing.T) {
	// bl: writes the caller-saved file and the link register.
	in := decodeWord(t, 0x94000001, 0x1000)
	w := Writes(&in)
	for r := X0; r <= X18; r++ {
		if !w.Has(r) {
			t.Errorf("bl does not write %v", r)
		}
	}
	if !w.Has(X30) {
		t.Error("bl does not write x30")
	}
	if w.Has(X19) || w.Has(SP) {
		t.Errorf("bl clobbers callee-saved: %v", w)
	}
	// ret reads the link register.
	in = decodeWord(t, 0xD65F03C0, 0x1000)
	if !Reads(&in).Has(X30) {
		t.Error("ret does not read x30")
	}
}
