package a64

import "testing"

// benchSink keeps the decode loop from being optimized away.
var benchSink int

// benchCode assembles ~64 KiB of representative straight-line code —
// the frame/ALU/memory mix synth emits — for throughput runs.
func benchCode(b *testing.B) []byte {
	b.Helper()
	var a Asm
	for a.Len() < 1<<16 {
		a.StpPre(X29, X30, -16)
		a.MovFPSP()
		a.SubSP(0x20)
		a.MovRegImm(X9, 0x1234)
		a.LdrRegMem(X10, X29, 8)
		a.AddRegReg(X9, X10)
		a.CmpRegImm(X9, 64)
		a.TestRegReg(X0, X0)
		a.MulRegReg(X9, X10)
		a.LslRegImm(X9, 3)
		a.AddRegRegImm(X11, SP, 0x10)
		a.StrRegMem(X9, X29, 16)
		a.AddSP(0x20)
		a.LdpPost(X29, X30, 16)
		a.Ret()
	}
	code, fixups, err := a.Finish()
	if err != nil {
		b.Fatal(err)
	}
	if len(fixups) != 0 {
		b.Fatalf("bench code has %d unresolved fixups", len(fixups))
	}
	return code
}

// BenchmarkDecodeThroughput measures raw linear decode speed over the
// representative mix; MB/s is the headline cross-backend number
// (BENCH_10.json pairs it with the x86-64 twin).
func BenchmarkDecodeThroughput(b *testing.B) {
	code := benchCode(b)
	const base = 0x401000
	b.SetBytes(int64(len(code)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for off := 0; off < len(code); {
			in, err := Decode(code[off:], base+uint64(off))
			if err != nil {
				b.Fatal(err)
			}
			off += int(in.Len)
			n++
		}
		benchSink = n
	}
}
