// Package a64 implements the aarch64 backend of the arch.ISA
// interface: a fixed-width A64 decoder covering the instruction
// classes the analysis pipeline consumes (branches, literal and
// register loads, the arithmetic/logical core, load/store pairs), the
// AAPCS64 register-semantic facts, the ADRP-anchored jump-table
// idioms, and an assembler for the synthetic-binary compiler.
//
// Register numbering is the hardware one: X0=0 .. X30=30, with SP=31.
// The zero register XZR shares encoding 31 with SP; the decoder
// resolves the ambiguity per instruction class and represents XZR
// operands as arch.RegNone (they carry no dataflow).
package a64

import "fetch/internal/arch"

// AAPCS64 general-purpose registers.
const (
	X0 arch.Reg = iota
	X1
	X2
	X3
	X4
	X5
	X6
	X7
	X8
	X9
	X10
	X11
	X12
	X13
	X14
	X15
	X16
	X17
	X18
	X19
	X20
	X21
	X22
	X23
	X24
	X25
	X26
	X27
	X28
	X29 // frame pointer
	X30 // link register
	SP  // stack pointer (encoding 31 in base-register positions)
)

// RegNone marks an absent register (and the zero register XZR, which
// contributes no dataflow).
const RegNone = arch.RegNone

// ArgumentRegs are the AAPCS64 integer argument registers.
var ArgumentRegs = [...]arch.Reg{X0, X1, X2, X3, X4, X5, X6, X7}

// IsArgumentReg reports whether r is an AAPCS64 integer argument
// register.
func IsArgumentReg(r arch.Reg) bool { return r <= X7 }

// CalleeSavedRegs are the AAPCS64 callee-saved registers (x19–x28 plus
// the frame pointer).
var CalleeSavedRegs = [...]arch.Reg{X19, X20, X21, X22, X23, X24, X25, X26, X27, X28, X29}

// IsCalleeSaved reports whether r must be preserved across calls.
func IsCalleeSaved(r arch.Reg) bool { return r >= X19 && r <= X29 }
