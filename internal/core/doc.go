// Package core assembles the FETCH pipeline: FDE extraction, safe
// recursive disassembly (§IV-C), conservative function-pointer
// detection (§IV-E), and Algorithm 1's error fixing (§V-B) — the
// "optimal strategies" configuration of Figure 5c, with each stage
// individually switchable so the evaluation can reproduce every
// strategy combination the paper measures.
//
// # Contract
//
// The pipeline is an explicit ordered pass list (fde, recursive, xref,
// tailcall — the Passes slice is the single source of truth for
// ordering) running over one shared incremental disasm.Session and one
// Report. After the initial sweep no pass pays a cold resweep: xref
// iterations re-analyze via Session.Extend, the §V-B CFI-error
// recovery via Session.Retract, and candidate validation probes via
// Session.Fork — all byte-identical to from-scratch runs by the
// Session contract. Symbols are never consulted; every input is
// treated as stripped.
//
// Two properties are load-bearing for everything built on top:
//
//   - Determinism: Analyze's Report depends only on the binary bytes
//     and the Strategy. Wall-clock timings in Stats are the single
//     exception. The public API's result cache and the batch engine's
//     dedup both rely on this — they key results by (binary hash,
//     strategy) alone.
//   - Reference equivalence: ScratchAnalyze is the pre-session
//     pipeline kept verbatim as the from-scratch reference. Analyze
//     must match it byte-for-byte on every binary and strategy; the
//     equivalence suites here and the internal/oracle checkers diff
//     the two on every synthesized shape.
//
// Strategy enumeration helpers (AllStrategies, Lattice) give the
// evaluation and the oracle the full matrix and the paper's cumulative
// ladder respectively.
package core
