package core

import (
	"fmt"
	"reflect"
	"testing"

	"fetch/internal/disasm"
	"fetch/internal/elfx"
	"fetch/internal/synth"
)

// equivCorpus mirrors the synth corpus mix: both compilers, both
// languages, all optimization levels, plus shapes that force every
// incremental path (xref extends, CFI-error retracts, part merges).
func equivCorpus(t *testing.T) []*elfx.Image {
	t.Helper()
	var imgs []*elfx.Image
	seed := int64(91000)
	for _, comp := range []synth.Compiler{synth.GCC, synth.Clang} {
		for _, opt := range []synth.Opt{synth.O2, synth.Os} {
			seed++
			cfg := synth.DefaultConfig(fmt.Sprintf("equiv-%d", seed), seed, opt, comp, synth.LangC)
			cfg.NumFuncs = 60
			img, _, err := synth.Generate(cfg)
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			imgs = append(imgs, img.Strip())
		}
	}
	for i, mutate := range []func(*synth.Config){
		func(c *synth.Config) { c.CFIErrorCount = 2 },
		func(c *synth.Config) { c.IndirectOnlyRate = 0.1 },
		func(c *synth.Config) { c.NonContigRate = 0.25 },
		func(c *synth.Config) { c.Lang = synth.LangCPP },
	} {
		cfg := synth.DefaultConfig(fmt.Sprintf("equiv-shape-%d", i), 92000+int64(i), synth.O2, synth.GCC, synth.LangC)
		cfg.NumFuncs = 60
		mutate(&cfg)
		img, _, err := synth.Generate(cfg)
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		imgs = append(imgs, img.Strip())
	}
	return imgs
}

// TestAnalyzeMatchesScratchPipeline is the hard equivalence gate: the
// session-based pass pipeline must produce Reports byte-identical to
// the from-scratch reference on every corpus binary under every
// Strategy combination.
func TestAnalyzeMatchesScratchPipeline(t *testing.T) {
	for bi, img := range equivCorpus(t) {
		for _, strat := range AllStrategies() {
			label := fmt.Sprintf("bin%d/rec=%v,xref=%v,tail=%v",
				bi, strat.Recursive, strat.Xref, strat.TailCall)
			got, err := Analyze(img, strat)
			if err != nil {
				t.Fatalf("%s: Analyze: %v", label, err)
			}
			want, err := ScratchAnalyze(img, strat)
			if err != nil {
				t.Fatalf("%s: scratch: %v", label, err)
			}
			if !reflect.DeepEqual(got.Funcs, want.Funcs) {
				t.Errorf("%s: Funcs differ (%d vs %d)", label, len(got.Funcs), len(want.Funcs))
			}
			if !reflect.DeepEqual(got.FDEStarts, want.FDEStarts) {
				t.Errorf("%s: FDEStarts differ", label)
			}
			if !reflect.DeepEqual(got.XrefNew, want.XrefNew) {
				t.Errorf("%s: XrefNew differs: %x vs %x", label, got.XrefNew, want.XrefNew)
			}
			if !reflect.DeepEqual(got.TailNew, want.TailNew) {
				t.Errorf("%s: TailNew differs", label)
			}
			if !reflect.DeepEqual(got.Merged, want.Merged) {
				t.Errorf("%s: Merged differs", label)
			}
			if !reflect.DeepEqual(got.CFIErrRemoved, want.CFIErrRemoved) {
				t.Errorf("%s: CFIErrRemoved differs", label)
			}
			if got.SkippedIncomplete != want.SkippedIncomplete {
				t.Errorf("%s: SkippedIncomplete %d vs %d", label,
					got.SkippedIncomplete, want.SkippedIncomplete)
			}
			if (got.Res == nil) != (want.Res == nil) {
				t.Fatalf("%s: Res nil-ness differs", label)
			}
			if got.Res != nil {
				if !reflect.DeepEqual(got.Res.Insts, want.Res.Insts) {
					t.Errorf("%s: final disassembly Insts differ", label)
				}
				if !reflect.DeepEqual(got.Res.Funcs, want.Res.Funcs) {
					t.Errorf("%s: final disassembly Funcs differ", label)
				}
				if !reflect.DeepEqual(got.Res.JTTargets, want.Res.JTTargets) {
					t.Errorf("%s: final disassembly JTTargets differ", label)
				}
				if !reflect.DeepEqual(got.Res.NonRet, want.Res.NonRet) {
					t.Errorf("%s: final disassembly NonRet differs", label)
				}
			}
		}
	}
}

// TestAnalyzeZeroResweeps is the acceptance gate for incrementality:
// after the initial sweep, the pipeline must never start another cold
// analysis — xref rounds extend, CFI-error recovery retracts, and
// candidate validation probes through forks, all on the one session.
func TestAnalyzeZeroResweeps(t *testing.T) {
	im, _ := build(t, 36, func(c *synth.Config) {
		c.CFIErrorCount = 2
		c.IndirectOnlyRate = 0.08
	})
	rep, err := Analyze(im, FETCH)
	if err != nil {
		t.Fatal(err)
	}
	st := rep.Stats
	if st.Disasm.ColdStarts != 1 {
		t.Errorf("ColdStarts = %d, want exactly 1 (the initial sweep)", st.Disasm.ColdStarts)
	}
	if st.Disasm.Extends < 2 {
		t.Errorf("Extends = %d, want >= 2 (initial + xref rounds)", st.Disasm.Extends)
	}
	if st.Disasm.Retracts != 1 {
		t.Errorf("Retracts = %d, want 1 (CFI-error recovery)", st.Disasm.Retracts)
	}
	if st.Disasm.Forks == 0 || st.Disasm.Probes == 0 {
		t.Errorf("candidate validation did not fork/probe: forks=%d probes=%d",
			st.Disasm.Forks, st.Disasm.Probes)
	}
	if st.Disasm.InstsReused == 0 {
		t.Error("pipeline reused no decodes — every stage decoded cold")
	}
	if st.XrefIterations < 2 {
		t.Errorf("XrefIterations = %d, want >= 2 (initial + post-recovery)", st.XrefIterations)
	}
	if !st.XrefConverged {
		t.Error("xref unexpectedly truncated on the test binary")
	}
	if len(st.Passes) != 4 {
		t.Fatalf("pass stats = %v, want 4 entries", st.Passes)
	}
	for i, name := range []string{"fde", "recursive", "xref", "tailcall"} {
		if st.Passes[i].Name != name {
			t.Errorf("pass %d = %q, want %q", i, st.Passes[i].Name, name)
		}
	}

	// The reference pipeline decodes every instruction cold each round;
	// the session must do strictly less decode work.
	if ref, err := ScratchAnalyze(im, FETCH); err == nil && ref != nil {
		lookups := st.Disasm.InstsDecoded + st.Disasm.InstsReused
		if st.Disasm.InstsDecoded >= lookups {
			t.Error("session decoded on every lookup")
		}
	}
}

// TestFDEOnlyStats pins the degenerate strategy: no session exists, so
// the stats stay zero and only the fde pass is recorded.
func TestFDEOnlyStats(t *testing.T) {
	im, _ := build(t, 37, nil)
	rep, err := Analyze(im, Strategy{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Stats.Disasm, disasm.Stats{}) {
		t.Errorf("FDE-only Disasm stats = %+v, want zero", rep.Stats.Disasm)
	}
	if len(rep.Stats.Passes) != 1 || rep.Stats.Passes[0].Name != "fde" {
		t.Errorf("FDE-only passes = %v", rep.Stats.Passes)
	}
	if !rep.Stats.XrefConverged {
		t.Error("XrefConverged should be vacuously true when xref is disabled")
	}
}
