package core

import (
	"testing"

	"fetch/internal/elfx"
	"fetch/internal/groundtruth"
	"fetch/internal/synth"
)

func build(t *testing.T, seed int64, mutate func(*synth.Config)) (*elfx.Image, *groundtruth.Truth) {
	t.Helper()
	cfg := synth.DefaultConfig("core-test", seed, synth.O2, synth.GCC, synth.LangC)
	if mutate != nil {
		mutate(&cfg)
	}
	im, truth, err := synth.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return im, truth
}

// classify splits a detection into FP/FN sets against the truth.
func classify(funcs map[uint64]bool, truth *groundtruth.Truth) (fps, fns []uint64) {
	for a := range funcs {
		if !truth.IsStart(a) {
			fps = append(fps, a)
		}
	}
	for _, fn := range truth.Funcs {
		if !funcs[fn.Addr] {
			fns = append(fns, fn.Addr)
		}
	}
	return
}

func TestFDEOnlyInheritsPartFalsePositives(t *testing.T) {
	im, truth := build(t, 30, func(c *synth.Config) { c.NonContigRate = 0.2 })
	rep, err := Analyze(im, Strategy{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	fps, _ := classify(rep.Funcs, truth)
	if len(truth.Parts) == 0 {
		t.Fatal("no parts generated")
	}
	// Every FP must be a part or a hand-written FDE error; every part
	// must be an FP of the FDE-only strategy (§V-A).
	partSet := map[uint64]bool{}
	for _, p := range truth.Parts {
		partSet[p.Addr] = true
	}
	errSet := map[uint64]bool{}
	for _, a := range truth.CFIErrorAddrs {
		errSet[a] = true
	}
	for _, fp := range fps {
		if !partSet[fp] && !errSet[fp] {
			t.Errorf("unexplained FDE-only FP at %#x", fp)
		}
	}
	if len(fps) < len(truth.Parts) {
		t.Errorf("FDE-only FPs = %d, want >= %d (all parts)", len(fps), len(truth.Parts))
	}
}

func TestRecursiveAddsCallTargets(t *testing.T) {
	im, truth := build(t, 31, nil)
	fdeOnly, err := Analyze(im, Strategy{})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Analyze(im, Strategy{Recursive: true})
	if err != nil {
		t.Fatal(err)
	}
	// FDE+Rec covers everything FDE-only covers, plus call-reachable
	// asm functions without FDEs.
	for a := range fdeOnly.Funcs {
		if !rec.Funcs[a] {
			t.Errorf("FDE+Rec lost FDE start %#x", a)
		}
	}
	for _, fn := range truth.Funcs {
		if fn.Class == groundtruth.ClassAsm && fn.Reach == groundtruth.ReachCall {
			if !rec.Funcs[fn.Addr] {
				t.Errorf("FDE+Rec missed call-reachable asm %s", fn.Name)
			}
			if fdeOnly.Funcs[fn.Addr] {
				t.Errorf("FDE-only should not see asm func %s", fn.Name)
			}
		}
	}
}

func TestXrefFindsIndirectOnly(t *testing.T) {
	im, truth := build(t, 32, func(c *synth.Config) {
		c.IndirectOnlyRate = 0.08
	})
	noXref, err := Analyze(im, Strategy{Recursive: true})
	if err != nil {
		t.Fatal(err)
	}
	withXref, err := Analyze(im, Strategy{Recursive: true, Xref: true})
	if err != nil {
		t.Fatal(err)
	}
	found, missedBefore := 0, 0
	for _, fn := range truth.Funcs {
		if fn.Reach != groundtruth.ReachIndirectOnly || fn.Class != groundtruth.ClassAsm {
			continue
		}
		if !noXref.Funcs[fn.Addr] {
			missedBefore++
		}
		if withXref.Funcs[fn.Addr] {
			found++
		}
	}
	if missedBefore == 0 {
		t.Fatal("no indirect-only functions were missed by FDE+Rec — nothing to test")
	}
	if found == 0 {
		t.Error("xref found no indirect-only functions")
	}
	// Xref introduces no false positives (§IV-E).
	fps, _ := classify(withXref.Funcs, truth)
	fpsBefore, _ := classify(noXref.Funcs, truth)
	if len(fps) > len(fpsBefore) {
		t.Errorf("xref added FPs: %d -> %d", len(fpsBefore), len(fps))
	}
}

func TestTailCallMergesParts(t *testing.T) {
	im, truth := build(t, 33, func(c *synth.Config) {
		c.NonContigRate = 0.25
	})
	rep, err := Analyze(im, FETCH)
	if err != nil {
		t.Fatal(err)
	}
	var completeParts, mergedComplete, incompleteParts, residualIncomplete int
	for _, p := range truth.Parts {
		if p.IncompleteCFI {
			incompleteParts++
			if rep.Funcs[p.Addr] {
				residualIncomplete++
			}
		} else {
			completeParts++
			if !rep.Funcs[p.Addr] {
				mergedComplete++
			}
		}
	}
	if completeParts == 0 {
		t.Fatal("no complete-CFI parts generated")
	}
	if mergedComplete != completeParts {
		t.Errorf("merged %d/%d complete-CFI parts, want all", mergedComplete, completeParts)
	}
	// Incomplete-CFI parts must remain as the §V-C residue.
	if incompleteParts > 0 && residualIncomplete != incompleteParts {
		t.Errorf("incomplete-CFI residue = %d, want %d", residualIncomplete, incompleteParts)
	}
	// Merge targets recorded correctly.
	for part, owner := range rep.Merged {
		p, ok := truth.PartAt(part)
		if !ok {
			t.Errorf("merged non-part %#x", part)
			continue
		}
		if p.Parent != owner {
			t.Errorf("part %#x merged into %#x, want %#x", part, owner, p.Parent)
		}
	}
}

func TestTailCallHarmlessFalseNegatives(t *testing.T) {
	im, truth := build(t, 34, func(c *synth.Config) {
		c.TailOnlyRate = 0.06
	})
	rep, err := Analyze(im, FETCH)
	if err != nil {
		t.Fatal(err)
	}
	_, fns := classify(rep.Funcs, truth)
	// Every false negative must be harmless: tail-only, indirect-only
	// (when unlucky), unreachable, or clang-terminate — never a
	// call-reachable function.
	for _, fn := range fns {
		f, _ := truth.FuncAt(fn)
		switch f.Reach {
		case groundtruth.ReachEntry, groundtruth.ReachCall:
			t.Errorf("harmful FN: %s (%#x) reach=%d", f.Name, fn, f.Reach)
		}
	}
}

func TestCFIErrorSweepAndUnmasking(t *testing.T) {
	im, truth := build(t, 35, func(c *synth.Config) {
		c.CFIErrorCount = 2
	})
	if len(truth.CFIErrorAddrs) != 2 {
		t.Fatalf("generated %d CFI errors, want 2", len(truth.CFIErrorAddrs))
	}
	rep, err := Analyze(im, FETCH)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.CFIErrRemoved) != 2 {
		t.Fatalf("removed %d CFI-error starts, want 2 (got %x)", len(rep.CFIErrRemoved), rep.CFIErrRemoved)
	}
	for _, a := range truth.CFIErrorAddrs {
		if rep.Funcs[a] {
			t.Errorf("CFI-error FDE start %#x survived", a)
		}
		// The masked true entry (one past the bogus FDE begin) must be
		// recovered by the re-run pointer detection.
		if !rep.Funcs[a+1] {
			t.Errorf("masked true entry %#x not recovered", a+1)
		}
	}
}

func TestFETCHAccuracySummary(t *testing.T) {
	// Aggregate check across several seeds: FETCH eliminates the
	// complete-CFI part FPs (≈92% in the paper's corpus mix) and
	// introduces no new FP classes.
	var totalFPs, totalParts, residue int
	for seed := int64(40); seed < 46; seed++ {
		im, truth := build(t, seed, nil)
		rep, err := Analyze(im, FETCH)
		if err != nil {
			t.Fatal(err)
		}
		fps, _ := classify(rep.Funcs, truth)
		totalFPs += len(fps)
		totalParts += len(truth.Parts)
		for _, p := range truth.Parts {
			if p.IncompleteCFI {
				residue++
			}
		}
		for _, fp := range fps {
			p, isPart := truth.PartAt(fp)
			if !isPart {
				t.Errorf("seed %d: non-part FP %#x", seed, fp)
				continue
			}
			if !p.IncompleteCFI {
				t.Errorf("seed %d: complete-CFI part %#x survived", seed, fp)
			}
		}
	}
	if totalFPs > residue {
		t.Errorf("FPs %d exceed incomplete-CFI residue %d", totalFPs, residue)
	}
	t.Logf("parts=%d residue=%d finalFPs=%d", totalParts, residue, totalFPs)
}

func TestAnalyzeRejectsNoEhFrame(t *testing.T) {
	im := &elfx.Image{Sections: []*elfx.Section{{
		Name: ".text", Addr: 0x1000, Data: []byte{0xC3},
		Flags: elfx.FlagAlloc | elfx.FlagExec,
	}}}
	if _, err := Analyze(im, FETCH); err == nil {
		t.Fatal("binary without .eh_frame accepted")
	}
}
