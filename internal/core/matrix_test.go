package core

import (
	"fmt"
	"testing"

	"fetch/internal/groundtruth"
	"fetch/internal/synth"
)

// TestPipelineInvariantsMatrix sweeps compilers, languages, and
// optimization levels across seeds, asserting the pipeline's safety
// invariants hold everywhere:
//
//  1. every false positive is an incomplete-CFI non-contiguous part
//     (the §V-C residue) — nothing else survives Algorithm 1;
//  2. every false negative is harmless (tail-only, indirect-only when
//     validation is legitimately conservative, or unreachable);
//  3. the pipeline never reports fewer functions than FDE-only minus
//     the parts it merged and the bogus FDEs it removed.
func TestPipelineInvariantsMatrix(t *testing.T) {
	seed := int64(20000)
	for _, comp := range []synth.Compiler{synth.GCC, synth.Clang} {
		for _, lang := range []synth.Lang{synth.LangC, synth.LangCPP} {
			for _, opt := range synth.AllOpts {
				seed++
				name := fmt.Sprintf("%s-%s-%s", comp, lang, opt)
				t.Run(name, func(t *testing.T) {
					cfg := synth.DefaultConfig(name, seed, opt, comp, lang)
					cfg.NumFuncs = 80
					img, truth, err := synth.Generate(cfg)
					if err != nil {
						t.Fatalf("Generate: %v", err)
					}
					rep, err := Analyze(img.Strip(), FETCH)
					if err != nil {
						t.Fatalf("Analyze: %v", err)
					}
					for a := range rep.Funcs {
						if truth.IsStart(a) {
							continue
						}
						p, isPart := truth.PartAt(a)
						if !isPart {
							t.Errorf("FP %#x is not a part", a)
							continue
						}
						if !p.IncompleteCFI {
							t.Errorf("FP %#x is a mergeable part that survived", a)
						}
					}
					for _, fn := range truth.Funcs {
						if rep.Funcs[fn.Addr] {
							continue
						}
						switch fn.Reach {
						case groundtruth.ReachEntry, groundtruth.ReachCall:
							t.Errorf("harmful FN: %s (%v)", fn.Name, fn.Reach)
						}
					}
					want := len(rep.FDEStarts) - len(rep.Merged) - len(rep.CFIErrRemoved)
					if len(rep.Funcs) < want {
						t.Errorf("detection shrank below FDE floor: %d < %d",
							len(rep.Funcs), want)
					}
				})
			}
		}
	}
}
