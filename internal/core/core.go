package core

import (
	"fmt"
	"sort"
	"time"

	"fetch/internal/disasm"
	"fetch/internal/ehframe"
	"fetch/internal/elfx"
	"fetch/internal/tailcall"
	"fetch/internal/xref"
)

// Strategy selects which pipeline stages run. The zero value is the
// paper's "FDE" row: PC Begin extraction only.
type Strategy struct {
	// Recursive runs safe recursive disassembly from FDE starts,
	// adding direct-call targets (the paper's FDE+Rec).
	Recursive bool
	// Xref runs the §IV-E function-pointer detection (FDE+Rec+Xref).
	Xref bool
	// TailCall runs Algorithm 1 (FDE+Rec+Xref+Tcall — full FETCH).
	TailCall bool
}

// FETCH is the full pipeline configuration.
var FETCH = Strategy{Recursive: true, Xref: true, TailCall: true}

// DefaultXrefIterBound is the default safety bound on the
// pointer-detection fixed point per invocation. It is a stuck-loop
// backstop, not a tuning knob: the fixed point must converge (a Detect
// round that finds nothing new) well below it on real inputs, and
// Stats.Truncated records the pathological case where it did not.
// (The historical cap of 3 silently truncated convergent iterations —
// chains of pointer-only-reachable functions whose pointers surface
// one committed extension at a time need one round per link.)
const DefaultXrefIterBound = 64

// Config is the resolved per-analysis configuration.
type Config struct {
	// Strategy selects the pipeline stages.
	Strategy Strategy
	// Jobs > 1 enables intra-binary sharded analysis: committed
	// disassembly passes, non-return inference, pointer-candidate
	// validation, and Algorithm 1's precomputations run on a worker
	// pool of that size. The Report is byte-identical for every value;
	// only wall-clock time and the scheduling-trace counters in Stats
	// change. Values ≤ 1 run fully sequentially.
	Jobs int
	// XrefIterBound overrides DefaultXrefIterBound when positive.
	XrefIterBound int
}

// PassStat is one pipeline pass's wall-clock cost.
type PassStat struct {
	Name string
	Wall time.Duration
}

// Stats makes the pipeline's incremental behavior observable: per-pass
// wall time, the shared session's decode-reuse counters, and the
// pointer-detection iteration outcome (the fixed point is capped, and
// truncation used to be silent).
type Stats struct {
	// Passes lists the executed passes in order with wall times.
	Passes []PassStat
	// Disasm aggregates the shared session's counters, including its
	// forks' candidate-validation probes.
	Disasm disasm.Stats
	// XrefIterations counts xref.Detect rounds actually run, summed
	// over every pointer-detection invocation (the initial fixed point
	// and the post-CFI-recovery re-run).
	XrefIterations int
	// XrefConverged reports whether every pointer-detection invocation
	// reached its fixed point (a Detect round that found nothing new)
	// rather than being truncated by the iteration bound. Vacuously
	// true when the xref stage is disabled.
	XrefConverged bool
	// Truncated reports that some pointer-detection invocation hit the
	// iteration safety bound before converging — the condition the
	// historical hard cap of 3 used to hide. Always the negation of
	// XrefConverged when the xref stage ran; kept separate so the
	// serialized schema states the pathology explicitly.
	Truncated bool
	// Jobs echoes the effective intra-binary parallelism the analysis
	// ran with (1 when sequential). Like wall times, it is a property
	// of the execution, not of the analysis result.
	Jobs int
	// PeakImageBytes is the section content the image held on the heap
	// by the end of the run: the whole binary for buffered images, only
	// the materialized (pread/NOBITS) copies for file-backed ones —
	// zero-copy mmap windows are excluded. PeakAuxBytes is the
	// high-water accounted estimate of analysis-side data structures
	// (owner-index chunks, decode cache, data-pointer index). Both
	// describe the execution, not the result, and are zeroed by
	// StripSchedule.
	PeakImageBytes int64
	PeakAuxBytes   int64
}

// Report is the analysis outcome.
type Report struct {
	// Funcs is the final detected function-start set.
	Funcs map[uint64]bool
	// FDEStarts are the raw PC Begin values.
	FDEStarts []uint64
	// XrefNew are starts accepted by pointer validation.
	XrefNew []uint64
	// TailNew are starts added by tail-call detection.
	TailNew []uint64
	// Merged maps removed non-contiguous part starts to their owners.
	Merged map[uint64]uint64
	// CFIErrRemoved are FDE starts removed by the convention sweep.
	CFIErrRemoved []uint64
	// SkippedIncomplete counts FDE functions Algorithm 1 skipped.
	SkippedIncomplete int

	// Stats reports the pipeline's incremental-analysis counters.
	Stats Stats

	// Res is the final disassembly state.
	Res *disasm.Result
	// Sec is the decoded .eh_frame.
	Sec *ehframe.Section
}

// SortedFuncs returns the detected starts in address order.
func (r *Report) SortedFuncs() []uint64 {
	out := make([]uint64, 0, len(r.Funcs))
	for a := range r.Funcs {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// safeOpts is the §IV-C conservative disassembly configuration.
func safeOpts() disasm.Options {
	return disasm.Options{ResolveJumpTables: true, NonReturning: true}
}

// pipeline is the shared state the ordered passes operate on.
type pipeline struct {
	img   *elfx.Image
	strat Strategy
	cfg   Config
	rep   *Report
	// sess is the one incremental disassembly session every pass
	// reuses; created by the recursive pass.
	sess *disasm.Session
	// banned holds starts Algorithm 1 merged away or removed; later
	// re-analysis must not resurrect them (parts remain seeds for code
	// coverage but are no longer reported as functions).
	banned map[uint64]bool
	// dataIdx memoizes the data-section pointer index; nil until the
	// first query (FDE-only strategies never build it).
	dataIdx *xref.DataIndex
	// rec, when set, records the delta-analysis trace (see trace.go).
	// Recording observes the pipeline without changing any output.
	rec *recorder
}

// Pass is one ordered pipeline stage.
type Pass struct {
	// Name labels the pass in Stats.Passes.
	Name string
	// Need reports whether the strategy enables the pass.
	Need func(Strategy) bool
	// Run executes the pass against the shared pipeline state.
	Run func(*pipeline) error
}

// Passes is the FETCH pipeline in execution order. The slice is the
// single source of truth for stage ordering; Analyze walks it,
// skipping passes the strategy disables.
var Passes = []Pass{
	{
		Name: "fde",
		Need: func(Strategy) bool { return true },
		Run:  (*pipeline).runFDE,
	},
	{
		Name: "recursive",
		Need: func(s Strategy) bool { return s.Recursive },
		Run:  (*pipeline).runRecursive,
	},
	{
		Name: "xref",
		Need: func(s Strategy) bool { return s.Recursive && s.Xref },
		Run:  (*pipeline).runXrefPass,
	},
	{
		Name: "tailcall",
		Need: func(s Strategy) bool { return s.Recursive && s.TailCall },
		Run:  (*pipeline).runTailCall,
	},
}

// Analyze runs the selected strategy on a binary image sequentially.
// Symbols are never consulted: the pipeline treats every input as
// stripped.
func Analyze(img *elfx.Image, strat Strategy) (*Report, error) {
	return AnalyzeConfig(img, Config{Strategy: strat})
}

// AnalyzeRecorded runs the pipeline like AnalyzeConfig while recording
// the delta-analysis trace: the verdict environments, per-site
// validation verdicts, and byte extents ReplayDelta later verifies a
// changed binary against. The Report is byte-identical to an
// unrecorded run. The trace is nil when the binary admits no sound
// range decomposition (no usable FDE extents, or overlapping ones).
func AnalyzeRecorded(img *elfx.Image, cfg Config) (*Report, *Trace, error) {
	rec := newRecorder()
	rep, sess, err := analyzeWith(img, cfg, rec)
	if err != nil {
		return nil, nil, err
	}
	tr, ok := rec.finish(img, sess, rep)
	if !ok {
		return rep, nil, nil
	}
	return rep, tr, nil
}

// AnalyzeConfig runs the pipeline under a full Config. The Report is a
// function of the binary bytes, the Strategy, and the xref iteration
// bound alone: Jobs redistributes the same work across goroutines
// without changing any analysis output (the oracle's
// ShardedEqualsSequential checker enforces this across every
// adversarial shape), so result caches may key on (binary, strategy)
// and ignore it.
func AnalyzeConfig(img *elfx.Image, cfg Config) (*Report, error) {
	rep, _, err := analyzeWith(img, cfg, nil)
	return rep, err
}

// analyzeWith is the shared pipeline driver; rec, when non-nil,
// observes the run for delta-trace recording.
func analyzeWith(img *elfx.Image, cfg Config, rec *recorder) (*Report, *disasm.Session, error) {
	jobs := cfg.Jobs
	if jobs < 1 {
		jobs = 1
	}
	p := &pipeline{
		img:    img,
		strat:  cfg.Strategy,
		cfg:    cfg,
		banned: map[uint64]bool{},
		rec:    rec,
		rep: &Report{
			Funcs:  make(map[uint64]bool),
			Merged: make(map[uint64]uint64),
			Stats:  Stats{XrefConverged: true, Jobs: jobs},
		},
	}
	strat := cfg.Strategy
	for _, pass := range Passes {
		if !pass.Need(strat) {
			continue
		}
		t0 := time.Now()
		if err := pass.Run(p); err != nil {
			return nil, nil, err
		}
		p.rep.Stats.Passes = append(p.rep.Stats.Passes,
			PassStat{Name: pass.Name, Wall: time.Since(t0)})
	}
	if p.sess != nil {
		p.rep.Stats.Disasm = p.sess.Stats()
	}
	p.rep.Stats.PeakImageBytes = img.MemStats().MaterializedBytes
	p.rep.Stats.PeakAuxBytes = p.rep.Stats.Disasm.PeakAuxBytes
	if p.dataIdx != nil {
		p.rep.Stats.PeakAuxBytes += p.dataIdx.AccountedBytes()
	}
	return p.rep, p.sess, nil
}

// runFDE decodes .eh_frame and seeds the function set with the PC
// Begin values (the paper's "FDE" row).
func (p *pipeline) runFDE() error {
	eh, ok := p.img.Section(".eh_frame")
	if !ok {
		return fmt.Errorf("core: binary has no .eh_frame section")
	}
	ehBody, err := eh.BytesErr()
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	sec, err := ehframe.Decode(ehBody, eh.Addr)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	p.rep.Sec = sec
	for _, f := range sec.FDEs {
		if !p.rep.Funcs[f.PCBegin] {
			p.rep.Funcs[f.PCBegin] = true
			p.rep.FDEStarts = append(p.rep.FDEStarts, f.PCBegin)
		}
	}
	sort.Slice(p.rep.FDEStarts, func(i, j int) bool {
		return p.rep.FDEStarts[i] < p.rep.FDEStarts[j]
	})
	return nil
}

// runRecursive performs the initial safe sweep from the FDE starts and
// the entry point — the only cold analysis of the pipeline; everything
// after it re-analyzes through the session.
func (p *pipeline) runRecursive() error {
	seeds := append([]uint64(nil), p.rep.FDEStarts...)
	if p.img.IsExec(p.img.Entry) {
		seeds = append(seeds, p.img.Entry)
	}
	p.sess = disasm.NewSession(p.img, safeOpts())
	p.sess.SetJobs(p.cfg.Jobs)
	if p.rec != nil {
		p.sess.SetExecObserver(p.rec)
	}
	res := p.sess.Extend(seeds)
	for f := range res.Funcs {
		p.rep.Funcs[f] = true
	}
	p.rep.Res = res
	return nil
}

// fdeRanges returns the FDE extents minus the excluded starts, for the
// §IV-E jump-into-function rule.
func (p *pipeline) fdeRanges(exclude map[uint64]bool) []disasm.FuncRange {
	var out []disasm.FuncRange
	for _, f := range p.rep.Sec.FDEs {
		if exclude != nil && exclude[f.PCBegin] {
			continue
		}
		out = append(out, disasm.FuncRange{Start: f.PCBegin, End: f.End()})
	}
	return out
}

// addFuncs merges newly reachable starts, skipping banned ones.
func (p *pipeline) addFuncs(from map[uint64]bool) {
	for f := range from {
		if !p.banned[f] {
			p.rep.Funcs[f] = true
		}
	}
}

// dataIndex lazily builds the data-section pointer index that answers
// DataRefCount and candidate-collection queries in O(1) instead of
// rescanning every data window per query (sharded runs build it on
// the worker pool). The index is a pure restatement of the data
// bytes, so using it never changes a result; the oracle's
// sharded-equivalence sweep pins index-backed runs against the
// scan-backed scratch reference.
func (p *pipeline) dataIndex() *xref.DataIndex {
	if p.dataIdx == nil {
		p.dataIdx = xref.NewDataIndex(p.img, p.cfg.Jobs)
	}
	return p.dataIdx
}

// dataRefCount answers Algorithm 1's data-reference queries through
// the index.
func (p *pipeline) dataRefCount(a uint64) int {
	return p.dataIndex().Count(a)
}

// xrefIterBound resolves the configured pointer-detection bound.
func (p *pipeline) xrefIterBound() int {
	if p.cfg.XrefIterBound > 0 {
		return p.cfg.XrefIterBound
	}
	return DefaultXrefIterBound
}

// runXref iterates pointer detection to convergence (a round that
// accepts nothing), extending the session with each accepted batch.
// Candidate validation probes run on session forks, so speculative
// decodes land in the shared cache without corrupting the committed
// state. The iteration count is recorded in Stats; hitting the safety
// bound before the fixed point marks the analysis Truncated — loudly,
// where the historical cap of 3 truncated silently.
func (p *pipeline) runXref(exclude map[uint64]bool) {
	opts := xref.Options{
		KnownRanges: p.fdeRanges(exclude),
		Session:     p.sess,
		Jobs:        p.cfg.Jobs,
		Index:       p.dataIndex(),
	}
	if p.rec != nil {
		p.rec.post = exclude != nil
		opts.Observer = p.rec.onXref
	}
	bound := p.xrefIterBound()
	for iter := 0; iter < bound; iter++ {
		newly := xref.Detect(p.img, p.sess.Result(), p.rep.Funcs, opts)
		p.rep.Stats.XrefIterations++
		if len(newly) == 0 {
			return
		}
		p.rep.XrefNew = append(p.rep.XrefNew, newly...)
		res := p.sess.Extend(newly)
		p.rep.Res = res
		p.addFuncs(res.Funcs)
	}
	p.rep.Stats.XrefConverged = false
	p.rep.Stats.Truncated = true
}

// runXrefPass is the strategy-gated initial pointer-detection stage.
func (p *pipeline) runXrefPass() error {
	p.runXref(nil)
	return nil
}

// runTailCall applies Algorithm 1, then — when it removed hand-written
// FDE errors — performs the §V-B re-analysis: retracting the removed
// seeds drops their poisoned decode, and a fresh pointer-detection
// round can recover the true entries they shadowed.
func (p *pipeline) runTailCall() error {
	in := tailcall.Input{
		Img:          p.img,
		Sec:          p.rep.Sec,
		Res:          p.sess.Result(),
		Funcs:        p.rep.Funcs,
		DataRefCount: p.dataRefCount,
		Sess:         p.sess,
		Jobs:         p.cfg.Jobs,
	}
	if p.rec != nil {
		in.Obs = &tailcall.Observer{
			OnConv: p.rec.onConv,
			OnJump: func(fde uint64, j tailcall.JumpObs) {
				p.rec.onJump(fde, j.Addr, j.Target, j.HOK, j.HZero)
			},
		}
	}
	out := tailcall.Run(in)
	p.rep.Funcs = out.Funcs
	p.rep.TailNew = out.TailNew
	p.rep.Merged = out.Merged
	p.rep.CFIErrRemoved = out.CFIErrRemoved
	p.rep.SkippedIncomplete = out.SkippedIncomplete
	for part := range out.Merged {
		p.banned[part] = true
	}
	for _, a := range out.CFIErrRemoved {
		p.banned[a] = true
	}

	if p.strat.Xref && len(out.CFIErrRemoved) > 0 {
		// Removing a hand-written FDE error can unmask the true entry
		// it shadowed (§V-B): drop the poisoned decode by retracting
		// the removed seeds, then re-run pointer detection without the
		// removed ranges.
		exclude := make(map[uint64]bool, len(out.CFIErrRemoved))
		for _, a := range out.CFIErrRemoved {
			exclude[a] = true
		}
		res := p.sess.Retract(out.CFIErrRemoved)
		p.rep.Res = res
		p.runXref(exclude)
	}
	return nil
}
