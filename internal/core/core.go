// Package core assembles the FETCH pipeline: FDE extraction, safe
// recursive disassembly (§IV-C), conservative function-pointer
// detection (§IV-E), and Algorithm 1's error fixing (§V-B) — the
// "optimal strategies" configuration of Figure 5c, with each stage
// individually switchable so the evaluation can reproduce every
// strategy combination the paper measures.
package core

import (
	"fmt"
	"sort"

	"fetch/internal/disasm"
	"fetch/internal/ehframe"
	"fetch/internal/elfx"
	"fetch/internal/tailcall"
	"fetch/internal/xref"
)

// Strategy selects which pipeline stages run. The zero value is the
// paper's "FDE" row: PC Begin extraction only.
type Strategy struct {
	// Recursive runs safe recursive disassembly from FDE starts,
	// adding direct-call targets (the paper's FDE+Rec).
	Recursive bool
	// Xref runs the §IV-E function-pointer detection (FDE+Rec+Xref).
	Xref bool
	// TailCall runs Algorithm 1 (FDE+Rec+Xref+Tcall — full FETCH).
	TailCall bool
}

// FETCH is the full pipeline configuration.
var FETCH = Strategy{Recursive: true, Xref: true, TailCall: true}

// Report is the analysis outcome.
type Report struct {
	// Funcs is the final detected function-start set.
	Funcs map[uint64]bool
	// FDEStarts are the raw PC Begin values.
	FDEStarts []uint64
	// XrefNew are starts accepted by pointer validation.
	XrefNew []uint64
	// TailNew are starts added by tail-call detection.
	TailNew []uint64
	// Merged maps removed non-contiguous part starts to their owners.
	Merged map[uint64]uint64
	// CFIErrRemoved are FDE starts removed by the convention sweep.
	CFIErrRemoved []uint64
	// SkippedIncomplete counts FDE functions Algorithm 1 skipped.
	SkippedIncomplete int

	// Res is the final disassembly state.
	Res *disasm.Result
	// Sec is the decoded .eh_frame.
	Sec *ehframe.Section
}

// SortedFuncs returns the detected starts in address order.
func (r *Report) SortedFuncs() []uint64 {
	out := make([]uint64, 0, len(r.Funcs))
	for a := range r.Funcs {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// safeOpts is the §IV-C conservative disassembly configuration.
func safeOpts() disasm.Options {
	return disasm.Options{ResolveJumpTables: true, NonReturning: true}
}

// Analyze runs the selected strategy on a binary image. Symbols are
// never consulted: the pipeline treats every input as stripped.
func Analyze(img *elfx.Image, strat Strategy) (*Report, error) {
	eh, ok := img.Section(".eh_frame")
	if !ok {
		return nil, fmt.Errorf("core: binary has no .eh_frame section")
	}
	sec, err := ehframe.Decode(eh.Data, eh.Addr)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	rep := &Report{
		Funcs:  make(map[uint64]bool),
		Merged: make(map[uint64]uint64),
		Sec:    sec,
	}
	for _, f := range sec.FDEs {
		if !rep.Funcs[f.PCBegin] {
			rep.Funcs[f.PCBegin] = true
			rep.FDEStarts = append(rep.FDEStarts, f.PCBegin)
		}
	}
	sort.Slice(rep.FDEStarts, func(i, j int) bool { return rep.FDEStarts[i] < rep.FDEStarts[j] })
	if !strat.Recursive {
		return rep, nil
	}

	fdeRanges := func(exclude map[uint64]bool) []disasm.FuncRange {
		var out []disasm.FuncRange
		for _, f := range sec.FDEs {
			if exclude != nil && exclude[f.PCBegin] {
				continue
			}
			out = append(out, disasm.FuncRange{Start: f.PCBegin, End: f.End()})
		}
		return out
	}

	seeds := append([]uint64(nil), rep.FDEStarts...)
	if img.IsExec(img.Entry) {
		seeds = append(seeds, img.Entry)
	}
	res := disasm.Recursive(img, seeds, safeOpts())
	for f := range res.Funcs {
		rep.Funcs[f] = true
	}
	rep.Res = res

	dataRefCount := func(a uint64) int { return xref.DataRefCount(img, a) }

	// banned holds starts Algorithm 1 merged away or removed; later
	// re-disassembly must not resurrect them (parts remain seeds for
	// code coverage but are no longer reported as functions).
	banned := map[uint64]bool{}
	addFuncs := func(from map[uint64]bool) {
		for f := range from {
			if !banned[f] {
				rep.Funcs[f] = true
			}
		}
	}

	runXref := func(exclude map[uint64]bool) {
		for iter := 0; iter < 3; iter++ {
			newly := xref.Detect(img, res, rep.Funcs, xref.Options{
				KnownRanges: fdeRanges(exclude),
			})
			if len(newly) == 0 {
				return
			}
			rep.XrefNew = append(rep.XrefNew, newly...)
			seeds = append(seeds, newly...)
			res = disasm.Recursive(img, seeds, safeOpts())
			rep.Res = res
			addFuncs(res.Funcs)
		}
	}

	if strat.Xref {
		runXref(nil)
	}

	if strat.TailCall {
		out := tailcall.Run(tailcall.Input{
			Img:          img,
			Sec:          sec,
			Res:          res,
			Funcs:        rep.Funcs,
			DataRefCount: dataRefCount,
		})
		rep.Funcs = out.Funcs
		rep.TailNew = out.TailNew
		rep.Merged = out.Merged
		rep.CFIErrRemoved = out.CFIErrRemoved
		rep.SkippedIncomplete = out.SkippedIncomplete
		for part := range out.Merged {
			banned[part] = true
		}
		for _, a := range out.CFIErrRemoved {
			banned[a] = true
		}

		if strat.Xref && len(out.CFIErrRemoved) > 0 {
			// Removing a hand-written FDE error can unmask the true
			// entry it shadowed (§V-B): drop the poisoned decode by
			// re-disassembling without the removed seeds, then re-run
			// pointer detection without the removed ranges.
			exclude := make(map[uint64]bool, len(out.CFIErrRemoved))
			for _, a := range out.CFIErrRemoved {
				exclude[a] = true
			}
			var cleanSeeds []uint64
			for _, s := range seeds {
				if !exclude[s] {
					cleanSeeds = append(cleanSeeds, s)
				}
			}
			seeds = cleanSeeds
			res = disasm.Recursive(img, seeds, safeOpts())
			rep.Res = res
			runXref(exclude)
		}
	}
	return rep, nil
}
