package core

import (
	"fmt"
	"sort"

	"fetch/internal/callconv"
	"fetch/internal/disasm"
	"fetch/internal/ehframe"
	"fetch/internal/elfx"
	"fetch/internal/resultcache"
	"fetch/internal/xref"
)

// This file implements the delta-re-analysis verifier. Given a new
// binary whose residue (everything outside the FDE-delimited roster
// ranges) matches a recorded trace, it proves — conservatively — that
// the full pipeline on the new binary would produce the exact Report
// recorded for the old one, by checking that every changed range is
// analysis-equivalent to its old version:
//
//  1. the range's cross-visible walk facts (calls, out-of-range
//     pushes, constants, reference counts, table reads, outgoing
//     jumps) are equal under EVERY verdict environment the fixed
//     point could have consulted (all projections of the recorded
//     union U onto the range's call targets);
//  2. the non-return and conditional-non-return verdicts of the
//     range's entry and interior functions are equal under every such
//     environment, and never depended on iteration-order-sensitive
//     answers (EV guard);
//  3. every recorded pointer-candidate validation whose byte extent
//     intersects a changed range re-validates to the same verdict,
//     extent, and constant contributions against the new bytes;
//  4. every recorded calling-convention verdict whose window
//     intersects a changed range re-validates identically, and every
//     changed range's candidate tail-call jumps present the same
//     (target, height-known, height-zero) sequence to Algorithm 1.
//
// If all checks pass, the two binaries are indistinguishable to every
// pass of the pipeline, and the recorded Result is returned verbatim.
// ANY condition the verifier cannot reason about locally returns a
// fallback outcome and the caller runs the cold pipeline: fallbacks
// cost time, never correctness. The oracle's CheckDeltaEqualsCold
// sweep enforces the contract end to end.

// DefaultMaxDirtyFraction is the changed-range budget above which the
// delta path falls back: verifying most of the binary locally costs
// more than a cold run and the proof obligations grow with the dirty
// set.
const DefaultMaxDirtyFraction = 0.5

// envEnumCap bounds the verdict-environment enumeration per changed
// range: a range calling more than this many ever-non-returning
// functions falls back rather than enumerating the state space.
const envEnumCap = 5

// DeltaKey computes the residue hash that addresses a binary's delta
// trace: equal keys mean the binaries differ at most inside their
// (identical) FDE-delimited roster ranges. ok=false means the binary
// admits no sound range decomposition and the delta path does not
// apply.
func DeltaKey(img *elfx.Image, sec *ehframe.Section) ([32]byte, bool) {
	roster, ok := buildRoster(img, sec)
	if !ok || len(roster) == 0 {
		return [32]byte{}, false
	}
	return residueHash(img, roster), true
}

// RangeBytes returns the bytes of one roster range — the
// function-tier payload body. nil when the range is unmapped.
func RangeBytes(img *elfx.Image, start, end uint64) []byte {
	return rangeBytes(img, start, end)
}

// DeltaInput parameterizes ReplayDelta.
type DeltaInput struct {
	// Img is the new binary (stripped), Sec its decoded .eh_frame.
	Img *elfx.Image
	Sec *ehframe.Section
	// Trace is the recorded trace whose residue hash matched.
	Trace *Trace
	// OldRangeBytes returns the recorded bytes of roster range i (the
	// function-tier payload), or nil when unavailable; unavailable
	// bytes for a changed range force a fallback.
	OldRangeBytes func(i int) []byte
	// Strategy must equal the recorded run's strategy (the cache keys
	// traces by strategy variant, so this is structural).
	Strategy Strategy
	// MaxDirtyFraction overrides DefaultMaxDirtyFraction when > 0.
	MaxDirtyFraction float64
}

// DeltaOutcome reports a ReplayDelta verification.
type DeltaOutcome struct {
	// OK means the recorded Result is proven valid for the new binary.
	OK bool
	// Reason is the first fallback reason when !OK ("" when OK).
	Reason string
	// DirtyRanges and TotalRanges describe the roster diff.
	DirtyRanges, TotalRanges int
}

// ReplayDelta verifies that the new binary is analysis-equivalent to
// the recorded one. It never mutates in.Img.
func ReplayDelta(in DeltaInput) DeltaOutcome {
	tr := in.Trace
	fail := func(format string, args ...any) DeltaOutcome {
		return DeltaOutcome{Reason: fmt.Sprintf(format, args...), TotalRanges: len(tr.Roster)}
	}

	roster, ok := buildRoster(in.Img, in.Sec)
	if !ok {
		return fail("roster: no sound range decomposition")
	}
	if len(roster) != len(tr.Roster) {
		return fail("roster: range count %d != recorded %d", len(roster), len(tr.Roster))
	}
	for i := range roster {
		if roster[i].Start != tr.Roster[i].Start || roster[i].End != tr.Roster[i].End {
			return fail("roster: geometry mismatch at range %d", i)
		}
	}
	if residueHash(in.Img, roster) != tr.ResidueHash {
		return fail("residue: hash mismatch")
	}

	// Diff the ranges.
	var dirty []int
	newRange := make([][]byte, len(roster))
	var totalBytes, dirtyBytes uint64
	for i := range roster {
		b := rangeBytes(in.Img, roster[i].Start, roster[i].End)
		if b == nil {
			return fail("roster: range %d unmapped", i)
		}
		newRange[i] = b
		totalBytes += uint64(len(b))
		if resultcache.HashRange(roster[i].Start, b) != tr.Roster[i].Hash {
			dirty = append(dirty, i)
			dirtyBytes += uint64(len(b))
		}
	}
	out := DeltaOutcome{DirtyRanges: len(dirty), TotalRanges: len(roster)}
	if len(dirty) == 0 {
		// Residue and every range identical: the analyzed content is
		// byte-identical (e.g. only non-loadable or symbol bytes
		// differ at the file level).
		out.OK = true
		return out
	}
	if !in.Strategy.Recursive {
		// FDE-only: the Report is a pure function of .eh_frame, which
		// the residue covers. Code changes are invisible.
		out.OK = true
		return out
	}
	maxFrac := in.MaxDirtyFraction
	if maxFrac <= 0 {
		maxFrac = DefaultMaxDirtyFraction
	}
	if totalBytes == 0 || float64(dirtyBytes)/float64(totalBytes) > maxFrac {
		return fail("dirty fraction %.2f over budget", float64(dirtyBytes)/float64(totalBytes))
	}

	// Global guards.
	if tr.SawMid {
		return fail("recorded analysis was order-sensitive (sawMid)")
	}
	banned := toSet(tr.RemovedOrMerged)
	overlapsDirty := func(iv disasm.Interval) bool {
		for _, i := range dirty {
			if iv.Overlaps(tr.Roster[i].Start, tr.Roster[i].End) {
				return true
			}
		}
		return false
	}
	oldRange := make(map[int][]byte, len(dirty))
	for _, i := range dirty {
		ri := &tr.Roster[i]
		if ri.Foreign {
			return fail("range %#x: interior entered from outside", ri.Start)
		}
		if banned[ri.Start] {
			return fail("range %#x: removed or merged in recorded run", ri.Start)
		}
		old := in.OldRangeBytes(i)
		if old == nil || uint64(len(old)) != ri.End-ri.Start {
			return fail("range %#x: old bytes unavailable", ri.Start)
		}
		if resultcache.HashRange(ri.Start, old) != ri.Hash {
			return fail("range %#x: old bytes fail integrity", ri.Start)
		}
		oldRange[i] = old
	}
	for _, tv := range tr.TableReads {
		if overlapsDirty(tv) {
			return fail("changed range intersects a jump-table read")
		}
	}

	// Reconstruct the old image: new image with old bytes patched into
	// the changed ranges.
	oldImg := patchImage(in.Img, tr.Roster, oldRange)
	oldSess := disasm.NewSession(oldImg, safeOpts())
	newSess := disasm.NewSession(in.Img, safeOpts())

	uNR, uCNR := toSet(tr.UNonRet), toSet(tr.UCondNonRet)
	finalNR, finalCNR := toSet(tr.FinalNonRet), toSet(tr.FinalCondNonRet)
	funcs, ev := toSet(tr.Funcs), toSet(tr.EV)

	// Per-range equivalence under every environment projection.
	freshFacts := make(map[int]*disasm.LocalFacts, len(dirty))
	for _, i := range dirty {
		rng := disasm.FuncRange{Start: tr.Roster[i].Start, End: tr.Roster[i].End}
		facts, reason := verifyRange(oldSess, newSess, rng, uNR, uCNR, finalNR, finalCNR, funcs, ev)
		if reason != "" {
			return fail("range %#x: %s", rng.Start, reason)
		}
		freshFacts[i] = facts
	}

	// Pointer-candidate re-validation against substituted coverage.
	// The coverage map spans every recorded instruction in the binary,
	// so it is built lazily: in the common recompile (few small dirty
	// ranges, no candidate extent touching them) no candidate needs
	// re-validation and the map is never materialized.
	if in.Strategy.Xref {
		var cov *disasm.Result
		var krPre, krPost []disasm.FuncRange
		built := false
		for _, rec := range tr.XrefRecs {
			touched := false
			for _, iv := range rec.Extent {
				if overlapsDirty(iv) {
					touched = true
					break
				}
			}
			if !touched {
				continue
			}
			if !built {
				built = true
				cov = disasm.BuildCoverage(substituteCoverage(tr, dirty, freshFacts))
				krPre = deltaFDERanges(in.Sec, nil)
				krPost = deltaFDERanges(in.Sec, toSet(tr.Removed))
			}
			kr := krPre
			if rec.Post {
				kr = krPost
			}
			v, okv := xref.ValidateCandidate(in.Img, cov, rec.C, xref.Options{KnownRanges: kr}, newSess)
			if okv != rec.OK {
				return fail("candidate %#x: verdict changed", rec.C)
			}
			if okv {
				if xref.ContiguousEnd(v, rec.C) != rec.End {
					return fail("candidate %#x: extent changed", rec.C)
				}
				if !u64Equal(sortedKeys(v.Constants), rec.Consts) {
					return fail("candidate %#x: constants changed", rec.C)
				}
			}
		}
	}

	// Algorithm 1 re-verification.
	if in.Strategy.TailCall {
		for _, rec := range tr.ConvRecs {
			iv := disasm.Interval{Lo: rec.Addr, Hi: rec.Addr + convWindow}
			if !overlapsDirty(iv) {
				continue
			}
			if callconv.Validate(in.Img, rec.Addr) != rec.OK {
				return fail("convention verdict at %#x changed", rec.Addr)
			}
		}
		if reason := verifyTailJumps(in.Img, in.Sec, tr, dirty, freshFacts); reason != "" {
			return fail("%s", reason)
		}
	}

	out.OK = true
	return out
}

// verifyRange proves one changed range analysis-equivalent to its old
// version. It returns the new side's final-environment facts (for
// coverage substitution and tail-call comparison) and a non-empty
// fallback reason on any doubt.
func verifyRange(oldSess, newSess *disasm.Session, rng disasm.FuncRange,
	uNR, uCNR, finalNR, finalCNR, funcs, ev map[uint64]bool) (*disasm.LocalFacts, string) {

	entries := []uint64{rng.Start}
	interior := func(a uint64) bool { return a > rng.Start && a < rng.End }

	// Final-environment walk: the new side's extraction, plus the base
	// for the environment-target set.
	wlOldFinal := oldSess.WalkLocal(rng, entries, finalNR, finalCNR)
	wlNewFinal := newSess.WalkLocal(rng, entries, finalNR, finalCNR)
	fresh := wlNewFinal.Facts()

	// The environment targets: every call target of either side that
	// was ever non-returning (or conditionally so). Only these can
	// change the walk or the verdicts across environments.
	tset := map[uint64]bool{}
	for _, t := range wlOldFinal.Facts().Calls {
		if uNR[t] || uCNR[t] {
			tset[t] = true
		}
	}
	for _, t := range fresh.Calls {
		if uNR[t] || uCNR[t] {
			tset[t] = true
		}
	}
	var targets []uint64
	for t := range tset {
		targets = append(targets, t)
	}
	if len(targets) > envEnumCap {
		return nil, fmt.Sprintf("%d environment targets over cap", len(targets))
	}
	sort.Slice(targets, func(a, b int) bool { return targets[a] < targets[b] })

	// Enumerate every projected environment: each target independently
	// absent, non-returning (if ever so), or conditionally
	// non-returning (if ever so).
	type state uint8
	const (
		stNone state = iota
		stNonRet
		stCond
	)
	states := make([][]state, len(targets))
	for i, t := range targets {
		s := []state{stNone}
		if uNR[t] {
			s = append(s, stNonRet)
		}
		if uCNR[t] {
			s = append(s, stCond)
		}
		states[i] = s
	}
	assign := make([]state, len(targets))
	var walk func(i int) string
	walk = func(i int) string {
		if i < len(targets) {
			for _, s := range states[i] {
				assign[i] = s
				if reason := walk(i + 1); reason != "" {
					return reason
				}
			}
			return ""
		}
		envNR := map[uint64]bool{}
		envCNR := map[uint64]bool{}
		for k, t := range targets {
			switch assign[k] {
			case stNonRet:
				envNR[t] = true
			case stCond:
				envCNR[t] = true
			}
		}
		wlOld := oldSess.WalkLocal(rng, entries, envNR, envCNR)
		wlNew := newSess.WalkLocal(rng, entries, envNR, envCNR)
		fo, fn := wlOld.Facts(), wlNew.Facts()
		if fo.Flags != 0 || fn.Flags != 0 {
			return "local walk escaped the range"
		}
		if !fo.Equal(fn) {
			return "cross-visible facts differ"
		}
		// Verdict equivalence for the entry and every interior
		// function the range defines.
		verdictEntries := []uint64{rng.Start}
		for _, t := range fo.Calls {
			if interior(t) {
				verdictEntries = append(verdictEntries, t)
			}
		}
		returnsOf := func(t uint64) bool { return !envNR[t] }
		isFunc := func(t uint64) bool { return funcs[t] }
		for _, e := range verdictEntries {
			vo, qo, oko := wlOld.EntryReturns(e, returnsOf, isFunc)
			vn, qn, okn := wlNew.EntryReturns(e, returnsOf, isFunc)
			if !oko || !okn {
				return "verdict walk escaped the range"
			}
			if vo != vn {
				return "non-return verdict differs"
			}
			if reason := checkQueried(qo, qn, tset, uNR, uCNR, ev); reason != "" {
				return reason
			}
			ho, bo, qo2, oko2 := wlOld.CondFacts(e, isFunc)
			hn, bn, qn2, okn2 := wlNew.CondFacts(e, isFunc)
			if !oko2 || !okn2 {
				return "conditional-verdict walk escaped the range"
			}
			if ho != hn || !u64Equal(bo, bn) {
				return "conditional-non-return facts differ"
			}
			if reason := checkQueried(qo2, qn2, tset, uNR, uCNR, ev); reason != "" {
				return reason
			}
		}
		return ""
	}
	if reason := walk(0); reason != "" {
		return nil, reason
	}
	if fresh.Flags != 0 || !wlOldFinal.Facts().Equal(fresh) {
		// The final projection is covered by the enumeration, but keep
		// the explicit check: these facts substitute into the global
		// coverage.
		return nil, "final-environment facts differ"
	}
	return fresh, ""
}

// checkQueried rejects verdict evaluations whose answers were not
// pinned by the enumeration: a queried target that was ever
// non-returning but is not an enumerated environment target, or whose
// function-set membership varied across passes (EV).
func checkQueried(qo, qn []uint64, tset, uNR, uCNR, ev map[uint64]bool) string {
	for _, q := range append(append([]uint64(nil), qo...), qn...) {
		if ev[q] {
			return "verdict depended on iteration-sensitive function membership"
		}
		if (uNR[q] || uCNR[q]) && !tset[q] {
			return "verdict depended on an unenumerated environment target"
		}
	}
	return ""
}

// verifyTailJumps compares each changed range's candidate tail-call
// jumps — (target, height-known, height-zero) in address order —
// against the recorded sequence Algorithm 1 consumed.
func verifyTailJumps(img *elfx.Image, sec *ehframe.Section, tr *Trace, dirty []int,
	freshFacts map[int]*disasm.LocalFacts) string {

	isa := img.ISA()
	fdeAt := make(map[uint64]*ehframe.FDE, len(sec.FDEs))
	for _, f := range sec.FDEs {
		fdeAt[f.PCBegin] = f
	}
	recsByFDE := map[uint64][]JumpRec{}
	for _, r := range tr.JumpRecs {
		recsByFDE[r.FDE] = append(recsByFDE[r.FDE], r)
	}
	for _, i := range dirty {
		start := tr.Roster[i].Start
		fde := fdeAt[start]
		if fde == nil {
			return fmt.Sprintf("range %#x: no FDE", start)
		}
		ht := fde.HeightsABI(isa.CFISPReg(), isa.CFIEntryOffset())
		if !ht.Complete {
			// Algorithm 1 skipped this frame on both sides (heights
			// come from the residue-equal .eh_frame).
			continue
		}
		recs := recsByFDE[start]
		var freshJumps []JumpRec
		for _, j := range freshFacts[i].JmpOut {
			h, okh := ht.HeightAt(j.Addr)
			freshJumps = append(freshJumps, JumpRec{
				Target: j.Target, HOK: okh, HZero: okh && h == 0,
			})
		}
		if len(recs) != len(freshJumps) {
			return fmt.Sprintf("range %#x: tail-call jump count changed", start)
		}
		for k := range recs {
			if recs[k].Target != freshJumps[k].Target ||
				recs[k].HOK != freshJumps[k].HOK ||
				recs[k].HZero != freshJumps[k].HZero {
				return fmt.Sprintf("range %#x: tail-call jump inputs changed", start)
			}
		}
	}
	return ""
}

// substituteCoverage replaces the changed ranges' recorded coverage
// with the fresh local coverage: the committed coverage the new
// binary's pipeline would hold.
func substituteCoverage(tr *Trace, dirty []int, freshFacts map[int]*disasm.LocalFacts) []disasm.InstFact {
	inDirty := func(a uint64) bool {
		for _, i := range dirty {
			if a >= tr.Roster[i].Start && a < tr.Roster[i].End {
				return true
			}
		}
		return false
	}
	// Both inputs are address-sorted (the recorded skeleton by
	// construction, the fresh facts because dirty ranges are disjoint
	// and ascending), so a linear merge keeps the output sorted —
	// BuildCoverage depends on that to build its dense form directly.
	var fresh []disasm.InstFact
	for _, i := range dirty {
		fresh = append(fresh, freshFacts[i].Insts...)
	}
	out := make([]disasm.InstFact, 0, len(tr.GlobalInsts)+len(fresh))
	k := 0
	for _, f := range tr.GlobalInsts {
		if inDirty(f.Addr) {
			continue
		}
		for k < len(fresh) && fresh[k].Addr < f.Addr {
			out = append(out, fresh[k])
			k++
		}
		out = append(out, f)
	}
	out = append(out, fresh[k:]...)
	return out
}

// deltaFDERanges mirrors pipeline.fdeRanges for re-validation: every
// FDE extent, minus the excluded starts.
func deltaFDERanges(sec *ehframe.Section, exclude map[uint64]bool) []disasm.FuncRange {
	var out []disasm.FuncRange
	for _, f := range sec.FDEs {
		if exclude != nil && exclude[f.PCBegin] {
			continue
		}
		out = append(out, disasm.FuncRange{Start: f.PCBegin, End: f.End()})
	}
	return out
}

// patchImage builds the recorded binary's image: the new image with
// the old bytes written back into the changed ranges. Section data is
// copied; the input image is never mutated.
func patchImage(img *elfx.Image, roster []RangeInfo, oldRange map[int][]byte) *elfx.Image {
	cp := *img
	cp.Sections = make([]*elfx.Section, len(img.Sections))
	for i, s := range img.Sections {
		if s.Flags&elfx.FlagExec != 0 {
			// A fresh in-memory section, not a struct copy: file-backed
			// sections must not carry their lazy state alongside the
			// patched heap copy.
			cp.Sections[i] = &elfx.Section{
				Name:  s.Name,
				Addr:  s.Addr,
				Data:  append([]byte(nil), s.Bytes()...),
				Flags: s.Flags,
			}
			continue
		}
		sc := *s
		cp.Sections[i] = &sc
	}
	for i, old := range oldRange {
		start, end := roster[i].Start, roster[i].End
		for _, s := range cp.Sections {
			if s.Flags&elfx.FlagExec == 0 {
				continue
			}
			if start >= s.Addr && end <= s.End() {
				copy(s.Data[start-s.Addr:end-s.Addr], old)
				break
			}
		}
	}
	return &cp
}

func toSet(in []uint64) map[uint64]bool {
	out := make(map[uint64]bool, len(in))
	for _, a := range in {
		out[a] = true
	}
	return out
}

func u64Equal(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
