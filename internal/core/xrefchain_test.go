package core

import (
	"testing"

	"fetch/internal/synth"
)

// legacyXrefIterCap is the historical hard cap this regression test
// guards against: any shape needing more rounds used to be silently
// truncated.
const legacyXrefIterCap = 3

// TestXrefChainConvergesPastLegacyCap pins the convergence bugfix with
// a shape that needs strictly more pointer-detection rounds than the
// old cap allowed: a chain of FDE-less functions where each link's
// address surfaces only after the previous link's committed extension.
// The pipeline must find every link, report convergence, and not set
// Truncated.
func TestXrefChainConvergesPastLegacyCap(t *testing.T) {
	cfg, err := synth.AdversarialProfile("xref-chain", 4242)
	if err != nil {
		t.Fatal(err)
	}
	img, truth, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(img.Strip(), FETCH)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.XrefIterations <= legacyXrefIterCap {
		t.Fatalf("shape needs > %d rounds to prove anything; got %d — generator regressed",
			legacyXrefIterCap, rep.Stats.XrefIterations)
	}
	if !rep.Stats.XrefConverged || rep.Stats.Truncated {
		t.Fatalf("fixed point did not converge: iterations=%d converged=%v truncated=%v",
			rep.Stats.XrefIterations, rep.Stats.XrefConverged, rep.Stats.Truncated)
	}
	missing := 0
	for _, fn := range truth.Funcs {
		if len(fn.Name) >= 6 && fn.Name[:6] == "xchain" && !rep.Funcs[fn.Addr] {
			missing++
			t.Errorf("chain link %s at %#x not detected", fn.Name, fn.Addr)
		}
	}
	if missing == 0 && testing.Verbose() {
		t.Logf("converged in %d rounds, all chain links found", rep.Stats.XrefIterations)
	}

	// The truncation pathology stays observable: a bound below the
	// chain's demand must mark the result truncated instead of
	// silently converging.
	trunc, err := AnalyzeConfig(img.Strip(), Config{Strategy: FETCH, XrefIterBound: legacyXrefIterCap})
	if err != nil {
		t.Fatal(err)
	}
	if !trunc.Stats.Truncated || trunc.Stats.XrefConverged {
		t.Fatalf("bound %d should truncate this shape: truncated=%v converged=%v",
			legacyXrefIterCap, trunc.Stats.Truncated, trunc.Stats.XrefConverged)
	}
	if len(trunc.Funcs) >= len(rep.Funcs) {
		t.Fatalf("truncated run should find fewer starts (%d) than the converged run (%d)",
			len(trunc.Funcs), len(rep.Funcs))
	}
}
