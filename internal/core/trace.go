package core

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"sort"

	"fetch/internal/disasm"
	"fetch/internal/ehframe"
	"fetch/internal/elfx"
	"fetch/internal/resultcache"
	"fetch/internal/xref"
)

// residueHasher is a thin framing wrapper over SHA-256: every value is
// length- or fixed-width-framed so distinct field sequences cannot
// collide by concatenation.
type residueHasher struct{ h hash.Hash }

func resultcacheHasher() *residueHasher { return &residueHasher{h: sha256.New()} }

func (r *residueHasher) writeU64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	r.h.Write(b[:])
}

func (r *residueHasher) writeString(s string) {
	r.writeU64(uint64(len(s)))
	r.h.Write([]byte(s))
}

func (r *residueHasher) write(b []byte) {
	r.writeU64(uint64(len(b)))
	r.h.Write(b)
}

func (r *residueHasher) sum() [32]byte {
	var out [32]byte
	r.h.Sum(out[:0])
	return out
}

// This file records the analysis trace that delta re-analysis verifies
// against (delta.go). The trace is not a transcript of the pipeline's
// microstate — it is the minimal set of facts a later run needs to
// prove that a recompiled binary, differing only inside some
// FDE-delimited function ranges, produces the exact same Report:
//
//   - the verdict-environment union U every fixed-point pass ran under
//     (changed functions are re-walked under every projection of U);
//   - the function-set instability set EV (verdict walks whose
//     delegation answers depended on when a function was discovered
//     cannot be verified against a single snapshot → fallback);
//   - every pointer-candidate validation verdict with the byte extent
//     it depends on (re-validated when the extent intersects a change);
//   - every calling-convention verdict and candidate tail-call jump
//     Algorithm 1 consumed (same treatment);
//   - the final committed coverage, function set, and jump-table read
//     intervals (global guards and re-validation coverage).
//
// Everything here errs toward refusal: a condition the verifier cannot
// reason about locally is recorded so the delta path falls back to a
// cold run. Fallbacks cost time, never correctness.

// RangeInfo is one FDE-delimited byte range of the roster: the unit of
// function-granular content addressing.
type RangeInfo struct {
	// Start and End delimit the range ([Start, End) = the FDE extent).
	Start, End uint64
	// Hash is resultcache.HashRange(Start, bytes).
	Hash [32]byte
	// Foreign marks a range whose interior (any address other than
	// Start) is entered from outside the range — by a reference, a
	// jump-table target, or the ELF entry point. The local walk model
	// only replays ranges entered at their start.
	Foreign bool
}

// XrefRec is one recorded pointer-candidate validation, in the exact
// order Detect's sequential accept loop consulted verdicts.
type XrefRec struct {
	C  uint64
	OK bool
	// End is the accepted candidate's approximate extent
	// (xref.ContiguousEnd); meaningful only when OK.
	End uint64
	// Consts are the validation walk's harvested constants, sorted —
	// the pool-refresh contribution; meaningful only when OK.
	Consts []uint64
	// Extent are the byte intervals the verdict depends on: the walked
	// instruction spans, the jump-table reads, and the
	// calling-convention window. A change outside every interval
	// cannot alter the verdict.
	Extent []disasm.Interval
	// Post marks records from the post-CFI-recovery re-run, whose
	// jump-into-function ranges exclude the removed FDEs.
	Post bool
}

// ConvRec is one calling-convention verdict Algorithm 1 consumed.
type ConvRec struct {
	Addr uint64
	OK   bool
}

// JumpRec is one candidate tail-call jump Algorithm 1 considered.
type JumpRec struct {
	// FDE is the PCBegin of the frame being scanned.
	FDE    uint64
	Addr   uint64
	Target uint64
	// HOK and HZero record the CFI height lookup's outcome at Addr.
	HOK, HZero bool
}

// Trace is everything delta re-analysis needs to verify that a changed
// binary is analysis-equivalent to the recorded one. It is stored
// alongside the whole-binary result, keyed by the residue hash, and
// serialized with encoding/gob by the fetch cache layer.
type Trace struct {
	// BinSHA is the whole-binary content hash of the recorded build —
	// the key its full Result is cached under.
	BinSHA [32]byte
	// ResidueHash covers every byte outside the roster ranges plus the
	// image geometry; see residueHash.
	ResidueHash [32]byte
	// Roster is the FDE-delimited range set, sorted by Start,
	// non-overlapping.
	Roster []RangeInfo

	// UNonRet and UCondNonRet are the unions of every non-return /
	// conditional-non-return environment any committed pass or
	// inference step observed. Every verdict state the fixed point ever
	// consulted projects into a subset of these.
	UNonRet, UCondNonRet []uint64
	// FinalNonRet and FinalCondNonRet are the final committed
	// environment (fresh facts for changed ranges are extracted under
	// it).
	FinalNonRet, FinalCondNonRet []uint64
	// EV are functions whose membership in the detected set varied
	// across committed passes.
	EV []uint64
	// Funcs is the final committed function set (delegation answers).
	Funcs []uint64
	// SawMid reports the global order-sensitivity flag.
	SawMid bool
	// GlobalInsts is the final committed coverage skeleton.
	GlobalInsts disasm.InstFacts
	// TableReads are the data intervals jump-table resolution consulted
	// anywhere in the committed analysis.
	TableReads []disasm.Interval

	// XrefRecs, ConvRecs, and JumpRecs are the recorded per-site
	// verdicts described above.
	XrefRecs []XrefRec
	ConvRecs []ConvRec
	JumpRecs []JumpRec

	// Removed are the FDE starts the convention sweep removed;
	// RemovedOrMerged additionally includes merged part starts. Changed
	// ranges intersecting these fall back (the §V-B retract trajectory
	// is not replayed locally).
	Removed         []uint64
	RemovedOrMerged []uint64
}

// recorder accumulates the trace during a recorded cold run. It
// implements disasm.ExecObserver and feeds the xref and tailcall
// observer hooks.
type recorder struct {
	uNonRet, uCond map[uint64]bool
	firstFuncs     map[uint64]bool
	ev             map[uint64]bool
	sawPass        bool

	xrefRecs []XrefRec
	post     bool

	convRecs []ConvRec
	convSeen map[uint64]bool
	jumpRecs []JumpRec
}

func newRecorder() *recorder {
	return &recorder{
		uNonRet:  map[uint64]bool{},
		uCond:    map[uint64]bool{},
		ev:       map[uint64]bool{},
		convSeen: map[uint64]bool{},
	}
}

// OnPass implements disasm.ExecObserver: fold the pass's input
// environment into U, and membership churn relative to the first pass
// into EV.
func (r *recorder) OnPass(nonRet, condNonRet map[uint64]bool, res *disasm.Result) {
	for a := range nonRet {
		r.uNonRet[a] = true
	}
	for a := range condNonRet {
		r.uCond[a] = true
	}
	if !r.sawPass {
		r.sawPass = true
		r.firstFuncs = make(map[uint64]bool, len(res.Funcs))
		for a := range res.Funcs {
			r.firstFuncs[a] = true
		}
		return
	}
	for a := range res.Funcs {
		if !r.firstFuncs[a] {
			r.ev[a] = true
		}
	}
	for a := range r.firstFuncs {
		if !res.Funcs[a] {
			r.ev[a] = true
		}
	}
}

// convWindow is the byte extent a calling-convention verdict depends
// on: callconv walks at most 48 instructions of at most 15 bytes.
const convWindow = 48 * 15

// onXref records one candidate validation with its dependence extent.
func (r *recorder) onXref(c uint64, ok bool, v *disasm.Result) {
	rec := XrefRec{C: c, OK: ok, Post: r.post}
	// The verdict reads the candidate's own bytes, the convention
	// window, and — when a walk happened — every walked instruction
	// and jump-table read.
	rec.Extent = append(rec.Extent, disasm.Interval{Lo: c, Hi: c + convWindow})
	if v != nil {
		for _, f := range v.InstFacts() {
			rec.Extent = append(rec.Extent, disasm.Interval{Lo: f.Addr, Hi: f.Addr + uint64(f.Len)})
		}
		rec.Extent = append(rec.Extent, v.TableReads()...)
	}
	rec.Extent = coalesce(rec.Extent)
	if ok && v != nil {
		rec.End = xref.ContiguousEnd(v, c)
		rec.Consts = sortedKeys(v.Constants)
	}
	r.xrefRecs = append(r.xrefRecs, rec)
}

// onConv records one convention verdict (first consumption wins; the
// verdict is a pure function of the target's bytes).
func (r *recorder) onConv(addr uint64, ok bool) {
	if r.convSeen[addr] {
		return
	}
	r.convSeen[addr] = true
	r.convRecs = append(r.convRecs, ConvRec{Addr: addr, OK: ok})
}

// onJump records one candidate tail-call jump.
func (r *recorder) onJump(fde uint64, addr, target uint64, hok, hzero bool) {
	r.jumpRecs = append(r.jumpRecs, JumpRec{
		FDE: fde, Addr: addr, Target: target, HOK: hok, HZero: hzero,
	})
}

// coalesce sorts intervals and merges overlapping/adjacent ones.
func coalesce(in []disasm.Interval) []disasm.Interval {
	if len(in) <= 1 {
		return in
	}
	sort.Slice(in, func(i, j int) bool { return in[i].Lo < in[j].Lo })
	out := in[:1]
	for _, iv := range in[1:] {
		last := &out[len(out)-1]
		if iv.Lo <= last.Hi {
			if iv.Hi > last.Hi {
				last.Hi = iv.Hi
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

func sortedKeys(m map[uint64]bool) []uint64 {
	if len(m) == 0 {
		return nil
	}
	out := make([]uint64, 0, len(m))
	for a := range m {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// buildRoster derives the delta roster from the decoded .eh_frame:
// every FDE extent that lies entirely inside one executable section.
// Extents that straddle sections (or map nowhere) are excluded — their
// bytes stay part of the residue, so any change to them forces a cold
// run, which is the safe direction. ok=false means the extents overlap
// and no sound decomposition exists.
func buildRoster(img *elfx.Image, sec *ehframe.Section) ([]RangeInfo, bool) {
	var out []RangeInfo
	seen := map[uint64]bool{}
	for _, f := range sec.FDEs {
		start, end := f.PCBegin, f.End()
		if end <= start || seen[start] {
			// Zero-length or duplicate-start FDEs: the duplicate's
			// extent would overlap; treat the bytes as residue.
			if seen[start] {
				return nil, false
			}
			continue
		}
		if !rangeInOneExecSection(img, start, end) {
			continue
		}
		seen[start] = true
		out = append(out, RangeInfo{Start: start, End: end})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	for i := 1; i < len(out); i++ {
		if out[i].Start < out[i-1].End {
			return nil, false
		}
	}
	return out, true
}

// rangeInOneExecSection reports whether [start, end) is fully inside a
// single executable section.
func rangeInOneExecSection(img *elfx.Image, start, end uint64) bool {
	for _, s := range img.Sections {
		if s.Flags&elfx.FlagExec == 0 {
			continue
		}
		if start >= s.Addr && end <= s.End() {
			return true
		}
	}
	return false
}

// rangeBytes returns the bytes of [start, end) from the section that
// contains the range.
func rangeBytes(img *elfx.Image, start, end uint64) []byte {
	for _, s := range img.Sections {
		if s.Flags&elfx.FlagExec == 0 {
			continue
		}
		if start >= s.Addr && end <= s.End() {
			body := s.Bytes()
			if body == nil {
				return nil
			}
			return body[start-s.Addr : end-s.Addr]
		}
	}
	return nil
}

// residueHash hashes everything about the image EXCEPT the roster
// ranges' interior bytes: the entry point, the PIE flag, every
// section's identity (name, address, flags, length), every byte
// outside the roster ranges, and the roster geometry itself. Two
// binaries with equal residue hashes and equal roster geometry differ
// at most inside roster ranges.
func residueHash(img *elfx.Image, roster []RangeInfo) [32]byte {
	h := resultcacheHasher()
	h.writeString("fetch-residue-1")
	h.writeU64(img.Entry)
	if img.PIE {
		h.writeU64(1)
	} else {
		h.writeU64(0)
	}
	h.writeU64(uint64(len(roster)))
	for _, r := range roster {
		h.writeU64(r.Start)
		h.writeU64(r.End)
	}
	h.writeU64(uint64(len(img.Sections)))
	for _, s := range img.Sections {
		h.writeString(s.Name)
		h.writeU64(s.Addr)
		h.writeU64(uint64(s.Flags))
		body := s.Bytes()
		h.writeU64(s.Size())
		if s.Flags&elfx.FlagExec == 0 {
			h.write(body)
			continue
		}
		// Executable section: hash the bytes with roster spans carved
		// out. Roster is sorted and non-overlapping.
		pos := s.Addr
		secEnd := s.End()
		for _, r := range roster {
			if r.End <= pos || r.Start >= secEnd {
				continue
			}
			h.write(body[pos-s.Addr : r.Start-s.Addr])
			pos = r.End
		}
		h.write(body[pos-s.Addr:])
	}
	return h.sum()
}

// finish assembles the trace after a recorded pipeline run.
func (r *recorder) finish(img *elfx.Image, sess *disasm.Session, rep *Report) (*Trace, bool) {
	roster, ok := buildRoster(img, rep.Sec)
	if !ok || len(roster) == 0 {
		return nil, false
	}
	tr := &Trace{Roster: roster}
	for i := range tr.Roster {
		ri := &tr.Roster[i]
		b := rangeBytes(img, ri.Start, ri.End)
		if b == nil {
			return nil, false
		}
		ri.Hash = resultcache.HashRange(ri.Start, b)
	}
	tr.ResidueHash = residueHash(img, roster)

	if sess != nil {
		res := sess.Result()
		tr.SawMid = res.SawMid()
		tr.GlobalInsts = disasm.InstFacts(res.InstFacts())
		tr.TableReads = coalesce(res.TableReads())
		tr.Funcs = sortedKeys(res.Funcs)
		tr.FinalNonRet = sortedKeys(res.NonRet)
		tr.FinalCondNonRet = sortedKeys(res.CondNonRet)
		for a := range res.NonRet {
			r.uNonRet[a] = true
		}
		for a := range res.CondNonRet {
			r.uCond[a] = true
		}
		markForeign(tr.Roster, res, img.Entry)
	}
	tr.UNonRet = sortedKeys(r.uNonRet)
	tr.UCondNonRet = sortedKeys(r.uCond)
	tr.EV = sortedKeys(r.ev)
	tr.XrefRecs = r.xrefRecs
	tr.ConvRecs = r.convRecs
	tr.JumpRecs = r.jumpRecs
	tr.Removed = append([]uint64(nil), rep.CFIErrRemoved...)
	tr.RemovedOrMerged = append([]uint64(nil), rep.CFIErrRemoved...)
	for part := range rep.Merged {
		tr.RemovedOrMerged = append(tr.RemovedOrMerged, part)
	}
	sort.Slice(tr.RemovedOrMerged, func(i, j int) bool {
		return tr.RemovedOrMerged[i] < tr.RemovedOrMerged[j]
	})
	return tr, true
}

// markForeign flags roster ranges whose interior is entered from
// outside: a committed reference or jump-table target into the
// interior whose source lies outside the range, or the ELF entry point
// inside the interior.
func markForeign(roster []RangeInfo, res *disasm.Result, entry uint64) {
	find := func(a uint64) *RangeInfo {
		i := sort.Search(len(roster), func(k int) bool { return roster[k].End > a })
		if i < len(roster) && a >= roster[i].Start {
			return &roster[i]
		}
		return nil
	}
	inside := func(r *RangeInfo, a uint64) bool { return a >= r.Start && a < r.End }
	for t, froms := range res.Refs {
		r := find(t)
		if r == nil || t == r.Start {
			continue
		}
		for _, from := range froms {
			if !inside(r, from) {
				r.Foreign = true
				break
			}
		}
	}
	for jmp, targets := range res.JTTargets {
		for _, t := range targets {
			r := find(t)
			if r != nil && t != r.Start && !inside(r, jmp) {
				r.Foreign = true
			}
		}
	}
	if r := find(entry); r != nil && entry != r.Start {
		r.Foreign = true
	}
}
