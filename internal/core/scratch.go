package core

import (
	"fmt"
	"sort"

	"fetch/internal/disasm"
	"fetch/internal/ehframe"
	"fetch/internal/elfx"
	"fetch/internal/tailcall"
	"fetch/internal/xref"
)

// ScratchAnalyze is the pre-session pipeline, kept verbatim as the
// from-scratch reference implementation: every stage re-runs
// disasm.Recursive over the full seed list and candidate validation
// decodes cold. The session-based Analyze must be byte-identical to it
// on every binary and strategy combination — the equivalence suite and
// the internal/oracle differential checkers both diff against it. It
// is not meant for production use (it re-decodes everything on every
// round).
func ScratchAnalyze(img *elfx.Image, strat Strategy) (*Report, error) {
	eh, ok := img.Section(".eh_frame")
	if !ok {
		return nil, fmt.Errorf("core: binary has no .eh_frame section")
	}
	ehBody, err := eh.BytesErr()
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	sec, err := ehframe.Decode(ehBody, eh.Addr)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	rep := &Report{
		Funcs:  make(map[uint64]bool),
		Merged: make(map[uint64]uint64),
		Sec:    sec,
	}
	for _, f := range sec.FDEs {
		if !rep.Funcs[f.PCBegin] {
			rep.Funcs[f.PCBegin] = true
			rep.FDEStarts = append(rep.FDEStarts, f.PCBegin)
		}
	}
	sort.Slice(rep.FDEStarts, func(i, j int) bool { return rep.FDEStarts[i] < rep.FDEStarts[j] })
	if !strat.Recursive {
		return rep, nil
	}

	fdeRanges := func(exclude map[uint64]bool) []disasm.FuncRange {
		var out []disasm.FuncRange
		for _, f := range sec.FDEs {
			if exclude != nil && exclude[f.PCBegin] {
				continue
			}
			out = append(out, disasm.FuncRange{Start: f.PCBegin, End: f.End()})
		}
		return out
	}

	seeds := append([]uint64(nil), rep.FDEStarts...)
	if img.IsExec(img.Entry) {
		seeds = append(seeds, img.Entry)
	}
	res := disasm.Recursive(img, seeds, safeOpts())
	for f := range res.Funcs {
		rep.Funcs[f] = true
	}
	rep.Res = res

	banned := map[uint64]bool{}
	addFuncs := func(from map[uint64]bool) {
		for f := range from {
			if !banned[f] {
				rep.Funcs[f] = true
			}
		}
	}

	runXref := func(exclude map[uint64]bool) {
		for iter := 0; iter < DefaultXrefIterBound; iter++ {
			newly := xref.Detect(img, res, rep.Funcs, xref.Options{
				KnownRanges: fdeRanges(exclude),
			})
			if len(newly) == 0 {
				return
			}
			rep.XrefNew = append(rep.XrefNew, newly...)
			seeds = append(seeds, newly...)
			res = disasm.Recursive(img, seeds, safeOpts())
			rep.Res = res
			addFuncs(res.Funcs)
		}
	}

	if strat.Xref {
		runXref(nil)
	}

	if strat.TailCall {
		out := tailcall.Run(tailcall.Input{
			Img:          img,
			Sec:          sec,
			Res:          res,
			Funcs:        rep.Funcs,
			DataRefCount: func(a uint64) int { return xref.DataRefCount(img, a) },
		})
		rep.Funcs = out.Funcs
		rep.TailNew = out.TailNew
		rep.Merged = out.Merged
		rep.CFIErrRemoved = out.CFIErrRemoved
		rep.SkippedIncomplete = out.SkippedIncomplete
		for part := range out.Merged {
			banned[part] = true
		}
		for _, a := range out.CFIErrRemoved {
			banned[a] = true
		}

		if strat.Xref && len(out.CFIErrRemoved) > 0 {
			exclude := make(map[uint64]bool, len(out.CFIErrRemoved))
			for _, a := range out.CFIErrRemoved {
				exclude[a] = true
			}
			var cleanSeeds []uint64
			for _, s := range seeds {
				if !exclude[s] {
					cleanSeeds = append(cleanSeeds, s)
				}
			}
			seeds = cleanSeeds
			res = disasm.Recursive(img, seeds, safeOpts())
			rep.Res = res
			runXref(exclude)
		}
	}
	return rep, nil
}

// AllStrategies enumerates every Strategy combination, FDE-only first.
// Stages gated on Recursive collapse to FDE-only; the matrix pins
// those degenerate combinations too.
func AllStrategies() []Strategy {
	var out []Strategy
	for i := 0; i < 8; i++ {
		out = append(out, Strategy{
			Recursive: i&1 != 0,
			Xref:      i&2 != 0,
			TailCall:  i&4 != 0,
		})
	}
	return out
}

// Lattice is the paper's cumulative strategy ladder, weakest first:
// FDE ⊂ FDE+Rec ⊂ FDE+Rec+Xref ⊂ full FETCH.
func Lattice() []Strategy {
	return []Strategy{
		{},
		{Recursive: true},
		{Recursive: true, Xref: true},
		FETCH,
	}
}
