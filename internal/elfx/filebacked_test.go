package elfx

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// writeTestELF serializes the shared test image to a temp file and
// returns both the path and the raw bytes.
func writeTestELF(t *testing.T) (string, []byte) {
	t.Helper()
	raw, err := WriteELF(testImage())
	if err != nil {
		t.Fatalf("WriteELF: %v", err)
	}
	path := filepath.Join(t.TempDir(), "test.elf")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatalf("writing temp ELF: %v", err)
	}
	return path, raw
}

// loaders are the two file-backed open paths the suite sweeps: the
// mmap-preferring default and the forced-pread fallback.
var loaders = []struct {
	name string
	open func(string) (*Image, error)
}{
	{"mmap", LoadELFFile},
	{"pread", LoadELFFilePread},
}

// TestLoadELFFileEquivalence pins the core contract: a file-backed
// image must expose byte-for-byte the sections and symbols of LoadELF
// over the same bytes.
func TestLoadELFFileEquivalence(t *testing.T) {
	path, raw := writeTestELF(t)
	want, err := LoadELF(raw)
	if err != nil {
		t.Fatalf("LoadELF: %v", err)
	}
	for _, ld := range loaders {
		t.Run(ld.name, func(t *testing.T) {
			got, err := ld.open(path)
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			defer got.Close()
			if !got.FileBacked() {
				t.Fatal("image does not report FileBacked")
			}
			if got.Entry != want.Entry || got.PIE != want.PIE {
				t.Fatalf("header mismatch: entry %#x/%v, want %#x/%v",
					got.Entry, got.PIE, want.Entry, want.PIE)
			}
			if len(got.Sections) != len(want.Sections) {
				t.Fatalf("%d sections, want %d", len(got.Sections), len(want.Sections))
			}
			for i, ws := range want.Sections {
				gs := got.Sections[i]
				if gs.Name != ws.Name || gs.Addr != ws.Addr || gs.Flags != ws.Flags {
					t.Fatalf("section %d header mismatch: %+v vs %+v", i, gs, ws)
				}
				if gs.Size() != ws.Size() {
					t.Fatalf("section %s size %d, want %d", gs.Name, gs.Size(), ws.Size())
				}
				gb, err := gs.BytesErr()
				if err != nil {
					t.Fatalf("section %s: %v", gs.Name, err)
				}
				if !bytes.Equal(gb, ws.Bytes()) {
					t.Fatalf("section %s bytes differ", gs.Name)
				}
			}
			if len(got.Symbols) != len(want.Symbols) {
				t.Fatalf("%d symbols, want %d", len(got.Symbols), len(want.Symbols))
			}
		})
	}
}

// TestFileBackedLaziness asserts sections cost nothing until touched
// and that the accounting attributes bytes to the right bucket: mapped
// for zero-copy windows, materialized for pread copies.
func TestFileBackedLaziness(t *testing.T) {
	path, _ := writeTestELF(t)
	for _, ld := range loaders {
		t.Run(ld.name, func(t *testing.T) {
			img, err := ld.open(path)
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			defer img.Close()
			ms := img.MemStats()
			if ms.MaterializedBytes != 0 || ms.MappedBytes != 0 {
				t.Fatalf("bytes accounted before any access: %+v", ms)
			}
			text, ok := img.Section(".text")
			if !ok {
				t.Fatal("no .text")
			}
			if _, err := text.BytesErr(); err != nil {
				t.Fatalf("materializing .text: %v", err)
			}
			ms = img.MemStats()
			total := ms.MaterializedBytes + ms.MappedBytes
			if total != int64(text.Size()) {
				t.Fatalf("accounted %d bytes after touching .text (%d bytes): %+v",
					total, text.Size(), ms)
			}
			if ld.name == "pread" && ms.MaterializedBytes == 0 {
				t.Fatal("pread path accounted no materialized bytes")
			}
		})
	}
}

// TestFileBackedCloseSemantics pins the lifetime contract: after Close
// every not-yet-materialized access errors cleanly, window-backed
// caches are dropped rather than left pointing into unmapped memory,
// and double Close is a no-op.
func TestFileBackedCloseSemantics(t *testing.T) {
	path, _ := writeTestELF(t)
	for _, ld := range loaders {
		t.Run(ld.name, func(t *testing.T) {
			img, err := ld.open(path)
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			text, _ := img.Section(".text")
			if _, err := text.BytesErr(); err != nil {
				t.Fatalf("materializing .text: %v", err)
			}
			if err := img.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if err := img.Close(); err != nil {
				t.Fatalf("second Close: %v", err)
			}
			// Untouched sections must error, not return content.
			rodata, _ := img.Section(".rodata")
			if _, err := rodata.BytesErr(); err == nil || !strings.Contains(err.Error(), "closed") {
				t.Fatalf("access after Close = %v, want image-closed error", err)
			}
			// The already-touched section: pread copies are heap bytes and
			// stay valid; mmap windows are dropped and must error too.
			b, err := text.BytesErr()
			switch ld.name {
			case "pread":
				if err != nil || len(b) == 0 {
					t.Fatalf("pread copy lost after Close: %v", err)
				}
			case "mmap":
				if err == nil {
					t.Fatal("window-backed bytes survived Close")
				}
			}
		})
	}
}

// TestFileBackedConcurrentReaders races many goroutines materializing
// and re-reading sections (exercising both the atomic fast path and
// the locked materialize path) against the section index rebuilds the
// read helpers trigger. Run under -race this is the memory-model check
// for the lazy-section publication.
func TestFileBackedConcurrentReaders(t *testing.T) {
	path, raw := writeTestELF(t)
	want, err := LoadELF(raw)
	if err != nil {
		t.Fatalf("LoadELF: %v", err)
	}
	for _, ld := range loaders {
		t.Run(ld.name, func(t *testing.T) {
			img, err := ld.open(path)
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			defer img.Close()
			start := make(chan struct{})
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					<-start
					for i := 0; i < 100; i++ {
						for si, s := range img.Sections {
							b, err := s.BytesErr()
							if err != nil {
								t.Errorf("section %s: %v", s.Name, err)
								return
							}
							if !bytes.Equal(b, want.Sections[si].Bytes()) {
								t.Errorf("section %s bytes differ", s.Name)
								return
							}
							// Address-based reads rebuild the section index
							// on demand; mixing them in races the rebuild
							// against the window readers.
							if _, err := img.Bytes(s.Addr, 1); s.Size() > 0 && err != nil {
								t.Errorf("Bytes(%#x): %v", s.Addr, err)
								return
							}
						}
					}
				}()
			}
			close(start)
			wg.Wait()
		})
	}
}

// TestFileBackedConcurrentCloseNoFault closes a pread-backed image
// while readers are mid-materialize: every access must return either
// valid bytes or a clean image-closed error. (The pread loader keeps
// this memory-safe by construction — bodies are heap copies — so the
// race detector can vet the close/materialize interleaving itself.)
func TestFileBackedConcurrentCloseNoFault(t *testing.T) {
	path, _ := writeTestELF(t)
	for i := 0; i < 20; i++ {
		img, err := LoadELFFilePread(path)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		start := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for _, s := range img.Sections {
					b, err := s.BytesErr()
					if err == nil && int(s.Size()) != len(b) {
						t.Errorf("section %s: %d bytes, want %d", s.Name, len(b), s.Size())
					}
					if err != nil && !strings.Contains(err.Error(), "closed") {
						t.Errorf("section %s: unexpected error %v", s.Name, err)
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			img.Close()
		}()
		close(start)
		wg.Wait()
	}
}

// TestLoadELFFileTruncatedUnderfoot truncates the backing file between
// open and first access: the pread materialization must surface an
// error, never a silently short or zero-filled section.
func TestLoadELFFileTruncatedUnderfoot(t *testing.T) {
	path, _ := writeTestELF(t)
	img, err := LoadELFFilePread(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer img.Close()
	// Cut the file off right after the ELF header so section bodies are
	// gone but the parse (done eagerly at open) already succeeded.
	if err := os.Truncate(path, 64); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	sawErr := false
	for _, s := range img.Sections {
		if s.Size() == 0 {
			continue
		}
		if _, err := s.BytesErr(); err != nil {
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatal("no section errored after truncation")
	}
}
