package elfx

import (
	"debug/elf"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"fetch/internal/mmapfile"
)

// fileBacking is the shared state behind every lazy section of one
// LoadELFFile image: the open mmapfile plus the windows and byte
// accounting the sections accumulate as they materialize.
type fileBacking struct {
	f *mmapfile.File

	mu     sync.Mutex
	closed bool
	wins   []*mmapfile.Window
	// winLZs are the sections whose cached body aliases a window; close
	// must drop those caches before unmapping so a later access falls
	// back into materialize and errors instead of touching freed memory.
	winLZs []*lazySection

	// materialized counts section bytes copied onto the Go heap
	// (pread fallback, NOBITS zero fill, compressed sections);
	// mapped counts bytes served zero-copy from the mapping.
	materialized atomic.Int64
	mapped       atomic.Int64
}

// close releases windows, mapping and descriptor. Sections not yet
// materialized error from then on; already-materialized pread/NOBITS
// copies stay valid (they are plain heap bytes), while mmap-window
// content is dropped so no reader sequenced after close can touch
// unmapped memory.
func (bk *fileBacking) close() error {
	bk.mu.Lock()
	defer bk.mu.Unlock()
	if bk.closed {
		return nil
	}
	bk.closed = true
	for _, lz := range bk.winLZs {
		lz.data.Store(nil)
	}
	bk.winLZs = nil
	for _, w := range bk.wins {
		w.Close()
	}
	bk.wins = nil
	return bk.f.Close()
}

// lazySection defers a section body to the backing file until first
// access. size is authoritative from the section header; data holds
// the materialized body once loaded (published with atomic.Pointer so
// concurrent readers share one copy without locking on the fast path).
type lazySection struct {
	bk     *fileBacking
	off    int64
	size   uint64
	nobits bool
	data   atomic.Pointer[[]byte]
}

// materialize loads the section body, preferring a zero-copy mmap
// window and falling back to a pread copy. Failures (backing closed,
// file truncated underneath) return errors and leave the section
// unmaterialized.
func (lz *lazySection) materialize(name string) ([]byte, error) {
	bk := lz.bk
	bk.mu.Lock()
	defer bk.mu.Unlock()
	if p := lz.data.Load(); p != nil {
		return *p, nil
	}
	if bk.closed {
		return nil, fmt.Errorf("elfx: section %s: image closed", name)
	}
	var body []byte
	switch {
	case lz.nobits:
		body = make([]byte, lz.size)
		bk.materialized.Add(int64(lz.size))
	default:
		if w, err := bk.f.Window(lz.off, int64(lz.size)); err == nil {
			bk.wins = append(bk.wins, w)
			bk.winLZs = append(bk.winLZs, lz)
			body = w.Bytes()
			bk.mapped.Add(int64(lz.size))
			break
		} else if !errors.Is(err, mmapfile.ErrNotMapped) {
			return nil, fmt.Errorf("elfx: section %s: %w", name, err)
		}
		body = make([]byte, lz.size)
		if _, err := io.ReadFull(io.NewSectionReader(bk.f, lz.off, int64(lz.size)), body); err != nil {
			return nil, fmt.Errorf("elfx: section %s: reading %d bytes at offset %d: %w",
				name, lz.size, lz.off, err)
		}
		bk.materialized.Add(int64(lz.size))
	}
	lz.data.Store(&body)
	return body, nil
}

// LoadELFFile parses an ELF binary from disk into a file-backed Image:
// section headers and symbols load eagerly, section bodies stay on
// disk until first access and then come up as zero-copy windows of one
// shared mmap (pread copies when mapping is unavailable). The result
// analyzes identically to LoadELF over the same bytes; callers own the
// image and must Close it after the last access. The openFile hook is
// the test seam for forcing the pread path.
func LoadELFFile(path string) (*Image, error) {
	return loadELFFile(path, mmapfile.Open)
}

// LoadELFFilePread is LoadELFFile with the memory mapping disabled:
// every section body is a pread copy. Tests use it to pin fallback
// behavior; production callers want LoadELFFile.
func LoadELFFilePread(path string) (*Image, error) {
	return loadELFFile(path, mmapfile.OpenPread)
}

func loadELFFile(path string, openFile func(string) (*mmapfile.File, error)) (*Image, error) {
	mf, err := openFile(path)
	if err != nil {
		return nil, err
	}
	f, err := elf.NewFile(io.NewSectionReader(mf, 0, mf.Size()))
	if err != nil {
		mf.Close()
		return nil, fmt.Errorf("elfx: %w", err)
	}
	defer f.Close()
	machine, err := checkMachine(f)
	if err != nil {
		mf.Close()
		return nil, err
	}
	bk := &fileBacking{f: mf}
	im := &Image{Entry: f.Entry, PIE: f.Type == elf.ET_DYN, Machine: machine, bk: bk}
	for _, s := range f.Sections {
		if s.Type == elf.SHT_NULL || s.Flags&elf.SHF_ALLOC == 0 {
			continue
		}
		sec := &Section{Name: s.Name, Addr: s.Addr, Flags: sectionFlags(s.Flags)}
		switch {
		case s.Type == elf.SHT_NOBITS:
			sec.lz = &lazySection{bk: bk, size: s.Size, nobits: true}
		case s.Flags&elf.SHF_COMPRESSED != 0 || s.FileSize != s.Size:
			// Rare shapes where file bytes are not the section body
			// one-to-one: let debug/elf produce the body eagerly.
			body, err := s.Data()
			if err != nil {
				mf.Close()
				return nil, fmt.Errorf("elfx: section %s: %w", s.Name, err)
			}
			sec.Data = body
			bk.materialized.Add(int64(len(body)))
		default:
			sec.lz = &lazySection{bk: bk, off: int64(s.Offset), size: s.Size}
		}
		im.Sections = append(im.Sections, sec)
	}
	if err := loadSymbols(f, im); err != nil {
		mf.Close()
		return nil, err
	}
	return im, nil
}

// sectionFlags converts ELF section header flags to the image's.
func sectionFlags(fl elf.SectionFlag) SectionFlags {
	flags := FlagAlloc
	if fl&elf.SHF_EXECINSTR != 0 {
		flags |= FlagExec
	}
	if fl&elf.SHF_WRITE != 0 {
		flags |= FlagWrite
	}
	return flags
}
