// Package elfx provides the in-memory binary image abstraction shared
// by the synthetic compiler and the analyses, plus an ELF64 writer and
// a loader (built on debug/elf) so the same analyses run on real
// System-V x64 binaries.
package elfx

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// SectionFlags describe mapping permissions of a section.
type SectionFlags uint8

// Section flag bits.
const (
	FlagAlloc SectionFlags = 1 << iota
	FlagExec
	FlagWrite
)

// Section is one named, contiguous address range of the image.
type Section struct {
	Name  string
	Addr  uint64
	Data  []byte
	Flags SectionFlags
}

// End returns the first address past the section.
func (s *Section) End() uint64 { return s.Addr + uint64(len(s.Data)) }

// Contains reports whether addr falls inside the section.
func (s *Section) Contains(addr uint64) bool { return addr >= s.Addr && addr < s.End() }

// Symbol is a (typically function) symbol.
type Symbol struct {
	Name string
	Addr uint64
	Size uint64
	Func bool
}

// Image is a loaded or synthesized binary.
type Image struct {
	Name     string
	Entry    uint64
	Sections []*Section
	// Symbols is empty for stripped binaries.
	Symbols []Symbol
	// PIE marks position-independent executables (ET_DYN). Section
	// addresses are the link-time ones either way; the flag only
	// selects the ELF type on write.
	PIE bool
}

// Section returns the section with the given name, if present.
func (im *Image) Section(name string) (*Section, bool) {
	for _, s := range im.Sections {
		if s.Name == name {
			return s, true
		}
	}
	return nil, false
}

// SectionAt returns the section containing addr, if any.
func (im *Image) SectionAt(addr uint64) (*Section, bool) {
	for _, s := range im.Sections {
		if s.Contains(addr) {
			return s, true
		}
	}
	return nil, false
}

// IsExec reports whether addr lies in an executable section.
func (im *Image) IsExec(addr uint64) bool {
	s, ok := im.SectionAt(addr)
	return ok && s.Flags&FlagExec != 0
}

// IsMapped reports whether addr lies in any allocated section.
func (im *Image) IsMapped(addr uint64) bool {
	s, ok := im.SectionAt(addr)
	return ok && s.Flags&FlagAlloc != 0
}

// Bytes returns n bytes starting at addr, or an error when the range
// leaves its section.
func (im *Image) Bytes(addr uint64, n int) ([]byte, error) {
	s, ok := im.SectionAt(addr)
	if !ok {
		return nil, fmt.Errorf("elfx: address %#x not mapped", addr)
	}
	off := addr - s.Addr
	if off+uint64(n) > uint64(len(s.Data)) {
		return nil, fmt.Errorf("elfx: range [%#x,+%d) leaves section %s", addr, n, s.Name)
	}
	return s.Data[off : off+uint64(n)], nil
}

// BytesToSectionEnd returns the bytes from addr to the end of its
// section (a decode window for the disassembler).
func (im *Image) BytesToSectionEnd(addr uint64) ([]byte, bool) {
	s, ok := im.SectionAt(addr)
	if !ok {
		return nil, false
	}
	return s.Data[addr-s.Addr:], true
}

// ReadU64 reads a little-endian 64-bit word at addr.
func (im *Image) ReadU64(addr uint64) (uint64, error) {
	b, err := im.Bytes(addr, 8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// ReadU32 reads a little-endian 32-bit word at addr.
func (im *Image) ReadU32(addr uint64) (uint32, error) {
	b, err := im.Bytes(addr, 4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

// ExecSections returns all executable sections in address order.
func (im *Image) ExecSections() []*Section {
	var out []*Section
	for _, s := range im.Sections {
		if s.Flags&FlagExec != 0 {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// DataSections returns allocated, non-executable sections in address
// order — where §IV-E scans for function pointers.
func (im *Image) DataSections() []*Section {
	var out []*Section
	for _, s := range im.Sections {
		if s.Flags&FlagAlloc != 0 && s.Flags&FlagExec == 0 {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// FuncSymbols returns the function symbols sorted by address.
func (im *Image) FuncSymbols() []Symbol {
	var out []Symbol
	for _, s := range im.Symbols {
		if s.Func {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// SymbolNamed returns the first symbol with the given name.
func (im *Image) SymbolNamed(name string) (Symbol, bool) {
	for _, s := range im.Symbols {
		if s.Name == name {
			return s, true
		}
	}
	return Symbol{}, false
}

// Strip returns a shallow copy of the image without symbols, as a
// distributor would ship it.
func (im *Image) Strip() *Image {
	cp := *im
	cp.Symbols = nil
	return &cp
}
