// Package elfx provides the in-memory binary image abstraction shared
// by the synthetic compiler and the analyses, plus an ELF64 writer and
// a loader (built on debug/elf) so the same analyses run on real
// System-V x64 binaries.
package elfx

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync/atomic"
	"unsafe"

	"fetch/internal/arch"
)

// SectionFlags describe mapping permissions of a section.
type SectionFlags uint8

// Section flag bits.
const (
	FlagAlloc SectionFlags = 1 << iota
	FlagExec
	FlagWrite
)

// Section is one named, contiguous address range of the image.
//
// In-memory sections (synth, LoadELF) carry their content in Data.
// File-backed sections (LoadELFFile) leave Data nil and materialize
// content on first access through Bytes — zero-copy out of the backing
// mmap when possible. Code that reads content or length must go
// through Bytes/Size; Data remains the construction-time field for
// in-memory images and mutation-based tests.
type Section struct {
	Name  string
	Addr  uint64
	Data  []byte
	Flags SectionFlags

	// lz, when non-nil, marks the section file-backed and lazy. It is
	// a plain pointer (not embedded state) so the shallow struct
	// copies around the codebase (Image.Strip, delta patching) stay
	// copy-safe under go vet.
	lz *lazySection
}

// Size returns the section length in bytes without materializing
// file-backed content.
func (s *Section) Size() uint64 {
	if s.lz != nil {
		return s.lz.size
	}
	return uint64(len(s.Data))
}

// Bytes returns the section content, materializing file-backed
// sections on first access (a zero-copy window of the backing mapping
// when available, a pread copy otherwise). It returns nil when the
// backing has failed or been closed; use BytesErr where the cause
// matters.
func (s *Section) Bytes() []byte {
	b, _ := s.BytesErr()
	return b
}

// BytesErr is Bytes with the materialization error: file-backed
// sections whose backing file was closed, truncated underneath, or
// otherwise unreadable report why instead of faulting.
func (s *Section) BytesErr() ([]byte, error) {
	if s.lz == nil {
		return s.Data, nil
	}
	if p := s.lz.data.Load(); p != nil {
		return *p, nil
	}
	return s.lz.materialize(s.Name)
}

// End returns the first address past the section.
func (s *Section) End() uint64 { return s.Addr + s.Size() }

// Contains reports whether addr falls inside the section.
func (s *Section) Contains(addr uint64) bool { return addr >= s.Addr && addr < s.End() }

// Symbol is a (typically function) symbol.
type Symbol struct {
	Name string
	Addr uint64
	Size uint64
	Func bool
	// Dyn marks symbols ingested from .dynsym rather than .symtab.
	// Stripped system binaries keep their dynamic symbols, so these
	// provide partial ground truth when .symtab is gone; WriteELF
	// serializes every symbol into .symtab regardless.
	Dyn bool
}

// Image is a loaded or synthesized binary.
type Image struct {
	Name     string
	Entry    uint64
	Sections []*Section
	// Symbols is empty for stripped binaries.
	Symbols []Symbol
	// PIE marks position-independent executables (ET_DYN). Section
	// addresses are the link-time ones either way; the flag only
	// selects the ELF type on write.
	PIE bool
	// Machine is the ELF e_machine of the image's code. Loaders set it
	// from the header; the synthetic compiler sets it from its target
	// config. Zero means "never declared" and resolves to the default
	// backend (x86-64), so historical hand-built images keep working.
	Machine uint16

	// secIdx caches the sorted-range section index behind the address
	// queries (SectionAt, IsExec, IsMapped, Bytes). It is accessed
	// with sync/atomic so concurrent readers (sharded analysis walks)
	// may share one image, and it revalidates against the identity of
	// the Sections slice, so appending or replacing Sections
	// invalidates it automatically. Replacing an element of the slice
	// in place does not; no builder in this codebase does that.
	secIdx unsafe.Pointer // *sectionIndex

	// bk, when non-nil, is the shared file backing of the image's lazy
	// sections (LoadELFFile). Shallow copies (Strip) share it; Close
	// releases it.
	bk *fileBacking
}

// ISA returns the instruction-set backend for the image's machine.
// Loaders reject machines without a registered backend, so this never
// returns nil for a loaded or synthesized image.
func (im *Image) ISA() arch.ISA { return arch.ForMachine(im.Machine) }

// Section returns the section with the given name, if present.
func (im *Image) Section(name string) (*Section, bool) {
	for _, s := range im.Sections {
		if s.Name == name {
			return s, true
		}
	}
	return nil, false
}

// sectionIndex is a binary-searchable snapshot of the image's
// non-empty sections, sorted by address. Synthetic images have a
// handful of sections, but real binaries carry 25+ and the address
// queries run once per decoded instruction — the linear scans they
// replaced dominated decode profiles on real inputs.
type sectionIndex struct {
	// from is the exact Sections slice the index was built over; the
	// index is valid only while the image still holds that slice
	// (same length and same backing array).
	from []*Section
	// linear marks images with overlapping sections, where a sorted
	// lookup could disagree with first-match-in-slice-order semantics;
	// queries fall back to the reference linear scan.
	linear bool
	starts []uint64
	secs   []*Section
}

// valid reports whether the index still describes secs.
func (ix *sectionIndex) valid(secs []*Section) bool {
	if len(ix.from) != len(secs) {
		return false
	}
	return len(secs) == 0 || &ix.from[0] == &secs[0]
}

// buildSectionIndex sorts the non-empty sections by address. Zero-length
// sections can never contain an address, so they are dropped; any
// overlap among the rest (including two non-empty sections at one
// address) forces the linear fallback.
func buildSectionIndex(secs []*Section) *sectionIndex {
	ix := &sectionIndex{from: secs}
	for _, s := range secs {
		if s.Size() > 0 {
			ix.secs = append(ix.secs, s)
		}
	}
	sort.SliceStable(ix.secs, func(i, j int) bool { return ix.secs[i].Addr < ix.secs[j].Addr })
	for i, s := range ix.secs {
		if i > 0 && ix.secs[i-1].End() > s.Addr {
			ix.linear = true
			ix.secs, ix.starts = nil, nil
			return ix
		}
		ix.starts = append(ix.starts, s.Addr)
	}
	return ix
}

// index returns the current section index, rebuilding it when the
// Sections slice changed. Concurrent callers may race on the rebuild;
// the build is deterministic, so whichever snapshot lands last is
// equivalent.
func (im *Image) index() *sectionIndex {
	if p := (*sectionIndex)(atomic.LoadPointer(&im.secIdx)); p != nil && p.valid(im.Sections) {
		return p
	}
	return im.rebuildIndex()
}

// rebuildIndex is the slow path of index, kept out of line so the
// validity check inlines into the address queries.
func (im *Image) rebuildIndex() *sectionIndex {
	p := buildSectionIndex(im.Sections)
	atomic.StorePointer(&im.secIdx, unsafe.Pointer(p))
	return p
}

// SectionAt returns the section containing addr, if any. The binary
// search is open-coded in the one function body: this runs per decoded
// instruction and per candidate pointer word, where the call overhead
// of a sort.Search-style helper chain is larger than the lookup.
func (im *Image) SectionAt(addr uint64) (*Section, bool) {
	ix := (*sectionIndex)(atomic.LoadPointer(&im.secIdx))
	if ix == nil || !ix.valid(im.Sections) {
		ix = im.rebuildIndex()
	}
	if ix.linear {
		for _, s := range im.Sections {
			if s.Contains(addr) {
				return s, true
			}
		}
		return nil, false
	}
	// The only candidate is the last section starting at or before addr.
	starts := ix.starts
	lo, hi := 0, len(starts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if starts[mid] <= addr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return nil, false
	}
	if s := ix.secs[lo-1]; s.Contains(addr) {
		return s, true
	}
	return nil, false
}

// IsExec reports whether addr lies in an executable section.
func (im *Image) IsExec(addr uint64) bool {
	s, ok := im.SectionAt(addr)
	return ok && s.Flags&FlagExec != 0
}

// IsMapped reports whether addr lies in any allocated section.
func (im *Image) IsMapped(addr uint64) bool {
	s, ok := im.SectionAt(addr)
	return ok && s.Flags&FlagAlloc != 0
}

// Bytes returns n bytes starting at addr, or an error when the range
// leaves its section.
func (im *Image) Bytes(addr uint64, n int) ([]byte, error) {
	s, ok := im.SectionAt(addr)
	if !ok {
		return nil, fmt.Errorf("elfx: address %#x not mapped", addr)
	}
	off := addr - s.Addr
	if off+uint64(n) > s.Size() {
		return nil, fmt.Errorf("elfx: range [%#x,+%d) leaves section %s", addr, n, s.Name)
	}
	body, err := s.BytesErr()
	if err != nil {
		return nil, err
	}
	return body[off : off+uint64(n)], nil
}

// BytesToSectionEnd returns the bytes from addr to the end of its
// section (a decode window for the disassembler).
func (im *Image) BytesToSectionEnd(addr uint64) ([]byte, bool) {
	s, ok := im.SectionAt(addr)
	if !ok {
		return nil, false
	}
	body := s.Bytes()
	if body == nil {
		return nil, false
	}
	return body[addr-s.Addr:], true
}

// ReadU64 reads a little-endian 64-bit word at addr.
func (im *Image) ReadU64(addr uint64) (uint64, error) {
	b, err := im.Bytes(addr, 8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// ReadU32 reads a little-endian 32-bit word at addr.
func (im *Image) ReadU32(addr uint64) (uint32, error) {
	b, err := im.Bytes(addr, 4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

// ExecSections returns all executable sections in address order.
func (im *Image) ExecSections() []*Section {
	var out []*Section
	for _, s := range im.Sections {
		if s.Flags&FlagExec != 0 {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// DataSections returns allocated, non-executable sections in address
// order — where §IV-E scans for function pointers.
func (im *Image) DataSections() []*Section {
	var out []*Section
	for _, s := range im.Sections {
		if s.Flags&FlagAlloc != 0 && s.Flags&FlagExec == 0 {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// FuncSymbols returns the function symbols sorted by address.
func (im *Image) FuncSymbols() []Symbol {
	var out []Symbol
	for _, s := range im.Symbols {
		if s.Func {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// SymbolNamed returns the first symbol with the given name.
func (im *Image) SymbolNamed(name string) (Symbol, bool) {
	for _, s := range im.Symbols {
		if s.Name == name {
			return s, true
		}
	}
	return Symbol{}, false
}

// Strip returns a shallow copy of the image without symbols, as a
// distributor would ship it. The copy shares sections and file
// backing with the original; closing either closes both.
func (im *Image) Strip() *Image {
	cp := *im
	cp.Symbols = nil
	return &cp
}

// FileBacked reports whether the image reads sections lazily from a
// backing file (LoadELFFile) rather than from memory.
func (im *Image) FileBacked() bool { return im.bk != nil }

// Close releases the image's file backing: the descriptor closes, the
// mapping is released, and not-yet-materialized sections return errors
// from then on instead of content. Close must be sequenced after the
// last access to section bytes (analyses synchronize this naturally);
// it is a no-op for in-memory images and when called twice.
func (im *Image) Close() error {
	if im.bk == nil {
		return nil
	}
	return im.bk.close()
}

// ImageMemStats accounts the heap and mapping footprint of an image.
type ImageMemStats struct {
	// MaterializedBytes is section content held on the Go heap: all of
	// it for in-memory images, only pread/NOBITS/compressed copies for
	// file-backed ones.
	MaterializedBytes int64
	// MappedBytes is section content served zero-copy out of the
	// backing mmap (file-backed images only).
	MappedBytes int64
}

// MemStats reports how many section bytes the image currently holds on
// the heap versus serves zero-copy from its mapping.
func (im *Image) MemStats() ImageMemStats {
	var ms ImageMemStats
	for _, s := range im.Sections {
		if s.lz == nil {
			ms.MaterializedBytes += int64(len(s.Data))
		}
	}
	if im.bk != nil {
		ms.MaterializedBytes += im.bk.materialized.Load()
		ms.MappedBytes += im.bk.mapped.Load()
	}
	return ms
}
