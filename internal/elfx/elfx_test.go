package elfx

import (
	"testing"
)

// testImage builds a small two-section image with symbols.
func testImage() *Image {
	text := &Section{
		Name:  ".text",
		Addr:  0x401000,
		Data:  []byte{0x55, 0x48, 0x89, 0xE5, 0x5D, 0xC3, 0xCC, 0xCC},
		Flags: FlagAlloc | FlagExec,
	}
	rodata := &Section{
		Name:  ".rodata",
		Addr:  0x402000,
		Data:  []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16},
		Flags: FlagAlloc,
	}
	data := &Section{
		Name:  ".data",
		Addr:  0x403000,
		Data:  make([]byte, 32),
		Flags: FlagAlloc | FlagWrite,
	}
	return &Image{
		Name:     "test",
		Entry:    0x401000,
		Sections: []*Section{text, rodata, data},
		Symbols: []Symbol{
			{Name: "main", Addr: 0x401000, Size: 6, Func: true},
			{Name: "table", Addr: 0x402000, Size: 16, Func: false},
		},
	}
}

func TestImageLookups(t *testing.T) {
	im := testImage()
	if s, ok := im.Section(".text"); !ok || s.Addr != 0x401000 {
		t.Fatalf("Section(.text) = %v, %v", s, ok)
	}
	if _, ok := im.Section(".bss"); ok {
		t.Fatal("Section(.bss) should miss")
	}
	if !im.IsExec(0x401003) {
		t.Error("IsExec(.text addr) = false")
	}
	if im.IsExec(0x402000) {
		t.Error("IsExec(.rodata addr) = true")
	}
	if !im.IsMapped(0x403010) {
		t.Error("IsMapped(.data addr) = false")
	}
	if im.IsMapped(0x500000) {
		t.Error("IsMapped(unmapped) = true")
	}
	if s, ok := im.SectionAt(0x402008); !ok || s.Name != ".rodata" {
		t.Errorf("SectionAt(0x402008) = %v, %v", s, ok)
	}
}

func TestImageReads(t *testing.T) {
	im := testImage()
	b, err := im.Bytes(0x402000, 4)
	if err != nil || len(b) != 4 || b[0] != 1 {
		t.Fatalf("Bytes = % x, %v", b, err)
	}
	if _, err := im.Bytes(0x402000, 17); err == nil {
		t.Error("Bytes crossing section end should fail")
	}
	if _, err := im.Bytes(0x999999, 1); err == nil {
		t.Error("Bytes at unmapped address should fail")
	}
	v, err := im.ReadU64(0x402000)
	if err != nil || v != 0x0807060504030201 {
		t.Fatalf("ReadU64 = %#x, %v", v, err)
	}
	v32, err := im.ReadU32(0x402004)
	if err != nil || v32 != 0x08070605 {
		t.Fatalf("ReadU32 = %#x, %v", v32, err)
	}
	w, ok := im.BytesToSectionEnd(0x401004)
	if !ok || len(w) != 4 {
		t.Fatalf("BytesToSectionEnd = %d bytes, %v", len(w), ok)
	}
}

func TestSectionClassification(t *testing.T) {
	im := testImage()
	ex := im.ExecSections()
	if len(ex) != 1 || ex[0].Name != ".text" {
		t.Fatalf("ExecSections = %v", ex)
	}
	ds := im.DataSections()
	if len(ds) != 2 || ds[0].Name != ".rodata" || ds[1].Name != ".data" {
		t.Fatalf("DataSections = %v", ds)
	}
}

func TestFuncSymbolsAndStrip(t *testing.T) {
	im := testImage()
	fs := im.FuncSymbols()
	if len(fs) != 1 || fs[0].Name != "main" {
		t.Fatalf("FuncSymbols = %v", fs)
	}
	if _, ok := im.SymbolNamed("table"); !ok {
		t.Error("SymbolNamed(table) missed")
	}
	st := im.Strip()
	if len(st.Symbols) != 0 {
		t.Error("Strip left symbols")
	}
	if len(im.Symbols) != 2 {
		t.Error("Strip mutated the original")
	}
}

func TestELFRoundTrip(t *testing.T) {
	im := testImage()
	raw, err := WriteELF(im)
	if err != nil {
		t.Fatalf("WriteELF: %v", err)
	}
	got, err := LoadELF(raw)
	if err != nil {
		t.Fatalf("LoadELF: %v", err)
	}
	if got.Entry != im.Entry {
		t.Errorf("entry = %#x, want %#x", got.Entry, im.Entry)
	}
	if len(got.Sections) != 3 {
		t.Fatalf("loaded %d sections, want 3", len(got.Sections))
	}
	for _, name := range []string{".text", ".rodata", ".data"} {
		ws, _ := im.Section(name)
		gs, ok := got.Section(name)
		if !ok {
			t.Fatalf("section %s lost", name)
		}
		if gs.Addr != ws.Addr || len(gs.Data) != len(ws.Data) {
			t.Errorf("section %s = [%#x,+%d), want [%#x,+%d)",
				name, gs.Addr, len(gs.Data), ws.Addr, len(ws.Data))
		}
		for k := range ws.Data {
			if gs.Data[k] != ws.Data[k] {
				t.Errorf("section %s byte %d = %#x, want %#x", name, k, gs.Data[k], ws.Data[k])
				break
			}
		}
		if gs.Flags != ws.Flags {
			t.Errorf("section %s flags = %v, want %v", name, gs.Flags, ws.Flags)
		}
	}
	if len(got.Symbols) != 2 {
		t.Fatalf("loaded %d symbols, want 2", len(got.Symbols))
	}
	m, ok := got.SymbolNamed("main")
	if !ok || m.Addr != 0x401000 || m.Size != 6 || !m.Func {
		t.Errorf("main symbol = %+v, %v", m, ok)
	}
	tb, ok := got.SymbolNamed("table")
	if !ok || tb.Func {
		t.Errorf("table symbol = %+v, %v", tb, ok)
	}
}

func TestELFStrippedRoundTrip(t *testing.T) {
	im := testImage().Strip()
	raw, err := WriteELF(im)
	if err != nil {
		t.Fatalf("WriteELF: %v", err)
	}
	got, err := LoadELF(raw)
	if err != nil {
		t.Fatalf("LoadELF: %v", err)
	}
	if len(got.Symbols) != 0 {
		t.Errorf("stripped binary has %d symbols", len(got.Symbols))
	}
	if len(got.Sections) != 3 {
		t.Errorf("stripped binary has %d sections, want 3", len(got.Sections))
	}
}

func TestLoadELFRejectsGarbage(t *testing.T) {
	if _, err := LoadELF([]byte("not an elf at all")); err == nil {
		t.Fatal("LoadELF accepted garbage")
	}
}
