package elfx

import (
	"bytes"
	"debug/elf"
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"testing"
)

// sectionAtLinear is the reference first-match scan SectionAt replaced;
// the index must be indistinguishable from it on every image.
func sectionAtLinear(im *Image, addr uint64) (*Section, bool) {
	for _, s := range im.Sections {
		if s.Contains(addr) {
			return s, true
		}
	}
	return nil, false
}

// probeAddrs returns the interesting addresses of an image: every
// section boundary and its neighbors, plus mid-section and far-out
// points.
func probeAddrs(im *Image) []uint64 {
	out := []uint64{0, 1, ^uint64(0), 0xDEAD0000}
	for _, s := range im.Sections {
		out = append(out, s.Addr-1, s.Addr, s.Addr+uint64(len(s.Data))/2, s.End()-1, s.End(), s.End()+1)
	}
	return out
}

// checkIndexMatchesLinear asserts SectionAt ≡ the linear reference on
// every probe address of the image.
func checkIndexMatchesLinear(t *testing.T, im *Image, label string) {
	t.Helper()
	for _, a := range probeAddrs(im) {
		want, wantOK := sectionAtLinear(im, a)
		got, gotOK := im.SectionAt(a)
		if got != want || gotOK != wantOK {
			t.Errorf("%s: SectionAt(%#x) = %v, %v; linear reference gives %v, %v",
				label, a, got, gotOK, want, wantOK)
		}
	}
}

// loadSelf loads the running test binary through LoadELF, skipping on
// platforms without /proc/self/exe.
func loadSelf(t testing.TB) *Image {
	t.Helper()
	if runtime.GOOS != "linux" {
		t.Skip("needs /proc/self/exe")
	}
	data, err := os.ReadFile("/proc/self/exe")
	if err != nil {
		t.Skipf("reading /proc/self/exe: %v", err)
	}
	im, err := LoadELF(data)
	if err != nil {
		t.Fatalf("LoadELF(self): %v", err)
	}
	return im
}

// TestSectionIndexMatchesLinear pins the byte-identity contract of the
// sorted-range index against the linear reference on three shapes: a
// synthetic handful of sections, a real 25+-section host binary, and
// an overlapping layout that must take the fallback path.
func TestSectionIndexMatchesLinear(t *testing.T) {
	synthIm := &Image{Sections: []*Section{
		{Name: ".text", Addr: 0x401000, Data: make([]byte, 0x300), Flags: FlagAlloc | FlagExec},
		{Name: ".rodata", Addr: 0x402000, Data: make([]byte, 0x80), Flags: FlagAlloc},
		{Name: ".empty", Addr: 0x402080, Data: nil, Flags: FlagAlloc},
		{Name: ".data", Addr: 0x403000, Data: make([]byte, 0x40), Flags: FlagAlloc | FlagWrite},
	}}
	checkIndexMatchesLinear(t, synthIm, "synth")

	overlapIm := &Image{Sections: []*Section{
		{Name: "a", Addr: 0x1000, Data: make([]byte, 0x100), Flags: FlagAlloc},
		{Name: "b", Addr: 0x1080, Data: make([]byte, 0x100), Flags: FlagAlloc | FlagExec},
	}}
	checkIndexMatchesLinear(t, overlapIm, "overlap")
	// First-match semantics on the overlapped range must hold exactly.
	if s, ok := overlapIm.SectionAt(0x10C0); !ok || s.Name != "a" {
		t.Errorf("overlap: SectionAt(0x10c0) = %v, %v; want first-in-slice section a", s, ok)
	}

	checkIndexMatchesLinear(t, loadSelf(t), "real")
}

// TestSectionIndexInvalidatedOnAppend pins the staleness contract:
// growing or replacing the Sections slice must drop the cached index.
func TestSectionIndexInvalidatedOnAppend(t *testing.T) {
	im := &Image{Sections: []*Section{
		{Name: ".text", Addr: 0x1000, Data: make([]byte, 0x100), Flags: FlagAlloc | FlagExec},
	}}
	if im.IsExec(0x2000) {
		t.Fatal("address exec before its section exists")
	}
	im.Sections = append(im.Sections,
		&Section{Name: ".late", Addr: 0x2000, Data: make([]byte, 0x100), Flags: FlagAlloc | FlagExec})
	if !im.IsExec(0x2000) {
		t.Fatal("index not invalidated by append: new section invisible")
	}
	checkIndexMatchesLinear(t, im, "post-append")

	// A shallow image copy (Strip) must not share future rebuilds with
	// the original when their Sections diverge.
	st := im.Strip()
	st.Sections = st.Sections[:1]
	if st.IsExec(0x2000) {
		t.Error("truncated copy still sees the original's section")
	}
	if !im.IsExec(0x2000) {
		t.Error("original lost its section after copy diverged")
	}
}

// TestSectionIndexConcurrentReaders drives the lazy build from many
// goroutines under -race: sharded analysis shares one image across
// walkers, so the cache must be safe for concurrent address queries.
func TestSectionIndexConcurrentReaders(t *testing.T) {
	im := loadSelf(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, a := range probeAddrs(im) {
				want, _ := sectionAtLinear(im, a)
				if got, _ := im.SectionAt(a); got != want {
					t.Errorf("concurrent SectionAt(%#x) = %v, want %v", a, got, want)
				}
			}
		}()
	}
	wg.Wait()
}

// TestLoadELFSelf sanity-checks loading the running test binary: an
// executable .text containing the entry point, function symbols from
// .symtab, and a PIE flag agreeing with the ELF type.
func TestLoadELFSelf(t *testing.T) {
	im := loadSelf(t)
	txt, ok := im.Section(".text")
	if !ok || txt.Flags&FlagExec == 0 || len(txt.Data) == 0 {
		t.Fatalf(".text missing or not executable: %v, %v", txt, ok)
	}
	if !im.IsExec(im.Entry) {
		t.Errorf("entry %#x not in executable section", im.Entry)
	}
	// `go test` links its ephemeral test binaries without .symtab, so
	// symbol assertions use the toolchain's own go binary instead.
	goBin := filepath.Join(runtime.GOROOT(), "bin", "go")
	if data, err := os.ReadFile(goBin); err == nil {
		gim, err := LoadELF(data)
		if err != nil {
			t.Fatalf("LoadELF(%s): %v", goBin, err)
		}
		funcs := gim.FuncSymbols()
		if len(funcs) == 0 {
			t.Errorf("no function symbols in unstripped %s", goBin)
		}
		for _, s := range funcs {
			if !gim.IsExec(s.Addr) {
				t.Errorf("function symbol %s at %#x not executable", s.Name, s.Addr)
				break
			}
		}
	}
	f, err := elf.NewFile(bytes.NewReader(mustRead(t, "/proc/self/exe")))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if im.PIE != (f.Type == elf.ET_DYN) {
		t.Errorf("PIE = %v, ELF type = %v", im.PIE, f.Type)
	}
}

// TestLoadELFHostBinary loads a known system ELF: sections must be
// sane and — on the stripped PIE binaries distros ship — any truth
// left must come from .dynsym, flagged as such.
func TestLoadELFHostBinary(t *testing.T) {
	var im *Image
	var path string
	for _, p := range []string{"/usr/bin/env", "/bin/ls", "/bin/sh", "/usr/bin/true"} {
		data, err := os.ReadFile(p)
		if err != nil || len(data) < 4 || string(data[:4]) != "\x7fELF" {
			continue
		}
		if m, err := LoadELF(data); err == nil {
			im, path = m, p
			break
		}
	}
	if im == nil {
		t.Skip("no loadable x64 host binary found")
	}
	if len(im.Sections) < 5 {
		t.Errorf("%s: only %d sections", path, len(im.Sections))
	}
	if _, ok := im.Section(".text"); !ok {
		t.Errorf("%s: no .text", path)
	}
	for _, s := range im.Symbols {
		if !s.Dyn {
			continue
		}
		if s.Addr != 0 && !im.IsMapped(s.Addr) {
			t.Errorf("%s: dynsym %s at unmapped %#x", path, s.Name, s.Addr)
		}
	}
	checkIndexMatchesLinear(t, im, path)
}

// TestWriteELFReloadEquivalence pins WriteELF(LoadELF(x)) reload
// equivalence for images within the writer's supported shape — both a
// hand-built symbol-carrying image and the real running test binary.
func TestWriteELFReloadEquivalence(t *testing.T) {
	hand := &Image{
		Entry: 0x401010,
		Sections: []*Section{
			{Name: ".text", Addr: 0x401000, Data: bytes.Repeat([]byte{0x90}, 64), Flags: FlagAlloc | FlagExec},
			{Name: ".rodata", Addr: 0x402000, Data: []byte{1, 2, 3, 4}, Flags: FlagAlloc},
		},
		Symbols: []Symbol{
			{Name: "main", Addr: 0x401010, Size: 16, Func: true},
			{Name: "data_obj", Addr: 0x402000, Size: 4},
		},
	}
	checkReload(t, hand, "hand-built")

	self := loadSelf(t)
	checkReload(t, self, "self")
}

// checkReload writes an image and asserts the reloaded form is
// equivalent: same sections, entry, PIE, and symbols (modulo the Dyn
// flag — the writer serializes everything into .symtab).
func checkReload(t *testing.T, im *Image, label string) {
	t.Helper()
	blob, err := WriteELF(im)
	if err != nil {
		t.Fatalf("%s: WriteELF: %v", label, err)
	}
	got, err := LoadELF(blob)
	if err != nil {
		t.Fatalf("%s: reload: %v", label, err)
	}
	if got.Entry != im.Entry || got.PIE != im.PIE {
		t.Errorf("%s: entry/PIE = %#x/%v, want %#x/%v", label, got.Entry, got.PIE, im.Entry, im.PIE)
	}
	if len(got.Sections) != len(im.Sections) {
		t.Fatalf("%s: %d sections after reload, want %d", label, len(got.Sections), len(im.Sections))
	}
	bySec := make(map[string]*Section, len(im.Sections))
	for _, s := range im.Sections {
		bySec[s.Name] = s
	}
	for _, g := range got.Sections {
		w, ok := bySec[g.Name]
		if !ok {
			t.Errorf("%s: unexpected section %q after reload", label, g.Name)
			continue
		}
		if g.Addr != w.Addr || g.Flags != w.Flags || !bytes.Equal(g.Data, w.Data) {
			t.Errorf("%s: section %q diverged after reload", label, g.Name)
		}
	}
	want := append([]Symbol(nil), im.Symbols...)
	for i := range want {
		want[i].Dyn = false
	}
	if !reflect.DeepEqual(got.Symbols, want) {
		t.Errorf("%s: symbols diverged after reload (%d vs %d)", label, len(got.Symbols), len(want))
	}
}

// mustRead reads a file or fails the test.
func mustRead(t testing.TB, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestLoadELFCorruptSymtabErrors is the regression test for the
// swallowed-symbol-error bug: a binary whose .symtab is present but
// unparseable must fail loudly, not load as if it were stripped.
func TestLoadELFCorruptSymtabErrors(t *testing.T) {
	im := &Image{
		Entry: 0x401000,
		Sections: []*Section{
			{Name: ".text", Addr: 0x401000, Data: bytes.Repeat([]byte{0x90}, 32), Flags: FlagAlloc | FlagExec},
		},
		Symbols: []Symbol{{Name: "f", Addr: 0x401000, Size: 32, Func: true}},
	}
	blob, err := WriteELF(im)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the .symtab section header: grow sh_size by one byte so
	// the table is no longer a whole number of Sym64 entries.
	shoff := binary.LittleEndian.Uint64(blob[40:])
	nShdr := int(binary.LittleEndian.Uint16(blob[60:]))
	symShdr := shoff + uint64((nShdr-3)*shdrSize)
	szOff := symShdr + 32
	binary.LittleEndian.PutUint64(blob[szOff:], binary.LittleEndian.Uint64(blob[szOff:])+1)

	if _, err := LoadELF(blob); err == nil {
		t.Fatal("LoadELF accepted a corrupt .symtab as if stripped")
	} else if want := ".symtab"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Errorf("error %q does not mention %s", err, want)
	}

	// Sanity: a genuinely stripped binary still loads without error.
	st, err := WriteELF(im.Strip())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadELF(st); err != nil {
		t.Errorf("stripped binary failed to load: %v", err)
	}
}

// benchSelf caches the loaded self image for the benchmarks.
var benchSelf struct {
	once sync.Once
	im   *Image
}

// loadBenchSelf loads a real host binary once for benchmarking,
// preferring a many-section system ELF over the test binary itself.
func loadBenchSelf(b *testing.B) *Image {
	benchSelf.once.Do(func() {
		for _, p := range []string{"/bin/bash", "/usr/bin/bash", "/bin/ls", "/proc/self/exe"} {
			data, err := os.ReadFile(p)
			if err != nil {
				continue
			}
			if im, err := LoadELF(data); err == nil {
				benchSelf.im = im
				return
			}
		}
	})
	if benchSelf.im == nil {
		b.Skip("no loadable host binary")
	}
	return benchSelf.im
}

// benchProbes builds a deterministic address mix over the image
// mimicking the xref pass's IsExec traffic over candidate pointer
// words: hits spread across all sections, plus an equal share of
// misses (inter-section gaps and out-of-image addresses), since most
// data words are not valid code pointers.
func benchProbes(im *Image) []uint64 {
	var probes []uint64
	for i, s := range im.Sections {
		step := uint64(len(s.Data))/7 + 1
		for a := s.Addr; a < s.End(); a += step {
			probes = append(probes, a, s.End()+uint64(i)*8+7)
		}
	}
	return probes
}

// BenchmarkSectionAtIndexed measures the sorted-range index on the
// real 25+-section self binary; compare with
// BenchmarkSectionAtLinear, the scan it replaced.
func BenchmarkSectionAtIndexed(b *testing.B) {
	im := loadBenchSelf(b)
	probes := benchProbes(im)
	im.index() // build outside the timed region
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, a := range probes {
			im.SectionAt(a)
		}
	}
	b.ReportMetric(float64(len(probes)), "probes/op")
}

// BenchmarkSectionAtLinear is the pre-index reference on the same
// probe mix, kept as the baseline the index is measured against.
func BenchmarkSectionAtLinear(b *testing.B) {
	im := loadBenchSelf(b)
	probes := benchProbes(im)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, a := range probes {
			sectionAtLinear(im, a)
		}
	}
	b.ReportMetric(float64(len(probes)), "probes/op")
}
