package elfx

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzLoadELFFile is the differential fuzz target of the two loaders:
// whatever bytes LoadELF accepts, LoadELFFile over a file holding the
// same bytes must accept too and expose identical headers, sections,
// and symbols. (The converse is weaker by design: LoadELF validates
// every section body eagerly while the file-backed loader defers to
// first access, so the file path may accept inputs whose bodies only
// error later — those must error or match on access, never fault.)
func FuzzLoadELFFile(f *testing.F) {
	raw, err := WriteELF(testImage())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	if len(raw) > 64 {
		f.Add(raw[:64])          // header only
		f.Add(raw[:len(raw)-16]) // truncated section data
	}
	f.Add([]byte("\x7fELF"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		mem, memErr := LoadELF(data)
		path := filepath.Join(t.TempDir(), "fuzz.elf")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip("cannot write temp file")
		}
		fb, fbErr := LoadELFFile(path)
		if fbErr == nil {
			defer fb.Close()
		}
		if memErr != nil {
			// The file path may still open (lazy bodies); accessing the
			// sections must then return bytes or errors, never fault.
			if fbErr == nil {
				for _, s := range fb.Sections {
					s.BytesErr()
				}
			}
			return
		}
		if fbErr != nil {
			t.Fatalf("LoadELF accepted %d bytes but LoadELFFile rejected them: %v", len(data), fbErr)
		}
		if fb.Entry != mem.Entry || fb.PIE != mem.PIE {
			t.Fatalf("header mismatch: entry %#x/%v vs %#x/%v", fb.Entry, fb.PIE, mem.Entry, mem.PIE)
		}
		if len(fb.Sections) != len(mem.Sections) {
			t.Fatalf("%d sections vs %d", len(fb.Sections), len(mem.Sections))
		}
		for i, ms := range mem.Sections {
			fs := fb.Sections[i]
			if fs.Name != ms.Name || fs.Addr != ms.Addr || fs.Flags != ms.Flags || fs.Size() != ms.Size() {
				t.Fatalf("section %d header mismatch: %s@%#x/%d vs %s@%#x/%d",
					i, fs.Name, fs.Addr, fs.Size(), ms.Name, ms.Addr, ms.Size())
			}
			fbBody, err := fs.BytesErr()
			if err != nil {
				t.Fatalf("section %s: file-backed body errored where buffered succeeded: %v", fs.Name, err)
			}
			if !bytes.Equal(fbBody, ms.Bytes()) {
				t.Fatalf("section %s bodies differ", fs.Name)
			}
		}
		if len(fb.Symbols) != len(mem.Symbols) {
			t.Fatalf("%d symbols vs %d", len(fb.Symbols), len(mem.Symbols))
		}
		for i, msym := range mem.Symbols {
			if fb.Symbols[i] != msym {
				t.Fatalf("symbol %d mismatch: %+v vs %+v", i, fb.Symbols[i], msym)
			}
		}
	})
}
