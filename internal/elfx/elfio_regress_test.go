package elfx

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// TestWriteELFStableSectionOrder pins the determinism fix for
// equal-address sections: several zero-length markers sharing an
// address must serialize byte-identically on every run (sort.Slice is
// unstable; the writer now tie-breaks on the section name).
func TestWriteELFStableSectionOrder(t *testing.T) {
	build := func(perm []int) *Image {
		names := []string{".marker.a", ".marker.b", ".marker.c", ".marker.d"}
		im := &Image{Entry: 0x401000}
		im.Sections = append(im.Sections, &Section{
			Name: ".text", Addr: 0x401000, Data: []byte{0xC3}, Flags: FlagAlloc | FlagExec,
		})
		for _, k := range perm {
			im.Sections = append(im.Sections, &Section{
				Name: names[k], Addr: 0x402000, Flags: FlagAlloc,
			})
		}
		im.Symbols = []Symbol{{Name: "f", Addr: 0x401000, Size: 1, Func: true}}
		return im
	}
	ref, err := WriteELF(build([]int{0, 1, 2, 3}))
	if err != nil {
		t.Fatal(err)
	}
	// Same logical image, different input order and repeated writes:
	// every serialization must be byte-identical.
	perms := [][]int{{3, 2, 1, 0}, {1, 3, 0, 2}, {2, 0, 3, 1}}
	for run := 0; run < 100; run++ {
		perm := perms[run%len(perms)]
		out, err := WriteELF(build(perm))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, ref) {
			t.Fatalf("run %d (input order %v): serialization differs from reference", run, perm)
		}
	}
}

// TestWriteELFSectionCountBound pins the explicit error for images
// with more sections than ELF64's uint16 section indexing can express
// — previously findShndx silently truncated uint16(k+1) and e_shnum
// wrapped.
func TestWriteELFSectionCountBound(t *testing.T) {
	im := &Image{Entry: 0x401000}
	// 0xff00 (SHN_LORESERVE) minus the 4 bookkeeping headers is the
	// largest allowed count; one past it must error.
	for k := 0; k < 0xff00-4+1; k++ {
		im.Sections = append(im.Sections, &Section{
			Name: fmt.Sprintf(".s%05d", k), Addr: 0x401000, Flags: FlagAlloc,
		})
	}
	im.Symbols = []Symbol{{Name: "f", Addr: 0x401000, Func: true}}
	if _, err := WriteELF(im); err == nil {
		t.Fatal("WriteELF accepted an image whose section count overflows uint16 indexing")
	} else if !strings.Contains(err.Error(), "SHN_LORESERVE") {
		t.Fatalf("unexpected error: %v", err)
	}
	// One section fewer fits.
	im.Sections = im.Sections[:0xff00-4]
	if _, err := WriteELF(im); err != nil {
		t.Fatalf("WriteELF rejected a maximal-but-legal section count: %v", err)
	}
}
