package elfx

import (
	"bytes"
	"debug/elf"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"fetch/internal/arch"
	// The analysis backends register themselves with internal/arch at
	// init time; importing them here guarantees any program that loads
	// ELF images links every supported ISA.
	_ "fetch/internal/a64"
	_ "fetch/internal/x64"
)

// ErrUnsupportedMachine reports an ELF whose e_machine has no
// registered analysis backend. Callers that sweep directories of real
// binaries (realeval -scan) match it with errors.Is to bucket
// other-ISA binaries separately from genuinely corrupt files.
var ErrUnsupportedMachine = errors.New("unsupported machine")

// checkMachine validates a parsed file's e_machine against the
// registered arch backends and returns the value for Image.Machine.
func checkMachine(f *elf.File) (uint16, error) {
	m := uint16(f.Machine)
	if arch.ForMachine(m) == nil || m == 0 {
		return 0, fmt.Errorf("elfx: machine %v: %w (supported: x86-64, aarch64)",
			f.Machine, ErrUnsupportedMachine)
	}
	return m, nil
}

// ELF constants not worth importing debug/elf values for at write time.
const (
	ehdrSize  = 64
	phdrSize  = 56
	shdrSize  = 64
	symSize   = 24
	pageAlign = 0x1000
)

// WriteELF serializes the image as a statically-linked-style ELF64
// executable that debug/elf (and real tooling) can parse: one PT_LOAD
// per allocated section, a section header table, and — unless the image
// is stripped — .symtab/.strtab with function symbols.
func WriteELF(im *Image) ([]byte, error) {
	type outSec struct {
		sec     *Section
		nameOff uint32
		fileOff uint64
	}

	// Stable order with a name tie-break: sort.Slice is unstable, so
	// equal-address sections (e.g. two zero-length markers) would
	// serialize in nondeterministic order from run to run.
	secs := make([]*Section, len(im.Sections))
	copy(secs, im.Sections)
	sort.SliceStable(secs, func(i, j int) bool {
		if secs[i].Addr != secs[j].Addr {
			return secs[i].Addr < secs[j].Addr
		}
		return secs[i].Name < secs[j].Name
	})

	// Section indices live in uint16 fields (e_shnum, symbol st_shndx)
	// and values from SHN_LORESERVE up are reserved; refuse images the
	// format cannot express instead of silently truncating indices.
	if nShdr := 1 + len(secs) + 3; nShdr > int(elf.SHN_LORESERVE) {
		return nil, fmt.Errorf("elfx: %d sections need %d section headers; ELF64 caps the section index at %d (SHN_LORESERVE)",
			len(secs), nShdr, int(elf.SHN_LORESERVE)-1)
	}

	// Build .shstrtab incrementally.
	shstr := []byte{0}
	strOff := func(name string) uint32 {
		off := uint32(len(shstr))
		shstr = append(shstr, name...)
		shstr = append(shstr, 0)
		return off
	}

	var outs []outSec
	for _, s := range secs {
		outs = append(outs, outSec{sec: s, nameOff: strOff(s.Name)})
	}

	// Symbol table.
	var symtab, strtab []byte
	strtab = []byte{0}
	symtab = make([]byte, symSize) // index 0: mandatory null symbol
	if len(im.Symbols) > 0 {
		findShndx := func(addr uint64) uint16 {
			for k, o := range outs {
				if o.sec.Contains(addr) {
					return uint16(k + 1) // +1 for the NULL section
				}
			}
			return 0
		}
		for _, sym := range im.Symbols {
			nameOff := uint32(len(strtab))
			strtab = append(strtab, sym.Name...)
			strtab = append(strtab, 0)
			ent := make([]byte, symSize)
			binary.LittleEndian.PutUint32(ent[0:], nameOff)
			info := byte(elf.STB_GLOBAL)<<4 | byte(elf.STT_OBJECT)
			if sym.Func {
				info = byte(elf.STB_GLOBAL)<<4 | byte(elf.STT_FUNC)
			}
			ent[4] = info
			binary.LittleEndian.PutUint16(ent[6:], findShndx(sym.Addr))
			binary.LittleEndian.PutUint64(ent[8:], sym.Addr)
			binary.LittleEndian.PutUint64(ent[16:], sym.Size)
			symtab = append(symtab, ent...)
		}
	}

	symtabName := strOff(".symtab")
	strtabName := strOff(".strtab")
	shstrName := strOff(".shstrtab")

	nPhdr := len(outs)
	nShdr := 1 + len(outs) + 3 // NULL + sections + symtab,strtab,shstrtab

	// File layout: ehdr | phdrs | section datas | symtab | strtab |
	// shstrtab | shdrs.
	off := uint64(ehdrSize + nPhdr*phdrSize)
	align := func(v, a uint64) uint64 { return (v + a - 1) &^ (a - 1) }
	for k := range outs {
		// Keep p_offset ≡ p_vaddr (mod page) for loader fidelity.
		off = align(off, 16)
		want := outs[k].sec.Addr % pageAlign
		if off%pageAlign != want {
			off += (want - off%pageAlign + pageAlign) % pageAlign
		}
		outs[k].fileOff = off
		off += outs[k].sec.Size()
	}
	symtabOff := align(off, 8)
	strtabOff := symtabOff + uint64(len(symtab))
	shstrOff := strtabOff + uint64(len(strtab))
	shdrOff := align(shstrOff+uint64(len(shstr)), 8)
	total := shdrOff + uint64(nShdr*shdrSize)

	out := make([]byte, total)

	// ELF header.
	copy(out, []byte{0x7F, 'E', 'L', 'F', 2, 1, 1, 0}) // 64-bit LE SysV
	etype := elf.ET_EXEC
	if im.PIE {
		etype = elf.ET_DYN
	}
	binary.LittleEndian.PutUint16(out[16:], uint16(etype))
	machine := im.Machine
	if machine == 0 {
		machine = uint16(elf.EM_X86_64)
	}
	binary.LittleEndian.PutUint16(out[18:], machine)
	binary.LittleEndian.PutUint32(out[20:], 1) // version
	binary.LittleEndian.PutUint64(out[24:], im.Entry)
	binary.LittleEndian.PutUint64(out[32:], ehdrSize) // phoff
	binary.LittleEndian.PutUint64(out[40:], shdrOff)
	binary.LittleEndian.PutUint16(out[52:], ehdrSize)
	binary.LittleEndian.PutUint16(out[54:], phdrSize)
	binary.LittleEndian.PutUint16(out[56:], uint16(nPhdr))
	binary.LittleEndian.PutUint16(out[58:], shdrSize)
	binary.LittleEndian.PutUint16(out[60:], uint16(nShdr))
	binary.LittleEndian.PutUint16(out[62:], uint16(nShdr-1)) // shstrndx

	// Program headers.
	for k, o := range outs {
		p := out[ehdrSize+k*phdrSize:]
		binary.LittleEndian.PutUint32(p[0:], uint32(elf.PT_LOAD))
		flags := uint32(elf.PF_R)
		if o.sec.Flags&FlagExec != 0 {
			flags |= uint32(elf.PF_X)
		}
		if o.sec.Flags&FlagWrite != 0 {
			flags |= uint32(elf.PF_W)
		}
		binary.LittleEndian.PutUint32(p[4:], flags)
		binary.LittleEndian.PutUint64(p[8:], o.fileOff)
		binary.LittleEndian.PutUint64(p[16:], o.sec.Addr)
		binary.LittleEndian.PutUint64(p[24:], o.sec.Addr)
		binary.LittleEndian.PutUint64(p[32:], o.sec.Size())
		binary.LittleEndian.PutUint64(p[40:], o.sec.Size())
		binary.LittleEndian.PutUint64(p[48:], pageAlign)
	}

	// Section data.
	for _, o := range outs {
		body, err := o.sec.BytesErr()
		if err != nil {
			return nil, fmt.Errorf("elfx: serializing section %s: %w", o.sec.Name, err)
		}
		copy(out[o.fileOff:], body)
	}
	copy(out[symtabOff:], symtab)
	copy(out[strtabOff:], strtab)
	copy(out[shstrOff:], shstr)

	// Section headers.
	putShdr := func(idx int, name uint32, typ elf.SectionType, flags uint64,
		addr, foff, size uint64, link uint32, entsize uint64, info uint32) {
		p := out[shdrOff+uint64(idx*shdrSize):]
		binary.LittleEndian.PutUint32(p[0:], name)
		binary.LittleEndian.PutUint32(p[4:], uint32(typ))
		binary.LittleEndian.PutUint64(p[8:], flags)
		binary.LittleEndian.PutUint64(p[16:], addr)
		binary.LittleEndian.PutUint64(p[24:], foff)
		binary.LittleEndian.PutUint64(p[32:], size)
		binary.LittleEndian.PutUint32(p[40:], link)
		binary.LittleEndian.PutUint32(p[44:], info)
		binary.LittleEndian.PutUint64(p[48:], 16)
		binary.LittleEndian.PutUint64(p[56:], entsize)
	}
	for k, o := range outs {
		flags := uint64(elf.SHF_ALLOC)
		if o.sec.Flags&FlagExec != 0 {
			flags |= uint64(elf.SHF_EXECINSTR)
		}
		if o.sec.Flags&FlagWrite != 0 {
			flags |= uint64(elf.SHF_WRITE)
		}
		putShdr(k+1, o.nameOff, elf.SHT_PROGBITS, flags,
			o.sec.Addr, o.fileOff, o.sec.Size(), 0, 0, 0)
	}
	strtabIdx := uint32(len(outs) + 2)
	putShdr(len(outs)+1, symtabName, elf.SHT_SYMTAB, 0, 0, symtabOff,
		uint64(len(symtab)), strtabIdx, symSize, 1)
	putShdr(len(outs)+2, strtabName, elf.SHT_STRTAB, 0, 0, strtabOff,
		uint64(len(strtab)), 0, 0, 0)
	putShdr(len(outs)+3, shstrName, elf.SHT_STRTAB, 0, 0, shstrOff,
		uint64(len(shstr)), 0, 0, 0)

	return out, nil
}

// LoadELF parses an ELF binary (as written by WriteELF or produced by a
// real toolchain) into an Image using the standard library parser.
func LoadELF(data []byte) (*Image, error) {
	f, err := elf.NewFile(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("elfx: %w", err)
	}
	defer f.Close()
	machine, err := checkMachine(f)
	if err != nil {
		return nil, err
	}
	im := &Image{Entry: f.Entry, PIE: f.Type == elf.ET_DYN, Machine: machine}
	for _, s := range f.Sections {
		if s.Type == elf.SHT_NULL || s.Flags&elf.SHF_ALLOC == 0 {
			continue
		}
		var body []byte
		if s.Type != elf.SHT_NOBITS {
			body, err = s.Data()
			if err != nil {
				return nil, fmt.Errorf("elfx: section %s: %w", s.Name, err)
			}
		} else {
			body = make([]byte, s.Size)
		}
		flags := FlagAlloc
		if s.Flags&elf.SHF_EXECINSTR != 0 {
			flags |= FlagExec
		}
		if s.Flags&elf.SHF_WRITE != 0 {
			flags |= FlagWrite
		}
		im.Sections = append(im.Sections, &Section{
			Name:  s.Name,
			Addr:  s.Addr,
			Data:  body,
			Flags: flags,
		})
	}
	if err := loadSymbols(f, im); err != nil {
		return nil, err
	}
	return im, nil
}

// loadSymbols ingests .symtab and .dynsym into the image, shared by
// the buffered (LoadELF) and file-backed (LoadELFFile) loaders so the
// two paths stay symbol-identical.
func loadSymbols(f *elf.File, im *Image) error {
	// A missing .symtab is normal (stripped binary); a symtab that is
	// present but unparseable is not — swallowing that error made a
	// corrupt table indistinguishable from a stripped binary.
	syms, err := f.Symbols()
	if err != nil && !errors.Is(err, elf.ErrNoSymbols) {
		return fmt.Errorf("elfx: .symtab: %w", err)
	}
	for _, sym := range syms {
		if sym.Name == "" {
			continue
		}
		im.Symbols = append(im.Symbols, Symbol{
			Name: sym.Name,
			Addr: sym.Value,
			Size: sym.Size,
			Func: elf.ST_TYPE(sym.Info) == elf.STT_FUNC,
		})
	}
	// Dynamic symbols survive stripping, so PIE system binaries with
	// no .symtab still yield partial truth. Only defined symbols are
	// taken (imports carry no address), deduplicated against .symtab.
	seen := make(map[symKey]bool, len(im.Symbols))
	for _, s := range im.Symbols {
		seen[symKey{s.Name, s.Addr}] = true
	}
	dsyms, err := f.DynamicSymbols()
	if err != nil && !errors.Is(err, elf.ErrNoSymbols) {
		return fmt.Errorf("elfx: .dynsym: %w", err)
	}
	for _, sym := range dsyms {
		if sym.Name == "" || sym.Section == elf.SHN_UNDEF {
			continue
		}
		if seen[symKey{sym.Name, sym.Value}] {
			continue
		}
		im.Symbols = append(im.Symbols, Symbol{
			Name: sym.Name,
			Addr: sym.Value,
			Size: sym.Size,
			Func: elf.ST_TYPE(sym.Info) == elf.STT_FUNC,
			Dyn:  true,
		})
	}
	return nil
}

// symKey identifies a symbol for .symtab/.dynsym deduplication.
type symKey struct {
	name string
	addr uint64
}
