package disasm

import (
	"reflect"
	"testing"

	"fetch/internal/synth"
)

// optionMatrix is every disassembly configuration the pipeline and the
// baselines use; session equivalence must hold under all of them.
func optionMatrix() map[string]Options {
	return map[string]Options{
		"safe":       {ResolveJumpTables: true, NonReturning: true},
		"tables":     {ResolveJumpTables: true},
		"plain":      {},
		"nonret":     {NonReturning: true},
		"strict":     {ResolveJumpTables: true, Strict: true, MaxInsts: 2000},
		"strict-cap": {Strict: true, MaxInsts: 64},
	}
}

// requireEqualResults fails unless got is byte-identical to want —
// every decoded instruction, function, reference list (order
// included), constant, knowledge set, jump-table resolution, strict
// error, and byte-ownership entry.
func requireEqualResults(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Insts, want.Insts) {
		t.Fatalf("%s: Insts differ (%d vs %d)", label, len(got.Insts), len(want.Insts))
	}
	if !reflect.DeepEqual(got.Funcs, want.Funcs) {
		t.Fatalf("%s: Funcs differ", label)
	}
	if !reflect.DeepEqual(got.Refs, want.Refs) {
		t.Fatalf("%s: Refs differ", label)
	}
	if !reflect.DeepEqual(got.Constants, want.Constants) {
		t.Fatalf("%s: Constants differ", label)
	}
	if !reflect.DeepEqual(got.NonRet, want.NonRet) {
		t.Fatalf("%s: NonRet differs", label)
	}
	if !reflect.DeepEqual(got.CondNonRet, want.CondNonRet) {
		t.Fatalf("%s: CondNonRet differs", label)
	}
	if !reflect.DeepEqual(got.JTTargets, want.JTTargets) {
		t.Fatalf("%s: JTTargets differ", label)
	}
	if !reflect.DeepEqual(got.TableBases, want.TableBases) {
		t.Fatalf("%s: TableBases differ", label)
	}
	if !reflect.DeepEqual(got.Errors, want.Errors) {
		t.Fatalf("%s: Errors differ", label)
	}
	if !reflect.DeepEqual(got.owner, want.owner) {
		t.Fatalf("%s: owner maps differ", label)
	}
}

// equivalenceSeeds spans the corpus shapes that stress the walk:
// jump tables, non-contiguous parts, indirect-only functions, and
// hand-written CFI errors.
func equivalenceConfigs() []func(*synth.Config) {
	return []func(*synth.Config){
		nil,
		func(c *synth.Config) { c.NonContigRate = 0.25 },
		func(c *synth.Config) { c.IndirectOnlyRate = 0.1 },
		func(c *synth.Config) { c.CFIErrorCount = 2 },
	}
}

// TestSessionExtendMatchesScratch grows a session seed batch by seed
// batch and requires every intermediate result to be byte-identical to
// a from-scratch Recursive over the cumulative seed list, across the
// full option matrix.
func TestSessionExtendMatchesScratch(t *testing.T) {
	for ci, mutate := range equivalenceConfigs() {
		im, _, sec := buildBinary(t, 100+int64(ci), mutate)
		seeds := sec.FunctionStarts()
		if len(seeds) < 8 {
			t.Fatalf("config %d: too few seeds (%d)", ci, len(seeds))
		}
		for name, opts := range optionMatrix() {
			sess := NewSession(im, opts)
			// Four uneven batches, including a singleton.
			cuts := []int{len(seeds) / 2, len(seeds)/2 + 1, len(seeds) - 3, len(seeds)}
			prev := 0
			for _, cut := range cuts {
				got := sess.Extend(seeds[prev:cut])
				want := Recursive(im, seeds[:cut], opts)
				requireEqualResults(t, name, got, want)
				prev = cut
			}
			// A capped walk may explore disjoint regions per extend
			// (the LIFO worklist starts from the newest seed), so only
			// unbounded configs are guaranteed to overlap.
			if st := sess.Stats(); opts.MaxInsts == 0 && st.InstsReused == 0 {
				t.Errorf("config %d/%s: incremental extends reused nothing", ci, name)
			}
		}
	}
}

// TestSessionRetractMatchesScratch removes seeds from a grown session
// and requires the result to match a from-scratch run over the
// filtered seed list — the §V-B CFI-error recovery contract.
func TestSessionRetractMatchesScratch(t *testing.T) {
	im, _, sec := buildBinary(t, 110, func(c *synth.Config) { c.CFIErrorCount = 2 })
	seeds := sec.FunctionStarts()
	opts := defaultOpts()

	sess := NewSession(im, opts)
	sess.Extend(seeds)

	remove := []uint64{seeds[1], seeds[len(seeds)/2], seeds[len(seeds)-1]}
	got := sess.Retract(remove)

	drop := map[uint64]bool{}
	for _, a := range remove {
		drop[a] = true
	}
	var kept []uint64
	for _, s := range seeds {
		if !drop[s] {
			kept = append(kept, s)
		}
	}
	want := Recursive(im, kept, opts)
	requireEqualResults(t, "retract", got, want)

	// Retract then re-extend restores the original result exactly.
	got = sess.Extend(remove)
	want = Recursive(im, append(append([]uint64(nil), kept...), remove...), opts)
	requireEqualResults(t, "re-extend", got, want)
}

// TestSessionRerunMatchesScratch pins the wholesale-reseed path the
// baseline tool pipelines use.
func TestSessionRerunMatchesScratch(t *testing.T) {
	im, _, sec := buildBinary(t, 111, nil)
	seeds := sec.FunctionStarts()
	sess := NewSession(im, defaultOpts())
	sess.Extend(seeds[:4])

	reordered := append([]uint64(nil), seeds...)
	for i, j := 0, len(reordered)-1; i < j; i, j = i+1, j-1 {
		reordered[i], reordered[j] = reordered[j], reordered[i]
	}
	got := sess.Rerun(reordered)
	want := Recursive(im, reordered, defaultOpts())
	requireEqualResults(t, "rerun", got, want)
}

// TestSessionForkProbe validates the copy-on-write contract: fork
// probes are byte-identical to scratch runs under their own options,
// they never perturb the parent's committed state, and their decodes
// land in the shared cache.
func TestSessionForkProbe(t *testing.T) {
	im, _, sec := buildBinary(t, 112, func(c *synth.Config) { c.IndirectOnlyRate = 0.1 })
	seeds := sec.FunctionStarts()
	opts := defaultOpts()

	sess := NewSession(im, opts)
	committed := sess.Extend(seeds)

	probeOpts := Options{ResolveJumpTables: true, Strict: true, MaxInsts: 2000}
	fork := sess.Fork()
	// Probe every committed seed plus deliberately misaligned
	// candidates (seed+1 lands mid-instruction or on padding).
	for _, c := range seeds {
		for _, cand := range []uint64{c, c + 1} {
			got := fork.Probe([]uint64{cand}, probeOpts)
			want := Recursive(im, []uint64{cand}, probeOpts)
			requireEqualResults(t, "probe", got, want)
		}
	}
	if sess.Result() != committed {
		t.Fatal("probing a fork replaced the parent's committed result")
	}
	want := Recursive(im, seeds, opts)
	requireEqualResults(t, "committed-after-probes", sess.Result(), want)

	st := sess.Stats()
	if st.Forks != 1 {
		t.Errorf("Forks = %d, want 1", st.Forks)
	}
	if st.Probes != 2*len(seeds) {
		t.Errorf("Probes = %d, want %d", st.Probes, 2*len(seeds))
	}
	if st.InstsReused == 0 {
		t.Error("fork probes reused no decodes from the parent")
	}
}

// TestSessionStatsAccounting pins the counter semantics the pipeline's
// zero-resweep assertion relies on.
func TestSessionStatsAccounting(t *testing.T) {
	im, _, sec := buildBinary(t, 113, nil)
	seeds := sec.FunctionStarts()

	sess := NewSession(im, defaultOpts())
	st := sess.Stats()
	if st.ColdStarts != 1 || st.Extends != 0 {
		t.Fatalf("fresh session stats = %+v", st)
	}
	sess.Extend(seeds[:1])
	first := sess.Stats()
	if first.Extends != 1 || first.InstsDecoded == 0 {
		t.Fatalf("after first extend: %+v", first)
	}
	sess.Extend(seeds[1:])
	second := sess.Stats()
	if second.Extends != 2 {
		t.Fatalf("Extends = %d, want 2", second.Extends)
	}
	if second.InstsReused <= first.InstsReused {
		t.Error("second extend reused no additional decodes")
	}
	// Forks share the cache: they must not count as cold starts.
	if st := sess.Fork().Stats(); st.ColdStarts != 1 {
		t.Errorf("fork ColdStarts = %d, want 1 (shared with parent)", st.ColdStarts)
	}
}
