package disasm

import (
	"sort"

	"fetch/internal/arch"
	"fetch/internal/elfx"
)

// Range is a half-open address interval.
type Range struct {
	Start uint64
	End   uint64
}

// Len returns the interval length in bytes.
func (r Range) Len() uint64 { return r.End - r.Start }

// LinearSweep decodes [start, end) sequentially, resynchronizing one
// instruction-alignment unit forward after undecodable bytes (one byte
// on x86-64, four on aarch64) — the NUCLEUS-style front end and the
// engine behind gap scans.
func LinearSweep(img *elfx.Image, start, end uint64) map[uint64]*arch.Inst {
	isa := img.ISA()
	out := make(map[uint64]*arch.Inst)
	addr := start
	for addr < end {
		window, ok := img.BytesToSectionEnd(addr)
		if !ok {
			break
		}
		if max := end - addr; uint64(len(window)) > max {
			window = window[:max]
		}
		in, err := isa.Decode(window, addr)
		if err != nil {
			addr += uint64(isa.InstAlign())
			continue
		}
		cp := in
		out[addr] = &cp
		addr += uint64(in.Len)
	}
	return out
}

// Gaps returns the maximal runs of executable bytes not covered by the
// result's decoded instructions — the regions pattern matchers and
// linear scans probe (§IV-D).
func Gaps(img *elfx.Image, res *Result) []Range {
	var out []Range
	for _, sec := range img.ExecSections() {
		var cur *Range
		for a := sec.Addr; a < sec.End(); a++ {
			if res.Covered(a) {
				if cur != nil {
					out = append(out, *cur)
					cur = nil
				}
				continue
			}
			if cur == nil {
				cur = &Range{Start: a, End: a + 1}
			} else {
				cur.End = a + 1
			}
		}
		if cur != nil {
			out = append(out, *cur)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// IsPaddingRun reports whether every instruction in [start, end)
// decodes as padding (NOPs or int3).
func IsPaddingRun(img *elfx.Image, start, end uint64) bool {
	isa := img.ISA()
	addr := start
	for addr < end {
		window, ok := img.BytesToSectionEnd(addr)
		if !ok {
			return false
		}
		if max := end - addr; uint64(len(window)) > max {
			window = window[:max]
		}
		in, err := isa.Decode(window, addr)
		if err != nil || !in.IsPadding() {
			return false
		}
		addr += uint64(in.Len)
	}
	return true
}
