package disasm

// ownerMap indexes every byte of decoded instructions to the covering
// instruction's start. Unbounded passes re-walk whole binaries every
// round, so they use a dense offset representation per executable
// section (per-byte map writes dominated the pass profile); short
// capped probe walks (candidate validation) keep a sparse map, which
// is cheaper than clearing text-sized arrays per probe. Both
// representations index identical content — the choice never affects
// results.
//
// The dense form is chunk-lazy: a span reserves address space for its
// whole section but allocates 64 Ki-entry chunks only when bytes in
// them are first written. Huge binaries are mostly padding and data
// the walk never touches — eager per-byte arrays would cost 4 bytes
// per text byte per pass regardless, which is exactly the memory the
// bytes-per-text-byte budget forbids.
type ownerMap struct {
	// spans is the dense form, one per executable section, sorted by
	// base; nil when the sparse form is in use.
	spans []ownerSpan
	// m is the sparse form; nil when the dense form is in use.
	m map[uint64]uint64
	// alloc counts bytes of chunk storage allocated so far — the
	// memory-accounting input for Stats.PeakAuxBytes.
	alloc int64
}

const (
	// ownerChunkLen is the dense chunk granule: 64 Ki entries (256 KiB)
	// balances lazy savings on sparse text against per-write overhead.
	ownerChunkShift = 16
	ownerChunkLen   = 1 << ownerChunkShift
	ownerChunkMask  = ownerChunkLen - 1
)

// ownerSpan covers one executable section of size bytes starting at
// base: chunk entry (addr-base)&mask of chunk (addr-base)>>shift holds
// the owning instruction's section offset + 1, or 0 when uncovered.
// Unallocated chunks read as all-uncovered.
type ownerSpan struct {
	base   uint64
	size   int
	chunks [][]int32
}

// newOwnerSpan reserves a dense span without allocating any chunks.
func newOwnerSpan(base uint64, size int) ownerSpan {
	return ownerSpan{
		base:   base,
		size:   size,
		chunks: make([][]int32, (size+ownerChunkLen-1)>>ownerChunkShift),
	}
}

// chunk returns the chunk for section offset d, allocating it on first
// write and charging the allocation to the map's accounting.
func (o *ownerMap) chunk(sp *ownerSpan, d uint64) []int32 {
	ci := d >> ownerChunkShift
	c := sp.chunks[ci]
	if c == nil {
		c = make([]int32, ownerChunkLen)
		sp.chunks[ci] = c
		o.alloc += ownerChunkLen * 4
	}
	return c
}

// get returns the start of the instruction covering addr.
func (o *ownerMap) get(addr uint64) (uint64, bool) {
	if o.m != nil {
		s, ok := o.m[addr]
		return s, ok
	}
	for i := range o.spans {
		sp := &o.spans[i]
		if addr < sp.base {
			break // spans are sorted; no later span can match
		}
		if d := addr - sp.base; d < uint64(sp.size) {
			c := sp.chunks[d>>ownerChunkShift]
			if c == nil {
				return 0, false
			}
			if v := c[d&ownerChunkMask]; v != 0 {
				return sp.base + uint64(v-1), true
			}
			return 0, false
		}
	}
	return 0, false
}

// insertChecked atomically (with respect to this map's content) checks
// that none of the n bytes at addr are covered yet and marks them owned
// by addr, resolving the span once. It reports false — leaving partial
// coverage possible — when any byte was already owned; callers treat
// that as a fatal overlap and discard the map.
func (o *ownerMap) insertChecked(addr uint64, n int) bool {
	if o.m != nil {
		for b := addr; b < addr+uint64(n); b++ {
			if _, ok := o.m[b]; ok {
				return false
			}
		}
		for b := addr; b < addr+uint64(n); b++ {
			o.m[b] = addr
		}
		return true
	}
	for i := range o.spans {
		sp := &o.spans[i]
		if addr < sp.base {
			break
		}
		if d := addr - sp.base; d < uint64(sp.size) {
			end := d + uint64(n)
			if end > uint64(sp.size) {
				end = uint64(sp.size)
			}
			for k := d; k < end; k++ {
				if c := sp.chunks[k>>ownerChunkShift]; c != nil && c[k&ownerChunkMask] != 0 {
					return false
				}
			}
			v := int32(d) + 1
			for k := d; k < end; k++ {
				o.chunk(sp, k)[k&ownerChunkMask] = v
			}
			return true
		}
	}
	return true
}

// verifyRange reports whether all n bytes at addr are owned exactly by
// the instruction at addr — the self-consistency check merge bases get
// instead of re-insertion.
func (o *ownerMap) verifyRange(addr uint64, n int) bool {
	if o.m != nil {
		for b := addr; b < addr+uint64(n); b++ {
			if s, ok := o.m[b]; !ok || s != addr {
				return false
			}
		}
		return true
	}
	for i := range o.spans {
		sp := &o.spans[i]
		if addr < sp.base {
			break
		}
		if d := addr - sp.base; d < uint64(sp.size) {
			end := d + uint64(n)
			if end > uint64(sp.size) {
				end = uint64(sp.size)
			}
			v := int32(d) + 1
			for k := d; k < end; k++ {
				c := sp.chunks[k>>ownerChunkShift]
				if c == nil || c[k&ownerChunkMask] != v {
					return false
				}
			}
			return true
		}
	}
	return false
}

// setRange marks the n bytes starting at addr as owned by the
// instruction at addr. Instruction bytes never cross a section end
// (decode windows are section-bounded), so the run stays in one span.
func (o *ownerMap) setRange(addr uint64, n int) {
	if o.m != nil {
		for b := addr; b < addr+uint64(n); b++ {
			o.m[b] = addr
		}
		return
	}
	for i := range o.spans {
		sp := &o.spans[i]
		if addr < sp.base {
			break
		}
		if d := addr - sp.base; d < uint64(sp.size) {
			v := int32(d) + 1
			for k := d; k < d+uint64(n); k++ {
				o.chunk(sp, k)[k&ownerChunkMask] = v
			}
			return
		}
	}
}
