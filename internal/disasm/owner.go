package disasm

// ownerMap indexes every byte of decoded instructions to the covering
// instruction's start. Unbounded passes re-walk whole binaries every
// round, so they use a dense offset array per executable section
// (per-byte map writes dominated the pass profile); short capped probe
// walks (candidate validation) keep a sparse map, which is cheaper
// than clearing text-sized arrays per probe. Both representations
// index identical content — the choice never affects results.
type ownerMap struct {
	// spans is the dense form, one per executable section, sorted by
	// base; nil when the sparse form is in use.
	spans []ownerSpan
	// m is the sparse form; nil when the dense form is in use.
	m map[uint64]uint64
}

// ownerSpan covers one executable section: offs[addr-base] holds the
// owning instruction's section offset + 1, or 0 when uncovered.
type ownerSpan struct {
	base uint64
	offs []int32
}

// get returns the start of the instruction covering addr.
func (o *ownerMap) get(addr uint64) (uint64, bool) {
	if o.m != nil {
		s, ok := o.m[addr]
		return s, ok
	}
	for i := range o.spans {
		sp := &o.spans[i]
		if addr < sp.base {
			break // spans are sorted; no later span can match
		}
		if d := addr - sp.base; d < uint64(len(sp.offs)) {
			if v := sp.offs[d]; v != 0 {
				return sp.base + uint64(v-1), true
			}
			return 0, false
		}
	}
	return 0, false
}

// insertChecked atomically (with respect to this map's content) checks
// that none of the n bytes at addr are covered yet and marks them owned
// by addr, resolving the span once. It reports false — leaving partial
// coverage possible — when any byte was already owned; callers treat
// that as a fatal overlap and discard the map.
func (o *ownerMap) insertChecked(addr uint64, n int) bool {
	if o.m != nil {
		for b := addr; b < addr+uint64(n); b++ {
			if _, ok := o.m[b]; ok {
				return false
			}
		}
		for b := addr; b < addr+uint64(n); b++ {
			o.m[b] = addr
		}
		return true
	}
	for i := range o.spans {
		sp := &o.spans[i]
		if addr < sp.base {
			break
		}
		if d := addr - sp.base; d < uint64(len(sp.offs)) {
			end := d + uint64(n)
			if end > uint64(len(sp.offs)) {
				end = uint64(len(sp.offs))
			}
			for k := d; k < end; k++ {
				if sp.offs[k] != 0 {
					return false
				}
			}
			v := int32(d) + 1
			for k := d; k < end; k++ {
				sp.offs[k] = v
			}
			return true
		}
	}
	return true
}

// verifyRange reports whether all n bytes at addr are owned exactly by
// the instruction at addr — the self-consistency check merge bases get
// instead of re-insertion.
func (o *ownerMap) verifyRange(addr uint64, n int) bool {
	if o.m != nil {
		for b := addr; b < addr+uint64(n); b++ {
			if s, ok := o.m[b]; !ok || s != addr {
				return false
			}
		}
		return true
	}
	for i := range o.spans {
		sp := &o.spans[i]
		if addr < sp.base {
			break
		}
		if d := addr - sp.base; d < uint64(len(sp.offs)) {
			end := d + uint64(n)
			if end > uint64(len(sp.offs)) {
				end = uint64(len(sp.offs))
			}
			v := int32(d) + 1
			for k := d; k < end; k++ {
				if sp.offs[k] != v {
					return false
				}
			}
			return true
		}
	}
	return false
}

// setRange marks the n bytes starting at addr as owned by the
// instruction at addr. Instruction bytes never cross a section end
// (decode windows are section-bounded), so the run stays in one span.
func (o *ownerMap) setRange(addr uint64, n int) {
	if o.m != nil {
		for b := addr; b < addr+uint64(n); b++ {
			o.m[b] = addr
		}
		return
	}
	for i := range o.spans {
		sp := &o.spans[i]
		if addr < sp.base {
			break
		}
		if d := addr - sp.base; d < uint64(len(sp.offs)) {
			v := int32(d) + 1
			for k := 0; k < n; k++ {
				sp.offs[d+uint64(k)] = v
			}
			return
		}
	}
}
