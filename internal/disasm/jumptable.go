package disasm

import (
	"fetch/internal/arch"
	"fetch/internal/elfx"
)

// maxJumpTableEntries caps table reads to keep malformed bounds from
// flooding the worklist.
const maxJumpTableEntries = 512

// jtCtx adapts a walk's image and in-progress Result to the
// arch.JumpTableCtx surface the backend jump-table resolvers consume:
// backward instruction context, data reads, and the two record sinks
// (consulted intervals for delta invalidation, resolved table bases
// for pointer-candidate suppression).
type jtCtx struct {
	img *elfx.Image
	isa arch.ISA
	res *Result
}

// InstEndingAt returns the decoded instruction that ends exactly at
// addr, scanning the owner map back over the backend's maximum
// instruction length.
func (c jtCtx) InstEndingAt(addr uint64) (*arch.Inst, bool) {
	start, ok := prevInstIn(c.res, c.isa, addr)
	if !ok {
		return nil, false
	}
	return c.res.Insts[start], true
}

// ReadU64 reads a little-endian uint64 from the image.
func (c jtCtx) ReadU64(addr uint64) (uint64, error) { return c.img.ReadU64(addr) }

// ReadU32 reads a little-endian uint32 from the image.
func (c jtCtx) ReadU32(addr uint64) (uint32, error) { return c.img.ReadU32(addr) }

// IsExec reports whether addr lies in an executable section.
func (c jtCtx) IsExec(addr uint64) bool { return c.img.IsExec(addr) }

// RecordTableRead records a data interval the resolution consulted.
func (c jtCtx) RecordTableRead(lo, hi uint64) {
	c.res.tableReads = append(c.res.tableReads, Interval{lo, hi})
}

// RecordTableBase records a resolved table's base address.
func (c jtCtx) RecordTableBase(table uint64) { c.res.TableBases[table] = true }

// prevInst returns the start of the decoded instruction that ends
// exactly at addr, using the result's own backend for the scan bound.
func prevInst(res *Result, addr uint64) (uint64, bool) {
	return prevInstIn(res, res.isa, addr)
}

func prevInstIn(res *Result, isa arch.ISA, addr uint64) (uint64, bool) {
	for back := uint64(1); back <= uint64(isa.MaxInstLen()); back++ {
		start, ok := res.owner.get(addr - back)
		if !ok {
			continue
		}
		in, ok2 := res.Insts[start]
		if ok2 && in.Next() == addr {
			return start, true
		}
	}
	return 0, false
}
