package disasm

import (
	"fetch/internal/elfx"
	"fetch/internal/x64"
)

// maxJumpTableEntries caps table reads to keep malformed bounds from
// flooding the worklist.
const maxJumpTableEntries = 512

// resolveJumpTable implements the bounded, DYNINST-style jump-table
// analysis (§IV-C). Two idioms are recognized, both requiring the
// bounding compare on the index register:
//
// non-PIC (absolute 8-byte entries):
//
//	cmp  idx, N-1
//	ja   default
//	jmp  [idx*8 + table]
//
// PIC (table-relative 4-byte entries):
//
//	cmp  idx, N-1
//	ja   default
//	lea  base, [rip+table]
//	movsxd tmp, dword [base + idx*4]
//	add  tmp, base
//	jmp  tmp
//
// Anything else is left unresolved (the safe choice).
func resolveJumpTable(img *elfx.Image, res *Result, jmp *x64.Inst) []uint64 {
	if mem, ok := jmp.IndirectMem(); ok {
		return resolveAbsTable(img, res, jmp, mem)
	}
	if len(jmp.Args) == 1 && jmp.Args[0].Kind == x64.KindReg {
		return resolvePICTable(img, res, jmp, jmp.Args[0].Reg)
	}
	return nil
}

// resolveAbsTable handles the absolute-entry idiom.
func resolveAbsTable(img *elfx.Image, res *Result, jmp *x64.Inst, mem x64.MemRef) []uint64 {
	if mem.RIPRel || mem.Base != x64.RegNone || mem.Scale != 8 ||
		!mem.Index.Valid() || mem.Disp <= 0 {
		return nil
	}
	bound, ok := findBound(res, jmp.Addr, mem.Index)
	if !ok {
		return nil
	}
	if bound > maxJumpTableEntries {
		bound = maxJumpTableEntries
	}
	table := uint64(mem.Disp)
	res.tableReads = append(res.tableReads, Interval{table, table + uint64(8*bound)})
	var out []uint64
	for k := int64(0); k < bound; k++ {
		entry, err := img.ReadU64(table + uint64(8*k))
		if err != nil {
			return nil // table runs off its section: reject entirely
		}
		if !img.IsExec(entry) {
			return nil // non-code entry: not a jump table we trust
		}
		out = append(out, entry)
	}
	return out
}

// resolvePICTable handles the position-independent idiom by walking
// the preceding decoded instructions for the add/movsxd/lea chain.
func resolvePICTable(img *elfx.Image, res *Result, jmp *x64.Inst, target x64.Reg) []uint64 {
	var (
		base                       x64.Reg = x64.RegNone
		index                      x64.Reg = x64.RegNone
		table                      uint64
		haveAdd, haveLoad, haveLea bool
	)
	addr := jmp.Addr
	for steps := 0; steps < 10; steps++ {
		prev, ok := prevInst(res, addr)
		if !ok {
			return nil
		}
		in := res.Insts[prev]
		switch {
		case !haveAdd:
			// add target, base
			if in.Op == x64.OpAdd && len(in.Args) == 2 &&
				in.Args[0].Kind == x64.KindReg && in.Args[0].Reg == target &&
				in.Args[1].Kind == x64.KindReg {
				base = in.Args[1].Reg
				haveAdd = true
			} else {
				return nil
			}
		case !haveLoad:
			// movsxd target, dword [base + idx*4]
			if in.Op == x64.OpMovsxd && len(in.Args) == 2 &&
				in.Args[0].Kind == x64.KindReg && in.Args[0].Reg == target &&
				in.Args[1].Kind == x64.KindMem &&
				in.Args[1].Mem.Base == base && in.Args[1].Mem.Scale == 4 &&
				in.Args[1].Mem.Index.Valid() {
				index = in.Args[1].Mem.Index
				haveLoad = true
			} else {
				return nil
			}
		case !haveLea:
			// lea base, [rip+table]
			if in.Op == x64.OpLea && len(in.Args) == 2 &&
				in.Args[0].Kind == x64.KindReg && in.Args[0].Reg == base &&
				in.Args[1].Kind == x64.KindMem && in.Args[1].Mem.RIPRel {
				table = uint64(int64(in.Addr) + int64(in.Len) + in.Args[1].Mem.Disp)
				haveLea = true
			}
			// Tolerate unrelated instructions between load and lea.
		default:
			bound, ok := findBound(res, prev+uint64(in.Len), index)
			if !ok {
				// Keep walking: the compare may sit further back.
				addr = prev
				continue
			}
			n := bound
			if n > maxJumpTableEntries {
				n = maxJumpTableEntries
			}
			res.tableReads = append(res.tableReads, Interval{table, table + uint64(4*n)})
			out := readPICEntries(img, table, bound)
			if len(out) > 0 {
				res.TableBases[table] = true
			}
			return out
		}
		addr = prev
	}
	return nil
}

// readPICEntries loads bound int32 table-relative offsets.
func readPICEntries(img *elfx.Image, table uint64, bound int64) []uint64 {
	if bound > maxJumpTableEntries {
		bound = maxJumpTableEntries
	}
	var out []uint64
	for k := int64(0); k < bound; k++ {
		raw, err := img.ReadU32(table + uint64(4*k))
		if err != nil {
			return nil
		}
		entry := uint64(int64(table) + int64(int32(raw)))
		if !img.IsExec(entry) {
			return nil
		}
		out = append(out, entry)
	}
	return out
}

// findBound scans recently decoded instructions immediately before the
// indirect jump for the bounding `cmp idx, imm` guarded by an
// above-branch.
func findBound(res *Result, jmpAddr uint64, idx x64.Reg) (int64, bool) {
	var sawAbove bool
	// Walk backwards over the previous decoded instructions (by byte
	// scan over the owner map; instructions are at most 15 bytes).
	addr := jmpAddr
	for steps := 0; steps < 8; steps++ {
		prevStart, ok := prevInst(res, addr)
		if !ok {
			return 0, false
		}
		in := res.Insts[prevStart]
		switch in.Op {
		case x64.OpJcc:
			if in.Cond == x64.CondA || in.Cond == x64.CondAE {
				sawAbove = true
			}
		case x64.OpCmp:
			if sawAbove && len(in.Args) == 2 &&
				in.Args[0].Kind == x64.KindReg && in.Args[0].Reg == idx &&
				in.Args[1].Kind == x64.KindImm && in.Args[1].Imm >= 0 {
				return in.Args[1].Imm + 1, true
			}
		case x64.OpMov, x64.OpMovzx, x64.OpMovsxd, x64.OpLea:
			// Index massaging between the compare and the jump is
			// tolerated.
		default:
			return 0, false
		}
		addr = prevStart
	}
	return 0, false
}

// prevInst returns the start of the decoded instruction that ends
// exactly at addr.
func prevInst(res *Result, addr uint64) (uint64, bool) {
	for back := uint64(1); back <= 15; back++ {
		start, ok := res.owner.get(addr - back)
		if !ok {
			continue
		}
		in, ok2 := res.Insts[start]
		if ok2 && in.Next() == addr {
			return start, true
		}
	}
	return 0, false
}
