package disasm

import (
	"testing"

	"fetch/internal/ehframe"
	"fetch/internal/elfx"
	"fetch/internal/groundtruth"
	"fetch/internal/synth"
)

// buildBinary synthesizes one test binary and parses its eh_frame.
func buildBinary(t *testing.T, seed int64, mutate func(*synth.Config)) (*elfx.Image, *groundtruth.Truth, *ehframe.Section) {
	t.Helper()
	cfg := synth.DefaultConfig("disasm-test", seed, synth.O2, synth.GCC, synth.LangC)
	if mutate != nil {
		mutate(&cfg)
	}
	im, truth, err := synth.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	eh, ok := im.Section(".eh_frame")
	if !ok {
		t.Fatal("no .eh_frame")
	}
	sec, err := ehframe.Decode(eh.Data, eh.Addr)
	if err != nil {
		t.Fatalf("eh_frame decode: %v", err)
	}
	return im, truth, sec
}

func defaultOpts() Options {
	return Options{ResolveJumpTables: true, NonReturning: true}
}

func TestRecursiveCoversCallReachable(t *testing.T) {
	im, truth, sec := buildBinary(t, 11, nil)
	res := Recursive(im, sec.FunctionStarts(), defaultOpts())
	// Every call-reachable or entry function must be detected: the
	// FDE+Rec configuration of §IV-C.
	for _, fn := range truth.Funcs {
		switch fn.Reach {
		case groundtruth.ReachEntry, groundtruth.ReachCall:
			if !res.Funcs[fn.Addr] {
				t.Errorf("missed call-reachable %s at %#x (class %d, fde %v)",
					fn.Name, fn.Addr, fn.Class, fn.HasFDE)
			}
		}
	}
}

func TestRecursiveNoFalseStartsFromFDESeeds(t *testing.T) {
	im, truth, sec := buildBinary(t, 12, nil)
	res := Recursive(im, sec.FunctionStarts(), defaultOpts())
	// Detected starts must all be true starts, non-contiguous parts
	// (inherited FDE errors), or hand-written FDE errors — recursive
	// descent itself must not invent anything else (§IV-C: "no false
	// positives during the recursive disassembly").
	for addr := range res.Funcs {
		if truth.IsStart(addr) {
			continue
		}
		if _, isPart := truth.PartAt(addr); isPart {
			continue
		}
		isCFIErr := false
		for _, a := range truth.CFIErrorAddrs {
			if a == addr {
				isCFIErr = true
			}
		}
		if !isCFIErr {
			t.Errorf("false start at %#x", addr)
		}
	}
}

func TestRecursiveDecodedInstructionsAreConsistent(t *testing.T) {
	im, _, sec := buildBinary(t, 13, nil)
	res := Recursive(im, sec.FunctionStarts(), defaultOpts())
	if len(res.Insts) < 500 {
		t.Fatalf("suspiciously few instructions: %d", len(res.Insts))
	}
	// No two decoded instructions overlap (the safe engine never
	// produces overlapping decodes).
	for addr, in := range res.Insts {
		for b := addr; b < addr+uint64(in.Len); b++ {
			if owner, ok := res.InstStartAt(b); !ok || owner != addr {
				t.Fatalf("byte %#x owned by %#x, want %#x", b, owner, addr)
			}
		}
	}
}

func TestJumpTableResolution(t *testing.T) {
	im, truth, sec := buildBinary(t, 14, func(c *synth.Config) {
		c.JumpTableRate = 0.5
	})
	res := Recursive(im, sec.FunctionStarts(), defaultOpts())
	if len(res.JTTargets) == 0 {
		t.Fatal("no jump tables resolved at 50% rate")
	}
	for jmp, targets := range res.JTTargets {
		if len(targets) < 3 {
			t.Errorf("table at %#x has %d targets, want >= 3", jmp, len(targets))
		}
		for _, tg := range targets {
			if !im.IsExec(tg) {
				t.Errorf("table at %#x targets non-exec %#x", jmp, tg)
			}
			// Table targets are intra-procedural: never true starts.
			if truth.IsStart(tg) {
				t.Errorf("table target %#x is a function start", tg)
			}
		}
	}
}

func TestNonReturningDetection(t *testing.T) {
	im, truth, sec := buildBinary(t, 15, nil)
	res := Recursive(im, sec.FunctionStarts(), defaultOpts())
	var exitAddr, errAddr uint64
	for _, fn := range truth.Funcs {
		if fn.Name == "xexit" {
			exitAddr = fn.Addr
		}
		if fn.Name == "xerror" {
			errAddr = fn.Addr
		}
	}
	if !res.NonRet[exitAddr] {
		t.Errorf("exit-like at %#x not detected non-returning", exitAddr)
	}
	if !res.CondNonRet[errAddr] {
		t.Errorf("error-like at %#x not detected conditionally non-returning", errAddr)
	}
	// Ordinary functions must not be non-returning.
	fnCount := 0
	for _, fn := range truth.Funcs {
		if fn.Name == "xexit" || fn.Name == "__clang_call_terminate" {
			continue
		}
		if res.NonRet[fn.Addr] && !fn.NonRet {
			// The clang-terminate clone also legitimately never
			// returns; everything else must be returning.
			t.Errorf("%s at %#x wrongly non-returning", fn.Name, fn.Addr)
		}
		fnCount++
	}
	if fnCount == 0 {
		t.Fatal("no functions checked")
	}
}

func TestStrictModeOnGarbage(t *testing.T) {
	im, _, _ := buildBinary(t, 16, nil)
	// Decoding from a deliberately misaligned address must produce
	// strict errors rather than silently succeeding forever.
	text, _ := im.Section(".text")
	seed := text.Addr + 3 // middle of some instruction
	res := Recursive(im, []uint64{seed}, Options{Strict: true, MaxInsts: 200})
	_ = res
	// Either it errored or it decoded a tiny run that terminated; both
	// are acceptable. What is not acceptable is a panic, covered by
	// reaching this line.
}

func TestStrictJumpIntoKnownFunction(t *testing.T) {
	im, truth, sec := buildBinary(t, 17, nil)
	// Build known ranges from FDEs, then validate a bogus pointer into
	// a function middle: the strict engine must flag it.
	var ranges []FuncRange
	for _, f := range sec.FDEs {
		ranges = append(ranges, FuncRange{Start: f.PCBegin, End: f.End()})
	}
	var mid uint64
	for _, fn := range truth.Funcs {
		if fn.Size > 20 && fn.Class == groundtruth.ClassNormal {
			mid = fn.Addr + 9
			break
		}
	}
	if mid == 0 {
		t.Fatal("no candidate function")
	}
	res := Recursive(im, []uint64{mid}, Options{
		Strict: true, KnownRanges: ranges, MaxInsts: 500,
	})
	// A mid-function seed nearly always either decodes into a
	// transfer back into a known range or misdecodes.
	if len(res.Errors) == 0 {
		t.Logf("no strict errors for seed %#x (can legitimately happen); insts=%d", mid, len(res.Insts))
	}
}

func TestLinearSweepResync(t *testing.T) {
	im, _, _ := buildBinary(t, 18, nil)
	text, _ := im.Section(".text")
	insts := LinearSweep(im, text.Addr, text.End())
	if len(insts) < 1000 {
		t.Fatalf("linear sweep decoded %d instructions", len(insts))
	}
	for addr, in := range insts {
		if in.Addr != addr {
			t.Fatalf("inst at %#x claims addr %#x", addr, in.Addr)
		}
	}
}

func TestGapsArePaddingMostly(t *testing.T) {
	im, _, sec := buildBinary(t, 19, nil)
	res := Recursive(im, sec.FunctionStarts(), defaultOpts())
	gaps := Gaps(im, res)
	if len(gaps) == 0 {
		t.Fatal("no gaps — padding must be uncovered")
	}
	padding := 0
	for _, g := range gaps {
		if IsPaddingRun(im, g.Start, g.End) {
			padding++
		}
	}
	if padding == 0 {
		t.Error("no padding gaps found")
	}
}

func TestRecursiveHonorsMaxInsts(t *testing.T) {
	im, _, sec := buildBinary(t, 20, nil)
	res := Recursive(im, sec.FunctionStarts(), Options{MaxInsts: 50})
	if len(res.Insts) > 50 {
		t.Fatalf("MaxInsts ignored: %d", len(res.Insts))
	}
}

func TestCallFallthroughStopsAtNonRetCallSites(t *testing.T) {
	im, truth, sec := buildBinary(t, 21, func(c *synth.Config) {
		c.NonRetCallRate = 0.8
	})
	res := Recursive(im, sec.FunctionStarts(), defaultOpts())
	// At every call site of the error-like function with a non-zero
	// argument, the instruction after the call must NOT be decoded as
	// fall-through of that path... unless something else reaches it.
	// We verify the weaker, precise property: no decoded instruction
	// lies outside all true function/part extents.
	inExtent := func(a uint64) bool {
		for _, fn := range truth.Funcs {
			if a >= fn.Addr && a < fn.Addr+fn.Size {
				return true
			}
		}
		for _, p := range truth.Parts {
			if a >= p.Addr && a < p.Addr+p.Size {
				return true
			}
		}
		return false
	}
	bad := 0
	for addr, in := range res.Insts {
		if !inExtent(addr) && !in.IsPadding() {
			bad++
			if bad < 5 {
				t.Errorf("decoded %v outside all function extents", in)
			}
		}
	}
	if bad > 0 {
		t.Errorf("%d instructions decoded outside function extents", bad)
	}
}
