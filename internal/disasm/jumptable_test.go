package disasm

import (
	"encoding/binary"
	"testing"

	"fetch/internal/elfx"
	"fetch/internal/x64"
)

// tableImage builds a one-function image with a jump table under full
// control of the test.
func tableImage(t *testing.T, bound int32, entries []uint64, tableInRodata bool) (*elfx.Image, uint64) {
	t.Helper()
	var a x64.Asm
	a.CmpRegImm(x64.RDI, bound)
	a.Jcc(x64.CondA, "def")
	a.JmpTableAbs(x64.RDI, "tbl")
	for k := range entries {
		a.Label("case" + string(rune('0'+k)))
		a.MovRegImm32(x64.RAX, int32(k))
		a.Ret()
	}
	a.Label("def")
	a.XorRegReg(x64.RAX)
	a.Ret()
	code, fixups, err := a.Finish()
	if err != nil {
		t.Fatalf("asm: %v", err)
	}

	const textBase = 0x401000
	table := make([]byte, 8*len(entries))
	// Case labels sit at known offsets; resolve them.
	for k := range entries {
		off, ok := a.LabelOff("case" + string(rune('0'+k)))
		if !ok {
			t.Fatal("label missing")
		}
		if entries[k] == 0 {
			entries[k] = textBase + uint64(off)
		}
		binary.LittleEndian.PutUint64(table[8*k:], entries[k])
	}
	var tableAddr uint64
	var sections []*elfx.Section
	if tableInRodata {
		tableAddr = 0x402000
		sections = []*elfx.Section{
			{Name: ".text", Addr: textBase, Data: code, Flags: elfx.FlagAlloc | elfx.FlagExec},
			{Name: ".rodata", Addr: tableAddr, Data: table, Flags: elfx.FlagAlloc},
		}
	} else {
		tableAddr = textBase + uint64(len(code))
		sections = []*elfx.Section{
			{Name: ".text", Addr: textBase, Data: append(code, table...), Flags: elfx.FlagAlloc | elfx.FlagExec},
		}
	}
	// Patch the FixAbs32 fixup for "tbl".
	for _, f := range fixups {
		if f.Sym == "tbl" && f.Kind == x64.FixAbs32 {
			binary.LittleEndian.PutUint32(sections[0].Data[f.Off:], uint32(tableAddr))
		}
	}
	return &elfx.Image{Sections: sections}, textBase
}

func TestJumpTableResolvedBounded(t *testing.T) {
	img, start := tableImage(t, 2, []uint64{0, 0, 0}, true)
	res := Recursive(img, []uint64{start}, Options{ResolveJumpTables: true})
	if len(res.JTTargets) != 1 {
		t.Fatalf("resolved %d tables, want 1", len(res.JTTargets))
	}
	for _, targets := range res.JTTargets {
		if len(targets) != 3 {
			t.Fatalf("resolved %d entries, want 3 (bound+1)", len(targets))
		}
	}
	if len(res.TableBases) != 1 {
		t.Fatalf("TableBases = %v", res.TableBases)
	}
}

func TestJumpTableRejectedWithoutBound(t *testing.T) {
	// No cmp/ja guard: the conservative resolver must refuse.
	var a x64.Asm
	a.JmpTableAbs(x64.RDI, "tbl")
	code, fixups, _ := a.Finish()
	binary.LittleEndian.PutUint32(code[fixups[0].Off:], 0x402000)
	img := &elfx.Image{Sections: []*elfx.Section{
		{Name: ".text", Addr: 0x401000, Data: code, Flags: elfx.FlagAlloc | elfx.FlagExec},
		{Name: ".rodata", Addr: 0x402000, Data: make([]byte, 64), Flags: elfx.FlagAlloc},
	}}
	res := Recursive(img, []uint64{0x401000}, Options{ResolveJumpTables: true})
	if len(res.JTTargets) != 0 {
		t.Fatal("unbounded table resolved")
	}
}

func TestJumpTableRejectedOnBadEntry(t *testing.T) {
	// One entry points outside the executable sections: the whole
	// table must be rejected.
	img, start := tableImage(t, 2, []uint64{0, 0x999999, 0}, true)
	res := Recursive(img, []uint64{start}, Options{ResolveJumpTables: true})
	if len(res.JTTargets) != 0 {
		t.Fatal("table with non-exec entry resolved")
	}
}

func TestJumpTableInTextResolves(t *testing.T) {
	// The safe resolver reads tables regardless of section (the
	// degraded baselines are the ones that refuse .text tables).
	img, start := tableImage(t, 1, []uint64{0, 0}, false)
	res := Recursive(img, []uint64{start}, Options{ResolveJumpTables: true})
	if len(res.JTTargets) != 1 {
		t.Fatal("in-text table not resolved by the safe engine")
	}
}

func TestJumpTableDisabled(t *testing.T) {
	img, start := tableImage(t, 2, []uint64{0, 0, 0}, true)
	res := Recursive(img, []uint64{start}, Options{})
	if len(res.JTTargets) != 0 {
		t.Fatal("tables resolved with the option off")
	}
}

func TestPICJumpTableResolution(t *testing.T) {
	// Build the PIC idiom by hand: cmp/ja + lea/movsxd/add/jmp with a
	// table of int32 table-relative offsets in .rodata.
	var a x64.Asm
	a.CmpRegImm(x64.RDI, 2)
	a.Jcc(x64.CondA, "def")
	a.LeaRIP(x64.R11, "tbl", 0)
	a.MovsxdRegMemIdx(x64.RAX, x64.R11, x64.RDI)
	a.AddRegReg(x64.RAX, x64.R11)
	a.JmpReg(x64.RAX)
	for k := 0; k < 3; k++ {
		a.Label("case" + string(rune('0'+k)))
		a.MovRegImm32(x64.RAX, int32(k))
		a.Ret()
	}
	a.Label("def")
	a.Ret()
	code, fixups, err := a.Finish()
	if err != nil {
		t.Fatalf("asm: %v", err)
	}
	const textBase, tblAddr = 0x401000, 0x402000
	for _, f := range fixups {
		if f.Sym == "tbl" && f.Kind == x64.FixRel32 {
			rel := int64(tblAddr) - int64(textBase+f.End)
			binary.LittleEndian.PutUint32(code[f.Off:], uint32(int32(rel)))
		}
	}
	table := make([]byte, 12)
	for k := 0; k < 3; k++ {
		off, _ := a.LabelOff("case" + string(rune('0'+k)))
		rel := int64(textBase+off) - int64(tblAddr)
		binary.LittleEndian.PutUint32(table[4*k:], uint32(int32(rel)))
	}
	img := &elfx.Image{Sections: []*elfx.Section{
		{Name: ".text", Addr: textBase, Data: code, Flags: elfx.FlagAlloc | elfx.FlagExec},
		{Name: ".rodata", Addr: tblAddr, Data: table, Flags: elfx.FlagAlloc},
	}}
	res := Recursive(img, []uint64{textBase}, Options{ResolveJumpTables: true})
	if len(res.JTTargets) != 1 {
		t.Fatalf("PIC table not resolved (JTTargets=%d)", len(res.JTTargets))
	}
	for _, targets := range res.JTTargets {
		if len(targets) != 3 {
			t.Fatalf("resolved %d targets, want 3", len(targets))
		}
	}
	if !res.TableBases[tblAddr] {
		t.Fatal("PIC table base not recorded")
	}
}
