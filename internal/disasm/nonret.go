package disasm

import (
	"fetch/internal/arch"
)

// inferNonReturning computes the non-returning function set over a
// disassembly result by monotone fixed point: a function returns when
// some intra-procedural path reaches a ret (call fall-through is only
// taken past callees already known to return; tail jumps delegate to
// the target). Functions never proven returning are non-returning —
// the conservative direction for stopping fall-through decode.
//
// It additionally classifies error/error_at_line-style functions
// (§IV-C): functions that do return, but whose body contains an entry
// test of the first argument guarding a path into a non-returning call.
func inferNonReturning(res *Result) (map[uint64]bool, map[uint64]bool) {
	funcs := res.SortedFuncs()
	// Optimistic greatest fixed point, as in DYNINST: every function
	// is presumed returning until no path to a ret remains under the
	// current knowledge. (A pessimistic least fixed point would
	// deadlock on mutual recursion, wrongly marking the whole cycle
	// non-returning.)
	returns := make(map[uint64]bool, len(funcs))
	for _, f := range funcs {
		returns[f] = true
	}
	for changed := true; changed; {
		changed = false
		for _, f := range funcs {
			if !returns[f] {
				continue
			}
			if !funcReturns(res, f, returns) {
				returns[f] = false
				changed = true
			}
		}
	}
	nonRet := map[uint64]bool{}
	for _, f := range funcs {
		if !returns[f] {
			nonRet[f] = true
		}
	}
	cond := map[uint64]bool{}
	for _, f := range funcs {
		if returns[f] && isCondNonRet(res, f, nonRet) {
			cond[f] = true
		}
	}
	return nonRet, cond
}

// funcReturns walks the intra-procedural instructions of f (as decoded
// so far) looking for a reachable ret, delegating through tail jumps.
func funcReturns(res *Result, f uint64, returns map[uint64]bool) bool {
	seen := map[uint64]bool{}
	stack := []uint64{f}
	for len(stack) > 0 {
		a := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for {
			if seen[a] {
				break
			}
			in, ok := res.Insts[a]
			if !ok {
				break
			}
			seen[a] = true
			switch in.Op {
			case arch.OpRet:
				return true
			case arch.OpJcc:
				stack = append(stack, in.Target)
				a = in.Next()
				continue
			case arch.OpJmp:
				t := in.Target
				if res.Funcs[t] && t != f {
					// Tail edge: f returns iff the target does.
					if returns[t] {
						return true
					}
				} else {
					stack = append(stack, t)
				}
			case arch.OpJmpInd:
				for _, t := range res.JTTargets[a] {
					stack = append(stack, t)
				}
			case arch.OpCall:
				if returns[in.Target] {
					a = in.Next()
					continue
				}
				// Callee not (yet) proven returning: stop this path;
				// the outer fixed point revisits when it flips.
			case arch.OpUd2, arch.OpHlt, arch.OpInt3:
				// Terminal.
			default:
				a = in.Next()
				continue
			}
			break
		}
	}
	return false
}

// isCondNonRet matches the error/error_at_line shape: an entry-block
// test of the first argument register, a returning path, and a path
// into a non-returning call.
func isCondNonRet(res *Result, f uint64, nonRet map[uint64]bool) bool {
	// Entry test within the first three instructions.
	a := f
	gate := res.isa.GateReg()
	sawTest := false
	for k := 0; k < 3; k++ {
		in, ok := res.Insts[a]
		if !ok {
			return false
		}
		if arch.IsGateTest(in, gate) {
			sawTest = true
			break
		}
		if in.IsBranch() || in.IsCall() {
			return false
		}
		a = in.Next()
	}
	if !sawTest {
		return false
	}
	// A call into a non-returning function somewhere in the body.
	seen := map[uint64]bool{}
	stack := []uint64{f}
	for len(stack) > 0 {
		a := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for {
			if seen[a] {
				break
			}
			in, ok := res.Insts[a]
			if !ok {
				break
			}
			seen[a] = true
			if in.Op == arch.OpCall && nonRet[in.Target] {
				return true
			}
			if in.Op == arch.OpJcc {
				stack = append(stack, in.Target)
				a = in.Next()
				continue
			}
			if in.Op == arch.OpJmp {
				if !res.Funcs[in.Target] {
					stack = append(stack, in.Target)
				}
				break
			}
			if in.Terminates() || in.Op == arch.OpInt3 {
				break
			}
			a = in.Next()
			continue
		}
	}
	return false
}
