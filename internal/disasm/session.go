package disasm

import (
	"time"

	"fetch/internal/arch"
	"fetch/internal/elfx"
)

// Stats counts the work a Session (and its forks) performed. All
// counters are deterministic for a given binary and call sequence:
// parallel corpus analysis never changes them.
type Stats struct {
	// InstsDecoded counts decode-cache misses: addresses whose bytes
	// were actually fed through the backend decoder.
	InstsDecoded int64
	// InstsReused counts decode-cache hits: instruction lookups served
	// from a previous decode of the same address.
	InstsReused int64
	// ColdStarts counts sessions created with an empty decode cache.
	// Forks share their parent's cache and do not increment it, so a
	// fully incremental pipeline reports exactly one.
	ColdStarts int
	// Extends, Retracts, and Reruns count committed seed-set updates.
	Extends  int
	Retracts int
	Reruns   int
	// Forks counts copy-on-write session forks.
	Forks int
	// Probes counts speculative one-shot walks (candidate validation,
	// jump-table resolution) that left committed state untouched.
	Probes int
	// FixedPointPasses counts individual recursive-descent passes,
	// including the inner iterations of the non-returning fixed point
	// and probe walks. A sharded committed pass counts once, like the
	// sequential pass it replaces, but parallel candidate validation
	// probes a superset of the sequential loop's, so the total is a
	// scheduling trace like Probes and Forks.
	FixedPointPasses int

	// ShardedPasses counts committed passes executed by the sharded
	// union walk (Session.SetJobs > 1); ShardFallbacks counts sharded
	// attempts whose exactness guards tripped, forcing the sequential
	// replay. Fallbacks are a performance event, never a correctness
	// one: both paths produce identical results.
	ShardedPasses  int
	ShardFallbacks int
	// MergeWall is the total wall time spent in the deterministic
	// shard-merge step (including guard evaluation).
	MergeWall time.Duration
	// Shards aggregates per-shard-slot work across all sharded passes.
	// Like the decode counters, shard counters are an execution trace:
	// they depend on scheduling and on the shard count, never on the
	// analysis result.
	Shards []ShardStat

	// PeakAuxBytes is the high-water accounted estimate of one pass's
	// auxiliary memory: owner-index chunk allocations plus the decode
	// cache and sparse-owner entries at documented per-entry costs. It
	// is an accounting of data-structure growth (deterministic for a
	// given call sequence), not a heap measurement; like the decode
	// counters it is an execution trace, so StripSchedule zeroes it.
	PeakAuxBytes int64
}

// Accounted per-entry costs behind PeakAuxBytes: a decode-cache entry
// is a map slot plus a heap arch.Inst; a sparse-owner entry is one
// uint64→uint64 map slot.
const (
	decodeEntryCost = 160
	sparseOwnerCost = 16
)

// notePassMem folds one finished pass's data-structure footprint into
// the PeakAuxBytes high-water mark.
func (s *Session) notePassMem(res *Result) {
	aux := res.owner.alloc + int64(len(s.cache))*decodeEntryCost
	if res.owner.m != nil {
		aux += int64(len(res.owner.m)) * sparseOwnerCost
	}
	if aux > s.stats.PeakAuxBytes {
		s.stats.PeakAuxBytes = aux
	}
}

// ShardStat is the accumulated work of one shard slot across every
// sharded pass of a session.
type ShardStat struct {
	// Seeds counts seed addresses assigned to the slot.
	Seeds int
	// InstsDecoded and InstsReused are the slot's decode-cache misses
	// and hits (hits include entries served from the parent session's
	// cache).
	InstsDecoded int64
	InstsReused  int64
	// Wall is the slot's total walk time.
	Wall time.Duration
}

// add accumulates one sharded pass's slot work.
func (s *ShardStat) add(other ShardStat) {
	s.Seeds += other.Seeds
	s.InstsDecoded += other.InstsDecoded
	s.InstsReused += other.InstsReused
	s.Wall += other.Wall
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.InstsDecoded += other.InstsDecoded
	s.InstsReused += other.InstsReused
	s.ColdStarts += other.ColdStarts
	s.Extends += other.Extends
	s.Retracts += other.Retracts
	s.Reruns += other.Reruns
	s.Forks += other.Forks
	s.Probes += other.Probes
	s.FixedPointPasses += other.FixedPointPasses
	s.ShardedPasses += other.ShardedPasses
	s.ShardFallbacks += other.ShardFallbacks
	s.MergeWall += other.MergeWall
	for k, sh := range other.Shards {
		for len(s.Shards) <= k {
			s.Shards = append(s.Shards, ShardStat{})
		}
		s.Shards[k].add(sh)
	}
	// A high-water mark merges by max: forks ran against the same
	// budget, not after each other.
	if other.PeakAuxBytes > s.PeakAuxBytes {
		s.PeakAuxBytes = other.PeakAuxBytes
	}
}

// decodeKind classifies a cached decode outcome.
type decodeKind uint8

const (
	decodeOK decodeKind = iota + 1
	// decodeNoWindow: no section bytes at the address.
	decodeNoWindow
	// decodeBad: the bytes do not form a valid instruction.
	decodeBad
)

// decodeEntry is one memoized decode. Everything here — the
// instruction, the failure mode, the mapped constant operands, and the
// gate-register classification (the §IV-C error/error_at_line slice
// step; RDI on x86-64, X0 on aarch64) — is a pure function of the
// image bytes at the address, so entries never invalidate and can be
// shared across passes, forks, and strategy variants.
type decodeEntry struct {
	inst *arch.Inst
	kind decodeKind
	// consts are the instruction's pointer-sized constants that land
	// in mapped sections (the image is fixed per session).
	consts []uint64
	rdi    arch.GateEffect
}

// Session owns the reusable disassembly state of one binary: the
// persistent instruction-decode cache, the committed seed list, and
// the current Result. It supports incremental re-analysis — Extend
// explores additional seeds, Retract removes seeds (the §V-B CFI-error
// re-analysis), Rerun replaces the seed list — while guaranteeing
// results byte-identical to a from-scratch Recursive run over the same
// final seed list: every walk replays the full fixed point in the same
// order, and only the per-address decodes (pure in the image bytes)
// are reused.
//
// A Session is not safe for concurrent use; analyze each binary's
// session from a single goroutine (the batch layer parallelizes across
// binaries, never within one).
type Session struct {
	img   *elfx.Image
	isa   arch.ISA
	opts  Options
	cache map[uint64]decodeEntry
	stats *Stats
	seeds []uint64
	res   *Result
	// jobs > 1 enables the sharded committed passes (SetJobs).
	jobs int
	// warm is a read-only fallback decode cache (a parent session's
	// cache, shared by shard walkers and parallel probe forks). Entries
	// found here are never copied into cache: the parent already owns
	// them.
	warm map[uint64]decodeEntry
	// claim, when set, arbitrates work-item ownership between
	// concurrent shard walkers: push only explores an address when
	// claim returns true (some other shard explores it otherwise).
	claim func(uint64) bool
	// claims, subs, lastUnion, and sizeHint are the sharded-pass
	// scratch state: the reusable claim table, the per-slot shard
	// sub-sessions, the previous pass's union size (the allocation
	// hint for the next), and the per-walk result-map size hint.
	claims    *claimTable
	subs      []*Session
	lastUnion int64
	sizeHint  int
	// ownerProto is the executable-section layout (sorted by base) the
	// dense owner index is allocated from.
	ownerProto []struct {
		base uint64
		size int
	}
	// obs, when set, observes every committed pass (Extend, Retract,
	// Rerun); probes and forks never report. observing gates the hook to
	// committed exec calls only.
	obs       ExecObserver
	observing bool
}

// ExecObserver receives every committed fixed-point pass of a session:
// the non-return knowledge the pass ran under and the pass result. The
// delta-analysis recorder uses it to capture the verdict-environment
// trajectory a cold run traversed; replay verifies changed functions
// against exactly these environments. The maps are live session state —
// observers must copy what they keep and must not mutate anything.
type ExecObserver interface {
	OnPass(nonRet, condNonRet map[uint64]bool, res *Result)
}

// SetExecObserver installs the committed-pass observer (nil disables).
func (s *Session) SetExecObserver(o ExecObserver) { s.obs = o }

// NewSession creates a session for img with the committed-state
// options used by Extend, Retract, and Rerun. Probe takes its own
// options per call.
func NewSession(img *elfx.Image, opts Options) *Session {
	s := &Session{
		img:   img,
		isa:   img.ISA(),
		opts:  opts,
		cache: make(map[uint64]decodeEntry),
		stats: &Stats{ColdStarts: 1},
	}
	for _, sec := range img.ExecSections() {
		s.ownerProto = append(s.ownerProto, struct {
			base uint64
			size int
		}{sec.Addr, int(sec.Size())})
	}
	return s
}

// maxDenseOwnerSection bounds the dense owner representation: offsets
// are stored as int32(offset)+1, so sections at or beyond 2 GiB must
// use the sparse map to avoid wrap-around.
const maxDenseOwnerSection = 1 << 31

// newOwner picks the owner representation for one pass: dense arrays
// for unbounded re-walks, a sparse map for short capped probes (where
// clearing text-sized arrays would dominate) and for images whose
// sections exceed the dense offset range.
func (s *Session) newOwner(opts Options) ownerMap {
	if opts.MaxInsts > 0 {
		return ownerMap{m: make(map[uint64]uint64)}
	}
	for _, p := range s.ownerProto {
		if p.size >= maxDenseOwnerSection {
			return ownerMap{m: make(map[uint64]uint64)}
		}
	}
	spans := make([]ownerSpan, len(s.ownerProto))
	for i, p := range s.ownerProto {
		spans[i] = newOwnerSpan(p.base, p.size)
	}
	return ownerMap{spans: spans}
}

// Fork returns a cheap copy-on-write view of the session: the decode
// cache and stats are shared (new decodes made by the fork benefit the
// parent and vice versa — decodes are pure, so this is safe), while
// the committed seed list and result are the fork's own. Use a fork to
// probe speculative decodes, e.g. §IV-E candidate validation, without
// corrupting the main state. A fork is serial like its parent; it
// never inherits the parent's shard parallelism.
func (s *Session) Fork() *Session {
	s.stats.Forks++
	return &Session{
		img:   s.img,
		isa:   s.isa,
		opts:  s.opts,
		cache: s.cache,
		stats: s.stats,
		warm:  s.warm,
		seeds: append([]uint64(nil), s.seeds...),
		res:   s.res,
	}
}

// ParallelFork returns a fork that is safe to use concurrently with
// other ParallelForks of the same session: it reads the parent's
// decode cache as an immutable warm store and writes new decodes to a
// private overlay, with private counters. The parent session must stay
// idle while parallel forks run; afterwards, Absorb folds each fork's
// overlay and counters back into the parent. Decode entries are pure
// functions of the image bytes, so the overlay merge order never
// affects content.
func (s *Session) ParallelFork() *Session {
	// The fork counts itself in its own private stats — incrementing
	// the parent's here would race with sibling forks created by
	// concurrent pool workers; Absorb folds the count in after the
	// join.
	return &Session{
		img:   s.img,
		isa:   s.isa,
		opts:  s.opts,
		cache: make(map[uint64]decodeEntry),
		warm:  s.cache,
		stats: &Stats{Forks: 1},
	}
}

// Absorb folds a ParallelFork's private decode overlay and counters
// back into the session after the fork's concurrent phase has joined.
func (s *Session) Absorb(f *Session) {
	for a, e := range f.cache {
		if _, ok := s.cache[a]; !ok {
			s.cache[a] = e
		}
	}
	s.stats.Forks += f.stats.Forks
	s.stats.InstsDecoded += f.stats.InstsDecoded
	s.stats.InstsReused += f.stats.InstsReused
	s.stats.Probes += f.stats.Probes
	s.stats.FixedPointPasses += f.stats.FixedPointPasses
}

// SetJobs sets the session's intra-binary parallelism: when n > 1,
// committed passes (Extend, Retract, Rerun) run as n concurrent shard
// walks merged deterministically, falling back to the sequential walk
// whenever an exactness guard cannot prove the merged result equal to
// it. Results are byte-identical for every n; only wall-clock time and
// the scheduling-trace counters in Stats change.
func (s *Session) SetJobs(n int) { s.jobs = n }

// Result returns the current committed result (nil before the first
// Extend/Rerun).
func (s *Session) Result() *Result { return s.res }

// Seeds returns the committed seed list in submission order.
func (s *Session) Seeds() []uint64 { return append([]uint64(nil), s.seeds...) }

// Stats returns a snapshot of the session's counters (shared with its
// forks).
func (s *Session) Stats() Stats { return *s.stats }

// Extend appends newSeeds to the committed seed list and re-analyzes,
// reusing every already-decoded instruction. The result is
// byte-identical to Recursive(img, allSeedsSoFar, opts).
func (s *Session) Extend(newSeeds []uint64) *Result {
	s.stats.Extends++
	s.seeds = append(s.seeds, newSeeds...)
	s.res = s.execCommitted(s.seeds, s.opts)
	return s.res
}

// Retract removes the given seeds from the committed list (preserving
// the order of the remainder) and re-analyzes — the §V-B CFI-error
// recovery, which must drop the reachability contribution of removed
// FDE starts without paying a cold resweep.
func (s *Session) Retract(remove []uint64) *Result {
	s.stats.Retracts++
	drop := make(map[uint64]bool, len(remove))
	for _, a := range remove {
		drop[a] = true
	}
	kept := s.seeds[:0]
	for _, a := range s.seeds {
		if !drop[a] {
			kept = append(kept, a)
		}
	}
	s.seeds = kept
	s.res = s.execCommitted(s.seeds, s.opts)
	return s.res
}

// Rerun replaces the committed seed list wholesale and re-analyzes.
// Callers that rebuild their seed list each round (the baseline tool
// pipelines) use it to keep exact scratch seed order while still
// reusing the decode cache.
func (s *Session) Rerun(seeds []uint64) *Result {
	s.stats.Reruns++
	s.seeds = append(s.seeds[:0:0], seeds...)
	s.res = s.execCommitted(s.seeds, s.opts)
	return s.res
}

// execCommitted runs exec with the pass observer armed. Only committed
// seed-set updates report; probes (including probes issued between
// committed calls) stay silent.
func (s *Session) execCommitted(seeds []uint64, opts Options) *Result {
	s.observing = true
	res := s.exec(seeds, opts)
	s.observing = false
	return res
}

// Probe runs a one-shot walk from seeds under opts without touching
// the committed seed list or result. Candidate validation and
// jump-table resolution use it (through a Fork) for speculative
// decodes.
func (s *Session) Probe(seeds []uint64, opts Options) *Result {
	s.stats.Probes++
	return s.exec(seeds, opts)
}

// exec runs the full Recursive fixed point from the given seeds with
// cached decoding. Knowledge always restarts from empty so the
// iteration trajectory — and therefore the result — matches a
// from-scratch run exactly. With SetJobs > 1 each pass and each
// non-return inference dispatches to its parallel variant; both are
// result-identical to the sequential forms, so the trajectory — and
// the result — is independent of the job count.
func (s *Session) exec(seeds []uint64, opts Options) *Result {
	nonRet := map[uint64]bool{}
	condNonRet := map[uint64]bool{}
	var res *Result
	for iter := 0; iter < 6; iter++ {
		res = s.runPass(seeds, opts, nonRet, condNonRet)
		if s.observing && s.obs != nil {
			s.obs.OnPass(nonRet, condNonRet, res)
		}
		if !opts.NonReturning {
			return res
		}
		newNonRet, newCond := s.runInfer(res)
		if setsEqual(newNonRet, nonRet) && setsEqual(newCond, condNonRet) {
			break
		}
		nonRet, condNonRet = newNonRet, newCond
	}
	res.NonRet = nonRet
	res.CondNonRet = condNonRet
	return res
}

// decode memoizes the pure part of instruction decoding: the section
// window fetch and the x64 decode at addr.
func (s *Session) decode(addr uint64) decodeEntry {
	// Warm first: in a shard walker's steady state (every pass after
	// the first) the parent cache holds nearly every decode.
	if e, ok := s.warm[addr]; ok {
		s.stats.InstsReused++
		return e
	}
	if e, ok := s.cache[addr]; ok {
		s.stats.InstsReused++
		return e
	}
	s.stats.InstsDecoded++
	var e decodeEntry
	window, ok := s.img.BytesToSectionEnd(addr)
	if !ok {
		e = decodeEntry{kind: decodeNoWindow}
	} else if in, err := s.isa.Decode(window, addr); err != nil {
		e = decodeEntry{kind: decodeBad}
	} else {
		inst := in
		e = decodeEntry{inst: &inst, kind: decodeOK, rdi: s.isa.GateEffect(&inst)}
		for _, c := range inst.Constants() {
			if s.img.IsMapped(c) {
				e.consts = append(e.consts, c)
			}
		}
	}
	s.cache[addr] = e
	return e
}

// pass performs one full recursive descent with the current
// non-return knowledge, identical to the historical from-scratch pass
// except that instruction decodes come from the session cache.
func (s *Session) pass(seeds []uint64, opts Options,
	nonRet, condNonRet map[uint64]bool) *Result {

	s.stats.FixedPointPasses++
	img := s.img
	res := &Result{
		isa:        s.isa,
		Insts:      make(map[uint64]*arch.Inst, s.sizeHint),
		Funcs:      make(map[uint64]bool, s.sizeHint/8),
		Refs:       make(map[uint64][]uint64, s.sizeHint/8),
		Constants:  make(map[uint64]bool, s.sizeHint/8),
		NonRet:     nonRet,
		CondNonRet: condNonRet,
		JTTargets:  make(map[uint64][]uint64),
		TableBases: make(map[uint64]bool),
		owner:      s.newOwner(opts),
	}

	type workItem struct {
		addr uint64
		rdi  rdiState
	}
	var work []workItem
	pushed := map[uint64]bool{}
	push := func(addr uint64, rdi rdiState) {
		if !pushed[addr] {
			pushed[addr] = true
			work = append(work, workItem{addr, rdi})
		}
	}
	addRef := func(target, from uint64) {
		res.Refs[target] = append(res.Refs[target], from)
	}
	strictErr := func(kind ErrorKind, at uint64) {
		if opts.Strict {
			res.Errors = append(res.Errors, Error{Kind: kind, At: at})
		}
	}
	// intoFunctionMiddle checks the §IV-E rule (iii).
	intoFunctionMiddle := func(t uint64) bool {
		for _, r := range opts.KnownRanges {
			if t > r.Start && t < r.End {
				return true
			}
		}
		return false
	}

	for _, sd := range seeds {
		res.Funcs[sd] = true
		push(sd, rdiUnknown)
	}

	for len(work) > 0 {
		item := work[len(work)-1]
		work = work[:len(work)-1]
		addr := item.addr
		rdi := item.rdi

		for {
			// Under a shard claim, the first walker to claim an address
			// decodes it and continues the run; the others stop here and
			// leave the rest of the run to the claimer, so the union of
			// the walks is the full closure with almost no duplication.
			if s.claim != nil && !s.claim(addr) {
				break
			}
			if opts.MaxInsts > 0 && len(res.Insts) >= opts.MaxInsts {
				return res
			}
			if _, seen := res.Insts[addr]; seen {
				break
			}
			if owner, mid := res.owner.get(addr); mid && owner != addr {
				// The walk's only order-sensitive rule: record that it
				// fired so a sharded pass knows its union may diverge
				// from the sequential walk.
				res.sawMid = true
				strictErr(ErrMidInstruction, addr)
				break
			}
			if !img.IsExec(addr) {
				strictErr(ErrOutOfSection, addr)
				break
			}
			e := s.decode(addr)
			if e.kind == decodeNoWindow {
				strictErr(ErrOutOfSection, addr)
				break
			}
			if e.kind == decodeBad {
				strictErr(ErrInvalidOpcode, addr)
				break
			}
			in := e.inst
			res.Insts[addr] = in
			res.owner.setRange(addr, int(in.Len))
			for _, c := range e.consts {
				res.Constants[c] = true
			}

			// Track the first-argument state for the error/error_at_line
			// call-site slice (memoized per instruction). Calls keep the
			// state: the clobber applies after the call-site gate below
			// consumes it.
			switch e.rdi {
			case arch.GateSetUnknown:
				rdi = rdiUnknown
			case arch.GateSetZero:
				rdi = rdiZero
			case arch.GateSetNonZero:
				rdi = rdiNonZero
			}

			switch in.Op {
			case arch.OpCall:
				t := in.Target
				if !img.IsExec(t) {
					strictErr(ErrOutOfSection, in.Addr)
					break
				}
				if intoFunctionMiddle(t) {
					strictErr(ErrIntoFunction, in.Addr)
				}
				addRef(t, in.Addr)
				res.Funcs[t] = true
				push(t, rdiUnknown)
				// Fall through only when the callee can return here.
				if opts.NonReturning {
					if nonRet[t] {
						goto pathDone
					}
					if condNonRet[t] && rdi != rdiZero {
						goto pathDone
					}
				}
				rdi = rdiUnknown // the callee clobbers rdi
				addr = in.Next()
				continue
			case arch.OpJcc:
				t := in.Target
				if img.IsExec(t) {
					if intoFunctionMiddle(t) {
						strictErr(ErrIntoFunction, in.Addr)
					}
					addRef(t, in.Addr)
					push(t, rdiUnknown)
				} else {
					strictErr(ErrOutOfSection, in.Addr)
				}
				addr = in.Next()
				continue
			case arch.OpJmp:
				t := in.Target
				if img.IsExec(t) {
					if intoFunctionMiddle(t) {
						strictErr(ErrIntoFunction, in.Addr)
					}
					addRef(t, in.Addr)
					push(t, rdiUnknown)
				} else {
					strictErr(ErrOutOfSection, in.Addr)
				}
				goto pathDone
			case arch.OpJmpInd:
				if opts.ResolveJumpTables {
					targets := s.isa.ResolveJumpTable(jtCtx{img: img, isa: s.isa, res: res}, in, maxJumpTableEntries)
					if len(targets) > 0 {
						res.JTTargets[in.Addr] = targets
						if m, ok := in.IndirectMem(); ok && m.Disp > 0 {
							res.TableBases[uint64(m.Disp)] = true
						}
					} else if s.claim != nil {
						// Shard walkers record unresolved indirect jumps
						// as explicit nil entries so the merge guard can
						// audit every resolution this walker made. Only
						// internal shard results carry these; the merge
						// rebuilds the public map without them.
						res.JTTargets[in.Addr] = nil
					}
					for _, t := range targets {
						addRef(t, in.Addr)
						push(t, rdiUnknown)
					}
				}
				goto pathDone
			case arch.OpRet, arch.OpUd2, arch.OpHlt, arch.OpInt3:
				goto pathDone
			}
			addr = in.Next()
		}
	pathDone:
	}
	return res
}
