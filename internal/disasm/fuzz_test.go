package disasm

import (
	"reflect"
	"sort"
	"testing"

	"fetch/internal/elfx"
)

// FuzzShardedExtend differentially fuzzes the shard-boundary merge: an
// arbitrary byte blob becomes an executable section, a handful of
// blob-derived offsets become seeds, and the sharded committed pass
// (jobs=4, including its claim table, union merge, exactness guards,
// and sequential fallback) must reproduce the sequential session's
// result exactly — references compared as multisets, everything else
// byte for byte.
func FuzzShardedExtend(f *testing.F) {
	f.Add([]byte{0xC3}, uint8(1))
	f.Add([]byte{0x55, 0x48, 0x89, 0xE5, 0xC3, 0xE8, 0xF6, 0xFF, 0xFF, 0xFF}, uint8(3))
	f.Add([]byte{
		0x48, 0x83, 0xF8, 0x03, // cmp rax, 3
		0x77, 0x02, // ja +2
		0xEB, 0x00, // jmp +0
		0xC3, // ret
	}, uint8(4))
	// Overlapping-decode bait: jumps into instruction interiors.
	f.Add([]byte{0xEB, 0x01, 0x48, 0x31, 0xC0, 0xC3, 0x74, 0xFC, 0xC3}, uint8(5))
	f.Fuzz(func(t *testing.T, code []byte, nseeds uint8) {
		if len(code) == 0 || len(code) > 1<<14 {
			return
		}
		const base = 0x401000
		img := &elfx.Image{
			Entry: base,
			Sections: []*elfx.Section{{
				Name: ".text", Addr: base, Data: code,
				Flags: elfx.FlagAlloc | elfx.FlagExec,
			}},
		}
		// Derive 8..40 seed offsets from the blob so the shard split
		// has something to divide.
		n := int(nseeds%33) + 8
		seeds := make([]uint64, 0, n)
		for i := 0; i < n; i++ {
			off := (i * 7919) % len(code)
			seeds = append(seeds, base+uint64((off+int(code[off]))%len(code)))
		}
		opts := Options{ResolveJumpTables: true, NonReturning: true}
		seq := NewSession(img, opts).Extend(seeds)
		par4 := NewSession(img, opts)
		par4.SetJobs(4)
		got := par4.Extend(seeds)
		if !reflect.DeepEqual(got.Insts, seq.Insts) {
			t.Fatalf("Insts differ: %d vs %d", len(got.Insts), len(seq.Insts))
		}
		if !reflect.DeepEqual(got.Funcs, seq.Funcs) {
			t.Fatal("Funcs differ")
		}
		if !reflect.DeepEqual(got.NonRet, seq.NonRet) ||
			!reflect.DeepEqual(got.CondNonRet, seq.CondNonRet) {
			t.Fatal("non-return sets differ")
		}
		if !reflect.DeepEqual(got.JTTargets, seq.JTTargets) {
			t.Fatal("jump-table resolutions differ")
		}
		if !reflect.DeepEqual(got.Constants, seq.Constants) {
			t.Fatal("constants differ")
		}
		if !reflect.DeepEqual(sortRefs(got.Refs), sortRefs(seq.Refs)) {
			t.Fatal("reference multisets differ")
		}
		// The owner index must agree with the instruction map either
		// way (sharded results rebuild it from the union).
		for a, in := range got.Insts {
			if _, ok := got.InstStartAt(a); !ok {
				t.Fatalf("decoded %#x (len %d) not in owner index", a, in.Len)
			}
		}
	})
}

// sortRefs canonicalizes per-target reference order for multiset
// comparison (the sharded merge sorts, the sequential walk does not).
func sortRefs(refs map[uint64][]uint64) map[uint64][]uint64 {
	out := make(map[uint64][]uint64, len(refs))
	for t, l := range refs {
		c := append([]uint64(nil), l...)
		sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
		out[t] = c
	}
	return out
}
