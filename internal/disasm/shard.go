package disasm

import (
	"context"
	"sort"
	"sync/atomic"
	"time"

	"fetch/internal/arch"
	"fetch/internal/pool"
)

// This file implements intra-binary sharded analysis: one committed
// recursive-descent pass split across concurrent shard walkers, merged
// back into a single Result that is byte-identical to the sequential
// walk.
//
// The sequential walk is almost — but not exactly — a pure reachability
// closure: its result can depend on traversal order through three
// rules. (1) A walk arriving strictly inside a previously decoded
// instruction stops (the mid-instruction rule). (2) Fall-through past a
// call to a conditionally non-returning function depends on the rdi
// path state of the first arrival. (3) Jump-table resolution inspects
// the instructions decoded so far behind the indirect jump, so its
// outcome depends on how much backward context existed at processing
// time. Everywhere those rules are provably insensitive to order, the
// walk IS a pure closure, and a union of per-shard closures equals the
// sequential result exactly.
//
// The sharded pass therefore runs speculatively: shard walkers divide
// the seed list, arbitrate pushed targets through a shared claim table
// (so the union does the closure's work once, not once per shard), and
// the merge step proves order-insensitivity — no walker hit the
// mid-instruction rule and no cross-shard instruction overlap exists
// (rule 1), every call to a conditionally non-returning function has a
// path-independent fall-through decision (rule 2, rdi invariance), and
// every jump-table resolution is independent of the amount of backward
// context any arrival could have provided (rule 3, depth invariance).
// Any doubt fails the guard and the pass falls back to the sequential
// walk, which is cheap at that point: every shard decode was already
// absorbed into the session cache. Fallbacks trade time, never
// correctness.

// minShardSeeds is the smallest committed seed list worth sharding.
const minShardSeeds = 8

// jtGuardDepth bounds the backward-context depth the jump-table
// invariance guard reasons about. Resolution itself never inspects more
// than ~18 preceding instructions (resolvePICTable's 10 steps plus
// findBound's 8), so contexts at least this deep are interchangeable.
const jtGuardDepth = 18

// rdiGuardDepth bounds the backward walk of the conditional-non-return
// guard. The rdi determinant (the argument-register setup) sits within
// a few instructions of its call in any real code; an undetermined
// state beyond this depth fails the guard conservatively.
const rdiGuardDepth = 32

// shardable reports whether a committed pass may run sharded: bounded
// (MaxInsts) and strict walks are order-sensitive by construction and
// always run sequentially.
func shardable(opts Options) bool {
	return opts.MaxInsts == 0 && !opts.Strict
}

// runPass executes one fixed-point pass, sharded when the session's
// job count and the options allow it, sequential otherwise.
func (s *Session) runPass(seeds []uint64, opts Options,
	nonRet, condNonRet map[uint64]bool) *Result {

	var res *Result
	if s.jobs > 1 && len(seeds) >= minShardSeeds && shardable(opts) {
		if r, ok := s.passSharded(seeds, opts, nonRet, condNonRet); ok {
			res = r
		} else {
			s.stats.ShardFallbacks++
		}
	}
	if res == nil {
		res = s.pass(seeds, opts, nonRet, condNonRet)
	}
	s.notePassMem(res)
	return res
}

// passSharded runs one pass as concurrent shard walks plus a
// deterministic merge. The second return value is false when an
// exactness guard could not prove the union equal to the sequential
// walk; the caller then re-runs the pass sequentially (with every
// shard decode already cached).
func (s *Session) passSharded(seeds []uint64, opts Options,
	nonRet, condNonRet map[uint64]bool) (*Result, bool) {

	// runPass guarantees jobs >= 2 and len(seeds) >= minShardSeeds
	// (8), so the clamp below always leaves at least two shards.
	k := s.jobs
	if k > len(seeds)/2 {
		k = len(seeds) / 2
	}
	s.stats.ShardedPasses++

	type span struct{ lo, hi int }
	chunks := make([]span, k)
	for i := 0; i < k; i++ {
		chunks[i] = span{lo: i * len(seeds) / k, hi: (i + 1) * len(seeds) / k}
	}

	// Pushed-target ownership: the first walker to claim an address
	// explores it; the rest record only the edge. Which walker wins is
	// scheduling-dependent — the union's content is not. The table and
	// the per-slot sub-sessions are session-held scratch, reused across
	// passes.
	claims := s.claimScratch()
	subs := s.subScratch(k)
	sizeHint := int(s.lastUnion)/k + 16
	type shardOut struct {
		res  *Result
		wall time.Duration
	}
	outs := pool.Map(nil, k, chunks,
		func(_ context.Context, i int, sp span) (shardOut, error) {
			t0 := time.Now()
			sub := subs[i]
			shard := int32(i)
			sub.claim = func(a uint64) bool { return claims.claim(a, shard) }
			sub.sizeHint = sizeHint
			res := sub.pass(seeds[sp.lo:sp.hi], opts, nonRet, condNonRet)
			return shardOut{res: res, wall: time.Since(t0)}, nil
		})

	// Absorb every shard's decode overlay and counters — also on
	// guard failure, so the sequential fallback pays no cold decodes.
	t0 := time.Now()
	for len(s.stats.Shards) < k {
		s.stats.Shards = append(s.stats.Shards, ShardStat{})
	}
	shardRes := make([]*Result, k)
	for i, out := range outs {
		o := out.Value
		sub := subs[i]
		for a, e := range sub.cache {
			if _, ok := s.cache[a]; !ok {
				s.cache[a] = e
			}
		}
		clear(sub.cache)
		s.stats.InstsDecoded += sub.stats.InstsDecoded
		s.stats.InstsReused += sub.stats.InstsReused
		s.stats.Shards[i].add(ShardStat{
			Seeds:        chunks[i].hi - chunks[i].lo,
			InstsDecoded: sub.stats.InstsDecoded,
			InstsReused:  sub.stats.InstsReused,
			Wall:         o.wall,
		})
		sub.stats.InstsDecoded, sub.stats.InstsReused = 0, 0
		shardRes[i] = o.res
	}

	merged := s.mergeShards(shardRes, seeds, opts, nonRet, condNonRet)
	s.stats.MergeWall += time.Since(t0)
	if merged == nil {
		return nil, false
	}
	// Counted only on success: a fallback's sequential pass counts
	// itself, and the counter must match the sequential run's.
	s.stats.FixedPointPasses++
	s.lastUnion = int64(len(merged.Insts))
	return merged, true
}

// claimScratch returns the session's claim table, cleared for a new
// pass (allocated on first use).
func (s *Session) claimScratch() *claimTable {
	if s.claims == nil {
		s.claims = newClaimTable(s.ownerProto)
	}
	s.claims.reset()
	return s.claims
}

// subScratch returns k reusable shard sub-sessions backed by the
// parent's decode cache.
func (s *Session) subScratch(k int) []*Session {
	for len(s.subs) < k {
		s.subs = append(s.subs, &Session{
			img:        s.img,
			isa:        s.isa,
			opts:       s.opts,
			cache:      make(map[uint64]decodeEntry),
			warm:       s.cache,
			stats:      &Stats{},
			ownerProto: s.ownerProto,
		})
	}
	return s.subs[:k]
}

// claimTable arbitrates pushed-work ownership between shard walkers:
// one atomic slot per executable byte, CAS-claimed by shard number.
// Addresses outside the executable sections are never contended (each
// such seed belongs to one shard's list) and claim trivially.
type claimTable struct {
	spans []claimSpan
}

// claimSpan covers one executable section.
type claimSpan struct {
	base  uint64
	slots []int32
}

// newClaimTable sizes a table from the executable-section layout.
func newClaimTable(proto []struct {
	base uint64
	size int
}) *claimTable {
	t := &claimTable{}
	for _, p := range proto {
		t.spans = append(t.spans, claimSpan{base: p.base, slots: make([]int32, p.size)})
	}
	return t
}

// reset clears every slot for the next pass.
func (t *claimTable) reset() {
	for i := range t.spans {
		clear(t.spans[i].slots)
	}
}

// claim reports whether shard now owns addr (first claimer wins; the
// winner's repeat calls keep returning true).
func (t *claimTable) claim(addr uint64, shard int32) bool {
	for i := range t.spans {
		sp := &t.spans[i]
		if addr < sp.base {
			break
		}
		if d := addr - sp.base; d < uint64(len(sp.slots)) {
			slot := &sp.slots[d]
			return atomic.CompareAndSwapInt32(slot, 0, shard+1) ||
				atomic.LoadInt32(slot) == shard+1
		}
	}
	return true
}

// mergeShards builds the union Result of the shard walks, verifying
// every exactness guard along the way. It returns nil as soon as any
// guard cannot prove the union byte-identical to the sequential walk.
func (s *Session) mergeShards(shards []*Result, seeds []uint64, opts Options,
	nonRet, condNonRet map[uint64]bool) *Result {

	base := 0
	for i, r := range shards {
		// Guard (1), walker half: the mid-instruction rule fired.
		if r.sawMid {
			return nil
		}
		if len(r.Insts) > len(shards[base].Insts) {
			base = i
		}
	}

	// The largest shard's result becomes the merge base in place:
	// every other shard's content is inserted into it. Shard results
	// are freshly allocated per pass, so adopting one never aliases
	// state that outlives the merge.
	merged := shards[base].Insts
	bres := shards[base]

	// Guard (1), union half: two decoded instructions sharing bytes
	// mean the mid-instruction rule could have fired under some
	// traversal order. The base verifies its own self-consistency
	// (a single walk can decode overlapping instructions without
	// tripping its own mid-instruction rule); the others insert with
	// an atomic check-and-claim per instruction.
	for a, in := range merged {
		if !bres.owner.verifyRange(a, int(in.Len)) {
			return nil
		}
	}
	for i, r := range shards {
		if i == base {
			continue
		}
		for a, in := range r.Insts {
			if _, dup := merged[a]; dup {
				continue // identical by decode purity
			}
			if !bres.owner.insertChecked(a, int(in.Len)) {
				return nil
			}
			merged[a] = in
		}
		for f := range r.Funcs {
			bres.Funcs[f] = true
		}
		for c := range r.Constants {
			bres.Constants[c] = true
		}
	}

	// Guards (2) and (3) inspect backward context; both need the
	// pushable set (addresses the walk can process as work items, with
	// no backward context guaranteed).
	needCond := opts.NonReturning && len(condNonRet) > 0
	if opts.ResolveJumpTables || needCond {
		pushable := pushableSet(s.img, bres, seeds, shards)
		var jtInv map[uint64][]uint64
		if opts.ResolveJumpTables {
			jtInv = make(map[uint64][]uint64)
		}
		for a, in := range merged {
			switch {
			case in.Op == arch.OpJmpInd && opts.ResolveJumpTables:
				targets, ok := s.jtInvariant(bres, in, pushable, nonRet, condNonRet, opts)
				if !ok {
					return nil
				}
				jtInv[a] = targets
			case in.Op == arch.OpCall && needCond && condNonRet[in.Target]:
				if !condGateInvariant(s.isa, s.img, bres, in, pushable, nonRet, condNonRet, opts) {
					return nil
				}
			}
		}
		if opts.ResolveJumpTables {
			// Audit every resolution any walker actually made against
			// the invariant (shard results record unresolved indirect
			// jumps as explicit nil entries for exactly this check),
			// then rebuild the public map from the invariants alone.
			for _, r := range shards {
				for a, tg := range r.JTTargets {
					if inv, ok := jtInv[a]; !ok || !equalAddrs(tg, inv) {
						return nil
					}
				}
			}
			bres.JTTargets = make(map[uint64][]uint64, len(jtInv))
			for a, tg := range jtInv {
				if len(tg) > 0 {
					bres.JTTargets[a] = tg
				}
			}
			for i, r := range shards {
				if i == base {
					continue
				}
				for t := range r.TableBases {
					bres.TableBases[t] = true
				}
			}
		}
	}

	// References: per-target multiset union. Each (target, from) edge
	// originates in exactly one instruction, so shards that decoded it
	// agree on its multiplicity; the first contributing shard supplies
	// it. With claimed walks an edge's from-instruction is almost
	// always decoded by exactly one shard, so the single-contributor
	// fast path dominates; only contested targets pay a seen-set. The
	// final per-target order is sorted — a canonical order independent
	// of the shard partition. (The sequential walk emits discovery
	// order instead; no consumer is order-sensitive, and the
	// differential checkers compare reference multisets.)
	for i, r := range shards {
		if i == base {
			continue
		}
		for t, list := range r.Refs {
			have := bres.Refs[t]
			if len(have) == 0 {
				bres.Refs[t] = append([]uint64(nil), list...)
				continue
			}
			sset := make(map[uint64]bool, len(have))
			for _, from := range have {
				sset[from] = true
			}
			for _, from := range list {
				if !sset[from] {
					have = append(have, from)
				}
			}
			bres.Refs[t] = have
		}
	}
	for t := range bres.Refs {
		l := bres.Refs[t]
		sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
	}
	return bres
}

// pushableSet collects every address the walk could process as a work
// item (rather than reach by fall-through): the seeds plus every
// direct-branch, call, and jump-table target in the union.
func pushableSet(img imgExec, merged *Result, seeds []uint64, shards []*Result) map[uint64]bool {
	pushable := make(map[uint64]bool, len(seeds)+len(merged.Funcs))
	for _, sd := range seeds {
		pushable[sd] = true
	}
	for _, in := range merged.Insts {
		switch in.Op {
		case arch.OpCall, arch.OpJcc, arch.OpJmp:
			if in.HasTarget && img.IsExec(in.Target) {
				pushable[in.Target] = true
			}
		}
	}
	for _, r := range shards {
		for _, targets := range r.JTTargets {
			for _, t := range targets {
				pushable[t] = true
			}
		}
	}
	return pushable
}

// imgExec is the slice of elfx.Image the context guards need.
type imgExec interface {
	IsExec(uint64) bool
}

// backChain returns the byte-adjacent previously decoded instructions
// behind addr, nearest first, up to max links.
func backChain(res *Result, addr uint64, max int) []*arch.Inst {
	var chain []*arch.Inst
	for len(chain) < max {
		prev, ok := prevInst(res, addr)
		if !ok {
			break
		}
		chain = append(chain, res.Insts[prev])
		addr = prev
	}
	return chain
}

// jtInvariant proves one indirect jump's resolution independent of
// traversal order, returning the invariant target list. The resolution
// reads only the chain of byte-adjacent previously decoded
// instructions behind the jump, so its outcome is a function of how
// deep that chain was decoded at processing time. The guard computes
// the minimum depth any arrival can guarantee (0 if the jump itself is
// pushable, else the nearest pushable fall-through entry on the
// chain), evaluates the resolution at every reachable depth, and
// requires all outcomes equal.
func (s *Session) jtInvariant(merged *Result, jmp *arch.Inst,
	pushable map[uint64]bool, nonRet, condNonRet map[uint64]bool, opts Options) ([]uint64, bool) {

	full := s.isa.ResolveJumpTable(jtCtx{img: s.img, isa: s.isa, res: merged}, jmp, maxJumpTableEntries)
	chain := backChain(merged, jmp.Addr, jtGuardDepth+1)

	// Minimum guaranteed depth over all possible arrivals.
	lmin := -1
	if pushable[jmp.Addr] {
		lmin = 0
	} else {
		for d := 1; d <= len(chain); d++ {
			if !fallsThrough(s.img, chain[d-1], nonRet, condNonRet, opts) {
				break // no deeper entry can reach the jump by fall-through
			}
			if pushable[chain[d-1].Addr] {
				lmin = d
				break
			}
		}
		if lmin < 0 {
			if len(chain) > jtGuardDepth {
				// Every entry lies beyond the depth resolution can
				// inspect; all reachable contexts are maximal-equivalent.
				lmin = jtGuardDepth
			} else {
				return nil, false // cannot bound the arrival context
			}
		}
	}

	maxd := len(chain)
	if maxd > jtGuardDepth {
		maxd = jtGuardDepth
	}
	for d := lmin; d <= maxd; d++ {
		mini := &Result{
			isa:        s.isa,
			Insts:      make(map[uint64]*arch.Inst, d),
			TableBases: make(map[uint64]bool),
			owner:      ownerMap{m: make(map[uint64]uint64)},
		}
		for i := 0; i < d; i++ {
			in := chain[i]
			mini.Insts[in.Addr] = in
			mini.owner.setRange(in.Addr, int(in.Len))
		}
		if !equalAddrs(s.isa.ResolveJumpTable(jtCtx{img: s.img, isa: s.isa, res: mini}, jmp, maxJumpTableEntries), full) {
			return nil, false
		}
	}
	return full, true
}

// condGateInvariant proves that the fall-through decision at a call to
// a conditionally non-returning function is the same on every arrival
// path. The decision depends on the rdi path state (fall through iff
// rdi is known zero), which is set by the nearest rdi determinant on
// the byte-adjacent chain behind the call: an rdi-writing instruction,
// a crossed call (which clobbers rdi to unknown), or a work-item entry
// (which starts unknown). The guard computes the deep-arrival value
// and fails only when it is "known zero" while some arrival could
// start between the determinant and the call (yielding unknown and
// the opposite decision).
func condGateInvariant(isa arch.ISA, img imgExec, merged *Result, call *arch.Inst,
	pushable map[uint64]bool, nonRet, condNonRet map[uint64]bool, opts Options) bool {

	chain := backChain(merged, call.Addr, rdiGuardDepth)
	shallow := pushable[call.Addr]
	deep := rdiUnknown
	found := false
	for d := 1; d <= len(chain); d++ {
		c := chain[d-1]
		if !fallsThrough(img, c, nonRet, condNonRet, opts) {
			// No arrival crosses c; deeper context is unreachable, and
			// shallower entries start unknown. (A conditionally
			// non-returning call on the chain also lands here: crossing
			// one clobbers rdi to unknown, matching the default.)
			found = true
			break
		}
		if c.Op == arch.OpCall {
			// A crossed returning call clobbers rdi.
			found = true
			break
		}
		switch isa.GateEffect(c) {
		case arch.GateSetZero:
			deep, found = rdiZero, true
		case arch.GateSetNonZero:
			deep, found = rdiNonZero, true
		case arch.GateSetUnknown:
			found = true
		default:
			// No rdi effect: an entry here contributes an unknown
			// arrival.
			if pushable[c.Addr] {
				shallow = true
			}
		}
		if found {
			break
		}
	}
	if !found && len(chain) >= rdiGuardDepth {
		return false // determinant beyond the guard's horizon
	}
	// Unknown and non-zero make the same decision (no fall-through);
	// only a known zero diverges from an unknown-state arrival.
	return deep != rdiZero || !shallow
}

// fallsThrough reports whether execution past in continues to the next
// byte-adjacent instruction under the pass's rules, conservatively
// treating conditionally non-returning callees as not falling through
// (see condGateInvariant for why that is exact where it matters).
func fallsThrough(img imgExec, in *arch.Inst, nonRet, condNonRet map[uint64]bool, opts Options) bool {
	switch in.Op {
	case arch.OpRet, arch.OpUd2, arch.OpHlt, arch.OpInt3, arch.OpJmp, arch.OpJmpInd:
		return false
	case arch.OpCall:
		if !img.IsExec(in.Target) {
			return false // the walk stops at out-of-section call targets
		}
		if opts.NonReturning && (nonRet[in.Target] || condNonRet[in.Target]) {
			return false
		}
	}
	return true
}

// equalAddrs compares two address slices element-wise (nil equals
// empty).
func equalAddrs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// minParallelInferFuncs is the smallest function set worth parallel
// non-return inference.
const minParallelInferFuncs = 32

// runInfer dispatches non-returning inference, parallel when the
// session's job count allows it.
func (s *Session) runInfer(res *Result) (map[uint64]bool, map[uint64]bool) {
	if s.jobs > 1 && len(res.Funcs) >= minParallelInferFuncs {
		return inferNonReturningParallel(res, s.jobs)
	}
	return inferNonReturning(res)
}

// inferNonReturningParallel computes the same greatest fixed point as
// inferNonReturning with snapshot (Jacobi) rounds: each round
// re-evaluates every still-returning function against the previous
// round's knowledge in parallel, then applies all removals at once.
// The operator is monotone and the iteration starts from the top, so
// the limit is the unique greatest fixed point — identical to the
// sequential in-place iteration, independent of evaluation order.
func inferNonReturningParallel(res *Result, jobs int) (map[uint64]bool, map[uint64]bool) {
	funcs := res.SortedFuncs()
	returns := make(map[uint64]bool, len(funcs))
	for _, f := range funcs {
		returns[f] = true
	}
	type span struct{ lo, hi int }
	chunks := make([]span, jobs)
	for i := 0; i < jobs; i++ {
		chunks[i] = span{lo: i * len(funcs) / jobs, hi: (i + 1) * len(funcs) / jobs}
	}
	for {
		drops := pool.Map(nil, jobs, chunks,
			func(_ context.Context, _ int, sp span) ([]uint64, error) {
				var out []uint64
				for _, f := range funcs[sp.lo:sp.hi] {
					if returns[f] && !funcReturns(res, f, returns) {
						out = append(out, f)
					}
				}
				return out, nil
			})
		n := 0
		for _, d := range drops {
			for _, f := range d.Value {
				returns[f] = false
				n++
			}
		}
		if n == 0 {
			break
		}
	}
	nonRet := map[uint64]bool{}
	for _, f := range funcs {
		if !returns[f] {
			nonRet[f] = true
		}
	}
	conds := pool.Map(nil, jobs, chunks,
		func(_ context.Context, _ int, sp span) ([]uint64, error) {
			var out []uint64
			for _, f := range funcs[sp.lo:sp.hi] {
				if returns[f] && isCondNonRet(res, f, nonRet) {
					out = append(out, f)
				}
			}
			return out, nil
		})
	cond := map[uint64]bool{}
	for _, d := range conds {
		for _, f := range d.Value {
			cond[f] = true
		}
	}
	return nonRet, cond
}
