// Package disasm implements the disassembly machinery of the paper's
// §IV: safe recursive descent from seed addresses (FDE starts, symbols,
// the entry point) treating call targets as new function starts, with
// conservative handling of the four error-prone constructs — jump
// tables (bounded, DYNINST-style), indirect calls (skipped),
// tail calls (not detected here), and non-returning functions
// (fixed-point analysis with the error/error_at_line first-argument
// backward slice). A strict mode records the §IV-E validation errors
// used to vet function-pointer candidates, and a linear sweep supports
// the NUCLEUS- and scan-style baselines.
package disasm

import (
	"sort"

	"fetch/internal/elfx"
	"fetch/internal/x64"
)

// ErrorKind classifies strict-mode disassembly errors (§IV-E).
type ErrorKind uint8

// Strict-mode error kinds.
const (
	// ErrInvalidOpcode: bytes that cannot decode.
	ErrInvalidOpcode ErrorKind = iota + 1
	// ErrMidInstruction: decoding ran into the middle of a previously
	// decoded instruction.
	ErrMidInstruction
	// ErrIntoFunction: a control transfer targets the middle of a
	// previously detected function.
	ErrIntoFunction
	// ErrOutOfSection: control flow left the executable sections.
	ErrOutOfSection
)

// Error is one strict-mode validation error.
type Error struct {
	Kind ErrorKind
	At   uint64 // address where the problem was observed
}

// FuncRange is a known function extent (from FDEs) used for the
// jump-into-function check.
type FuncRange struct {
	Start uint64
	End   uint64
}

// Options configure a recursive disassembly run.
type Options struct {
	// ResolveJumpTables enables the bounded DYNINST-style jump-table
	// analysis; unresolvable indirect jumps just end the path.
	ResolveJumpTables bool
	// NonReturning enables the fixed-point non-returning analysis; when
	// off, every call is assumed to return.
	NonReturning bool
	// Strict records §IV-E validation errors and stops faulting paths.
	Strict bool
	// KnownRanges are previously detected function extents for the
	// jump-into-function check (strict mode).
	KnownRanges []FuncRange
	// MaxInsts bounds total decoded instructions (0 = no bound).
	MaxInsts int
}

// Result is the outcome of a recursive disassembly.
type Result struct {
	// Insts maps each decoded instruction start to its decoding.
	Insts map[uint64]*x64.Inst
	// Funcs is the detected function-start set: seeds plus direct
	// call targets.
	Funcs map[uint64]bool
	// Refs maps a target address to the instructions referencing it
	// via direct calls or jumps.
	Refs map[uint64][]uint64
	// Constants holds pointer-sized constants harvested from operands.
	Constants map[uint64]bool
	// NonRet marks function starts determined never to return.
	NonRet map[uint64]bool
	// CondNonRet marks error/error_at_line-like functions that return
	// iff their first argument is zero.
	CondNonRet map[uint64]bool
	// JTTargets maps resolved indirect-jump instructions to their
	// jump-table targets.
	JTTargets map[uint64][]uint64
	// TableBases records the table addresses of resolved jump tables;
	// pointer detection must not treat them as function-pointer
	// candidates (they are known data).
	TableBases map[uint64]bool
	// Errors holds strict-mode validation errors.
	Errors []Error
	// owner maps every byte of decoded instructions to the
	// instruction start covering it.
	owner map[uint64]uint64
}

// Covered reports whether addr lies inside any decoded instruction.
func (r *Result) Covered(addr uint64) bool {
	_, ok := r.owner[addr]
	return ok
}

// InstStartAt returns the start of the instruction covering addr.
func (r *Result) InstStartAt(addr uint64) (uint64, bool) {
	s, ok := r.owner[addr]
	return s, ok
}

// SortedFuncs returns detected function starts in address order.
func (r *Result) SortedFuncs() []uint64 {
	out := make([]uint64, 0, len(r.Funcs))
	for a := range r.Funcs {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// rdiState tracks the §IV-C backward-slice approximation of the first
// argument register along a straight-line decode path.
type rdiState uint8

const (
	rdiUnknown rdiState = iota
	rdiZero
	rdiNonZero
)

// Recursive runs recursive descent from the seed addresses. With
// opts.NonReturning it iterates disassembly and non-returning inference
// to a fixed point so fall-through never crosses a call that cannot
// return (§IV-C).
func Recursive(img *elfx.Image, seeds []uint64, opts Options) *Result {
	nonRet := map[uint64]bool{}
	condNonRet := map[uint64]bool{}
	var res *Result
	for iter := 0; iter < 6; iter++ {
		res = runPass(img, seeds, opts, nonRet, condNonRet)
		if !opts.NonReturning {
			return res
		}
		newNonRet, newCond := inferNonReturning(res)
		if setsEqual(newNonRet, nonRet) && setsEqual(newCond, condNonRet) {
			break
		}
		nonRet, condNonRet = newNonRet, newCond
	}
	res.NonRet = nonRet
	res.CondNonRet = condNonRet
	return res
}

func setsEqual(a, b map[uint64]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// runPass performs one full recursive descent with the current
// non-return knowledge.
func runPass(img *elfx.Image, seeds []uint64, opts Options,
	nonRet, condNonRet map[uint64]bool) *Result {

	res := &Result{
		Insts:      make(map[uint64]*x64.Inst),
		Funcs:      make(map[uint64]bool),
		Refs:       make(map[uint64][]uint64),
		Constants:  make(map[uint64]bool),
		NonRet:     nonRet,
		CondNonRet: condNonRet,
		JTTargets:  make(map[uint64][]uint64),
		TableBases: make(map[uint64]bool),
		owner:      make(map[uint64]uint64),
	}

	type workItem struct {
		addr uint64
		rdi  rdiState
	}
	var work []workItem
	pushed := map[uint64]bool{}
	push := func(addr uint64, rdi rdiState) {
		if !pushed[addr] {
			pushed[addr] = true
			work = append(work, workItem{addr, rdi})
		}
	}
	addRef := func(target, from uint64) {
		res.Refs[target] = append(res.Refs[target], from)
	}
	strictErr := func(kind ErrorKind, at uint64) {
		if opts.Strict {
			res.Errors = append(res.Errors, Error{Kind: kind, At: at})
		}
	}
	// intoFunctionMiddle checks the §IV-E rule (iii).
	intoFunctionMiddle := func(t uint64) bool {
		for _, r := range opts.KnownRanges {
			if t > r.Start && t < r.End {
				return true
			}
		}
		return false
	}

	for _, s := range seeds {
		res.Funcs[s] = true
		push(s, rdiUnknown)
	}

	for len(work) > 0 {
		item := work[len(work)-1]
		work = work[:len(work)-1]
		addr := item.addr
		rdi := item.rdi

		for {
			if opts.MaxInsts > 0 && len(res.Insts) >= opts.MaxInsts {
				return res
			}
			if _, seen := res.Insts[addr]; seen {
				break
			}
			if owner, mid := res.owner[addr]; mid && owner != addr {
				strictErr(ErrMidInstruction, addr)
				break
			}
			window, ok := img.BytesToSectionEnd(addr)
			if !ok || !img.IsExec(addr) {
				strictErr(ErrOutOfSection, addr)
				break
			}
			in, err := x64.Decode(window, addr)
			if err != nil {
				strictErr(ErrInvalidOpcode, addr)
				break
			}
			inst := in // copy to heap once
			res.Insts[addr] = &inst
			for b := addr; b < addr+uint64(in.Len); b++ {
				res.owner[b] = addr
			}
			for _, c := range in.Constants() {
				if img.IsMapped(c) {
					res.Constants[c] = true
				}
			}

			// Track the first-argument state for the error/error_at_line
			// call-site slice. Calls are excluded here: the clobber
			// applies after the call-site gate below consumes the
			// current state.
			if w := in.Writes(); !in.IsCall() && w.Has(x64.RDI) {
				rdi = rdiUnknown
				if in.Op == x64.OpXor && len(in.Args) == 2 &&
					in.Args[0].Kind == x64.KindReg && in.Args[0].Reg == x64.RDI {
					rdi = rdiZero
				}
				if in.Op == x64.OpMov && len(in.Args) == 2 &&
					in.Args[0].Kind == x64.KindReg && in.Args[0].Reg == x64.RDI &&
					in.Args[1].Kind == x64.KindImm {
					if in.Args[1].Imm == 0 {
						rdi = rdiZero
					} else {
						rdi = rdiNonZero
					}
				}
			}

			switch in.Op {
			case x64.OpCall:
				t := in.Target
				if !img.IsExec(t) {
					strictErr(ErrOutOfSection, in.Addr)
					break
				}
				if intoFunctionMiddle(t) {
					strictErr(ErrIntoFunction, in.Addr)
				}
				addRef(t, in.Addr)
				res.Funcs[t] = true
				push(t, rdiUnknown)
				// Fall through only when the callee can return here.
				if opts.NonReturning {
					if nonRet[t] {
						goto pathDone
					}
					if condNonRet[t] && rdi != rdiZero {
						goto pathDone
					}
				}
				rdi = rdiUnknown // the callee clobbers rdi
				addr = in.Next()
				continue
			case x64.OpJcc:
				t := in.Target
				if img.IsExec(t) {
					if intoFunctionMiddle(t) {
						strictErr(ErrIntoFunction, in.Addr)
					}
					addRef(t, in.Addr)
					push(t, rdiUnknown)
				} else {
					strictErr(ErrOutOfSection, in.Addr)
				}
				addr = in.Next()
				continue
			case x64.OpJmp:
				t := in.Target
				if img.IsExec(t) {
					if intoFunctionMiddle(t) {
						strictErr(ErrIntoFunction, in.Addr)
					}
					addRef(t, in.Addr)
					push(t, rdiUnknown)
				} else {
					strictErr(ErrOutOfSection, in.Addr)
				}
				goto pathDone
			case x64.OpJmpInd:
				if opts.ResolveJumpTables {
					targets := resolveJumpTable(img, res, &inst)
					if len(targets) > 0 {
						res.JTTargets[in.Addr] = targets
						if m, ok := inst.IndirectMem(); ok && m.Disp > 0 {
							res.TableBases[uint64(m.Disp)] = true
						}
					}
					for _, t := range targets {
						addRef(t, in.Addr)
						push(t, rdiUnknown)
					}
				}
				goto pathDone
			case x64.OpRet, x64.OpUd2, x64.OpHlt, x64.OpInt3:
				goto pathDone
			}
			addr = in.Next()
		}
	pathDone:
	}
	return res
}
