// Package disasm implements the disassembly machinery of the paper's
// §IV: safe recursive descent from seed addresses (FDE starts, symbols,
// the entry point) treating call targets as new function starts, with
// conservative handling of the four error-prone constructs — jump
// tables (bounded, DYNINST-style), indirect calls (skipped),
// tail calls (not detected here), and non-returning functions
// (fixed-point analysis with the error/error_at_line first-argument
// backward slice). A strict mode records the §IV-E validation errors
// used to vet function-pointer candidates, and a linear sweep supports
// the NUCLEUS- and scan-style baselines.
package disasm

import (
	"sort"

	"fetch/internal/arch"
	"fetch/internal/elfx"
)

// ErrorKind classifies strict-mode disassembly errors (§IV-E).
type ErrorKind uint8

// Strict-mode error kinds.
const (
	// ErrInvalidOpcode: bytes that cannot decode.
	ErrInvalidOpcode ErrorKind = iota + 1
	// ErrMidInstruction: decoding ran into the middle of a previously
	// decoded instruction.
	ErrMidInstruction
	// ErrIntoFunction: a control transfer targets the middle of a
	// previously detected function.
	ErrIntoFunction
	// ErrOutOfSection: control flow left the executable sections.
	ErrOutOfSection
)

// Error is one strict-mode validation error.
type Error struct {
	Kind ErrorKind
	At   uint64 // address where the problem was observed
}

// FuncRange is a known function extent (from FDEs) used for the
// jump-into-function check.
type FuncRange struct {
	Start uint64
	End   uint64
}

// Options configure a recursive disassembly run.
type Options struct {
	// ResolveJumpTables enables the bounded DYNINST-style jump-table
	// analysis; unresolvable indirect jumps just end the path.
	ResolveJumpTables bool
	// NonReturning enables the fixed-point non-returning analysis; when
	// off, every call is assumed to return.
	NonReturning bool
	// Strict records §IV-E validation errors and stops faulting paths.
	Strict bool
	// KnownRanges are previously detected function extents for the
	// jump-into-function check (strict mode).
	KnownRanges []FuncRange
	// MaxInsts bounds total decoded instructions (0 = no bound).
	MaxInsts int
}

// Result is the outcome of a recursive disassembly.
type Result struct {
	// Insts maps each decoded instruction start to its decoding.
	Insts map[uint64]*arch.Inst
	// Funcs is the detected function-start set: seeds plus direct
	// call targets.
	Funcs map[uint64]bool
	// Refs maps a target address to the instructions referencing it
	// via direct calls or jumps.
	Refs map[uint64][]uint64
	// Constants holds pointer-sized constants harvested from operands.
	Constants map[uint64]bool
	// NonRet marks function starts determined never to return.
	NonRet map[uint64]bool
	// CondNonRet marks error/error_at_line-like functions that return
	// iff their first argument is zero.
	CondNonRet map[uint64]bool
	// JTTargets maps resolved indirect-jump instructions to their
	// jump-table targets.
	JTTargets map[uint64][]uint64
	// TableBases records the table addresses of resolved jump tables;
	// pointer detection must not treat them as function-pointer
	// candidates (they are known data).
	TableBases map[uint64]bool
	// Errors holds strict-mode validation errors.
	Errors []Error
	// owner maps every byte of decoded instructions to the
	// instruction start covering it.
	owner ownerMap
	// tableReads records the data intervals consulted by jump-table
	// resolution during this walk. A cached verdict derived from the
	// walk is only reusable while these bytes are unchanged; the delta
	// path invalidates reuse when a changed range intersects them.
	tableReads []Interval
	// sawMid records that a walk arrived in the middle of a previously
	// decoded instruction — the one order-sensitive walk rule that is
	// invisible in the final instruction set. A sharded pass whose
	// walkers saw it cannot prove its union equal to the sequential
	// walk and falls back.
	sawMid bool
	// isa is the backend the walk decoded with; the inference passes
	// use it for the gate-register test and backward-scan bounds.
	isa arch.ISA
}

// Covered reports whether addr lies inside any decoded instruction.
func (r *Result) Covered(addr uint64) bool {
	_, ok := r.owner.get(addr)
	return ok
}

// InstStartAt returns the start of the instruction covering addr.
func (r *Result) InstStartAt(addr uint64) (uint64, bool) {
	return r.owner.get(addr)
}

// TableReads returns the data intervals consulted by jump-table
// resolution during the walk that produced this result.
func (r *Result) TableReads() []Interval {
	return append([]Interval(nil), r.tableReads...)
}

// InstFacts returns the coverage skeleton of the result: every decoded
// instruction's start and length, sorted by address.
func (r *Result) InstFacts() []InstFact {
	out := make([]InstFact, 0, len(r.Insts))
	for a, in := range r.Insts {
		out = append(out, InstFact{a, uint16(in.Len)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// SawMid reports whether any walk behind this result arrived in the
// middle of a previously decoded instruction — the one order-sensitive
// walk event invisible in the final instruction set. Delta re-analysis
// refuses to reuse verdicts derived from such a walk.
func (r *Result) SawMid() bool { return r.sawMid }

// SortedFuncs returns detected function starts in address order.
func (r *Result) SortedFuncs() []uint64 {
	out := make([]uint64, 0, len(r.Funcs))
	for a := range r.Funcs {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// rdiState tracks the §IV-C backward-slice approximation of the first
// argument register along a straight-line decode path.
type rdiState uint8

const (
	rdiUnknown rdiState = iota
	rdiZero
	rdiNonZero
)

// Recursive runs recursive descent from the seed addresses. With
// opts.NonReturning it iterates disassembly and non-returning inference
// to a fixed point so fall-through never crosses a call that cannot
// return (§IV-C).
//
// Each call creates a throwaway Session, so every decode starts cold;
// iterative consumers should hold a Session and use Extend/Retract/
// Probe to reuse decodes across rounds.
func Recursive(img *elfx.Image, seeds []uint64, opts Options) *Result {
	return NewSession(img, opts).Extend(seeds)
}

func setsEqual(a, b map[uint64]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
