package disasm

import (
	"encoding/binary"
	"fmt"
	"sort"

	"fetch/internal/arch"
)

// This file implements the function-local replay machinery behind
// delta re-analysis (ROADMAP item 3): re-running the committed-pass
// walk restricted to one FDE-delimited byte range, and evaluating the
// non-return verdicts of that range's entries, against an explicit
// verdict environment. The delta path analyzes only the ranges whose
// bytes changed between two builds and compares the local facts
// against the recorded ones; everything here therefore mirrors the
// committed pass (Session.pass) and the inference walks (funcReturns,
// isCondNonRet) instruction for instruction. Any situation the local
// model cannot reproduce faithfully — a run crossing the range
// boundary, an instruction straddling the range end, a mid-instruction
// arrival — is reported as a flag, and the caller falls back to a cold
// run: fidelity gaps cost time, never correctness.

// InstFact is the persisted skeleton of one decoded instruction:
// enough to rebuild coverage (owner) queries without re-decoding.
type InstFact struct {
	Addr uint64
	Len  uint16
}

// InstFacts is a persistable instruction skeleton. It carries a packed
// gob form — delta-varint addresses, varint lengths — because traces
// hold one fact per committed instruction and the generic per-struct
// gob path dominates trace decode time on large binaries.
type InstFacts []InstFact

// GobEncode packs the facts as (count, then per fact: addr delta from
// the previous fact, length), all uvarints.
func (f InstFacts) GobEncode() ([]byte, error) {
	buf := make([]byte, 0, 10+3*len(f))
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		buf = append(buf, tmp[:binary.PutUvarint(tmp[:], v)]...)
	}
	put(uint64(len(f)))
	prev := uint64(0)
	for _, in := range f {
		if in.Addr < prev {
			return nil, fmt.Errorf("disasm: InstFacts not address-sorted")
		}
		put(in.Addr - prev)
		put(uint64(in.Len))
		prev = in.Addr
	}
	return buf, nil
}

// GobDecode unpacks the GobEncode form.
func (f *InstFacts) GobDecode(b []byte) error {
	rd := func() (uint64, error) {
		v, n := binary.Uvarint(b)
		if n <= 0 {
			return 0, fmt.Errorf("disasm: truncated InstFacts")
		}
		b = b[n:]
		return v, nil
	}
	n, err := rd()
	if err != nil {
		return err
	}
	out := make(InstFacts, 0, n)
	prev := uint64(0)
	for i := uint64(0); i < n; i++ {
		d, err := rd()
		if err != nil {
			return err
		}
		l, err := rd()
		if err != nil {
			return err
		}
		prev += d
		out = append(out, InstFact{Addr: prev, Len: uint16(l)})
	}
	*f = out
	return nil
}

// Interval is a half-open byte range [Lo, Hi).
type Interval struct {
	Lo, Hi uint64
}

// Overlaps reports whether the interval intersects [lo, hi).
func (iv Interval) Overlaps(lo, hi uint64) bool {
	return iv.Lo < hi && lo < iv.Hi
}

// JumpFact is one jmp/jcc instruction whose target lies outside the
// walked range — the raw material of tail-call/merge decisions.
type JumpFact struct {
	Addr   uint64
	Target uint64
	Jcc    bool
}

// LocalFlags mark walk events the local model cannot replay soundly.
type LocalFlags uint8

// Local walk fidelity flags.
const (
	// LocalEscape: a fall-through run reached the range end, or an
	// instruction straddles the range boundary — the walk's
	// continuation depends on bytes outside the range.
	LocalEscape LocalFlags = 1 << iota
	// LocalSawMid: the walk arrived mid-instruction; the union-of-walks
	// order-independence argument no longer holds.
	LocalSawMid
	// LocalVerdictEscape: a verdict evaluation (funcReturns /
	// isCondNonRet mirror) stepped outside the range through an edge
	// the global walk would have followed into foreign code.
	LocalVerdictEscape
)

// LocalFacts are the cross-range-visible outputs of one restricted
// walk under one verdict environment. Two builds whose changed ranges
// produce equal LocalFacts (per environment) are indistinguishable to
// every other function's analysis.
type LocalFacts struct {
	// Insts is the local coverage, sorted by address.
	Insts []InstFact
	// Calls is the sorted set of direct-call targets (function starts
	// this range contributes).
	Calls []uint64
	// Pushes is the sorted set of jcc/jmp/jump-table push targets
	// outside the range (coverage this range contributes elsewhere).
	Pushes []uint64
	// RefCounts counts Refs contributions per target (calls and jumps,
	// in- and out-of-range).
	RefCounts map[uint64]int
	// Consts is the sorted set of mapped pointer constants harvested.
	Consts []uint64
	// TableBases is the sorted set of resolved jump-table base
	// addresses.
	TableBases []uint64
	// TableReads are the data intervals read while resolving jump
	// tables: reused verdicts are only valid while these bytes are
	// unchanged.
	TableReads []Interval
	// JmpOut lists jmp/jcc instructions targeting outside the range,
	// in address order (the tail-call sweep's per-FDE inputs).
	JmpOut []JumpFact
	// Flags are the fidelity flags of the walk itself.
	Flags LocalFlags
}

// Equal reports whether two fact sets are indistinguishable to the
// rest of the analysis: everything except the local instruction
// addresses must match exactly. Insts are intentionally excluded —
// interior layout may shift without any cross-range effect — except
// that delta replay separately substitutes fresh coverage for changed
// ranges.
func (f *LocalFacts) Equal(g *LocalFacts) bool {
	if f.Flags != g.Flags {
		return false
	}
	if !u64SlicesEqual(f.Calls, g.Calls) || !u64SlicesEqual(f.Pushes, g.Pushes) ||
		!u64SlicesEqual(f.Consts, g.Consts) || !u64SlicesEqual(f.TableBases, g.TableBases) {
		return false
	}
	if len(f.RefCounts) != len(g.RefCounts) {
		return false
	}
	for t, n := range f.RefCounts {
		if g.RefCounts[t] != n {
			return false
		}
	}
	if len(f.JmpOut) != len(g.JmpOut) {
		return false
	}
	for i := range f.JmpOut {
		if f.JmpOut[i].Target != g.JmpOut[i].Target || f.JmpOut[i].Jcc != g.JmpOut[i].Jcc {
			return false
		}
	}
	return true
}

func u64SlicesEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// LocalWalk is the result of one restricted walk: the public facts
// plus the private instruction state the verdict evaluators run over.
type LocalWalk struct {
	rng   FuncRange
	res   *Result
	facts *LocalFacts
}

// Facts returns the walk's cross-visible facts.
func (lw *LocalWalk) Facts() *LocalFacts { return lw.facts }

// WalkLocal runs the committed-pass recursive descent restricted to
// [rng.Start, rng.End), from the given entry addresses, under the
// given non-return environment. It mirrors Session.pass exactly —
// same gate rules, same rdi tracking, same jump-table analysis — but
// records pushes that leave the range as facts instead of following
// them, exactly as the global walk's contribution of this range would
// appear to every other range. Decodes go through the session cache.
func (s *Session) WalkLocal(rng FuncRange, entries []uint64,
	nonRet, condNonRet map[uint64]bool) *LocalWalk {

	img := s.img
	facts := &LocalFacts{RefCounts: make(map[uint64]int)}
	res := &Result{
		isa:        s.isa,
		Insts:      make(map[uint64]*arch.Inst),
		Funcs:      make(map[uint64]bool),
		Refs:       make(map[uint64][]uint64),
		Constants:  make(map[uint64]bool),
		NonRet:     nonRet,
		CondNonRet: condNonRet,
		JTTargets:  make(map[uint64][]uint64),
		TableBases: make(map[uint64]bool),
		owner:      ownerMap{m: make(map[uint64]uint64)},
	}
	inRange := func(a uint64) bool { return a >= rng.Start && a < rng.End }

	type workItem struct {
		addr uint64
		rdi  rdiState
	}
	var work []workItem
	pushed := map[uint64]bool{}
	push := func(addr uint64, rdi rdiState) {
		// Out-of-range pushes become facts; in-range pushes are walked.
		if !inRange(addr) {
			facts.Pushes = append(facts.Pushes, addr)
			return
		}
		if !pushed[addr] {
			pushed[addr] = true
			work = append(work, workItem{addr, rdi})
		}
	}
	addRef := func(target, from uint64) {
		res.Refs[target] = append(res.Refs[target], from)
		facts.RefCounts[target]++
	}

	for _, sd := range entries {
		res.Funcs[sd] = true
		if !inRange(sd) {
			continue
		}
		if !pushed[sd] {
			pushed[sd] = true
			work = append(work, workItem{sd, rdiUnknown})
		}
	}

	for len(work) > 0 {
		item := work[len(work)-1]
		work = work[:len(work)-1]
		addr := item.addr
		rdi := item.rdi

		for {
			if !inRange(addr) {
				// A fall-through run reached the boundary: the global
				// walk would continue into the neighbor's bytes.
				facts.Flags |= LocalEscape
				break
			}
			if _, seen := res.Insts[addr]; seen {
				break
			}
			if owner, mid := res.owner.get(addr); mid && owner != addr {
				res.sawMid = true
				facts.Flags |= LocalSawMid
				break
			}
			if !img.IsExec(addr) {
				break
			}
			e := s.decode(addr)
			if e.kind != decodeOK {
				break
			}
			in := e.inst
			if in.Next() > rng.End {
				// Straddles the range end: the decode itself reads
				// neighbor bytes.
				facts.Flags |= LocalEscape
				break
			}
			res.Insts[addr] = in
			res.owner.setRange(addr, int(in.Len))
			for _, c := range e.consts {
				res.Constants[c] = true
			}

			switch e.rdi {
			case arch.GateSetUnknown:
				rdi = rdiUnknown
			case arch.GateSetZero:
				rdi = rdiZero
			case arch.GateSetNonZero:
				rdi = rdiNonZero
			}

			switch in.Op {
			case arch.OpCall:
				t := in.Target
				if !img.IsExec(t) {
					break // falls through below, like the global walk
				}
				addRef(t, in.Addr)
				res.Funcs[t] = true
				facts.Calls = append(facts.Calls, t)
				push(t, rdiUnknown)
				if nonRet[t] {
					goto pathDone
				}
				if condNonRet[t] && rdi != rdiZero {
					goto pathDone
				}
				rdi = rdiUnknown
				addr = in.Next()
				continue
			case arch.OpJcc:
				t := in.Target
				if img.IsExec(t) {
					addRef(t, in.Addr)
					push(t, rdiUnknown)
				}
				if !inRange(t) {
					facts.JmpOut = append(facts.JmpOut, JumpFact{in.Addr, t, true})
				}
				addr = in.Next()
				continue
			case arch.OpJmp:
				t := in.Target
				if img.IsExec(t) {
					addRef(t, in.Addr)
					push(t, rdiUnknown)
				}
				if !inRange(t) {
					facts.JmpOut = append(facts.JmpOut, JumpFact{in.Addr, t, false})
				}
				goto pathDone
			case arch.OpJmpInd:
				targets := s.isa.ResolveJumpTable(jtCtx{img: img, isa: s.isa, res: res}, in, maxJumpTableEntries)
				if len(targets) > 0 {
					res.JTTargets[in.Addr] = targets
				}
				for _, t := range targets {
					addRef(t, in.Addr)
					push(t, rdiUnknown)
				}
				goto pathDone
			case arch.OpRet, arch.OpUd2, arch.OpHlt, arch.OpInt3:
				goto pathDone
			}
			addr = in.Next()
		}
	pathDone:
	}

	// Project the private result into the sorted fact lists.
	facts.Insts = make([]InstFact, 0, len(res.Insts))
	for a, in := range res.Insts {
		facts.Insts = append(facts.Insts, InstFact{a, uint16(in.Len)})
	}
	sort.Slice(facts.Insts, func(i, j int) bool { return facts.Insts[i].Addr < facts.Insts[j].Addr })
	facts.Calls = sortedDistinct(facts.Calls)
	facts.Pushes = sortedDistinct(facts.Pushes)
	for c := range res.Constants {
		facts.Consts = append(facts.Consts, c)
	}
	sort.Slice(facts.Consts, func(i, j int) bool { return facts.Consts[i] < facts.Consts[j] })
	for b := range res.TableBases {
		facts.TableBases = append(facts.TableBases, b)
	}
	sort.Slice(facts.TableBases, func(i, j int) bool { return facts.TableBases[i] < facts.TableBases[j] })
	facts.TableReads = append(facts.TableReads, res.tableReads...)
	sort.Slice(facts.JmpOut, func(i, j int) bool { return facts.JmpOut[i].Addr < facts.JmpOut[j].Addr })

	return &LocalWalk{rng: rng, res: res, facts: facts}
}

func sortedDistinct(in []uint64) []uint64 {
	if len(in) == 0 {
		return nil
	}
	sort.Slice(in, func(i, j int) bool { return in[i] < in[j] })
	out := in[:1]
	for _, v := range in[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// EntryReturns mirrors funcReturns for one entry of the walked range
// against an explicit returns assignment for foreign functions.
// returnsOf answers "does function t return" for delegated call and
// tail-jump targets; isFunc answers global function-set membership
// (the tail-jump gate). queried collects every target whose returnsOf
// or isFunc answer influenced the outcome, so the caller can reject
// environments where those answers were iteration-dependent. ok=false
// means the evaluation escaped the range and the verdict cannot be
// derived locally.
func (lw *LocalWalk) EntryReturns(entry uint64,
	returnsOf func(uint64) bool, isFunc func(uint64) bool) (verdict bool, queried []uint64, ok bool) {

	res := lw.res
	inRange := func(a uint64) bool { return a >= lw.rng.Start && a < lw.rng.End }
	query := func(t uint64) { queried = append(queried, t) }
	seen := map[uint64]bool{}
	stack := []uint64{entry}
	for len(stack) > 0 {
		a := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for {
			if seen[a] {
				break
			}
			in, found := res.Insts[a]
			if !found {
				if inRange(a) {
					break // no coverage here, same as the global walk
				}
				return false, queried, false // escaped
			}
			seen[a] = true
			switch in.Op {
			case arch.OpRet:
				return true, queried, true
			case arch.OpJcc:
				stack = append(stack, in.Target)
				a = in.Next()
				continue
			case arch.OpJmp:
				t := in.Target
				query(t)
				if isFunc(t) && t != entry {
					if returnsOf(t) {
						return true, queried, true
					}
				} else {
					stack = append(stack, t)
				}
			case arch.OpJmpInd:
				for _, t := range res.JTTargets[a] {
					stack = append(stack, t)
				}
			case arch.OpCall:
				query(in.Target)
				if returnsOf(in.Target) {
					a = in.Next()
					continue
				}
			case arch.OpUd2, arch.OpHlt, arch.OpInt3:
				// Terminal.
			default:
				a = in.Next()
				continue
			}
			break
		}
	}
	return false, queried, true
}

// CondFacts mirrors isCondNonRet's environment-independent skeleton
// for one entry: whether the entry block tests the first argument, and
// the set of call targets reachable by the body walk (which ignores
// gates). The verdict under any environment is then
// hasTest && (targets ∩ nonRet ≠ ∅). queried collects function-set
// membership queries; ok=false means the walk escaped the range.
func (lw *LocalWalk) CondFacts(entry uint64, isFunc func(uint64) bool) (hasTest bool, bodyCalls []uint64, queried []uint64, ok bool) {
	res := lw.res
	inRange := func(a uint64) bool { return a >= lw.rng.Start && a < lw.rng.End }

	a := entry
	gate := res.isa.GateReg()
	for k := 0; k < 3; k++ {
		in, found := res.Insts[a]
		if !found {
			return false, nil, nil, true
		}
		if arch.IsGateTest(in, gate) {
			hasTest = true
			break
		}
		if in.IsBranch() || in.IsCall() {
			return false, nil, nil, true
		}
		a = in.Next()
	}
	if !hasTest {
		return false, nil, nil, true
	}

	seen := map[uint64]bool{}
	stack := []uint64{entry}
	for len(stack) > 0 {
		a := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for {
			if seen[a] {
				break
			}
			in, found := res.Insts[a]
			if !found {
				if inRange(a) {
					break
				}
				return false, nil, nil, false // escaped
			}
			seen[a] = true
			if in.Op == arch.OpCall {
				bodyCalls = append(bodyCalls, in.Target)
				a = in.Next()
				continue
			}
			if in.Op == arch.OpJcc {
				stack = append(stack, in.Target)
				a = in.Next()
				continue
			}
			if in.Op == arch.OpJmp {
				queried = append(queried, in.Target)
				if !isFunc(in.Target) {
					stack = append(stack, in.Target)
				}
				break
			}
			if in.Terminates() || in.Op == arch.OpInt3 {
				break
			}
			a = in.Next()
			continue
		}
	}
	return true, sortedDistinct(bodyCalls), queried, true
}

// BuildCoverage constructs a coverage-only Result from persisted
// instruction facts: InstStartAt/Covered answer exactly as they would
// on the original result, with no decoded instruction values behind
// them. Delta replay uses it to answer the committed-state queries of
// candidate re-validation (seed rules and phase-overlap checks).
// It builds the dense owner form directly — one span per address
// cluster — because the sparse map costs one insert per covered byte,
// which dominates delta-replay time on large binaries.
func BuildCoverage(facts []InstFact) *Result {
	if !sort.SliceIsSorted(facts, func(i, j int) bool { return facts[i].Addr < facts[j].Addr }) {
		sorted := append([]InstFact(nil), facts...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Addr < sorted[j].Addr })
		facts = sorted
	}
	res := &Result{}
	const maxGap = 1 << 16 // start a new span across section-sized holes
	for i := 0; i < len(facts); {
		base := facts[i].Addr
		end := base
		j := i
		for j < len(facts) && facts[j].Addr <= end+maxGap {
			if e := facts[j].Addr + uint64(facts[j].Len); e > end {
				end = e
			}
			j++
		}
		res.owner.spans = append(res.owner.spans, newOwnerSpan(base, int(end-base)))
		sp := &res.owner.spans[len(res.owner.spans)-1]
		for k := i; k < j; k++ {
			d := facts[k].Addr - base
			v := int32(d) + 1
			for b := uint64(0); b < uint64(facts[k].Len); b++ {
				res.owner.chunk(sp, d+b)[(d+b)&ownerChunkMask] = v
			}
		}
		i = j
	}
	return res
}
