package callconv

import (
	"testing"

	"fetch/internal/elfx"
	"fetch/internal/groundtruth"
	"fetch/internal/synth"
	"fetch/internal/x64"
)

// imageFromAsm wraps assembled bytes in a single-section image.
func imageFromAsm(t *testing.T, build func(a *x64.Asm)) *elfx.Image {
	t.Helper()
	var a x64.Asm
	build(&a)
	code, _, err := a.Finish()
	if err != nil {
		t.Fatalf("asm: %v", err)
	}
	return &elfx.Image{Sections: []*elfx.Section{{
		Name: ".text", Addr: 0x1000, Data: code,
		Flags: elfx.FlagAlloc | elfx.FlagExec,
	}}}
}

func TestValidateAcceptsStandardPrologue(t *testing.T) {
	im := imageFromAsm(t, func(a *x64.Asm) {
		a.PushReg(x64.RBP)
		a.MovRegReg(x64.RBP, x64.RSP)
		a.SubRSP(0x20)
		a.MovRegReg(x64.RAX, x64.RDI) // arg read: fine
		a.AddRSP(0x20)
		a.PopReg(x64.RBP)
		a.Ret()
	})
	if !Validate(im, 0x1000) {
		t.Fatal("standard prologue rejected")
	}
}

func TestValidateAcceptsFramelessArgReader(t *testing.T) {
	im := imageFromAsm(t, func(a *x64.Asm) {
		a.MovRegReg(x64.RAX, x64.RDI)
		a.AddRegReg(x64.RAX, x64.RSI)
		a.Ret()
	})
	if !Validate(im, 0x1000) {
		t.Fatal("frameless arg reader rejected")
	}
}

func TestValidateRejectsCalleeSavedRead(t *testing.T) {
	im := imageFromAsm(t, func(a *x64.Asm) {
		a.MovRegReg(x64.RAX, x64.RBX) // rbx not initialized
		a.Ret()
	})
	if Validate(im, 0x1000) {
		t.Fatal("rbx read at entry accepted")
	}
}

func TestValidateRejectsRBPRead(t *testing.T) {
	im := imageFromAsm(t, func(a *x64.Asm) {
		a.MovRegMem(x64.RDX, x64.RBP, -8) // reads the caller's rbp
		a.Ret()
	})
	if Validate(im, 0x1000) {
		t.Fatal("rbp-relative read at entry accepted")
	}
}

func TestValidatePushIsASaveNotAUse(t *testing.T) {
	im := imageFromAsm(t, func(a *x64.Asm) {
		a.PushReg(x64.RBX) // saving callee-saved: not a use
		a.PushReg(x64.R12)
		a.MovRegReg(x64.RBX, x64.RDI)
		a.MovRegReg(x64.RAX, x64.RBX) // now initialized
		a.PopReg(x64.R12)
		a.PopReg(x64.RBX)
		a.Ret()
	})
	if !Validate(im, 0x1000) {
		t.Fatal("push-save pattern rejected")
	}
}

func TestValidateCallDefinesCallerSaved(t *testing.T) {
	im := imageFromAsm(t, func(a *x64.Asm) {
		a.CallSym("x")                // unpatched rel32 == call next
		a.MovRegReg(x64.RDX, x64.RAX) // rax defined by the call
		a.Ret()
	})
	if !Validate(im, 0x1000) {
		t.Fatal("post-call rax read rejected")
	}
}

func TestValidateRejectsUnmappedAndGarbage(t *testing.T) {
	im := imageFromAsm(t, func(a *x64.Asm) { a.Ret() })
	if Validate(im, 0x9999999) {
		t.Fatal("unmapped address accepted")
	}
	bad := &elfx.Image{Sections: []*elfx.Section{{
		Name: ".text", Addr: 0x1000,
		Data:  []byte{0x06, 0x06, 0x06}, // invalid opcodes
		Flags: elfx.FlagAlloc | elfx.FlagExec,
	}}}
	if Validate(bad, 0x1000) {
		t.Fatal("invalid opcode accepted")
	}
}

func TestValidateOnSynthesizedBinaries(t *testing.T) {
	cfg := synth.DefaultConfig("cc-test", 42, synth.O2, synth.GCC, synth.LangC)
	cfg.IndirectOnlyRate = 0.05
	im, truth, err := synth.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	// All true function entries validate.
	for _, fn := range truth.Funcs {
		if !Validate(im, fn.Addr) {
			t.Errorf("true entry %s at %#x rejected", fn.Name, fn.Addr)
		}
	}
	// Non-contiguous cold parts pass the check, exactly like the
	// paper's corpus (their removal happens via Algorithm 1 merging,
	// and the FDE-start convention sweep must single out only the
	// hand-written errors).
	for _, p := range truth.Parts {
		if !Validate(im, p.Addr) {
			t.Errorf("cold part %s at %#x rejected — the §V-B sweep would over-remove", p.Name, p.Addr)
		}
	}
	// Hand-written CFI error starts (one byte early) must fail.
	for _, a := range truth.CFIErrorAddrs {
		if Validate(im, a) {
			t.Errorf("CFI-error FDE start %#x accepted", a)
		}
	}
}

func TestValidateCFIErrorAddrsAcrossSeeds(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		cfg := synth.DefaultConfig("cc-seed", seed, synth.O3, synth.Clang, synth.LangCPP)
		cfg.CFIErrorCount = 2
		im, truth, err := synth.Generate(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, a := range truth.CFIErrorAddrs {
			if Validate(im, a) {
				t.Errorf("seed %d: CFI-error start %#x accepted", seed, a)
			}
		}
		_ = groundtruth.ClassNormal
	}
}
