// Package callconv implements the calling-convention validation rule of
// §IV-E: at a legitimate System-V x64 function entry, every register
// other than the integer argument registers (rdi, rsi, rdx, rcx, r8,
// r9) and the stack pointer must be initialized before it is used.
// Saving a callee-saved register with a push does not count as a use.
//
// The rule rejects pointers into the middle of functions (which read
// live callee-saved or temporary state) and the hand-written FDE
// errors of §V-A (whose skewed entry misdecodes into instructions that
// read uninitialized registers), while accepting real entries.
package callconv

import (
	"fetch/internal/elfx"
	"fetch/internal/x64"
)

// maxWalk bounds the validation walk; convention violations show up
// within the first few instructions of a bogus "entry".
const maxWalk = 48

// Validate reports whether the code at addr can plausibly be a function
// entry under the §IV-E register-initialization rule. The walk follows
// straight-line flow (continuing past conditional branches on the
// fall-through side and through calls, which define the caller-saved
// set) and ends at any unconditional transfer.
func Validate(img *elfx.Image, addr uint64) bool {
	var written x64.RegSet
	// The stack pointer is always live. rbp is deliberately NOT
	// pre-initialized: reading the caller's frame pointer at entry
	// (other than push-saving it) is the tell of a mid-function
	// address.
	written = written.Add(x64.RSP)

	for steps := 0; steps < maxWalk; steps++ {
		window, ok := img.BytesToSectionEnd(addr)
		if !ok {
			return false
		}
		in, err := x64.Decode(window, addr)
		if err != nil {
			return false
		}
		for r := x64.RAX; r <= x64.R15; r++ {
			if !in.Reads().Has(r) {
				continue
			}
			if x64.IsArgumentReg(r) || written.Has(r) {
				continue
			}
			return false
		}
		written = written.Union(in.Writes())
		if in.Op == x64.OpEnter || (in.Op == x64.OpMov && len(in.Args) == 2 &&
			in.Args[0].Kind == x64.KindReg && in.Args[0].Reg == x64.RBP) {
			written = written.Add(x64.RBP)
		}
		switch in.Op {
		case x64.OpRet, x64.OpJmp, x64.OpJmpInd, x64.OpUd2, x64.OpHlt, x64.OpInt3:
			return true
		}
		addr = in.Next()
	}
	return true
}
