// Package callconv implements the calling-convention validation rule of
// §IV-E: at a legitimate function entry, every register other than the
// ABI's integer argument registers (rdi..r9 on System-V x64, x0..x7 on
// aarch64) and the stack pointer must be initialized before it is used.
// Saving a callee-saved register with a push does not count as a use.
//
// The rule rejects pointers into the middle of functions (which read
// live callee-saved or temporary state) and the hand-written FDE
// errors of §V-A (whose skewed entry misdecodes into instructions that
// read uninitialized registers), while accepting real entries.
package callconv

import (
	"fetch/internal/arch"
	"fetch/internal/elfx"
)

// maxWalk bounds the validation walk; convention violations show up
// within the first few instructions of a bogus "entry".
const maxWalk = 48

// Validate reports whether the code at addr can plausibly be a function
// entry under the §IV-E register-initialization rule. The walk follows
// straight-line flow (continuing past conditional branches on the
// fall-through side and through calls, which define the caller-saved
// set) and ends at any unconditional transfer.
func Validate(img *elfx.Image, addr uint64) bool {
	isa := img.ISA()
	var written arch.RegSet
	// The stack pointer is always live. The frame register is
	// deliberately NOT pre-initialized: reading the caller's frame
	// pointer at entry (other than push-saving it) is the tell of a
	// mid-function address.
	written = written.Add(isa.SPReg())
	// ABIs with a link register (aarch64) leave the return address in
	// it: a leaf reading it back at RET is a legitimate entry.
	if ra, ok := isa.RetAddrReg(); ok {
		written = written.Add(ra)
	}

	for steps := 0; steps < maxWalk; steps++ {
		window, ok := img.BytesToSectionEnd(addr)
		if !ok {
			return false
		}
		in, err := isa.Decode(window, addr)
		if err != nil {
			return false
		}
		reads := isa.Reads(&in)
		for r := arch.Reg(0); int(r) < isa.RegCount(); r++ {
			if !reads.Has(r) {
				continue
			}
			if isa.IsArgReg(r) || written.Has(r) {
				continue
			}
			return false
		}
		written = written.Union(isa.Writes(&in))
		if in.Op == arch.OpEnter || (in.Op == arch.OpMov && len(in.Args) == 2 &&
			in.Args[0].Kind == arch.KindReg && in.Args[0].Reg == isa.FrameReg()) {
			written = written.Add(isa.FrameReg())
		}
		switch in.Op {
		case arch.OpRet, arch.OpJmp, arch.OpJmpInd, arch.OpUd2, arch.OpHlt, arch.OpInt3:
			return true
		}
		addr = in.Next()
	}
	return true
}
