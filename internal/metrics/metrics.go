// Package metrics scores detections against ground truth using the
// paper's definitions: a false positive is a reported start that is
// not a true function start; a false negative is a true start that was
// not reported. "Full coverage" means zero false negatives on a
// binary; "full accuracy" means zero false positives (§IV, Figure 5).
package metrics

import (
	"sort"

	"fetch/internal/groundtruth"
)

// Eval is the per-binary score of one detection.
type Eval struct {
	TP int
	FP int
	FN int
	// FPAddrs and FNAddrs list the offending addresses (sorted).
	FPAddrs []uint64
	FNAddrs []uint64
}

// FullCoverage reports zero false negatives.
func (e Eval) FullCoverage() bool { return e.FN == 0 }

// FullAccuracy reports zero false positives.
func (e Eval) FullAccuracy() bool { return e.FP == 0 }

// Precision returns TP/(TP+FP), 1 when nothing was reported.
func (e Eval) Precision() float64 {
	if e.TP+e.FP == 0 {
		return 1
	}
	return float64(e.TP) / float64(e.TP+e.FP)
}

// Recall returns TP/(TP+FN), 1 when there was nothing to find.
func (e Eval) Recall() float64 {
	if e.TP+e.FN == 0 {
		return 1
	}
	return float64(e.TP) / float64(e.TP+e.FN)
}

// Evaluate scores a detected start set against the truth.
func Evaluate(funcs map[uint64]bool, truth *groundtruth.Truth) Eval {
	var e Eval
	for a := range funcs {
		if truth.IsStart(a) {
			e.TP++
		} else {
			e.FP++
			e.FPAddrs = append(e.FPAddrs, a)
		}
	}
	for _, fn := range truth.Funcs {
		if !funcs[fn.Addr] {
			e.FN++
			e.FNAddrs = append(e.FNAddrs, fn.Addr)
		}
	}
	sort.Slice(e.FPAddrs, func(i, j int) bool { return e.FPAddrs[i] < e.FPAddrs[j] })
	sort.Slice(e.FNAddrs, func(i, j int) bool { return e.FNAddrs[i] < e.FNAddrs[j] })
	return e
}

// Aggregate sums per-binary scores and counts full-coverage /
// full-accuracy binaries.
type Aggregate struct {
	Binaries     int
	TP, FP, FN   int
	FullCoverage int
	FullAccuracy int
}

// Add folds one binary's score into the aggregate.
func (a *Aggregate) Add(e Eval) {
	a.Binaries++
	a.TP += e.TP
	a.FP += e.FP
	a.FN += e.FN
	if e.FullCoverage() {
		a.FullCoverage++
	}
	if e.FullAccuracy() {
		a.FullAccuracy++
	}
}
