package metrics

import (
	"testing"
	"testing/quick"

	"fetch/internal/groundtruth"
)

func sampleTruth() *groundtruth.Truth {
	return &groundtruth.Truth{
		Funcs: []groundtruth.Func{
			{Name: "a", Addr: 0x100},
			{Name: "b", Addr: 0x200},
			{Name: "c", Addr: 0x300},
		},
		Parts: []groundtruth.Part{
			{Name: "a.cold", Addr: 0x400, Parent: 0x100},
		},
	}
}

func TestEvaluateExact(t *testing.T) {
	truth := sampleTruth()
	e := Evaluate(map[uint64]bool{0x100: true, 0x200: true, 0x300: true}, truth)
	if e.TP != 3 || e.FP != 0 || e.FN != 0 {
		t.Fatalf("exact: %+v", e)
	}
	if !e.FullCoverage() || !e.FullAccuracy() {
		t.Fatal("exact detection should be full coverage and accuracy")
	}
	if e.Precision() != 1 || e.Recall() != 1 {
		t.Fatalf("precision/recall = %v/%v", e.Precision(), e.Recall())
	}
}

func TestEvaluateMixed(t *testing.T) {
	truth := sampleTruth()
	// Part start detected (FP), one function missed (FN).
	e := Evaluate(map[uint64]bool{0x100: true, 0x200: true, 0x400: true}, truth)
	if e.TP != 2 || e.FP != 1 || e.FN != 1 {
		t.Fatalf("mixed: %+v", e)
	}
	if e.FullCoverage() || e.FullAccuracy() {
		t.Fatal("mixed detection cannot be full anything")
	}
	if len(e.FPAddrs) != 1 || e.FPAddrs[0] != 0x400 {
		t.Fatalf("FPAddrs = %#x", e.FPAddrs)
	}
	if len(e.FNAddrs) != 1 || e.FNAddrs[0] != 0x300 {
		t.Fatalf("FNAddrs = %#x", e.FNAddrs)
	}
}

func TestEvaluateEmptyDetection(t *testing.T) {
	truth := sampleTruth()
	e := Evaluate(map[uint64]bool{}, truth)
	if e.TP != 0 || e.FP != 0 || e.FN != 3 {
		t.Fatalf("empty: %+v", e)
	}
	if e.Precision() != 1 {
		t.Fatal("empty detection has vacuous precision 1")
	}
	if e.Recall() != 0 {
		t.Fatal("empty detection has recall 0")
	}
}

func TestAggregate(t *testing.T) {
	truth := sampleTruth()
	var agg Aggregate
	agg.Add(Evaluate(map[uint64]bool{0x100: true, 0x200: true, 0x300: true}, truth))
	agg.Add(Evaluate(map[uint64]bool{0x100: true, 0x400: true}, truth))
	if agg.Binaries != 2 {
		t.Fatalf("binaries = %d", agg.Binaries)
	}
	if agg.FullCoverage != 1 || agg.FullAccuracy != 1 {
		t.Fatalf("full counts = %d/%d", agg.FullCoverage, agg.FullAccuracy)
	}
	if agg.TP != 4 || agg.FP != 1 || agg.FN != 2 {
		t.Fatalf("sums = %d/%d/%d", agg.TP, agg.FP, agg.FN)
	}
}

// TestQuickEvaluateInvariants property-tests TP+FN == |truth| and that
// every address is classified exactly once.
func TestQuickEvaluateInvariants(t *testing.T) {
	truth := sampleTruth()
	f := func(sel uint8) bool {
		det := map[uint64]bool{}
		addrs := []uint64{0x100, 0x200, 0x300, 0x400, 0x500}
		for k, a := range addrs {
			if sel&(1<<k) != 0 {
				det[a] = true
			}
		}
		e := Evaluate(det, truth)
		if e.TP+e.FN != len(truth.Funcs) {
			return false
		}
		if e.TP+e.FP != len(det) {
			return false
		}
		return len(e.FPAddrs) == e.FP && len(e.FNAddrs) == e.FN
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
