package x64

import (
	"testing"
)

// decodeOne is a test helper that decodes a byte sequence and fails the
// test on error or on a length mismatch with the input.
func decodeOne(t *testing.T, b []byte, addr uint64) Inst {
	t.Helper()
	in, err := Decode(b, addr)
	if err != nil {
		t.Fatalf("Decode(% x) error: %v", b, err)
	}
	if in.Len != len(b) {
		t.Fatalf("Decode(% x) len = %d, want %d", b, in.Len, len(b))
	}
	return in
}

func TestDecodeBasicLengths(t *testing.T) {
	tests := []struct {
		name  string
		bytes []byte
		op    Op
	}{
		{"push rbp", []byte{0x55}, OpPush},
		{"push r12", []byte{0x41, 0x54}, OpPush},
		{"pop rbp", []byte{0x5D}, OpPop},
		{"mov rbp,rsp", []byte{0x48, 0x89, 0xE5}, OpMov},
		{"sub rsp,8", []byte{0x48, 0x83, 0xEC, 0x08}, OpSub},
		{"sub rsp,0x188", []byte{0x48, 0x81, 0xEC, 0x88, 0x01, 0x00, 0x00}, OpSub},
		{"add rsp,8", []byte{0x48, 0x83, 0xC4, 0x08}, OpAdd},
		{"ret", []byte{0xC3}, OpRet},
		{"ret imm16", []byte{0xC2, 0x10, 0x00}, OpRet},
		{"leave", []byte{0xC9}, OpLeave},
		{"nop", []byte{0x90}, OpNop},
		{"nop4", []byte{0x0F, 0x1F, 0x40, 0x00}, OpNop},
		{"nop8", []byte{0x0F, 0x1F, 0x84, 0x00, 0x00, 0x00, 0x00, 0x00}, OpNop},
		{"int3", []byte{0xCC}, OpInt3},
		{"ud2", []byte{0x0F, 0x0B}, OpUd2},
		{"hlt", []byte{0xF4}, OpHlt},
		{"syscall", []byte{0x0F, 0x05}, OpSyscall},
		{"endbr64", []byte{0xF3, 0x0F, 0x1E, 0xFA}, OpEndbr64},
		{"call rel32", []byte{0xE8, 0x00, 0x01, 0x00, 0x00}, OpCall},
		{"jmp rel32", []byte{0xE9, 0xFB, 0xFF, 0xFF, 0xFF}, OpJmp},
		{"jmp rel8", []byte{0xEB, 0x05}, OpJmp},
		{"je rel8", []byte{0x74, 0x10}, OpJcc},
		{"jne rel32", []byte{0x0F, 0x85, 0x00, 0x02, 0x00, 0x00}, OpJcc},
		{"xor eax,eax", []byte{0x31, 0xC0}, OpXor},
		{"mov eax,imm32", []byte{0xB8, 0x2A, 0x00, 0x00, 0x00}, OpMov},
		{"movabs rax,imm64", []byte{0x48, 0xB8, 1, 2, 3, 4, 5, 6, 7, 8}, OpMov},
		{"lea rax,[rip+0x100]", []byte{0x48, 0x8D, 0x05, 0x00, 0x01, 0x00, 0x00}, OpLea},
		{"mov rax,[rbp-8]", []byte{0x48, 0x8B, 0x45, 0xF8}, OpMov},
		{"mov [rsp+0x10],rdi", []byte{0x48, 0x89, 0x7C, 0x24, 0x10}, OpMov},
		{"cmp rdi,imm8", []byte{0x48, 0x83, 0xFF, 0x05}, OpCmp},
		{"test rax,rax", []byte{0x48, 0x85, 0xC0}, OpTest},
		{"call rax", []byte{0xFF, 0xD0}, OpCallInd},
		{"jmp rax", []byte{0xFF, 0xE0}, OpJmpInd},
		{"jmp [rax*8+disp32]", []byte{0xFF, 0x24, 0xC5, 0x00, 0x10, 0x40, 0x00}, OpJmpInd},
		{"push imm32", []byte{0x68, 0x44, 0x33, 0x22, 0x11}, OpPush},
		{"push imm8", []byte{0x6A, 0x01}, OpPush},
		{"movsxd rax,[rdx+rax*4]", []byte{0x48, 0x63, 0x04, 0x82}, OpMovsxd},
		{"movzx eax,byte[rdi]", []byte{0x0F, 0xB6, 0x07}, OpMovzx},
		{"imul rax,rbx", []byte{0x48, 0x0F, 0xAF, 0xC3}, OpImul},
		{"imul rax,rbx,imm8", []byte{0x48, 0x6B, 0xC3, 0x07}, OpImul},
		{"cdq", []byte{0x99}, OpCwd},
		{"cmove rax,rbx", []byte{0x48, 0x0F, 0x44, 0xC3}, OpCmovcc},
		{"sete al", []byte{0x0F, 0x94, 0xC0}, OpSetcc},
		{"shl rax,3", []byte{0x48, 0xC1, 0xE0, 0x03}, OpShl},
		{"and rsp,-16", []byte{0x48, 0x83, 0xE4, 0xF0}, OpAnd},
		{"enter", []byte{0xC8, 0x20, 0x00, 0x00}, OpEnter},
		{"xchg ax nop pause", []byte{0xF3, 0x90}, OpNop},
		{"rep movsb", []byte{0xF3, 0xA4}, OpMovStr},
		{"cpuid", []byte{0x0F, 0xA2}, OpCpuid},
		{"mov r15,rdi", []byte{0x49, 0x89, 0xFF}, OpMov},
		{"bswap eax", []byte{0x0F, 0xC8}, OpBswap},
		{"idiv rbx", []byte{0x48, 0xF7, 0xFB}, OpIdiv},
		{"test rdi, imm32", []byte{0x48, 0xF7, 0xC7, 0x01, 0x00, 0x00, 0x00}, OpTest},
		{"neg rax", []byte{0x48, 0xF7, 0xD8}, OpNeg},
		{"inc dword[rax]", []byte{0xFF, 0x00}, OpInc},
		{"seg-prefixed mov fs", []byte{0x64, 0x48, 0x8B, 0x04, 0x25, 0x28, 0x00, 0x00, 0x00}, OpMov},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			in := decodeOne(t, tt.bytes, 0x1000)
			if in.Op != tt.op {
				t.Errorf("op = %v, want %v", in.Op, tt.op)
			}
		})
	}
}

func TestDecodeRelTargets(t *testing.T) {
	tests := []struct {
		name   string
		bytes  []byte
		addr   uint64
		target uint64
	}{
		{"call +0x100", []byte{0xE8, 0x00, 0x01, 0x00, 0x00}, 0x1000, 0x1105},
		{"jmp -5 (self)", []byte{0xE9, 0xFB, 0xFF, 0xFF, 0xFF}, 0x2000, 0x2000},
		{"jmp rel8 +5", []byte{0xEB, 0x05}, 0x3000, 0x3007},
		{"je rel8 -2 (self)", []byte{0x74, 0xFE}, 0x4000, 0x4000},
		{"jne rel32", []byte{0x0F, 0x85, 0x10, 0x00, 0x00, 0x00}, 0x5000, 0x5016},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			in := decodeOne(t, tt.bytes, tt.addr)
			if !in.HasTarget {
				t.Fatal("HasTarget = false")
			}
			if in.Target != tt.target {
				t.Errorf("target = %#x, want %#x", in.Target, tt.target)
			}
		})
	}
}

func TestDecodeInvalid(t *testing.T) {
	invalid := [][]byte{
		{0x06},       // push es (invalid in 64-bit)
		{0x0E},       // push cs
		{0x27},       // daa
		{0x37},       // aaa
		{0x3F},       // aas
		{0x60},       // pusha
		{0x61},       // popa
		{0x62, 0x00}, // EVEX
		{0x82, 0x00, 0x00},
		{0x9A},             // far call
		{0xC4, 0x00, 0x00}, // VEX3
		{0xC5, 0x00},       // VEX2
		{0xD4},             // aam
		{0xD5},             // aad
		{0xEA},             // far jmp
	}
	for _, b := range invalid {
		if _, err := Decode(b, 0); err == nil {
			t.Errorf("Decode(% x) succeeded, want error", b)
		}
	}
}

func TestDecodeTruncated(t *testing.T) {
	full := []byte{0x48, 0x81, 0xEC, 0x88, 0x01, 0x00, 0x00} // sub rsp, 0x188
	for n := 0; n < len(full); n++ {
		if _, err := Decode(full[:n], 0); err == nil {
			t.Errorf("Decode(%d-byte prefix) succeeded, want error", n)
		}
	}
}

func TestDecodeRIPRelative(t *testing.T) {
	// lea rax, [rip+0x36d8b8] at address 0xb1 (paper Figure 4a line 3).
	in := decodeOne(t, []byte{0x48, 0x8D, 0x05, 0xB8, 0xD8, 0x36, 0x00}, 0xB1)
	if in.Op != OpLea {
		t.Fatalf("op = %v, want lea", in.Op)
	}
	if len(in.Args) != 2 || in.Args[1].Kind != KindMem || !in.Args[1].Mem.RIPRel {
		t.Fatalf("want RIP-relative mem operand, got %+v", in.Args)
	}
	consts := in.Constants()
	want := uint64(0xB1 + 7 + 0x36d8b8)
	if len(consts) != 1 || consts[0] != want {
		t.Fatalf("Constants() = %#x, want [%#x]", consts, want)
	}
}

func TestDecodeJumpTableOperand(t *testing.T) {
	// jmp qword [rax*8 + 0x401000]
	in := decodeOne(t, []byte{0xFF, 0x24, 0xC5, 0x00, 0x10, 0x40, 0x00}, 0x1000)
	m, ok := in.IndirectMem()
	if !ok {
		t.Fatal("IndirectMem() not present")
	}
	if m.Base != RegNone || m.Index != RAX || m.Scale != 8 || m.Disp != 0x401000 {
		t.Fatalf("mem = %+v", m)
	}
}

func TestStackDelta(t *testing.T) {
	tests := []struct {
		name  string
		bytes []byte
		delta int64
		known bool
	}{
		{"push rbp", []byte{0x55}, -8, true},
		{"pop rbx", []byte{0x5B}, 8, true},
		{"sub rsp,8", []byte{0x48, 0x83, 0xEC, 0x08}, -8, true},
		{"add rsp,0x188", []byte{0x48, 0x81, 0xC4, 0x88, 0x01, 0x00, 0x00}, 0x188, true},
		{"ret", []byte{0xC3}, 8, true},
		{"call", []byte{0xE8, 0, 0, 0, 0}, 0, true},
		{"mov rax,rbx", []byte{0x48, 0x89, 0xD8}, 0, true},
		{"and rsp,-16", []byte{0x48, 0x83, 0xE4, 0xF0}, 0, false},
		{"leave", []byte{0xC9}, 0, false},
		{"mov rsp,rbp", []byte{0x48, 0x89, 0xEC}, 0, false},
		{"sub rsp,rax", []byte{0x48, 0x29, 0xC4}, 0, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			in := decodeOne(t, tt.bytes, 0)
			d, known := StackDelta(&in)
			if d != tt.delta || known != tt.known {
				t.Errorf("StackDelta() = (%d, %v), want (%d, %v)", d, known, tt.delta, tt.known)
			}
		})
	}
}

func TestReadsWrites(t *testing.T) {
	tests := []struct {
		name   string
		bytes  []byte
		reads  RegSet
		writes RegSet
	}{
		{
			"mov rax,rbx",
			[]byte{0x48, 0x89, 0xD8},
			RegSet(0).Add(RBX),
			RegSet(0).Add(RAX),
		},
		{
			"push rbp (save, not use)",
			[]byte{0x55},
			RegSet(0).Add(RSP),
			RegSet(0).Add(RSP),
		},
		{
			"xor eax,eax (zeroing idiom)",
			[]byte{0x31, 0xC0},
			RegSet(0),
			RegSet(0).Add(RAX),
		},
		{
			"add rax,rbx",
			[]byte{0x48, 0x01, 0xD8},
			RegSet(0).Add(RAX).Add(RBX),
			RegSet(0).Add(RAX),
		},
		{
			"mov rax,[rbx+8]",
			[]byte{0x48, 0x8B, 0x43, 0x08},
			RegSet(0).Add(RBX),
			RegSet(0).Add(RAX),
		},
		{
			"lea rax,[rbx+rcx*2]",
			[]byte{0x48, 0x8D, 0x04, 0x4B},
			RegSet(0).Add(RBX).Add(RCX),
			RegSet(0).Add(RAX),
		},
		{
			"call rel32 clobbers caller-saved",
			[]byte{0xE8, 0, 0, 0, 0},
			RegSet(0),
			RegSet(0).Add(RAX).Add(RCX).Add(RDX).Add(RSI).Add(RDI).Add(R8).Add(R9).Add(R10).Add(R11),
		},
		{
			"jmp rbx reads rbx",
			[]byte{0xFF, 0xE3},
			RegSet(0).Add(RBX),
			RegSet(0),
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			in := decodeOne(t, tt.bytes, 0)
			if got := Reads(&in); got != tt.reads {
				t.Errorf("Reads() = %v, want %v", got, tt.reads)
			}
			if got := Writes(&in); got != tt.writes {
				t.Errorf("Writes() = %v, want %v", got, tt.writes)
			}
		})
	}
}

func TestDecodePaperFigure4(t *testing.T) {
	// The function body from Figure 4a of the paper, byte-for-byte.
	code := []byte{
		0x55,                                     // b0: push rbp
		0x48, 0x8D, 0x05, 0xB8, 0xD8, 0x36, 0x00, // b1: lea rax,[rip+0x36d8b8]
		0x48, 0x8D, 0x6F, 0x50, // b8: lea rbp,[rdi+0x50]
		0x53,                                     // bc: push rbx
		0x48, 0x8D, 0x9F, 0xB0, 0x00, 0x00, 0x00, // bd: lea rbx,[rdi+0xb0]
		0x48, 0x83, 0xEC, 0x08, // c4: sub rsp,0x8
		0x48, 0x89, 0x07, // c8: mov [rdi],rax
		0x0F, 0x1F, 0x44, 0x00, 0x00, // cb: nop dword [rax+rax]
		0x48, 0x83, 0xEB, 0x18, // d0: sub rbx,0x18
		0x48, 0x8B, 0x3B, // d4: mov rdi,[rbx]
		0xE8, 0x00, 0x00, 0x00, 0x00, // d7: call qfree
		0x48, 0x39, 0xDD, // dc: cmp rbp,rbx
		0x75, 0xEF, // df: jne d0
		0x48, 0x83, 0xC4, 0x08, // e1: add rsp,0x8
		0x5B, // e5: pop rbx
		0x5D, // e6: pop rbp
		0xC3, // e7: ret
	}
	insts, err := DecodeAll(code, 0xB0)
	if err != nil {
		t.Fatalf("DecodeAll: %v", err)
	}
	wantAddrs := []uint64{0xB0, 0xB1, 0xB8, 0xBC, 0xBD, 0xC4, 0xC8, 0xCB,
		0xD0, 0xD4, 0xD7, 0xDC, 0xDF, 0xE1, 0xE5, 0xE6, 0xE7}
	if len(insts) != len(wantAddrs) {
		t.Fatalf("decoded %d instructions, want %d", len(insts), len(wantAddrs))
	}
	for k, in := range insts {
		if in.Addr != wantAddrs[k] {
			t.Errorf("inst %d at %#x, want %#x", k, in.Addr, wantAddrs[k])
		}
	}
	// The jne at 0xdf targets 0xd0.
	jne := insts[12]
	if jne.Op != OpJcc || !jne.HasTarget || jne.Target != 0xD0 {
		t.Errorf("jne = %+v, want jcc → 0xd0", jne)
	}
	// Net stack delta over the whole body (push,push,sub 8, add 8,pop,pop,ret)
	var total int64
	for _, in := range insts[:len(insts)-1] { // exclude ret
		d, known := StackDelta(&in)
		if !known {
			t.Errorf("unexpected unknown delta at %#x", in.Addr)
		}
		total += d
	}
	if total != 0 {
		t.Errorf("net stack delta = %d, want 0", total)
	}
}
