package x64

import "fmt"

// Op is the semantic class of a decoded instruction. Instructions the
// analyses do not need in detail decode to OpOther with a correct length.
type Op uint8

// Semantic opcode classes. Enum starts at one so the zero value is
// distinguishable from a real class.
const (
	OpInvalid Op = iota
	OpAdd
	OpSub
	OpAdc
	OpSbb
	OpAnd
	OpOr
	OpXor
	OpCmp
	OpTest
	OpMov
	OpMovsxd
	OpMovzx
	OpMovsx
	OpLea
	OpPush
	OpPop
	OpXchg
	OpInc
	OpDec
	OpNeg
	OpNot
	OpMul
	OpImul
	OpDiv
	OpIdiv
	OpShl
	OpShr
	OpSar
	OpRol
	OpRor
	OpCall    // direct near call, rel32
	OpCallInd // indirect call through register or memory
	OpJmp     // direct unconditional jump, rel8/rel32
	OpJmpInd  // indirect jump through register or memory
	OpJcc     // conditional jump
	OpRet
	OpLeave
	OpEnter
	OpNop
	OpInt3
	OpInt
	OpUd2
	OpHlt
	OpSyscall
	OpCpuid
	OpEndbr64
	OpSetcc
	OpCmovcc
	OpCwd // cdq/cqo family
	OpBt
	OpBsf
	OpBsr
	OpPopcnt
	OpBswap
	OpXadd
	OpCmpxchg
	OpMovStr // string moves and friends
	OpFpu    // x87 escape range
	OpSse    // SSE/MMX range, treated opaquely
	OpOther
)

var opNames = map[Op]string{
	OpInvalid: "invalid", OpAdd: "add", OpSub: "sub", OpAdc: "adc",
	OpSbb: "sbb", OpAnd: "and", OpOr: "or", OpXor: "xor", OpCmp: "cmp",
	OpTest: "test", OpMov: "mov", OpMovsxd: "movsxd", OpMovzx: "movzx",
	OpMovsx: "movsx", OpLea: "lea", OpPush: "push", OpPop: "pop",
	OpXchg: "xchg", OpInc: "inc", OpDec: "dec", OpNeg: "neg", OpNot: "not",
	OpMul: "mul", OpImul: "imul", OpDiv: "div", OpIdiv: "idiv",
	OpShl: "shl", OpShr: "shr", OpSar: "sar", OpRol: "rol", OpRor: "ror",
	OpCall: "call", OpCallInd: "call*", OpJmp: "jmp", OpJmpInd: "jmp*",
	OpJcc: "jcc", OpRet: "ret", OpLeave: "leave", OpEnter: "enter",
	OpNop: "nop", OpInt3: "int3", OpInt: "int", OpUd2: "ud2", OpHlt: "hlt",
	OpSyscall: "syscall", OpCpuid: "cpuid", OpEndbr64: "endbr64",
	OpSetcc: "setcc", OpCmovcc: "cmovcc", OpCwd: "cwd", OpBt: "bt",
	OpBsf: "bsf", OpBsr: "bsr", OpPopcnt: "popcnt", OpBswap: "bswap",
	OpXadd: "xadd", OpCmpxchg: "cmpxchg", OpMovStr: "movs", OpFpu: "fpu",
	OpSse: "sse", OpOther: "other",
}

// String returns a short mnemonic for the class.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Cond is an x86 condition code (the low nibble of Jcc/SETcc/CMOVcc
// opcodes).
type Cond uint8

// Condition codes in hardware encoding order.
const (
	CondO  Cond = 0x0
	CondNO Cond = 0x1
	CondB  Cond = 0x2
	CondAE Cond = 0x3
	CondE  Cond = 0x4
	CondNE Cond = 0x5
	CondBE Cond = 0x6
	CondA  Cond = 0x7
	CondS  Cond = 0x8
	CondNS Cond = 0x9
	CondP  Cond = 0xA
	CondNP Cond = 0xB
	CondL  Cond = 0xC
	CondGE Cond = 0xD
	CondLE Cond = 0xE
	CondG  Cond = 0xF
)

var condNames = [...]string{
	"o", "no", "b", "ae", "e", "ne", "be", "a",
	"s", "ns", "p", "np", "l", "ge", "le", "g",
}

// String returns the condition suffix ("e", "ne", ...).
func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond(%d)", uint8(c))
}

// OperandKind distinguishes the three operand shapes the decoder models.
type OperandKind uint8

// Operand kinds.
const (
	KindNone OperandKind = iota
	KindReg
	KindImm
	KindMem
)

// MemRef is a decoded memory operand: [Base + Index*Scale + Disp], or
// [RIP + Disp] when RIPRel is set.
type MemRef struct {
	Base   Reg
	Index  Reg
	Scale  uint8 // 1, 2, 4 or 8
	Disp   int64
	RIPRel bool
}

// Operand is a single decoded operand.
type Operand struct {
	Kind OperandKind
	Reg  Reg
	Imm  int64
	Mem  MemRef
}

// RegOp constructs a register operand.
func RegOp(r Reg) Operand { return Operand{Kind: KindReg, Reg: r} }

// ImmOp constructs an immediate operand.
func ImmOp(v int64) Operand { return Operand{Kind: KindImm, Imm: v} }

// MemOp constructs a memory operand.
func MemOp(m MemRef) Operand { return Operand{Kind: KindMem, Mem: m} }

// Inst is a decoded instruction.
type Inst struct {
	Addr uint64 // virtual address of the first byte
	Len  int    // total encoded length in bytes

	Op   Op
	Cond Cond // valid for OpJcc, OpSetcc, OpCmovcc

	// Args holds decoded operands, destination first, for classified
	// instructions. Unclassified (OpOther/OpSse/OpFpu) instructions
	// carry no operands.
	Args []Operand

	// Target is the absolute destination of a direct call/jmp/jcc.
	HasTarget bool
	Target    uint64

	// OpSize is the operand size in bytes (1, 2, 4 or 8).
	OpSize uint8

	// Classified reports whether semantic information (Args,
	// reads/writes, stack delta) is trustworthy for this instruction.
	Classified bool
}

// IsBranch reports whether the instruction transfers control anywhere
// other than the next instruction (excluding calls, which return).
func (i *Inst) IsBranch() bool {
	switch i.Op {
	case OpJmp, OpJmpInd, OpJcc, OpRet:
		return true
	}
	return false
}

// IsCall reports whether the instruction is a direct or indirect call.
func (i *Inst) IsCall() bool { return i.Op == OpCall || i.Op == OpCallInd }

// Terminates reports whether fall-through past this instruction is
// impossible: unconditional jumps, returns, and traps.
func (i *Inst) Terminates() bool {
	switch i.Op {
	case OpJmp, OpJmpInd, OpRet, OpUd2, OpHlt:
		return true
	}
	return false
}

// IsPadding reports whether the instruction is inter-function padding:
// any NOP form or an int3 trap.
func (i *Inst) IsPadding() bool { return i.Op == OpNop || i.Op == OpInt3 }

// Next returns the address of the following instruction.
func (i *Inst) Next() uint64 { return i.Addr + uint64(i.Len) }

// String renders a compact disassembly-ish form for diagnostics.
func (i *Inst) String() string {
	s := fmt.Sprintf("%#x: %s", i.Addr, i.Op)
	if i.Op == OpJcc {
		s = fmt.Sprintf("%#x: j%s", i.Addr, i.Cond)
	}
	if i.HasTarget {
		s += fmt.Sprintf(" %#x", i.Target)
	}
	for n, a := range i.Args {
		sep := " "
		if n > 0 {
			sep = ", "
		}
		switch a.Kind {
		case KindReg:
			s += sep + a.Reg.String()
		case KindImm:
			s += sep + fmt.Sprintf("%#x", a.Imm)
		case KindMem:
			m := a.Mem
			if m.RIPRel {
				s += sep + fmt.Sprintf("[rip%+#x]", m.Disp)
			} else {
				s += sep + fmt.Sprintf("[%s+%s*%d%+#x]", m.Base, m.Index, m.Scale, m.Disp)
			}
		}
	}
	return s
}
