package x64

import "fetch/internal/arch"

// The instruction model lives in package arch, shared by every backend;
// these aliases keep the historical x64 names working for the decoder,
// the encoder, and the synthetic compiler, which all speak natively in
// terms of this ISA.

// Op is the semantic class of a decoded instruction.
type Op = arch.Op

// Semantic opcode classes (see arch for the full documentation).
const (
	OpInvalid = arch.OpInvalid
	OpAdd     = arch.OpAdd
	OpSub     = arch.OpSub
	OpAdc     = arch.OpAdc
	OpSbb     = arch.OpSbb
	OpAnd     = arch.OpAnd
	OpOr      = arch.OpOr
	OpXor     = arch.OpXor
	OpCmp     = arch.OpCmp
	OpTest    = arch.OpTest
	OpMov     = arch.OpMov
	OpMovsxd  = arch.OpMovsxd
	OpMovzx   = arch.OpMovzx
	OpMovsx   = arch.OpMovsx
	OpLea     = arch.OpLea
	OpPush    = arch.OpPush
	OpPop     = arch.OpPop
	OpXchg    = arch.OpXchg
	OpInc     = arch.OpInc
	OpDec     = arch.OpDec
	OpNeg     = arch.OpNeg
	OpNot     = arch.OpNot
	OpMul     = arch.OpMul
	OpImul    = arch.OpImul
	OpDiv     = arch.OpDiv
	OpIdiv    = arch.OpIdiv
	OpShl     = arch.OpShl
	OpShr     = arch.OpShr
	OpSar     = arch.OpSar
	OpRol     = arch.OpRol
	OpRor     = arch.OpRor
	OpCall    = arch.OpCall
	OpCallInd = arch.OpCallInd
	OpJmp     = arch.OpJmp
	OpJmpInd  = arch.OpJmpInd
	OpJcc     = arch.OpJcc
	OpRet     = arch.OpRet
	OpLeave   = arch.OpLeave
	OpEnter   = arch.OpEnter
	OpNop     = arch.OpNop
	OpInt3    = arch.OpInt3
	OpInt     = arch.OpInt
	OpUd2     = arch.OpUd2
	OpHlt     = arch.OpHlt
	OpSyscall = arch.OpSyscall
	OpCpuid   = arch.OpCpuid
	OpEndbr64 = arch.OpEndbr64
	OpSetcc   = arch.OpSetcc
	OpCmovcc  = arch.OpCmovcc
	OpCwd     = arch.OpCwd
	OpBt      = arch.OpBt
	OpBsf     = arch.OpBsf
	OpBsr     = arch.OpBsr
	OpPopcnt  = arch.OpPopcnt
	OpBswap   = arch.OpBswap
	OpXadd    = arch.OpXadd
	OpCmpxchg = arch.OpCmpxchg
	OpMovStr  = arch.OpMovStr
	OpFpu     = arch.OpFpu
	OpSse     = arch.OpSse
	OpOther   = arch.OpOther
)

// Cond is an x86 condition code (the low nibble of Jcc/SETcc/CMOVcc
// opcodes); the shared numbering is the x86 hardware encoding.
type Cond = arch.Cond

// Condition codes in hardware encoding order.
const (
	CondO  = arch.CondO
	CondNO = arch.CondNO
	CondB  = arch.CondB
	CondAE = arch.CondAE
	CondE  = arch.CondE
	CondNE = arch.CondNE
	CondBE = arch.CondBE
	CondA  = arch.CondA
	CondS  = arch.CondS
	CondNS = arch.CondNS
	CondP  = arch.CondP
	CondNP = arch.CondNP
	CondL  = arch.CondL
	CondGE = arch.CondGE
	CondLE = arch.CondLE
	CondG  = arch.CondG
)

// OperandKind distinguishes the three operand shapes the decoder models.
type OperandKind = arch.OperandKind

// Operand kinds.
const (
	KindNone = arch.KindNone
	KindReg  = arch.KindReg
	KindImm  = arch.KindImm
	KindMem  = arch.KindMem
)

// MemRef is a decoded memory operand.
type MemRef = arch.MemRef

// Operand is a single decoded operand.
type Operand = arch.Operand

// RegOp constructs a register operand.
func RegOp(r Reg) Operand { return arch.RegOp(r) }

// ImmOp constructs an immediate operand.
func ImmOp(v int64) Operand { return arch.ImmOp(v) }

// MemOp constructs a memory operand.
func MemOp(m MemRef) Operand { return arch.MemOp(m) }

// Inst is a decoded instruction.
type Inst = arch.Inst
