package x64

import (
	"errors"
	"testing"
)

// TestDecodeAdversarialWindows pins the decoder's behavior on the
// nastiest truncation and prefix shapes: always an error or a bounded
// instruction, never a panic (the fuzz target enforces the same
// contract continuously).
func TestDecodeAdversarialWindows(t *testing.T) {
	cases := []struct {
		name    string
		data    []byte
		wantErr error // nil = any outcome, non-nil = that error
	}{
		{"empty", nil, ErrTruncated},
		{"rex-only", []byte{0x48}, ErrTruncated},
		{"all-prefixes-no-opcode", []byte{0x66, 0x67, 0xF0, 0xF2, 0x2E, 0x64, 0x48}, ErrTruncated},
		{"fifteen-prefixes", []byte{0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x90}, ErrTruncated},
		{"truncated-modrm", []byte{0x8B}, ErrTruncated},
		{"truncated-sib", []byte{0x8B, 0x04}, ErrTruncated},
		{"truncated-disp32", []byte{0x8B, 0x05, 0x01, 0x02}, ErrTruncated},
		{"truncated-imm64", []byte{0x48, 0xB8, 1, 2, 3}, ErrTruncated},
		{"truncated-two-byte", []byte{0x0F}, ErrTruncated},
		{"truncated-three-byte", []byte{0x0F, 0x38}, ErrTruncated},
		{"vex3", []byte{0xC4, 0xE2, 0x71, 0x00, 0xC0}, ErrInvalidOpcode},
		{"evex", []byte{0x62, 0xF1, 0x7C, 0x48, 0x58, 0xC0}, ErrInvalidOpcode},
		{"group5-slot7", []byte{0xFF, 0xF8}, ErrInvalidOpcode},
		{"ud0", []byte{0x0F, 0xFF, 0xC0}, ErrInvalidOpcode},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in, err := Decode(tc.data, 0x401000)
			if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
				t.Fatalf("Decode(%x) = %+v, %v; want %v", tc.data, in, err, tc.wantErr)
			}
			if err == nil && (in.Len < 1 || in.Len > maxInstLen || in.Len > len(tc.data)) {
				t.Fatalf("Decode(%x): length %d out of bounds", tc.data, in.Len)
			}
		})
	}
}

// TestDecodeAllStopsOnGarbage pins that a linear sweep over garbage
// terminates with a positional error instead of panicking or spinning.
func TestDecodeAllStopsOnGarbage(t *testing.T) {
	garbage := []byte{0x90, 0x90, 0x62, 0x01, 0x02, 0x03}
	insts, err := DecodeAll(garbage, 0x401000)
	if err == nil {
		t.Fatal("DecodeAll accepted an EVEX byte")
	}
	if len(insts) != 2 {
		t.Fatalf("decoded %d instructions before the bad byte, want 2", len(insts))
	}
}
