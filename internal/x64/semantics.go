package x64

// This file derives dataflow facts from classified instructions:
// register read/write sets (for calling-convention validation), stack
// pointer deltas (for stack-height analysis), and constant operands
// (for function-pointer detection).

// regsOfMem returns the registers a memory operand reads.
func regsOfMem(m MemRef) RegSet {
	var s RegSet
	s = s.Add(m.Base)
	s = s.Add(m.Index)
	return s
}

// Reads returns the set of general-purpose registers the instruction
// reads. For unclassified instructions it returns the empty set; callers
// that need soundness must check Classified.
//
// Two deliberate modeling choices mirror the paper's calling-convention
// rule (§IV-E): a PUSH of a register is treated as a *save*, not a use,
// and reads through RSP/RBP-based memory operands still count the base
// register as read.
func (i *Inst) Reads() RegSet {
	var s RegSet
	if !i.Classified {
		return s
	}
	addOp := func(o Operand, includeReg bool) {
		switch o.Kind {
		case KindReg:
			if includeReg {
				s = s.Add(o.Reg)
			}
		case KindMem:
			s = s.Union(regsOfMem(o.Mem))
		}
	}
	switch i.Op {
	case OpMov, OpMovsxd, OpMovzx, OpMovsx, OpCwd:
		// dst written only; src read.
		if len(i.Args) == 2 {
			addOp(i.Args[0], false)
			addOp(i.Args[1], true)
		}
	case OpLea:
		if len(i.Args) == 2 {
			// LEA reads only the address components.
			addOp(i.Args[1], false)
		}
	case OpXor, OpSub, OpSbb:
		// xor r,r and sub r,r zero the register: not a true read.
		if len(i.Args) == 2 && i.Args[0].Kind == KindReg &&
			i.Args[1].Kind == KindReg && i.Args[0].Reg == i.Args[1].Reg {
			return s
		}
		for _, a := range i.Args {
			addOp(a, true)
		}
	case OpAdd, OpAdc, OpAnd, OpOr, OpCmp, OpTest, OpImul, OpXchg,
		OpShl, OpShr, OpSar, OpRol, OpRor, OpXadd, OpCmpxchg, OpBt:
		for _, a := range i.Args {
			addOp(a, true)
		}
	case OpPush:
		// Saving a register is not a use under the paper's rule, but
		// pushing a memory operand reads its address registers.
		if len(i.Args) == 1 {
			addOp(i.Args[0], false)
		}
		s = s.Add(RSP)
	case OpPop:
		if len(i.Args) == 1 {
			addOp(i.Args[0], false)
		}
		s = s.Add(RSP)
	case OpInc, OpDec, OpNeg, OpNot, OpSetcc:
		if len(i.Args) == 1 {
			addOp(i.Args[0], i.Op != OpSetcc)
		}
	case OpMul, OpDiv, OpIdiv:
		if len(i.Args) == 1 {
			addOp(i.Args[0], true)
		}
		s = s.Add(RAX)
		s = s.Add(RDX)
	case OpCmovcc, OpBsf, OpBsr, OpPopcnt:
		if len(i.Args) == 2 {
			addOp(i.Args[1], true)
		}
	case OpBswap:
		if len(i.Args) == 1 {
			addOp(i.Args[0], true)
		}
	case OpCallInd, OpJmpInd:
		if len(i.Args) == 1 {
			addOp(i.Args[0], true)
		}
	case OpRet:
		s = s.Add(RSP)
	case OpLeave:
		s = s.Add(RBP)
	case OpMovStr:
		s = s.Add(RSI)
		s = s.Add(RDI)
		s = s.Add(RCX)
	}
	return s
}

// Writes returns the set of general-purpose registers the instruction
// writes. Flags are not modeled.
func (i *Inst) Writes() RegSet {
	var s RegSet
	if !i.Classified {
		return s
	}
	writeDst := func() {
		if len(i.Args) > 0 && i.Args[0].Kind == KindReg {
			s = s.Add(i.Args[0].Reg)
		}
	}
	switch i.Op {
	case OpMov, OpMovsxd, OpMovzx, OpMovsx, OpLea, OpAdd, OpSub, OpAdc,
		OpSbb, OpAnd, OpOr, OpXor, OpInc, OpDec, OpNeg, OpNot, OpShl,
		OpShr, OpSar, OpRol, OpRor, OpSetcc, OpCmovcc, OpBsf, OpBsr,
		OpPopcnt, OpBswap, OpXadd, OpImul:
		writeDst()
	case OpXchg:
		for _, a := range i.Args {
			if a.Kind == KindReg {
				s = s.Add(a.Reg)
			}
		}
	case OpPop:
		writeDst()
		s = s.Add(RSP)
	case OpPush:
		s = s.Add(RSP)
	case OpMul, OpDiv, OpIdiv:
		s = s.Add(RAX)
		s = s.Add(RDX)
	case OpCwd:
		s = s.Add(RAX)
		s = s.Add(RDX)
	case OpCall, OpCallInd:
		// A call clobbers all caller-saved registers and, on return,
		// defines RAX. Modeling them as written makes later reads of
		// caller-saved registers legitimate, which is conservative in
		// the right direction for the §IV-E validation.
		for _, r := range []Reg{RAX, RCX, RDX, RSI, RDI, R8, R9, R10, R11} {
			s = s.Add(r)
		}
	case OpLeave:
		s = s.Add(RSP)
		s = s.Add(RBP)
	case OpRet:
		s = s.Add(RSP)
	case OpEnter:
		s = s.Add(RSP)
		s = s.Add(RBP)
	case OpMovStr:
		s = s.Add(RSI)
		s = s.Add(RDI)
		s = s.Add(RCX)
	case OpSyscall:
		s = s.Add(RAX)
		s = s.Add(RCX)
		s = s.Add(R11)
	}
	return s
}

// StackDelta returns the change this instruction applies to RSP, and
// whether the change is statically known. CALL/RET pairs are modeled as
// balanced (delta 0 across the call) because stack-height analyses track
// heights within one frame.
func (i *Inst) StackDelta() (delta int64, known bool) {
	if !i.Classified {
		return 0, true // treat opaque instructions as stack-neutral
	}
	switch i.Op {
	case OpPush:
		return -8, true
	case OpPop:
		return 8, true
	case OpEnter:
		if len(i.Args) == 1 {
			return -8 - i.Args[0].Imm, true
		}
		return 0, false
	case OpLeave:
		// rsp = rbp; pop rbp — height becomes frame-pointer relative,
		// which the linear analyses cannot track without rbp state.
		return 0, false
	case OpAdd:
		if i.targetsRSP() {
			if v, ok := i.immArg(); ok {
				return v, true
			}
			return 0, false
		}
	case OpSub:
		if i.targetsRSP() {
			if v, ok := i.immArg(); ok {
				return -v, true
			}
			return 0, false
		}
	case OpAnd:
		if i.targetsRSP() {
			// Alignment such as and rsp, -16: height becomes unknown.
			return 0, false
		}
	case OpMov, OpLea:
		if i.targetsRSP() {
			return 0, false
		}
	case OpCall, OpCallInd:
		return 0, true
	case OpRet:
		return 8, true
	}
	if i.Writes().Has(RSP) && i.Op != OpCall && i.Op != OpCallInd {
		return 0, false
	}
	return 0, true
}

func (i *Inst) targetsRSP() bool {
	return len(i.Args) > 0 && i.Args[0].Kind == KindReg && i.Args[0].Reg == RSP
}

func (i *Inst) immArg() (int64, bool) {
	for _, a := range i.Args {
		if a.Kind == KindImm {
			return a.Imm, true
		}
	}
	return 0, false
}

// Constants returns the absolute-address constants this instruction
// materializes: immediates wide enough to be pointers and resolved
// RIP-relative addresses. These feed the function-pointer super-set
// collection of §IV-E.
func (i *Inst) Constants() []uint64 {
	if !i.Classified {
		return nil
	}
	var out []uint64
	for _, a := range i.Args {
		switch a.Kind {
		case KindImm:
			if a.Imm > 0x1000 { // skip tiny values that cannot be text addresses
				out = append(out, uint64(a.Imm))
			}
		case KindMem:
			if a.Mem.RIPRel {
				out = append(out, uint64(int64(i.Addr)+int64(i.Len)+a.Mem.Disp))
			} else if a.Mem.Disp > 0x1000 {
				out = append(out, uint64(a.Mem.Disp))
			}
		}
	}
	return out
}

// IndirectMem returns the memory operand of an indirect jump or call and
// whether there is one (register-indirect forms return false).
func (i *Inst) IndirectMem() (MemRef, bool) {
	if (i.Op == OpJmpInd || i.Op == OpCallInd) && len(i.Args) == 1 &&
		i.Args[0].Kind == KindMem {
		return i.Args[0].Mem, true
	}
	return MemRef{}, false
}
