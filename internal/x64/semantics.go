package x64

// This file derives dataflow facts from classified instructions:
// register read/write sets (for calling-convention validation) and stack
// pointer deltas (for stack-height analysis). These are the x86-64 half
// of the arch.ISA dataflow surface; the ISA-generic facts (constant
// operands, indirect memory operands) live on arch.Inst itself.

// regsOfMem returns the registers a memory operand reads. RIP is a
// pseudo-register, never part of the GPR file, so RIP-relative operands
// contribute no register read.
func regsOfMem(m MemRef) RegSet {
	var s RegSet
	if m.Base != RIP {
		s = s.Add(m.Base)
	}
	if m.Index != RIP {
		s = s.Add(m.Index)
	}
	return s
}

// Reads returns the set of general-purpose registers the instruction
// reads. For unclassified instructions it returns the empty set; callers
// that need soundness must check Classified.
//
// Two deliberate modeling choices mirror the paper's calling-convention
// rule (§IV-E): a PUSH of a register is treated as a *save*, not a use,
// and reads through RSP/RBP-based memory operands still count the base
// register as read.
func Reads(i *Inst) RegSet {
	var s RegSet
	if !i.Classified {
		return s
	}
	addOp := func(o Operand, includeReg bool) {
		switch o.Kind {
		case KindReg:
			if includeReg {
				s = s.Add(o.Reg)
			}
		case KindMem:
			s = s.Union(regsOfMem(o.Mem))
		}
	}
	switch i.Op {
	case OpMov, OpMovsxd, OpMovzx, OpMovsx, OpCwd:
		// dst written only; src read.
		if len(i.Args) == 2 {
			addOp(i.Args[0], false)
			addOp(i.Args[1], true)
		}
	case OpLea:
		if len(i.Args) == 2 {
			// LEA reads only the address components.
			addOp(i.Args[1], false)
		}
	case OpXor, OpSub, OpSbb:
		// xor r,r and sub r,r zero the register: not a true read.
		if len(i.Args) == 2 && i.Args[0].Kind == KindReg &&
			i.Args[1].Kind == KindReg && i.Args[0].Reg == i.Args[1].Reg {
			return s
		}
		for _, a := range i.Args {
			addOp(a, true)
		}
	case OpAdd, OpAdc, OpAnd, OpOr, OpCmp, OpTest, OpImul, OpXchg,
		OpShl, OpShr, OpSar, OpRol, OpRor, OpXadd, OpCmpxchg, OpBt:
		for _, a := range i.Args {
			addOp(a, true)
		}
	case OpPush:
		// Saving a register is not a use under the paper's rule, but
		// pushing a memory operand reads its address registers.
		if len(i.Args) == 1 {
			addOp(i.Args[0], false)
		}
		s = s.Add(RSP)
	case OpPop:
		if len(i.Args) == 1 {
			addOp(i.Args[0], false)
		}
		s = s.Add(RSP)
	case OpInc, OpDec, OpNeg, OpNot, OpSetcc:
		if len(i.Args) == 1 {
			addOp(i.Args[0], i.Op != OpSetcc)
		}
	case OpMul, OpDiv, OpIdiv:
		if len(i.Args) == 1 {
			addOp(i.Args[0], true)
		}
		s = s.Add(RAX)
		s = s.Add(RDX)
	case OpCmovcc, OpBsf, OpBsr, OpPopcnt:
		if len(i.Args) == 2 {
			addOp(i.Args[1], true)
		}
	case OpBswap:
		if len(i.Args) == 1 {
			addOp(i.Args[0], true)
		}
	case OpCallInd, OpJmpInd:
		if len(i.Args) == 1 {
			addOp(i.Args[0], true)
		}
	case OpRet:
		s = s.Add(RSP)
	case OpLeave:
		s = s.Add(RBP)
	case OpMovStr:
		s = s.Add(RSI)
		s = s.Add(RDI)
		s = s.Add(RCX)
	}
	return s
}

// Writes returns the set of general-purpose registers the instruction
// writes. Flags are not modeled.
func Writes(i *Inst) RegSet {
	var s RegSet
	if !i.Classified {
		return s
	}
	writeDst := func() {
		if len(i.Args) > 0 && i.Args[0].Kind == KindReg {
			s = s.Add(i.Args[0].Reg)
		}
	}
	switch i.Op {
	case OpMov, OpMovsxd, OpMovzx, OpMovsx, OpLea, OpAdd, OpSub, OpAdc,
		OpSbb, OpAnd, OpOr, OpXor, OpInc, OpDec, OpNeg, OpNot, OpShl,
		OpShr, OpSar, OpRol, OpRor, OpSetcc, OpCmovcc, OpBsf, OpBsr,
		OpPopcnt, OpBswap, OpXadd, OpImul:
		writeDst()
	case OpXchg:
		for _, a := range i.Args {
			if a.Kind == KindReg {
				s = s.Add(a.Reg)
			}
		}
	case OpPop:
		writeDst()
		s = s.Add(RSP)
	case OpPush:
		s = s.Add(RSP)
	case OpMul, OpDiv, OpIdiv:
		s = s.Add(RAX)
		s = s.Add(RDX)
	case OpCwd:
		s = s.Add(RAX)
		s = s.Add(RDX)
	case OpCall, OpCallInd:
		// A call clobbers all caller-saved registers and, on return,
		// defines RAX. Modeling them as written makes later reads of
		// caller-saved registers legitimate, which is conservative in
		// the right direction for the §IV-E validation.
		for _, r := range []Reg{RAX, RCX, RDX, RSI, RDI, R8, R9, R10, R11} {
			s = s.Add(r)
		}
	case OpLeave:
		s = s.Add(RSP)
		s = s.Add(RBP)
	case OpRet:
		s = s.Add(RSP)
	case OpEnter:
		s = s.Add(RSP)
		s = s.Add(RBP)
	case OpMovStr:
		s = s.Add(RSI)
		s = s.Add(RDI)
		s = s.Add(RCX)
	case OpSyscall:
		s = s.Add(RAX)
		s = s.Add(RCX)
		s = s.Add(R11)
	}
	return s
}

// StackDelta returns the change this instruction applies to RSP, and
// whether the change is statically known. CALL/RET pairs are modeled as
// balanced (delta 0 across the call) because stack-height analyses track
// heights within one frame.
func StackDelta(i *Inst) (delta int64, known bool) {
	if !i.Classified {
		return 0, true // treat opaque instructions as stack-neutral
	}
	switch i.Op {
	case OpPush:
		return -8, true
	case OpPop:
		return 8, true
	case OpEnter:
		if len(i.Args) == 1 {
			return -8 - i.Args[0].Imm, true
		}
		return 0, false
	case OpLeave:
		// rsp = rbp; pop rbp — height becomes frame-pointer relative,
		// which the linear analyses cannot track without rbp state.
		return 0, false
	case OpAdd:
		if targetsRSP(i) {
			if v, ok := immArg(i); ok {
				return v, true
			}
			return 0, false
		}
	case OpSub:
		if targetsRSP(i) {
			if v, ok := immArg(i); ok {
				return -v, true
			}
			return 0, false
		}
	case OpAnd:
		if targetsRSP(i) {
			// Alignment such as and rsp, -16: height becomes unknown.
			return 0, false
		}
	case OpMov, OpLea:
		if targetsRSP(i) {
			return 0, false
		}
	case OpCall, OpCallInd:
		return 0, true
	case OpRet:
		return 8, true
	}
	if Writes(i).Has(RSP) && i.Op != OpCall && i.Op != OpCallInd {
		return 0, false
	}
	return 0, true
}

func targetsRSP(i *Inst) bool {
	return len(i.Args) > 0 && i.Args[0].Kind == KindReg && i.Args[0].Reg == RSP
}

func immArg(i *Inst) (int64, bool) {
	for _, a := range i.Args {
		if a.Kind == KindImm {
			return a.Imm, true
		}
	}
	return 0, false
}
