// Package x64 implements an x86-64 instruction decoder and encoder.
//
// The decoder is a table-driven length decoder over the one-byte and 0F
// opcode maps with semantic classification for the instruction classes
// that function-start detection cares about: control flow (call, jmp,
// jcc, ret), stack-pointer arithmetic, register moves, and immediate /
// RIP-relative constant operands. The encoder emits genuine machine code
// and is used by the synthetic binary generator, so every byte the rest
// of the system analyzes round-trips through a real decode.
//
// The package implements the arch.ISA backend interface; the shared
// instruction model (arch.Inst, arch.Op, ...) is aliased here so the
// decoder and encoder keep their historical vocabulary.
package x64

import "fetch/internal/arch"

// Reg identifies an x86-64 general-purpose register. The numbering
// matches the hardware encoding (REX.B/R/X extends into 8-15) so that
// ModRM/SIB fields map directly onto Reg values.
type Reg = arch.Reg

// General-purpose registers in hardware encoding order.
const (
	RAX Reg = iota
	RCX
	RDX
	RBX
	RSP
	RBP
	RSI
	RDI
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	// RIP is a pseudo-register used for RIP-relative memory operands.
	RIP
	// RegNone marks an absent base or index register.
	RegNone = arch.RegNone
)

// ValidReg reports whether r names a real x86-64 general-purpose
// register (RIP and RegNone are not).
func ValidReg(r Reg) bool { return r < RIP }

// ArgumentRegs lists the System-V AMD64 integer argument registers in
// call order. The calling-convention validation rule in the paper
// (§IV-E) permits these to be read before being written.
var ArgumentRegs = [6]Reg{RDI, RSI, RDX, RCX, R8, R9}

// IsArgumentReg reports whether r is a System-V integer argument register.
func IsArgumentReg(r Reg) bool {
	for _, a := range ArgumentRegs {
		if r == a {
			return true
		}
	}
	return false
}

// CalleeSavedRegs lists the System-V AMD64 callee-saved registers.
var CalleeSavedRegs = [6]Reg{RBX, RBP, R12, R13, R14, R15}

// IsCalleeSaved reports whether r must be preserved across calls under
// the System-V AMD64 ABI.
func IsCalleeSaved(r Reg) bool {
	for _, c := range CalleeSavedRegs {
		if r == c {
			return true
		}
	}
	return false
}

// RegSet is a bitmask over general-purpose registers.
type RegSet = arch.RegSet
