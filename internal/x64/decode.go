package x64

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Decode errors. ErrTruncated means the byte window ended mid-instruction;
// ErrInvalidOpcode means the bytes cannot start a valid 64-bit instruction.
var (
	ErrTruncated     = errors.New("x64: truncated instruction")
	ErrInvalidOpcode = errors.New("x64: invalid opcode")
)

const maxInstLen = 15

// prefixState accumulates decoded prefixes.
type prefixState struct {
	rex      byte // 0 when absent
	opSize16 bool // 66
	addr32   bool // 67
	rep      byte // F2 or F3, 0 when absent
	lock     bool
	seg      byte // segment override byte, 0 when absent
}

func (p *prefixState) rexW() bool { return p.rex&0x08 != 0 }
func (p *prefixState) rexR() byte { return (p.rex >> 2) & 1 }
func (p *prefixState) rexX() byte { return (p.rex >> 1) & 1 }
func (p *prefixState) rexB() byte { return p.rex & 1 }

// Decode decodes a single instruction starting at b[0], which is mapped
// at virtual address addr. At most 15 bytes are consumed.
func Decode(b []byte, addr uint64) (Inst, error) {
	var pfx prefixState
	i := 0

	// Consume legacy and REX prefixes. A REX prefix is only effective
	// when it is the last prefix before the opcode, matching hardware.
	for {
		if i >= len(b) || i >= maxInstLen {
			return Inst{}, ErrTruncated
		}
		c := b[i]
		switch c {
		case 0x66:
			pfx.opSize16 = true
			pfx.rex = 0
		case 0x67:
			pfx.addr32 = true
			pfx.rex = 0
		case 0xF0:
			pfx.lock = true
			pfx.rex = 0
		case 0xF2, 0xF3:
			pfx.rep = c
			pfx.rex = 0
		case 0x26, 0x2E, 0x36, 0x3E, 0x64, 0x65:
			pfx.seg = c
			pfx.rex = 0
		default:
			if c&0xF0 == 0x40 { // REX
				pfx.rex = c
			} else {
				goto prefixesDone
			}
		}
		i++
	}
prefixesDone:

	if i >= len(b) {
		return Inst{}, ErrTruncated
	}
	opc := b[i]
	i++

	inst := Inst{Addr: addr, OpSize: 4}
	if pfx.opSize16 {
		inst.OpSize = 2
	}
	if pfx.rexW() {
		inst.OpSize = 8
	}

	var info opInfo
	var opByte2 byte
	twoByteMap := false
	threeByteMap := byte(0)

	if opc == 0x0F {
		if i >= len(b) {
			return Inst{}, ErrTruncated
		}
		opByte2 = b[i]
		i++
		switch opByte2 {
		case 0x38, 0x3A:
			threeByteMap = opByte2
			if i >= len(b) {
				return Inst{}, ErrTruncated
			}
			opByte2 = b[i] // the third opcode byte
			i++
			info = entM
			if threeByteMap == 0x3A {
				info = entMIb
			}
		default:
			twoByteMap = true
			info = twoByte[opByte2]
		}
	} else {
		switch opc {
		case 0xC4, 0xC5, 0x62:
			// VEX/EVEX encodings are not produced by the code this
			// library analyzes or generates; reject them so the
			// conservative disassembler treats them as data.
			return Inst{}, ErrInvalidOpcode
		}
		info = oneByte[opc]
	}
	if !info.valid {
		return Inst{}, ErrInvalidOpcode
	}

	// ModRM, SIB, displacement.
	var (
		hasModRM      bool
		modrm         byte
		mem           MemRef
		memIsReg      bool // mod == 11
		rmReg, regFld Reg
	)
	if info.modrm {
		hasModRM = true
		if i >= len(b) {
			return Inst{}, ErrTruncated
		}
		modrm = b[i]
		i++
		mod := modrm >> 6
		reg := (modrm >> 3) & 7
		rm := modrm & 7
		regFld = Reg(reg | pfx.rexR()<<3)
		if mod == 3 {
			memIsReg = true
			rmReg = Reg(rm | pfx.rexB()<<3)
		} else {
			mem = MemRef{Base: RegNone, Index: RegNone, Scale: 1}
			if rm == 4 { // SIB
				if i >= len(b) {
					return Inst{}, ErrTruncated
				}
				sib := b[i]
				i++
				scale := sib >> 6
				idx := (sib >> 3) & 7
				base := sib & 7
				mem.Scale = 1 << scale
				index := Reg(idx | pfx.rexX()<<3)
				if index != RSP { // index 100b with REX.X=0 means none
					mem.Index = index
				}
				if base == 5 && mod == 0 {
					// disp32 with no base
					if i+4 > len(b) {
						return Inst{}, ErrTruncated
					}
					mem.Disp = int64(int32(binary.LittleEndian.Uint32(b[i:])))
					i += 4
				} else {
					mem.Base = Reg(base | pfx.rexB()<<3)
				}
			} else if rm == 5 && mod == 0 {
				// RIP-relative disp32
				if i+4 > len(b) {
					return Inst{}, ErrTruncated
				}
				mem.RIPRel = true
				mem.Base = RIP
				mem.Disp = int64(int32(binary.LittleEndian.Uint32(b[i:])))
				i += 4
			} else {
				mem.Base = Reg(rm | pfx.rexB()<<3)
			}
			switch mod {
			case 1:
				if i >= len(b) {
					return Inst{}, ErrTruncated
				}
				mem.Disp += int64(int8(b[i]))
				i++
			case 2:
				if i+4 > len(b) {
					return Inst{}, ErrTruncated
				}
				mem.Disp += int64(int32(binary.LittleEndian.Uint32(b[i:])))
				i += 4
			}
		}
	}

	// Group 3 (F6/F7) TEST forms carry an immediate.
	immCode := info.imm
	if !twoByteMap && threeByteMap == 0 {
		if opc == 0xF6 && hasModRM && (modrm>>3)&7 <= 1 {
			immCode = immB
		}
		if opc == 0xF7 && hasModRM && (modrm>>3)&7 <= 1 {
			immCode = immZ
		}
		// Group 5 (FF) /7 is undefined.
		if opc == 0xFF && hasModRM && (modrm>>3)&7 == 7 {
			return Inst{}, ErrInvalidOpcode
		}
	}

	// Immediate.
	var (
		immVal   int64
		hasImm   bool
		immBytes int
	)
	switch immCode {
	case immNone:
	case immB, immJb:
		immBytes = 1
	case immW:
		immBytes = 2
	case immZ, immJz:
		immBytes = 4
		if pfx.opSize16 {
			immBytes = 2
		}
	case immV:
		immBytes = 4
		if pfx.rexW() {
			immBytes = 8
		} else if pfx.opSize16 {
			immBytes = 2
		}
	case immWB:
		immBytes = 3
	case immMoffs:
		immBytes = 8
		if pfx.addr32 {
			immBytes = 4
		}
	}
	if immBytes > 0 {
		if i+immBytes > len(b) {
			return Inst{}, ErrTruncated
		}
		switch immBytes {
		case 1:
			immVal = int64(int8(b[i]))
		case 2:
			immVal = int64(int16(binary.LittleEndian.Uint16(b[i:])))
		case 3: // ENTER: imm16 then imm8; keep the frame size
			immVal = int64(binary.LittleEndian.Uint16(b[i:]))
		case 4:
			immVal = int64(int32(binary.LittleEndian.Uint32(b[i:])))
		case 8:
			immVal = int64(binary.LittleEndian.Uint64(b[i:]))
		}
		hasImm = true
		i += immBytes
	}
	_ = hasImm

	if i > maxInstLen {
		return Inst{}, ErrInvalidOpcode
	}
	inst.Len = i

	classify(&inst, &pfx, opc, opByte2, twoByteMap, threeByteMap != 0,
		hasModRM, modrm, memIsReg, rmReg, regFld, mem, immCode, immVal)
	return inst, nil
}

// classify fills in the semantic fields of inst.
func classify(inst *Inst, pfx *prefixState, opc, op2 byte, twoByteMap, threeByteMap bool,
	hasModRM bool, modrm byte, memIsReg bool, rmReg, regFld Reg, mem MemRef,
	immCode uint8, immVal int64) {

	// Helper building the r/m operand.
	rmOperand := func() Operand {
		if memIsReg {
			return RegOp(rmReg)
		}
		return MemOp(mem)
	}
	setArgsMR := func(op Op) { // op r/m, r
		inst.Op = op
		inst.Args = []Operand{rmOperand(), RegOp(regFld)}
		inst.Classified = true
	}
	setArgsRM := func(op Op) { // op r, r/m
		inst.Op = op
		inst.Args = []Operand{RegOp(regFld), rmOperand()}
		inst.Classified = true
	}
	setArgsMI := func(op Op) { // op r/m, imm
		inst.Op = op
		inst.Args = []Operand{rmOperand(), ImmOp(immVal)}
		inst.Classified = true
	}
	relTarget := func() {
		inst.HasTarget = true
		inst.Target = inst.Addr + uint64(inst.Len) + uint64(immVal)
	}

	if threeByteMap {
		inst.Op = OpSse
		return
	}

	if twoByteMap {
		switch {
		case op2 == 0x05:
			inst.Op = OpSyscall
			inst.Classified = true
		case op2 == 0x0B:
			inst.Op = OpUd2
			inst.Classified = true
		case op2 == 0xA2:
			inst.Op = OpCpuid
			inst.Classified = true
		case op2 >= 0x18 && op2 <= 0x1F:
			// Hint NOP space. F3 0F 1E FA is ENDBR64.
			if pfx.rep == 0xF3 && op2 == 0x1E && modrm == 0xFA {
				inst.Op = OpEndbr64
			} else {
				inst.Op = OpNop
			}
			inst.Classified = true
		case op2 >= 0x40 && op2 <= 0x4F:
			inst.Cond = Cond(op2 & 0x0F)
			setArgsRM(OpCmovcc)
		case op2 >= 0x80 && op2 <= 0x8F:
			inst.Op = OpJcc
			inst.Cond = Cond(op2 & 0x0F)
			inst.Classified = true
			relTarget()
		case op2 >= 0x90 && op2 <= 0x9F:
			inst.Op = OpSetcc
			inst.Cond = Cond(op2 & 0x0F)
			inst.Args = []Operand{rmOperand()}
			inst.OpSize = 1
			inst.Classified = true
		case op2 == 0xAF:
			setArgsRM(OpImul)
		case op2 == 0xB6 || op2 == 0xB7:
			setArgsRM(OpMovzx)
		case op2 == 0xB8 && pfx.rep == 0xF3:
			setArgsRM(OpPopcnt)
		case op2 == 0xBC:
			setArgsRM(OpBsf)
		case op2 == 0xBD:
			setArgsRM(OpBsr)
		case op2 == 0xBE || op2 == 0xBF:
			setArgsRM(OpMovsx)
		case op2 >= 0xC8 && op2 <= 0xCF:
			inst.Op = OpBswap
			inst.Args = []Operand{RegOp(Reg(op2&7 | pfx.rexB()<<3))}
			inst.Classified = true
		case op2 == 0xC0 || op2 == 0xC1:
			setArgsMR(OpXadd)
		case op2 == 0xB0 || op2 == 0xB1:
			setArgsMR(OpCmpxchg)
		default:
			inst.Op = OpSse
		}
		return
	}

	// One-byte map.
	switch {
	case opc < 0x40 && (opc&7) <= 5 && oneByte[opc].valid:
		op := [8]Op{OpAdd, OpOr, OpAdc, OpSbb, OpAnd, OpSub, OpXor, OpCmp}[opc>>3]
		switch opc & 7 {
		case 0, 1:
			if opc&7 == 0 {
				inst.OpSize = 1
			}
			setArgsMR(op)
		case 2, 3:
			if opc&7 == 2 {
				inst.OpSize = 1
			}
			setArgsRM(op)
		case 4:
			inst.OpSize = 1
			inst.Op = op
			inst.Args = []Operand{RegOp(RAX), ImmOp(immVal)}
			inst.Classified = true
		case 5:
			inst.Op = op
			inst.Args = []Operand{RegOp(RAX), ImmOp(immVal)}
			inst.Classified = true
		}
	case opc == 0x63:
		setArgsRM(OpMovsxd)
	case opc >= 0x50 && opc <= 0x57:
		inst.Op = OpPush
		inst.Args = []Operand{RegOp(Reg(opc&7 | pfx.rexB()<<3))}
		inst.OpSize = 8
		inst.Classified = true
	case opc >= 0x58 && opc <= 0x5F:
		inst.Op = OpPop
		inst.Args = []Operand{RegOp(Reg(opc&7 | pfx.rexB()<<3))}
		inst.OpSize = 8
		inst.Classified = true
	case opc == 0x68 || opc == 0x6A:
		inst.Op = OpPush
		inst.Args = []Operand{ImmOp(immVal)}
		inst.OpSize = 8
		inst.Classified = true
	case opc == 0x69 || opc == 0x6B:
		inst.Op = OpImul
		inst.Args = []Operand{RegOp(regFld), rmOperand(), ImmOp(immVal)}
		inst.Classified = true
	case opc >= 0x70 && opc <= 0x7F:
		inst.Op = OpJcc
		inst.Cond = Cond(opc & 0x0F)
		inst.Classified = true
		relTarget()
	case opc == 0x80 || opc == 0x81 || opc == 0x83:
		op := [8]Op{OpAdd, OpOr, OpAdc, OpSbb, OpAnd, OpSub, OpXor, OpCmp}[(modrm>>3)&7]
		if opc == 0x80 {
			inst.OpSize = 1
		}
		setArgsMI(op)
	case opc == 0x84 || opc == 0x85:
		if opc == 0x84 {
			inst.OpSize = 1
		}
		setArgsMR(OpTest)
	case opc == 0x86 || opc == 0x87:
		setArgsMR(OpXchg)
	case opc == 0x88 || opc == 0x89:
		if opc == 0x88 {
			inst.OpSize = 1
		}
		setArgsMR(OpMov)
	case opc == 0x8A || opc == 0x8B:
		if opc == 0x8A {
			inst.OpSize = 1
		}
		setArgsRM(OpMov)
	case opc == 0x8D:
		setArgsRM(OpLea)
	case opc == 0x8F:
		inst.Op = OpPop
		inst.Args = []Operand{rmOperand()}
		inst.OpSize = 8
		inst.Classified = true
	case opc == 0x90:
		if pfx.rep == 0xF3 {
			inst.Op = OpNop // PAUSE
		} else if pfx.rexB() == 1 {
			inst.Op = OpXchg // xchg r8, rax
		} else {
			inst.Op = OpNop
		}
		inst.Classified = true
	case opc >= 0x91 && opc <= 0x97:
		inst.Op = OpXchg
		inst.Args = []Operand{RegOp(RAX), RegOp(Reg(opc&7 | pfx.rexB()<<3))}
		inst.Classified = true
	case opc == 0x98 || opc == 0x99:
		inst.Op = OpCwd
		inst.Classified = true
	case opc >= 0xA4 && opc <= 0xA7 || opc >= 0xAA && opc <= 0xAF:
		inst.Op = OpMovStr
		inst.Classified = true
	case opc == 0xA8 || opc == 0xA9:
		inst.Op = OpTest
		inst.Args = []Operand{RegOp(RAX), ImmOp(immVal)}
		inst.Classified = true
	case opc >= 0xB0 && opc <= 0xB7:
		inst.Op = OpMov
		inst.OpSize = 1
		inst.Args = []Operand{RegOp(Reg(opc&7 | pfx.rexB()<<3)), ImmOp(immVal)}
		inst.Classified = true
	case opc >= 0xB8 && opc <= 0xBF:
		inst.Op = OpMov
		inst.Args = []Operand{RegOp(Reg(opc&7 | pfx.rexB()<<3)), ImmOp(immVal)}
		inst.Classified = true
	case opc == 0xC0 || opc == 0xC1 || (opc >= 0xD0 && opc <= 0xD3):
		op := [8]Op{OpRol, OpRor, OpRol, OpRor, OpShl, OpShr, OpShl, OpSar}[(modrm>>3)&7]
		if opc == 0xC0 || opc == 0xC1 {
			setArgsMI(op)
		} else {
			inst.Op = op
			inst.Args = []Operand{rmOperand()}
			inst.Classified = true
		}
	case opc == 0xC2 || opc == 0xC3 || opc == 0xCA || opc == 0xCB:
		inst.Op = OpRet
		if opc == 0xC2 || opc == 0xCA {
			inst.Args = []Operand{ImmOp(immVal)}
		}
		inst.Classified = true
	case opc == 0xC6 || opc == 0xC7:
		if opc == 0xC6 {
			inst.OpSize = 1
		}
		setArgsMI(OpMov)
	case opc == 0xC8:
		inst.Op = OpEnter
		inst.Args = []Operand{ImmOp(immVal)}
		inst.Classified = true
	case opc == 0xC9:
		inst.Op = OpLeave
		inst.Classified = true
	case opc == 0xCC:
		inst.Op = OpInt3
		inst.Classified = true
	case opc == 0xCD:
		inst.Op = OpInt
		inst.Args = []Operand{ImmOp(immVal)}
		inst.Classified = true
	case opc == 0xE8:
		inst.Op = OpCall
		inst.Classified = true
		relTarget()
	case opc == 0xE9 || opc == 0xEB:
		inst.Op = OpJmp
		inst.Classified = true
		relTarget()
	case opc == 0xF4:
		inst.Op = OpHlt
		inst.Classified = true
	case opc == 0xF6 || opc == 0xF7:
		op := [8]Op{OpTest, OpTest, OpNot, OpNeg, OpMul, OpImul, OpDiv, OpIdiv}[(modrm>>3)&7]
		if opc == 0xF6 {
			inst.OpSize = 1
		}
		if op == OpTest {
			setArgsMI(op)
		} else {
			inst.Op = op
			inst.Args = []Operand{rmOperand()}
			inst.Classified = true
		}
	case opc == 0xFE:
		op := OpInc
		if (modrm>>3)&7 == 1 {
			op = OpDec
		}
		inst.OpSize = 1
		inst.Op = op
		inst.Args = []Operand{rmOperand()}
		inst.Classified = true
	case opc == 0xFF:
		switch (modrm >> 3) & 7 {
		case 0:
			inst.Op = OpInc
			inst.Args = []Operand{rmOperand()}
			inst.Classified = true
		case 1:
			inst.Op = OpDec
			inst.Args = []Operand{rmOperand()}
			inst.Classified = true
		case 2, 3:
			inst.Op = OpCallInd
			inst.Args = []Operand{rmOperand()}
			inst.Classified = true
		case 4, 5:
			inst.Op = OpJmpInd
			inst.Args = []Operand{rmOperand()}
			inst.Classified = true
		case 6:
			inst.Op = OpPush
			inst.Args = []Operand{rmOperand()}
			inst.OpSize = 8
			inst.Classified = true
		default:
			inst.Op = OpOther
		}
	case opc >= 0xD8 && opc <= 0xDF:
		inst.Op = OpFpu
	default:
		inst.Op = OpOther
	}
}

// DecodeAll decodes consecutive instructions until the window is
// exhausted or an error occurs; used by tests and linear sweeps.
func DecodeAll(b []byte, addr uint64) ([]Inst, error) {
	var out []Inst
	off := 0
	for off < len(b) {
		in, err := Decode(b[off:], addr+uint64(off))
		if err != nil {
			return out, fmt.Errorf("at %#x: %w", addr+uint64(off), err)
		}
		out = append(out, in)
		off += in.Len
	}
	return out, nil
}
