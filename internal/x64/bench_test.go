package x64

import "testing"

// benchSink keeps the decode loop from being optimized away.
var benchSink int

// benchCode assembles ~64 KiB of representative straight-line code —
// the prologue/ALU/memory mix synth emits — for throughput runs.
func benchCode(b *testing.B) []byte {
	b.Helper()
	var a Asm
	for a.Len() < 1<<16 {
		a.PushReg(RBP)
		a.MovRegReg(RBP, RSP)
		a.SubRSP(0x20)
		a.MovRegImm32(RAX, 0x1234)
		a.MovRegMem(RCX, RBP, -8)
		a.AddRegReg(RAX, RCX)
		a.CmpRegImm(RAX, 64)
		a.TestRegReg(RDI, RDI)
		a.ImulRegReg(RAX, RCX)
		a.ShlRegImm(RAX, 3)
		a.LeaRegMem(RDX, RSP, 0x10)
		a.MovMemReg(RBP, -16, RAX)
		a.AddRSP(0x20)
		a.PopReg(RBP)
		a.Ret()
	}
	code, fixups, err := a.Finish()
	if err != nil {
		b.Fatal(err)
	}
	if len(fixups) != 0 {
		b.Fatalf("bench code has %d unresolved fixups", len(fixups))
	}
	return code
}

// BenchmarkDecodeThroughput measures raw linear decode speed over the
// representative mix; MB/s is the headline cross-backend number
// (BENCH_10.json pairs it with the aarch64 twin).
func BenchmarkDecodeThroughput(b *testing.B) {
	code := benchCode(b)
	const base = 0x401000
	b.SetBytes(int64(len(code)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for off := 0; off < len(code); {
			in, err := Decode(code[off:], base+uint64(off))
			if err != nil {
				b.Fatal(err)
			}
			off += int(in.Len)
			n++
		}
		benchSink = n
	}
}
