package x64

// Immediate-size codes for the opcode tables. The actual byte count of
// immZ and immV depends on prefixes and is resolved during decode.
const (
	immNone  = 0
	immB     = 1 // 1 byte
	immW     = 2 // 2 bytes
	immZ     = 3 // 4 bytes (2 with 66 prefix)
	immV     = 4 // 4 bytes; 8 with REX.W; 2 with 66 (B8+r mov)
	immJb    = 5 // rel8
	immJz    = 6 // rel32 (rel16 with 66, not emitted by compilers)
	immWB    = 7 // imm16 + imm8 (ENTER)
	immMoffs = 8 // 8-byte absolute moffs (A0-A3 in 64-bit mode)
)

// opInfo describes one opcode map entry.
type opInfo struct {
	valid bool
	modrm bool
	imm   uint8
}

var (
	entInvalid = opInfo{}
	entPlain   = opInfo{valid: true}
	entM       = opInfo{valid: true, modrm: true}
	entIb      = opInfo{valid: true, imm: immB}
	entIw      = opInfo{valid: true, imm: immW}
	entIz      = opInfo{valid: true, imm: immZ}
	entMIb     = opInfo{valid: true, modrm: true, imm: immB}
	entMIz     = opInfo{valid: true, modrm: true, imm: immZ}
	entJb      = opInfo{valid: true, imm: immJb}
	entJz      = opInfo{valid: true, imm: immJz}
)

// oneByte is the one-byte opcode map for 64-bit mode. Prefix bytes
// (26, 2E, 36, 3E, 40-4F, 64-67, F0, F2, F3) are handled before table
// lookup and marked invalid here so stray lookups fail loudly.
var oneByte = buildOneByte()

func buildOneByte() [256]opInfo {
	var t [256]opInfo
	// ALU blocks: ADD, OR, ADC, SBB, AND, SUB, XOR, CMP share a layout:
	// op r/m,r | op r,r/m (byte and word/dword forms) then AL,Ib / eAX,Iz.
	for _, base := range []int{0x00, 0x08, 0x10, 0x18, 0x20, 0x28, 0x30, 0x38} {
		t[base+0] = entM
		t[base+1] = entM
		t[base+2] = entM
		t[base+3] = entM
		t[base+4] = entIb
		t[base+5] = entIz
		// base+6, base+7 are invalid in 64-bit mode (or prefixes,
		// which are intercepted earlier).
	}
	for b := 0x50; b <= 0x5F; b++ { // PUSH r / POP r
		t[b] = entPlain
	}
	t[0x63] = entM // MOVSXD
	t[0x68] = entIz
	t[0x69] = entMIz
	t[0x6A] = entIb
	t[0x6B] = entMIb
	for b := 0x6C; b <= 0x6F; b++ { // INS/OUTS
		t[b] = entPlain
	}
	for b := 0x70; b <= 0x7F; b++ { // Jcc rel8
		t[b] = entJb
	}
	t[0x80] = entMIb
	t[0x81] = entMIz
	t[0x83] = entMIb
	t[0x84] = entM
	t[0x85] = entM
	t[0x86] = entM
	t[0x87] = entM
	for b := 0x88; b <= 0x8B; b++ { // MOV
		t[b] = entM
	}
	t[0x8C] = entM
	t[0x8D] = entM // LEA
	t[0x8E] = entM
	t[0x8F] = entM                  // POP r/m
	for b := 0x90; b <= 0x97; b++ { // XCHG eAX / NOP
		t[b] = entPlain
	}
	t[0x98] = entPlain              // CWDE/CDQE
	t[0x99] = entPlain              // CDQ/CQO
	t[0x9B] = entPlain              // WAIT
	t[0x9C] = entPlain              // PUSHF
	t[0x9D] = entPlain              // POPF
	t[0x9E] = entPlain              // SAHF
	t[0x9F] = entPlain              // LAHF
	for b := 0xA0; b <= 0xA3; b++ { // MOV moffs
		t[b] = opInfo{valid: true, imm: immMoffs}
	}
	for b := 0xA4; b <= 0xA7; b++ { // MOVS/CMPS
		t[b] = entPlain
	}
	t[0xA8] = entIb
	t[0xA9] = entIz
	for b := 0xAA; b <= 0xAF; b++ { // STOS/LODS/SCAS
		t[b] = entPlain
	}
	for b := 0xB0; b <= 0xB7; b++ { // MOV r8, imm8
		t[b] = entIb
	}
	for b := 0xB8; b <= 0xBF; b++ { // MOV r, immV
		t[b] = opInfo{valid: true, imm: immV}
	}
	t[0xC0] = entMIb
	t[0xC1] = entMIb
	t[0xC2] = entIw    // RET imm16
	t[0xC3] = entPlain // RET
	t[0xC6] = entMIb
	t[0xC7] = entMIz
	t[0xC8] = opInfo{valid: true, imm: immWB} // ENTER
	t[0xC9] = entPlain                        // LEAVE
	t[0xCA] = entIw                           // RETF imm16
	t[0xCB] = entPlain                        // RETF
	t[0xCC] = entPlain                        // INT3
	t[0xCD] = entIb                           // INT imm8
	t[0xCF] = entPlain                        // IRET
	t[0xD0] = entM
	t[0xD1] = entM
	t[0xD2] = entM
	t[0xD3] = entM
	t[0xD7] = entPlain              // XLAT
	for b := 0xD8; b <= 0xDF; b++ { // x87 escapes
		t[b] = entM
	}
	for b := 0xE0; b <= 0xE3; b++ { // LOOPcc / JRCXZ
		t[b] = entJb
	}
	t[0xE4] = entIb // IN
	t[0xE5] = entIb
	t[0xE6] = entIb // OUT
	t[0xE7] = entIb
	t[0xE8] = entJz                 // CALL rel32
	t[0xE9] = entJz                 // JMP rel32
	t[0xEB] = entJb                 // JMP rel8
	for b := 0xEC; b <= 0xEF; b++ { // IN/OUT dx
		t[b] = entPlain
	}
	t[0xF1] = entPlain              // INT1
	t[0xF4] = entPlain              // HLT
	t[0xF5] = entPlain              // CMC
	t[0xF6] = entM                  // grp3: imm8 added when /0 or /1 (TEST)
	t[0xF7] = entM                  // grp3: immZ added when /0 or /1 (TEST)
	for b := 0xF8; b <= 0xFD; b++ { // CLC..STD
		t[b] = entPlain
	}
	t[0xFE] = entM // grp4
	t[0xFF] = entM // grp5
	return t
}

// twoByte is the 0F-escaped opcode map.
var twoByte = buildTwoByte()

func buildTwoByte() [256]opInfo {
	var t [256]opInfo
	t[0x00] = entM                  // grp6
	t[0x01] = entM                  // grp7
	t[0x02] = entM                  // LAR
	t[0x03] = entM                  // LSL
	t[0x05] = entPlain              // SYSCALL
	t[0x06] = entPlain              // CLTS
	t[0x07] = entPlain              // SYSRET
	t[0x08] = entPlain              // INVD
	t[0x09] = entPlain              // WBINVD
	t[0x0B] = entPlain              // UD2
	t[0x0D] = entM                  // prefetch
	for b := 0x10; b <= 0x17; b++ { // SSE moves
		t[b] = entM
	}
	for b := 0x18; b <= 0x1F; b++ { // hint NOPs, ENDBR64 (F3 0F 1E FA)
		t[b] = entM
	}
	for b := 0x28; b <= 0x2F; b++ { // SSE
		t[b] = entM
	}
	t[0x30] = entPlain // WRMSR
	t[0x31] = entPlain // RDTSC
	t[0x32] = entPlain // RDMSR
	t[0x33] = entPlain // RDPMC
	t[0x34] = entPlain // SYSENTER
	t[0x35] = entPlain // SYSEXIT
	// 0x38 and 0x3A are three-byte escapes handled in the decoder.
	for b := 0x40; b <= 0x4F; b++ { // CMOVcc
		t[b] = entM
	}
	for b := 0x50; b <= 0x6F; b++ { // SSE/MMX
		t[b] = entM
	}
	t[0x70] = entMIb // PSHUF*
	t[0x71] = entMIb // grp12
	t[0x72] = entMIb // grp13
	t[0x73] = entMIb // grp14
	t[0x74] = entM
	t[0x75] = entM
	t[0x76] = entM
	t[0x77] = entPlain // EMMS
	t[0x7E] = entM
	t[0x7F] = entM
	for b := 0x80; b <= 0x8F; b++ { // Jcc rel32
		t[b] = entJz
	}
	for b := 0x90; b <= 0x9F; b++ { // SETcc
		t[b] = entM
	}
	t[0xA0] = entPlain // PUSH FS
	t[0xA1] = entPlain // POP FS
	t[0xA2] = entPlain // CPUID
	t[0xA3] = entM     // BT
	t[0xA4] = entMIb   // SHLD imm8
	t[0xA5] = entM     // SHLD cl
	t[0xA8] = entPlain // PUSH GS
	t[0xA9] = entPlain // POP GS
	t[0xAA] = entPlain // RSM
	t[0xAB] = entM     // BTS
	t[0xAC] = entMIb   // SHRD imm8
	t[0xAD] = entM     // SHRD cl
	t[0xAE] = entM     // grp15 (fences, xsave)
	t[0xAF] = entM     // IMUL r, r/m
	t[0xB0] = entM     // CMPXCHG
	t[0xB1] = entM
	t[0xB3] = entM   // BTR
	t[0xB6] = entM   // MOVZX r, r/m8
	t[0xB7] = entM   // MOVZX r, r/m16
	t[0xB8] = entM   // POPCNT (with F3)
	t[0xBA] = entMIb // grp8: BT/BTS/BTR/BTC imm8
	t[0xBB] = entM   // BTC
	t[0xBC] = entM   // BSF/TZCNT
	t[0xBD] = entM   // BSR/LZCNT
	t[0xBE] = entM   // MOVSX r, r/m8
	t[0xBF] = entM   // MOVSX r, r/m16
	t[0xC0] = entM   // XADD
	t[0xC1] = entM
	t[0xC2] = entMIb                // CMPPS imm8
	t[0xC3] = entM                  // MOVNTI
	t[0xC4] = entMIb                // PINSRW
	t[0xC5] = entMIb                // PEXTRW
	t[0xC6] = entMIb                // SHUFPS
	t[0xC7] = entM                  // grp9 (CMPXCHG8B/16B)
	for b := 0xC8; b <= 0xCF; b++ { // BSWAP
		t[b] = entPlain
	}
	for b := 0xD0; b <= 0xFE; b++ { // SSE/MMX block
		t[b] = entM
	}
	// 0xFF (UD0) left invalid.
	return t
}
