package x64

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// finish is a test helper that finalizes the chunk.
func finish(t *testing.T, a *Asm) []byte {
	t.Helper()
	code, _, err := a.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return code
}

func TestAsmRoundTripSimple(t *testing.T) {
	var a Asm
	a.PushReg(RBP)
	a.MovRegReg(RBP, RSP)
	a.SubRSP(0x20)
	a.XorRegReg(RAX)
	a.MovRegImm32(RDI, 42)
	a.AddRSP(0x20)
	a.PopReg(RBP)
	a.Ret()
	code := finish(t, &a)

	insts, err := DecodeAll(code, 0x401000)
	if err != nil {
		t.Fatalf("DecodeAll: %v", err)
	}
	wantOps := []Op{OpPush, OpMov, OpSub, OpXor, OpMov, OpAdd, OpPop, OpRet}
	if len(insts) != len(wantOps) {
		t.Fatalf("decoded %d instructions, want %d", len(insts), len(wantOps))
	}
	for k, in := range insts {
		if in.Op != wantOps[k] {
			t.Errorf("inst %d op = %v, want %v", k, in.Op, wantOps[k])
		}
	}
}

func TestAsmLocalBranches(t *testing.T) {
	var a Asm
	a.Label("top")
	a.SubRegImm(RDI, 1)
	a.CmpRegImm(RDI, 0)
	a.Jcc(CondNE, "top")
	a.JccShort(CondE, "done")
	a.Jmp("top")
	a.Label("done")
	a.Ret()
	code := finish(t, &a)

	insts, err := DecodeAll(code, 0x1000)
	if err != nil {
		t.Fatalf("DecodeAll: %v", err)
	}
	// The jne must target chunk start.
	var sawBack, sawFwd bool
	for _, in := range insts {
		if in.Op == OpJcc && in.Cond == CondNE {
			sawBack = true
			if in.Target != 0x1000 {
				t.Errorf("jne target = %#x, want 0x1000", in.Target)
			}
		}
		if in.Op == OpJcc && in.Cond == CondE {
			sawFwd = true
			ret := insts[len(insts)-1]
			if in.Target != ret.Addr {
				t.Errorf("je target = %#x, want %#x", in.Target, ret.Addr)
			}
		}
	}
	if !sawBack || !sawFwd {
		t.Fatal("missing expected branches")
	}
}

func TestAsmFixups(t *testing.T) {
	var a Asm
	a.CallSym("callee")
	a.LeaRIP(RAX, "data", 8)
	a.JmpSym("tail")
	code, fixups, err := a.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if len(fixups) != 3 {
		t.Fatalf("got %d fixups, want 3", len(fixups))
	}
	for _, f := range fixups {
		if f.Kind != FixRel32 {
			t.Errorf("fixup kind = %v, want FixRel32", f.Kind)
		}
		if f.End != f.Off+4 {
			t.Errorf("fixup end = %d, want off+4", f.End)
		}
	}
	if fixups[1].Sym != "data" || fixups[1].Addend != 8 {
		t.Errorf("lea fixup = %+v", fixups[1])
	}
	// Unpatched (zero) rel32s still decode with correct lengths.
	if _, err := DecodeAll(code, 0); err != nil {
		t.Fatalf("DecodeAll: %v", err)
	}
}

func TestAsmJmpTableEncoding(t *testing.T) {
	var a Asm
	a.JmpTableAbs(RAX, "table")
	code, fixups, err := a.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if len(fixups) != 1 || fixups[0].Kind != FixAbs32 {
		t.Fatalf("fixups = %+v", fixups)
	}
	in, err := Decode(code, 0)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	m, ok := in.IndirectMem()
	if !ok || m.Index != RAX || m.Scale != 8 || m.Base != RegNone {
		t.Fatalf("mem = %+v ok=%v", m, ok)
	}
}

func TestAsmAllRegisters(t *testing.T) {
	for r := RAX; r <= R15; r++ {
		var a Asm
		a.PushReg(r)
		a.PopReg(r)
		a.MovRegReg(r, RSP)
		a.MovRegImm32(r, 7)
		a.XorRegReg(r)
		if r != RSP {
			a.AddRegImm(r, 1000)
			a.CmpRegImm(r, -1)
		}
		a.MovRegMem(r, RBP, -16)
		a.MovMemReg(RSP, 8, r)
		a.LeaRegMem(r, RSP, 0x40)
		a.CallReg(r)
		a.JmpReg(r)
		code := finish(t, &a)
		insts, err := DecodeAll(code, 0)
		if err != nil {
			t.Fatalf("reg %v: DecodeAll: %v", r, err)
		}
		// push/pop must reference the right register.
		if got := insts[0].Args[0].Reg; got != r {
			t.Errorf("push reg = %v, want %v", got, r)
		}
		if got := insts[1].Args[0].Reg; got != r {
			t.Errorf("pop reg = %v, want %v", got, r)
		}
	}
}

func TestAsmNopLengths(t *testing.T) {
	for n := 1; n <= 40; n++ {
		var a Asm
		a.Nop(n)
		code := finish(t, &a)
		if len(code) != n {
			t.Fatalf("Nop(%d) emitted %d bytes", n, len(code))
		}
		insts, err := DecodeAll(code, 0)
		if err != nil {
			t.Fatalf("Nop(%d): %v", n, err)
		}
		for _, in := range insts {
			if in.Op != OpNop {
				t.Errorf("Nop(%d) decoded %v", n, in.Op)
			}
		}
	}
}

func TestAsmMemoryFormsRoundTrip(t *testing.T) {
	disps := []int32{0, 1, -1, 127, -128, 128, -129, 0x1000, -0x1000}
	bases := []Reg{RAX, RCX, RDX, RBX, RSP, RBP, RSI, RDI, R8, R12, R13, R15}
	for _, base := range bases {
		for _, d := range disps {
			var a Asm
			a.MovRegMem(RAX, base, d)
			code := finish(t, &a)
			in, err := Decode(code, 0)
			if err != nil {
				t.Fatalf("base=%v disp=%d: %v", base, d, err)
			}
			if in.Len != len(code) {
				t.Fatalf("base=%v disp=%d: len %d != %d", base, d, in.Len, len(code))
			}
			if len(in.Args) != 2 || in.Args[1].Kind != KindMem {
				t.Fatalf("base=%v disp=%d: args %+v", base, d, in.Args)
			}
			m := in.Args[1].Mem
			if m.Base != base || m.Disp != int64(d) {
				t.Errorf("base=%v disp=%d: decoded [%v%+d]", base, d, m.Base, m.Disp)
			}
		}
	}
}

// TestQuickImmediateRoundTrip property-tests that 32-bit immediates
// survive an encode/decode round trip through several forms.
func TestQuickImmediateRoundTrip(t *testing.T) {
	f := func(v int32, regRaw uint8) bool {
		r := Reg(regRaw % 16)
		var a Asm
		a.MovRegImm32(r, v)
		code, _, err := a.Finish()
		if err != nil {
			return false
		}
		in, derr := Decode(code, 0)
		if derr != nil || in.Op != OpMov || in.Len != len(code) {
			return false
		}
		return in.Args[0].Reg == r && int32(in.Args[1].Imm) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickSubAddRSPRoundTrip property-tests stack adjustments: the
// decoded StackDelta must be the negation/value of the encoded amount.
func TestQuickSubAddRSPRoundTrip(t *testing.T) {
	f := func(raw int32) bool {
		amount := raw & 0x7FFFFFF // keep positive and in range
		var a Asm
		a.SubRSP(amount)
		a.AddRSP(amount)
		code, _, err := a.Finish()
		if err != nil {
			return false
		}
		insts, derr := DecodeAll(code, 0)
		if derr != nil || len(insts) != 2 {
			return false
		}
		d0, k0 := StackDelta(&insts[0])
		d1, k1 := StackDelta(&insts[1])
		return k0 && k1 && d0 == -int64(amount) && d1 == int64(amount)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickDecodeNeverPanicsOrOverruns feeds random bytes to the
// decoder: it must never panic, never report a length beyond the
// buffer, and never report length 0 on success.
func TestQuickDecodeNeverPanicsOrOverruns(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20000; trial++ {
		n := 1 + rng.Intn(18)
		b := make([]byte, n)
		for k := range b {
			b[k] = byte(rng.Intn(256))
		}
		in, err := Decode(b, 0x400000)
		if err != nil {
			continue
		}
		if in.Len <= 0 || in.Len > len(b) || in.Len > 15 {
			t.Fatalf("Decode(% x) len = %d out of bounds", b, in.Len)
		}
	}
}

// TestQuickLocalBranchTargets property-tests that a local forward jcc
// always lands exactly on its label across random padding sizes.
func TestQuickLocalBranchTargets(t *testing.T) {
	f := func(padRaw uint8) bool {
		pad := int(padRaw % 100)
		var a Asm
		a.Jcc(CondNE, "dst")
		a.Nop(pad)
		a.Label("dst")
		a.Ret()
		code, _, err := a.Finish()
		if err != nil {
			return false
		}
		in, derr := Decode(code, 0x7000)
		if derr != nil {
			return false
		}
		return in.HasTarget && in.Target == uint64(0x7000+6+pad)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
