package x64

import (
	"encoding/binary"
	"fmt"

	"fetch/internal/arch"
)

// FixupKind describes how a linker must patch a fixup site. The kinds
// live in arch (shared with the aarch64 assembler); this backend emits
// FixRel32, FixAbs32, and FixAbs64.
type FixupKind = arch.FixupKind

// Fixup kinds.
const (
	FixRel32 = arch.FixRel32
	FixAbs32 = arch.FixAbs32
	FixAbs64 = arch.FixAbs64
)

// Fixup is an unresolved reference to a symbol defined outside the
// assembled chunk. Offsets are relative to the chunk start.
type Fixup = arch.Fixup

// Asm assembles a chunk of x86-64 machine code with local labels and
// external fixups. The zero value is ready to use.
type Asm struct {
	buf    []byte
	labels map[string]int
	// pending local references, patched at Finish.
	localRefs []localRef
	fixups    []Fixup
	err       error
}

type localRef struct {
	off   int // offset of rel field
	end   int // offset just past the instruction
	size  int // 1 or 4
	label string
}

func (a *Asm) setErr(format string, args ...any) {
	if a.err == nil {
		a.err = fmt.Errorf(format, args...)
	}
}

// Len returns the current chunk length.
func (a *Asm) Len() int { return len(a.buf) }

// Label defines a local label at the current position.
func (a *Asm) Label(name string) {
	if a.labels == nil {
		a.labels = make(map[string]int)
	}
	if _, dup := a.labels[name]; dup {
		a.setErr("duplicate label %q", name)
		return
	}
	a.labels[name] = len(a.buf)
}

// LabelOff returns the chunk offset of a defined label.
func (a *Asm) LabelOff(name string) (int, bool) {
	off, ok := a.labels[name]
	return off, ok
}

// Finish resolves local references and returns the machine code and the
// remaining external fixups.
func (a *Asm) Finish() ([]byte, []Fixup, error) {
	for _, r := range a.localRefs {
		target, ok := a.labels[r.label]
		if !ok {
			a.setErr("undefined local label %q", r.label)
			break
		}
		rel := target - r.end
		switch r.size {
		case 1:
			if rel < -128 || rel > 127 {
				a.setErr("label %q out of rel8 range (%d)", r.label, rel)
			}
			a.buf[r.off] = byte(int8(rel))
		case 4:
			binary.LittleEndian.PutUint32(a.buf[r.off:], uint32(int32(rel)))
		}
	}
	if a.err != nil {
		return nil, nil, a.err
	}
	return a.buf, a.fixups, nil
}

func (a *Asm) emit(bs ...byte) { a.buf = append(a.buf, bs...) }

func (a *Asm) emitU32(v uint32) {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	a.buf = append(a.buf, tmp[:]...)
}

func (a *Asm) emitU64(v uint64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	a.buf = append(a.buf, tmp[:]...)
}

// rex builds a REX prefix; w sets 64-bit operand size, r/x/b extend the
// ModRM reg, SIB index, and ModRM rm / SIB base fields.
func rex(w bool, r, x, b Reg) byte {
	v := byte(0x40)
	if w {
		v |= 8
	}
	if ValidReg(r) && r >= R8 {
		v |= 4
	}
	if ValidReg(x) && x >= R8 {
		v |= 2
	}
	if ValidReg(b) && b >= R8 {
		v |= 1
	}
	return v
}

func modrmByte(mod, reg, rm byte) byte { return mod<<6 | (reg&7)<<3 | rm&7 }

// emitModRMReg emits a register-direct ModRM (mod=11).
func (a *Asm) emitModRMReg(reg, rm Reg) {
	a.emit(modrmByte(3, byte(reg), byte(rm)))
}

// emitModRMMem emits ModRM+SIB+disp for [base+disp] addressing.
// base must be a real register (not RIP).
func (a *Asm) emitModRMMem(reg, base Reg, disp int32) {
	needSIB := base&7 == 4 // rsp/r12 require SIB
	var mod byte
	switch {
	case disp == 0 && base&7 != 5: // rbp/r13 need disp8 even for 0
		mod = 0
	case disp >= -128 && disp <= 127:
		mod = 1
	default:
		mod = 2
	}
	if needSIB {
		a.emit(modrmByte(mod, byte(reg), 4))
		a.emit(0x24) // scale=1, index=none(100), base=rsp/r12
	} else {
		a.emit(modrmByte(mod, byte(reg), byte(base)))
	}
	switch mod {
	case 1:
		a.emit(byte(int8(disp)))
	case 2:
		a.emitU32(uint32(disp))
	}
}

// --- Stack and frame ---

// PushReg emits push r.
func (a *Asm) PushReg(r Reg) {
	if r >= R8 {
		a.emit(0x41)
	}
	a.emit(0x50 + byte(r&7))
}

// PopReg emits pop r.
func (a *Asm) PopReg(r Reg) {
	if r >= R8 {
		a.emit(0x41)
	}
	a.emit(0x58 + byte(r&7))
}

// PushImm32 emits push imm32.
func (a *Asm) PushImm32(v int32) {
	a.emit(0x68)
	a.emitU32(uint32(v))
}

// SubRSP emits sub rsp, imm (imm8 or imm32 form).
func (a *Asm) SubRSP(imm int32) { a.aluRSP(5, imm) }

// AddRSP emits add rsp, imm.
func (a *Asm) AddRSP(imm int32) { a.aluRSP(0, imm) }

func (a *Asm) aluRSP(ext byte, imm int32) {
	if imm >= -128 && imm <= 127 {
		a.emit(0x48, 0x83, modrmByte(3, ext, byte(RSP)), byte(int8(imm)))
	} else {
		a.emit(0x48, 0x81, modrmByte(3, ext, byte(RSP)))
		a.emitU32(uint32(imm))
	}
}

// AndRSP emits and rsp, imm8 (stack alignment).
func (a *Asm) AndRSP(imm int8) {
	a.emit(0x48, 0x83, modrmByte(3, 4, byte(RSP)), byte(imm))
}

// Enter emits enter frameSize, 0.
func (a *Asm) Enter(frameSize uint16) {
	a.emit(0xC8, byte(frameSize), byte(frameSize>>8), 0)
}

// Leave emits leave.
func (a *Asm) Leave() { a.emit(0xC9) }

// Ret emits ret.
func (a *Asm) Ret() { a.emit(0xC3) }

// --- Moves and arithmetic ---

// MovRegReg emits a 64-bit mov dst, src.
func (a *Asm) MovRegReg(dst, src Reg) {
	a.emit(rex(true, src, RegNone, dst), 0x89)
	a.emitModRMReg(src, dst)
}

// MovRegImm32 emits mov r32, imm32 (zero-extends into the 64-bit reg).
func (a *Asm) MovRegImm32(dst Reg, v int32) {
	if dst >= R8 {
		a.emit(0x41)
	}
	a.emit(0xB8 + byte(dst&7))
	a.emitU32(uint32(v))
}

// MovRegImm64 emits movabs dst, imm64.
func (a *Asm) MovRegImm64(dst Reg, v uint64) {
	a.emit(rex(true, RegNone, RegNone, dst), 0xB8+byte(dst&7))
	a.emitU64(v)
}

// MovRegImm64Sym emits movabs dst, imm64 whose immediate is patched to
// sym's absolute address at link time (a code-materialized function
// pointer).
func (a *Asm) MovRegImm64Sym(dst Reg, sym string) {
	a.emit(rex(true, RegNone, RegNone, dst), 0xB8+byte(dst&7))
	off := len(a.buf)
	a.emitU64(0)
	a.fixups = append(a.fixups, Fixup{Kind: FixAbs64, Off: off, End: len(a.buf), Sym: sym})
}

// MovRegMem emits a 64-bit mov dst, [base+disp].
func (a *Asm) MovRegMem(dst, base Reg, disp int32) {
	a.emit(rex(true, dst, RegNone, base), 0x8B)
	a.emitModRMMem(dst, base, disp)
}

// MovMemReg emits a 64-bit mov [base+disp], src.
func (a *Asm) MovMemReg(base Reg, disp int32, src Reg) {
	a.emit(rex(true, src, RegNone, base), 0x89)
	a.emitModRMMem(src, base, disp)
}

// MovMemImm32 emits mov dword [base+disp], imm32.
func (a *Asm) MovMemImm32(base Reg, disp int32, v int32) {
	if base >= R8 {
		a.emit(0x41)
	}
	a.emit(0xC7)
	a.emitModRMMem(0, base, disp)
	a.emitU32(uint32(v))
}

// XorRegReg emits a 32-bit xor dst, dst (the canonical zeroing idiom).
func (a *Asm) XorRegReg(dst Reg) {
	if dst >= R8 {
		a.emit(0x45)
	}
	a.emit(0x31)
	a.emitModRMReg(dst, dst)
}

// AddRegReg emits a 64-bit add dst, src.
func (a *Asm) AddRegReg(dst, src Reg) {
	a.emit(rex(true, src, RegNone, dst), 0x01)
	a.emitModRMReg(src, dst)
}

// SubRegReg emits a 64-bit sub dst, src.
func (a *Asm) SubRegReg(dst, src Reg) {
	a.emit(rex(true, src, RegNone, dst), 0x29)
	a.emitModRMReg(src, dst)
}

// AddRegImm emits a 64-bit add dst, imm.
func (a *Asm) AddRegImm(dst Reg, imm int32) { a.aluRegImm(0, dst, imm) }

// SubRegImm emits a 64-bit sub dst, imm.
func (a *Asm) SubRegImm(dst Reg, imm int32) { a.aluRegImm(5, dst, imm) }

// CmpRegImm emits a 64-bit cmp dst, imm.
func (a *Asm) CmpRegImm(dst Reg, imm int32) { a.aluRegImm(7, dst, imm) }

func (a *Asm) aluRegImm(ext byte, dst Reg, imm int32) {
	a.emit(rex(true, RegNone, RegNone, dst))
	if imm >= -128 && imm <= 127 {
		a.emit(0x83, modrmByte(3, ext, byte(dst)), byte(int8(imm)))
	} else {
		a.emit(0x81, modrmByte(3, ext, byte(dst)))
		a.emitU32(uint32(imm))
	}
}

// CmpRegReg emits a 64-bit cmp a, b.
func (a *Asm) CmpRegReg(x, y Reg) {
	a.emit(rex(true, y, RegNone, x), 0x39)
	a.emitModRMReg(y, x)
}

// TestRegReg emits a 64-bit test x, y.
func (a *Asm) TestRegReg(x, y Reg) {
	a.emit(rex(true, y, RegNone, x), 0x85)
	a.emitModRMReg(y, x)
}

// ImulRegReg emits a 64-bit imul dst, src.
func (a *Asm) ImulRegReg(dst, src Reg) {
	a.emit(rex(true, dst, RegNone, src), 0x0F, 0xAF)
	a.emitModRMReg(dst, src)
}

// ShlRegImm emits a 64-bit shl dst, imm8.
func (a *Asm) ShlRegImm(dst Reg, imm uint8) {
	a.emit(rex(true, RegNone, RegNone, dst), 0xC1, modrmByte(3, 4, byte(dst)), imm)
}

// LeaRegMem emits a 64-bit lea dst, [base+disp].
func (a *Asm) LeaRegMem(dst, base Reg, disp int32) {
	a.emit(rex(true, dst, RegNone, base), 0x8D)
	a.emitModRMMem(dst, base, disp)
}

// MovsxdRegMemIdx emits movsxd dst, dword [base + index*4].
func (a *Asm) MovsxdRegMemIdx(dst, base, index Reg) {
	a.emit(rex(true, dst, index, base), 0x63)
	sib := byte(2<<6) | byte(index&7)<<3 | byte(base&7)
	if base&7 == 5 {
		// rbp/r13 bases require an explicit disp8 under mod=01.
		a.emit(modrmByte(1, byte(dst), 4), sib, 0)
	} else {
		a.emit(modrmByte(0, byte(dst), 4), sib)
	}
}

// --- RIP-relative and externally-fixed-up forms ---

// LeaRIP emits lea dst, [rip+disp32] referring to sym+addend.
func (a *Asm) LeaRIP(dst Reg, sym string, addend int64) {
	a.emit(rex(true, dst, RegNone, RegNone), 0x8D, modrmByte(0, byte(dst), 5))
	off := len(a.buf)
	a.emitU32(0)
	a.fixups = append(a.fixups, Fixup{Kind: FixRel32, Off: off, End: len(a.buf), Sym: sym, Addend: addend})
}

// MovRegRIP emits mov dst, qword [rip+disp32] referring to sym+addend.
func (a *Asm) MovRegRIP(dst Reg, sym string, addend int64) {
	a.emit(rex(true, dst, RegNone, RegNone), 0x8B, modrmByte(0, byte(dst), 5))
	off := len(a.buf)
	a.emitU32(0)
	a.fixups = append(a.fixups, Fixup{Kind: FixRel32, Off: off, End: len(a.buf), Sym: sym, Addend: addend})
}

// CallSym emits call rel32 to an external symbol.
func (a *Asm) CallSym(sym string) {
	a.emit(0xE8)
	off := len(a.buf)
	a.emitU32(0)
	a.fixups = append(a.fixups, Fixup{Kind: FixRel32, Off: off, End: len(a.buf), Sym: sym})
}

// JmpSym emits jmp rel32 to an external symbol (tail calls, part links).
func (a *Asm) JmpSym(sym string) {
	a.emit(0xE9)
	off := len(a.buf)
	a.emitU32(0)
	a.fixups = append(a.fixups, Fixup{Kind: FixRel32, Off: off, End: len(a.buf), Sym: sym})
}

// JccSym emits a conditional jump rel32 to an external symbol.
func (a *Asm) JccSym(c Cond, sym string) {
	a.emit(0x0F, 0x80+byte(c))
	off := len(a.buf)
	a.emitU32(0)
	a.fixups = append(a.fixups, Fixup{Kind: FixRel32, Off: off, End: len(a.buf), Sym: sym})
}

// CallReg emits call r.
func (a *Asm) CallReg(r Reg) {
	if r >= R8 {
		a.emit(0x41)
	}
	a.emit(0xFF, modrmByte(3, 2, byte(r)))
}

// JmpReg emits jmp r.
func (a *Asm) JmpReg(r Reg) {
	if r >= R8 {
		a.emit(0x41)
	}
	a.emit(0xFF, modrmByte(3, 4, byte(r)))
}

// JmpTableAbs emits jmp qword [index*8 + table] with an absolute 32-bit
// table address fixed up to sym (the classic non-PIC jump-table idiom).
func (a *Asm) JmpTableAbs(index Reg, sym string) {
	if index >= R8 {
		a.emit(0x42) // REX.X
	}
	a.emit(0xFF, modrmByte(0, 4, 4))
	// SIB: scale=8, index, base=101 (disp32, no base)
	a.emit(byte(3<<6) | byte(index&7)<<3 | 5)
	off := len(a.buf)
	a.emitU32(0)
	a.fixups = append(a.fixups, Fixup{Kind: FixAbs32, Off: off, End: len(a.buf), Sym: sym})
}

// --- Local control flow ---

// Jmp emits jmp rel32 to a local label.
func (a *Asm) Jmp(label string) {
	a.emit(0xE9)
	off := len(a.buf)
	a.emitU32(0)
	a.localRefs = append(a.localRefs, localRef{off: off, end: len(a.buf), size: 4, label: label})
}

// JmpShort emits jmp rel8 to a local label.
func (a *Asm) JmpShort(label string) {
	a.emit(0xEB)
	off := len(a.buf)
	a.emit(0)
	a.localRefs = append(a.localRefs, localRef{off: off, end: len(a.buf), size: 1, label: label})
}

// Jcc emits a conditional jump rel32 to a local label.
func (a *Asm) Jcc(c Cond, label string) {
	a.emit(0x0F, 0x80+byte(c))
	off := len(a.buf)
	a.emitU32(0)
	a.localRefs = append(a.localRefs, localRef{off: off, end: len(a.buf), size: 4, label: label})
}

// JccShort emits a conditional jump rel8 to a local label.
func (a *Asm) JccShort(c Cond, label string) {
	a.emit(0x70 + byte(c))
	off := len(a.buf)
	a.emit(0)
	a.localRefs = append(a.localRefs, localRef{off: off, end: len(a.buf), size: 1, label: label})
}

// --- Misc ---

// AppendRaw appends raw bytes verbatim (deliberately malformed data,
// data islands, hand-written oddities).
func (a *Asm) AppendRaw(bs ...byte) { a.buf = append(a.buf, bs...) }

// Endbr64 emits endbr64.
func (a *Asm) Endbr64() { a.emit(0xF3, 0x0F, 0x1E, 0xFA) }

// Int3 emits int3.
func (a *Asm) Int3() { a.emit(0xCC) }

// Ud2 emits ud2.
func (a *Asm) Ud2() { a.emit(0x0F, 0x0B) }

// Syscall emits syscall.
func (a *Asm) Syscall() { a.emit(0x0F, 0x05) }

// Nop emits n bytes of padding using the canonical multi-byte NOP forms
// compilers use for alignment.
func (a *Asm) Nop(n int) {
	for n > 0 {
		k := n
		if k > 9 {
			k = 9
		}
		a.emit(nopForms[k]...)
		n -= k
	}
}

var nopForms = [...][]byte{
	1: {0x90},
	2: {0x66, 0x90},
	3: {0x0F, 0x1F, 0x00},
	4: {0x0F, 0x1F, 0x40, 0x00},
	5: {0x0F, 0x1F, 0x44, 0x00, 0x00},
	6: {0x66, 0x0F, 0x1F, 0x44, 0x00, 0x00},
	7: {0x0F, 0x1F, 0x80, 0x00, 0x00, 0x00, 0x00},
	8: {0x0F, 0x1F, 0x84, 0x00, 0x00, 0x00, 0x00, 0x00},
	9: {0x66, 0x0F, 0x1F, 0x84, 0x00, 0x00, 0x00, 0x00, 0x00},
}
