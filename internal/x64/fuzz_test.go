package x64

import "testing"

// FuzzDecode throws arbitrary bytes at the instruction decoder. The
// contract under fuzzing: never panic, and on success return a length
// within [1, 15] that does not exceed the window.
//
// Reproduce a failure from its seed with
//
//	go test ./internal/x64 -run 'FuzzDecode/<seedname>'
//
// after dropping the crasher file into testdata/fuzz/FuzzDecode/.
func FuzzDecode(f *testing.F) {
	seeds := [][]byte{
		{0x55},                         // push rbp
		{0x48, 0x89, 0xE5},             // mov rbp, rsp
		{0x48, 0x83, 0xEC, 0x20},       // sub rsp, 0x20
		{0xE8, 0x00, 0x00, 0x00, 0x00}, // call +0
		{0xE9, 0xFB, 0xFF, 0xFF, 0xFF}, // jmp -5
		{0xC3},                         // ret
		{0xF3, 0x0F, 0x1E, 0xFA},       // endbr64
		{0xFF, 0x24, 0xC5, 0x00, 0x10, 0x40, 0x00}, // jmp [rax*8+0x401000]
		{0x0F, 0x38, 0x00, 0xC0},                   // three-byte map
		{0x0F, 0x3A, 0x0F, 0xC0, 0x08},             // three-byte map with imm
		{0x66, 0x66, 0x66, 0x90},                   // stacked prefixes
		{0x48, 0xB8, 1, 2, 3, 4, 5, 6, 7, 8},       // movabs rax, imm64
		{0xC8, 0x10, 0x00, 0x00},                   // enter 0x10, 0
		{0x67, 0xA0, 1, 2, 3, 4},                   // moffs with addr32
		{0xF0, 0x0F, 0xB1, 0x0D, 1, 2, 3, 4},       // lock cmpxchg riprel
		{0x40, 0x41, 0x42, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48, 0x49, 0x4A, 0x4B, 0x4C, 0x4D, 0x4E, 0x4F}, // REX soup
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := Decode(data, 0x401000)
		if err != nil {
			return
		}
		if in.Len < 1 || in.Len > 15 {
			t.Fatalf("decoded length %d out of [1,15]", in.Len)
		}
		if in.Len > len(data) {
			t.Fatalf("decoded length %d exceeds window %d", in.Len, len(data))
		}
		// The semantic accessors must hold for any successful decode.
		_ = Writes(&in)
		_ = in.Constants()
		_, _ = in.IndirectMem()
		_ = in.Next()
	})
}
