package x64

import "fetch/internal/arch"

// ISA is the x86-64 backend of the arch.ISA interface. It is a
// stateless value; use the package-level Arch.
type ISA struct{}

// Arch is the shared x86-64 backend instance.
var Arch ISA

// EMachine is the ELF e_machine value of x86-64 (EM_X86_64).
const EMachine = 62

func init() {
	arch.Register(Arch)
	// Images that never declared a machine (hand-built test images,
	// historical callers) analyze as x86-64.
	arch.SetDefault(Arch)
}

// Name returns "x64".
func (ISA) Name() string { return "x64" }

// Machine returns EM_X86_64.
func (ISA) Machine() uint16 { return EMachine }

// MaxInstLen returns the architectural 15-byte limit.
func (ISA) MaxInstLen() int { return maxInstLen }

// InstAlign returns 1: x86-64 instructions are unaligned.
func (ISA) InstAlign() int { return 1 }

// Decode decodes the instruction at the start of b.
func (ISA) Decode(b []byte, addr uint64) (arch.Inst, error) { return Decode(b, addr) }

// SPReg returns RSP.
func (ISA) SPReg() arch.Reg { return RSP }

// FrameReg returns RBP.
func (ISA) FrameReg() arch.Reg { return RBP }

// GateReg returns RDI, the first System-V integer argument register
// (the §IV-C error/error_at_line gate).
func (ISA) GateReg() arch.Reg { return RDI }

// ArgRegs returns the System-V AMD64 integer argument registers.
func (ISA) ArgRegs() []arch.Reg { return ArgumentRegs[:] }

// IsArgReg reports whether r is a System-V integer argument register.
func (ISA) IsArgReg(r arch.Reg) bool { return IsArgumentReg(r) }

// RetAddrReg returns (0, false): on x86-64 the return address lives on
// the stack, not in a register.
func (ISA) RetAddrReg() (arch.Reg, bool) { return 0, false }

// RegCount returns 16: the validation loops range over RAX..R15.
func (ISA) RegCount() int { return 16 }

// Reads returns the instruction's register read set.
func (ISA) Reads(in *arch.Inst) arch.RegSet { return Reads(in) }

// Writes returns the instruction's register write set.
func (ISA) Writes(in *arch.Inst) arch.RegSet { return Writes(in) }

// StackDelta returns the instruction's RSP delta.
func (ISA) StackDelta(in *arch.Inst) (int64, bool) { return StackDelta(in) }

// GateEffect classifies the instruction's effect on the tracked RDI
// state (§IV-C): xor rdi,rdi and mov rdi,imm are the recognized
// definitions; any other RDI write degrades the state to unknown.
func (ISA) GateEffect(in *arch.Inst) arch.GateEffect {
	if w := Writes(in); in.IsCall() || !w.Has(RDI) {
		return arch.GateKeep
	}
	if in.Op == OpXor && len(in.Args) == 2 &&
		in.Args[0].Kind == KindReg && in.Args[0].Reg == RDI {
		return arch.GateSetZero
	}
	if in.Op == OpMov && len(in.Args) == 2 &&
		in.Args[0].Kind == KindReg && in.Args[0].Reg == RDI &&
		in.Args[1].Kind == KindImm {
		if in.Args[1].Imm == 0 {
			return arch.GateSetZero
		}
		return arch.GateSetNonZero
	}
	return arch.GateSetUnknown
}

// CFISPReg returns 7, the DWARF number of RSP.
func (ISA) CFISPReg() uint64 { return 7 }

// CFIRAReg returns 16, the DWARF return-address column of x86-64.
func (ISA) CFIRAReg() uint64 { return 16 }

// CFIEntryOffset returns 8: at entry the CFA is rsp+8 (the pushed
// return address), and §V-B stack heights are CFA offsets biased by it.
func (ISA) CFIEntryOffset() int64 { return 8 }

// ResolveJumpTable implements the bounded, DYNINST-style jump-table
// analysis (§IV-C). Two idioms are recognized, both requiring the
// bounding compare on the index register:
//
// non-PIC (absolute 8-byte entries):
//
//	cmp  idx, N-1
//	ja   default
//	jmp  [idx*8 + table]
//
// PIC (table-relative 4-byte entries):
//
//	cmp  idx, N-1
//	ja   default
//	lea  base, [rip+table]
//	movsxd tmp, dword [base + idx*4]
//	add  tmp, base
//	jmp  tmp
//
// Anything else is left unresolved (the safe choice).
func (ISA) ResolveJumpTable(ctx arch.JumpTableCtx, jmp *arch.Inst, maxEntries int64) []uint64 {
	if mem, ok := jmp.IndirectMem(); ok {
		return resolveAbsTable(ctx, jmp, mem, maxEntries)
	}
	if len(jmp.Args) == 1 && jmp.Args[0].Kind == KindReg {
		return resolvePICTable(ctx, jmp, jmp.Args[0].Reg, maxEntries)
	}
	return nil
}

// resolveAbsTable handles the absolute-entry idiom.
func resolveAbsTable(ctx arch.JumpTableCtx, jmp *arch.Inst, mem MemRef, maxEntries int64) []uint64 {
	if mem.RIPRel || mem.Base != RegNone || mem.Scale != 8 ||
		!ValidReg(mem.Index) || mem.Disp <= 0 {
		return nil
	}
	bound, ok := findBound(ctx, jmp.Addr, mem.Index)
	if !ok {
		return nil
	}
	if bound > maxEntries {
		bound = maxEntries
	}
	table := uint64(mem.Disp)
	ctx.RecordTableRead(table, table+uint64(8*bound))
	var out []uint64
	for k := int64(0); k < bound; k++ {
		entry, err := ctx.ReadU64(table + uint64(8*k))
		if err != nil {
			return nil // table runs off its section: reject entirely
		}
		if !ctx.IsExec(entry) {
			return nil // non-code entry: not a jump table we trust
		}
		out = append(out, entry)
	}
	return out
}

// resolvePICTable handles the position-independent idiom by walking
// the preceding decoded instructions for the add/movsxd/lea chain.
func resolvePICTable(ctx arch.JumpTableCtx, jmp *arch.Inst, target Reg, maxEntries int64) []uint64 {
	var (
		base                       = RegNone
		index                      = RegNone
		table                      uint64
		haveAdd, haveLoad, haveLea bool
	)
	addr := jmp.Addr
	for steps := 0; steps < 10; steps++ {
		in, ok := ctx.InstEndingAt(addr)
		if !ok {
			return nil
		}
		switch {
		case !haveAdd:
			// add target, base
			if in.Op == OpAdd && len(in.Args) == 2 &&
				in.Args[0].Kind == KindReg && in.Args[0].Reg == target &&
				in.Args[1].Kind == KindReg {
				base = in.Args[1].Reg
				haveAdd = true
			} else {
				return nil
			}
		case !haveLoad:
			// movsxd target, dword [base + idx*4]
			if in.Op == OpMovsxd && len(in.Args) == 2 &&
				in.Args[0].Kind == KindReg && in.Args[0].Reg == target &&
				in.Args[1].Kind == KindMem &&
				in.Args[1].Mem.Base == base && in.Args[1].Mem.Scale == 4 &&
				ValidReg(in.Args[1].Mem.Index) {
				index = in.Args[1].Mem.Index
				haveLoad = true
			} else {
				return nil
			}
		case !haveLea:
			// lea base, [rip+table]
			if in.Op == OpLea && len(in.Args) == 2 &&
				in.Args[0].Kind == KindReg && in.Args[0].Reg == base &&
				in.Args[1].Kind == KindMem && in.Args[1].Mem.RIPRel {
				table = uint64(int64(in.Addr) + int64(in.Len) + in.Args[1].Mem.Disp)
				haveLea = true
			}
			// Tolerate unrelated instructions between load and lea.
		default:
			bound, ok := findBound(ctx, in.Next(), index)
			if !ok {
				// Keep walking: the compare may sit further back.
				addr = in.Addr
				continue
			}
			n := bound
			if n > maxEntries {
				n = maxEntries
			}
			ctx.RecordTableRead(table, table+uint64(4*n))
			out := readPICEntries(ctx, table, bound, maxEntries)
			if len(out) > 0 {
				ctx.RecordTableBase(table)
			}
			return out
		}
		addr = in.Addr
	}
	return nil
}

// readPICEntries loads bound int32 table-relative offsets.
func readPICEntries(ctx arch.JumpTableCtx, table uint64, bound, maxEntries int64) []uint64 {
	if bound > maxEntries {
		bound = maxEntries
	}
	var out []uint64
	for k := int64(0); k < bound; k++ {
		raw, err := ctx.ReadU32(table + uint64(4*k))
		if err != nil {
			return nil
		}
		entry := uint64(int64(table) + int64(int32(raw)))
		if !ctx.IsExec(entry) {
			return nil
		}
		out = append(out, entry)
	}
	return out
}

// findBound scans recently decoded instructions immediately before the
// indirect jump for the bounding `cmp idx, imm` guarded by an
// above-branch.
func findBound(ctx arch.JumpTableCtx, jmpAddr uint64, idx Reg) (int64, bool) {
	var sawAbove bool
	// Walk backwards over the previous decoded instructions.
	addr := jmpAddr
	for steps := 0; steps < 8; steps++ {
		in, ok := ctx.InstEndingAt(addr)
		if !ok {
			return 0, false
		}
		switch in.Op {
		case OpJcc:
			if in.Cond == CondA || in.Cond == CondAE {
				sawAbove = true
			}
		case OpCmp:
			if sawAbove && len(in.Args) == 2 &&
				in.Args[0].Kind == KindReg && in.Args[0].Reg == idx &&
				in.Args[1].Kind == KindImm && in.Args[1].Imm >= 0 {
				return in.Args[1].Imm + 1, true
			}
		case OpMov, OpMovzx, OpMovsxd, OpLea:
			// Index massaging between the compare and the jump is
			// tolerated.
		default:
			return 0, false
		}
		addr = in.Addr
	}
	return 0, false
}
