// Package baseline re-implements the detection strategies the paper
// measures on top of call frames (Figure 5) and the pattern-driven
// tools it compares against (Table III). Each strategy is a composable
// pass over a Detection; each tool is a fixed pass pipeline with the
// strictness profile the paper describes in §II-B and §IV.
package baseline

import (
	"sort"

	"fetch/internal/arch"
	"fetch/internal/disasm"
	"fetch/internal/ehframe"
	"fetch/internal/elfx"
	"fetch/internal/tailcall"
	"fetch/internal/xref"
)

// Detection is the evolving function-start set of a strategy run.
type Detection struct {
	Funcs map[uint64]bool
	Res   *disasm.Result
	Sec   *ehframe.Section
	// Sess is the incremental disassembly session created by Rec;
	// later passes re-analyze through it instead of resweeping.
	Sess *disasm.Session
}

// Clone deep-copies the function set (the disassembly and session are
// shared — session runs depend only on their seed list, so branching
// strategy chains off one session is deterministic).
func (d *Detection) Clone() *Detection {
	cp := &Detection{
		Funcs: make(map[uint64]bool, len(d.Funcs)),
		Res:   d.Res,
		Sec:   d.Sec,
		Sess:  d.Sess,
	}
	for a := range d.Funcs {
		cp.Funcs[a] = true
	}
	return cp
}

// sortedFuncs returns starts in address order.
func (d *Detection) sortedFuncs() []uint64 {
	out := make([]uint64, 0, len(d.Funcs))
	for a := range d.Funcs {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func safeOpts() disasm.Options {
	return disasm.Options{ResolveJumpTables: true, NonReturning: true}
}

// FDE seeds a detection with the raw PC Begin values (the "FDE" rows).
func FDE(img *elfx.Image) (*Detection, error) {
	eh, ok := img.Section(".eh_frame")
	if !ok {
		return &Detection{Funcs: map[uint64]bool{}}, nil
	}
	sec, err := ehframe.Decode(eh.Bytes(), eh.Addr)
	if err != nil {
		return nil, err
	}
	d := &Detection{Funcs: make(map[uint64]bool), Sec: sec}
	for _, s := range sec.FunctionStarts() {
		d.Funcs[s] = true
	}
	return d, nil
}

// Rec runs safe recursive disassembly from the current starts plus the
// entry point, adding direct-call targets ("+Rec").
func Rec(img *elfx.Image, d *Detection) *Detection {
	out := d.Clone()
	seeds := out.sortedFuncs()
	if img.IsExec(img.Entry) {
		seeds = append(seeds, img.Entry)
	}
	out.Sess = disasm.NewSession(img, safeOpts())
	res := out.Sess.Extend(seeds)
	for f := range res.Funcs {
		out.Funcs[f] = true
	}
	out.Res = res
	return out
}

// CFR applies GHIDRA-style control-flow repairing ("+CFR"): the
// function start following a (sloppily detected) non-returning call is
// removed when no other control flow reaches it. The sloppiness —
// treating conditionally non-returning callees as always non-returning
// — is what makes the pass remove true starts (§IV-C).
func CFR(img *elfx.Image, d *Detection) *Detection {
	out := d.Clone()
	if out.Res == nil {
		return out
	}
	sloppyNonRet := make(map[uint64]bool, len(out.Res.NonRet)+len(out.Res.CondNonRet))
	for a := range out.Res.NonRet {
		sloppyNonRet[a] = true
	}
	for a := range out.Res.CondNonRet {
		sloppyNonRet[a] = true
	}
	starts := out.sortedFuncs()
	for addr, in := range out.Res.Insts {
		if in.Op != arch.OpCall || !sloppyNonRet[in.Target] {
			continue
		}
		// The next detected start after the call site, within a
		// plausible padding distance.
		i := sort.Search(len(starts), func(k int) bool { return starts[k] > addr })
		if i >= len(starts) {
			continue
		}
		next := starts[i]
		if next-addr > 96 {
			continue
		}
		if len(out.Res.Refs[next]) == 0 {
			delete(out.Funcs, next)
		}
	}
	return out
}

// Thunk applies GHIDRA's thunk heuristic: a detected function whose
// first instruction is a direct jump is a thunk, and the jump target
// becomes a new function start — a false positive whenever the target
// is the middle of another function.
func Thunk(img *elfx.Image, d *Detection) *Detection {
	out := d.Clone()
	for _, s := range d.sortedFuncs() {
		w, ok := img.BytesToSectionEnd(s)
		if !ok {
			continue
		}
		in, err := img.ISA().Decode(w, s)
		if err != nil || in.Op != arch.OpJmp || !in.HasTarget {
			continue
		}
		if img.IsExec(in.Target) {
			out.Funcs[in.Target] = true
		}
	}
	return out
}

// Fmerg applies ANGR's function-merging heuristic ("+Fmerg"): two
// adjacent detected functions connected by a jump that is the only
// outgoing transfer of the first and the only incoming transfer of the
// second are merged — deleting the second start even when it is a real
// function reached by a tail call.
func Fmerg(img *elfx.Image, d *Detection) *Detection {
	out := d.Clone()
	if out.Res == nil {
		return out
	}
	starts := d.sortedFuncs()
	for i := 0; i+1 < len(starts); i++ {
		a, b := starts[i], starts[i+1]
		refs := out.Res.Refs[b]
		if len(refs) != 1 || refs[0] < a || refs[0] >= b {
			continue
		}
		j, ok := out.Res.Insts[refs[0]]
		if !ok || j.Op != arch.OpJmp {
			continue
		}
		// The jump must be the only transfer leaving [a, b).
		sole := true
		for addr, in := range out.Res.Insts {
			if addr < a || addr >= b || addr == refs[0] {
				continue
			}
			if (in.IsCall() || in.IsBranch()) && in.HasTarget &&
				(in.Target < a || in.Target >= b) {
				sole = false
				break
			}
		}
		if sole {
			delete(out.Funcs, b)
		}
	}
	return out
}

// Align applies ANGR's alignment handling: when a detected function
// begins with padding instructions, the first non-padding instruction
// becomes an additional function start (3,973 false positives in the
// paper's corpus).
func Align(img *elfx.Image, d *Detection) *Detection {
	out := d.Clone()
	for _, s := range d.sortedFuncs() {
		addr := s
		padded := false
		for k := 0; k < 8; k++ {
			w, ok := img.BytesToSectionEnd(addr)
			if !ok {
				break
			}
			in, err := img.ISA().Decode(w, addr)
			if err != nil {
				break
			}
			if in.IsPadding() {
				padded = true
				addr = in.Next()
				continue
			}
			if padded {
				out.Funcs[addr] = true
			}
			break
		}
	}
	return out
}

// sigStyle selects a prologue-matching profile.
type sigStyle uint8

const (
	// sigGhidraStrict matches the canonical frame prologue at aligned
	// gap starts and validates by decoding forward — finding nothing
	// new in the paper's corpus and introducing nothing false.
	sigGhidraStrict sigStyle = iota + 1
	// sigAngrLoose matches looser byte patterns at any gap offset
	// without validation — a few finds, thousands of false positives.
	sigAngrLoose
)

// matchPrologue reports whether code at addr looks like a function
// prologue under the profile.
func matchPrologue(img *elfx.Image, addr uint64, style sigStyle) bool {
	b, err := img.Bytes(addr, 8)
	if err != nil {
		return false
	}
	// Skip an endbr64 marker.
	if b[0] == 0xF3 && b[1] == 0x0F && b[2] == 0x1E && b[3] == 0xFA {
		b2, err2 := img.Bytes(addr+4, 4)
		if err2 != nil {
			return false
		}
		b = append(b[:4:4], b2...)[4:]
	}
	pushRbpMov := b[0] == 0x55 && b[1] == 0x48 && b[2] == 0x89 && b[3] == 0xE5
	switch style {
	case sigGhidraStrict:
		return pushRbpMov
	case sigAngrLoose:
		if pushRbpMov {
			return true
		}
		// push r64 followed by a REX-prefixed instruction.
		if b[0]&0xF8 == 0x50 && b[1]&0xF0 == 0x40 {
			return true
		}
		return false
	}
	return false
}

// validateBySweep decodes forward from addr requiring n clean
// instructions (the GHIDRA-style post-match validation).
func validateBySweep(img *elfx.Image, addr uint64, n int) bool {
	for k := 0; k < n; k++ {
		w, ok := img.BytesToSectionEnd(addr)
		if !ok {
			return false
		}
		in, err := img.ISA().Decode(w, addr)
		if err != nil {
			return false
		}
		if in.Terminates() {
			return true
		}
		addr = in.Next()
	}
	return true
}

// Fsig applies prologue matching over the non-disassembled gaps
// ("+Fsig"), with the strictness of the named tool.
func Fsig(img *elfx.Image, d *Detection, style sigStyle) *Detection {
	out := d.Clone()
	if out.Res == nil {
		return out
	}
	for _, gap := range disasm.Gaps(img, out.Res) {
		switch style {
		case sigGhidraStrict:
			// Only aligned gap starts are considered.
			addr := (gap.Start + 15) &^ 15
			if addr < gap.End && matchPrologue(img, addr, style) &&
				validateBySweep(img, addr, 8) {
				out.Funcs[addr] = true
			}
		case sigAngrLoose:
			for addr := gap.Start; addr < gap.End; addr++ {
				if matchPrologue(img, addr, style) {
					out.Funcs[addr] = true
					break // one match per gap piece
				}
			}
		}
	}
	return out
}

// tcallStyle selects an unsafe tail-call heuristic profile.
type tcallStyle uint8

const (
	// tcallGhidra reasons about naive linear extents that end at the
	// first ret, so branches over early returns look like tail calls
	// (97,339 false positives in the paper's corpus).
	tcallGhidra tcallStyle = iota + 1
	// tcallAngr only considers terminal unconditional jumps leaving
	// the owning FDE range, without a stack-height check.
	tcallAngr
)

// Tcall applies the unsafe tail-call heuristics ("+Tcall").
func Tcall(img *elfx.Image, d *Detection, style tcallStyle) *Detection {
	out := d.Clone()
	if out.Res == nil {
		return out
	}
	switch style {
	case tcallGhidra:
		for _, s := range d.sortedFuncs() {
			end := naiveExtentEnd(img, s)
			for addr := s; addr < end; {
				in, ok := out.Res.Insts[addr]
				if !ok {
					addr++
					continue
				}
				if (in.Op == arch.OpJmp || in.Op == arch.OpJcc) && in.HasTarget {
					if (in.Target < s || in.Target >= end) && img.IsExec(in.Target) {
						out.Funcs[in.Target] = true
					}
				}
				addr = in.Next()
			}
		}
	case tcallAngr:
		ranges := fdeRangesOf(d)
		for addr, in := range out.Res.Insts {
			if in.Op != arch.OpJmp || !in.HasTarget || !img.IsExec(in.Target) {
				continue
			}
			r, ok := rangeCovering(ranges, addr)
			if !ok {
				continue
			}
			if in.Target < r.Start || in.Target >= r.End {
				out.Funcs[in.Target] = true
			}
		}
	}
	return out
}

// naiveExtentEnd decodes linearly from s to the first ret — the extent
// model behind the GHIDRA-style heuristic's false positives.
func naiveExtentEnd(img *elfx.Image, s uint64) uint64 {
	addr := s
	for k := 0; k < 2000; k++ {
		w, ok := img.BytesToSectionEnd(addr)
		if !ok {
			return addr
		}
		in, err := img.ISA().Decode(w, addr)
		if err != nil {
			return addr
		}
		addr = in.Next()
		if in.Op == arch.OpRet {
			return addr
		}
	}
	return addr
}

func fdeRangesOf(d *Detection) []disasm.FuncRange {
	if d.Sec == nil {
		return nil
	}
	out := make([]disasm.FuncRange, 0, len(d.Sec.FDEs))
	for _, f := range d.Sec.FDEs {
		out = append(out, disasm.FuncRange{Start: f.PCBegin, End: f.End()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

func rangeCovering(ranges []disasm.FuncRange, addr uint64) (disasm.FuncRange, bool) {
	i := sort.Search(len(ranges), func(k int) bool { return ranges[k].End > addr })
	if i < len(ranges) && ranges[i].Start <= addr {
		return ranges[i], true
	}
	return disasm.FuncRange{}, false
}

// Scan applies ANGR's linear scan ("+Scan"): every correctly
// disassembling piece of a gap begins a new "function" — including
// every padding run, which is why the pass eliminated full accuracy on
// every binary in the paper.
func Scan(img *elfx.Image, d *Detection) *Detection {
	out := d.Clone()
	if out.Res == nil {
		return out
	}
	for _, gap := range disasm.Gaps(img, out.Res) {
		addr := gap.Start
		pieceStart := true
		for addr < gap.End {
			w, ok := img.BytesToSectionEnd(addr)
			if !ok {
				break
			}
			if m := gap.End - addr; uint64(len(w)) > m {
				w = w[:m]
			}
			in, err := img.ISA().Decode(w, addr)
			if err != nil {
				addr += uint64(img.ISA().InstAlign())
				pieceStart = true
				continue
			}
			if pieceStart {
				out.Funcs[addr] = true
				pieceStart = false
			}
			addr = in.Next()
		}
	}
	return out
}

// FsigGhidra applies GHIDRA-strict prologue matching.
func FsigGhidra(img *elfx.Image, d *Detection) *Detection { return Fsig(img, d, sigGhidraStrict) }

// FsigAngr applies ANGR-loose prologue matching.
func FsigAngr(img *elfx.Image, d *Detection) *Detection { return Fsig(img, d, sigAngrLoose) }

// TcallGhidra applies the GHIDRA-style unsafe tail-call heuristic.
func TcallGhidra(img *elfx.Image, d *Detection) *Detection { return Tcall(img, d, tcallGhidra) }

// TcallAngr applies the ANGR-style unsafe tail-call heuristic.
func TcallAngr(img *elfx.Image, d *Detection) *Detection { return Tcall(img, d, tcallAngr) }

// Xref applies the §IV-E conservative function-pointer detection on
// top of a detection (the "+Xref" rows of Figure 5c).
func Xref(img *elfx.Image, d *Detection) *Detection {
	out := d.Clone()
	if out.Res == nil {
		return out
	}
	newly := xref.Detect(img, out.Res, out.Funcs, xref.Options{
		KnownRanges: fdeRangesOf(out),
		Session:     out.Sess,
	})
	for _, a := range newly {
		out.Funcs[a] = true
	}
	if len(newly) > 0 {
		// The historical seed list is the sorted accepted set, not an
		// append of newly — Rerun keeps that exact order while reusing
		// the decode cache.
		seeds := out.sortedFuncs()
		if out.Sess != nil {
			out.Res = out.Sess.Rerun(seeds)
		} else {
			out.Res = disasm.Recursive(img, seeds, safeOpts())
		}
		for f := range out.Res.Funcs {
			out.Funcs[f] = true
		}
	}
	return out
}

// SafeTailCall applies Algorithm 1 (the "+Tcall" of Figure 5c,
// i.e. FETCH's safe variant rather than the heuristics above).
func SafeTailCall(img *elfx.Image, d *Detection) *Detection {
	out := d.Clone()
	if out.Res == nil || out.Sec == nil {
		return out
	}
	tc := tailcall.Run(tailcall.Input{
		Img:   img,
		Sec:   out.Sec,
		Res:   out.Res,
		Funcs: out.Funcs,
		DataRefCount: func(a uint64) int {
			return xref.DataRefCount(img, a)
		},
		Sess: out.Sess,
	})
	out.Funcs = tc.Funcs
	return out
}
