package baseline

import (
	"sort"

	"fetch/internal/arch"
	"fetch/internal/callconv"
	"fetch/internal/disasm"
	"fetch/internal/elfx"
)

// Tool identifies a Table III comparator.
type Tool uint8

// The tools compared in Table III, paper column order.
const (
	ToolDyninst Tool = iota + 1
	ToolBAP
	ToolRadare2
	ToolNucleus
	ToolIDA
	ToolNinja
	ToolGhidra
	ToolAngr
	ToolFETCH
)

// String names the tool as in the paper.
func (t Tool) String() string {
	switch t {
	case ToolDyninst:
		return "DYNINST"
	case ToolBAP:
		return "BAP"
	case ToolRadare2:
		return "RADARE2"
	case ToolNucleus:
		return "NUCLEUS"
	case ToolIDA:
		return "IDA PRO"
	case ToolNinja:
		return "BINARY NINJA"
	case ToolGhidra:
		return "GHIDRA"
	case ToolAngr:
		return "ANGR"
	case ToolFETCH:
		return "FETCH"
	}
	return "?"
}

// AllTools lists the Table III comparators in paper order.
var AllTools = []Tool{
	ToolDyninst, ToolBAP, ToolRadare2, ToolNucleus,
	ToolIDA, ToolNinja, ToolGhidra, ToolAngr, ToolFETCH,
}

// Run executes the tool's detection pipeline on a (stripped) image and
// returns its detected function-start set.
func Run(tool Tool, img *elfx.Image) (map[uint64]bool, error) {
	switch tool {
	case ToolDyninst:
		return hybridTool(img, hybridProfile{
			broadPrologues: true,
			validateDecode: false,
			validateConv:   false,
			noEndbr:        true,
		}), nil
	case ToolBAP:
		return byteweightTool(img), nil
	case ToolRadare2:
		return hybridTool(img, hybridProfile{
			broadPrologues: false,
			validateDecode: true,
			validateConv:   false,
			noTables:       true,
		}), nil
	case ToolNucleus:
		return nucleusTool(img), nil
	case ToolIDA:
		return hybridTool(img, hybridProfile{
			broadPrologues: true,
			validateDecode: true,
			validateConv:   true,
		}), nil
	case ToolNinja:
		return ninjaTool(img), nil
	case ToolGhidra:
		d, err := FDE(img)
		if err != nil {
			return nil, err
		}
		d = Rec(img, d)
		d = CFR(img, d)
		d = Thunk(img, d)
		d = Fsig(img, d, sigGhidraStrict)
		return d.Funcs, nil
	case ToolAngr:
		d, err := FDE(img)
		if err != nil {
			return nil, err
		}
		d = Rec(img, d)
		d = Fmerg(img, d)
		d = Align(img, d)
		d = Fsig(img, d, sigAngrLoose)
		return d.Funcs, nil
	case ToolFETCH:
		d, err := FDE(img)
		if err != nil {
			return nil, err
		}
		d = Rec(img, d)
		d = Xref(img, d)
		d = SafeTailCall(img, d)
		return d.Funcs, nil
	}
	return nil, nil
}

// hybridProfile tunes the conventional hybrid pipeline (§II-B): entry
// recursion, prologue matching over gaps, recursion from matches.
type hybridProfile struct {
	// broadPrologues also accepts push-of-callee-saved, enter, and
	// sub-rsp openings; otherwise only the canonical push rbp; mov
	// rbp, rsp (with optional endbr64) matches.
	broadPrologues bool
	// validateDecode requires a clean forward decode from a match.
	validateDecode bool
	// validateConv additionally requires the §IV-E convention check.
	validateConv bool
	// noTables disables jump-table resolution during recursion (the
	// tools without a bounded-table analysis miss case-block-only
	// call sites).
	noTables bool
	// noEndbr drops endbr64 from the pattern set (pre-CET tooling).
	noEndbr bool
}

// hybridTool implements the DYNINST/RADARE2/IDA-style pipeline without
// exception-handling information.
func hybridTool(img *elfx.Image, p hybridProfile) map[uint64]bool {
	funcs := map[uint64]bool{}
	seeds := []uint64{}
	if img.IsExec(img.Entry) {
		seeds = append(seeds, img.Entry)
		funcs[img.Entry] = true
	}
	opts := safeOpts()
	if p.noTables {
		opts.ResolveJumpTables = false
	}
	// One session across the match-recurse rounds: each round extends
	// with the newly matched starts instead of resweeping.
	sess := disasm.NewSession(img, opts)
	var res *disasm.Result
	newSeeds := seeds
	for iter := 0; iter < 8; iter++ {
		res = sess.Extend(newSeeds)
		for f := range res.Funcs {
			funcs[f] = true
		}
		var found []uint64
		for _, gap := range disasm.Gaps(img, res) {
			// Probe 8-byte-aligned offsets across the gap; the first
			// accepted match wins (the hybrids' scan granularity).
			for addr := (gap.Start + 7) &^ 7; addr < gap.End; addr += 8 {
				if funcs[addr] {
					continue
				}
				if !matchHybridPrologue(img, addr, p.broadPrologues, p.noEndbr) {
					continue
				}
				if p.validateDecode && !validateBySweep(img, addr, 8) {
					continue
				}
				if p.validateConv && !callconv.Validate(img, addr) {
					continue
				}
				found = append(found, addr)
				break
			}
		}
		if len(found) == 0 {
			break
		}
		for _, a := range found {
			funcs[a] = true
		}
		newSeeds = found
	}
	return funcs
}

// matchHybridPrologue is the non-FDE tools' pattern set.
func matchHybridPrologue(img *elfx.Image, addr uint64, broad, noEndbr bool) bool {
	b, err := img.Bytes(addr, 8)
	if err != nil {
		return false
	}
	if !noEndbr && b[0] == 0xF3 && b[1] == 0x0F && b[2] == 0x1E && b[3] == 0xFA {
		return true // endbr64 is a strong entry marker
	}
	if b[0] == 0x55 && b[1] == 0x48 && b[2] == 0x89 && b[3] == 0xE5 {
		return true
	}
	if !broad {
		return false
	}
	if b[0]&0xF8 == 0x50 && b[0] != 0x54 { // push r64 (not rsp)
		return true
	}
	if b[0] == 0x41 && b[1]&0xF8 == 0x50 { // push r8-r15
		return true
	}
	if b[0] == 0x48 && b[1] == 0x83 && b[2] == 0xEC { // sub rsp, imm8
		return true
	}
	if b[0] == 0xC8 { // enter
		return true
	}
	return false
}

// byteweightTool approximates BAP/BYTEWEIGHT: learned byte signatures
// matched at every offset of the executable sections, with recursion
// from matches — the scan-everything behaviour behind its six-digit
// false-positive counts.
func byteweightTool(img *elfx.Image) map[uint64]bool {
	funcs := map[uint64]bool{}
	var seeds []uint64
	if img.IsExec(img.Entry) {
		seeds = append(seeds, img.Entry)
	}
	for _, sec := range img.ExecSections() {
		for addr := sec.Addr; addr+8 < sec.End(); addr++ {
			b, err := img.Bytes(addr, 4)
			if err != nil {
				continue
			}
			hit := false
			switch {
			case b[0] == 0x55 && b[1] == 0x48: // push rbp; REX...
				hit = true
			case b[0] == 0xF3 && b[1] == 0x0F && b[2] == 0x1E && b[3] == 0xFA:
				hit = true
			case b[0] == 0x48 && b[1] == 0x83 && b[2] == 0xEC:
				hit = true
			case b[0] == 0x41 && b[1] >= 0x54 && b[1] <= 0x57: // push r12-r15
				hit = true
			}
			if hit {
				seeds = append(seeds, addr)
			}
		}
	}
	res := disasm.Recursive(img, seeds, disasm.Options{ResolveJumpTables: true})
	for f := range res.Funcs {
		funcs[f] = true
	}
	for _, s := range seeds {
		funcs[s] = true
	}
	return funcs
}

// nucleusTool approximates NUCLEUS: linear sweep, intra-procedural
// grouping, function starts at call targets and group leaders. Its
// characteristic failure modes are preserved: inline data in .text
// desynchronizes the sweep and fall-through chains swallow functions
// after non-terminated regions; .rodata-resident jump tables are
// resolved but in-text tables are not, leaving their case blocks as
// spurious leaders.
func nucleusTool(img *elfx.Image) map[uint64]bool {
	funcs := map[uint64]bool{}
	if img.IsExec(img.Entry) {
		funcs[img.Entry] = true
	}
	for _, sec := range img.ExecSections() {
		insts := disasm.LinearSweep(img, sec.Addr, sec.End())
		incoming := map[uint64]bool{}
		callTargets := map[uint64]bool{}
		addrs := make([]uint64, 0, len(insts))
		for a := range insts {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		for _, a := range addrs {
			in := insts[a]
			if in.HasTarget {
				if in.Op == arch.OpCall {
					if img.IsExec(in.Target) {
						callTargets[in.Target] = true
					}
				} else if img.IsExec(in.Target) {
					incoming[in.Target] = true
				}
			}
			if m, ok := in.IndirectMem(); ok && in.Op == arch.OpJmpInd &&
				m.Base == arch.RegNone && m.Scale == 8 && m.Disp > 0 {
				// Table-resolution only looks at data sections; inline
				// tables in .text stay opaque.
				if s, ok2 := img.SectionAt(uint64(m.Disp)); ok2 && s.Flags&elfx.FlagExec == 0 {
					for k := 0; k < 64; k++ {
						entry, err := img.ReadU64(uint64(m.Disp) + uint64(8*k))
						if err != nil || !img.IsExec(entry) {
							break
						}
						incoming[entry] = true
					}
				}
			}
		}
		for t := range callTargets {
			funcs[t] = true
		}
		// Group leaders: instructions not reached by any intra edge
		// with no live fall-through chain arriving from above. NOP
		// padding decodes as code and is grouped with what follows, so
		// the reported start of a padded group is the padding start —
		// the off-by-padding error behind NUCLEUS's paired FP/FN
		// counts. Call targets split groups (they are known starts),
		// so functions reached by direct calls stay exact.
		alive := false
		var padStart uint64
		havePad := false
		for _, a := range addrs {
			in := insts[a]
			if in.Op == arch.OpNop {
				if !alive && !havePad {
					padStart = a
					havePad = true
				}
				continue
			}
			if in.Op == arch.OpInt3 {
				alive = false
				havePad = false
				continue
			}
			if callTargets[a] {
				havePad = false
			}
			if !alive && !incoming[a] && !callTargets[a] {
				if havePad {
					funcs[padStart] = true // off by the padding run
				} else {
					funcs[a] = true
				}
			}
			havePad = false
			alive = !in.Terminates()
		}
	}
	return funcs
}

// ninjaTool approximates BINARY NINJA: an aggressive hybrid — broad
// prologue matching without validation plus a linear scan that
// promotes prologue-looking gap pieces, iterated with recursion until
// the detection stabilizes. It has no bounded jump-table analysis, so
// case-block-only call sites stay invisible.
func ninjaTool(img *elfx.Image) map[uint64]bool {
	funcs := hybridTool(img, hybridProfile{broadPrologues: true, noTables: true})
	opts := safeOpts()
	opts.ResolveJumpTables = false
	// The seed list is rebuilt (sorted) each round, so Rerun rather
	// than Extend keeps the historical order with cached decoding.
	sess := disasm.NewSession(img, opts)
	for iter := 0; iter < 6; iter++ {
		seeds := make([]uint64, 0, len(funcs))
		for f := range funcs {
			seeds = append(seeds, f)
		}
		sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })
		res := sess.Rerun(seeds)
		for f := range res.Funcs {
			funcs[f] = true
		}
		added := 0
		for _, gap := range disasm.Gaps(img, res) {
			if gap.Len() < 16 {
				continue
			}
			if disasm.IsPaddingRun(img, gap.Start, gap.End) {
				continue
			}
			// Skip leading padding, then promote the piece start when
			// it looks like an entry and decodes cleanly.
			addr := gap.Start
			for addr < gap.End {
				w, ok := img.BytesToSectionEnd(addr)
				if !ok {
					break
				}
				in, err := img.ISA().Decode(w, addr)
				if err != nil || !in.IsPadding() {
					break
				}
				addr = in.Next()
			}
			if addr < gap.End && !funcs[addr] &&
				matchHybridPrologue(img, addr, true, false) &&
				validateBySweep(img, addr, 4) {
				funcs[addr] = true
				added++
			}
		}
		if added == 0 {
			break
		}
	}
	return funcs
}
