package baseline

import (
	"testing"

	"fetch/internal/elfx"
	"fetch/internal/groundtruth"
	"fetch/internal/metrics"
	"fetch/internal/synth"
)

func build(t *testing.T, seed int64, mutate func(*synth.Config)) (*elfx.Image, *groundtruth.Truth) {
	t.Helper()
	cfg := synth.DefaultConfig("baseline-test", seed, synth.O2, synth.GCC, synth.LangC)
	if mutate != nil {
		mutate(&cfg)
	}
	img, truth, err := synth.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return img.Strip(), truth
}

func TestFDEAndRec(t *testing.T) {
	img, truth := build(t, 800, nil)
	d, err := FDE(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Funcs) == 0 {
		t.Fatal("no FDE starts")
	}
	r := Rec(img, d)
	if len(r.Funcs) < len(d.Funcs) {
		t.Fatal("Rec lost starts")
	}
	if r.Res == nil {
		t.Fatal("Rec left no disassembly")
	}
	// The clone must not alias: mutating r must not affect d.
	if len(d.Funcs) == len(r.Funcs) {
		t.Log("Rec added nothing (fine when no asm functions)")
	}
	e := metrics.Evaluate(r.Funcs, truth)
	if e.FN > len(truth.Funcs)/10 {
		t.Fatalf("FDE+Rec FN too high: %d", e.FN)
	}
}

func TestThunkAddsMidTargets(t *testing.T) {
	img, truth := build(t, 801, nil)
	d, _ := FDE(img)
	d = Rec(img, d)
	th := Thunk(img, d)
	// Thunk can only add.
	if len(th.Funcs) < len(d.Funcs) {
		t.Fatal("Thunk removed starts")
	}
	// Any additions must be jump targets of single-jump functions;
	// additions that are not true starts are the documented FPs.
	added := 0
	for a := range th.Funcs {
		if !d.Funcs[a] {
			added++
			_ = truth // additions may be true or false; both acceptable
		}
	}
	t.Logf("thunk additions: %d", added)
}

func TestScanKillsAccuracy(t *testing.T) {
	img, truth := build(t, 802, nil)
	d, _ := FDE(img)
	d = Rec(img, d)
	before := metrics.Evaluate(d.Funcs, truth)
	s := Scan(img, d)
	after := metrics.Evaluate(s.Funcs, truth)
	if after.FP <= before.FP {
		t.Fatalf("Scan added no FPs: %d <= %d", after.FP, before.FP)
	}
	// Scan never removes detections.
	if after.FN > before.FN {
		t.Fatalf("Scan increased FN: %d > %d", after.FN, before.FN)
	}
}

func TestTcallHeuristicsDiffer(t *testing.T) {
	img, truth := build(t, 803, func(c *synth.Config) {
		c.EarlyRetRate = 0.5
	})
	d, _ := FDE(img)
	d = Rec(img, d)
	g := metrics.Evaluate(TcallGhidra(img, d).Funcs, truth)
	a := metrics.Evaluate(TcallAngr(img, d).Funcs, truth)
	base := metrics.Evaluate(d.Funcs, truth)
	// The GHIDRA-style heuristic (naive extents) must be far noisier
	// than the ANGR-style one — the Figure 5a vs 5b contrast.
	if g.FP <= a.FP {
		t.Fatalf("ghidra tcall FP %d <= angr tcall FP %d", g.FP, a.FP)
	}
	if g.FP <= base.FP {
		t.Fatal("ghidra tcall added no FPs")
	}
}

func TestCFROnlyRemoves(t *testing.T) {
	img, _ := build(t, 804, func(c *synth.Config) {
		c.NonRetCallRate = 0.3
	})
	d, _ := FDE(img)
	d = Rec(img, d)
	c := CFR(img, d)
	if len(c.Funcs) > len(d.Funcs) {
		t.Fatal("CFR added starts")
	}
}

func TestFmergOnlyRemoves(t *testing.T) {
	img, _ := build(t, 805, func(c *synth.Config) {
		c.TailCallRate = 0.4
	})
	d, _ := FDE(img)
	d = Rec(img, d)
	m := Fmerg(img, d)
	if len(m.Funcs) > len(d.Funcs) {
		t.Fatal("Fmerg added starts")
	}
}

func TestAlignSplitsPaddedEntries(t *testing.T) {
	img, truth := build(t, 806, func(c *synth.Config) {
		c.StartPadRate = 0.3
	})
	d, _ := FDE(img)
	d = Rec(img, d)
	al := Align(img, d)
	added := 0
	for a := range al.Funcs {
		if !d.Funcs[a] {
			added++
			if truth.IsStart(a) {
				t.Errorf("alignment split landed on a true start %#x", a)
			}
		}
	}
	if added == 0 {
		t.Fatal("Align added nothing at 30% start-pad rate")
	}
}

func TestAllToolsRun(t *testing.T) {
	img, truth := build(t, 807, nil)
	for _, tool := range AllTools {
		funcs, err := Run(tool, img)
		if err != nil {
			t.Fatalf("%s: %v", tool, err)
		}
		if len(funcs) == 0 {
			t.Errorf("%s detected nothing", tool)
		}
		e := metrics.Evaluate(funcs, truth)
		t.Logf("%-14s TP=%d FP=%d FN=%d", tool, e.TP, e.FP, e.FN)
	}
}

func TestFETCHProfileMatchesCorePipeline(t *testing.T) {
	img, truth := build(t, 808, nil)
	funcs, err := Run(ToolFETCH, img)
	if err != nil {
		t.Fatal(err)
	}
	e := metrics.Evaluate(funcs, truth)
	if e.FP > 3 {
		t.Errorf("FETCH profile FP = %d", e.FP)
	}
	for _, a := range e.FNAddrs {
		f, _ := truth.FuncAt(a)
		if f.Reach == groundtruth.ReachCall || f.Reach == groundtruth.ReachEntry {
			t.Errorf("FETCH missed call-reachable %s", f.Name)
		}
	}
}

func TestDetectionCloneIsDeep(t *testing.T) {
	img, _ := build(t, 809, nil)
	d, _ := FDE(img)
	cp := d.Clone()
	cp.Funcs[0xDEAD] = true
	if d.Funcs[0xDEAD] {
		t.Fatal("Clone shares the function map")
	}
}
