package ehframe

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Pointer encodings (DW_EH_PE_*) supported by the codec; GCC and Clang
// emit pcrel|sdata4 for FDE pointers in x64 executables.
const (
	PEAbsptr      = 0x00
	PESData4      = 0x0B
	PEPCRel       = 0x10
	PEPCRelSData4 = PEPCRel | PESData4 // 0x1B
	PEOmit        = 0xFF
)

// CIE is a Common Information Entry: shared prologue state for a group
// of FDEs, typically one per object file.
type CIE struct {
	CodeAlign  uint64
	DataAlign  int64
	RetAddrReg uint64
	FDEEnc     byte  // pointer encoding for PC Begin in owned FDEs
	Initial    []CFI // initial instructions (usually def_cfa rsp,8; offset ra,8)
}

// NewDefaultCIE returns the CIE GCC emits for x64: code align 1, data
// align -8, RA register 16, pcrel|sdata4 FDE pointers, and the standard
// initial program defining CFA = rsp+8 with the return address at CFA-8.
func NewDefaultCIE() *CIE {
	return &CIE{
		CodeAlign:  1,
		DataAlign:  -8,
		RetAddrReg: DwRA,
		FDEEnc:     PEPCRelSData4,
		Initial: []CFI{
			{Op: CFADefCFA, Reg: DwRSP, Offset: 8},
			{Op: CFAOffset, Reg: DwRA, Offset: 8},
		},
	}
}

// NewDefaultCIEA64 returns the CIE GCC emits for aarch64: code align
// 4 (there is no shorter instruction), data align -8, RA column 30
// (the link register), pcrel|sdata4 FDE pointers, and the standard
// initial program defining CFA = sp+0 — nothing is pushed by a call,
// so the entry height bias is zero.
func NewDefaultCIEA64() *CIE {
	return &CIE{
		CodeAlign:  4,
		DataAlign:  -8,
		RetAddrReg: DwA64RA,
		FDEEnc:     PEPCRelSData4,
		Initial: []CFI{
			{Op: CFADefCFA, Reg: DwA64SP, Offset: 0},
		},
	}
}

// FDE is a Frame Description Entry covering one contiguous code range.
type FDE struct {
	CIE     *CIE
	PCBegin uint64
	PCRange uint64
	Program []CFI
}

// End returns the first address past the FDE's range.
func (f *FDE) End() uint64 { return f.PCBegin + f.PCRange }

// Covers reports whether addr falls inside the FDE's range.
func (f *FDE) Covers(addr uint64) bool { return addr >= f.PCBegin && addr < f.End() }

// DecodeStats counts what Decode saw beyond the entries it returned.
// Real toolchains emit encodings the synthetic lane never produces —
// 64-bit DWARF initial lengths, vendor CFI opcodes, exotic pointer
// encodings — and an analysis over real binaries needs to know how
// much of the section it actually understood.
type DecodeStats struct {
	// Entries counts every non-terminator entry encountered (CIEs and
	// FDEs, decoded or skipped).
	Entries int
	// DWARF64 counts entries framed with the 64-bit DWARF initial
	// length (0xffffffff escape + 8-byte length). They are parsed like
	// 32-bit entries; the counter records that the path was exercised.
	DWARF64 int
	// SkippedCIEs counts CIEs dropped because they use a feature the
	// codec does not support (unknown CFI opcode, unsupported
	// version). Structurally malformed entries are still hard errors.
	SkippedCIEs int
	// SkippedFDEs counts FDEs dropped for the same reason, including
	// FDEs whose owning CIE was itself skipped.
	SkippedFDEs int
}

// Skipped reports whether any entry was dropped as unsupported.
func (d DecodeStats) Skipped() bool { return d.SkippedCIEs+d.SkippedFDEs > 0 }

// Section is a decoded (or to-be-encoded) .eh_frame section.
type Section struct {
	// Addr is the virtual address where the section is (or will be)
	// mapped; pcrel pointer encodings are computed against it.
	Addr uint64
	CIEs []*CIE
	FDEs []*FDE
	// Stats describes what Decode understood; zero for sections built
	// programmatically.
	Stats DecodeStats
}

// FunctionStarts returns the sorted-by-position list of PC Begin values,
// the raw material of FDE-based function start detection. No
// deduplication or correction is applied here.
func (s *Section) FunctionStarts() []uint64 {
	out := make([]uint64, 0, len(s.FDEs))
	for _, f := range s.FDEs {
		out = append(out, f.PCBegin)
	}
	return out
}

// FDEAt returns the FDE whose range covers addr, if any.
func (s *Section) FDEAt(addr uint64) (*FDE, bool) {
	for _, f := range s.FDEs {
		if f.Covers(addr) {
			return f, true
		}
	}
	return nil, false
}

// FDEStartingAt returns the FDE whose PCBegin equals addr, if any.
func (s *Section) FDEStartingAt(addr uint64) (*FDE, bool) {
	for _, f := range s.FDEs {
		if f.PCBegin == addr {
			return f, true
		}
	}
	return nil, false
}

// Encode serializes the section. Each distinct CIE is emitted once,
// immediately before its first FDE; the section ends with a zero
// terminator as in real binaries.
func (s *Section) Encode() ([]byte, error) {
	var out []byte
	ciePos := make(map[*CIE]int)

	emitU32 := func(v uint32) {
		var tmp [4]byte
		binary.LittleEndian.PutUint32(tmp[:], v)
		out = append(out, tmp[:]...)
	}

	encodeCIE := func(c *CIE) error {
		start := len(out)
		ciePos[c] = start
		emitU32(0)           // length placeholder
		emitU32(0)           // CIE id
		out = append(out, 1) // version
		out = append(out, 'z', 'R', 0)
		out = appendULEB(out, c.CodeAlign)
		out = appendSLEB(out, c.DataAlign)
		out = append(out, byte(c.RetAddrReg)) // version-1 ubyte form
		out = appendULEB(out, 1)              // augmentation data length
		out = append(out, c.FDEEnc)
		prog, err := encodeCFIs(c.Initial, c.CodeAlign, c.DataAlign)
		if err != nil {
			return err
		}
		out = append(out, prog...)
		for (len(out)-start)%8 != 0 { // pad with nops to 8 alignment
			out = append(out, rawNop)
		}
		binary.LittleEndian.PutUint32(out[start:], uint32(len(out)-start-4))
		return nil
	}

	for _, f := range s.FDEs {
		if f.CIE == nil {
			return nil, fmt.Errorf("ehframe: FDE at %#x has no CIE", f.PCBegin)
		}
		if _, seen := ciePos[f.CIE]; !seen {
			if err := encodeCIE(f.CIE); err != nil {
				return nil, err
			}
		}
		start := len(out)
		emitU32(0)                                 // length placeholder
		emitU32(uint32(start + 4 - ciePos[f.CIE])) // CIE pointer: back-distance
		switch f.CIE.FDEEnc {
		case PEPCRelSData4:
			fieldAddr := s.Addr + uint64(len(out))
			emitU32(uint32(int32(int64(f.PCBegin) - int64(fieldAddr))))
			emitU32(uint32(f.PCRange))
		case PEAbsptr:
			var tmp [8]byte
			binary.LittleEndian.PutUint64(tmp[:], f.PCBegin)
			out = append(out, tmp[:]...)
			binary.LittleEndian.PutUint64(tmp[:], f.PCRange)
			out = append(out, tmp[:]...)
		default:
			return nil, fmt.Errorf("ehframe: unsupported FDE encoding %#x", f.CIE.FDEEnc)
		}
		out = appendULEB(out, 0) // augmentation data length
		prog, err := encodeCFIs(f.Program, f.CIE.CodeAlign, f.CIE.DataAlign)
		if err != nil {
			return nil, err
		}
		out = append(out, prog...)
		for (len(out)-start)%8 != 0 {
			out = append(out, rawNop)
		}
		binary.LittleEndian.PutUint32(out[start:], uint32(len(out)-start-4))
	}
	emitU32(0) // terminator
	return out, nil
}

// Decode parses a .eh_frame section mapped at addr.
//
// Structural damage — lengths that overrun the section, truncated
// bodies, FDEs pointing at byte offsets where no CIE starts — is a
// hard error: the framing itself cannot be trusted past it. An entry
// that is well-framed but uses a feature the codec does not support
// (an unknown CFI opcode, an exotic pointer encoding, an unsupported
// CIE version) is skipped instead, with the drop recorded in
// Section.Stats, so one vendor extension in one object file no longer
// aborts the analysis of a whole real binary.
func Decode(data []byte, addr uint64) (*Section, error) {
	s := &Section{Addr: addr}
	// cies maps entry offset to the decoded CIE; a nil value marks a
	// CIE that was skipped as unsupported, so its FDEs skip too rather
	// than failing as orphans.
	cies := make(map[int]*CIE)
	i := 0
	for i+4 <= len(data) {
		length := uint64(binary.LittleEndian.Uint32(data[i:]))
		if length == 0 {
			break // terminator
		}
		start := i
		i += 4
		idSize := 4 // bytes of the CIE-id/pointer field
		dwarf64 := false
		if length == 0xFFFFFFFF {
			// 64-bit DWARF initial length: the real length follows as
			// a uint64, and the id field widens to 8 bytes.
			if i+8 > len(data) {
				return nil, fmt.Errorf("ehframe: entry at %#x: 64-bit length field: %w", start, ErrTruncated)
			}
			length = binary.LittleEndian.Uint64(data[i:])
			i += 8
			idSize = 8
			dwarf64 = true
		}
		if length < uint64(idSize) {
			// The body must at least hold the CIE-id/pointer field.
			return nil, fmt.Errorf("ehframe: entry at %#x has length %d: %w", start, length, ErrTruncated)
		}
		if length > uint64(len(data)-i) {
			return nil, ErrTruncated
		}
		body := data[i : i+int(length)]
		i += int(length)
		s.Stats.Entries++
		if dwarf64 {
			s.Stats.DWARF64++
		}

		var id uint64
		if idSize == 8 {
			id = binary.LittleEndian.Uint64(body)
		} else {
			id = uint64(binary.LittleEndian.Uint32(body))
		}
		if id == 0 {
			cie, err := decodeCIE(body[idSize:])
			switch {
			case errors.Is(err, ErrUnsupported):
				cies[start] = nil
				s.Stats.SkippedCIEs++
				continue
			case err != nil:
				return nil, fmt.Errorf("ehframe: CIE at %#x: %w", start, err)
			}
			cies[start] = cie
			s.CIEs = append(s.CIEs, cie)
			continue
		}
		// FDE: id is the back-distance from the id field to the CIE.
		ciePtr := start + (i - start - len(body)) - int(id)
		cie, ok := cies[ciePtr]
		if !ok {
			return nil, fmt.Errorf("ehframe: FDE at %#x references unknown CIE %#x", start, ciePtr)
		}
		if cie == nil {
			// The owning CIE was skipped as unsupported; the FDE's
			// pointer encoding and program are uninterpretable.
			s.Stats.SkippedFDEs++
			continue
		}
		pcFieldAddr := addr + uint64(i-len(body)) + uint64(idSize)
		fde, err := decodeFDE(body[idSize:], cie, pcFieldAddr)
		switch {
		case errors.Is(err, ErrUnsupported):
			s.Stats.SkippedFDEs++
			continue
		case err != nil:
			return nil, fmt.Errorf("ehframe: FDE at %#x: %w", start, err)
		}
		s.FDEs = append(s.FDEs, fde)
	}
	return s, nil
}

func decodeCIE(b []byte) (*CIE, error) {
	if len(b) < 1 {
		return nil, ErrTruncated
	}
	version := b[0]
	if version != 1 && version != 3 {
		return nil, fmt.Errorf("%w: CIE version %d", ErrUnsupported, version)
	}
	i := 1
	augStart := i
	for i < len(b) && b[i] != 0 {
		i++
	}
	if i >= len(b) {
		return nil, ErrTruncated
	}
	aug := string(b[augStart:i])
	i++
	c := &CIE{FDEEnc: PEAbsptr}
	var n int
	var err error
	c.CodeAlign, n, err = readULEB(b[i:])
	if err != nil {
		return nil, err
	}
	i += n
	c.DataAlign, n, err = readSLEB(b[i:])
	if err != nil {
		return nil, err
	}
	i += n
	if version == 1 {
		if i >= len(b) {
			return nil, ErrTruncated
		}
		c.RetAddrReg = uint64(b[i])
		i++
	} else {
		c.RetAddrReg, n, err = readULEB(b[i:])
		if err != nil {
			return nil, err
		}
		i += n
	}
	if len(aug) > 0 && aug[0] == 'z' {
		augLen, n, err := readULEB(b[i:])
		if err != nil {
			return nil, err
		}
		i += n
		if augLen > uint64(len(b)-i) {
			return nil, ErrTruncated
		}
		augData := b[i : i+int(augLen)]
		i += int(augLen)
		k := 0
		for _, ch := range aug[1:] {
			switch ch {
			case 'R':
				if k < len(augData) {
					c.FDEEnc = augData[k]
					k++
				}
			case 'P': // personality: encoding byte + pointer (skip)
				if k < len(augData) {
					enc := augData[k]
					k++
					k += pointerSize(enc)
				}
			case 'L':
				k++
			}
		}
	}
	c.Initial, err = decodeCFIs(b[i:], c.CodeAlign, c.DataAlign)
	if err != nil {
		return nil, err
	}
	return c, nil
}

func pointerSize(enc byte) int {
	switch enc & 0x0F {
	case 0x00: // absptr
		return 8
	case 0x02, 0x0A: // udata2/sdata2
		return 2
	case 0x03, 0x0B:
		return 4
	case 0x04, 0x0C:
		return 8
	}
	return 8
}

// peFormatSize returns the byte width of a fixed-size DW_EH_PE format
// nibble, or 0 when the format is variable-length or unknown.
func peFormatSize(enc byte) int {
	switch enc & 0x0F {
	case 0x00, 0x04, 0x0C: // absptr, udata8, sdata8
		return 8
	case 0x02, 0x0A: // udata2, sdata2
		return 2
	case 0x03, 0x0B: // udata4, sdata4
		return 4
	}
	return 0
}

// peSigned reports whether the format nibble is sign-extended.
func peSigned(enc byte) bool {
	switch enc & 0x0F {
	case 0x09, 0x0A, 0x0B, 0x0C: // sleb128, sdata2, sdata4, sdata8
		return true
	}
	return false
}

// readEncodedPC reads one DW_EH_PE-encoded code pointer. fieldAddr is
// the virtual address of the field, for pcrel application. Indirect,
// datarel, and aligned applications are not resolvable from the
// section alone and come back ErrUnsupported.
func readEncodedPC(b []byte, enc byte, fieldAddr uint64) (uint64, int, error) {
	if enc&0x80 != 0 { // DW_EH_PE_indirect
		return 0, 0, fmt.Errorf("%w: indirect pointer encoding %#x", ErrUnsupported, enc)
	}
	size := peFormatSize(enc)
	if size == 0 {
		return 0, 0, fmt.Errorf("%w: pointer encoding %#x", ErrUnsupported, enc)
	}
	if len(b) < size {
		return 0, 0, ErrTruncated
	}
	var v uint64
	switch size {
	case 2:
		v = uint64(binary.LittleEndian.Uint16(b))
		if peSigned(enc) {
			v = uint64(int64(int16(v)))
		}
	case 4:
		v = uint64(binary.LittleEndian.Uint32(b))
		if peSigned(enc) {
			v = uint64(int64(int32(v)))
		}
	case 8:
		v = binary.LittleEndian.Uint64(b)
	}
	switch enc & 0x70 {
	case 0x00: // absolute
	case PEPCRel:
		v = fieldAddr + v // two's complement: signed add ≡ unsigned add
	default:
		return 0, 0, fmt.Errorf("%w: pointer application %#x", ErrUnsupported, enc)
	}
	return v, size, nil
}

// decodeFDE parses an FDE body; pcFieldAddr is the virtual address of
// the PC Begin field (needed for pcrel encodings).
func decodeFDE(b []byte, cie *CIE, pcFieldAddr uint64) (*FDE, error) {
	f := &FDE{CIE: cie}
	begin, n, err := readEncodedPC(b, cie.FDEEnc, pcFieldAddr)
	if err != nil {
		return nil, err
	}
	f.PCBegin = begin
	i := n
	// The range field reuses the format nibble but is always an
	// unsigned extent, never pcrel-adjusted.
	size := peFormatSize(cie.FDEEnc)
	if len(b) < i+size {
		return nil, ErrTruncated
	}
	switch size {
	case 2:
		f.PCRange = uint64(binary.LittleEndian.Uint16(b[i:]))
	case 4:
		f.PCRange = uint64(binary.LittleEndian.Uint32(b[i:]))
	case 8:
		f.PCRange = binary.LittleEndian.Uint64(b[i:])
	}
	i += size
	augLen, n, err := readULEB(b[i:])
	if err != nil {
		return nil, err
	}
	i += n
	// Bound before converting: a huge ULEB cast to int could wrap
	// negative and slip past the range check below.
	if augLen > uint64(len(b)-i) {
		return nil, ErrTruncated
	}
	i += int(augLen)
	f.Program, err = decodeCFIs(b[i:], cie.CodeAlign, cie.DataAlign)
	if err != nil {
		return nil, err
	}
	return f, nil
}
