package ehframe

import (
	"encoding/binary"
	"fmt"
)

// Pointer encodings (DW_EH_PE_*) supported by the codec; GCC and Clang
// emit pcrel|sdata4 for FDE pointers in x64 executables.
const (
	PEAbsptr      = 0x00
	PESData4      = 0x0B
	PEPCRel       = 0x10
	PEPCRelSData4 = PEPCRel | PESData4 // 0x1B
	PEOmit        = 0xFF
)

// CIE is a Common Information Entry: shared prologue state for a group
// of FDEs, typically one per object file.
type CIE struct {
	CodeAlign  uint64
	DataAlign  int64
	RetAddrReg uint64
	FDEEnc     byte  // pointer encoding for PC Begin in owned FDEs
	Initial    []CFI // initial instructions (usually def_cfa rsp,8; offset ra,8)
}

// NewDefaultCIE returns the CIE GCC emits for x64: code align 1, data
// align -8, RA register 16, pcrel|sdata4 FDE pointers, and the standard
// initial program defining CFA = rsp+8 with the return address at CFA-8.
func NewDefaultCIE() *CIE {
	return &CIE{
		CodeAlign:  1,
		DataAlign:  -8,
		RetAddrReg: DwRA,
		FDEEnc:     PEPCRelSData4,
		Initial: []CFI{
			{Op: CFADefCFA, Reg: DwRSP, Offset: 8},
			{Op: CFAOffset, Reg: DwRA, Offset: 8},
		},
	}
}

// FDE is a Frame Description Entry covering one contiguous code range.
type FDE struct {
	CIE     *CIE
	PCBegin uint64
	PCRange uint64
	Program []CFI
}

// End returns the first address past the FDE's range.
func (f *FDE) End() uint64 { return f.PCBegin + f.PCRange }

// Covers reports whether addr falls inside the FDE's range.
func (f *FDE) Covers(addr uint64) bool { return addr >= f.PCBegin && addr < f.End() }

// Section is a decoded (or to-be-encoded) .eh_frame section.
type Section struct {
	// Addr is the virtual address where the section is (or will be)
	// mapped; pcrel pointer encodings are computed against it.
	Addr uint64
	CIEs []*CIE
	FDEs []*FDE
}

// FunctionStarts returns the sorted-by-position list of PC Begin values,
// the raw material of FDE-based function start detection. No
// deduplication or correction is applied here.
func (s *Section) FunctionStarts() []uint64 {
	out := make([]uint64, 0, len(s.FDEs))
	for _, f := range s.FDEs {
		out = append(out, f.PCBegin)
	}
	return out
}

// FDEAt returns the FDE whose range covers addr, if any.
func (s *Section) FDEAt(addr uint64) (*FDE, bool) {
	for _, f := range s.FDEs {
		if f.Covers(addr) {
			return f, true
		}
	}
	return nil, false
}

// FDEStartingAt returns the FDE whose PCBegin equals addr, if any.
func (s *Section) FDEStartingAt(addr uint64) (*FDE, bool) {
	for _, f := range s.FDEs {
		if f.PCBegin == addr {
			return f, true
		}
	}
	return nil, false
}

// Encode serializes the section. Each distinct CIE is emitted once,
// immediately before its first FDE; the section ends with a zero
// terminator as in real binaries.
func (s *Section) Encode() ([]byte, error) {
	var out []byte
	ciePos := make(map[*CIE]int)

	emitU32 := func(v uint32) {
		var tmp [4]byte
		binary.LittleEndian.PutUint32(tmp[:], v)
		out = append(out, tmp[:]...)
	}

	encodeCIE := func(c *CIE) error {
		start := len(out)
		ciePos[c] = start
		emitU32(0)           // length placeholder
		emitU32(0)           // CIE id
		out = append(out, 1) // version
		out = append(out, 'z', 'R', 0)
		out = appendULEB(out, c.CodeAlign)
		out = appendSLEB(out, c.DataAlign)
		out = append(out, byte(c.RetAddrReg)) // version-1 ubyte form
		out = appendULEB(out, 1)              // augmentation data length
		out = append(out, c.FDEEnc)
		prog, err := encodeCFIs(c.Initial, c.CodeAlign, c.DataAlign)
		if err != nil {
			return err
		}
		out = append(out, prog...)
		for (len(out)-start)%8 != 0 { // pad with nops to 8 alignment
			out = append(out, rawNop)
		}
		binary.LittleEndian.PutUint32(out[start:], uint32(len(out)-start-4))
		return nil
	}

	for _, f := range s.FDEs {
		if f.CIE == nil {
			return nil, fmt.Errorf("ehframe: FDE at %#x has no CIE", f.PCBegin)
		}
		if _, seen := ciePos[f.CIE]; !seen {
			if err := encodeCIE(f.CIE); err != nil {
				return nil, err
			}
		}
		start := len(out)
		emitU32(0)                                 // length placeholder
		emitU32(uint32(start + 4 - ciePos[f.CIE])) // CIE pointer: back-distance
		switch f.CIE.FDEEnc {
		case PEPCRelSData4:
			fieldAddr := s.Addr + uint64(len(out))
			emitU32(uint32(int32(int64(f.PCBegin) - int64(fieldAddr))))
			emitU32(uint32(f.PCRange))
		case PEAbsptr:
			var tmp [8]byte
			binary.LittleEndian.PutUint64(tmp[:], f.PCBegin)
			out = append(out, tmp[:]...)
			binary.LittleEndian.PutUint64(tmp[:], f.PCRange)
			out = append(out, tmp[:]...)
		default:
			return nil, fmt.Errorf("ehframe: unsupported FDE encoding %#x", f.CIE.FDEEnc)
		}
		out = appendULEB(out, 0) // augmentation data length
		prog, err := encodeCFIs(f.Program, f.CIE.CodeAlign, f.CIE.DataAlign)
		if err != nil {
			return nil, err
		}
		out = append(out, prog...)
		for (len(out)-start)%8 != 0 {
			out = append(out, rawNop)
		}
		binary.LittleEndian.PutUint32(out[start:], uint32(len(out)-start-4))
	}
	emitU32(0) // terminator
	return out, nil
}

// Decode parses a .eh_frame section mapped at addr.
func Decode(data []byte, addr uint64) (*Section, error) {
	s := &Section{Addr: addr}
	cies := make(map[int]*CIE)
	i := 0
	for i+4 <= len(data) {
		length := binary.LittleEndian.Uint32(data[i:])
		if length == 0 {
			break // terminator
		}
		if length == 0xFFFFFFFF {
			return nil, fmt.Errorf("ehframe: 64-bit DWARF format not supported")
		}
		start := i
		i += 4
		if length < 4 {
			// The body must at least hold the CIE-id/pointer field.
			return nil, fmt.Errorf("ehframe: entry at %#x has length %d: %w", start, length, ErrTruncated)
		}
		if i+int(length) > len(data) {
			return nil, ErrTruncated
		}
		body := data[i : i+int(length)]
		i += int(length)

		id := binary.LittleEndian.Uint32(body)
		if id == 0 {
			cie, err := decodeCIE(body[4:])
			if err != nil {
				return nil, fmt.Errorf("ehframe: CIE at %#x: %w", start, err)
			}
			cies[start] = cie
			s.CIEs = append(s.CIEs, cie)
			continue
		}
		// FDE: id is the back-distance from the id field to the CIE.
		ciePtr := start + 4 - int(id)
		cie, ok := cies[ciePtr]
		if !ok {
			return nil, fmt.Errorf("ehframe: FDE at %#x references unknown CIE %#x", start, ciePtr)
		}
		fde, err := decodeFDE(body[4:], cie, addr+uint64(start)+8)
		if err != nil {
			return nil, fmt.Errorf("ehframe: FDE at %#x: %w", start, err)
		}
		s.FDEs = append(s.FDEs, fde)
	}
	return s, nil
}

func decodeCIE(b []byte) (*CIE, error) {
	if len(b) < 1 {
		return nil, ErrTruncated
	}
	version := b[0]
	if version != 1 && version != 3 {
		return nil, fmt.Errorf("unsupported CIE version %d", version)
	}
	i := 1
	augStart := i
	for i < len(b) && b[i] != 0 {
		i++
	}
	if i >= len(b) {
		return nil, ErrTruncated
	}
	aug := string(b[augStart:i])
	i++
	c := &CIE{FDEEnc: PEAbsptr}
	var n int
	var err error
	c.CodeAlign, n, err = readULEB(b[i:])
	if err != nil {
		return nil, err
	}
	i += n
	c.DataAlign, n, err = readSLEB(b[i:])
	if err != nil {
		return nil, err
	}
	i += n
	if version == 1 {
		if i >= len(b) {
			return nil, ErrTruncated
		}
		c.RetAddrReg = uint64(b[i])
		i++
	} else {
		c.RetAddrReg, n, err = readULEB(b[i:])
		if err != nil {
			return nil, err
		}
		i += n
	}
	if len(aug) > 0 && aug[0] == 'z' {
		augLen, n, err := readULEB(b[i:])
		if err != nil {
			return nil, err
		}
		i += n
		if augLen > uint64(len(b)-i) {
			return nil, ErrTruncated
		}
		augData := b[i : i+int(augLen)]
		i += int(augLen)
		k := 0
		for _, ch := range aug[1:] {
			switch ch {
			case 'R':
				if k < len(augData) {
					c.FDEEnc = augData[k]
					k++
				}
			case 'P': // personality: encoding byte + pointer (skip)
				if k < len(augData) {
					enc := augData[k]
					k++
					k += pointerSize(enc)
				}
			case 'L':
				k++
			}
		}
	}
	c.Initial, err = decodeCFIs(b[i:], c.CodeAlign, c.DataAlign)
	if err != nil {
		return nil, err
	}
	return c, nil
}

func pointerSize(enc byte) int {
	switch enc & 0x0F {
	case 0x00: // absptr
		return 8
	case 0x02, 0x0A: // udata2/sdata2
		return 2
	case 0x03, 0x0B:
		return 4
	case 0x04, 0x0C:
		return 8
	}
	return 8
}

// decodeFDE parses an FDE body; pcFieldAddr is the virtual address of
// the PC Begin field (needed for pcrel encodings).
func decodeFDE(b []byte, cie *CIE, pcFieldAddr uint64) (*FDE, error) {
	f := &FDE{CIE: cie}
	i := 0
	switch cie.FDEEnc {
	case PEPCRelSData4:
		if len(b) < 8 {
			return nil, ErrTruncated
		}
		rel := int32(binary.LittleEndian.Uint32(b))
		f.PCBegin = uint64(int64(pcFieldAddr) + int64(rel))
		f.PCRange = uint64(binary.LittleEndian.Uint32(b[4:]))
		i = 8
	case PEAbsptr:
		if len(b) < 16 {
			return nil, ErrTruncated
		}
		f.PCBegin = binary.LittleEndian.Uint64(b)
		f.PCRange = binary.LittleEndian.Uint64(b[8:])
		i = 16
	default:
		return nil, fmt.Errorf("unsupported FDE pointer encoding %#x", cie.FDEEnc)
	}
	augLen, n, err := readULEB(b[i:])
	if err != nil {
		return nil, err
	}
	i += n
	// Bound before converting: a huge ULEB cast to int could wrap
	// negative and slip past the range check below.
	if augLen > uint64(len(b)-i) {
		return nil, ErrTruncated
	}
	i += int(augLen)
	f.Program, err = decodeCFIs(b[i:], cie.CodeAlign, cie.DataAlign)
	if err != nil {
		return nil, err
	}
	return f, nil
}
