package ehframe

import (
	"fmt"
)

// DWARF register numbers for x86-64 (differs from hardware encoding).
const (
	DwRAX = 0
	DwRDX = 1
	DwRCX = 2
	DwRBX = 3
	DwRSI = 4
	DwRDI = 5
	DwRBP = 6
	DwRSP = 7
	// DwR8 through DwR15 are 8..15.
	DwRA = 16 // return address pseudo-register
)

// DWARF register numbers for aarch64 (AADWARF64: x0..x30 are 0..30,
// SP is 31). The return-address column is the link register itself.
const (
	DwA64FP = 29
	DwA64RA = 30 // x30, the link register
	DwA64SP = 31
)

// DwarfRegName returns a human-readable name for an x86-64 DWARF
// register number.
func DwarfRegName(r uint64) string {
	names := []string{"rax", "rdx", "rcx", "rbx", "rsi", "rdi", "rbp", "rsp",
		"r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15", "ra"}
	if int(r) < len(names) {
		return names[r]
	}
	return fmt.Sprintf("r?%d", r)
}

// CFIOp enumerates the call-frame instructions the codec supports —
// the set GCC/Clang emit for x64 plus the expression forms seen in
// hand-written assembly (paper Figure 6b).
type CFIOp uint8

// Call-frame instruction opcodes (semantic, not wire encoding).
const (
	CFANop            CFIOp = iota + 1
	CFAAdvanceLoc           // Delta: code offset advance
	CFADefCFA               // Reg, Offset
	CFADefCFARegister       // Reg
	CFADefCFAOffset         // Offset
	CFAOffset               // Reg, Offset: reg saved at CFA-Offset (unfactored bytes)
	CFARestore              // Reg
	CFARememberState
	CFARestoreState
	CFADefCFAExpression // Expr
	CFAExpression       // Reg, Expr
	CFAUndefined        // Reg
	CFASameValue        // Reg
	CFARegister         // Reg, Reg2
	// CFAValOffset records that reg's value (not its save slot) is
	// CFA+Offset — DW_CFA_val_offset/val_offset_sf, emitted by GCC for
	// unwound-but-unsaved registers. It never affects the CFA rule.
	CFAValOffset // Reg, Offset
	// CFAValExpression records reg's value as a DWARF expression —
	// DW_CFA_val_expression, seen in hand-written glibc assembly.
	CFAValExpression // Reg, Expr
	// CFAGNUArgsSize is DW_CFA_GNU_args_size: the size of outgoing
	// arguments pushed for a call, emitted by GCC in C++ code around
	// calls inside try blocks. It does not change the CFA rule.
	CFAGNUArgsSize // Offset
	// CFAGNUWindowSave is DW_CFA_GNU_window_save (also reused as
	// DW_CFA_AARCH64_negate_ra_state); a no-op for x64 unwinding.
	CFAGNUWindowSave
)

// CFI is one decoded call-frame instruction. Offsets are in bytes
// (already multiplied by the CIE alignment factors).
type CFI struct {
	Op     CFIOp
	Delta  uint64 // CFAAdvanceLoc: code bytes to advance
	Reg    uint64 // DWARF register number
	Reg2   uint64 // CFARegister second register
	Offset int64  // byte offset (CFA offset, or save slot as CFA-Offset)
	Expr   []byte // DWARF expression bytes for the expression forms
}

// String renders the instruction like readelf does.
func (c CFI) String() string {
	switch c.Op {
	case CFANop:
		return "DW_CFA_nop"
	case CFAAdvanceLoc:
		return fmt.Sprintf("DW_CFA_advance_loc: %d", c.Delta)
	case CFADefCFA:
		return fmt.Sprintf("DW_CFA_def_cfa: %s ofs %d", DwarfRegName(c.Reg), c.Offset)
	case CFADefCFARegister:
		return fmt.Sprintf("DW_CFA_def_cfa_register: %s", DwarfRegName(c.Reg))
	case CFADefCFAOffset:
		return fmt.Sprintf("DW_CFA_def_cfa_offset: %d", c.Offset)
	case CFAOffset:
		return fmt.Sprintf("DW_CFA_offset: %s at cfa-%d", DwarfRegName(c.Reg), c.Offset)
	case CFARestore:
		return fmt.Sprintf("DW_CFA_restore: %s", DwarfRegName(c.Reg))
	case CFARememberState:
		return "DW_CFA_remember_state"
	case CFARestoreState:
		return "DW_CFA_restore_state"
	case CFADefCFAExpression:
		return "DW_CFA_def_cfa_expression"
	case CFAExpression:
		return fmt.Sprintf("DW_CFA_expression: %s", DwarfRegName(c.Reg))
	case CFAUndefined:
		return fmt.Sprintf("DW_CFA_undefined: %s", DwarfRegName(c.Reg))
	case CFASameValue:
		return fmt.Sprintf("DW_CFA_same_value: %s", DwarfRegName(c.Reg))
	case CFARegister:
		return fmt.Sprintf("DW_CFA_register: %s in %s", DwarfRegName(c.Reg), DwarfRegName(c.Reg2))
	case CFAValOffset:
		return fmt.Sprintf("DW_CFA_val_offset: %s at cfa%+d", DwarfRegName(c.Reg), c.Offset)
	case CFAValExpression:
		return fmt.Sprintf("DW_CFA_val_expression: %s", DwarfRegName(c.Reg))
	case CFAGNUArgsSize:
		return fmt.Sprintf("DW_CFA_GNU_args_size: %d", c.Offset)
	case CFAGNUWindowSave:
		return "DW_CFA_GNU_window_save"
	}
	return fmt.Sprintf("DW_CFA_?(%d)", c.Op)
}

// Wire-format opcode constants.
const (
	rawAdvanceLoc  = 0x40 // high-2-bits form, low 6 = delta
	rawOffset      = 0x80 // high-2-bits form, low 6 = reg
	rawRestore     = 0xC0 // high-2-bits form, low 6 = reg
	rawNop         = 0x00
	rawAdvanceLoc1 = 0x02
	rawAdvanceLoc2 = 0x03
	rawAdvanceLoc4 = 0x04
	rawOffsetExt   = 0x05
	rawRestoreExt  = 0x06
	rawUndefined   = 0x07
	rawSameValue   = 0x08
	rawRegister    = 0x09
	rawRememberSt  = 0x0A
	rawRestoreSt   = 0x0B
	rawDefCFA      = 0x0C
	rawDefCFAReg   = 0x0D
	rawDefCFAOfs   = 0x0E
	rawDefCFAExpr  = 0x0F
	rawExpression  = 0x10
	rawOffsetExtSF = 0x11
	rawDefCFASF    = 0x12
	rawDefCFAOfsSF = 0x13
	rawValOffset   = 0x14
	rawValOffsetSF = 0x15
	rawValExpr     = 0x16
	rawGNUWinSave  = 0x2D
	rawGNUArgsSize = 0x2E
	rawGNUNegOfs   = 0x2F
)

// encodeCFIs serializes a CFI program using the given CIE alignment
// factors (codeAlign is normally 1 and dataAlign -8 on x64).
func encodeCFIs(prog []CFI, codeAlign uint64, dataAlign int64) ([]byte, error) {
	var out []byte
	for _, c := range prog {
		switch c.Op {
		case CFANop:
			out = append(out, rawNop)
		case CFAAdvanceLoc:
			d := c.Delta / codeAlign
			switch {
			case d < 0x40:
				out = append(out, rawAdvanceLoc|byte(d))
			case d <= 0xFF:
				out = append(out, rawAdvanceLoc1, byte(d))
			case d <= 0xFFFF:
				out = append(out, rawAdvanceLoc2, byte(d), byte(d>>8))
			default:
				out = append(out, rawAdvanceLoc4, byte(d), byte(d>>8), byte(d>>16), byte(d>>24))
			}
		case CFADefCFA:
			out = append(out, rawDefCFA)
			out = appendULEB(out, c.Reg)
			out = appendULEB(out, uint64(c.Offset))
		case CFADefCFARegister:
			out = append(out, rawDefCFAReg)
			out = appendULEB(out, c.Reg)
		case CFADefCFAOffset:
			out = append(out, rawDefCFAOfs)
			out = appendULEB(out, uint64(c.Offset))
		case CFAOffset:
			// Saved-register offsets are factored by dataAlign:
			// slot = CFA - Offset, factored = Offset / -dataAlign.
			f := c.Offset / -dataAlign
			if c.Reg < 0x40 && f >= 0 {
				out = append(out, rawOffset|byte(c.Reg))
				out = appendULEB(out, uint64(f))
			} else {
				out = append(out, rawOffsetExt)
				out = appendULEB(out, c.Reg)
				out = appendULEB(out, uint64(f))
			}
		case CFARestore:
			if c.Reg < 0x40 {
				out = append(out, rawRestore|byte(c.Reg))
			} else {
				out = append(out, rawRestoreExt)
				out = appendULEB(out, c.Reg)
			}
		case CFARememberState:
			out = append(out, rawRememberSt)
		case CFARestoreState:
			out = append(out, rawRestoreSt)
		case CFADefCFAExpression:
			out = append(out, rawDefCFAExpr)
			out = appendULEB(out, uint64(len(c.Expr)))
			out = append(out, c.Expr...)
		case CFAExpression:
			out = append(out, rawExpression)
			out = appendULEB(out, c.Reg)
			out = appendULEB(out, uint64(len(c.Expr)))
			out = append(out, c.Expr...)
		case CFAUndefined:
			out = append(out, rawUndefined)
			out = appendULEB(out, c.Reg)
		case CFASameValue:
			out = append(out, rawSameValue)
			out = appendULEB(out, c.Reg)
		case CFARegister:
			out = append(out, rawRegister)
			out = appendULEB(out, c.Reg)
			out = appendULEB(out, c.Reg2)
		case CFAValOffset:
			// Both wire forms carry a dataAlign-factored offset; pick
			// the one whose factored value the sign admits.
			if c.Offset%dataAlign != 0 {
				return nil, fmt.Errorf("ehframe: val_offset %d not a multiple of data alignment %d", c.Offset, dataAlign)
			}
			f := c.Offset / dataAlign
			if f >= 0 {
				out = append(out, rawValOffset)
				out = appendULEB(out, c.Reg)
				out = appendULEB(out, uint64(f))
			} else {
				out = append(out, rawValOffsetSF)
				out = appendULEB(out, c.Reg)
				out = appendSLEB(out, f)
			}
		case CFAValExpression:
			out = append(out, rawValExpr)
			out = appendULEB(out, c.Reg)
			out = appendULEB(out, uint64(len(c.Expr)))
			out = append(out, c.Expr...)
		case CFAGNUArgsSize:
			if c.Offset < 0 {
				return nil, fmt.Errorf("ehframe: negative GNU_args_size %d", c.Offset)
			}
			out = append(out, rawGNUArgsSize)
			out = appendULEB(out, uint64(c.Offset))
		case CFAGNUWindowSave:
			out = append(out, rawGNUWinSave)
		default:
			return nil, fmt.Errorf("ehframe: cannot encode CFI op %d", c.Op)
		}
	}
	return out, nil
}

// decodeCFIs parses a CFI byte program.
func decodeCFIs(b []byte, codeAlign uint64, dataAlign int64) ([]CFI, error) {
	var prog []CFI
	i := 0
	for i < len(b) {
		op := b[i]
		i++
		switch {
		case op&0xC0 == rawAdvanceLoc:
			prog = append(prog, CFI{Op: CFAAdvanceLoc, Delta: uint64(op&0x3F) * codeAlign})
		case op&0xC0 == rawOffset:
			f, n, err := readULEB(b[i:])
			if err != nil {
				return nil, err
			}
			i += n
			prog = append(prog, CFI{Op: CFAOffset, Reg: uint64(op & 0x3F), Offset: int64(f) * -dataAlign})
		case op&0xC0 == rawRestore:
			prog = append(prog, CFI{Op: CFARestore, Reg: uint64(op & 0x3F)})
		default:
			switch op {
			case rawNop:
				prog = append(prog, CFI{Op: CFANop})
			case rawAdvanceLoc1:
				if i >= len(b) {
					return nil, ErrTruncated
				}
				prog = append(prog, CFI{Op: CFAAdvanceLoc, Delta: uint64(b[i]) * codeAlign})
				i++
			case rawAdvanceLoc2:
				if i+2 > len(b) {
					return nil, ErrTruncated
				}
				d := uint64(b[i]) | uint64(b[i+1])<<8
				prog = append(prog, CFI{Op: CFAAdvanceLoc, Delta: d * codeAlign})
				i += 2
			case rawAdvanceLoc4:
				if i+4 > len(b) {
					return nil, ErrTruncated
				}
				d := uint64(b[i]) | uint64(b[i+1])<<8 | uint64(b[i+2])<<16 | uint64(b[i+3])<<24
				prog = append(prog, CFI{Op: CFAAdvanceLoc, Delta: d * codeAlign})
				i += 4
			case rawDefCFA:
				r, n, err := readULEB(b[i:])
				if err != nil {
					return nil, err
				}
				i += n
				o, n2, err := readULEB(b[i:])
				if err != nil {
					return nil, err
				}
				i += n2
				prog = append(prog, CFI{Op: CFADefCFA, Reg: r, Offset: int64(o)})
			case rawDefCFAReg:
				r, n, err := readULEB(b[i:])
				if err != nil {
					return nil, err
				}
				i += n
				prog = append(prog, CFI{Op: CFADefCFARegister, Reg: r})
			case rawDefCFAOfs:
				o, n, err := readULEB(b[i:])
				if err != nil {
					return nil, err
				}
				i += n
				prog = append(prog, CFI{Op: CFADefCFAOffset, Offset: int64(o)})
			case rawOffsetExt:
				r, n, err := readULEB(b[i:])
				if err != nil {
					return nil, err
				}
				i += n
				f, n2, err := readULEB(b[i:])
				if err != nil {
					return nil, err
				}
				i += n2
				prog = append(prog, CFI{Op: CFAOffset, Reg: r, Offset: int64(f) * -dataAlign})
			case rawRestoreExt:
				r, n, err := readULEB(b[i:])
				if err != nil {
					return nil, err
				}
				i += n
				prog = append(prog, CFI{Op: CFARestore, Reg: r})
			case rawUndefined, rawSameValue:
				r, n, err := readULEB(b[i:])
				if err != nil {
					return nil, err
				}
				i += n
				sem := CFAUndefined
				if op == rawSameValue {
					sem = CFASameValue
				}
				prog = append(prog, CFI{Op: sem, Reg: r})
			case rawRegister:
				r, n, err := readULEB(b[i:])
				if err != nil {
					return nil, err
				}
				i += n
				r2, n2, err := readULEB(b[i:])
				if err != nil {
					return nil, err
				}
				i += n2
				prog = append(prog, CFI{Op: CFARegister, Reg: r, Reg2: r2})
			case rawRememberSt:
				prog = append(prog, CFI{Op: CFARememberState})
			case rawRestoreSt:
				prog = append(prog, CFI{Op: CFARestoreState})
			case rawOffsetExtSF, rawDefCFASF:
				// Signed-factored forms of offset_extended / def_cfa:
				// same semantics, SLEB-factored operand.
				r, n, err := readULEB(b[i:])
				if err != nil {
					return nil, err
				}
				i += n
				s, n2, err := readSLEB(b[i:])
				if err != nil {
					return nil, err
				}
				i += n2
				if op == rawOffsetExtSF {
					prog = append(prog, CFI{Op: CFAOffset, Reg: r, Offset: s * -dataAlign})
				} else {
					prog = append(prog, CFI{Op: CFADefCFA, Reg: r, Offset: s * dataAlign})
				}
			case rawDefCFAOfsSF:
				s, n, err := readSLEB(b[i:])
				if err != nil {
					return nil, err
				}
				i += n
				prog = append(prog, CFI{Op: CFADefCFAOffset, Offset: s * dataAlign})
			case rawValOffset:
				r, n, err := readULEB(b[i:])
				if err != nil {
					return nil, err
				}
				i += n
				f, n2, err := readULEB(b[i:])
				if err != nil {
					return nil, err
				}
				i += n2
				prog = append(prog, CFI{Op: CFAValOffset, Reg: r, Offset: int64(f) * dataAlign})
			case rawValOffsetSF:
				r, n, err := readULEB(b[i:])
				if err != nil {
					return nil, err
				}
				i += n
				s, n2, err := readSLEB(b[i:])
				if err != nil {
					return nil, err
				}
				i += n2
				prog = append(prog, CFI{Op: CFAValOffset, Reg: r, Offset: s * dataAlign})
			case rawValExpr:
				r, n, err := readULEB(b[i:])
				if err != nil {
					return nil, err
				}
				i += n
				ln, n2, err := readULEB(b[i:])
				if err != nil {
					return nil, err
				}
				i += n2
				if ln > uint64(len(b)-i) {
					return nil, ErrTruncated
				}
				prog = append(prog, CFI{Op: CFAValExpression, Reg: r, Expr: append([]byte(nil), b[i:i+int(ln)]...)})
				i += int(ln)
			case rawGNUArgsSize:
				sz, n, err := readULEB(b[i:])
				if err != nil {
					return nil, err
				}
				i += n
				prog = append(prog, CFI{Op: CFAGNUArgsSize, Offset: int64(sz)})
			case rawGNUWinSave:
				prog = append(prog, CFI{Op: CFAGNUWindowSave})
			case rawGNUNegOfs:
				// Obsolete GNU form: the factored offset is subtracted,
				// the negation of offset_extended.
				r, n, err := readULEB(b[i:])
				if err != nil {
					return nil, err
				}
				i += n
				f, n2, err := readULEB(b[i:])
				if err != nil {
					return nil, err
				}
				i += n2
				prog = append(prog, CFI{Op: CFAOffset, Reg: r, Offset: int64(f) * dataAlign})
			case rawDefCFAExpr:
				ln, n, err := readULEB(b[i:])
				if err != nil {
					return nil, err
				}
				i += n
				if ln > uint64(len(b)-i) {
					return nil, ErrTruncated
				}
				prog = append(prog, CFI{Op: CFADefCFAExpression, Expr: append([]byte(nil), b[i:i+int(ln)]...)})
				i += int(ln)
			case rawExpression:
				r, n, err := readULEB(b[i:])
				if err != nil {
					return nil, err
				}
				i += n
				ln, n2, err := readULEB(b[i:])
				if err != nil {
					return nil, err
				}
				i += n2
				if ln > uint64(len(b)-i) {
					return nil, ErrTruncated
				}
				prog = append(prog, CFI{Op: CFAExpression, Reg: r, Expr: append([]byte(nil), b[i:i+int(ln)]...)})
				i += int(ln)
			default:
				return nil, fmt.Errorf("%w: unknown CFI opcode %#x", ErrUnsupported, op)
			}
		}
	}
	return prog, nil
}
