package ehframe

import (
	"errors"
	"testing"
)

// TestDecodeGarbageReturnsErrors pins the hardening contract on the
// section decoder: every crasher class the fuzzer surfaced (and its
// neighbors) must come back as an error, never a panic.
func TestDecodeGarbageReturnsErrors(t *testing.T) {
	cases := []struct {
		name string
		data []byte
	}{
		// The first fuzz crasher: an entry whose length field is
		// smaller than the 4-byte CIE-id field, so the id read ran off
		// the body.
		{"length-smaller-than-id", []byte{3, 0, 0, 0, 0, 0, 0}},
		{"length-1", []byte{1, 0, 0, 0, 0}},
		{"length-past-section", []byte{0xF0, 0, 0, 0, 0, 0, 0, 0}},
		{"orphan-fde", []byte{8, 0, 0, 0, 0xF0, 0, 0, 0, 1, 2, 3, 4}},
		{"dwarf64", []byte{0xFF, 0xFF, 0xFF, 0xFF}},
		{"cie-empty-body", []byte{4, 0, 0, 0, 0, 0, 0, 0}},
		// CIE whose 'z' augmentation claims far more data than exists:
		// the ULEB (0x7FFFFFFFF) used to wrap negative through int and
		// slice out of range.
		{"cie-huge-auglen", append([]byte{16, 0, 0, 0},
			0, 0, 0, 0, 1, 'z', 'R', 0, 1, 0x78, 0x10, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F)},
		{"cie-unterminated-aug", append([]byte{12, 0, 0, 0},
			0, 0, 0, 0, 1, 'z', 'R', 'z', 'z', 'z', 'z', 'z')},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Decode(tc.data, 0x500000); err == nil {
				t.Errorf("Decode accepted %x", tc.data)
			}
		})
	}
	// The empty section and a bare terminator stay valid (zero FDEs).
	for _, ok := range [][]byte{nil, {0, 0, 0, 0}} {
		if sec, err := Decode(ok, 0x500000); err != nil || len(sec.FDEs) != 0 {
			t.Errorf("Decode(%x) = %v, %v; want empty section", ok, sec, err)
		}
	}
}

// TestDecodeFDEHugeAugLen drives the FDE-body bound directly: an
// augmentation length ULEB larger than the body must error instead of
// wrapping negative through int.
func TestDecodeFDEHugeAugLen(t *testing.T) {
	cie := NewDefaultCIE() // pcrel|sdata4: 8-byte pointer pair
	body := []byte{
		0, 0, 0, 0, 0x40, 0, 0, 0, // PC begin rel, range
		0xFF, 0xFF, 0xFF, 0xFF, 0x7F, // augmentation length: huge
	}
	if _, err := decodeFDE(body, cie, 0x500000); !errors.Is(err, ErrTruncated) {
		t.Errorf("decodeFDE = %v, want ErrTruncated", err)
	}
}

// TestDecodeCFIsHugeExprLen pins the expression-length bound in the
// CFI program decoder for both expression forms.
func TestDecodeCFIsHugeExprLen(t *testing.T) {
	for _, prog := range [][]byte{
		{rawDefCFAExpr, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F},
		{rawExpression, 6, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F},
	} {
		if _, err := decodeCFIs(prog, 1, -8); !errors.Is(err, ErrTruncated) {
			t.Errorf("decodeCFIs(%x) = %v, want ErrTruncated", prog, err)
		}
	}
}
