package ehframe

// Stack-height evaluation of CFI programs (§V-B of the paper).
//
// The "stack height" at a code location is the number of bytes the
// stack has grown since function entry: height = CFAOffset - entry
// offset when the CFA is defined relative to the stack pointer. The
// entry offset is an ABI fact: on x86-64 the call pushes the return
// address, so CFA = rsp+8 at entry (height 0); on aarch64 the return
// address travels in x30 and CFA = sp+0 at entry. A tail call requires
// height 0 — the stack pointer must sit exactly where the function
// found it, so the target can return to the caller's caller.

// HeightRow gives the stack height holding from Loc (inclusive) to the
// next row's Loc (exclusive).
type HeightRow struct {
	Loc       uint64 // absolute code address
	CFAOffset int64  // CFA = SP + CFAOffset (valid only when SP-based)
}

// HeightTable is the evaluated height profile of one FDE.
type HeightTable struct {
	FDE  *FDE
	Rows []HeightRow

	// EntryOffset is the ABI's CFA offset from SP at function entry (8
	// on x86-64, 0 on aarch64): the bias between a CFA offset and the
	// paper's stack height.
	EntryOffset int64

	// Complete reports whether the CFI program gives trustworthy
	// SP-relative heights across the whole range, per the paper's
	// conservativeness criteria: the CFA is SP-based with the ABI's
	// initial offset, every CFA change is described by an SP-relative
	// redefinition, and no expression forms are used.
	Complete bool
}

// cfaState is the evaluator's running CFA rule.
type cfaState struct {
	reg    uint64
	offset int64
	valid  bool // rule is a plain reg+offset (no expression)
}

// Heights evaluates the FDE's CFI program under the x86-64 ABI facts
// (CFA starts as rsp+8). Multi-ISA callers use HeightsABI with the
// ISA's CFI constants instead.
func (f *FDE) Heights() HeightTable { return f.HeightsABI(DwRSP, 8) }

// HeightsABI evaluates the FDE's CFI program (prepended with its CIE's
// initial instructions) into a height table, against the given ABI
// facts: the DWARF number of the stack pointer and the CFA offset from
// it at function entry (arch.ISA's CFISPReg and CFIEntryOffset).
func (f *FDE) HeightsABI(spReg uint64, entryOffset int64) HeightTable {
	t := HeightTable{FDE: f, EntryOffset: entryOffset, Complete: true}
	loc := f.PCBegin
	st := cfaState{}
	var stack []cfaState // remember_state/restore_state

	apply := func(c CFI) {
		switch c.Op {
		case CFADefCFA:
			st = cfaState{reg: c.Reg, offset: c.Offset, valid: true}
		case CFADefCFARegister:
			st.reg = c.Reg
		case CFADefCFAOffset:
			st.offset = c.Offset
		case CFADefCFAExpression:
			st.valid = false
			t.Complete = false
		case CFARememberState:
			stack = append(stack, st)
		case CFARestoreState:
			if len(stack) > 0 {
				st = stack[len(stack)-1]
				stack = stack[:len(stack)-1]
			}
		}
	}

	emit := func() {
		if st.valid && st.reg == spReg {
			t.Rows = append(t.Rows, HeightRow{Loc: loc, CFAOffset: st.offset})
		} else {
			// The CFA is not SP-relative here (frame-pointer
			// functions, expressions): heights are unknowable from
			// CFI at this and later SP-relative queries.
			t.Complete = false
		}
	}

	for _, c := range f.CIE.Initial {
		apply(c)
	}
	if !st.valid || st.reg != spReg || st.offset != entryOffset {
		// Paper criterion (i): CFA must start at the ABI entry rule.
		t.Complete = false
	}
	emit()
	for _, c := range f.Program {
		if c.Op == CFAAdvanceLoc {
			loc += c.Delta
			continue
		}
		before := st
		apply(c)
		if st != before {
			emit()
		}
	}
	return t
}

// HeightAt returns the stack height (bytes pushed since entry) at addr.
// ok is false when addr precedes the first row or the table is not
// Complete — callers implementing the paper's Algorithm 1 must skip
// such functions entirely.
func (t *HeightTable) HeightAt(addr uint64) (int64, bool) {
	if !t.Complete {
		return 0, false
	}
	var best *HeightRow
	for k := range t.Rows {
		r := &t.Rows[k]
		if r.Loc <= addr && (best == nil || r.Loc >= best.Loc) {
			best = r
		}
	}
	if best == nil {
		return 0, false
	}
	return best.CFAOffset - t.EntryOffset, true
}
