package ehframe

// Stack-height evaluation of CFI programs (§V-B of the paper).
//
// The "stack height" at a code location is the number of bytes the
// stack has grown since function entry: height = CFAOffset - 8 when the
// CFA is defined relative to rsp (on entry CFA = rsp+8, so height 0).
// A tail call requires height 0 — the stack pointer sits right below
// the return address, so the target can return to the caller's caller.

// HeightRow gives the stack height holding from Loc (inclusive) to the
// next row's Loc (exclusive).
type HeightRow struct {
	Loc       uint64 // absolute code address
	CFAOffset int64  // CFA = rsp + CFAOffset (valid only when rsp-based)
}

// HeightTable is the evaluated height profile of one FDE.
type HeightTable struct {
	FDE  *FDE
	Rows []HeightRow

	// Complete reports whether the CFI program gives trustworthy
	// rsp-relative heights across the whole range, per the paper's
	// conservativeness criteria: the CFA is rsp-based with initial
	// offset 8, every CFA change is described by an rsp-relative
	// redefinition, and no expression forms are used.
	Complete bool
}

// cfaState is the evaluator's running CFA rule.
type cfaState struct {
	reg    uint64
	offset int64
	valid  bool // rule is a plain reg+offset (no expression)
}

// Heights evaluates the FDE's CFI program (prepended with its CIE's
// initial instructions) into a height table.
func (f *FDE) Heights() HeightTable {
	t := HeightTable{FDE: f, Complete: true}
	loc := f.PCBegin
	st := cfaState{}
	var stack []cfaState // remember_state/restore_state

	apply := func(c CFI) {
		switch c.Op {
		case CFADefCFA:
			st = cfaState{reg: c.Reg, offset: c.Offset, valid: true}
		case CFADefCFARegister:
			st.reg = c.Reg
		case CFADefCFAOffset:
			st.offset = c.Offset
		case CFADefCFAExpression:
			st.valid = false
			t.Complete = false
		case CFARememberState:
			stack = append(stack, st)
		case CFARestoreState:
			if len(stack) > 0 {
				st = stack[len(stack)-1]
				stack = stack[:len(stack)-1]
			}
		}
	}

	emit := func() {
		if st.valid && st.reg == DwRSP {
			t.Rows = append(t.Rows, HeightRow{Loc: loc, CFAOffset: st.offset})
		} else {
			// The CFA is not rsp-relative here (frame-pointer
			// functions, expressions): heights are unknowable from
			// CFI at this and later rsp-relative queries.
			t.Complete = false
		}
	}

	for _, c := range f.CIE.Initial {
		apply(c)
	}
	if !st.valid || st.reg != DwRSP || st.offset != 8 {
		// Paper criterion (i): CFA must start as rsp+8.
		t.Complete = false
	}
	emit()
	for _, c := range f.Program {
		if c.Op == CFAAdvanceLoc {
			loc += c.Delta
			continue
		}
		before := st
		apply(c)
		if st != before {
			emit()
		}
	}
	return t
}

// HeightAt returns the stack height (bytes pushed since entry) at addr.
// ok is false when addr precedes the first row or the table is not
// Complete — callers implementing the paper's Algorithm 1 must skip
// such functions entirely.
func (t *HeightTable) HeightAt(addr uint64) (int64, bool) {
	if !t.Complete {
		return 0, false
	}
	var best *HeightRow
	for k := range t.Rows {
		r := &t.Rows[k]
		if r.Loc <= addr && (best == nil || r.Loc >= best.Loc) {
			best = r
		}
	}
	if best == nil {
		return 0, false
	}
	return best.CFAOffset - 8, true
}
