package ehframe

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestULEBRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		b := appendULEB(nil, v)
		got, n, err := readULEB(b)
		return err == nil && n == len(b) && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSLEBRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		b := appendSLEB(nil, v)
		got, n, err := readSLEB(b)
		return err == nil && n == len(b) && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Explicit boundary cases.
	for _, v := range []int64{0, -1, 1, 63, 64, -64, -65, 127, 128, -128} {
		b := appendSLEB(nil, v)
		got, _, err := readSLEB(b)
		if err != nil || got != v {
			t.Errorf("SLEB(%d) round trip = %d, %v", v, got, err)
		}
	}
}

func TestCFIProgramRoundTrip(t *testing.T) {
	prog := []CFI{
		{Op: CFADefCFA, Reg: DwRSP, Offset: 8},
		{Op: CFAOffset, Reg: DwRA, Offset: 8},
		{Op: CFAAdvanceLoc, Delta: 1},
		{Op: CFADefCFAOffset, Offset: 16},
		{Op: CFAOffset, Reg: DwRBP, Offset: 16},
		{Op: CFAAdvanceLoc, Delta: 12},
		{Op: CFADefCFAOffset, Offset: 24},
		{Op: CFAOffset, Reg: DwRBX, Offset: 24},
		{Op: CFAAdvanceLoc, Delta: 300}, // needs advance_loc2
		{Op: CFADefCFAOffset, Offset: 32},
		{Op: CFAAdvanceLoc, Delta: 70000}, // needs advance_loc4
		{Op: CFADefCFARegister, Reg: DwRBP},
		{Op: CFARememberState},
		{Op: CFARestoreState},
		{Op: CFARestore, Reg: DwRBX},
		{Op: CFANop},
	}
	b, err := encodeCFIs(prog, 1, -8)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := decodeCFIs(b, 1, -8)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(prog, got) {
		t.Fatalf("round trip mismatch:\n in: %v\nout: %v", prog, got)
	}
}

func TestCFIExpressionRoundTrip(t *testing.T) {
	// The hand-written FDE from paper Figure 6b uses DW_CFA_expression.
	prog := []CFI{
		{Op: CFAExpression, Reg: 8, Expr: []byte{0x77, 40}}, // r8: breg7+40
		{Op: CFAExpression, Reg: 9, Expr: []byte{0x77, 48}}, // r9: breg7+48
		{Op: CFADefCFAExpression, Expr: []byte{0x77, 8, 0x06}},
		{Op: CFANop},
	}
	b, err := encodeCFIs(prog, 1, -8)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := decodeCFIs(b, 1, -8)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(prog, got) {
		t.Fatalf("round trip mismatch:\n in: %v\nout: %v", prog, got)
	}
}

// paperFDE builds the FDE from Figure 4b of the paper.
func paperFDE() *FDE {
	return &FDE{
		CIE:     NewDefaultCIE(),
		PCBegin: 0xB0,
		PCRange: 56,
		Program: []CFI{
			{Op: CFAAdvanceLoc, Delta: 1}, // to b1
			{Op: CFADefCFAOffset, Offset: 16},
			{Op: CFAOffset, Reg: DwRBP, Offset: 16},
			{Op: CFAAdvanceLoc, Delta: 12}, // to bd
			{Op: CFADefCFAOffset, Offset: 24},
			{Op: CFAOffset, Reg: DwRBX, Offset: 24},
			{Op: CFAAdvanceLoc, Delta: 11}, // to c8
			{Op: CFADefCFAOffset, Offset: 32},
			{Op: CFAAdvanceLoc, Delta: 29}, // to e5
			{Op: CFADefCFAOffset, Offset: 24},
			{Op: CFAAdvanceLoc, Delta: 1}, // to e6
			{Op: CFADefCFAOffset, Offset: 16},
			{Op: CFAAdvanceLoc, Delta: 1}, // to e7
			{Op: CFADefCFAOffset, Offset: 8},
		},
	}
}

func TestHeightsPaperFigure4(t *testing.T) {
	ht := paperFDE().Heights()
	if !ht.Complete {
		t.Fatal("paper FDE should have complete heights")
	}
	tests := []struct {
		addr   uint64
		height int64
	}{
		{0xB0, 0}, // entry
		{0xB1, 8}, // after push rbp
		{0xB8, 8},
		{0xBD, 16}, // after push rbx
		{0xC8, 24}, // after sub rsp,8
		{0xD7, 24}, // at the call
		{0xE5, 16}, // after add rsp,8
		{0xE6, 8},  // after pop rbx
		{0xE7, 0},  // after pop rbp, at ret
	}
	for _, tt := range tests {
		h, ok := ht.HeightAt(tt.addr)
		if !ok {
			t.Errorf("HeightAt(%#x) not ok", tt.addr)
			continue
		}
		if h != tt.height {
			t.Errorf("HeightAt(%#x) = %d, want %d", tt.addr, h, tt.height)
		}
	}
}

func TestHeightsIncompleteFramePointer(t *testing.T) {
	// A frame-pointer function: CFA switches to rbp, making later
	// rsp-relative heights unknowable.
	f := &FDE{
		CIE:     NewDefaultCIE(),
		PCBegin: 0x100,
		PCRange: 0x40,
		Program: []CFI{
			{Op: CFAAdvanceLoc, Delta: 1},
			{Op: CFADefCFAOffset, Offset: 16},
			{Op: CFAAdvanceLoc, Delta: 3},
			{Op: CFADefCFARegister, Reg: DwRBP},
		},
	}
	ht := f.Heights()
	if ht.Complete {
		t.Fatal("frame-pointer FDE must be incomplete")
	}
	if _, ok := ht.HeightAt(0x110); ok {
		t.Fatal("HeightAt must refuse incomplete tables")
	}
}

func TestHeightsIncompleteExpression(t *testing.T) {
	f := &FDE{
		CIE:     NewDefaultCIE(),
		PCBegin: 0x100,
		PCRange: 0x10,
		Program: []CFI{
			{Op: CFADefCFAExpression, Expr: []byte{0x77, 8}},
		},
	}
	if ht := f.Heights(); ht.Complete {
		t.Fatal("expression-based CFA must be incomplete")
	}
}

func TestSectionEncodeDecodeRoundTrip(t *testing.T) {
	cie := NewDefaultCIE()
	paper := paperFDE()
	paper.CIE = cie // share one CIE across all three FDEs
	sec := &Section{
		Addr: 0x4F0000,
		FDEs: []*FDE{
			paper,
			{CIE: cie, PCBegin: 0x200, PCRange: 0x80, Program: []CFI{
				{Op: CFAAdvanceLoc, Delta: 4},
				{Op: CFADefCFAOffset, Offset: 48},
			}},
			{CIE: cie, PCBegin: 0x300, PCRange: 0x10},
		},
	}
	data, err := sec.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(data, 0x4F0000)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(got.FDEs) != 3 {
		t.Fatalf("decoded %d FDEs, want 3", len(got.FDEs))
	}
	if len(got.CIEs) != 1 {
		t.Fatalf("decoded %d CIEs, want 1 (shared)", len(got.CIEs))
	}
	for k, f := range got.FDEs {
		want := sec.FDEs[k]
		if f.PCBegin != want.PCBegin || f.PCRange != want.PCRange {
			t.Errorf("FDE %d = [%#x,+%#x), want [%#x,+%#x)",
				k, f.PCBegin, f.PCRange, want.PCBegin, want.PCRange)
		}
	}
	// Heights must survive the round trip.
	ht := got.FDEs[0].Heights()
	if h, ok := ht.HeightAt(0xD7); !ok || h != 24 {
		t.Errorf("post-roundtrip HeightAt(0xd7) = %d,%v want 24,true", h, ok)
	}
}

func TestSectionMultipleCIEs(t *testing.T) {
	cie1 := NewDefaultCIE()
	cie2 := NewDefaultCIE()
	cie2.FDEEnc = PEAbsptr
	sec := &Section{
		Addr: 0x10000,
		FDEs: []*FDE{
			{CIE: cie1, PCBegin: 0x1000, PCRange: 0x20},
			{CIE: cie2, PCBegin: 0x2000, PCRange: 0x30},
			{CIE: cie1, PCBegin: 0x3000, PCRange: 0x40},
		},
	}
	data, err := sec.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(data, 0x10000)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(got.CIEs) != 2 {
		t.Fatalf("decoded %d CIEs, want 2", len(got.CIEs))
	}
	if len(got.FDEs) != 3 {
		t.Fatalf("decoded %d FDEs, want 3", len(got.FDEs))
	}
	for k, f := range got.FDEs {
		if f.PCBegin != sec.FDEs[k].PCBegin {
			t.Errorf("FDE %d begin %#x, want %#x", k, f.PCBegin, sec.FDEs[k].PCBegin)
		}
	}
}

func TestFunctionStartsAndLookup(t *testing.T) {
	cie := NewDefaultCIE()
	sec := &Section{FDEs: []*FDE{
		{CIE: cie, PCBegin: 0x100, PCRange: 0x50},
		{CIE: cie, PCBegin: 0x200, PCRange: 0x10},
	}}
	starts := sec.FunctionStarts()
	if !reflect.DeepEqual(starts, []uint64{0x100, 0x200}) {
		t.Fatalf("FunctionStarts = %#x", starts)
	}
	if f, ok := sec.FDEAt(0x14F); !ok || f.PCBegin != 0x100 {
		t.Errorf("FDEAt(0x14f) = %v, %v", f, ok)
	}
	if _, ok := sec.FDEAt(0x150); ok {
		t.Error("FDEAt(0x150) should miss (exclusive end)")
	}
	if _, ok := sec.FDEStartingAt(0x200); !ok {
		t.Error("FDEStartingAt(0x200) should hit")
	}
	if _, ok := sec.FDEStartingAt(0x201); ok {
		t.Error("FDEStartingAt(0x201) should miss")
	}
}

// TestQuickHeightTableMonotonic property-tests that evaluating a random
// push-style CFI program yields monotonically increasing row locations
// and that HeightAt agrees with manual evaluation.
func TestQuickHeightTableMonotonic(t *testing.T) {
	f := func(deltasRaw []uint8) bool {
		if len(deltasRaw) > 24 {
			deltasRaw = deltasRaw[:24]
		}
		fde := &FDE{CIE: NewDefaultCIE(), PCBegin: 0x1000}
		offset := int64(8)
		var loc uint64
		for _, d := range deltasRaw {
			delta := uint64(d%32 + 1)
			loc += delta
			offset += 8
			fde.Program = append(fde.Program,
				CFI{Op: CFAAdvanceLoc, Delta: delta},
				CFI{Op: CFADefCFAOffset, Offset: offset},
			)
		}
		fde.PCRange = loc + 16
		ht := fde.Heights()
		if !ht.Complete {
			return false
		}
		prev := uint64(0)
		for k, r := range ht.Rows {
			if k > 0 && r.Loc <= prev {
				return false
			}
			prev = r.Loc
		}
		// Final height must be 8 * len(deltas).
		h, ok := ht.HeightAt(0x1000 + loc)
		return ok && h == int64(len(deltasRaw))*8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
