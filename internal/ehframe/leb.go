// Package ehframe encodes and decodes the .eh_frame section: Common
// Information Entries (CIEs), Frame Description Entries (FDEs), and
// their Call Frame Instruction (CFI) programs, following the DWARF CFI
// format as emitted by GCC and Clang for System-V x64 binaries.
//
// Beyond the codec, the package evaluates CFI programs into per-location
// stack-height tables. The evaluation implements the conservativeness
// test from §V-B of the FETCH paper: a function's height information is
// "complete" only when the CFA is defined as rsp+8 on entry and a
// DW_CFA_def_cfa_offset (or equivalent) re-defines it at every change,
// with the CFA register remaining rsp throughout.
package ehframe

import "errors"

// ErrTruncated is returned when a LEB128 value or structure runs past
// the end of its buffer.
var ErrTruncated = errors.New("ehframe: truncated data")

// ErrUnsupported marks a well-framed entry that uses a feature the
// codec does not understand (unknown CFI opcode, unsupported pointer
// encoding or CIE version). Decode skips such entries with a
// DecodeStats record instead of failing the whole section.
var ErrUnsupported = errors.New("ehframe: unsupported feature")

// appendULEB appends an unsigned LEB128 value.
func appendULEB(b []byte, v uint64) []byte {
	for {
		c := byte(v & 0x7F)
		v >>= 7
		if v != 0 {
			c |= 0x80
		}
		b = append(b, c)
		if v == 0 {
			return b
		}
	}
}

// appendSLEB appends a signed LEB128 value.
func appendSLEB(b []byte, v int64) []byte {
	for {
		c := byte(v & 0x7F)
		v >>= 7
		if (v == 0 && c&0x40 == 0) || (v == -1 && c&0x40 != 0) {
			return append(b, c)
		}
		b = append(b, c|0x80)
	}
}

// readULEB decodes an unsigned LEB128 value, returning it and the number
// of bytes consumed.
func readULEB(b []byte) (uint64, int, error) {
	var v uint64
	var shift uint
	for i := 0; i < len(b); i++ {
		c := b[i]
		v |= uint64(c&0x7F) << shift
		if c&0x80 == 0 {
			return v, i + 1, nil
		}
		shift += 7
		if shift >= 64 {
			return 0, 0, errors.New("ehframe: ULEB128 overflow")
		}
	}
	return 0, 0, ErrTruncated
}

// readSLEB decodes a signed LEB128 value.
func readSLEB(b []byte) (int64, int, error) {
	var v int64
	var shift uint
	for i := 0; i < len(b); i++ {
		c := b[i]
		v |= int64(c&0x7F) << shift
		shift += 7
		if c&0x80 == 0 {
			if shift < 64 && c&0x40 != 0 {
				v |= -1 << shift
			}
			return v, i + 1, nil
		}
		if shift >= 64 {
			return 0, 0, errors.New("ehframe: SLEB128 overflow")
		}
	}
	return 0, 0, ErrTruncated
}
