package ehframe

import (
	"encoding/binary"
	"testing"
)

// frame64 wraps an entry body (starting at its id field) in a 64-bit
// DWARF initial length: 0xffffffff escape followed by a uint64 length.
func frame64(body []byte) []byte {
	out := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	var ln [8]byte
	binary.LittleEndian.PutUint64(ln[:], uint64(len(body)))
	out = append(out, ln[:]...)
	return append(out, body...)
}

// u64 returns v in little-endian.
func u64(v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return b[:]
}

// u32 returns v in little-endian.
func u32(v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return b[:]
}

// cieBody64 is a default-style CIE body (version 1, "zR", code align
// 1, data align -8, RA 16, pcrel|sdata4 FDEs) behind an 8-byte id.
func cieBody64() []byte {
	body := append(u64(0),
		1,           // version
		'z', 'R', 0, // augmentation
		1,             // code align (ULEB)
		0x78,          // data align -8 (SLEB)
		16,            // RA register
		1,             // augmentation data length
		PEPCRelSData4, // FDE pointer encoding
		// initial program: def_cfa rsp, 8; offset ra at cfa-8
		rawDefCFA, 7, 8,
		rawOffset|16, 1,
	)
	return body
}

// TestDecode64BitDWARF pins the 64-bit DWARF initial-length path: a
// hand-framed 64-bit CIE/FDE pair must decode to the same result a
// 32-bit framing would give. Before the fix, the decoder aborted the
// whole section with "64-bit DWARF format not supported" — so a single
// such entry anywhere in a large real binary killed its analysis.
func TestDecode64BitDWARF(t *testing.T) {
	const base = 0x500000
	sec := frame64(cieBody64())
	fdeStart := len(sec)

	// FDE body: 8-byte CIE pointer (back-distance from the id field to
	// the CIE at offset 0), then pcrel|sdata4 PC begin/range.
	idField := fdeStart + 12 // 4-byte escape + 8-byte length
	pcField := idField + 8
	const pcBegin, pcRange = 0x401000, 0x40
	body := u64(uint64(idField))
	body = append(body, u32(uint32(int32(pcBegin-(base+pcField))))...)
	body = append(body, u32(pcRange)...)
	body = append(body, 0) // augmentation data length
	body = append(body, rawAdvanceLoc|4, rawDefCFAOfs, 16)
	sec = append(sec, frame64(body)...)
	sec = append(sec, 0, 0, 0, 0) // terminator

	s, err := Decode(sec, base)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(s.CIEs) != 1 || len(s.FDEs) != 1 {
		t.Fatalf("decoded %d CIEs, %d FDEs; want 1 and 1", len(s.CIEs), len(s.FDEs))
	}
	f := s.FDEs[0]
	if f.PCBegin != pcBegin || f.PCRange != pcRange {
		t.Errorf("FDE = [%#x,+%#x), want [%#x,+%#x)", f.PCBegin, f.PCRange, pcBegin, pcRange)
	}
	if got := s.Stats; got.Entries != 2 || got.DWARF64 != 2 || got.Skipped() {
		t.Errorf("Stats = %+v, want 2 entries, 2 DWARF64, none skipped", got)
	}
	ht := f.Heights()
	if !ht.Complete {
		t.Errorf("64-bit FDE heights not Complete: %+v", ht)
	}
}

// TestDecode64BitTruncatedLength keeps the hardening contract: a bare
// 0xffffffff escape with no 64-bit length behind it is still an error,
// never an accepted entry.
func TestDecode64BitTruncatedLength(t *testing.T) {
	for _, data := range [][]byte{
		{0xFF, 0xFF, 0xFF, 0xFF},
		{0xFF, 0xFF, 0xFF, 0xFF, 8, 0, 0},
	} {
		if _, err := Decode(data, 0x500000); err == nil {
			t.Errorf("Decode(%x) accepted truncated 64-bit length", data)
		}
	}
}

// validCIE32 is a minimal valid 32-bit CIE entry (offset-dependent
// pieces none), for composing mixed sections.
func validCIE32() []byte {
	body := append(u32(0),
		1,
		'z', 'R', 0,
		1, 0x78, 16,
		1, PEPCRelSData4,
		rawDefCFA, 7, 8,
	)
	for len(body)%4 != 0 {
		body = append(body, rawNop)
	}
	return append(u32(uint32(len(body))), body...)
}

// TestDecodeSkipsUnsupportedEntries pins the real-binary tolerance
// contract: a well-framed entry using a feature the codec does not
// support (here an unknown CFI opcode in one CIE, plus the FDE owned
// by it) is skipped and counted in DecodeStats, while entries around
// it still decode. Structural damage stays a hard error (see
// hardening_test.go).
func TestDecodeSkipsUnsupportedEntries(t *testing.T) {
	const base = 0x500000

	// CIE 0: valid. CIE 1: ends in an unknown (vendor) CFI opcode.
	var sec []byte
	sec = append(sec, validCIE32()...)
	badCIEStart := len(sec)
	badBody := append(u32(0),
		1,
		'z', 'R', 0,
		1, 0x78, 16,
		1, PEPCRelSData4,
		0x3C, // DW_CFA_? — no such opcode
	)
	for len(badBody)%4 != 0 {
		badBody = append(badBody, rawNop)
	}
	sec = append(sec, u32(uint32(len(badBody)))...)
	sec = append(sec, badBody...)

	// FDE 0: owned by the skipped CIE — must be skipped, not an orphan
	// error and not a crash.
	addFDE := func(cieStart int, pcBegin uint64) {
		fdeStart := len(sec)
		idField := fdeStart + 4
		pcField := idField + 4
		body := u32(uint32(idField - cieStart))
		body = append(body, u32(uint32(int32(int64(pcBegin)-int64(base+pcField))))...)
		body = append(body, u32(0x20)...)
		body = append(body, 0)
		for (len(body)+4)%4 != 0 {
			body = append(body, rawNop)
		}
		sec = append(sec, u32(uint32(len(body)))...)
		sec = append(sec, body...)
	}
	addFDE(badCIEStart, 0x401000)
	addFDE(0, 0x402000) // FDE 1: owned by the valid CIE — must survive
	sec = append(sec, 0, 0, 0, 0)

	s, err := Decode(sec, base)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(s.CIEs) != 1 || len(s.FDEs) != 1 {
		t.Fatalf("decoded %d CIEs, %d FDEs; want 1 and 1", len(s.CIEs), len(s.FDEs))
	}
	if got := s.FDEs[0].PCBegin; got != 0x402000 {
		t.Errorf("surviving FDE begins at %#x, want 0x402000", got)
	}
	want := DecodeStats{Entries: 4, SkippedCIEs: 1, SkippedFDEs: 1}
	if s.Stats != want {
		t.Errorf("Stats = %+v, want %+v", s.Stats, want)
	}
}

// TestRealCFIOpcodes covers the encodings real toolchains emit that
// the synthetic lane never generates: GNU_args_size (GCC, C++ try
// blocks), the signed-factored def_cfa/offset forms, and
// val_offset/val_expression. They must decode, render, and leave
// stack-height evaluation exact (none of them changes the CFA rule
// except the def_cfa forms, which carry ordinary semantics).
func TestRealCFIOpcodes(t *testing.T) {
	prog := []byte{
		rawGNUArgsSize, 16,
		rawDefCFASF, 7, 0x7E, // def_cfa_sf rsp, -2 → CFA = rsp+16
		rawDefCFAOfsSF, 0x7D, // def_cfa_offset_sf -3 → CFA offset 24
		rawOffsetExtSF, 3, 2, // offset_extended_sf rbx, 2 → at cfa-16
		rawValOffset, 6, 1, // val_offset rbp, 1 → value cfa-8
		rawValOffsetSF, 6, 0x7F, // val_offset_sf rbp, -1 → value cfa+8
		rawValExpr, 12, 1, 0x9C, // val_expression r12 [1 byte]
		rawGNUWinSave,
		rawGNUNegOfs, 14, 1, // negative_offset_extended r14, 1 → cfa+8
	}
	got, err := decodeCFIs(prog, 1, -8)
	if err != nil {
		t.Fatalf("decodeCFIs: %v", err)
	}
	want := []CFI{
		{Op: CFAGNUArgsSize, Offset: 16},
		{Op: CFADefCFA, Reg: 7, Offset: 16},
		{Op: CFADefCFAOffset, Offset: 24},
		{Op: CFAOffset, Reg: 3, Offset: 16},
		{Op: CFAValOffset, Reg: 6, Offset: -8},
		{Op: CFAValOffset, Reg: 6, Offset: 8},
		{Op: CFAValExpression, Reg: 12, Expr: []byte{0x9C}},
		{Op: CFAGNUWindowSave},
		{Op: CFAOffset, Reg: 14, Offset: -8},
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d ops, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Op != w.Op || g.Reg != w.Reg || g.Offset != w.Offset || string(g.Expr) != string(w.Expr) {
			t.Errorf("op %d = %v, want %v", i, g, w)
		}
		if g.String() == "" {
			t.Errorf("op %d renders empty", i)
		}
	}

	// The non-CFA ops must not disturb height evaluation.
	cie := NewDefaultCIE()
	fde := &FDE{CIE: cie, PCBegin: 0x401000, PCRange: 0x40, Program: []CFI{
		{Op: CFAGNUArgsSize, Offset: 16},
		{Op: CFAAdvanceLoc, Delta: 4},
		{Op: CFADefCFAOffset, Offset: 24},
		{Op: CFAValOffset, Reg: 6, Offset: -8},
		{Op: CFAGNUWindowSave},
	}}
	ht := fde.Heights()
	if !ht.Complete {
		t.Fatalf("heights not Complete with neutral real-CFI ops: %+v", ht)
	}
	if h, ok := ht.HeightAt(0x401005); !ok || h != 16 {
		t.Errorf("HeightAt(+5) = %d, %v; want 16, true", h, ok)
	}
}
