package ehframe

import (
	"reflect"
	"testing"
)

// fuzzSectionBytes builds a small valid .eh_frame via the encoder, for
// seeding the section fuzzer with structurally realistic input.
func fuzzSectionBytes(tb testing.TB, enc byte) []byte {
	cie := NewDefaultCIE()
	cie.FDEEnc = enc
	sec := &Section{Addr: 0x500000}
	sec.FDEs = []*FDE{
		{CIE: cie, PCBegin: 0x401000, PCRange: 0x40, Program: []CFI{
			{Op: CFAAdvanceLoc, Delta: 1},
			{Op: CFADefCFAOffset, Offset: 16},
			{Op: CFAOffset, Reg: DwRBX, Offset: 16},
		}},
		{CIE: cie, PCBegin: 0x401040, PCRange: 0x80, Program: []CFI{
			{Op: CFAAdvanceLoc, Delta: 4},
			{Op: CFADefCFARegister, Reg: DwRBP},
		}},
	}
	out, err := sec.Encode()
	if err != nil {
		tb.Fatalf("encode seed: %v", err)
	}
	return out
}

// FuzzSectionDecode throws arbitrary bytes at the .eh_frame decoder.
// The contract: never panic — truncated or garbage input returns an
// error — and every successfully decoded FDE has a CIE.
func FuzzSectionDecode(f *testing.F) {
	f.Add(fuzzSectionBytes(f, PEPCRelSData4))
	f.Add(fuzzSectionBytes(f, PEAbsptr))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})                                 // bare terminator
	f.Add([]byte{4, 0, 0, 0, 0, 0, 0, 0})                     // CIE with empty body
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})                     // 64-bit DWARF marker
	f.Add([]byte{8, 0, 0, 0, 0xF0, 0, 0, 0, 1, 2, 3, 4})      // FDE pointing at no CIE
	f.Add([]byte{3, 0, 0, 0, 0, 0, 0})                        // length smaller than id field
	f.Add([]byte{8, 0, 0, 0, 0, 0, 0, 0, 1, 'z', 'R', 0})     // CIE truncated mid-augmentation
	f.Add([]byte{12, 0, 0, 0, 0, 0, 0, 0, 1, 0, 1, 0x78, 16}) // plain-augmentation CIE
	f.Fuzz(func(t *testing.T, data []byte) {
		sec, err := Decode(data, 0x500000)
		if err != nil {
			return
		}
		for _, fde := range sec.FDEs {
			if fde.CIE == nil {
				t.Fatal("decoded FDE with nil CIE")
			}
			// Height evaluation must hold up on anything that decodes.
			_ = fde.Heights()
		}
	})
}

// FuzzCFIProgram checks the CFI codec on arbitrary programs: decoding
// never panics, and any decodable program round-trips through the
// encoder to the same semantic instruction list (for the offset ranges
// the encoder canonicalizes).
func FuzzCFIProgram(f *testing.F) {
	progs := [][]byte{
		{rawNop},
		{rawAdvanceLoc | 5, rawDefCFAOfs, 16},
		{rawOffset | DwRBX, 2},
		{rawAdvanceLoc1, 200, rawAdvanceLoc2, 0x10, 0x27, rawAdvanceLoc4, 1, 2, 3, 4},
		{rawDefCFA, 7, 8, rawDefCFAReg, 6, rawRestore | 3},
		{rawRememberSt, rawRestoreSt, rawUndefined, 16, rawSameValue, 3},
		{rawRegister, 3, 12, rawOffsetExt, 16, 2, rawRestoreExt, 16},
		{rawDefCFAExpr, 2, 0x77, 0x08, rawExpression, 6, 1, 0x9C},
	}
	for _, p := range progs {
		f.Add(p)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		prog, err := decodeCFIs(data, 1, -8)
		if err != nil {
			return
		}
		if !cfiRoundTrippable(prog) {
			return
		}
		enc, err := encodeCFIs(prog, 1, -8)
		if err != nil {
			t.Fatalf("cannot re-encode decoded program: %v", err)
		}
		again, err := decodeCFIs(enc, 1, -8)
		if err != nil {
			t.Fatalf("cannot re-decode encoded program: %v", err)
		}
		if !reflect.DeepEqual(normalizeCFIs(prog), normalizeCFIs(again)) {
			t.Fatalf("CFI round trip diverged:\n  first:  %v\n  second: %v", prog, again)
		}
	})
}

// cfiRoundTrippable reports whether the encoder canonicalizes every
// instruction of the program: offsets within the factored ranges and
// non-nil expression payloads.
func cfiRoundTrippable(prog []CFI) bool {
	for _, c := range prog {
		if c.Offset < 0 || c.Offset > 1<<32 || c.Delta > 1<<32 {
			return false
		}
	}
	return true
}

// normalizeCFIs maps empty and nil expression payloads to the same
// representation for comparison.
func normalizeCFIs(prog []CFI) []CFI {
	out := append([]CFI(nil), prog...)
	for i := range out {
		if len(out[i].Expr) == 0 {
			out[i].Expr = nil
		}
	}
	return out
}
