// Package tailcall implements Algorithm 1 of the paper (§V-B): fixing
// FDE-introduced false function starts by proving that the jump
// connecting two call frames cannot be a tail call and merging the
// frames, plus the calling-convention sweep that removes hand-written
// FDE errors (Figure 6b).
//
// A jump is a tail call only when (1) the stack pointer at the jump
// site sits right below the return address — stack height zero, taken
// from CFI-recorded heights, never from static analysis (Table IV's
// argument) — (2) the target satisfies the calling convention, and
// (3) the target is referenced somewhere else. A non-tail jump whose
// target owns an FDE and has no other reference identifies a distant
// part of the same non-contiguous function, which is merged away.
// Functions whose CFI lacks complete height information are skipped
// wholesale (the §V-C residue).
package tailcall

import (
	"context"
	"sort"

	"fetch/internal/arch"
	"fetch/internal/callconv"
	"fetch/internal/disasm"
	"fetch/internal/ehframe"
	"fetch/internal/elfx"
	"fetch/internal/pool"
	"fetch/internal/stackan"
)

// Input carries the state Algorithm 1 operates on.
type Input struct {
	Img *elfx.Image
	Sec *ehframe.Section
	// Res is the accumulated safe disassembly (provides decoded
	// instructions and code-level references).
	Res *disasm.Result
	// Funcs is the current detected function-start set; it is not
	// mutated — the output carries the corrected copy.
	Funcs map[uint64]bool
	// DataRefCount reports how many data-section pointer slots hold a
	// given address (the §IV-E conservative reference collection).
	DataRefCount func(uint64) int
	// Sess, when set, lets the static-height ablation's jump-table
	// probes reuse the pipeline's shared decode cache.
	Sess *disasm.Session
	// Jobs > 1 precomputes the per-FDE CFI height tables and the
	// convention-sweep entry validations on a worker pool of that
	// size. Both are pure per-FDE functions, so the output is
	// identical to the sequential computation.
	Jobs int

	// UseStaticHeights replaces CFI-recorded heights with the static
	// dataflow analysis — the ablation the paper argues against via
	// Table IV (static heights are incomplete and inaccurate).
	UseStaticHeights bool
	// DisableRefCriterion drops the "target referenced elsewhere"
	// requirement from tail-call detection — the ablation showing why
	// the criterion is needed to avoid false tail calls.
	DisableRefCriterion bool

	// Obs, when set, observes the pure per-site quantities Algorithm 1
	// consumed: every calling-convention verdict at its consumption
	// point, and every candidate jump with its height lookup. The
	// delta-analysis recorder replays decisions from these without
	// re-running the sweep.
	Obs *Observer
}

// Observer receives Algorithm 1's per-site inputs as they are
// consumed (see Input.Obs). Either hook may be nil.
type Observer struct {
	// OnConv reports one calling-convention verdict consumption.
	OnConv func(addr uint64, ok bool)
	// OnJump reports one candidate jump considered within the FDE
	// starting at fde: the jump site, its target, and the height
	// lookup's outcome.
	OnJump func(fde uint64, j JumpObs)
}

// JumpObs is one observed candidate jump.
type JumpObs struct {
	Addr   uint64
	Target uint64
	// HOK reports whether a height was known at the jump site; HZero
	// reports that the known height was zero (the tail-call
	// precondition).
	HOK, HZero bool
}

// Output reports the corrections.
type Output struct {
	// Funcs is the corrected function-start set.
	Funcs map[uint64]bool
	// Merged maps each removed part start to the function it was
	// merged into.
	Merged map[uint64]uint64
	// TailNew lists targets newly added by tail-call detection.
	TailNew []uint64
	// CFIErrRemoved lists FDE starts removed by the convention sweep.
	CFIErrRemoved []uint64
	// SkippedIncomplete counts FDE functions skipped for lacking
	// complete CFI height information.
	SkippedIncomplete int
}

// Run executes the convention sweep followed by Algorithm 1.
func Run(in Input) Output {
	out := Output{
		Funcs:  make(map[uint64]bool, len(in.Funcs)),
		Merged: make(map[uint64]uint64),
	}
	for f := range in.Funcs {
		out.Funcs[f] = true
	}
	dataRefs := in.DataRefCount
	if dataRefs == nil {
		dataRefs = func(uint64) int { return 0 }
	}

	fdeAt := make(map[uint64]*ehframe.FDE, len(in.Sec.FDEs))
	for _, f := range in.Sec.FDEs {
		fdeAt[f.PCBegin] = f
	}

	// CFI heights are evaluated against the image's ABI facts: the
	// DWARF stack-pointer column and the CFA offset at entry (8 on
	// x86-64, 0 on aarch64).
	isa := in.Img.ISA()
	cfiSP, cfiEntry := isa.CFISPReg(), isa.CFIEntryOffset()

	// Sharded runs precompute the two pure per-FDE quantities the
	// sequential loops below consume — entry-convention verdicts and
	// CFI height tables — on the worker pool. The loops themselves
	// stay sequential (and identical) either way.
	var convOK map[uint64]bool
	var heights []ehframe.HeightTable
	if in.Jobs > 1 && len(in.Sec.FDEs) > 1 {
		rs := pool.Map(nil, in.Jobs, in.Sec.FDEs,
			func(_ context.Context, _ int, f *ehframe.FDE) (bool, error) {
				return callconv.Validate(in.Img, f.PCBegin), nil
			})
		convOK = make(map[uint64]bool, len(rs))
		for i, r := range rs {
			convOK[in.Sec.FDEs[i].PCBegin] = r.Value
		}
		if !in.UseStaticHeights {
			hs := pool.Map(nil, in.Jobs, in.Sec.FDEs,
				func(_ context.Context, _ int, f *ehframe.FDE) (ehframe.HeightTable, error) {
					return f.HeightsABI(cfiSP, cfiEntry), nil
				})
			heights = make([]ehframe.HeightTable, len(hs))
			for i, r := range hs {
				heights[i] = r.Value
			}
		}
	}
	entryOK := func(a uint64) bool {
		v, ok := convOK[a]
		if !ok {
			v = callconv.Validate(in.Img, a)
		}
		if in.Obs != nil && in.Obs.OnConv != nil {
			in.Obs.OnConv(a, v)
		}
		return v
	}

	// Hand-written FDE errors: an FDE start that violates the calling
	// convention cannot be a function entry (§V-B, the "3 false
	// positives").
	for _, f := range in.Sec.FDEs {
		if out.Funcs[f.PCBegin] && !entryOK(f.PCBegin) {
			delete(out.Funcs, f.PCBegin)
			out.CFIErrRemoved = append(out.CFIErrRemoved, f.PCBegin)
		}
	}

	// Sorted instruction addresses for per-FDE iteration.
	instAddrs := make([]uint64, 0, len(in.Res.Insts))
	for a := range in.Res.Insts {
		instAddrs = append(instAddrs, a)
	}
	sort.Slice(instAddrs, func(i, j int) bool { return instAddrs[i] < instAddrs[j] })

	instsIn := func(lo, hi uint64) []uint64 {
		i := sort.Search(len(instAddrs), func(k int) bool { return instAddrs[k] >= lo })
		j := sort.Search(len(instAddrs), func(k int) bool { return instAddrs[k] >= hi })
		return instAddrs[i:j]
	}

	// refsOtherThan counts references to t besides the jump j itself.
	refsOtherThan := func(t, j uint64) int {
		n := 0
		for _, r := range in.Res.Refs[t] {
			if r != j {
				n++
			}
		}
		if in.Res.Constants[t] {
			n++
		}
		n += dataRefs(t)
		return n
	}

	for fi, fde := range in.Sec.FDEs {
		if !out.Funcs[fde.PCBegin] {
			continue
		}
		var ht ehframe.HeightTable
		if heights != nil {
			ht = heights[fi]
		} else {
			ht = fde.HeightsABI(cfiSP, cfiEntry)
		}
		var static map[uint64]stackan.Height
		if in.UseStaticHeights {
			static = stackan.AnalyzeWithSession(in.Sess, in.Img, fde.PCBegin, fde.End(), stackan.Precise)
		} else if !ht.Complete {
			out.SkippedIncomplete++
			continue
		}
		for _, ia := range instsIn(fde.PCBegin, fde.End()) {
			inst := in.Res.Insts[ia]
			if (inst.Op != arch.OpJmp && inst.Op != arch.OpJcc) || !inst.HasTarget {
				continue
			}
			t := inst.Target
			if fde.Covers(t) {
				continue // jump inside the function
			}
			var h int64
			var ok bool
			if in.UseStaticHeights {
				s, found := static[inst.Addr]
				h, ok = s.H, found && s.Known
			} else {
				h, ok = ht.HeightAt(inst.Addr)
			}
			if in.Obs != nil && in.Obs.OnJump != nil {
				in.Obs.OnJump(fde.PCBegin, JumpObs{
					Addr: inst.Addr, Target: t, HOK: ok, HZero: ok && h == 0,
				})
			}
			if !ok {
				continue
			}
			isTailCall := false
			if h == 0 {
				refOK := refsOtherThan(t, inst.Addr) > 0 || in.DisableRefCriterion
				if refOK && entryOK(t) {
					if !out.Funcs[t] {
						out.Funcs[t] = true
						out.TailNew = append(out.TailNew, t)
					}
					isTailCall = true
				}
			}
			if !isTailCall && out.Funcs[t] {
				if _, hasFDE := fdeAt[t]; hasFDE && refsOtherThan(t, inst.Addr) == 0 {
					delete(out.Funcs, t)
					out.Merged[t] = fde.PCBegin
				}
			}
		}
	}
	sort.Slice(out.TailNew, func(i, j int) bool { return out.TailNew[i] < out.TailNew[j] })
	sort.Slice(out.CFIErrRemoved, func(i, j int) bool { return out.CFIErrRemoved[i] < out.CFIErrRemoved[j] })
	return out
}
