package tailcall

import (
	"testing"

	"fetch/internal/disasm"
	"fetch/internal/ehframe"
	"fetch/internal/elfx"
	"fetch/internal/groundtruth"
	"fetch/internal/synth"
	"fetch/internal/xref"
)

// setup builds a binary and runs the pre-stages of the pipeline.
func setup(t *testing.T, mutate func(*synth.Config)) (*elfx.Image, *groundtruth.Truth, Input) {
	t.Helper()
	cfg := synth.DefaultConfig("tc-test", 600, synth.O2, synth.GCC, synth.LangC)
	if mutate != nil {
		mutate(&cfg)
	}
	img, truth, err := synth.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	img = img.Strip()
	eh, _ := img.Section(".eh_frame")
	sec, err := ehframe.Decode(eh.Data, eh.Addr)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	seeds := sec.FunctionStarts()
	res := disasm.Recursive(img, seeds, disasm.Options{
		ResolveJumpTables: true, NonReturning: true,
	})
	funcs := map[uint64]bool{}
	for _, s := range seeds {
		funcs[s] = true
	}
	for f := range res.Funcs {
		funcs[f] = true
	}
	return img, truth, Input{
		Img: img, Sec: sec, Res: res, Funcs: funcs,
		DataRefCount: func(a uint64) int { return xref.DataRefCount(img, a) },
	}
}

func TestRunMergesCompleteParts(t *testing.T) {
	_, truth, in := setup(t, func(c *synth.Config) { c.NonContigRate = 0.3 })
	out := Run(in)
	for _, p := range truth.Parts {
		if p.IncompleteCFI {
			if !out.Funcs[p.Addr] {
				t.Errorf("incomplete-CFI part %s wrongly removed", p.Name)
			}
			continue
		}
		if out.Funcs[p.Addr] {
			t.Errorf("complete-CFI part %s not merged", p.Name)
		}
		if owner := out.Merged[p.Addr]; owner != p.Parent {
			t.Errorf("part %s merged into %#x, want %#x", p.Name, owner, p.Parent)
		}
	}
	if out.SkippedIncomplete == 0 {
		t.Error("expected some skipped incomplete-CFI functions")
	}
}

func TestRunNeverRemovesCallReachable(t *testing.T) {
	_, truth, in := setup(t, nil)
	out := Run(in)
	for _, fn := range truth.Funcs {
		if fn.Reach != groundtruth.ReachCall && fn.Reach != groundtruth.ReachEntry {
			continue
		}
		if in.Funcs[fn.Addr] && !out.Funcs[fn.Addr] {
			// A call-reachable function may only disappear when it is
			// a single-tail-call-referenced merge victim; those have
			// reach TailOnly, so this is always a bug.
			t.Errorf("call-reachable %s removed", fn.Name)
		}
	}
}

func TestRunInputNotMutated(t *testing.T) {
	_, _, in := setup(t, func(c *synth.Config) { c.NonContigRate = 0.3 })
	before := len(in.Funcs)
	_ = Run(in)
	if len(in.Funcs) != before {
		t.Fatal("Run mutated the input function set")
	}
}

func TestRunCFIErrorSweep(t *testing.T) {
	_, truth, in := setup(t, func(c *synth.Config) { c.CFIErrorCount = 2 })
	out := Run(in)
	if len(truth.CFIErrorAddrs) != 2 {
		t.Fatalf("want 2 planted errors, got %d", len(truth.CFIErrorAddrs))
	}
	removed := map[uint64]bool{}
	for _, a := range out.CFIErrRemoved {
		removed[a] = true
	}
	for _, a := range truth.CFIErrorAddrs {
		if !removed[a] {
			t.Errorf("planted CFI error %#x not removed", a)
		}
	}
	// The sweep must remove nothing else.
	if len(out.CFIErrRemoved) != 2 {
		t.Errorf("sweep removed %d starts, want 2: %x", len(out.CFIErrRemoved), out.CFIErrRemoved)
	}
}

func TestRunStaticHeightsAblation(t *testing.T) {
	_, truth, in := setup(t, func(c *synth.Config) { c.NonContigRate = 0.3 })
	in.UseStaticHeights = true
	out := Run(in)
	// With static heights nothing is skipped for incomplete CFI...
	if out.SkippedIncomplete != 0 {
		t.Errorf("static-heights run skipped %d", out.SkippedIncomplete)
	}
	// ...and rsp-framed parts still merge.
	merged := 0
	for _, p := range truth.Parts {
		if !p.IncompleteCFI && !out.Funcs[p.Addr] {
			merged++
		}
	}
	if merged == 0 {
		t.Error("static-heights run merged nothing")
	}
}

func TestRunDisableRefCriterion(t *testing.T) {
	_, _, in := setup(t, func(c *synth.Config) { c.TailCallRate = 0.4 })
	strict := Run(in)
	in2 := in
	in2.DisableRefCriterion = true
	loose := Run(in2)
	// Dropping the criterion can only add tail-call targets.
	if len(loose.TailNew) < len(strict.TailNew) {
		t.Errorf("loose found fewer tail targets (%d < %d)",
			len(loose.TailNew), len(strict.TailNew))
	}
}
