package resultcache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func key(n int) Key {
	return Key{
		SHA256:  HashBytes([]byte(fmt.Sprintf("binary-%d", n))),
		Variant: "recT.xrefT.tailT",
		Schema:  1,
	}
}

func TestMemoryGetPut(t *testing.T) {
	c, err := New(Config{MaxEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(key(1), []byte("one"))
	got, ok := c.Get(key(1))
	if !ok || string(got) != "one" {
		t.Fatalf("got %q %v", got, ok)
	}
	// Same hash, different variant or schema: distinct entries.
	k2 := key(1)
	k2.Variant = "recF.xrefF.tailF"
	if _, ok := c.Get(k2); ok {
		t.Fatal("variant aliased")
	}
	k3 := key(1)
	k3.Schema = 2
	if _, ok := c.Get(k3); ok {
		t.Fatal("schema aliased")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 3 || st.Puts != 1 || st.Entries != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestLRUEvictsOldest(t *testing.T) {
	c, err := New(Config{MaxEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	c.Put(key(1), []byte("1"))
	c.Put(key(2), []byte("2"))
	c.Get(key(1)) // make key(2) the oldest
	c.Put(key(3), []byte("3"))
	if _, ok := c.Get(key(2)); ok {
		t.Fatal("least-recently-used entry survived eviction")
	}
	for _, n := range []int{1, 3} {
		if _, ok := c.Get(key(n)); !ok {
			t.Fatalf("entry %d evicted wrongly", n)
		}
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestPutOverwritesInPlace(t *testing.T) {
	c, err := New(Config{MaxEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	c.Put(key(1), []byte("old"))
	c.Put(key(1), []byte("new"))
	got, ok := c.Get(key(1))
	if !ok || string(got) != "new" {
		t.Fatalf("got %q %v", got, ok)
	}
	if st := c.Stats(); st.Entries != 1 || st.Evictions != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestDiskPersistsAcrossInstances(t *testing.T) {
	dir := t.TempDir()
	c1, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c1.Put(key(1), []byte("persisted"))

	// A fresh cache over the same directory serves the entry from disk
	// and promotes it to memory.
	c2, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get(key(1))
	if !ok || string(got) != "persisted" {
		t.Fatalf("disk miss: %q %v", got, ok)
	}
	st := c2.Stats()
	if st.DiskHits != 1 || st.MemHits != 0 {
		t.Fatalf("stats after disk hit: %+v", st)
	}
	if _, ok := c2.Get(key(1)); !ok {
		t.Fatal("promoted entry missed")
	}
	if st := c2.Stats(); st.MemHits != 1 {
		t.Fatalf("stats after promotion: %+v", st)
	}
}

// entryPath returns the single .rc file in dir.
func entryPath(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.rc"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("want exactly one entry file, got %v (%v)", matches, err)
	}
	return matches[0]
}

// TestCorruptEntriesAreDroppedNotServed mutates the on-disk entry in
// every corruption class and requires each to read as a clean miss
// that deletes the bad file.
func TestCorruptEntriesAreDroppedNotServed(t *testing.T) {
	payload := []byte(strings.Repeat("result-payload ", 100))
	corruptions := map[string]func([]byte) []byte{
		"truncated-header":  func(b []byte) []byte { return b[:8] },
		"truncated-payload": func(b []byte) []byte { return b[:len(b)-7] },
		"empty":             func([]byte) []byte { return nil },
		"bad-magic":         func(b []byte) []byte { return append([]byte("wrongmag"), b[8:]...) },
		"flipped-bit": func(b []byte) []byte {
			b[len(b)-1] ^= 0x40
			return b
		},
		"trailing-garbage": func(b []byte) []byte { return append(b, "extra"...) },
		"not-a-cache-file": func([]byte) []byte { return []byte("just some text\nmore text\n") },
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			c, err := New(Config{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			c.Put(key(1), payload)
			path := entryPath(t, dir)
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, corrupt(append([]byte(nil), raw...)), 0o644); err != nil {
				t.Fatal(err)
			}

			// Fresh instance: memory is cold, the corrupt disk entry is
			// the only copy.
			c2, err := New(Config{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			if got, ok := c2.Get(key(1)); ok {
				t.Fatalf("corrupt entry served: %q", got)
			}
			if st := c2.Stats(); st.CorruptDrops != 1 {
				t.Fatalf("stats: %+v", st)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("corrupt file not deleted: %v", err)
			}
			// The slot is reusable after the drop.
			c2.Put(key(1), payload)
			if got, ok := c2.Get(key(1)); !ok || !bytes.Equal(got, payload) {
				t.Fatal("re-put after corruption drop failed")
			}
		})
	}
}

func TestDiskWriteFailureDegradesToMemory(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	// Remove the directory out from under the cache: disk writes now
	// fail, but Put/Get must keep working from memory.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	c.Put(key(1), []byte("memory-only"))
	got, ok := c.Get(key(1))
	if !ok || string(got) != "memory-only" {
		t.Fatalf("memory fallback broken: %q %v", got, ok)
	}
	if st := c.Stats(); st.DiskErrors == 0 {
		t.Fatalf("disk error not counted: %+v", st)
	}
}

func TestKeyStringIsFilenameSafeAndDistinct(t *testing.T) {
	k := key(1)
	s := k.String()
	if strings.ContainsAny(s, "/\\ \t\n") {
		t.Fatalf("key string %q not filename-safe", s)
	}
	k2 := key(2)
	if s == k2.String() {
		t.Fatal("distinct keys collide")
	}
	if !strings.HasPrefix(s, "v1-") {
		t.Fatalf("schema version not in key string: %q", s)
	}
}

// TestConcurrentReadersWriters hammers one cache from many goroutines
// mixing hits, misses, puts, evictions, and disk IO; run under -race
// this is the concurrency-safety proof.
func TestConcurrentReadersWriters(t *testing.T) {
	c, err := New(Config{MaxEntries: 8, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers = 8
		rounds  = 200
		keys    = 16
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				n := (w + i) % keys
				if i%3 == 0 {
					c.Put(key(n), []byte(fmt.Sprintf("payload-%d", n)))
				} else if got, ok := c.Get(key(n)); ok {
					want := fmt.Sprintf("payload-%d", n)
					if string(got) != want {
						t.Errorf("key %d: got %q want %q", n, got, want)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	st := c.Stats()
	if st.Puts == 0 || st.Hits == 0 {
		t.Fatalf("implausible stats after hammering: %+v", st)
	}
	if st.Entries > 8 {
		t.Fatalf("LRU bound violated: %d entries", st.Entries)
	}
	if st.CorruptDrops != 0 {
		t.Fatalf("atomic writes produced corrupt reads: %+v", st)
	}
}

// TestDiskBudgetHoldsUnderConcurrentWriters hammers a byte-budgeted
// disk cache from many goroutines and checks the contract: once the
// writers quiesce the directory fits the budget, evictions happened
// oldest-first (early keys gone, latest keys present), and no
// surviving entry ever reads back wrong.
func TestDiskBudgetHoldsUnderConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	const budget = 64 << 10
	c, err := New(Config{MaxEntries: 4, Dir: dir, MaxBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	payload := func(n int) []byte {
		b := bytes.Repeat([]byte{byte(n)}, 2048)
		copy(b, fmt.Sprintf("payload-%d", n))
		return b
	}
	const writers = 8
	const perWriter = 16
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				n := w*perWriter + i
				c.Put(key(n), payload(n))
			}
		}()
	}
	wg.Wait()
	if got := diskUsage(dir); got > budget {
		t.Fatalf("disk usage %d exceeds budget %d after writers quiesced", got, budget)
	}
	st := c.Stats()
	if st.DiskEvictions == 0 {
		t.Fatalf("128 × ~2KB entries under a 64KB budget evicted nothing: %+v", st)
	}
	if st.DiskBytes > budget {
		t.Fatalf("tracked DiskBytes %d exceeds budget %d", st.DiskBytes, budget)
	}
	// Survivors read back correct (never a wrong hit), evictees miss.
	survivors := 0
	for n := 0; n < writers*perWriter; n++ {
		got, ok := c.Get(key(n))
		if !ok {
			continue
		}
		survivors++
		if !bytes.Equal(got, payload(n)) {
			t.Fatalf("key %d: surviving entry reads back wrong", n)
		}
	}
	if survivors == 0 {
		t.Fatal("budget eviction emptied the cache entirely")
	}
}
