package resultcache

import (
	"encoding/binary"
	"testing"
)

// FuzzHashRange checks the function-tier key's differential contract:
// the same (addr, bytes) pair always maps to the same key; changing
// any single payload byte, or the address, must change the key; and
// the key must equal the plain content hash of the 8-byte-address ‖
// bytes payload the cache stores — the binding fnRangeBytes verifies
// on every read.
func FuzzHashRange(f *testing.F) {
	f.Add(uint64(0x401000), []byte("\x55\x48\x89\xe5\xc3"), uint(2), byte(1), uint64(16))
	f.Add(uint64(0), []byte{}, uint(0), byte(0xFF), uint64(1))
	f.Add(uint64(1<<40), []byte{0xC3}, uint(0), byte(0x80), uint64(1<<40))
	f.Fuzz(func(t *testing.T, addr uint64, data []byte, pos uint, flip byte, addrDelta uint64) {
		sum := HashRange(addr, data)

		// Determinism: recomputing from a copy yields the same key.
		cp := append([]byte(nil), data...)
		if HashRange(addr, cp) != sum {
			t.Fatalf("HashRange not deterministic for addr=%#x len=%d", addr, len(data))
		}

		// Framing: the key IS the content hash of the stored payload.
		payload := make([]byte, 8+len(data))
		binary.LittleEndian.PutUint64(payload, addr)
		copy(payload[8:], data)
		if HashBytes(payload) != sum {
			t.Fatalf("HashRange(%#x, …) differs from HashBytes(addr‖bytes)", addr)
		}

		// Sensitivity: any single byte change changes the key.
		if len(data) > 0 {
			i := int(pos % uint(len(data)))
			mut := append([]byte(nil), data...)
			mut[i] ^= flip | 1 // always a real change
			if HashRange(addr, mut) == sum {
				t.Fatalf("byte flip at %d did not change the key", i)
			}
		}

		// Address binding: byte-identical bodies at different addresses
		// (the ICF shape) never alias one entry.
		if addrDelta == 0 {
			addrDelta = 1
		}
		if HashRange(addr+addrDelta, data) == sum {
			t.Fatalf("address change %#x -> %#x did not change the key",
				addr, addr+addrDelta)
		}
	})
}
