// Package resultcache is a content-addressed, versioned store for
// serialized analysis results.
//
// A cache entry is keyed by the SHA-256 of the analyzed binary's
// bytes, the analysis variant (the strategy signature), and the result
// schema version — so byte-identical binaries analyzed the same way
// share one entry, a strategy change never aliases, and a codec schema
// bump invalidates every stored encoding at once. Values are opaque
// byte payloads: the package deliberately knows nothing about the
// result encoding (the root fetch package owns the codec), which keeps
// the dependency arrow pointing one way.
//
// The store is a two-level hierarchy: a bounded in-memory LRU front,
// and an optional on-disk back (Config.Dir). Disk writes are atomic —
// payloads land under a temporary name and are renamed into place — so
// a crash can never leave a half-written entry visible. Disk reads are
// corruption-tolerant: every entry carries a header with the payload's
// length and SHA-256, and an entry that fails verification (truncated,
// bit-flipped, or simply not a cache file) is treated as a miss and
// deleted, never returned. All operations are safe for concurrent use.
package resultcache

import (
	"bufio"
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Key identifies one cache entry: one binary, analyzed one way, under
// one result schema.
type Key struct {
	// SHA256 is the content hash of the analyzed binary's bytes.
	SHA256 [sha256.Size]byte
	// Variant distinguishes analysis configurations that produce
	// different results for the same binary (the strategy signature).
	// It must be filename-safe: letters, digits, '-', '+', '.', '_'.
	Variant string
	// Schema is the version of the serialized result format stored
	// under this key; see fetch.ResultSchemaVersion.
	Schema int
}

// String renders the key as a filename-safe identifier,
// "v<schema>-<variant>-<hex sha256>".
func (k Key) String() string {
	return fmt.Sprintf("v%d-%s-%s", k.Schema, k.Variant, hex.EncodeToString(k.SHA256[:]))
}

// HashBytes returns the content hash a Key uses for raw binary bytes.
func HashBytes(data []byte) [sha256.Size]byte {
	return sha256.Sum256(data)
}

// HashFile streams a file through the content hash without loading it
// into memory — the file-backed analysis path's key derivation.
func HashFile(path string) ([sha256.Size]byte, error) {
	var sum [sha256.Size]byte
	f, err := os.Open(path)
	if err != nil {
		return sum, err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return sum, err
	}
	copy(sum[:], h.Sum(nil))
	return sum, nil
}

// HashRange returns the content hash for one FDE-delimited byte range
// of a binary. The hash binds the range's start address in addition to
// its bytes: x86-64 code is position-dependent (RIP-relative operands,
// direct call displacements), so byte-identical bodies at different
// addresses — the ICF shape — must never alias one function-tier
// entry. The address is mixed in as a fixed 8-byte little-endian
// prefix, so the mapping (addr, bytes) → hash is injective up to
// SHA-256 collisions: equal inputs always collide, and any change to
// either the address or any byte of the range yields a new hash.
func HashRange(addr uint64, data []byte) [sha256.Size]byte {
	h := sha256.New()
	var pre [8]byte
	binary.LittleEndian.PutUint64(pre[:], addr)
	h.Write(pre[:])
	h.Write(data)
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return sum
}

// Config parameterizes New.
type Config struct {
	// MaxEntries bounds the in-memory LRU; non-positive selects
	// DefaultMaxEntries. Disk entries are not counted or evicted.
	MaxEntries int
	// Dir enables the on-disk level when non-empty. The directory is
	// created if missing; entries persist across processes.
	Dir string
	// MaxBytes bounds the on-disk level's total size in bytes
	// (headers included). Zero or negative means unbounded. When a Put
	// pushes the directory past the budget, entries are evicted
	// oldest-first by modification time until the budget holds again;
	// the entry just written is the newest and is evicted last.
	MaxBytes int64
}

// DefaultMaxEntries is the in-memory LRU capacity when Config leaves
// MaxEntries unset.
const DefaultMaxEntries = 1024

// Stats are the cache's monotonic operation counters plus the current
// memory entry count. Hits and Misses partition Get calls; MemHits and
// DiskHits partition Hits by the level that served them. CorruptDrops
// counts on-disk entries discarded because their integrity check
// failed.
type Stats struct {
	Hits         int64
	Misses       int64
	MemHits      int64
	DiskHits     int64
	Puts         int64
	Evictions    int64
	CorruptDrops int64
	DiskErrors   int64
	// DiskEvictions counts on-disk entries removed to hold the
	// Config.MaxBytes budget.
	DiskEvictions int64
	// DiskBytes is the current estimated on-disk size in bytes.
	DiskBytes int64
	// Entries is the current in-memory LRU population.
	Entries int
}

// Cache is the two-level content-addressed store. The zero value is
// not usable; construct with New.
type Cache struct {
	mu      sync.Mutex
	cfg     Config
	entries map[Key]*list.Element
	order   *list.List // front = most recently used
	stats   Stats

	// diskMu serializes byte-budget accounting and eviction sweeps. It
	// is distinct from mu so budget enforcement (which lists and
	// deletes files) never blocks memory hits.
	diskMu    sync.Mutex
	diskBytes int64
}

// lruEntry is one resident memory entry.
type lruEntry struct {
	key  Key
	data []byte
}

// New builds a Cache from cfg, creating the disk directory when one is
// configured.
func New(cfg Config) (*Cache, error) {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = DefaultMaxEntries
	}
	c := &Cache{
		cfg:     cfg,
		entries: make(map[Key]*list.Element),
		order:   list.New(),
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("resultcache: %w", err)
		}
		if cfg.MaxBytes > 0 {
			// Seed the usage estimate from what already persists, so a
			// restarted process keeps honoring the budget.
			c.diskBytes = diskUsage(cfg.Dir)
			c.enforceBudget()
		}
	}
	return c, nil
}

// Get returns the payload stored under k, or ok=false on a miss. A
// disk-level hit is promoted into the memory LRU. The returned slice
// is shared with the cache and must be treated as read-only.
//
// Disk reads happen outside the mutex: a Get that falls through to
// disk never blocks other goroutines' memory hits behind file IO.
func (c *Cache) Get(k Key) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.entries[k]; ok {
		c.order.MoveToFront(el)
		c.stats.Hits++
		c.stats.MemHits++
		data := el.Value.(*lruEntry).data
		c.mu.Unlock()
		return data, true
	}
	if c.cfg.Dir == "" {
		c.stats.Misses++
		c.mu.Unlock()
		return nil, false
	}
	c.mu.Unlock()

	data, st := diskGet(c.path(k))
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.CorruptDrops += st.corruptDrops
	c.stats.DiskErrors += st.diskErrors
	if data == nil {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	c.stats.DiskHits++
	// Promote, unless a concurrent Put/Get landed the key meanwhile —
	// then keep the resident entry authoritative.
	if el, ok := c.entries[k]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*lruEntry).data, true
	}
	c.insertLocked(k, data)
	return data, true
}

// Put stores data under k in the memory LRU and, when configured, on
// disk. The data slice is retained; callers must not mutate it after
// the call. Disk failures degrade the entry to memory-only and are
// counted in Stats.DiskErrors, never surfaced: a result cache must not
// turn a successful analysis into an error.
//
// The disk write happens outside the mutex; concurrent Puts of one
// key are safe because each writes its own temp file and the final
// rename is atomic (last writer wins with a complete entry).
func (c *Cache) Put(k Key, data []byte) {
	c.mu.Lock()
	c.stats.Puts++
	if el, ok := c.entries[k]; ok {
		el.Value.(*lruEntry).data = data
		c.order.MoveToFront(el)
	} else {
		c.insertLocked(k, data)
	}
	dir := c.cfg.Dir
	c.mu.Unlock()
	if dir != "" {
		if err := diskPut(dir, c.path(k), data); err != nil {
			c.mu.Lock()
			c.stats.DiskErrors++
			c.mu.Unlock()
		} else if c.cfg.MaxBytes > 0 {
			c.diskMu.Lock()
			c.diskBytes += entryDiskSize(len(data))
			over := c.diskBytes > c.cfg.MaxBytes
			c.diskMu.Unlock()
			if over {
				c.enforceBudget()
			}
		}
	}
}

// entryDiskSize estimates one entry's on-disk footprint: header line
// plus payload. The header is "resultcache1 <64 hex> <len>\n"; its
// length varies only with the decimal digits of len, so the estimate
// is exact.
func entryDiskSize(payloadLen int) int64 {
	return int64(len(diskMagic) + 1 + 2*sha256.Size + 1 + len(fmt.Sprint(payloadLen)) + 1 + payloadLen)
}

// diskUsage sums the sizes of all cache entries in dir.
func diskUsage(dir string) int64 {
	var total int64
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	for _, e := range ents {
		if e.IsDir() || filepath.Ext(e.Name()) != ".rc" {
			continue
		}
		if info, err := e.Info(); err == nil {
			total += info.Size()
		}
	}
	return total
}

// enforceBudget deletes on-disk entries oldest-first (by modification
// time) until the directory fits Config.MaxBytes. The sweep rescans
// the directory so the usage estimate re-synchronizes with reality
// (concurrent writers, external deletions) every time it runs; races
// with concurrent Puts can only make the sweep conservative, never
// corrupt an entry, because deletion is whole-file and readers verify
// integrity per entry.
func (c *Cache) enforceBudget() {
	c.diskMu.Lock()
	defer c.diskMu.Unlock()
	ents, err := os.ReadDir(c.cfg.Dir)
	if err != nil {
		return
	}
	type fileInfo struct {
		name  string
		size  int64
		mtime int64
	}
	var files []fileInfo
	var total int64
	for _, e := range ents {
		if e.IsDir() || filepath.Ext(e.Name()) != ".rc" {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, fileInfo{e.Name(), info.Size(), info.ModTime().UnixNano()})
		total += info.Size()
	}
	sort.Slice(files, func(i, j int) bool {
		if files[i].mtime != files[j].mtime {
			return files[i].mtime < files[j].mtime
		}
		return files[i].name < files[j].name
	})
	var evicted int64
	for _, f := range files {
		if total <= c.cfg.MaxBytes {
			break
		}
		if os.Remove(filepath.Join(c.cfg.Dir, f.name)) == nil {
			total -= f.size
			evicted++
		}
	}
	c.diskBytes = total
	if evicted > 0 {
		c.mu.Lock()
		c.stats.DiskEvictions += evicted
		c.mu.Unlock()
	}
}

// insertLocked adds a new entry at the LRU front, evicting from the
// back past capacity. Callers hold c.mu.
func (c *Cache) insertLocked(k Key, data []byte) {
	c.entries[k] = c.order.PushFront(&lruEntry{key: k, data: data})
	for c.order.Len() > c.cfg.MaxEntries {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*lruEntry).key)
		c.stats.Evictions++
	}
}

// Stats returns a snapshot of the operation counters.
func (c *Cache) Stats() Stats {
	c.diskMu.Lock()
	diskBytes := c.diskBytes
	c.diskMu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Entries = c.order.Len()
	st.DiskBytes = diskBytes
	return st
}

// --- disk level ---

// diskMagic heads every on-disk entry. The full header line is
// "resultcache1 <payload sha256 hex> <payload length>\n" followed by
// exactly the payload bytes; anything that deviates is corrupt.
const diskMagic = "resultcache1"

// maxDiskEntry bounds how large an on-disk entry may claim to be; a
// corrupt header cannot make a read allocate unbounded memory.
const maxDiskEntry = 1 << 30

// path returns k's on-disk location.
func (c *Cache) path(k Key) string {
	return filepath.Join(c.cfg.Dir, k.String()+".rc")
}

// diskPut atomically writes an entry: payload and integrity header go
// to a temporary file in the same directory, which is then renamed
// over the final name. Readers therefore see either the previous
// complete entry or the new complete entry, never a partial write.
// It runs without the cache mutex and touches no shared state.
func diskPut(dir, path string, data []byte) error {
	sum := sha256.Sum256(data)
	tmp, err := os.CreateTemp(dir, "tmp-*.rc")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	header := fmt.Sprintf("%s %s %d\n", diskMagic, hex.EncodeToString(sum[:]), len(data))
	if _, err := tmp.WriteString(header); err != nil {
		tmp.Close()
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// diskStats carries the counter deltas a lock-free disk read produced,
// applied under the mutex by the caller.
type diskStats struct {
	corruptDrops int64
	diskErrors   int64
}

// diskGet reads and verifies an on-disk entry; nil data means a miss.
// Any integrity failure — bad magic, malformed header, short payload,
// hash mismatch — counts as a corrupt drop: the file is deleted
// (best-effort) and the lookup reports a miss. It runs without the
// cache mutex and touches no shared state.
func diskGet(path string) ([]byte, diskStats) {
	var st diskStats
	f, err := os.Open(path)
	if err != nil {
		if !os.IsNotExist(err) {
			st.diskErrors++
		}
		return nil, st
	}
	defer f.Close()
	data, err := readVerified(f)
	if err != nil {
		st.corruptDrops++
		os.Remove(path)
		return nil, st
	}
	return data, st
}

// readVerified parses one entry stream against its integrity header.
func readVerified(f *os.File) ([]byte, error) {
	r := bufio.NewReader(f)
	header, err := r.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("resultcache: truncated header: %w", err)
	}
	var magic, sumHex string
	var n int
	if _, err := fmt.Sscanf(header, "%s %s %d\n", &magic, &sumHex, &n); err != nil {
		return nil, fmt.Errorf("resultcache: malformed header: %w", err)
	}
	if magic != diskMagic {
		return nil, fmt.Errorf("resultcache: bad magic %q", magic)
	}
	wantSum, err := hex.DecodeString(sumHex)
	if err != nil || len(wantSum) != sha256.Size {
		return nil, fmt.Errorf("resultcache: bad header hash")
	}
	if n < 0 || n > maxDiskEntry {
		return nil, fmt.Errorf("resultcache: implausible payload length %d", n)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r, data); err != nil {
		return nil, fmt.Errorf("resultcache: truncated payload: %w", err)
	}
	if _, err := r.ReadByte(); err == nil {
		// Any readable byte past the payload means the file is longer
		// than the header claims.
		return nil, fmt.Errorf("resultcache: trailing bytes after payload")
	}
	got := sha256.Sum256(data)
	if !bytes.Equal(got[:], wantSum) {
		return nil, fmt.Errorf("resultcache: payload hash mismatch")
	}
	return data, nil
}
