package synth

import "fmt"

// ProjectSpec mirrors one row of Table II: a source project built into
// one or more programs at every compiler × optimization combination.
type ProjectSpec struct {
	Name  string
	Type  string // Utilities, Client, Server, Library, Benchmark
	Progs int    // programs per build configuration (paper's "# Prog")
	Lang  Lang
	// FuncsPerProg sizes each program.
	FuncsPerProg int
	// AsmRate overrides the default hand-written-assembly density —
	// the paper's FDE coverage gaps concentrate in a few asm-heavy
	// projects (Openssl 96.40%, Nginx 98.97%, Glibc 99.97%).
	AsmRate float64
	// CFIErrors plants hand-written FDE errors (Glibc-style, Fig 6b).
	CFIErrors int
}

// SelfBuiltProjects mirrors the 22 project groups of Table II. Program
// counts are the paper's; corpus construction scales them.
var SelfBuiltProjects = []ProjectSpec{
	{Name: "coreutils", Type: "Utilities", Progs: 105, Lang: LangC, FuncsPerProg: 80},
	{Name: "findutils", Type: "Utilities", Progs: 3, Lang: LangC, FuncsPerProg: 90},
	{Name: "binutils", Type: "Utilities", Progs: 17, Lang: LangCPP, FuncsPerProg: 140},
	{Name: "openssl", Type: "Client", Progs: 1, Lang: LangC, FuncsPerProg: 160, AsmRate: 0.036},
	{Name: "d8", Type: "Client", Progs: 1, Lang: LangCPP, FuncsPerProg: 180},
	{Name: "busybox", Type: "Client", Progs: 1, Lang: LangC, FuncsPerProg: 150},
	{Name: "protobuf-c", Type: "Client", Progs: 1, Lang: LangCPP, FuncsPerProg: 100},
	{Name: "zsh", Type: "Client", Progs: 1, Lang: LangC, FuncsPerProg: 120},
	{Name: "openssh", Type: "Client", Progs: 7, Lang: LangC, FuncsPerProg: 100},
	{Name: "mysql", Type: "Client", Progs: 1, Lang: LangCPP, FuncsPerProg: 170},
	{Name: "git", Type: "Client", Progs: 1, Lang: LangC, FuncsPerProg: 150},
	{Name: "filezilla", Type: "Client", Progs: 1, Lang: LangCPP, FuncsPerProg: 130},
	{Name: "lighttpd", Type: "Server", Progs: 1, Lang: LangC, FuncsPerProg: 110},
	{Name: "mysqld", Type: "Server", Progs: 1, Lang: LangCPP, FuncsPerProg: 200},
	{Name: "nginx", Type: "Server", Progs: 1, Lang: LangC, FuncsPerProg: 140, AsmRate: 0.010},
	{Name: "glibc", Type: "Library", Progs: 1, Lang: LangC, FuncsPerProg: 180, AsmRate: 0.0003, CFIErrors: 1},
	{Name: "libpcap", Type: "Library", Progs: 1, Lang: LangC, FuncsPerProg: 90},
	{Name: "libv8", Type: "Library", Progs: 1, Lang: LangCPP, FuncsPerProg: 170},
	{Name: "libtiff", Type: "Library", Progs: 1, Lang: LangC, FuncsPerProg: 90},
	{Name: "libxml2", Type: "Library", Progs: 1, Lang: LangC, FuncsPerProg: 120},
	{Name: "libprotobuf-c", Type: "Library", Progs: 1, Lang: LangCPP, FuncsPerProg: 90},
	{Name: "spec2006", Type: "Benchmark", Progs: 30, Lang: LangCPP, FuncsPerProg: 130},
}

// BinarySpec is one binary of a corpus: its generation config plus the
// project metadata rows the drivers report.
type BinarySpec struct {
	Config  Config
	Project string
	Type    string
}

// SelfBuiltCorpus builds the Table II corpus: every project compiled
// with GCC and Clang at O2/O3/Os/Ofast. scale ∈ (0,1] shrinks program
// counts (at least one program per project survives); seed makes the
// corpus reproducible.
func SelfBuiltCorpus(scale float64, seed int64) []BinarySpec {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	var out []BinarySpec
	next := seed
	for _, p := range SelfBuiltProjects {
		progs := int(float64(p.Progs)*scale + 0.5)
		if progs < 1 {
			progs = 1
		}
		for prog := 0; prog < progs; prog++ {
			for _, comp := range []Compiler{GCC, Clang} {
				for _, opt := range AllOpts {
					name := fmt.Sprintf("%s-%d-%s-%s", p.Name, prog, comp, opt)
					cfg := DefaultConfig(name, next, opt, comp, p.Lang)
					next++
					cfg.NumFuncs = p.FuncsPerProg
					if p.AsmRate > 0 {
						cfg.AsmRate = p.AsmRate
						// Asm-heavy projects also concentrate the
						// tail-only, unreachable, and pointer-only
						// assembly functions.
						cfg.TailOnlyRate = 0.006
						cfg.UnreachableAsmRate = 0.002
						cfg.IndirectOnlyRate = 0.008
					} else {
						cfg.AsmRate = 0
						cfg.TailOnlyRate = 0.0008
						cfg.UnreachableAsmRate = 0
						cfg.IndirectOnlyRate = 0.0008
					}
					// Hand-written CFI errors are vanishingly rare:
					// plant them only in one build of the one project.
					if p.CFIErrors > 0 && comp == GCC && opt == O2 && prog == 0 {
						cfg.CFIErrorCount = p.CFIErrors
					}
					out = append(out, BinarySpec{Config: cfg, Project: p.Name, Type: p.Type})
				}
			}
		}
	}
	return out
}

// WildSpec is one Table I row: a binary "from the wild".
type WildSpec struct {
	Config     Config
	Software   string
	Open       bool
	HasSymbols bool
}

// WildCorpus builds the Table I set: 43 binaries, a mix of open- and
// closed-source software, 11 of which come with symbols.
func WildCorpus(seed int64) []WildSpec {
	rows := []struct {
		name string
		open bool
		sym  bool
		lang Lang
		comp Compiler
	}{
		{"atom", true, false, LangCPP, GCC},
		{"simplenote", true, false, LangCPP, GCC},
		{"openshot", true, false, LangC, GCC},
		{"seamonkey", true, false, LangCPP, GCC},
		{"mupdf", true, false, LangC, GCC},
		{"laverna", true, false, LangCPP, GCC},
		{"franz", true, false, LangCPP, GCC},
		{"nightingale", true, false, LangC, GCC},
		{"palemoon", true, false, LangCPP, Clang},
		{"evince", true, false, LangC, GCC},
		{"amarok", true, false, LangC, GCC},
		{"deadbeef", true, false, LangC, GCC},
		{"qbittorrent", true, false, LangCPP, GCC},
		{"pdftex", true, false, LangC, GCC},
		{"eclipse", true, false, LangC, GCC},
		{"vscode", true, false, LangCPP, GCC},
		{"virtualbox", true, true, LangCPP, GCC},
		{"gv", true, true, LangC, GCC},
		{"okular", true, true, LangCPP, GCC},
		{"gcc", true, true, LangC, GCC},
		{"wkhtmltopdf", true, true, LangC, GCC},
		{"firefox", true, true, LangCPP, Clang},
		{"qemu-system", true, true, LangC, GCC},
		{"thunderbird", true, true, LangCPP, GCC},
		{"smuxi-server", true, true, LangC, GCC},
		{"teamviewer", false, false, LangCPP, GCC},
		{"skype", false, false, LangCPP, GCC},
		{"trillian", false, false, LangCPP, GCC},
		{"opera", false, false, LangCPP, Clang},
		{"yandex-browser", false, false, LangCPP, Clang},
		{"spideroak", false, false, LangC, GCC},
		{"slack", false, false, LangCPP, GCC},
		{"rainlendar2", false, false, LangCPP, GCC},
		{"sublime", false, false, LangCPP, GCC},
		{"netease-music", false, false, LangCPP, GCC},
		{"wps", false, false, LangCPP, GCC},
		{"wpp", false, false, LangCPP, GCC},
		{"wpspdf", false, false, LangCPP, GCC},
		{"wpsoffice", false, false, LangCPP, GCC},
		{"ida64", false, false, LangCPP, GCC},
		{"zoom", false, false, LangCPP, GCC},
		{"binaryninja", false, true, LangCPP, GCC},
		{"foxitreader", false, true, LangCPP, GCC},
	}
	var out []WildSpec
	for k, r := range rows {
		cfg := DefaultConfig(r.name, seed+int64(k), O2, r.comp, r.lang)
		cfg.NumFuncs = 90 + (k*13)%120
		out = append(out, WildSpec{
			Config:     cfg,
			Software:   r.name,
			Open:       r.open,
			HasSymbols: r.sym,
		})
	}
	return out
}
