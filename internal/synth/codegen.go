package synth

import (
	"fmt"
	"math/rand"

	"fetch/internal/ehframe"
	"fetch/internal/groundtruth"
	"fetch/internal/x64"
)

// frameKind selects the CFA style of a generated function.
type frameKind uint8

const (
	frameRSP frameKind = iota + 1 // CFA stays rsp-relative: complete heights
	frameRBP                      // CFA switches to rbp: incomplete heights
)

// funcClass is the generator-side taxonomy (richer than the ground
// truth classes, which it maps onto).
type funcClass uint8

const (
	clsNormal funcClass = iota + 1
	clsMain
	clsExit      // the exit-like non-returning leaf
	clsError     // the error/error_at_line-like conditional non-return
	clsAsm       // hand-written asm without FDE, call-reachable
	clsTailFDE   // compiled function reachable only via one tail call
	clsTailAsm   // asm function reachable only via one tail call
	clsIndirAsm  // asm function reachable only via function pointer
	clsUnreach   // asm function referenced nowhere
	clsClangTerm // __clang_call_terminate
	clsCFIErr    // function whose hand-written FDE begins one byte early
	clsThunkMid  // thunk jumping into the middle of another function
	clsICF       // byte-identical duplicate leaf body (ICF-style clone)
	clsXrefChain // pointer-chain link: next link's address sits past the validation walk bound
)

// callRef is one direct call the body must emit.
type callRef struct {
	sym string
	// errArg: for calls to the error-like function, the first-argument
	// constant (0 = returning, nonzero = non-returning call site).
	errArg int32
	isErr  bool
}

// funcSpec fully describes one function to generate.
type funcSpec struct {
	idx   int
	name  string
	class funcClass
	reach groundtruth.Reach

	frame     frameKind
	pushRegs  []x64.Reg
	frameSize int32
	numOps    int
	// useEnter: old-style enter/leave framing with rsp-relative CFI —
	// the construct the degraded stack-height analyses mis-model
	// (Table IV's precision gap).
	useEnter bool

	callees   []callRef
	tailCall  string // symbol tail-called at the end (after epilogue)
	jumpTable int    // number of cases; 0 = none
	picTable  bool   // position-independent (table-relative) entries
	// caseCallees are called from inside jump-table case blocks: only
	// tools that resolve the table ever see these call sites.
	caseCallees []string
	// noEndbr suppresses the endbr64 marker (prologue-less shape).
	noEndbr bool
	// caseOnly marks functions whose sole call site lives in a
	// jump-table case block.
	caseOnly   bool
	earlyRet   bool
	nonRetTail bool // end with a branch to a call of the error-like fn with nonzero arg
	startPad   int  // leading alignment NOPs inside the FDE range
	split      bool // non-contiguous: emit a cold part
	splitRet   bool // cold part returns instead of jumping back
	thunkMidOf string

	hasFDE bool
	hasSym bool
	nonRet bool
	// truncFDE halves this function's FDE PCRange (PC Begin stays
	// exact); overlapFDE plants an extra bogus FDE at the .mid offset.
	truncFDE   bool
	overlapFDE bool

	// dataPtrSlot: this function's address is stored in .data.
	dataPtrSlot bool
	// chainNext: the next xref-chain link's symbol, materialized as a
	// movabs immediate deep in this link's body ("" = chain tail).
	chainNext string
	// codePtrFrom: index of a function that materializes this
	// function's address with a RIP-relative lea (-1 = none).
	codePtrFrom int
	// codePtrCalls: symbols this function calls indirectly through a
	// RIP-relative lea + call reg sequence.
	codePtrCalls []string
}

// cfiAt pairs a chunk offset with a CFI instruction taking effect there.
type cfiAt struct {
	off int
	in  ehframe.CFI
}

// chunk is the generated machine code of one function or cold part,
// before layout.
type chunk struct {
	name    string
	code    []byte
	fixups  []x64.Fixup
	exports map[string]int // extra symbol → offset
	cfi     []cfiAt
	spec    *funcSpec
	isPart  bool
	parent  string
	hasFDE  bool
	hasSym  bool
	// fdeSkew: FDE PC Begin = chunk address + fdeSkew (fdeSkew 0 for
	// correct FDEs; the CFI-error functions place the true entry at
	// offset 1 while the FDE begins at offset 0).
	symOff int // symbol/true-start offset within the chunk
	isData bool
	align  int
	// mis16: force the chunk to land 16-misaligned (addr % 16 == 8) so
	// strictly-aligned matchers skip it while looser ones hit it.
	mis16 bool

	addr uint64  // assigned at layout
	sec  *secBuf // executable section buffer the chunk landed in
	off  int     // byte offset within sec.data
}

// dwarfReg maps hardware register numbers to DWARF numbers.
var dwarfReg = map[x64.Reg]uint64{
	x64.RAX: 0, x64.RCX: 2, x64.RDX: 1, x64.RBX: 3,
	x64.RSP: 7, x64.RBP: 6, x64.RSI: 4, x64.RDI: 5,
	x64.R8: 8, x64.R9: 9, x64.R10: 10, x64.R11: 11,
	x64.R12: 12, x64.R13: 13, x64.R14: 14, x64.R15: 15,
}

// cgen wraps an assembler with CFI and stack-height tracking.
type cgen struct {
	a      x64.Asm
	cfi    []cfiAt
	height int64 // bytes pushed since entry
	rbpCFA bool  // CFA has been re-based on rbp: stop emitting offsets
	rng    *rand.Rand
	// written tracks registers initialized so far (for generating
	// calling-convention-respecting filler).
	written x64.RegSet
}

func (g *cgen) note(in ehframe.CFI) {
	g.cfi = append(g.cfi, cfiAt{off: g.a.Len(), in: in})
}

func (g *cgen) noteOffset() {
	if !g.rbpCFA {
		g.note(ehframe.CFI{Op: ehframe.CFADefCFAOffset, Offset: g.height + 8})
	}
}

func (g *cgen) push(r x64.Reg) {
	g.a.PushReg(r)
	g.height += 8
	g.noteOffset()
	if x64.IsCalleeSaved(r) && !g.rbpCFA {
		g.note(ehframe.CFI{Op: ehframe.CFAOffset, Reg: dwarfReg[r], Offset: g.height + 8})
	}
}

func (g *cgen) pop(r x64.Reg) {
	g.a.PopReg(r)
	g.height -= 8
	g.noteOffset()
}

func (g *cgen) subRSP(n int32) {
	if n == 0 {
		return
	}
	g.a.SubRSP(n)
	g.height += int64(n)
	g.noteOffset()
}

func (g *cgen) addRSP(n int32) {
	if n == 0 {
		return
	}
	g.a.AddRSP(n)
	g.height -= int64(n)
	g.noteOffset()
}

// scratchRegs are the caller-saved temporaries filler code draws from.
var scratchRegs = []x64.Reg{x64.RAX, x64.RCX, x64.RDX, x64.R10, x64.R11}

// readable returns a register that is legal to read here: an argument
// register or anything already written.
func (g *cgen) readable() x64.Reg {
	cands := []x64.Reg{x64.RDI, x64.RSI}
	for _, r := range scratchRegs {
		if g.written.Has(r) {
			cands = append(cands, r)
		}
	}
	for _, r := range x64.CalleeSavedRegs {
		if r != x64.RBP && g.written.Has(r) {
			cands = append(cands, r)
		}
	}
	return cands[g.rng.Intn(len(cands))]
}

// filler emits one semantically harmless, convention-respecting body
// instruction.
func (g *cgen) filler() {
	dst := scratchRegs[g.rng.Intn(len(scratchRegs))]
	switch g.rng.Intn(7) {
	case 0:
		g.a.MovRegReg(dst, g.readable())
	case 1:
		g.a.MovRegImm32(dst, int32(g.rng.Intn(1<<16)))
	case 2:
		g.a.XorRegReg(dst)
	case 3:
		src := g.readable()
		g.a.MovRegReg(dst, src)
		g.a.AddRegImm(dst, int32(g.rng.Intn(256))+1)
	case 4:
		g.a.LeaRegMem(dst, g.readable(), int32(g.rng.Intn(64)))
	case 5:
		if g.height >= 16 {
			// A pure store writes no register: dst must not be
			// marked initialized.
			g.a.MovMemReg(x64.RSP, int32(g.rng.Intn(2))*8, g.readable())
			return
		}
		g.a.MovRegReg(dst, g.readable())
	case 6:
		src := g.readable()
		g.a.MovRegReg(dst, src)
		g.a.ShlRegImm(dst, uint8(g.rng.Intn(4)+1))
	}
	g.written = g.written.Add(dst)
}

// emitCall sets up the first argument and calls the symbol.
func (g *cgen) emitCall(c callRef) {
	if c.isErr {
		if c.errArg == 0 {
			g.a.XorRegReg(x64.RDI)
		} else {
			g.a.MovRegImm32(x64.RDI, c.errArg)
		}
	} else {
		switch g.rng.Intn(3) {
		case 0:
			g.a.XorRegReg(x64.RDI)
		case 1:
			g.a.MovRegImm32(x64.RDI, int32(g.rng.Intn(128)))
		case 2: // leave rdi as-is (pass through)
		}
	}
	g.a.CallSym(c.sym)
	for _, r := range []x64.Reg{x64.RAX, x64.RCX, x64.RDX, x64.R10, x64.R11} {
		g.written = g.written.Add(r)
	}
}

// emitFunc generates the chunk(s) for one function: the hot chunk and,
// for non-contiguous functions, the cold part chunk.
func emitFunc(spec *funcSpec, rng *rand.Rand) (*chunk, *chunk, error) {
	switch spec.class {
	case clsExit:
		return emitExit(spec)
	case clsError:
		return emitError(spec)
	case clsAsm, clsTailAsm, clsIndirAsm, clsUnreach:
		return emitAsm(spec, rng)
	case clsClangTerm:
		return emitClangTerm(spec)
	case clsThunkMid:
		return emitThunk(spec)
	case clsICF:
		return emitICF(spec)
	case clsXrefChain:
		return emitChainLink(spec)
	}
	return emitCompiled(spec, rng)
}

// chainSpacerInsts pads each xref-chain link's body past the §IV-E
// candidate-validation walk bound (xref.Options.MaxValidationInsts
// defaults to 2000): the capped probe accepts the link without ever
// seeing the movabs that references the next one, so only the
// committed extension of the accepted link surfaces it — forcing one
// pointer-detection round per link.
const chainSpacerInsts = 2100

// emitChainLink produces one xref-chain function: no FDE, a
// convention-respecting straight-line body long enough to exhaust the
// validation walk, then (unless it is the tail) the next link's
// address materialized as a movabs immediate, then ret.
func emitChainLink(spec *funcSpec) (*chunk, *chunk, error) {
	var a x64.Asm
	a.MovRegReg(x64.RAX, x64.RDI)
	for k := 0; k < chainSpacerInsts; k++ {
		a.AddRegImm(x64.RAX, 1)
	}
	if spec.chainNext != "" {
		a.MovRegImm64Sym(x64.RDX, spec.chainNext)
	}
	a.Ret()
	code, fixups, err := a.Finish()
	if err != nil {
		return nil, nil, err
	}
	return &chunk{
		name: spec.name, code: code, fixups: fixups,
		spec: spec, hasFDE: false, hasSym: spec.hasSym, align: 16,
	}, nil, nil
}

// emitCompiled produces a realistic compiled C/C++ function.
func emitCompiled(spec *funcSpec, rng *rand.Rand) (*chunk, *chunk, error) {
	g := &cgen{rng: rng}
	exports := map[string]int{}

	// Leading alignment NOPs inside the FDE range (ANGR's alignment
	// false-positive trigger).
	if spec.startPad > 0 {
		g.a.Nop(spec.startPad)
	}
	if spec.class == clsCFIErr {
		// One garbage byte before the true entry; the hand-written
		// FDE will claim the function starts here (Figure 6b). The
		// byte 0x03 makes any decode from the FDE start read rbx/rbp
		// before initialization, failing the §IV-E convention check.
		g.a.AppendRaw(0x03)
	}
	trueEntry := g.a.Len()

	if rng.Intn(2) == 0 && !spec.noEndbr {
		g.a.Endbr64()
	}

	// Prologue.
	switch {
	case spec.useEnter:
		g.a.Enter(uint16(spec.frameSize))
		g.height += 8 + int64(spec.frameSize)
		g.noteOffset()
		g.note(ehframe.CFI{Op: ehframe.CFAOffset, Reg: ehframe.DwRBP, Offset: 16})
	case spec.frame == frameRBP:
		g.push(x64.RBP)
		g.a.MovRegReg(x64.RBP, x64.RSP)
		g.note(ehframe.CFI{Op: ehframe.CFADefCFARegister, Reg: ehframe.DwRBP})
		g.rbpCFA = true
	}
	if !spec.useEnter {
		for _, r := range spec.pushRegs {
			g.push(r)
		}
		g.subRSP(spec.frameSize)
	}

	// Initialize pushed callee-saved registers so the body may read
	// them (and so code in the middle of the function reads registers
	// a fresh "function" could not legally read — the property the
	// §IV-E validation relies on to reject mid-function pointers).
	for _, r := range spec.pushRegs {
		if r == x64.RBP {
			continue
		}
		g.a.MovRegReg(r, x64.RDI)
		g.written = g.written.Add(r)
	}

	// Early return: a branch over a complete epilogue + ret. This is
	// the shape that defeats naive "extent ends at the first ret"
	// reasoning in unsafe tail-call heuristics.
	if spec.earlyRet {
		g.a.CmpRegImm(x64.RDI, int32(rng.Intn(4)))
		g.a.Jcc(x64.CondNE, "noearly")
		g.note(ehframe.CFI{Op: ehframe.CFARememberState})
		saveH := g.height
		g.emitEpilogue(spec)
		g.a.Ret()
		g.note(ehframe.CFI{Op: ehframe.CFARestoreState})
		g.height = saveH
		g.a.Label("noearly")
	}

	// Non-contiguous split: conditionally jump to the cold part.
	if spec.split {
		g.a.CmpRegImm(x64.RDI, 0x1F)
		g.a.JccSym(x64.CondE, spec.name+".cold")
		exports[spec.name+".resume"] = g.a.Len()
	}
	splitHeight := g.height

	// Body: filler interleaved with the assigned calls.
	calls := append([]callRef(nil), spec.callees...)
	for k := 0; k < spec.numOps; k++ {
		g.filler()
		if len(calls) > 0 && rng.Intn(3) == 0 {
			g.emitCall(calls[0])
			calls = calls[1:]
		}
	}
	for _, c := range calls {
		g.emitCall(c)
	}
	// Indirect calls through code-materialized pointers: the constant
	// operand is what §IV-E xref collection harvests from code.
	for _, sym := range spec.codePtrCalls {
		g.a.LeaRIP(x64.RAX, sym, 0)
		g.a.CallReg(x64.RAX)
		g.written = g.written.Add(x64.RAX)
	}

	// Export a mid-function label for thunk targets.
	exports[spec.name+".mid"] = g.a.Len()
	g.filler()

	// Jump table: the classic absolute idiom or the PIC idiom
	// (lea/movsxd/add/jmp with table-relative entries).
	if spec.jumpTable > 0 {
		n := spec.jumpTable
		g.a.CmpRegImm(x64.RDI, int32(n-1))
		g.a.Jcc(x64.CondA, "jtdef")
		if spec.picTable {
			g.a.LeaRIP(x64.R11, spec.name+".tbl", 0)
			g.a.MovsxdRegMemIdx(x64.RAX, x64.R11, x64.RDI)
			g.a.AddRegReg(x64.RAX, x64.R11)
			g.a.JmpReg(x64.RAX)
			g.written = g.written.Add(x64.R11)
		} else {
			g.a.JmpTableAbs(x64.RDI, spec.name+".tbl")
		}
		caseCalls := append([]string(nil), spec.caseCallees...)
		for k := 0; k < n; k++ {
			g.a.Label(fmt.Sprintf("jtcase%d", k))
			exports[fmt.Sprintf("%s.c%d", spec.name, k)] = g.a.Len()
			g.a.MovRegImm32(x64.RAX, int32(k*3+1))
			if len(caseCalls) > 0 {
				// A call visible only to analyses that resolve the
				// table — the callee's sole reference.
				g.a.MovRegImm32(x64.RDI, int32(k))
				g.a.CallSym(caseCalls[0])
				caseCalls = caseCalls[1:]
			}
			g.a.Jmp("jtend")
		}
		g.a.Label("jtdef")
		g.a.XorRegReg(x64.RAX)
		g.a.Label("jtend")
	}

	// Conditional non-returning branch: jump forward to a block that
	// calls the error-like function with a nonzero argument; the block
	// sits after the final ret and never falls through anywhere.
	if spec.nonRetTail {
		g.a.CmpRegImm(x64.RDI, 0x7F)
		g.a.Jcc(x64.CondE, "errblk")
	}

	// Epilogue.
	g.note(ehframe.CFI{Op: ehframe.CFARememberState})
	preH := g.height
	g.emitEpilogue(spec)
	if spec.tailCall != "" {
		g.a.JmpSym(spec.tailCall)
	} else {
		g.a.Ret()
	}
	g.note(ehframe.CFI{Op: ehframe.CFARestoreState})
	g.height = preH

	// Post-ret blocks.
	if spec.nonRetTail {
		g.a.Label("errblk")
		g.a.MovRegImm32(x64.RDI, 2)
		g.a.CallSym(symError)
		// No code after: the error-like callee never returns here.
	}

	code, fixups, err := g.a.Finish()
	if err != nil {
		return nil, nil, fmt.Errorf("synth: emit %s: %w", spec.name, err)
	}
	symOff := 0
	if spec.class == clsCFIErr {
		symOff = trueEntry // one byte past the garbage prefix
	}
	hot := &chunk{
		name:    spec.name,
		code:    code,
		fixups:  fixups,
		exports: exports,
		cfi:     g.cfi,
		spec:    spec,
		hasFDE:  spec.hasFDE,
		hasSym:  spec.hasSym,
		symOff:  symOff,
		align:   16,
	}

	var cold *chunk
	if spec.split {
		cold, err = emitColdPart(spec, splitHeight, rng)
		if err != nil {
			return nil, nil, err
		}
	}
	return hot, cold, nil
}

// emitEpilogue restores the stack and callee-saved registers.
func (g *cgen) emitEpilogue(spec *funcSpec) {
	if spec.useEnter {
		g.a.Leave()
		g.height = 0
		g.noteOffset()
		return
	}
	g.addRSP(spec.frameSize)
	for k := len(spec.pushRegs) - 1; k >= 0; k-- {
		g.pop(spec.pushRegs[k])
	}
	if spec.frame == frameRBP {
		g.a.PopReg(x64.RBP)
		g.height -= 8
		g.rbpCFA = false
		g.note(ehframe.CFI{Op: ehframe.CFADefCFA, Reg: ehframe.DwRSP, Offset: 8})
	}
}

// emitColdPart generates the distant part of a non-contiguous function.
func emitColdPart(spec *funcSpec, height int64, rng *rand.Rand) (*chunk, error) {
	g := &cgen{rng: rng, height: height}
	if spec.frame == frameRBP {
		// The owning function's CFA is rbp-based: emit the matching
		// (incomplete, non-rsp) CFI so Algorithm 1 must skip it.
		g.note(ehframe.CFI{Op: ehframe.CFADefCFAOffset, Offset: 16})
		g.note(ehframe.CFI{Op: ehframe.CFADefCFARegister, Reg: ehframe.DwRBP})
		g.rbpCFA = true
	} else {
		g.note(ehframe.CFI{Op: ehframe.CFADefCFAOffset, Offset: height + 8})
	}
	// Real .cold parts typically begin with argument shuffles or calls
	// into abort paths, so they pass the §IV-E convention check — the
	// paper removes them by merging (Algorithm 1), never by
	// validation, and finds exactly the hand-written FDEs when
	// convention-checking FDE starts (§V-B).
	g.a.MovRegReg(x64.RAX, x64.RDI)
	for k := 0; k < 2+rng.Intn(4); k++ {
		g.filler()
	}
	if rng.Intn(3) == 0 {
		g.emitCall(callRef{sym: symExit1Arg()})
	}
	if spec.splitRet {
		g.emitEpilogue(spec)
		g.a.Ret()
	} else {
		g.a.JmpSym(spec.name + ".resume")
	}
	code, fixups, err := g.a.Finish()
	if err != nil {
		return nil, fmt.Errorf("synth: emit %s.cold: %w", spec.name, err)
	}
	return &chunk{
		name:   spec.name + ".cold",
		code:   code,
		fixups: fixups,
		cfi:    g.cfi,
		spec:   spec,
		isPart: true,
		parent: spec.name,
		hasFDE: true,
		hasSym: spec.hasSym,
		align:  8,
	}, nil
}

// Well-known synthetic runtime symbols.
const (
	symExit  = "xexit"
	symError = "xerror"
)

// symExit1Arg names a callee for cold paths; calling the error-like
// function with argument zero keeps the path returning.
func symExit1Arg() string { return symError }

// emitExit produces the exit-like non-returning leaf: the syscall-exit
// sequence ending in a trap, as in libc's _exit.
func emitExit(spec *funcSpec) (*chunk, *chunk, error) {
	var a x64.Asm
	a.MovRegImm32(x64.RAX, 60) // SYS_exit
	a.Syscall()
	// The kernel never returns; the trailing trap makes the
	// non-return structurally visible.
	a.Ud2()
	code, fixups, err := a.Finish()
	if err != nil {
		return nil, nil, err
	}
	return &chunk{
		name: spec.name, code: code, fixups: fixups,
		spec: spec, hasFDE: spec.hasFDE, hasSym: spec.hasSym, align: 16,
	}, nil, nil
}

// emitError produces the error/error_at_line-like function: returns
// when the first argument is zero, exits otherwise (§IV-C special case).
func emitError(spec *funcSpec) (*chunk, *chunk, error) {
	var a x64.Asm
	a.TestRegReg(x64.RDI, x64.RDI)
	a.JccShort(x64.CondNE, "die")
	a.Ret()
	a.Label("die")
	a.CallSym(symExit)
	code, fixups, err := a.Finish()
	if err != nil {
		return nil, nil, err
	}
	return &chunk{
		name: spec.name, code: code, fixups: fixups,
		spec: spec, hasFDE: spec.hasFDE, hasSym: spec.hasSym, align: 16,
	}, nil, nil
}

// emitAsm produces a hand-written assembly function: no FDE, no
// standard prologue (so prologue matchers cannot find it), reads only
// argument registers (so the §IV-E validation accepts it).
func emitAsm(spec *funcSpec, rng *rand.Rand) (*chunk, *chunk, error) {
	var a x64.Asm
	a.MovRegReg(x64.RAX, x64.RDI)
	switch rng.Intn(3) {
	case 0:
		a.AddRegReg(x64.RAX, x64.RSI)
		a.ShlRegImm(x64.RAX, 2)
	case 1:
		a.XorRegReg(x64.RDX)
		a.AddRegImm(x64.RAX, 17)
		a.ImulRegReg(x64.RAX, x64.RDI)
	case 2:
		a.CmpRegImm(x64.RDI, 16)
		a.JccShort(x64.CondB, "small")
		a.SubRegImm(x64.RAX, 16)
		a.Label("small")
		a.AddRegImm(x64.RAX, 1)
	}
	a.Ret()
	code, fixups, err := a.Finish()
	if err != nil {
		return nil, nil, err
	}
	return &chunk{
		name: spec.name, code: code, fixups: fixups,
		spec: spec, hasFDE: false, hasSym: spec.hasSym, align: 16,
	}, nil, nil
}

// emitClangTerm produces a __clang_call_terminate clone: calls the
// exit-like function, no FDE.
func emitClangTerm(spec *funcSpec) (*chunk, *chunk, error) {
	var a x64.Asm
	a.PushReg(x64.RAX)
	a.CallSym(symExit)
	code, fixups, err := a.Finish()
	if err != nil {
		return nil, nil, err
	}
	return &chunk{
		name: spec.name, code: code, fixups: fixups,
		spec: spec, hasFDE: false, hasSym: spec.hasSym, align: 16,
	}, nil, nil
}

// emitICF produces an ICF-style clone: every instance emits the exact
// same leaf body (no fixups, no rng), so all copies are byte-identical
// at distinct addresses — each still a separate true function with its
// own FDE.
func emitICF(spec *funcSpec) (*chunk, *chunk, error) {
	var a x64.Asm
	a.MovRegReg(x64.RAX, x64.RDI)
	a.AddRegImm(x64.RAX, 42)
	a.ShlRegImm(x64.RAX, 1)
	a.AddRegReg(x64.RAX, x64.RSI)
	a.Ret()
	code, fixups, err := a.Finish()
	if err != nil {
		return nil, nil, err
	}
	return &chunk{
		name: spec.name, code: code, fixups: fixups,
		spec: spec, hasFDE: spec.hasFDE, hasSym: spec.hasSym, align: 16,
	}, nil, nil
}

// emitThunk produces a thunk that jumps into the middle of another
// function (the GHIDRA thunk-heuristic false-positive trigger).
func emitThunk(spec *funcSpec) (*chunk, *chunk, error) {
	var a x64.Asm
	a.JmpSym(spec.thunkMidOf + ".mid")
	code, fixups, err := a.Finish()
	if err != nil {
		return nil, nil, err
	}
	return &chunk{
		name: spec.name, code: code, fixups: fixups,
		spec: spec, hasFDE: spec.hasFDE, hasSym: spec.hasSym, align: 16,
	}, nil, nil
}
